// Tests for the observability layer: tracer ring buffer and exports,
// metrics registry, obs levels.
#include <atomic>
#include <cstdint>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/obs.hpp"

namespace tlbmap::obs {
namespace {

/// Deterministic clock: every now_us() call returns the next integer.
std::function<std::uint64_t()> counting_clock() {
  auto t = std::make_shared<std::uint64_t>(0);
  return [t] { return (*t)++; };
}

TEST(Tracer, SpanRecordsDuration) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  tracer.record_span("work", "phase", 10, 5);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSpan);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].ts_us, 10u);
  EXPECT_EQ(events[0].dur_us, 5u);
}

TEST(Tracer, RaiiSpanStampsStartAndEnd) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  {
    TraceSpan span(&tracer, "scoped", "phase");
    // clock ticks: 0 at construction; destructor reads 1.
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_us, 0u);
  EXPECT_EQ(events[0].dur_us, 1u);
}

TEST(Tracer, NullTracerSpanIsNoop) {
  TraceSpan span(nullptr, "nothing", "phase");
  span.set_args("\"k\":1");
  EXPECT_EQ(span.elapsed_us(), 0u);
}

TEST(Tracer, RingWraparoundKeepsNewestInOrder) {
  Tracer tracer(4);
  tracer.set_clock(counting_clock());
  for (int i = 0; i < 7; ++i) {
    tracer.record_instant("e" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.recorded(), 7u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three (e0-e2) were overwritten; order is preserved.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[1].name, "e4");
  EXPECT_EQ(events[2].name, "e5");
  EXPECT_EQ(events[3].name, "e6");
}

TEST(Tracer, ClearResets) {
  Tracer tracer(4);
  tracer.record_instant("x", "test");
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, ChromeTraceGoldenFile) {
  Tracer tracer(8);
  tracer.set_clock(counting_clock());
  tracer.record_span("pipeline.detect", "phase", 100, 50,
                     "\"app\":\"SP\",\"searches\":3");
  tracer.record_instant("SM.search", "detector");  // reads clock tick 0
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"pipeline.detect\",\"cat\":\"phase\",\"ph\":\"X\","
      "\"ts\":100,\"dur\":50,\"pid\":1,\"tid\":0,"
      "\"args\":{\"app\":\"SP\",\"searches\":3}},\n"
      "{\"name\":\"SM.search\",\"cat\":\"detector\",\"ph\":\"i\","
      "\"ts\":0,\"s\":\"t\",\"pid\":1,\"tid\":0}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Tracer, JsonlGoldenFile) {
  Tracer tracer(8);
  tracer.set_clock(counting_clock());
  tracer.record_span("map", "phase", 7, 2);
  std::ostringstream out;
  tracer.export_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":7,"
            "\"dur\":2,\"pid\":1,\"tid\":0}\n");
}

TEST(Tracer, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
  Tracer tracer(4);
  tracer.record_instant("quote\"name", "cat\\egory");
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  EXPECT_NE(out.str().find("quote\\\"name"), std::string::npos);
  EXPECT_NE(out.str().find("cat\\\\egory"), std::string::npos);
}

TEST(Tracer, ConcurrentRecordingSmoke) {
  Tracer tracer(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, &go, t] {
      while (!go.load()) {}
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&tracer, "t" + std::to_string(t), "test");
      }
    });
  }
  go.store(true);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.size(), 256u);
  // Every surviving event is intact (no torn strings / partial writes).
  for (const TraceEvent& ev : tracer.snapshot()) {
    EXPECT_EQ(ev.category, "test");
    ASSERT_EQ(ev.name.size(), 2u);
    EXPECT_EQ(ev.name[0], 't');
  }
}

TEST(Metrics, CounterAccumulatesAndReferencesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("requests", {{"app", "SP"}});
  c.add();
  c.add(4);
  // Force a rehash-sized number of other metrics; `c` must stay valid.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler_" + std::to_string(i)).add();
  }
  c.add();
  EXPECT_EQ(registry.counter_value("requests", {{"app", "SP"}}), 6u);
  EXPECT_EQ(registry.counter_value("requests"), 0u);  // different label set
}

TEST(Metrics, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  registry.counter("m", {{"a", "1"}, {"b", "2"}}).add(5);
  EXPECT_EQ(registry.counter_value("m", {{"b", "2"}, {"a", "1"}}), 5u);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("speed");
  g.set(1.5);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1u);  // [0,1): 0.5
  EXPECT_EQ(buckets[2], 1u);  // [2,4): 3.0
  EXPECT_EQ(buckets[4], 1u);  // [8,16): 10.0
}

TEST(Metrics, MatrixSnapshots) {
  MetricsRegistry registry;
  registry.snapshot_matrix("comm", 3, {{0, 2}, {2, 0}});
  const auto snaps = registry.matrix_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "comm");
  EXPECT_EQ(snaps[0].epoch, 3u);
  EXPECT_EQ(snaps[0].rows[0][1], 2u);
}

TEST(Metrics, JsonlExportGolden) {
  MetricsRegistry registry;
  registry.counter("hits", {{"phase", "detect"}}).add(7);
  registry.gauge("speed").set(2.0);
  registry.snapshot_matrix("comm", 1, {{0, 1}, {1, 0}});
  std::ostringstream out;
  registry.export_jsonl(out);
  const std::string expected =
      "{\"type\":\"counter\",\"name\":\"hits\",\"labels\":"
      "{\"phase\":\"detect\"},\"value\":7}\n"
      "{\"type\":\"gauge\",\"name\":\"speed\",\"labels\":{},\"value\":2}\n"
      "{\"type\":\"matrix\",\"name\":\"comm\",\"epoch\":1,"
      "\"rows\":[[0,1],[1,0]]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Metrics, ConcurrentCountersSmoke) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(registry.counter_value("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(ObsLevel, ParseAndPrint) {
  EXPECT_EQ(parse_obs_level("off"), ObsLevel::kOff);
  EXPECT_EQ(parse_obs_level("phases"), ObsLevel::kPhases);
  EXPECT_EQ(parse_obs_level("full"), ObsLevel::kFull);
  EXPECT_FALSE(parse_obs_level("verbose").has_value());
  EXPECT_STREQ(to_string(ObsLevel::kFull), "full");
}

TEST(ObsLevel, GatingHelpers) {
  ObsContext ctx;
  ctx.level = ObsLevel::kPhases;
  EXPECT_EQ(tracer_at(nullptr, ObsLevel::kPhases), nullptr);
  EXPECT_EQ(tracer_at(&ctx, ObsLevel::kPhases), &ctx.tracer);
  EXPECT_EQ(tracer_at(&ctx, ObsLevel::kFull), nullptr);
  ctx.level = ObsLevel::kOff;
  EXPECT_EQ(metrics_at(&ctx, ObsLevel::kPhases), nullptr);
}

}  // namespace
}  // namespace tlbmap::obs

// Tests for the observability layer: tracer ring buffer and exports,
// metrics registry, obs levels.
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/json.hpp"
#include "obs/obs.hpp"
#include "obs/selfprof.hpp"

namespace tlbmap::obs {
namespace {

/// Deterministic clock: every now_us() call returns the next integer.
std::function<std::uint64_t()> counting_clock() {
  auto t = std::make_shared<std::uint64_t>(0);
  return [t] { return (*t)++; };
}

TEST(Tracer, SpanRecordsDuration) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  tracer.record_span("work", "phase", 10, 5);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEvent::Kind::kSpan);
  EXPECT_EQ(events[0].name, "work");
  EXPECT_EQ(events[0].ts_us, 10u);
  EXPECT_EQ(events[0].dur_us, 5u);
}

TEST(Tracer, RaiiSpanStampsStartAndEnd) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  {
    TraceSpan span(&tracer, "scoped", "phase");
    // clock ticks: 0 at construction; destructor reads 1.
  }
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].ts_us, 0u);
  EXPECT_EQ(events[0].dur_us, 1u);
}

TEST(Tracer, NullTracerSpanIsNoop) {
  TraceSpan span(nullptr, "nothing", "phase");
  span.set_args("\"k\":1");
  EXPECT_EQ(span.elapsed_us(), 0u);
}

TEST(Tracer, RingWraparoundKeepsNewestInOrder) {
  Tracer tracer(4);
  tracer.set_clock(counting_clock());
  for (int i = 0; i < 7; ++i) {
    tracer.record_instant("e" + std::to_string(i), "test");
  }
  EXPECT_EQ(tracer.recorded(), 7u);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 3u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 4u);
  // Oldest three (e0-e2) were overwritten; order is preserved.
  EXPECT_EQ(events[0].name, "e3");
  EXPECT_EQ(events[1].name, "e4");
  EXPECT_EQ(events[2].name, "e5");
  EXPECT_EQ(events[3].name, "e6");
}

TEST(Tracer, ClearResets) {
  Tracer tracer(4);
  tracer.record_instant("x", "test");
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(Tracer, ChromeTraceGoldenFile) {
  Tracer tracer(8);
  tracer.set_clock(counting_clock());
  tracer.record_span("pipeline.detect", "phase", 100, 50,
                     "\"app\":\"SP\",\"searches\":3");
  tracer.record_instant("SM.search", "detector");  // reads clock tick 0
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  const std::string expected =
      "{\"traceEvents\":[\n"
      "{\"name\":\"pipeline.detect\",\"cat\":\"phase\",\"ph\":\"X\","
      "\"ts\":100,\"dur\":50,\"pid\":1,\"tid\":0,"
      "\"args\":{\"app\":\"SP\",\"searches\":3}},\n"
      "{\"name\":\"SM.search\",\"cat\":\"detector\",\"ph\":\"i\","
      "\"ts\":0,\"s\":\"t\",\"pid\":1,\"tid\":0}\n"
      "],\"displayTimeUnit\":\"ms\"}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Tracer, JsonlGoldenFile) {
  Tracer tracer(8);
  tracer.set_clock(counting_clock());
  tracer.record_span("map", "phase", 7, 2);
  std::ostringstream out;
  tracer.export_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":7,"
            "\"dur\":2,\"pid\":1,\"tid\":0}\n");
}

TEST(Tracer, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(json_escape(std::string("x\x01y")), "x\\u0001y");
  Tracer tracer(4);
  tracer.record_instant("quote\"name", "cat\\egory");
  std::ostringstream out;
  tracer.export_chrome_trace(out);
  EXPECT_NE(out.str().find("quote\\\"name"), std::string::npos);
  EXPECT_NE(out.str().find("cat\\\\egory"), std::string::npos);
}

TEST(Tracer, ConcurrentRecordingSmoke) {
  Tracer tracer(256);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 1000;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, &go, t] {
      while (!go.load()) {}
      for (int i = 0; i < kPerThread; ++i) {
        TraceSpan span(&tracer, "t" + std::to_string(t), "test");
      }
    });
  }
  go.store(true);
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(tracer.size(), 256u);
  // Every surviving event is intact (no torn strings / partial writes).
  for (const TraceEvent& ev : tracer.snapshot()) {
    EXPECT_EQ(ev.category, "test");
    ASSERT_EQ(ev.name.size(), 2u);
    EXPECT_EQ(ev.name[0], 't');
  }
}

TEST(Metrics, CounterAccumulatesAndReferencesAreStable) {
  MetricsRegistry registry;
  Counter& c = registry.counter("requests", {{"app", "SP"}});
  c.add();
  c.add(4);
  // Force a rehash-sized number of other metrics; `c` must stay valid.
  for (int i = 0; i < 100; ++i) {
    registry.counter("filler_" + std::to_string(i)).add();
  }
  c.add();
  EXPECT_EQ(registry.counter_value("requests", {{"app", "SP"}}), 6u);
  EXPECT_EQ(registry.counter_value("requests"), 0u);  // different label set
}

TEST(Metrics, LabelOrderDoesNotMatter) {
  MetricsRegistry registry;
  registry.counter("m", {{"a", "1"}, {"b", "2"}}).add(5);
  EXPECT_EQ(registry.counter_value("m", {{"b", "2"}, {"a", "1"}}), 5u);
}

TEST(Metrics, GaugeLastWriteWins) {
  MetricsRegistry registry;
  Gauge& g = registry.gauge("speed");
  g.set(1.5);
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
}

TEST(Metrics, HistogramStats) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.observe(0.5);
  h.observe(3.0);
  h.observe(10.0);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 13.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.5);
  EXPECT_DOUBLE_EQ(h.max(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 4.5);
  const auto buckets = h.buckets();
  EXPECT_EQ(buckets[0], 1u);  // [0,1): 0.5
  EXPECT_EQ(buckets[2], 1u);  // [2,4): 3.0
  EXPECT_EQ(buckets[4], 1u);  // [8,16): 10.0
}

TEST(Metrics, MatrixSnapshots) {
  MetricsRegistry registry;
  registry.snapshot_matrix("comm", 3, {{0, 2}, {2, 0}});
  const auto snaps = registry.matrix_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  EXPECT_EQ(snaps[0].name, "comm");
  EXPECT_EQ(snaps[0].epoch, 3u);
  EXPECT_EQ(snaps[0].rows[0][1], 2u);
}

TEST(Metrics, JsonlExportGolden) {
  MetricsRegistry registry;
  registry.counter("hits", {{"phase", "detect"}}).add(7);
  registry.gauge("speed").set(2.0);
  registry.snapshot_matrix("comm", 1, {{0, 1}, {1, 0}});
  std::ostringstream out;
  registry.export_jsonl(out);
  const std::string expected =
      "{\"type\":\"counter\",\"name\":\"hits\",\"labels\":"
      "{\"phase\":\"detect\"},\"value\":7}\n"
      "{\"type\":\"gauge\",\"name\":\"speed\",\"labels\":{},\"value\":2}\n"
      "{\"type\":\"matrix\",\"name\":\"comm\",\"epoch\":1,"
      "\"rows\":[[0,1],[1,0]]}\n";
  EXPECT_EQ(out.str(), expected);
}

TEST(Metrics, ConcurrentCountersSmoke) {
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry] {
      Counter& c = registry.counter("shared");
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  }
  for (std::thread& t : pool) t.join();
  EXPECT_EQ(registry.counter_value("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Json, EscapeHelpers) {
  EXPECT_EQ(json_str("plain"), "\"plain\"");
  EXPECT_EQ(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
  EXPECT_EQ(json_str(std::string("x\x1fy")), "\"x\\u001fy\"");
  EXPECT_EQ(json_num(2.0), "2");
  EXPECT_EQ(json_num(2.5), "2.5");
  // Non-finite values must never leak into JSON output.
  EXPECT_EQ(json_num(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(json_num(std::numeric_limits<double>::infinity()), "0");
}

TEST(Metrics, HistogramQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty
  h.observe(5.0);
  // One sample: every quantile collapses to it (clamped to [min, max]).
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 5.0);
  for (int i = 1; i <= 99; ++i) h.observe(static_cast<double>(i));
  // Monotonic, inside the observed range, exact at the extremes.
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 99.0);
  // The log2 approximation should land p50 in the right ballpark: the
  // 50th of 100 samples is 49, inside bucket [32,64).
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
}

TEST(Metrics, HistogramExportIncludesQuantiles) {
  MetricsRegistry registry;
  Histogram& h = registry.histogram("lat");
  h.observe(4.0);
  std::ostringstream out;
  registry.export_jsonl(out);
  EXPECT_NE(out.str().find("\"p50\":4"), std::string::npos);
  EXPECT_NE(out.str().find("\"p95\":4"), std::string::npos);
  EXPECT_NE(out.str().find("\"p99\":4"), std::string::npos);
}

TEST(Metrics, SeriesSampleCapturesRegistryState) {
  MetricsRegistry registry;
  registry.counter("events", {{"phase", "detect"}}).add(3);
  registry.gauge("depth").set(1.5);
  registry.histogram("lat").observe(8.0);
  registry.sample_series(100, "interval");
  registry.counter("events", {{"phase", "detect"}}).add(2);
  registry.sample_series(200, "phase:detect");
  const auto samples = registry.series().samples();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].index, 0u);
  EXPECT_EQ(samples[1].index, 1u);  // monotonic sample index
  EXPECT_EQ(samples[0].sim_events, 100u);
  EXPECT_EQ(samples[1].sim_events, 200u);
  EXPECT_EQ(samples[0].reason, "interval");
  EXPECT_EQ(samples[1].reason, "phase:detect");
  ASSERT_EQ(samples[0].counters.size(), 1u);
  EXPECT_EQ(samples[0].counters[0].first, "events{phase=detect}");
  EXPECT_EQ(samples[0].counters[0].second, 3u);
  EXPECT_EQ(samples[1].counters[0].second, 5u);
  ASSERT_EQ(samples[0].histograms.size(), 1u);
  EXPECT_EQ(samples[0].histograms[0].second.count, 1u);
  EXPECT_DOUBLE_EQ(samples[0].histograms[0].second.p50, 8.0);
}

TEST(Metrics, WallclockMetricsExcludedFromSeries) {
  MetricsRegistry registry;
  registry.counter("sim.events").add(10);
  registry.wallclock_gauge("machine.sim_events_per_sec").set(123456.0);
  registry.wallclock_histogram("pipeline.phase_wall_us").observe(42.0);
  registry.sample_series(10, "interval");
  const auto samples = registry.series().samples();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].counters.size(), 1u);
  EXPECT_TRUE(samples[0].gauges.empty());
  EXPECT_TRUE(samples[0].histograms.empty());
  // ...but the full JSONL export still carries them.
  std::ostringstream out;
  registry.export_jsonl(out);
  EXPECT_NE(out.str().find("machine.sim_events_per_sec"), std::string::npos);
  EXPECT_NE(out.str().find("pipeline.phase_wall_us"), std::string::npos);
}

TEST(Metrics, SeriesExportGolden) {
  MetricsRegistry registry;
  registry.counter("hits").add(2);
  registry.gauge("depth").set(1.5);
  registry.sample_series(50, "interval");
  std::ostringstream out;
  registry.series().export_jsonl(out);
  EXPECT_EQ(out.str(),
            "{\"type\":\"series\",\"sample\":0,\"sim_events\":50,"
            "\"reason\":\"interval\",\"counters\":{\"hits\":2},"
            "\"gauges\":{\"depth\":1.5},\"histograms\":{}}\n");
}

TEST(Metrics, SeriesExportIsDeterministic) {
  // Identical update sequences must produce byte-identical series exports —
  // the contract that makes the stream diffable across runs of a fixed
  // seed. Wall-clock metrics are exercised too: they vary per run but are
  // excluded from samples, so they must not break the equality.
  auto build = [](double wallclock_noise) {
    auto registry = std::make_unique<MetricsRegistry>();
    registry->counter("events", {{"app", "SP"}}).add(7);
    registry->histogram("lat").observe(3.0);
    registry->wallclock_gauge("events_per_sec").set(wallclock_noise);
    registry->sample_series(1000, "interval");
    registry->counter("events", {{"app", "SP"}}).add(1);
    registry->sample_series(2000, "phase:detect");
    std::ostringstream out;
    registry->series().export_jsonl(out);
    return out.str();
  };
  const std::string a = build(1.0);
  const std::string b = build(987654.321);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Metrics, ConcurrentSeriesSamplingSmoke) {
  // sample_series racing metric updates and other samplers must stay safe
  // (runs under TSan in CI) and keep indices dense and monotonic.
  MetricsRegistry registry;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 200;
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&registry, t] {
      Counter& c = registry.counter("shared");
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        if (i % 10 == t) {
          registry.sample_series(static_cast<std::uint64_t>(i), "interval");
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  const auto samples = registry.series().samples();
  ASSERT_FALSE(samples.empty());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index, i);
  }
}

TEST(Series, UnboundedByDefault) {
  TimeSeries series;
  EXPECT_EQ(series.capacity(), 0u);
  for (int i = 0; i < 500; ++i) {
    SeriesSample s;
    s.sim_events = static_cast<std::uint64_t>(i);
    series.append(std::move(s));
  }
  EXPECT_EQ(series.size(), 500u);
  EXPECT_EQ(series.dropped(), 0u);
}

TEST(Series, CapacityDecimatesEvenlyNotTailBiased) {
  TimeSeries series;
  series.set_capacity(16);
  const int appended = 1000;
  for (int i = 0; i < appended; ++i) {
    SeriesSample s;
    s.sim_events = static_cast<std::uint64_t>(i) * 10;
    series.append(std::move(s));
  }
  // Memory stays bounded and everything shed is accounted for.
  EXPECT_LT(series.size(), 16u);
  EXPECT_GT(series.size(), 0u);
  EXPECT_EQ(series.size() + series.dropped(),
            static_cast<std::size_t>(appended));

  // The kept samples are evenly strided over the whole history (indices
  // are multiples of a power-of-two stride), not just the newest tail.
  const auto samples = series.samples();
  ASSERT_GE(samples.size(), 2u);
  EXPECT_EQ(samples.front().index, 0u);  // the origin always survives
  const std::uint64_t stride = samples[1].index - samples[0].index;
  EXPECT_GT(stride, 1u);
  EXPECT_EQ(stride & (stride - 1), 0u);  // power of two
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index - samples[i - 1].index, stride) << i;
  }
  // History coverage: the retained window spans most of the appends, which
  // a keep-the-tail policy would not.
  EXPECT_LT(samples.front().index, static_cast<std::uint64_t>(appended) / 4);
  EXPECT_GT(samples.back().index, static_cast<std::uint64_t>(appended) / 2);
}

TEST(Series, DecimationIsDeterministic) {
  const auto run = [] {
    TimeSeries series;
    series.set_capacity(8);
    for (int i = 0; i < 300; ++i) {
      SeriesSample s;
      s.sim_events = static_cast<std::uint64_t>(i);
      series.append(std::move(s));
    }
    std::vector<std::uint64_t> kept;
    for (const SeriesSample& s : series.samples()) kept.push_back(s.index);
    return std::make_pair(kept, series.dropped());
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(Metrics, BoundedSeriesExportsDroppedCounter) {
  MetricsRegistry registry;
  registry.set_series_capacity(8);
  registry.counter("work.done").add(1);
  for (int i = 0; i < 100; ++i) {
    registry.sample_series(static_cast<std::uint64_t>(i) * 100, "interval");
  }
  EXPECT_LT(registry.series().size(), 8u);
  const std::uint64_t dropped = registry.series().dropped();
  EXPECT_GT(dropped, 0u);
  // The decimation count is surfaced as obs.series_dropped so a bounded
  // daemon run can report how much history it shed.
  EXPECT_EQ(registry.counter_value("obs.series_dropped"), dropped);

  // An unbounded registry never creates the counter at all.
  MetricsRegistry unbounded;
  unbounded.counter("work.done").add(1);
  for (int i = 0; i < 100; ++i) {
    unbounded.sample_series(static_cast<std::uint64_t>(i), "interval");
  }
  EXPECT_EQ(unbounded.series().size(), 100u);
  EXPECT_EQ(unbounded.counter_value("obs.series_dropped"), 0u);
}

TEST(Tracer, ConcurrentWraparoundKeepsRingIntact) {
  // Wraparound under contention: a ring much smaller than the event volume
  // forces continuous overwrites from four threads at once (tsan preset
  // exercises the locking; this assertion set checks the accounting).
  Tracer tracer(32);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  std::atomic<bool> go{false};
  std::vector<std::thread> pool;
  for (int t = 0; t < kThreads; ++t) {
    pool.emplace_back([&tracer, &go, t] {
      while (!go.load()) {}
      for (int i = 0; i < kPerThread; ++i) {
        tracer.record_instant("w" + std::to_string(t), "test");
      }
    });
  }
  go.store(true);
  for (std::thread& t : pool) t.join();
  constexpr std::uint64_t kTotal =
      static_cast<std::uint64_t>(kThreads) * kPerThread;
  EXPECT_EQ(tracer.recorded(), kTotal);
  EXPECT_EQ(tracer.size(), 32u);
  EXPECT_EQ(tracer.dropped(), kTotal - 32u);
  for (const TraceEvent& ev : tracer.snapshot()) {
    ASSERT_EQ(ev.name.size(), 2u);
    EXPECT_EQ(ev.name[0], 'w');
    EXPECT_EQ(ev.category, "test");
  }
}

TEST(SelfProf, CollapsedStacksRebuildNesting) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  // outer [0,100) with child [10,30): outer self = 80, child self = 20.
  tracer.record_span("outer", "phase", 0, 100);
  tracer.record_span("inner", "phase", 10, 20);
  // A sibling span after outer ends.
  tracer.record_span("tail", "phase", 150, 5);
  const std::string collapsed = collapsed_stacks(tracer);
  EXPECT_EQ(collapsed,
            "outer 80\n"
            "outer;inner 20\n"
            "tail 5\n");
}

TEST(SelfProf, SpanSelfTimesAttributeWallToInnermostSpan) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  // outer [0,100) encloses inner [10,30): a naive per-span duration sum
  // would report 125 us across 105 us of wall time. Self attribution gives
  // outer 80, inner 20, tail 5 — summing to the real covered wall time.
  tracer.record_span("outer", "phase", 0, 100);
  tracer.record_span("inner", "phase", 10, 20);
  tracer.record_span("tail", "phase", 150, 5);
  std::map<std::string, std::uint64_t> by_name;
  std::uint64_t total = 0;
  for (const SpanSelf& span : span_self_times(tracer)) {
    by_name[span.name] += span.self_us;
    total += span.self_us;
  }
  EXPECT_EQ(by_name["outer"], 80u);
  EXPECT_EQ(by_name["inner"], 20u);
  EXPECT_EQ(by_name["tail"], 5u);
  EXPECT_EQ(total, 105u);
}

TEST(SelfProf, SpanSelfTimesDoNotDoubleCountSameNameNesting) {
  Tracer tracer(16);
  tracer.set_clock(counting_clock());
  // A phase nested inside itself (recursive helper, re-entered stage):
  // summing by name must still yield the enclosing wall time once.
  tracer.record_span("phase", "work", 0, 100);
  tracer.record_span("phase", "work", 10, 30);
  std::uint64_t total = 0;
  std::size_t count = 0;
  for (const SpanSelf& span : span_self_times(tracer)) {
    EXPECT_EQ(span.name, "phase");
    total += span.self_us;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  EXPECT_EQ(total, 100u);
}

TEST(SelfProf, ProfilerAndManifestRender) {
  SelfProfiler profiler;
  EXPECT_GE(profiler.wall_seconds(), 0.0);
  RunManifest manifest;
  manifest.command = "evaluate";
  manifest.git_describe = build_git_describe();
  manifest.created_utc = utc_timestamp();
  manifest.seed = 42;
  manifest.wall_seconds = 1.5;
  manifest.usage = profiler.snapshot();
  manifest.phases.emplace_back("pipeline.detect", 1000);
  manifest.collapsed_wall = "a;b 10\n";
  manifest.extra.emplace_back("app", "SP\"quoted");
  const std::string json = manifest.to_json();
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"command\": \"evaluate\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\": 42"), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.detect\": 1000"), std::string::npos);
  EXPECT_NE(json.find("a;b 10\\n"), std::string::npos);
  EXPECT_NE(json.find("SP\\\"quoted"), std::string::npos);  // escaped
  // ISO-8601 UTC shape.
  ASSERT_EQ(manifest.created_utc.size(), 20u);
  EXPECT_EQ(manifest.created_utc.back(), 'Z');
}

TEST(ObsLevel, ParseAndPrint) {
  EXPECT_EQ(parse_obs_level("off"), ObsLevel::kOff);
  EXPECT_EQ(parse_obs_level("phases"), ObsLevel::kPhases);
  EXPECT_EQ(parse_obs_level("full"), ObsLevel::kFull);
  EXPECT_FALSE(parse_obs_level("verbose").has_value());
  EXPECT_STREQ(to_string(ObsLevel::kFull), "full");
}

TEST(ObsLevel, GatingHelpers) {
  ObsContext ctx;
  ctx.level = ObsLevel::kPhases;
  EXPECT_EQ(tracer_at(nullptr, ObsLevel::kPhases), nullptr);
  EXPECT_EQ(tracer_at(&ctx, ObsLevel::kPhases), &ctx.tracer);
  EXPECT_EQ(tracer_at(&ctx, ObsLevel::kFull), nullptr);
  ctx.level = ObsLevel::kOff;
  EXPECT_EQ(metrics_at(&ctx, ObsLevel::kPhases), nullptr);
}

}  // namespace
}  // namespace tlbmap::obs

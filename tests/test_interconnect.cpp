// Direct tests for the interconnect cost/traffic model.
#include <gtest/gtest.h>

#include "sim/interconnect.hpp"

namespace tlbmap {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  InterconnectTest()
      : config_(MachineConfig::harpertown()),
        topology_(config_),
        net_(topology_, config_.interconnect) {}

  MachineConfig config_;
  Topology topology_;
  Interconnect net_;
  MachineStats stats_;
};

TEST_F(InterconnectTest, SameSocketDetection) {
  // Harpertown: L2s 0,1 on socket 0; L2s 2,3 on socket 1.
  EXPECT_TRUE(net_.same_socket(0, 1));
  EXPECT_TRUE(net_.same_socket(2, 3));
  EXPECT_FALSE(net_.same_socket(1, 2));
  EXPECT_FALSE(net_.same_socket(0, 3));
}

TEST_F(InterconnectTest, TransferCostsByLocality) {
  EXPECT_EQ(net_.transfer(0, 1, stats_),
            config_.interconnect.snoop_intra_socket);
  EXPECT_EQ(net_.transfer(0, 2, stats_),
            config_.interconnect.snoop_inter_socket);
  EXPECT_LT(config_.interconnect.snoop_intra_socket,
            config_.interconnect.snoop_inter_socket);
}

TEST_F(InterconnectTest, InvalidateCostsByLocality) {
  EXPECT_EQ(net_.invalidate(1, 0, stats_),
            config_.interconnect.invalidate_intra_socket);
  EXPECT_EQ(net_.invalidate(1, 3, stats_),
            config_.interconnect.invalidate_inter_socket);
}

TEST_F(InterconnectTest, TrafficAccounting) {
  net_.transfer(0, 1, stats_);     // intra
  net_.invalidate(0, 2, stats_);   // inter
  net_.record_probe(3, 2, stats_); // intra
  net_.record_probe(3, 0, stats_); // inter
  EXPECT_EQ(stats_.intra_socket_messages, 2u);
  EXPECT_EQ(stats_.inter_socket_messages, 2u);
}

TEST_F(InterconnectTest, MemoryLatencyExposed) {
  EXPECT_EQ(net_.memory_latency(), config_.interconnect.memory_latency);
}

TEST(InterconnectNuma, PresetWidensInterSocketSpread) {
  const MachineConfig uma = MachineConfig::harpertown();
  const MachineConfig numa = MachineConfig::numa_harpertown();
  EXPECT_TRUE(numa.numa);
  EXPECT_FALSE(uma.numa);
  EXPECT_GT(numa.interconnect.snoop_inter_socket,
            uma.interconnect.snoop_inter_socket);
  EXPECT_GT(numa.interconnect.invalidate_inter_socket,
            uma.interconnect.invalidate_inter_socket);
  // Intra-socket costs are unchanged: the spread, not the floor, grows.
  EXPECT_EQ(numa.interconnect.snoop_intra_socket,
            uma.interconnect.snoop_intra_socket);
}

}  // namespace
}  // namespace tlbmap

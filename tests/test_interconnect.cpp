// Direct tests for the interconnect cost/traffic model.
#include <gtest/gtest.h>

#include "sim/interconnect.hpp"

namespace tlbmap {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  InterconnectTest()
      : config_(MachineConfig::harpertown()),
        topology_(config_),
        net_(topology_, config_.interconnect) {}

  MachineConfig config_;
  Topology topology_;
  Interconnect net_;
  MachineStats stats_;
};

TEST_F(InterconnectTest, SameSocketDetection) {
  // Harpertown: L2s 0,1 on socket 0; L2s 2,3 on socket 1.
  EXPECT_TRUE(net_.same_socket(0, 1));
  EXPECT_TRUE(net_.same_socket(2, 3));
  EXPECT_FALSE(net_.same_socket(1, 2));
  EXPECT_FALSE(net_.same_socket(0, 3));
}

TEST_F(InterconnectTest, TransferCostsByLocality) {
  EXPECT_EQ(net_.transfer(0, 1, stats_),
            config_.interconnect.snoop_intra_socket);
  EXPECT_EQ(net_.transfer(0, 2, stats_),
            config_.interconnect.snoop_inter_socket);
  EXPECT_LT(config_.interconnect.snoop_intra_socket,
            config_.interconnect.snoop_inter_socket);
}

TEST_F(InterconnectTest, InvalidateCostsByLocality) {
  EXPECT_EQ(net_.invalidate(1, 0, stats_),
            config_.interconnect.invalidate_intra_socket);
  EXPECT_EQ(net_.invalidate(1, 3, stats_),
            config_.interconnect.invalidate_inter_socket);
}

TEST_F(InterconnectTest, TrafficAccounting) {
  net_.transfer(0, 1, stats_);     // intra
  net_.invalidate(0, 2, stats_);   // inter
  net_.record_probe(3, 2, stats_); // intra
  net_.record_probe(3, 0, stats_); // inter
  EXPECT_EQ(stats_.intra_socket_messages, 2u);
  EXPECT_EQ(stats_.inter_socket_messages, 2u);
}

TEST_F(InterconnectTest, MemoryLatencyExposed) {
  EXPECT_EQ(net_.memory_latency(), config_.interconnect.memory_latency);
}

// ------------------------------------------------- mesh-priced transfers

// 4 sockets in a 2x2 mesh, 1 core per socket, per-hop extras on. Socket
// grid: (0,1) on row 0, (2,3) on row 1 — sockets 0 and 3 are 2 hops apart.
MachineConfig mesh2x2_config() {
  MachineConfig c;
  c.num_sockets = 4;
  c.cores_per_socket = 1;
  c.cores_per_l2 = 1;
  c.socket_mesh_cols = 2;
  c.interconnect.snoop_hop_extra = 25;
  c.interconnect.invalidate_hop_extra = 10;
  return c;
}

TEST(InterconnectMesh, HopExtrasPriceManhattanDistance) {
  const MachineConfig c = mesh2x2_config();
  const Topology t(c);
  Interconnect net(t, c.interconnect);
  MachineStats stats;
  // 1 hop (adjacent sockets): base inter-socket cost, no extra.
  EXPECT_EQ(net.transfer(0, 1, stats), c.interconnect.snoop_inter_socket);
  // 2 hops (diagonal): one extra hop billed.
  EXPECT_EQ(net.transfer(0, 3, stats),
            c.interconnect.snoop_inter_socket +
                c.interconnect.snoop_hop_extra);
  EXPECT_EQ(net.invalidate(0, 3, stats),
            c.interconnect.invalidate_inter_socket +
                c.interconnect.invalidate_hop_extra);
  EXPECT_EQ(net.invalidate(2, 3, stats),
            c.interconnect.invalidate_inter_socket);
}

TEST(InterconnectMesh, ZeroExtrasReproduceLegacyFlatCosts) {
  // Mesh geometry alone (extras at their 0 default) must be bit-identical
  // to the fully connected model — the backward-compatibility contract.
  MachineConfig c = mesh2x2_config();
  c.interconnect.snoop_hop_extra = 0;
  c.interconnect.invalidate_hop_extra = 0;
  const Topology t(c);
  Interconnect net(t, c.interconnect);
  MachineStats stats;
  EXPECT_EQ(net.transfer(0, 3, stats), c.interconnect.snoop_inter_socket);
  EXPECT_EQ(net.invalidate(0, 3, stats),
            c.interconnect.invalidate_inter_socket);
}

TEST(InterconnectMesh, ManycorePresetPricesDeepRoutes) {
  // 32 sockets on an 8-wide mesh: sockets 0 (0,0) and 31 (3,7) are 10 hops
  // apart, so a transfer between their L2s carries 9 hop extras.
  const MachineConfig c = MachineConfig::manycore();
  const Topology t(c);
  Interconnect net(t, c.interconnect);
  MachineStats stats;
  const L2Id far_l2 = t.num_l2() - 1;
  EXPECT_EQ(net.transfer(0, far_l2, stats),
            c.interconnect.snoop_inter_socket +
                9 * c.interconnect.snoop_hop_extra);
  EXPECT_EQ(stats.inter_socket_messages, 1u);
}

TEST(InterconnectNuma, PresetWidensInterSocketSpread) {
  const MachineConfig uma = MachineConfig::harpertown();
  const MachineConfig numa = MachineConfig::numa_harpertown();
  EXPECT_TRUE(numa.numa);
  EXPECT_FALSE(uma.numa);
  EXPECT_GT(numa.interconnect.snoop_inter_socket,
            uma.interconnect.snoop_inter_socket);
  EXPECT_GT(numa.interconnect.invalidate_inter_socket,
            uma.interconnect.invalidate_inter_socket);
  // Intra-socket costs are unchanged: the spread, not the floor, grows.
  EXPECT_EQ(numa.interconnect.snoop_intra_socket,
            uma.interconnect.snoop_intra_socket);
}

}  // namespace
}  // namespace tlbmap

// Tests for the shared RetryPolicy (DESIGN.md Sec. 16): capped attempts,
// jittered exponential backoff, deterministic under a fixed seed, and
// bit-identical to the HM detector's historical hand-rolled schedule.
#include <cstdint>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "core/retry.hpp"
#include "detect/hm_detector.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

TEST(RetryPolicy, ValidateRejectsBadShapes) {
  RetryPolicy ok;
  EXPECT_NO_THROW(ok.validate());

  RetryPolicy negative_cap;
  negative_cap.max_attempts = -1;
  EXPECT_THROW(negative_cap.validate(), std::invalid_argument);

  RetryPolicy zero_factor;
  zero_factor.factor = 0;
  EXPECT_THROW(zero_factor.validate(), std::invalid_argument);

  RetryPolicy wild_jitter;
  wild_jitter.jitter = 1.5;
  EXPECT_THROW(wild_jitter.validate(), std::invalid_argument);
  wild_jitter.jitter = -0.1;
  EXPECT_THROW(wild_jitter.validate(), std::invalid_argument);
}

TEST(RetryPolicy, ShouldRetryCapsAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_FALSE(policy.should_retry(0));  // attempts are 1-based
  EXPECT_TRUE(policy.should_retry(1));
  EXPECT_TRUE(policy.should_retry(3));
  EXPECT_FALSE(policy.should_retry(4));

  RetryPolicy disabled;
  disabled.max_attempts = 0;
  EXPECT_FALSE(disabled.should_retry(1));
}

TEST(RetryPolicy, ZeroJitterIsPureExponential) {
  RetryPolicy policy;
  policy.base_delay = 8;
  policy.factor = 2;
  policy.jitter = 0.0;
  EXPECT_EQ(policy.delay(1), 8u);
  EXPECT_EQ(policy.delay(2), 16u);
  EXPECT_EQ(policy.delay(3), 32u);
  EXPECT_EQ(policy.delay(4), 64u);
}

TEST(RetryPolicy, ZeroBaseDelayClampsToOne) {
  // A zero wait would retry in the same scheduling instant and defeat the
  // backoff entirely.
  RetryPolicy policy;
  policy.base_delay = 0;
  policy.jitter = 0.0;
  EXPECT_GE(policy.delay(1), 1u);
}

TEST(RetryPolicy, JitterStaysWithinFraction) {
  RetryPolicy policy;
  policy.base_delay = 100;
  policy.factor = 2;
  policy.jitter = 0.5;
  policy.seed = 42;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    const std::uint64_t pure =
        100ull * (1ull << static_cast<unsigned>(attempt - 1));
    const std::uint64_t d = policy.delay(attempt);
    EXPECT_GE(d, pure) << "attempt " << attempt;
    EXPECT_LE(d, pure + pure / 2) << "attempt " << attempt;
  }
}

TEST(RetryPolicy, JitterIsDeterministicPerSeedAndAttempt) {
  RetryPolicy a;
  a.base_delay = 64;
  a.jitter = 0.9;
  a.seed = 7;
  RetryPolicy b = a;
  // Same policy -> same schedule, call after call (pure function of
  // (policy, attempt) — no hidden generator state).
  for (int attempt = 1; attempt <= 6; ++attempt) {
    EXPECT_EQ(a.delay(attempt), b.delay(attempt));
    EXPECT_EQ(a.delay(attempt), a.delay(attempt));
  }
  // A different seed must move at least one attempt's jitter share.
  RetryPolicy other = a;
  other.seed = 8;
  bool any_different = false;
  for (int attempt = 1; attempt <= 6; ++attempt) {
    if (other.delay(attempt) != a.delay(attempt)) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(RetryPolicy, AbsurdAttemptSaturatesInsteadOfWrapping) {
  RetryPolicy policy;
  policy.base_delay = 1000;
  policy.factor = 2;
  policy.jitter = 0.0;
  // 2^200 overflows u64 many times over; the delay must pin at the
  // ceiling ("wait forever"), never wrap around to a small value.
  const std::uint64_t d = policy.delay(200);
  EXPECT_EQ(d, std::numeric_limits<std::uint64_t>::max());
  EXPECT_GE(policy.delay(201), d);
}

TEST(RetryPolicy, HmSweepPolicyMatchesLegacySchedule) {
  // The HM detector's sweep-retry loop predates RetryPolicy; its adopted
  // policy must reproduce the hand-rolled cadence exactly (4 attempts,
  // base interval/8, doubling, no jitter) so the fault tests stay green.
  Machine m(MachineConfig::tiny());
  HmDetectorConfig config;
  config.interval = 80000;
  HmDetector detector(m, /*num_threads=*/2, config);
  const RetryPolicy policy = detector.sweep_retry_policy();
  EXPECT_EQ(policy.max_attempts, 4);
  EXPECT_EQ(policy.factor, 2u);
  EXPECT_EQ(policy.jitter, 0.0);
  EXPECT_EQ(policy.delay(1), 80000u / 8);
  EXPECT_EQ(policy.delay(2), 80000u / 4);
  EXPECT_EQ(policy.delay(3), 80000u / 2);
  EXPECT_EQ(policy.delay(4), 80000u);

  // Tiny intervals clamp the base up to one cycle rather than zero.
  HmDetectorConfig small;
  small.interval = 4;
  HmDetector tight(m, /*num_threads=*/2, small);
  EXPECT_GE(tight.sweep_retry_policy().delay(1), 1u);
}

}  // namespace
}  // namespace tlbmap

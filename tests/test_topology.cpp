// Unit tests for the machine topology helpers.
#include <gtest/gtest.h>

#include "sim/topology.hpp"

namespace tlbmap {
namespace {

Topology harpertown() { return Topology(MachineConfig::harpertown()); }

TEST(Topology, HarpertownCounts) {
  const Topology t = harpertown();
  EXPECT_EQ(t.num_cores(), 8);
  EXPECT_EQ(t.num_l2(), 4);
  EXPECT_EQ(t.num_sockets(), 2);
  EXPECT_EQ(t.cores_per_l2(), 2);
  EXPECT_EQ(t.cores_per_socket(), 4);
}

TEST(Topology, L2Assignment) {
  const Topology t = harpertown();
  EXPECT_EQ(t.l2_of(0), 0);
  EXPECT_EQ(t.l2_of(1), 0);
  EXPECT_EQ(t.l2_of(2), 1);
  EXPECT_EQ(t.l2_of(7), 3);
}

TEST(Topology, SocketAssignment) {
  const Topology t = harpertown();
  EXPECT_EQ(t.socket_of(0), 0);
  EXPECT_EQ(t.socket_of(3), 0);
  EXPECT_EQ(t.socket_of(4), 1);
  EXPECT_EQ(t.socket_of(7), 1);
  EXPECT_EQ(t.socket_of_l2(0), 0);
  EXPECT_EQ(t.socket_of_l2(1), 0);
  EXPECT_EQ(t.socket_of_l2(2), 1);
  EXPECT_EQ(t.socket_of_l2(3), 1);
}

TEST(Topology, SharingPredicates) {
  const Topology t = harpertown();
  EXPECT_TRUE(t.share_l2(0, 1));
  EXPECT_FALSE(t.share_l2(1, 2));
  EXPECT_TRUE(t.share_socket(1, 2));
  EXPECT_FALSE(t.share_socket(3, 4));
}

TEST(Topology, Distance) {
  const Topology t = harpertown();
  EXPECT_EQ(t.distance(5, 5), 0);
  EXPECT_EQ(t.distance(0, 1), 1);  // same L2
  EXPECT_EQ(t.distance(0, 2), 2);  // same socket, different L2
  EXPECT_EQ(t.distance(0, 4), 3);  // cross socket
  EXPECT_EQ(t.distance(4, 0), 3);  // symmetric
}

TEST(Topology, CoresOfL2) {
  const Topology t = harpertown();
  EXPECT_EQ(t.cores_of_l2(0), (std::vector<CoreId>{0, 1}));
  EXPECT_EQ(t.cores_of_l2(3), (std::vector<CoreId>{6, 7}));
}

TEST(Topology, LevelArities) {
  EXPECT_EQ(harpertown().level_arities(), (std::vector<int>{2, 2, 2}));
}

TEST(Topology, SingleSocketArities) {
  MachineConfig c = MachineConfig::tiny();  // 1 socket, 2 cores, 1 L2
  EXPECT_EQ(Topology(c).level_arities(), (std::vector<int>{2}));
}

TEST(Topology, QuadCoreL2Arities) {
  MachineConfig c;
  c.num_sockets = 2;
  c.cores_per_socket = 8;
  c.cores_per_l2 = 4;
  EXPECT_EQ(Topology(c).level_arities(), (std::vector<int>{4, 2, 2}));
}

TEST(Topology, RejectsInvalidConfig) {
  MachineConfig c;
  c.cores_per_socket = 3;
  c.cores_per_l2 = 2;  // 3 % 2 != 0
  EXPECT_THROW(Topology{c}, std::invalid_argument);
}

// ---------------------------------------------------------- socket mesh

TEST(TopologyMesh, FullyConnectedSocketsAreOneHop) {
  const Topology t = harpertown();
  EXPECT_EQ(t.socket_mesh_cols(), 0);
  EXPECT_EQ(t.socket_hops(0, 0), 0);
  EXPECT_EQ(t.socket_hops(0, 1), 1);
  EXPECT_EQ(t.socket_hops(1, 0), 1);
}

TEST(TopologyMesh, ManhattanHopsOnTheGrid) {
  // 8 sockets in a 4-column mesh: socket s sits at (s / 4, s % 4).
  MachineConfig c;
  c.num_sockets = 8;
  c.cores_per_socket = 2;
  c.cores_per_l2 = 1;
  c.socket_mesh_cols = 4;
  const Topology t(c);
  EXPECT_EQ(t.socket_mesh_cols(), 4);
  EXPECT_EQ(t.socket_hops(0, 0), 0);
  EXPECT_EQ(t.socket_hops(0, 1), 1);  // same row, adjacent columns
  EXPECT_EQ(t.socket_hops(0, 4), 1);  // same column, adjacent rows
  EXPECT_EQ(t.socket_hops(0, 5), 2);  // diagonal
  EXPECT_EQ(t.socket_hops(0, 7), 4);  // corner to corner: 1 + 3
  EXPECT_EQ(t.socket_hops(7, 0), 4);  // symmetric
}

TEST(TopologyMesh, DistanceDeepensWithHops) {
  MachineConfig c;
  c.num_sockets = 8;
  c.cores_per_socket = 2;
  c.cores_per_l2 = 1;
  c.socket_mesh_cols = 4;
  const Topology t(c);
  // Cores 0 (socket 0) and 15 (socket 7): 4 mesh hops -> distance 6; the
  // legacy fully connected machine reports 3 for every cross-socket pair.
  EXPECT_EQ(t.distance(0, 15), 6);
  EXPECT_EQ(t.distance(0, 2), 3);  // adjacent sockets keep the legacy value
  EXPECT_EQ(harpertown().distance(0, 4), 3);
}

TEST(TopologyMesh, RejectsRaggedMeshGeometry) {
  MachineConfig c;
  c.num_sockets = 8;
  c.cores_per_socket = 2;
  c.cores_per_l2 = 1;
  c.socket_mesh_cols = 3;  // 8 % 3 != 0
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.socket_mesh_cols = -1;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c.socket_mesh_cols = 4;
  EXPECT_NO_THROW(c.validate());
}

TEST(TopologyMesh, ManycorePresetIsWellFormed) {
  const MachineConfig c = MachineConfig::manycore();
  EXPECT_NO_THROW(c.validate());
  const Topology t(c);
  EXPECT_EQ(t.num_cores(), 256);
  EXPECT_EQ(t.num_l2(), 256);
  EXPECT_EQ(t.num_sockets(), 32);
  EXPECT_EQ(t.socket_mesh_cols(), 8);
  // Sockets 0=(0,0) and 31=(3,7): 3 + 7 = 10 hops.
  EXPECT_EQ(t.socket_hops(0, 31), 10);
}

TEST(Topology, TinyMachine) {
  const Topology t{MachineConfig::tiny()};
  EXPECT_EQ(t.num_cores(), 2);
  EXPECT_EQ(t.num_l2(), 1);
  EXPECT_TRUE(t.share_l2(0, 1));
  EXPECT_EQ(t.distance(0, 1), 1);
}

}  // namespace
}  // namespace tlbmap

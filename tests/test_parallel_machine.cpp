// Differential tests for the epoch-parallel simulator core (DESIGN.md
// Sec. 15). The engine's contract is *deterministic reduction*: for a fixed
// workload, mapping and epoch_events budget, every worker count produces
// bit-identical MachineStats and a byte-identical metrics time series —
// worker scheduling must be completely invisible in the results. On
// workloads with no cross-domain interaction (single-domain placements,
// thread-private pages) and a pre-populated page table, the epoch engine
// must also reproduce the serial reference loop exactly, event for event.
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mapping/mapping.hpp"
#include "npb/workload.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

WorkloadParams small_params(int threads = 8) {
  WorkloadParams p;
  p.num_threads = threads;
  p.size_scale = 0.5;
  p.iter_scale = 0.25;
  return p;
}

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    const Workload& workload, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload.num_threads(); ++t) {
    streams.push_back(workload.stream(t, seed));
  }
  return streams;
}

MachineConfig machine_variant(const std::string& variant) {
  if (variant == "uma") return MachineConfig::harpertown();
  MachineConfig m = MachineConfig::numa_harpertown();
  if (variant == "numa_interleave") m.numa_policy = NumaPolicy::kInterleave;
  return m;
}

/// One epoch-engine run; workers = 0 selects the serial reference loop.
MachineStats run_workers(const MachineConfig& machine_config,
                         const Workload& workload, const Mapping& mapping,
                         int workers, std::uint64_t seed,
                         Machine::RunConfig run = {}) {
  Machine machine(machine_config);
  run.thread_to_core = mapping;
  run.machine_workers = workers;
  return machine.run(streams_of(workload, seed), run);
}

struct ParallelParam {
  const char* app;
  const char* variant;  ///< "uma" | "numa_first_touch" | "numa_interleave"
};

class EpochEngineDifferential
    : public ::testing::TestWithParam<ParallelParam> {};

// The tentpole contract: worker count is invisible. workers = 1 is the
// deterministic serial reference of the epoch semantics; 2 and 8 must
// reproduce it bit for bit on every machine variant.
TEST_P(EpochEngineDifferential, WorkerCountIsInvisibleInStats) {
  const auto [app, variant] = GetParam();
  const auto workload = make_npb_workload(app, small_params());
  const MachineConfig config = machine_variant(variant);
  const Mapping mapping = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/97);
  const MachineStats reference =
      run_workers(config, *workload, mapping, /*workers=*/1, /*seed=*/5);
  EXPECT_GT(reference.accesses, 0u);
  for (const int workers : {2, 8}) {
    const MachineStats parallel =
        run_workers(config, *workload, mapping, workers, /*seed=*/5);
    EXPECT_TRUE(parallel == reference)
        << app << "/" << variant << ": workers=" << workers
        << " diverged from workers=1 (cycles " << parallel.execution_cycles
        << " vs " << reference.execution_cycles << ", invalidations "
        << parallel.invalidations << " vs " << reference.invalidations
        << ", accesses " << parallel.accesses << " vs " << reference.accesses
        << ")";
  }
}

// The interval telemetry stream must be equally deterministic: same sample
// points, same counter values, byte-identical JSONL export.
TEST_P(EpochEngineDifferential, MetricsSeriesIsByteIdenticalAcrossWorkers) {
  const auto [app, variant] = GetParam();
  const auto workload = make_npb_workload(app, small_params());
  const MachineConfig config = machine_variant(variant);
  const Mapping mapping = identity_mapping(workload->num_threads());

  auto series_of = [&](int workers) {
    obs::ObsContext ctx;
    ctx.level = obs::ObsLevel::kPhases;
    Machine::RunConfig run;
    run.obs = &ctx;
    run.metrics_interval_events = 50000;
    run_workers(config, *workload, mapping, workers, /*seed=*/7, run);
    std::ostringstream out;
    ctx.metrics.series().export_jsonl(out);
    return out.str();
  };
  const std::string reference = series_of(1);
  EXPECT_FALSE(reference.empty());
  for (const int workers : {2, 8}) {
    EXPECT_EQ(series_of(workers), reference)
        << app << "/" << variant << ": workers=" << workers
        << " produced a different metrics series";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndMachines, EpochEngineDifferential,
    ::testing::Values(ParallelParam{"SP", "uma"}, ParallelParam{"CG", "uma"},
                      ParallelParam{"FT", "numa_first_touch"},
                      ParallelParam{"MG", "numa_first_touch"},
                      ParallelParam{"LU", "numa_interleave"}),
    [](const ::testing::TestParamInfo<ParallelParam>& info) {
      return std::string(info.param.app) + "_" + info.param.variant;
    });

/// Deterministic round-robin rotation: threads shift one core to the right
/// every other barrier. Pure function of the barrier index, so it cannot
/// leak worker scheduling into the run.
class RotatingPolicy : public MigrationPolicy {
 public:
  RotatingPolicy(int threads, int cores) : threads_(threads), cores_(cores) {}

  std::vector<CoreId> on_barrier(int barrier_index, Cycles) override {
    if (barrier_index % 2 != 0) return {};
    std::vector<CoreId> next(static_cast<std::size_t>(threads_));
    for (int t = 0; t < threads_; ++t) {
      next[static_cast<std::size_t>(t)] = (t + barrier_index / 2) % cores_;
    }
    return next;
  }

 private:
  int threads_;
  int cores_;
};

// Migrating runs re-shard mid-run: thread ownership moves between L2
// domains at barrier releases. Worker count must stay invisible.
TEST(EpochEngineDifferential, MigratingRunsMatchAcrossWorkerCounts) {
  const auto workload = make_npb_workload("SP", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping initial = identity_mapping(workload->num_threads());

  auto run_migrating = [&](int workers) {
    RotatingPolicy policy(workload->num_threads(), config.num_cores());
    Machine::RunConfig run;
    run.migration = &policy;
    return run_workers(config, *workload, initial, workers, /*seed=*/11,
                       run);
  };
  const MachineStats reference = run_migrating(1);
  for (const int workers : {2, 8}) {
    const MachineStats parallel = run_migrating(workers);
    EXPECT_TRUE(parallel == reference)
        << "workers=" << workers << " diverged on a migrating run (cycles "
        << parallel.execution_cycles << " vs " << reference.execution_cycles
        << ")";
  }
}

/// Thread-private strided accesses: page sets are disjoint across threads,
/// so no cross-domain coherence and no shared first touches exist.
class PrivateStream : public ThreadStream {
 public:
  PrivateStream(ThreadId tid, std::uint64_t accesses)
      : base_(static_cast<VirtAddr>(tid) << 28), remaining_(accesses) {}

  TraceEvent next() override {
    if (remaining_ == 0) return TraceEvent::make_end();
    --remaining_;
    const VirtAddr addr = base_ + (remaining_ * 97) % (1u << 20);
    const AccessType type =
        remaining_ % 3 == 0 ? AccessType::kWrite : AccessType::kRead;
    return TraceEvent::make_access(addr, type, /*compute_gap=*/3);
  }

 private:
  VirtAddr base_;
  std::uint64_t remaining_;
};

std::vector<std::unique_ptr<ThreadStream>> private_streams(int threads,
                                                           std::uint64_t n) {
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < threads; ++t) {
    streams.push_back(std::make_unique<PrivateStream>(t, n));
  }
  return streams;
}

// Legacy anchor 1: with thread-private pages and a pre-populated page table
// there is no cross-domain interaction and no first-touch yield, so the
// epoch engine must reproduce the serial reference loop *exactly* — same
// counters, same per-thread clocks, same execution_cycles — even across
// multiple L2 domains. (The priming run populates the page table, which
// deliberately survives flush_caches, exactly like physical placement
// survives on a real machine.)
TEST(EpochEngineLegacyAnchor, PrivatePagesMatchSerialLoopExactly) {
  const MachineConfig config = MachineConfig::harpertown();
  const int threads = 8;
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(threads);

  auto primed_run = [&](int workers) {
    Machine machine(config);
    Machine::RunConfig prime = run;
    machine.run(private_streams(threads, 20000), prime);  // maps every page
    Machine::RunConfig measured = run;
    measured.machine_workers = workers;
    return machine.run(private_streams(threads, 20000), measured);
  };
  const MachineStats serial = primed_run(0);
  for (const int workers : {1, 4}) {
    const MachineStats epoch = primed_run(workers);
    EXPECT_TRUE(epoch == serial)
        << "workers=" << workers
        << ": epoch engine diverged from the serial loop on a private "
        << "workload (cycles " << epoch.execution_cycles << " vs "
        << serial.execution_cycles << ")";
  }
}

// Legacy anchor 2: with every thread inside one L2 domain all sharing is
// intra-shard and runs against live state, so a real NPB workload with a
// pre-populated page table must also match the serial loop exactly.
TEST(EpochEngineLegacyAnchor, SingleDomainNpbMatchesSerialLoopExactly) {
  const MachineConfig config = MachineConfig::harpertown();
  const auto workload = make_npb_workload("CG", small_params(/*threads=*/2));
  // Both threads on the cores of L2 domain 0.
  ASSERT_GE(config.cores_per_l2, 2);
  Machine::RunConfig run;
  run.thread_to_core = {0, 1};

  auto primed_run = [&](int workers) {
    Machine machine(config);
    Machine::RunConfig prime = run;
    machine.run(streams_of(*workload, /*seed=*/13), prime);
    Machine::RunConfig measured = run;
    measured.machine_workers = workers;
    return machine.run(streams_of(*workload, /*seed=*/13), measured);
  };
  const MachineStats serial = primed_run(0);
  const MachineStats epoch = primed_run(2);
  EXPECT_TRUE(epoch == serial)
      << "single-domain epoch run diverged from the serial loop (cycles "
      << epoch.execution_cycles << " vs " << serial.execution_cycles
      << ", l2 " << epoch.l2_hits << "/" << epoch.l2_misses << " vs "
      << serial.l2_hits << "/" << serial.l2_misses << ")";
}

// The issue's acceptance criterion, minus wall-clock (CI benchmarks that):
// on the 256-core manycore preset, workers=8 must equal workers=1 bit for
// bit in deterministic mode.
TEST(EpochEngineAcceptance, Manycore256Workers8MatchesWorkers1) {
  WorkloadParams params = small_params(64);
  params.size_scale = 0.25;
  params.iter_scale = 0.1;
  const auto workload = make_npb_workload("SP", params);
  const MachineConfig config = MachineConfig::manycore();
  ASSERT_EQ(config.num_cores(), 256);
  const Mapping mapping = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/71);
  const MachineStats reference =
      run_workers(config, *workload, mapping, /*workers=*/1, /*seed=*/23);
  const MachineStats parallel =
      run_workers(config, *workload, mapping, /*workers=*/8, /*seed=*/23);
  EXPECT_GT(reference.snoop_transactions, 0u);
  EXPECT_TRUE(parallel == reference)
      << "workers=8 diverged from workers=1 on manycore (cycles "
      << parallel.execution_cycles << " vs " << reference.execution_cycles
      << ")";
}

// epoch_events is part of the simulated semantics (it bounds cross-domain
// staleness), but for any fixed budget the worker count must still vanish.
TEST(EpochEngineSemantics, SmallEpochBudgetStaysWorkerInvariant) {
  const auto workload = make_npb_workload("UA", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping mapping = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/41);
  Machine::RunConfig run;
  run.epoch_events = 64;  // dozens of commits per barrier interval
  const MachineStats reference =
      run_workers(config, *workload, mapping, /*workers=*/1, /*seed=*/3, run);
  const MachineStats parallel =
      run_workers(config, *workload, mapping, /*workers=*/8, /*seed=*/3, run);
  EXPECT_TRUE(parallel == reference);
}

// After an epoch run the machine must be left in a fully consistent,
// worker-invariant state: directory matching the caches, memos dropped,
// and a warm follow-up serial run identical no matter how many workers the
// epoch run used. (The warm state itself legitimately differs from what a
// serial first run leaves behind — epoch semantics relax cross-domain
// interleaving — but it must not depend on worker scheduling.)
TEST(EpochEngineStateHandoff, WarmStateIsWorkerInvariant) {
  const auto workload = make_npb_workload("SP", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping mapping = identity_mapping(workload->num_threads());

  auto serial_run_after_epoch_run = [&](int first_workers) {
    Machine machine(config);
    Machine::RunConfig first;
    first.thread_to_core = mapping;
    first.machine_workers = first_workers;
    machine.run(streams_of(*workload, /*seed=*/19), first);
    EXPECT_TRUE(machine.hierarchy().coherence().directory_consistent());
    Machine::RunConfig second;
    second.thread_to_core = mapping;
    second.flush_first = false;  // inherit the first run's warm state
    return machine.run(streams_of(*workload, /*seed=*/29), second);
  };
  const MachineStats reference = serial_run_after_epoch_run(1);
  EXPECT_GT(reference.l2_hits, 0u);
  for (const int workers : {2, 8}) {
    const MachineStats warm = serial_run_after_epoch_run(workers);
    EXPECT_TRUE(warm == reference)
        << "warm serial run diverged after an epoch run with workers="
        << workers << " (cycles " << warm.execution_cycles << " vs "
        << reference.execution_cycles << ")";
  }
}

// Fast (non-deterministic) mode trades canonical first-touch order for
// speed. Event-stream-derived counters cannot change; placement-derived
// ones may. It must at least complete and agree on the demand stream.
TEST(EpochEngineFastMode, CompletesAndAgreesOnDemandStream) {
  const auto workload = make_npb_workload("CG", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping mapping = identity_mapping(workload->num_threads());
  Machine::RunConfig fast;
  fast.deterministic = false;
  const MachineStats loose =
      run_workers(config, *workload, mapping, /*workers=*/8, /*seed=*/37,
                  fast);
  const MachineStats strict =
      run_workers(config, *workload, mapping, /*workers=*/8, /*seed=*/37);
  EXPECT_EQ(loose.accesses, strict.accesses);
  EXPECT_EQ(loose.reads, strict.reads);
  EXPECT_EQ(loose.writes, strict.writes);
  EXPECT_GT(loose.execution_cycles, 0u);
}

TEST(EpochEngineValidation, ObserversAreRejected) {
  class NullObserver : public MachineObserver {
   public:
    Cycles on_access(ThreadId, CoreId, VirtAddr, PageNum, AccessType, bool,
                     Cycles) override {
      return 0;
    }
    Cycles on_tick(Cycles) override { return 0; }
  };
  const auto workload = make_npb_workload("IS", small_params());
  Machine machine(MachineConfig::harpertown());
  NullObserver observer;
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  run.observer = &observer;
  run.machine_workers = 2;
  const auto result =
      machine.try_run(streams_of(*workload, /*seed=*/1), run);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

TEST(EpochEngineValidation, ZeroEpochBudgetIsRejected) {
  const auto workload = make_npb_workload("IS", small_params());
  Machine machine(MachineConfig::harpertown());
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  run.machine_workers = 2;
  run.epoch_events = 0;
  const auto result =
      machine.try_run(streams_of(*workload, /*seed=*/1), run);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidArgument);
}

// Strict-mode migration failures surface as the same structured error the
// serial loop returns, from inside the commit.
TEST(EpochEngineValidation, StrictInvalidMigrationAborts) {
  class BrokenPolicy : public MigrationPolicy {
   public:
    std::vector<CoreId> on_barrier(int, Cycles) override {
      return {0};  // wrong size
    }
  };
  const auto workload = make_npb_workload("SP", small_params());
  Machine machine(MachineConfig::harpertown());
  BrokenPolicy policy;
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  run.migration = &policy;
  run.machine_workers = 2;
  const auto result =
      machine.try_run(streams_of(*workload, /*seed=*/1), run);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInvalidMapping);
}

}  // namespace
}  // namespace tlbmap

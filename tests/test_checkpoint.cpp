// Crash-safety tests (DESIGN.md Sec. 12): the atomic file primitives, the
// TLBK checkpoint envelope and its corruption taxonomy, detector/mapper
// state round-trips, and — the acceptance bar — resume determinism: a suite
// interrupted and resumed must produce a SuiteResult bit-identical to an
// uninterrupted run, and a corrupted checkpoint must be rejected with a
// structured error and a clean fresh-run fallback, never a crash.
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/dynamic.hpp"
#include "core/experiment.hpp"
#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "core/shutdown.hpp"
#include "detect/hm_detector.hpp"
#include "detect/sm_detector.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

namespace fs = std::filesystem;

/// Fresh scratch directory per test, under gtest's temp root.
fs::path scratch_dir(const std::string& name) {
  fs::path dir = fs::path(testing::TempDir()) /
                 ("tlbmap_ckpt_" + name + "_" + std::to_string(::getpid()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// The shutdown flag is process-wide; every test that touches it clears it
/// on both ends so a failing test cannot poison its neighbours.
struct ShutdownGuard {
  ShutdownGuard() { reset_shutdown(); }
  ~ShutdownGuard() { reset_shutdown(); }
};

/// Canned stream fed from a vector of events (same idiom as test_machine).
class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

Machine::RunConfig identity_run(int n) {
  Machine::RunConfig cfg;
  for (int t = 0; t < n; ++t) cfg.thread_to_core.push_back(t);
  return cfg;
}

/// One-app suite small enough for differential runs in a unit test.
SuiteConfig tiny_suite() {
  SuiteConfig config;
  config.apps = {"EP"};
  config.repetitions = 2;
  config.use_cache = false;
  config.workload.iter_scale = 0.2;
  config.detect_iter_scale = 1.0;
  return config;
}

// ---------------------------------------------------------------------------
// Atomic file primitives.

TEST(Io, Crc32KnownVectors) {
  EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(crc32(""), 0u);
}

TEST(Io, AtomicWriteCreatesAndReplaces) {
  const fs::path dir = scratch_dir("atomic_write");
  const fs::path file = dir / "artifact.txt";

  ASSERT_TRUE(atomic_write_file(file, "first").has_value());
  auto read = read_file(file);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, "first");

  ASSERT_TRUE(atomic_write_file(file, "second, longer contents").has_value());
  read = read_file(file);
  ASSERT_TRUE(read.has_value());
  EXPECT_EQ(*read, "second, longer contents");

  // No temp files survive a successful write.
  int entries = 0;
  for (const auto& e : fs::directory_iterator(dir)) {
    ++entries;
    EXPECT_EQ(e.path().filename(), "artifact.txt");
  }
  EXPECT_EQ(entries, 1);
}

TEST(Io, AtomicWriteMissingParentIsStructuredError) {
  const fs::path dir = scratch_dir("atomic_missing");
  const auto written = atomic_write_file(dir / "no_such" / "f.txt", "x");
  ASSERT_FALSE(written.has_value());
  EXPECT_EQ(written.error().code, ErrorCode::kIoError);
  EXPECT_FALSE(written.error().message.empty());
}

TEST(Io, ReadFileMissingIsStructuredError) {
  const fs::path dir = scratch_dir("read_missing");
  const auto read = read_file(dir / "absent.txt");
  ASSERT_FALSE(read.has_value());
  EXPECT_EQ(read.error().code, ErrorCode::kIoError);
}

TEST(Io, ConcurrentWritersNeverExposeTornFile) {
  const fs::path dir = scratch_dir("concurrent");
  const fs::path file = dir / "contended.txt";
  constexpr int kWriters = 4;
  constexpr int kRounds = 20;
  constexpr std::size_t kSize = 8192;

  ASSERT_TRUE(
      atomic_write_file(file, std::string(kSize, 'Z')).has_value());

  std::atomic<bool> done{false};
  std::atomic<int> torn{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto read = read_file(file);
      if (!read.has_value()) continue;  // raced the rename window
      const std::string& body = *read;
      // Every observed file must be one complete variant: full length and
      // a single repeated byte.
      if (body.size() != kSize ||
          body.find_first_not_of(body[0]) != std::string::npos) {
        torn.fetch_add(1);
      }
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      const std::string body(kSize, static_cast<char>('A' + w));
      for (int i = 0; i < kRounds; ++i) {
        ASSERT_TRUE(atomic_write_file(file, body).has_value());
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(torn.load(), 0);
}

TEST(Io, KilledWriterLeavesTargetComplete) {
  const fs::path dir = scratch_dir("killed_writer");
  const fs::path file = dir / "artifact.bin";
  constexpr std::size_t kSize = 1 << 16;

  ASSERT_TRUE(atomic_write_file(file, std::string(kSize, 'A')).has_value());

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: rewrite the artifact in a tight loop until killed mid-write.
    for (;;) {
      (void)atomic_write_file(file, std::string(kSize, 'B'));
    }
    _exit(0);  // unreachable
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_EQ(::kill(child, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFSIGNALED(status));

  // SIGKILL at any instant must leave the target as one complete variant;
  // a leftover temp file is acceptable, a torn target is not.
  const auto read = read_file(file);
  ASSERT_TRUE(read.has_value());
  ASSERT_EQ(read->size(), kSize);
  EXPECT_TRUE(*read == std::string(kSize, 'A') ||
              *read == std::string(kSize, 'B'));
}

// ---------------------------------------------------------------------------
// Envelope: seal/unseal and the corruption taxonomy.

TEST(Checkpoint, SealUnsealRoundTrip) {
  const std::string payload = "hello checkpoint";
  const std::string bytes = seal_checkpoint(payload, 0xABCDu);
  const auto back = unseal_checkpoint(bytes, 0xABCDu);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, payload);
}

TEST(Checkpoint, TruncatedHeaderIsCorrupt) {
  const std::string bytes = seal_checkpoint("payload", 1);
  const auto r = unseal_checkpoint(bytes.substr(0, 10), 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("truncated"), std::string::npos);
  EXPECT_NE(r.error().message.find("byte"), std::string::npos);
}

TEST(Checkpoint, BadMagicIsCorrupt) {
  std::string bytes = seal_checkpoint("payload", 1);
  bytes[0] = 'X';
  const auto r = unseal_checkpoint(bytes, 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("magic"), std::string::npos);
}

TEST(Checkpoint, VersionSkewIsCorruptWithVersionInMessage) {
  std::string bytes = seal_checkpoint("payload", 1);
  bytes[4] = static_cast<char>(kCheckpointVersion + 1);  // version, offset 4
  const auto r = unseal_checkpoint(bytes, 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("version"), std::string::npos);
}

TEST(Checkpoint, SizeFieldMismatchIsCorrupt) {
  std::string bytes = seal_checkpoint("payload", 1);
  bytes.pop_back();  // file now one byte shorter than the size field claims
  const auto r = unseal_checkpoint(bytes, 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("size"), std::string::npos);
}

TEST(Checkpoint, PayloadBitFlipIsCrcMismatch) {
  std::string bytes = seal_checkpoint("payload", 1);
  bytes.back() ^= 0x01;
  const auto r = unseal_checkpoint(bytes, 1);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("CRC"), std::string::npos);
}

TEST(Checkpoint, WrongConfigHashIsMismatch) {
  const std::string bytes = seal_checkpoint("payload", 0x1111u);
  const auto r = unseal_checkpoint(bytes, 0x2222u);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCheckpointMismatch);
}

TEST(Checkpoint, IntegrityIsCheckedBeforeIdentity) {
  // A corrupt file must never be reported as a config mismatch, even when
  // both problems are present: its hash field is untrustworthy.
  std::string bytes = seal_checkpoint("payload", 0x1111u);
  bytes.back() ^= 0x01;
  const auto r = unseal_checkpoint(bytes, 0x2222u);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
}

// ---------------------------------------------------------------------------
// Suite checkpoint payload round-trip.

SuiteCheckpoint sample_checkpoint() {
  SuiteCheckpoint ckpt;
  ckpt.config_hash = 0xDEADBEEFu;
  ckpt.detect_tasks = 3;
  ckpt.eval_tasks = 6;

  DetectionResult det;
  det.mechanism = "SM";
  det.searches = 17;
  det.matrix = CommMatrix(4);
  det.matrix.add(0, 1, 100);
  det.matrix.add(2, 3, 41);
  det.stats.accesses = 1234;
  det.stats.tlb_misses = 56;
  det.stats.invalidations = 7;
  det.stats.execution_cycles = 99999;
  ckpt.detect_done[0] = det;
  det.mechanism = "oracle";
  det.searches = 0;
  ckpt.detect_done[2] = det;

  ckpt.map_done = true;
  ckpt.sm_mappings = {{0, 2, 1, 3}};
  ckpt.hm_mappings = {{3, 1, 2, 0}};

  MachineStats stats;
  stats.accesses = 777;
  stats.snoop_transactions = 13;
  stats.execution_cycles = 4242;
  ckpt.eval_done[1] = stats;
  ckpt.eval_done[5] = MachineStats{};
  return ckpt;
}

TEST(Checkpoint, SuiteCheckpointRoundTrip) {
  const SuiteCheckpoint ckpt = sample_checkpoint();
  const std::string bytes = serialize_checkpoint(ckpt);
  const auto back = parse_checkpoint(bytes, ckpt.config_hash);
  ASSERT_TRUE(back.has_value());

  EXPECT_EQ(back->config_hash, ckpt.config_hash);
  EXPECT_EQ(back->detect_tasks, ckpt.detect_tasks);
  EXPECT_EQ(back->eval_tasks, ckpt.eval_tasks);
  EXPECT_EQ(back->map_done, ckpt.map_done);
  EXPECT_EQ(back->sm_mappings, ckpt.sm_mappings);
  EXPECT_EQ(back->hm_mappings, ckpt.hm_mappings);
  ASSERT_EQ(back->detect_done.size(), ckpt.detect_done.size());
  for (const auto& [idx, det] : ckpt.detect_done) {
    const auto it = back->detect_done.find(idx);
    ASSERT_NE(it, back->detect_done.end());
    EXPECT_EQ(it->second.mechanism, det.mechanism);
    EXPECT_EQ(it->second.searches, det.searches);
    EXPECT_TRUE(it->second.matrix == det.matrix);
    EXPECT_TRUE(it->second.stats == det.stats);
  }
  ASSERT_EQ(back->eval_done.size(), ckpt.eval_done.size());
  for (const auto& [idx, stats] : ckpt.eval_done) {
    const auto it = back->eval_done.find(idx);
    ASSERT_NE(it, back->eval_done.end());
    EXPECT_TRUE(it->second == stats);
  }

  // A second serialization is byte-identical (the file is canonical).
  EXPECT_EQ(serialize_checkpoint(*back), bytes);
}

TEST(Checkpoint, TrailingPayloadBytesAreRejected) {
  const SuiteCheckpoint ckpt = sample_checkpoint();
  const auto payload =
      unseal_checkpoint(serialize_checkpoint(ckpt), ckpt.config_hash);
  ASSERT_TRUE(payload.has_value());
  const std::string resealed =
      seal_checkpoint(*payload + "Z", ckpt.config_hash);
  const auto r = parse_checkpoint(resealed, ckpt.config_hash);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kCorruptCheckpoint);
  EXPECT_NE(r.error().message.find("trailing"), std::string::npos);
}

TEST(Checkpoint, SaveLoadRoundTripsThroughDisk) {
  const fs::path dir = scratch_dir("save_load");
  const fs::path file = dir / "suite.ckpt";
  const SuiteCheckpoint ckpt = sample_checkpoint();
  ASSERT_TRUE(save_checkpoint(file, ckpt).has_value());
  const auto back = load_checkpoint(file, ckpt.config_hash);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(serialize_checkpoint(*back), serialize_checkpoint(ckpt));

  // Missing file surfaces as a filesystem error, not corruption.
  const auto missing = load_checkpoint(dir / "absent.ckpt", 0);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::kIoError);
}

// ---------------------------------------------------------------------------
// Detector / online-mapper state snapshots.

TEST(Checkpoint, SmStateRoundTrip) {
  SmDetectorState state;
  state.matrix = CommMatrix(8);
  state.matrix.add(1, 5, 12);
  state.matrix.add(0, 7, 3);
  state.searches = 21;
  state.misses_seen = 400;
  state.miss_counter = 6;
  const auto back = parse_sm_state(serialize_sm_state(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == state);
}

TEST(Checkpoint, HmStateRoundTrip) {
  HmDetectorState state;
  state.matrix = CommMatrix(8);
  state.matrix.add(2, 3, 9);
  state.searches = 4;
  state.misses_seen = 1000;
  state.last_sweep = 800'000;
  state.pending_delay = 123;
  state.retry_count = 2;
  state.retry_at = 900'000;
  const auto back = parse_hm_state(serialize_hm_state(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == state);
}

TEST(Checkpoint, MapperStateRoundTripAndFileTag) {
  OnlineMapperState state;
  state.detector.matrix = CommMatrix(4);
  state.detector.matrix.add(0, 3, 50);
  state.detector.searches = 11;
  state.detector.misses_seen = 77;
  state.mapping = {2, 0, 3, 1};
  state.migrations = 3;
  state.remap_decisions = 5;
  state.degraded_decisions = 1;
  state.cooldown_left = 2;
  // Self-stabilization trail (PR 10): an open canary transaction with its
  // phase-anchored baseline, rollback damping, and phase-detector snapshot
  // must all survive the codec.
  state.rollbacks = 2;
  state.canary_commits = 4;
  state.backoff_skips = 6;
  state.canary_left = 1;
  state.backoff_left = 3;
  state.phase_rollbacks = 2;
  state.canary_prev = {0, 1, 2, 3};
  state.canary_cost = 123'456;
  state.canary_accesses = 9'876;
  state.baseline_cost = 55'555;
  state.baseline_accesses = 4'444;
  state.decision_cost = 222'222;
  state.decision_accesses = 11'111;
  state.phase_cost = 77'777;
  state.phase_accesses = 6'666;
  state.phase.epoch = 5;
  state.phase.has_reference = true;
  state.phase.reference = CommMatrix(4);
  state.phase.reference.add(1, 2, 40);
  state.phase.ref_accesses = {10, 20, 30, 40};
  state.phase.ref_misses = {1, 2, 3, 4};
  state.phase.window_accesses = {5, 6, 7, 8};
  state.phase.window_misses = {0, 1, 0, 2};

  const auto back = parse_mapper_state(serialize_mapper_state(state));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(*back == state);

  const fs::path dir = scratch_dir("mapper_ckpt");
  const fs::path file = dir / "mapper.ckpt";
  ASSERT_TRUE(save_mapper_checkpoint(file, state, /*tag=*/42).has_value());
  const auto loaded = load_mapper_checkpoint(file, 42);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(*loaded == state);
  // A snapshot from one setup is rejected structurally in another.
  const auto wrong = load_mapper_checkpoint(file, 43);
  ASSERT_FALSE(wrong.has_value());
  EXPECT_EQ(wrong.error().code, ErrorCode::kCheckpointMismatch);
}

TEST(Checkpoint, GarbageDetectorPayloadsAreCorrupt) {
  const auto sm = parse_sm_state("garbage");
  ASSERT_FALSE(sm.has_value());
  EXPECT_EQ(sm.error().code, ErrorCode::kCorruptCheckpoint);
  const auto hm = parse_hm_state("");
  ASSERT_FALSE(hm.has_value());
  EXPECT_EQ(hm.error().code, ErrorCode::kCorruptCheckpoint);
  const auto mp = parse_mapper_state("\x01\x02\x03");
  ASSERT_FALSE(mp.has_value());
  EXPECT_EQ(mp.error().code, ErrorCode::kCorruptCheckpoint);
}

TEST(Checkpoint, LiveDetectorRestoreRoundTrips) {
  Machine machine(MachineConfig::tiny());

  SmDetectorState sm_state;
  sm_state.matrix = CommMatrix(2);
  sm_state.matrix.add(0, 1, 64);
  sm_state.searches = 8;
  sm_state.misses_seen = 120;
  sm_state.miss_counter = 3;
  SmDetector sm(machine, 2);
  sm.restore(sm_state);
  EXPECT_TRUE(sm.state() == sm_state);

  HmDetectorState hm_state;
  hm_state.matrix = CommMatrix(2);
  hm_state.matrix.add(0, 1, 7);
  hm_state.searches = 2;
  hm_state.last_sweep = 400'000;
  HmDetector hm(machine, 2);
  hm.restore(hm_state);
  EXPECT_TRUE(hm.state() == hm_state);

  // Shape mismatches are a caller bug, rejected loudly.
  SmDetectorState wrong;
  wrong.matrix = CommMatrix(5);
  EXPECT_THROW(sm.restore(wrong), std::invalid_argument);
}

TEST(Checkpoint, OnlineMapperRestoreRejectsShapeMismatch) {
  Machine machine(MachineConfig::tiny());
  OnlineMapper mapper(machine, 2, Mapping{0, 1});

  OnlineMapperState state = mapper.state();
  state.migrations = 9;
  state.cooldown_left = 4;
  state.detector.misses_seen = 55;
  mapper.restore(state);
  EXPECT_TRUE(mapper.state() == state);

  OnlineMapperState wrong = state;
  wrong.mapping = {0, 1, 2};
  EXPECT_THROW(mapper.restore(wrong), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Cooperative shutdown: machine-level and suite-level.

TEST(Shutdown, MachineTryRunReturnsInterrupted) {
  ShutdownGuard guard;
  Machine machine(MachineConfig::tiny());
  request_shutdown();
  const auto result =
      machine.try_run(streams_of({{}, {}}), identity_run(2));
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kInterrupted);
}

TEST(Shutdown, MachineRunThrowsInterruptedError) {
  ShutdownGuard guard;
  Machine machine(MachineConfig::tiny());
  request_shutdown();
  EXPECT_THROW(machine.run(streams_of({{}, {}}), identity_run(2)),
               InterruptedError);
}

TEST(Shutdown, SuiteInterruptedAtStartSavesEmptyProgress) {
  ShutdownGuard guard;
  const fs::path dir = scratch_dir("suite_interrupt");
  SuiteConfig config = tiny_suite();
  config.checkpoint_dir = dir.string();

  request_shutdown();
  const SuiteResult result = run_suite(config);
  EXPECT_TRUE(result.interrupted);
  EXPECT_TRUE(fs::exists(dir / "suite.ckpt"));

  const auto ckpt =
      load_checkpoint(dir / "suite.ckpt", suite_config_hash(config));
  ASSERT_TRUE(ckpt.has_value());
  EXPECT_EQ(ckpt->detect_done.size(), 0u);
  EXPECT_FALSE(ckpt->map_done);
}

// ---------------------------------------------------------------------------
// Resume determinism: the acceptance bar of DESIGN.md Sec. 12.

TEST(Resume, PartialCheckpointContinuesBitIdentically) {
  ShutdownGuard guard;
  SuiteConfig reference_config = tiny_suite();
  const SuiteResult reference = run_suite(reference_config);
  ASSERT_FALSE(reference.degraded());
  ASSERT_EQ(reference.apps.size(), 1u);

  // Hand-build the checkpoint an interrupted run would have left after the
  // first two detect tasks (task idx = app*3 + {SM, HM, oracle}).
  const fs::path dir = scratch_dir("resume_partial");
  SuiteCheckpoint ckpt;
  ckpt.config_hash = suite_config_hash(reference_config);
  ckpt.detect_tasks = 3;
  ckpt.eval_tasks = 6;
  ckpt.detect_done[0] = reference.apps[0].sm_detection;
  ckpt.detect_done[1] = reference.apps[0].hm_detection;
  ASSERT_TRUE(save_checkpoint(dir / "suite.ckpt", ckpt).has_value());

  SuiteConfig resume_config = reference_config;
  resume_config.checkpoint_dir = dir.string();
  resume_config.resume = true;
  obs::ObsContext ctx;
  const SuiteResult resumed = run_suite(resume_config, nullptr, &ctx);

  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(serialize_suite(resumed), serialize_suite(reference));
  EXPECT_EQ(ctx.metrics.counter_value("checkpoint.resumed_tasks"), 2u);
  EXPECT_EQ(ctx.metrics.counter_value("checkpoint.rejected"), 0u);
  // A completed suite retires its checkpoint.
  EXPECT_FALSE(fs::exists(dir / "suite.ckpt"));
}

TEST(Resume, InterruptThenResumeMatchesUninterruptedRun) {
  ShutdownGuard guard;
  SuiteConfig reference_config = tiny_suite();
  const SuiteResult reference = run_suite(reference_config);
  ASSERT_FALSE(reference.degraded());

  const fs::path dir = scratch_dir("resume_live");
  SuiteConfig config = reference_config;
  config.checkpoint_dir = dir.string();

  // Interrupt the run from a side thread; wherever the shutdown lands, the
  // resumed result must be bit-identical to the uninterrupted reference.
  std::thread interrupter([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    request_shutdown();
  });
  const SuiteResult first = run_suite(config);
  interrupter.join();
  reset_shutdown();

  SuiteConfig resume_config = config;
  resume_config.resume = true;
  const SuiteResult resumed = run_suite(resume_config);
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(serialize_suite(resumed), serialize_suite(reference));
  EXPECT_FALSE(fs::exists(dir / "suite.ckpt"));
}

TEST(Resume, GarbageCheckpointFallsBackToFreshRun) {
  ShutdownGuard guard;
  SuiteConfig reference_config = tiny_suite();
  const SuiteResult reference = run_suite(reference_config);

  const fs::path dir = scratch_dir("resume_garbage");
  ASSERT_TRUE(
      atomic_write_file(dir / "suite.ckpt", "definitely not a checkpoint")
          .has_value());

  SuiteConfig config = reference_config;
  config.checkpoint_dir = dir.string();
  config.resume = true;
  obs::ObsContext ctx;
  const SuiteResult result = run_suite(config, nullptr, &ctx);

  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(serialize_suite(result), serialize_suite(reference));
  EXPECT_EQ(ctx.metrics.counter_value("checkpoint.rejected"), 1u);
}

TEST(Resume, ForeignConfigCheckpointIsRejectedAndRunIsFresh) {
  ShutdownGuard guard;
  SuiteConfig reference_config = tiny_suite();
  const SuiteResult reference = run_suite(reference_config);

  // A structurally valid checkpoint sealed for a different config hash.
  const fs::path dir = scratch_dir("resume_foreign");
  SuiteCheckpoint foreign;
  foreign.config_hash = suite_config_hash(reference_config) ^ 0x1;
  foreign.detect_tasks = 3;
  foreign.eval_tasks = 6;
  ASSERT_TRUE(save_checkpoint(dir / "suite.ckpt", foreign).has_value());

  SuiteConfig config = reference_config;
  config.checkpoint_dir = dir.string();
  config.resume = true;
  obs::ObsContext ctx;
  const SuiteResult result = run_suite(config, nullptr, &ctx);

  EXPECT_FALSE(result.interrupted);
  EXPECT_EQ(serialize_suite(result), serialize_suite(reference));
  EXPECT_EQ(ctx.metrics.counter_value("checkpoint.rejected"), 1u);
}

TEST(Resume, CheckpointShapeMismatchIsRejected) {
  // Same config hash but an impossible task shape (e.g. written by a buggy
  // producer): the second guard behind the hash rejects it cleanly.
  ShutdownGuard guard;
  SuiteConfig config = tiny_suite();
  const fs::path dir = scratch_dir("resume_shape");
  SuiteCheckpoint bad;
  bad.config_hash = suite_config_hash(config);
  bad.detect_tasks = 99;  // config implies 3
  bad.eval_tasks = 6;
  ASSERT_TRUE(save_checkpoint(dir / "suite.ckpt", bad).has_value());

  config.checkpoint_dir = dir.string();
  config.resume = true;
  obs::ObsContext ctx;
  const SuiteResult result = run_suite(config, nullptr, &ctx);
  EXPECT_FALSE(result.interrupted);
  EXPECT_FALSE(result.degraded());
  EXPECT_EQ(ctx.metrics.counter_value("checkpoint.rejected"), 1u);
}

}  // namespace
}  // namespace tlbmap

// Unit tests for the first-touch page table.
#include <gtest/gtest.h>

#include "sim/page_table.hpp"

namespace tlbmap {
namespace {

TEST(PageTable, PageOfUsesShift) {
  PageTable pt(12);  // 4 KB pages
  EXPECT_EQ(pt.page_of(0), 0u);
  EXPECT_EQ(pt.page_of(4095), 0u);
  EXPECT_EQ(pt.page_of(4096), 1u);
  EXPECT_EQ(pt.page_of(0x12345678), 0x12345678u >> 12);
}

TEST(PageTable, OffsetPreserved) {
  PageTable pt(12);
  EXPECT_EQ(pt.page_offset(4097), 1u);
  EXPECT_EQ(pt.page_offset(4096), 0u);
  EXPECT_EQ(pt.page_offset(8191), 4095u);
}

TEST(PageTable, FirstTouchAllocatesSequentialFrames) {
  PageTable pt(12);
  EXPECT_EQ(pt.frame_of(100), 0u);
  EXPECT_EQ(pt.frame_of(50), 1u);
  EXPECT_EQ(pt.frame_of(100), 0u);  // stable on re-touch
  EXPECT_EQ(pt.frame_of(7), 2u);
  EXPECT_EQ(pt.mapped_pages(), 3u);
}

TEST(PageTable, TranslatePreservesOffset) {
  PageTable pt(12);
  const PhysAddr phys = pt.translate(100 * 4096 + 123);
  EXPECT_EQ(phys & 4095u, 123u);
  EXPECT_EQ(phys >> 12, pt.frame_of(100));
}

TEST(PageTable, TranslationDeterministicByTouchOrder) {
  PageTable a(12), b(12);
  for (const VirtAddr addr : {40960u, 4096u, 81920u, 4097u}) {
    EXPECT_EQ(a.translate(addr), b.translate(addr));
  }
}

TEST(PageTable, MappedQueryDoesNotAllocate) {
  PageTable pt(12);
  EXPECT_FALSE(pt.mapped(9));
  EXPECT_EQ(pt.mapped_pages(), 0u);
  pt.frame_of(9);
  EXPECT_TRUE(pt.mapped(9));
}

TEST(PageTable, SamePageDifferentOffsetsShareFrame) {
  PageTable pt(12);
  const PhysAddr p1 = pt.translate(4096);
  const PhysAddr p2 = pt.translate(4097);
  EXPECT_EQ(p1 >> 12, p2 >> 12);
}

TEST(PageTable, DifferentShift) {
  PageTable pt(13);  // 8 KB pages
  EXPECT_EQ(pt.page_of(8191), 0u);
  EXPECT_EQ(pt.page_of(8192), 1u);
  EXPECT_EQ(pt.page_offset(8193), 1u);
}

}  // namespace
}  // namespace tlbmap

// Unit tests for the set-associative cache model.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cache.hpp"

namespace tlbmap {
namespace {

CacheConfig small_config() {
  // 4 sets x 2 ways, 64 B lines.
  return CacheConfig{/*size_bytes=*/512, /*line_size=*/64, /*ways=*/2,
                     /*latency=*/1};
}

TEST(Cache, StartsEmpty) {
  Cache c(small_config());
  EXPECT_EQ(c.valid_lines(), 0u);
  EXPECT_EQ(c.find(0), nullptr);
  EXPECT_EQ(c.peek(0), nullptr);
}

TEST(Cache, GeometryDerived) {
  Cache c(small_config());
  EXPECT_EQ(c.num_sets(), 4u);
  EXPECT_EQ(c.ways(), 2u);
}

TEST(Cache, InsertThenFind) {
  Cache c(small_config());
  EXPECT_FALSE(c.insert(17, MesiState::kExclusive).has_value());
  CacheLine* line = c.find(17);
  ASSERT_NE(line, nullptr);
  EXPECT_EQ(line->addr, 17u);
  EXPECT_EQ(line->state, MesiState::kExclusive);
}

TEST(Cache, PeekDoesNotTouchLru) {
  Cache c(small_config());
  // Same set: addresses congruent mod 4.
  c.insert(0, MesiState::kShared);
  c.insert(4, MesiState::kShared);
  // Peek at 0 (would make it MRU if peek touched LRU).
  EXPECT_NE(c.peek(0), nullptr);
  // Insert a third line in the set: the victim must be 0 (oldest insert).
  const auto evicted = c.insert(8, MesiState::kShared);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->addr, 0u);
}

TEST(Cache, FindRefreshesLru) {
  Cache c(small_config());
  c.insert(0, MesiState::kShared);
  c.insert(4, MesiState::kShared);
  ASSERT_NE(c.find(0), nullptr);  // 0 becomes MRU
  const auto evicted = c.insert(8, MesiState::kShared);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->addr, 4u);
}

TEST(Cache, EvictionReportsState) {
  Cache c(small_config());
  c.insert(0, MesiState::kModified);
  c.insert(4, MesiState::kShared);
  const auto evicted = c.insert(8, MesiState::kShared);
  ASSERT_TRUE(evicted.has_value());
  EXPECT_EQ(evicted->addr, 0u);
  EXPECT_EQ(evicted->state, MesiState::kModified);
}

TEST(Cache, InsertExistingUpdatesState) {
  Cache c(small_config());
  c.insert(5, MesiState::kShared);
  EXPECT_FALSE(c.insert(5, MesiState::kModified).has_value());
  EXPECT_EQ(c.peek(5)->state, MesiState::kModified);
  EXPECT_EQ(c.valid_lines(), 1u);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(small_config());
  c.insert(5, MesiState::kExclusive);
  const auto old = c.invalidate(5);
  ASSERT_TRUE(old.has_value());
  EXPECT_EQ(*old, MesiState::kExclusive);
  EXPECT_EQ(c.find(5), nullptr);
  EXPECT_EQ(c.valid_lines(), 0u);
}

TEST(Cache, InvalidateAbsentReturnsNullopt) {
  Cache c(small_config());
  EXPECT_FALSE(c.invalidate(99).has_value());
}

TEST(Cache, InvalidatedWayIsReusedWithoutEviction) {
  Cache c(small_config());
  c.insert(0, MesiState::kShared);
  c.insert(4, MesiState::kShared);
  c.invalidate(0);
  EXPECT_FALSE(c.insert(8, MesiState::kShared).has_value());
  EXPECT_NE(c.peek(4), nullptr);
  EXPECT_NE(c.peek(8), nullptr);
}

TEST(Cache, DifferentSetsDoNotConflict) {
  Cache c(small_config());
  for (LineAddr a = 0; a < 4; ++a) c.insert(a, MesiState::kShared);
  for (LineAddr a = 0; a < 4; ++a) {
    EXPECT_NE(c.peek(a), nullptr) << "line " << a;
  }
  EXPECT_EQ(c.valid_lines(), 4u);
}

TEST(Cache, FlushEmptiesEverything) {
  Cache c(small_config());
  for (LineAddr a = 0; a < 8; ++a) c.insert(a, MesiState::kModified);
  c.flush();
  EXPECT_EQ(c.valid_lines(), 0u);
  for (LineAddr a = 0; a < 8; ++a) EXPECT_EQ(c.peek(a), nullptr);
}

TEST(Cache, ForEachLineVisitsAllValid) {
  Cache c(small_config());
  c.insert(1, MesiState::kShared);
  c.insert(2, MesiState::kModified);
  c.insert(3, MesiState::kExclusive);
  std::set<LineAddr> seen;
  c.for_each_line([&](const CacheLine& l) { seen.insert(l.addr); });
  EXPECT_EQ(seen, (std::set<LineAddr>{1, 2, 3}));
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{0, 64, 2, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{512, 0, 2, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{512, 64, 0, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{500, 64, 2, 1}), std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{512, 48, 2, 1}), std::invalid_argument);
}

TEST(Cache, PeekMutableAllowsStateChange) {
  Cache c(small_config());
  c.insert(7, MesiState::kModified);
  CacheLine* line = c.peek_mutable(7);
  ASSERT_NE(line, nullptr);
  line->state = MesiState::kShared;
  EXPECT_EQ(c.peek(7)->state, MesiState::kShared);
}

TEST(Cache, MesiStateNames) {
  EXPECT_STREQ(to_string(MesiState::kInvalid), "I");
  EXPECT_STREQ(to_string(MesiState::kShared), "S");
  EXPECT_STREQ(to_string(MesiState::kExclusive), "E");
  EXPECT_STREQ(to_string(MesiState::kModified), "M");
}

// Property sweep over geometries: filling a cache with exactly `capacity`
// distinct lines of the same set-distribution must never evict; one more
// line per set must evict exactly the LRU.
struct Geometry {
  std::size_t size_bytes;
  std::size_t line_size;
  std::size_t ways;
};

class CacheGeometry : public ::testing::TestWithParam<Geometry> {};

TEST_P(CacheGeometry, FillWithoutEviction) {
  const auto [size, line, ways] = GetParam();
  Cache c(CacheConfig{size, line, ways, 1});
  const std::size_t capacity = c.num_sets() * c.ways();
  for (LineAddr a = 0; a < capacity; ++a) {
    EXPECT_FALSE(c.insert(a, MesiState::kShared).has_value())
        << "unexpected eviction at line " << a;
  }
  EXPECT_EQ(c.valid_lines(), capacity);
}

TEST_P(CacheGeometry, OverfillEvictsLruPerSet) {
  const auto [size, line, ways] = GetParam();
  Cache c(CacheConfig{size, line, ways, 1});
  const std::size_t sets = c.num_sets();
  const std::size_t capacity = sets * c.ways();
  for (LineAddr a = 0; a < capacity; ++a) c.insert(a, MesiState::kShared);
  // Address capacity+s maps to set s and must evict the oldest line of
  // that set, which is address s.
  for (std::size_t s = 0; s < sets; ++s) {
    const auto evicted = c.insert(capacity + s, MesiState::kShared);
    ASSERT_TRUE(evicted.has_value());
    EXPECT_EQ(evicted->addr, s);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Values(Geometry{512, 64, 1}, Geometry{512, 64, 2},
                      Geometry{512, 64, 8}, Geometry{4096, 64, 4},
                      Geometry{32 * 1024, 64, 4},
                      Geometry{6 * 1024 * 1024, 64, 8},
                      Geometry{1024, 32, 4}, Geometry{2048, 128, 2}),
    [](const ::testing::TestParamInfo<Geometry>& info) {
      return "b" + std::to_string(info.param.size_bytes) + "_l" +
             std::to_string(info.param.line_size) + "_w" +
             std::to_string(info.param.ways);
    });

}  // namespace
}  // namespace tlbmap

// Differential tests for the simulator's engine fast paths. Each fast path
// (the coherence line-occupancy directory, the per-core translation memo +
// sibling-shootdown presence check, the heap thread scheduler) claims to be
// a pure acceleration: the simulated outcome — every MachineStats counter —
// must be bit-identical to the reference path. These tests run real NPB
// workloads under both paths and compare the full counter structs, across
// UMA and both NUMA policies, static and migrating (dynamic) runs. They
// also hold the directory to its ground truth: after arbitrary runs, every
// directory bit must agree with the actual L2 contents.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "mapping/mapping.hpp"
#include "npb/workload.hpp"
#include "sim/machine.hpp"
#include "sim/scan.hpp"

namespace tlbmap {
namespace {

WorkloadParams small_params(int threads = 8) {
  WorkloadParams p;
  p.num_threads = threads;
  p.size_scale = 0.5;
  p.iter_scale = 0.25;
  return p;
}

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    const Workload& workload, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload.num_threads(); ++t) {
    streams.push_back(workload.stream(t, seed));
  }
  return streams;
}

MachineConfig machine_variant(const std::string& variant) {
  if (variant == "uma") return MachineConfig::harpertown();
  MachineConfig m = MachineConfig::numa_harpertown();
  if (variant == "numa_interleave") m.numa_policy = NumaPolicy::kInterleave;
  return m;
}

/// One full run at the Machine level with every engine knob exposed.
MachineStats run_app(const MachineConfig& machine_config,
                     const Workload& workload, const Mapping& mapping,
                     bool fast_hierarchy, int heap_threshold,
                     std::uint64_t seed) {
  Machine machine(machine_config);
  machine.hierarchy().set_fast_path_enabled(fast_hierarchy);
  Machine::RunConfig run;
  run.thread_to_core = mapping;
  run.scheduler_heap_threshold = heap_threshold;
  return machine.run(streams_of(workload, seed), run);
}

struct DiffParam {
  const char* app;
  const char* variant;  ///< "uma" | "numa_first_touch" | "numa_interleave"
};

class CoherenceDirectoryDifferential
    : public ::testing::TestWithParam<DiffParam> {};

// The tentpole contract: directory-resolved coherence produces exactly the
// statistics of the walked broadcast — probe traffic, snoop transactions,
// invalidations, writebacks, latencies — on identity and scrambled
// placements alike.
TEST_P(CoherenceDirectoryDifferential, BitIdenticalStatsToBroadcast) {
  const auto [app, variant] = GetParam();
  const auto workload = make_npb_workload(app, small_params());
  MachineConfig directory_config = machine_variant(variant);
  directory_config.coherence_broadcast = false;
  MachineConfig broadcast_config = directory_config;
  broadcast_config.coherence_broadcast = true;

  const Mapping mappings[] = {
      identity_mapping(workload->num_threads()),
      random_mapping(workload->num_threads(), directory_config.num_cores(),
                     /*seed=*/97),
  };
  for (const Mapping& mapping : mappings) {
    const MachineStats with_directory =
        run_app(directory_config, *workload, mapping,
                /*fast_hierarchy=*/true, /*heap_threshold=*/16, /*seed=*/5);
    const MachineStats with_broadcast =
        run_app(broadcast_config, *workload, mapping,
                /*fast_hierarchy=*/true, /*heap_threshold=*/16, /*seed=*/5);
    EXPECT_TRUE(with_directory == with_broadcast)
        << app << "/" << variant << ": directory and broadcast stats differ "
        << "(cycles " << with_directory.execution_cycles << " vs "
        << with_broadcast.execution_cycles << ", invalidations "
        << with_directory.invalidations << " vs "
        << with_broadcast.invalidations << ", messages "
        << with_directory.intra_socket_messages << "+"
        << with_directory.inter_socket_messages << " vs "
        << with_broadcast.intra_socket_messages << "+"
        << with_broadcast.inter_socket_messages << ")";
  }
}

// The hierarchy fast paths (translation memo, shootdown presence check) are
// equally invisible in the statistics.
TEST_P(CoherenceDirectoryDifferential, HierarchyFastPathIsInvisible) {
  const auto [app, variant] = GetParam();
  const auto workload = make_npb_workload(app, small_params());
  const MachineConfig config = machine_variant(variant);
  const Mapping mapping = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/31);
  const MachineStats fast = run_app(config, *workload, mapping,
                                    /*fast_hierarchy=*/true,
                                    /*heap_threshold=*/16, /*seed=*/7);
  const MachineStats slow = run_app(config, *workload, mapping,
                                    /*fast_hierarchy=*/false,
                                    /*heap_threshold=*/16, /*seed=*/7);
  EXPECT_TRUE(fast == slow)
      << app << "/" << variant << ": hierarchy fast path changed stats "
      << "(tlb " << fast.tlb_hits << "/" << fast.tlb_misses << " vs "
      << slow.tlb_hits << "/" << slow.tlb_misses << ", cycles "
      << fast.execution_cycles << " vs " << slow.execution_cycles << ")";
}

INSTANTIATE_TEST_SUITE_P(
    AppsAndMachines, CoherenceDirectoryDifferential,
    ::testing::Values(DiffParam{"SP", "uma"}, DiffParam{"CG", "uma"},
                      DiffParam{"UA", "uma"}, DiffParam{"FT", "numa_first_touch"},
                      DiffParam{"MG", "numa_first_touch"},
                      DiffParam{"SP", "numa_interleave"},
                      DiffParam{"LU", "numa_interleave"}),
    [](const ::testing::TestParamInfo<DiffParam>& info) {
      return std::string(info.param.app) + "_" + info.param.variant;
    });

// Migration runs exercise the remaining path: detection attached, threads
// moving between sockets at barriers, caches cooling behind them. The
// dynamic result (stats, migration count, final placement) must not depend
// on how coherence probes are resolved.
TEST(CoherenceDirectoryDifferential, DynamicMigrationRunsMatchBroadcast) {
  const auto workload = make_npb_workload("SP", small_params());
  MachineConfig directory_config = MachineConfig::harpertown();
  MachineConfig broadcast_config = directory_config;
  broadcast_config.coherence_broadcast = true;

  const Mapping initial = random_mapping(workload->num_threads(),
                                         directory_config.num_cores(),
                                         /*seed=*/123);
  OnlineMapperConfig online;
  online.remap_every_barriers = 2;

  Pipeline directory_pipe(directory_config);
  Pipeline broadcast_pipe(broadcast_config);
  const auto with_directory =
      directory_pipe.evaluate_dynamic(*workload, initial, online, /*seed=*/9);
  const auto with_broadcast =
      broadcast_pipe.evaluate_dynamic(*workload, initial, online, /*seed=*/9);

  EXPECT_TRUE(with_directory.stats == with_broadcast.stats);
  EXPECT_EQ(with_directory.migrations, with_broadcast.migrations);
  EXPECT_EQ(with_directory.remap_decisions, with_broadcast.remap_decisions);
  EXPECT_EQ(with_directory.final_mapping, with_broadcast.final_mapping);
}

/// Restores the process-global scan toggle even if an assertion fires.
struct ScopedScalarScan {
  ScopedScalarScan() { set_simd_scan_enabled(false); }
  ~ScopedScalarScan() { set_simd_scan_enabled(true); }
};

// The SoA tag-scan kernels (scan.hpp) are the fourth engine fast path:
// TLB lookups, cache set scans and the HM sweep read dense uint64 tag
// mirrors instead of striding through structs. Same contract as the rest —
// the simulated outcome must be bit-identical to the scalar reference
// walk, on static and detection-driven dynamic runs alike.
TEST(ScanKernelDifferential, SimdAndScalarScansProduceIdenticalRuns) {
  for (const char* variant : {"uma", "numa_first_touch"}) {
    const auto workload = make_npb_workload("SP", small_params());
    const MachineConfig config = machine_variant(variant);
    const Mapping mapping = random_mapping(workload->num_threads(),
                                           config.num_cores(), /*seed=*/53);
    ASSERT_TRUE(simd_scan_enabled());  // default on
    const MachineStats simd = run_app(config, *workload, mapping,
                                      /*fast_hierarchy=*/true,
                                      /*heap_threshold=*/16, /*seed=*/7);
    MachineStats scalar;
    {
      ScopedScalarScan scoped;
      scalar = run_app(config, *workload, mapping,
                       /*fast_hierarchy=*/true, /*heap_threshold=*/16,
                       /*seed=*/7);
    }
    EXPECT_TRUE(simd == scalar)
        << variant << ": SoA tag scan changed simulated results (tlb "
        << simd.tlb_hits << "/" << simd.tlb_misses << " vs "
        << scalar.tlb_hits << "/" << scalar.tlb_misses << ", cycles "
        << simd.execution_cycles << " vs " << scalar.execution_cycles << ")";
  }
}

// The HM detector's sweep reads the tag mirrors directly (naive pairwise
// and inverted-index paths both); the communication matrix and the dynamic
// mapping decisions built from it must not notice.
TEST(ScanKernelDifferential, HmSweepMatchesScalarOnDynamicRuns) {
  const auto workload = make_npb_workload("CG", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping initial = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/59);
  OnlineMapperConfig online;
  online.remap_every_barriers = 2;

  auto run_dynamic = [&] {
    Pipeline pipe(config);
    return pipe.evaluate_dynamic(*workload, initial, online, /*seed=*/9);
  };
  const auto simd = run_dynamic();
  ScopedScalarScan scoped;
  const auto scalar = run_dynamic();
  EXPECT_TRUE(simd.stats == scalar.stats);
  EXPECT_EQ(simd.migrations, scalar.migrations);
  EXPECT_EQ(simd.remap_decisions, scalar.remap_decisions);
  EXPECT_EQ(simd.final_mapping, scalar.final_mapping);
}

// The heap and linear min-clock pickers must choose the same thread at
// every step (including the lowest-id tie-break), so whole runs agree.
TEST(SchedulerDifferential, HeapAndLinearPickersProduceIdenticalRuns) {
  for (const char* app : {"SP", "CG", "IS"}) {
    const auto workload = make_npb_workload(app, small_params());
    const MachineConfig config = MachineConfig::harpertown();
    const Mapping mapping = random_mapping(workload->num_threads(),
                                           config.num_cores(), /*seed=*/17);
    const MachineStats heap = run_app(config, *workload, mapping,
                                      /*fast_hierarchy=*/true,
                                      /*heap_threshold=*/1, /*seed=*/3);
    const MachineStats linear = run_app(config, *workload, mapping,
                                        /*fast_hierarchy=*/true,
                                        /*heap_threshold=*/1 << 20,
                                        /*seed=*/3);
    EXPECT_TRUE(heap == linear)
        << app << ": heap scheduler diverged from linear scan (cycles "
        << heap.execution_cycles << " vs " << linear.execution_cycles << ")";
  }
}

// A migrating run under the forced heap scheduler: barrier releases and
// migrations rebuild the heap, and the run must still match the linear scan.
TEST(SchedulerDifferential, HeapSurvivesBarriersAndMigrations) {
  const auto workload = make_npb_workload("BT", small_params());
  const MachineConfig config = MachineConfig::harpertown();
  const Mapping initial = identity_mapping(workload->num_threads());
  OnlineMapperConfig online;
  online.remap_every_barriers = 2;

  auto run_dynamic = [&](int heap_threshold) {
    // evaluate_dynamic drives Machine::run internally with the default
    // threshold; replicate it at the Machine level to force the picker.
    Machine machine(config);
    OnlineMapper mapper(machine, workload->num_threads(), initial, online);
    Machine::RunConfig run;
    run.thread_to_core = initial;
    run.observer = &mapper;
    run.migration = &mapper;
    run.scheduler_heap_threshold = heap_threshold;
    return machine.run(streams_of(*workload, /*seed=*/11), run);
  };
  const MachineStats heap = run_dynamic(1);
  const MachineStats linear = run_dynamic(1 << 20);
  EXPECT_TRUE(heap == linear);
}

// Manycore parity: the same contract far past the 64-L2 inline holder word.
// 128 L2s (16x8, fully connected sockets) and 256 L2s (the mesh-priced
// manycore() preset, 32x8 with per-hop extras) must produce bit-identical
// stats with the multi-word directory and the walked broadcast. This is the
// regression test for the old single-word directory's silent fallback.
TEST(ManycoreDifferential, DirectoryMatchesBroadcastPast64L2s) {
  MachineConfig l2_128;
  l2_128.num_sockets = 16;
  l2_128.cores_per_socket = 8;
  l2_128.cores_per_l2 = 1;
  l2_128.l1 = CacheConfig{1024, 64, 2, 2};
  l2_128.l2 = CacheConfig{4096, 64, 4, 8};

  struct Case {
    const char* name;
    MachineConfig machine;
  };
  const Case cases[] = {{"128_flat", l2_128},
                        {"256_mesh", MachineConfig::manycore()}};
  for (const Case& c : cases) {
    WorkloadParams params = small_params(32);
    params.size_scale = 0.25;
    params.iter_scale = 0.1;
    const auto workload = make_npb_workload("SP", params);
    MachineConfig directory_config = c.machine;
    directory_config.coherence_broadcast = false;
    MachineConfig broadcast_config = c.machine;
    broadcast_config.coherence_broadcast = true;
    const Mapping mapping = random_mapping(
        workload->num_threads(), c.machine.num_cores(), /*seed=*/71);

    const MachineStats with_directory =
        run_app(directory_config, *workload, mapping,
                /*fast_hierarchy=*/true, /*heap_threshold=*/16, /*seed=*/23);
    const MachineStats with_broadcast =
        run_app(broadcast_config, *workload, mapping,
                /*fast_hierarchy=*/true, /*heap_threshold=*/16, /*seed=*/23);
    EXPECT_TRUE(with_directory == with_broadcast)
        << c.name << ": directory and broadcast stats differ (cycles "
        << with_directory.execution_cycles << " vs "
        << with_broadcast.execution_cycles << ", invalidations "
        << with_directory.invalidations << " vs "
        << with_broadcast.invalidations << ", messages "
        << with_directory.intra_socket_messages << "+"
        << with_directory.inter_socket_messages << " vs "
        << with_broadcast.intra_socket_messages << "+"
        << with_broadcast.inter_socket_messages << ")";
  }
}

// The directory stays on and consistent on a 256-L2 machine after a real
// run — the exact scenario the 64-L2 cliff used to silently degrade.
TEST(ManycoreDifferential, DirectoryEnabledAndConsistentAt256L2s) {
  WorkloadParams params = small_params(64);
  params.size_scale = 0.25;
  params.iter_scale = 0.1;
  const auto workload = make_npb_workload("CG", params);
  const MachineConfig config = MachineConfig::manycore();
  Machine machine(config);
  ASSERT_EQ(machine.topology().num_l2(), 256);
  ASSERT_TRUE(machine.hierarchy().coherence().directory_enabled());

  Machine::RunConfig run;
  run.thread_to_core = random_mapping(workload->num_threads(),
                                      config.num_cores(), /*seed=*/83);
  machine.run(streams_of(*workload, /*seed=*/29), run);

  const CoherenceDomain& coherence = machine.hierarchy().coherence();
  EXPECT_TRUE(coherence.directory_consistent());
  EXPECT_GT(coherence.directory_lines(), 0u);
  EXPECT_GT(coherence.directory_stats().holder_hits, 0u);
}

// Ground truth for the directory itself: after an arbitrary run, the holder
// bitmasks must match the L2 contents exactly in both directions — no stale
// bits, no untracked lines. (The sanitize CI job runs this under
// ASan/UBSan.)
TEST(CoherenceDirectoryInvariant, MasksMatchCacheContentsAfterRuns) {
  for (const char* app : {"SP", "UA"}) {
    const auto workload = make_npb_workload(app, small_params());
    const MachineConfig config = MachineConfig::harpertown();
    Machine machine(config);
    ASSERT_TRUE(machine.hierarchy().coherence().directory_enabled());

    Machine::RunConfig run;
    run.thread_to_core = random_mapping(workload->num_threads(),
                                        config.num_cores(), /*seed=*/41);
    machine.run(streams_of(*workload, /*seed=*/13), run);

    const CoherenceDomain& coherence = machine.hierarchy().coherence();
    EXPECT_TRUE(coherence.directory_consistent()) << app;
    EXPECT_GT(coherence.directory_lines(), 0u) << app;
    EXPECT_GT(coherence.directory_stats().probes, 0u) << app;
    EXPECT_GE(coherence.directory_stats().probes,
              coherence.directory_stats().holder_hits)
        << app;

    // flush_caches drops every line; the directory must empty with them.
    machine.hierarchy().flush_caches();
    EXPECT_EQ(coherence.directory_lines(), 0u) << app;
    EXPECT_TRUE(coherence.directory_consistent()) << app;
  }
}

// The epoch-parallel engine composes with every engine fast path tested
// above: on the coherence-bound 256-core manycore preset, workers=8 with
// the full fast-path stack (directory + memo + heap scheduler) must equal
// workers=1 bit for bit — the acceptance contract of the parallel core
// (test_parallel_machine.cpp holds the rest of it).
TEST(ManycoreDifferential, EpochEngineWorkers8MatchWorkers1At256Cores) {
  WorkloadParams params = small_params(64);
  params.size_scale = 0.25;
  params.iter_scale = 0.1;
  const auto workload = make_npb_workload("SP", params);
  const MachineConfig config = MachineConfig::manycore();
  ASSERT_EQ(config.num_cores(), 256);
  const Mapping mapping = random_mapping(workload->num_threads(),
                                         config.num_cores(), /*seed=*/71);

  auto run_parallel = [&](int workers) {
    Machine machine(config);
    Machine::RunConfig run;
    run.thread_to_core = mapping;
    run.machine_workers = workers;
    return machine.run(streams_of(*workload, /*seed=*/23), run);
  };
  const MachineStats reference = run_parallel(1);
  const MachineStats parallel = run_parallel(8);
  EXPECT_GT(reference.snoop_transactions, 0u);
  EXPECT_TRUE(parallel == reference)
      << "epoch engine: workers=8 diverged from workers=1 (cycles "
      << parallel.execution_cycles << " vs " << reference.execution_cycles
      << ", invalidations " << parallel.invalidations << " vs "
      << reference.invalidations << ")";
}

// Opting out via MachineConfig::coherence_broadcast leaves the directory
// dark: no entries, no stats, consistency trivially true.
TEST(CoherenceDirectoryInvariant, BroadcastModeKeepsDirectoryEmpty) {
  const auto workload = make_npb_workload("CG", small_params());
  MachineConfig config = MachineConfig::harpertown();
  config.coherence_broadcast = true;
  Machine machine(config);
  EXPECT_FALSE(machine.hierarchy().coherence().directory_enabled());

  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  machine.run(streams_of(*workload, /*seed=*/19), run);

  const CoherenceDomain& coherence = machine.hierarchy().coherence();
  EXPECT_EQ(coherence.directory_lines(), 0u);
  EXPECT_EQ(coherence.directory_stats().probes, 0u);
  EXPECT_TRUE(coherence.directory_consistent());
}

}  // namespace
}  // namespace tlbmap

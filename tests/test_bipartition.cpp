// Tests for the dual-recursive-bipartitioning mapper (the Scotch-style
// alternative the paper mentions in Sec. V-A).
#include <algorithm>
#include <random>

#include <gtest/gtest.h>

#include "mapping/bipartition.hpp"
#include "mapping/hierarchical.hpp"

namespace tlbmap {
namespace {

const Topology& harpertown() {
  static const Topology t{MachineConfig::harpertown()};
  return t;
}

TEST(Bisect, SeparatesTwoCliques) {
  // Threads 0-3 and 4-7 form two heavy cliques with light cross edges.
  CommMatrix comm(8);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      comm.add(a, b, (a / 4 == b / 4) ? 100 : 1);
    }
  }
  std::vector<ThreadId> all = {0, 1, 2, 3, 4, 5, 6, 7};
  const auto [left, right] = bisect_min_cut(comm, all);
  ASSERT_EQ(left.size(), 4u);
  ASSERT_EQ(right.size(), 4u);
  const int side_of_0 = std::count(left.begin(), left.end(), 0) ? 0 : 1;
  for (int t = 0; t < 4; ++t) {
    const auto& side = side_of_0 == 0 ? left : right;
    EXPECT_NE(std::find(side.begin(), side.end(), t), side.end()) << t;
  }
}

TEST(Bisect, RefinementFixesGreedySeed) {
  // Adversarial: the heaviest edge (0,1) belongs to different optimal
  // halves' counterparts. Pairing structure (0,2) (1,3) heavy, cross light;
  // plus a decoy heavy (0,1) edge. Optimal split: {0,2} | {1,3}.
  CommMatrix comm(4);
  comm.add(0, 1, 50);
  comm.add(0, 2, 60);
  comm.add(1, 3, 60);
  const auto [left, right] = bisect_min_cut(comm, {0, 1, 2, 3});
  // Cut of {0,2}|{1,3} = 50; cut of {0,1}|{2,3} = 120; cut {0,3}|{1,2}=170.
  const bool zero_left = std::count(left.begin(), left.end(), 0) > 0;
  const auto& zside = zero_left ? left : right;
  EXPECT_NE(std::find(zside.begin(), zside.end(), 2), zside.end());
}

TEST(Bisect, RejectsOddGroups) {
  CommMatrix comm(3);
  EXPECT_THROW(bisect_min_cut(comm, {0, 1, 2}), std::invalid_argument);
}

TEST(Bisect, HandlesVirtualPadding) {
  CommMatrix comm(2);
  comm.add(0, 1, 5);
  const auto [left, right] =
      bisect_min_cut(comm, {0, 1, kNoThread, kNoThread});
  EXPECT_EQ(left.size(), 2u);
  EXPECT_EQ(right.size(), 2u);
}

TEST(BipartitionMapper, ValidMapping) {
  BipartitionMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 100);
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, 8));
}

TEST(BipartitionMapper, PairsLandOnSharedL2) {
  BipartitionMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 1000);
  const Mapping m = mapper.map(comm);
  for (int t = 0; t < 8; t += 2) {
    EXPECT_TRUE(harpertown().share_l2(m[static_cast<std::size_t>(t)],
                                      m[static_cast<std::size_t>(t + 1)]))
        << t;
  }
}

TEST(BipartitionMapper, QuadsLandOnSockets) {
  BipartitionMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int q = 0; q < 8; q += 4) {
    for (int a = q; a < q + 4; ++a) {
      for (int b = a + 1; b < q + 4; ++b) comm.add(a, b, 100);
    }
  }
  const Mapping m = mapper.map(comm);
  for (int q = 0; q < 8; q += 4) {
    for (int a = q + 1; a < q + 4; ++a) {
      EXPECT_TRUE(
          harpertown().share_socket(m[static_cast<std::size_t>(q)],
                                    m[static_cast<std::size_t>(a)]))
          << a;
    }
  }
}

TEST(BipartitionMapper, FewerThreadsThanCores) {
  BipartitionMapper mapper(harpertown());
  CommMatrix comm(6);
  comm.add(0, 1, 50);
  comm.add(2, 3, 50);
  comm.add(4, 5, 50);
  const Mapping m = mapper.map(comm);
  EXPECT_EQ(m.size(), 6u);
  EXPECT_TRUE(is_valid_mapping(m, 8));
}

TEST(BipartitionMapper, RejectsTooManyThreads) {
  BipartitionMapper mapper(harpertown());
  EXPECT_THROW(mapper.map(CommMatrix(16)), std::invalid_argument);
}

TEST(BipartitionMapper, ComparableToHierarchicalOnRandomMatrices) {
  BipartitionMapper bipart(harpertown());
  HierarchicalMapper hier(harpertown());
  std::mt19937_64 rng(4);
  double bipart_total = 0.0, hier_total = 0.0, random_total = 0.0;
  for (int trial = 0; trial < 10; ++trial) {
    CommMatrix comm(8);
    for (int a = 0; a < 8; ++a) {
      for (int b = a + 1; b < 8; ++b) comm.add(a, b, rng() % 100);
    }
    bipart_total += mapping_cost(comm, bipart.map(comm), harpertown());
    hier_total += mapping_cost(comm, hier.map(comm), harpertown());
    random_total += mapping_cost(
        comm, random_mapping(8, 8, static_cast<std::uint64_t>(trial)),
        harpertown());
  }
  // Both structured mappers beat random placement on aggregate; neither
  // needs to dominate the other (the paper picked matching, Scotch-style
  // bipartitioning is "also good").
  EXPECT_LT(bipart_total, random_total);
  EXPECT_LT(hier_total, random_total);
  EXPECT_LT(bipart_total, hier_total * 1.25);
}

}  // namespace
}  // namespace tlbmap

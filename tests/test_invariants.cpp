// Cross-cutting property tests: structural counter invariants that must
// hold for every workload under every mapping, on more than one machine
// shape — including a 16-core machine twice the paper's size.
#include <string>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "mapping/hierarchical.hpp"
#include "npb/workload.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

WorkloadParams tiny_params(int threads = 8) {
  WorkloadParams p;
  p.num_threads = threads;
  p.size_scale = 0.5;
  p.iter_scale = 0.25;
  return p;
}

void check_invariants(const MachineStats& s, const std::string& context) {
  SCOPED_TRACE(context);
  EXPECT_EQ(s.reads + s.writes, s.accesses);
  EXPECT_EQ(s.tlb_hits + s.tlb_misses, s.accesses);
  EXPECT_EQ(s.l1_hits + s.l1_misses, s.accesses);
  EXPECT_EQ(s.l2_hits + s.l2_misses, s.l2_accesses);
  // Every write reaches the L2 (write-through); reads reach it on L1 miss.
  EXPECT_GE(s.l2_accesses, s.writes);
  EXPECT_LE(s.l2_accesses, s.accesses);
  // Data sources are mutually exclusive per L2 miss.
  EXPECT_LE(s.memory_fetches + s.snoop_transactions, s.l2_misses + s.writes);
  // Snoops and invalidations require writes somewhere in the system.
  if (s.writes == 0) {
    EXPECT_EQ(s.invalidations, 0u);
  }
  // Time moves if anything happened.
  if (s.accesses > 0) {
    EXPECT_GT(s.execution_cycles, 0u);
  }
}

class PerAppInvariants : public ::testing::TestWithParam<std::string> {};

TEST_P(PerAppInvariants, CountersConsistentUnderAllMappings) {
  const auto workload = make_npb_workload(GetParam(), tiny_params());
  Pipeline pipe(MachineConfig::harpertown());
  const Topology& topo = pipe.topology();
  for (const Mapping& mapping :
       {identity_mapping(8), random_mapping(8, 8, 17),
        round_robin_mapping(topo, 8)}) {
    const MachineStats s = pipe.evaluate(*workload, mapping, 5);
    check_invariants(s, GetParam() + " / " + to_string(mapping));
    EXPECT_GT(s.accesses, 0u);
  }
}

TEST_P(PerAppInvariants, DetectedMatrixWithinOracleSupport) {
  // SM can only count page matches that genuinely exist, so any pair it
  // reports must also appear in the (windowless) oracle matrix.
  const auto workload = make_npb_workload(GetParam(), tiny_params());
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 3;
  pipe.oracle_config().window = 0;  // unlimited
  const auto sm =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 2);
  const auto oracle = pipe.detect(*workload, Pipeline::Mechanism::kOracle, 2);
  for (ThreadId a = 0; a < 8; ++a) {
    for (ThreadId b = a + 1; b < 8; ++b) {
      if (sm.matrix.at(a, b) > 0) {
        EXPECT_GT(oracle.matrix.at(a, b), 0u)
            << GetParam() << " pair " << a << "," << b;
      }
    }
  }
}

TEST_P(PerAppInvariants, EvaluationDeterministicPerSeed) {
  const auto workload = make_npb_workload(GetParam(), tiny_params());
  Pipeline pipe(MachineConfig::harpertown());
  const Mapping m = identity_mapping(8);
  const MachineStats s1 = pipe.evaluate(*workload, m, 9);
  const MachineStats s2 = pipe.evaluate(*workload, m, 9);
  EXPECT_EQ(s1.execution_cycles, s2.execution_cycles);
  EXPECT_EQ(s1.invalidations, s2.invalidations);
  EXPECT_EQ(s1.snoop_transactions, s2.snoop_transactions);
  EXPECT_EQ(s1.l2_misses, s2.l2_misses);
}

INSTANTIATE_TEST_SUITE_P(
    AllApps, PerAppInvariants,
    ::testing::Values("BT", "CG", "EP", "FT", "IS", "LU", "MG", "SP", "UA"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// ------------------------------------------------------- bigger machines

MachineConfig sixteen_core() {
  MachineConfig c;
  c.num_sockets = 4;
  c.cores_per_socket = 4;
  c.cores_per_l2 = 2;
  return c;
}

TEST(BigMachine, SixteenThreadPipelineEndToEnd) {
  const MachineConfig machine = sixteen_core();
  Pipeline pipe(machine);
  pipe.sm_config().sample_threshold = 3;
  const auto workload = make_npb_workload("SP", tiny_params(16));
  const auto det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  const Mapping mapping = pipe.map(det.matrix);
  EXPECT_TRUE(is_valid_mapping(mapping, 16));
  const MachineStats tuned = pipe.evaluate(*workload, mapping, 3);
  check_invariants(tuned, "16-core SP");
  // The detected mapping should not lose to the worst random placement.
  Cycles worst = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    worst = std::max(
        worst, pipe.evaluate(*workload, random_mapping(16, 16, seed), 3)
                   .execution_cycles);
  }
  EXPECT_LE(tuned.execution_cycles, worst);
}

TEST(BigMachine, HierarchicalMapperOnSixteen) {
  const Topology topo(sixteen_core());
  HierarchicalMapper mapper(topo);
  CommMatrix comm(16);
  for (int t = 0; t < 16; t += 2) comm.add(t, t + 1, 1000);
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, 16));
  for (int t = 0; t < 16; t += 2) {
    EXPECT_TRUE(topo.share_l2(m[static_cast<std::size_t>(t)],
                              m[static_cast<std::size_t>(t + 1)]))
        << t;
  }
}

TEST(BigMachine, QuadCorePerL2Machine) {
  MachineConfig c;
  c.num_sockets = 2;
  c.cores_per_socket = 8;
  c.cores_per_l2 = 4;
  const Topology topo(c);
  HierarchicalMapper mapper(topo);
  CommMatrix comm(16);
  // Quads {0..3}, {4..7}, ... strongly coupled.
  for (int q = 0; q < 16; q += 4) {
    for (int a = q; a < q + 4; ++a) {
      for (int b = a + 1; b < q + 4; ++b) comm.add(a, b, 500);
    }
  }
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, 16));
  for (int q = 0; q < 16; q += 4) {
    for (int a = q; a < q + 4; ++a) {
      EXPECT_TRUE(topo.share_l2(m[static_cast<std::size_t>(q)],
                                m[static_cast<std::size_t>(a)]))
          << "quad " << q << " member " << a;
    }
  }
}

TEST(BigMachine, FewerThreadsThanCoresEndToEnd) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 3;
  const auto workload = make_npb_workload("BT", tiny_params(4));
  const auto det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  const Mapping mapping = pipe.map(det.matrix);
  EXPECT_EQ(mapping.size(), 4u);
  EXPECT_TRUE(is_valid_mapping(mapping, 8));
  check_invariants(pipe.evaluate(*workload, mapping, 3), "4-thread BT");
}

}  // namespace
}  // namespace tlbmap

// Tests for the three communication detectors: software-managed TLB
// (sampled miss search), hardware-managed TLB (periodic all-pairs sweep)
// and the full-trace oracle.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "detect/hm_detector.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/sm_detector.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

TraceEvent read_at(VirtAddr addr, std::uint32_t gap = 0) {
  return TraceEvent::make_access(addr, AccessType::kRead, gap);
}

Machine::RunConfig run_with(MachineObserver* obs, int n) {
  Machine::RunConfig cfg;
  for (int t = 0; t < n; ++t) cfg.thread_to_core.push_back(t);
  cfg.observer = obs;
  return cfg;
}

constexpr VirtAddr kPage = 4096;

// ---------------------------------------------------------------------- SM

TEST(SmDetector, DetectsSharedPageOnMiss) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{/*sample_threshold=*/1, 231});
  // Thread 0 burns time on a private page first; thread 1 touches page 5
  // meanwhile (enters its TLB); thread 0 then misses on page 5 and the trap
  // handler finds the match.
  m.run(streams_of({
            {read_at(1 * kPage, 1000), read_at(5 * kPage)},  // thread 0
            {read_at(5 * kPage)},                            // thread 1
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().at(0, 1), 1u);
}

TEST(SmDetector, NoMatchOnPrivatePages) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  m.run(streams_of({
            {read_at(1 * kPage), read_at(2 * kPage)},
            {read_at(7 * kPage), read_at(8 * kPage)},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().total(), 0u);
}

TEST(SmDetector, SamplingThresholdCountsSearches) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{/*sample_threshold=*/3, 231});
  // 7 distinct pages -> 7 misses on thread 0 -> searches on miss 3 and 6.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 7; ++i) {
    events.push_back(read_at(static_cast<VirtAddr>(i) * kPage));
  }
  const MachineStats stats =
      m.run(streams_of({events, {}}), run_with(&sm, 2));
  EXPECT_EQ(stats.tlb_misses, 7u);
  EXPECT_EQ(sm.misses_seen(), 7u);
  EXPECT_EQ(sm.searches(), 2u);
}

TEST(SmDetector, HitsDoNotTrigger) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  m.run(streams_of({
            {read_at(0), read_at(0), read_at(0)},  // 1 miss + 2 hits
            {},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.misses_seen(), 1u);
  EXPECT_EQ(sm.searches(), 1u);
}

TEST(SmDetector, OverheadChargedPerSearch) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, /*search_cost=*/500});
  const MachineStats stats = m.run(
      streams_of({{read_at(0), read_at(kPage)}, {}}), run_with(&sm, 2));
  EXPECT_EQ(sm.searches(), 2u);
  EXPECT_EQ(stats.detection_overhead_cycles, 1000u);
}

TEST(SmDetector, EvictedEntryNoLongerMatches) {
  MachineConfig cfg = MachineConfig::tiny();  // TLB: 8 entries, 2-way
  Machine m(cfg);
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  // Thread 1 touches page 0, then floods its TLB set 0 with pages 4, 8
  // (2-way set: page 0 is evicted). Thread 0 then misses on page 0: no
  // match — the sharing is too old, exactly the paper's recency argument.
  m.run(streams_of({
            {read_at(16 * kPage, 2000), read_at(0)},
            {read_at(0), read_at(4 * kPage), read_at(8 * kPage)},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().at(0, 1), 0u);
}

TEST(SmDetector, NameAndReset) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2);
  EXPECT_EQ(sm.name(), "SM");
  EXPECT_EQ(sm.config().sample_threshold, 100u);  // paper default
  EXPECT_EQ(sm.config().search_cost, 231u);       // paper-measured cost
}

// ---------------------------------------------------------------------- HM

TEST(HmDetector, SweepFindsMatchingEntries) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{1'000'000, 84'297});
  // Prime both TLBs through a run without sweeps, then sweep manually.
  m.run(streams_of({
            {read_at(3 * kPage), read_at(10 * kPage)},
            {read_at(3 * kPage, 50), read_at(21 * kPage, 0)},
        }),
        run_with(&hm, 2));
  EXPECT_EQ(hm.matrix().total(), 0u);  // interval never elapsed
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(0, 1), 1u);  // page 3 in both TLBs
}

TEST(HmDetector, SweepCountsAllSharedPages) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2);
  m.run(streams_of({
            {read_at(kPage), read_at(2 * kPage), read_at(3 * kPage)},
            {read_at(kPage, 50), read_at(2 * kPage, 0)},
        }),
        run_with(&hm, 2));
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(0, 1), 2u);
}

TEST(HmDetector, IntervalGatesSweeps) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{/*interval=*/500, /*cost=*/10});
  // Long stream with compute gaps: global time passes many intervals.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back(read_at(3 * kPage, 100));
  }
  const MachineStats stats =
      m.run(streams_of({events, {read_at(3 * kPage)}}), run_with(&hm, 2));
  EXPECT_GT(hm.searches(), 3u);
  EXPECT_EQ(stats.detection_overhead_cycles, hm.searches() * 10);
  EXPECT_GT(hm.matrix().at(0, 1), 0u);  // page 3 resident in both
}

TEST(HmDetector, AccessHookOnlyCountsMisses) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{Cycles{1} << 60, 0});
  m.run(streams_of({{read_at(0), read_at(0), read_at(kPage)}, {}}),
        run_with(&hm, 2));
  EXPECT_EQ(hm.misses_seen(), 2u);
  EXPECT_EQ(hm.searches(), 0u);
}

TEST(HmDetector, SweepIsSymmetricOverPairs) {
  MachineConfig cfg;  // Harpertown: 8 cores
  Machine m(cfg);
  HmDetector hm(m, 8);
  // Fill TLBs directly: cores 2 and 5 share pages 40..44.
  for (PageNum p = 40; p < 45; ++p) {
    m.hierarchy().tlb(2).insert(p);
    m.hierarchy().tlb(5).insert(p);
  }
  // Run a trivial workload so thread placement is registered.
  std::vector<std::vector<TraceEvent>> events(8);
  Machine::RunConfig run = run_with(&hm, 8);
  run.flush_first = false;  // keep the primed TLB contents
  m.run(streams_of(std::move(events)), run);
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(2, 5), 5u);
  EXPECT_EQ(hm.matrix().at(5, 2), 5u);
  EXPECT_EQ(hm.matrix().total(), 5u);  // no other pair shares anything
}

TEST(HmDetector, Name) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2);
  EXPECT_EQ(hm.name(), "HM");
  EXPECT_EQ(hm.config().interval, 10'000'000u);  // paper default
}

TEST(HmDetector, SweepCadenceDoesNotDrift) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{/*interval=*/100, /*cost=*/7});
  EXPECT_EQ(hm.on_tick(50), 0u);   // interval not yet elapsed
  EXPECT_EQ(hm.on_tick(250), 7u);  // sweeps; cadence advances to 200
  EXPECT_EQ(hm.on_tick(299), 0u);  // 99 cycles into the current interval
  // 300 is the next grid point. Snapping the last sweep to the tick time
  // (250) instead of the grid would push the next sweep to 350+ — under
  // sparse ticks that drift accumulates and the sweep rate sags below the
  // configured cadence.
  EXPECT_EQ(hm.on_tick(300), 7u);
  EXPECT_EQ(hm.searches(), 2u);
}

// ------------------------------------------ HM indexed sweep vs naive sweep

MachineConfig config_for_cores(int cores) {
  MachineConfig c = MachineConfig::harpertown();
  if (cores > c.num_cores()) {
    c.num_sockets = (cores + c.cores_per_socket - 1) / c.cores_per_socket;
  }
  return c;
}

/// Runs a ring workload with `threads` threads on cores 0..threads-1 so the
/// TLBs hold a realistic mix of shared and private pages and the placement
/// is registered.
void prime_ring(Machine& m, int threads) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.num_threads = threads;
  spec.private_pages = 32;
  spec.shared_pages = 8;
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < threads; ++t) {
    streams.push_back(workload->stream(t, 7));
  }
  m.run(std::move(streams), run_with(nullptr, threads));
}

TEST(HmDetector, IndexedSweepMatchesNaiveBitForBit) {
  // 6: partially occupied topology (cores 6, 7 empty); 8: full Harpertown
  // (bitmask index); 36: multi-socket bitmask index; 68: beyond one mask
  // word, exercising the sort-based grouping.
  for (const int threads : {6, 8, 36, 68}) {
    Machine m(config_for_cores(threads));
    prime_ring(m, threads);
    HmDetectorConfig naive_cfg;
    naive_cfg.naive_sweep = true;
    HmDetector naive(m, threads, naive_cfg);
    HmDetector indexed(m, threads, HmDetectorConfig{});
    naive.sweep();
    indexed.sweep();
    ASSERT_GT(naive.matrix().total(), 0u) << "P=" << threads;
    for (ThreadId a = 0; a < threads; ++a) {
      for (ThreadId b = 0; b < threads; ++b) {
        ASSERT_EQ(indexed.matrix().at(a, b), naive.matrix().at(a, b))
            << "P=" << threads << " cell " << a << "," << b;
      }
    }
    EXPECT_EQ(indexed.matrix().max(), naive.matrix().max()) << "P=" << threads;
  }
}

TEST(HmDetector, ShardedSweepMatchesSerial) {
  const int threads = 36;
  Machine m(config_for_cores(threads));
  prime_ring(m, threads);
  HmDetector serial(m, threads, HmDetectorConfig{});
  HmDetectorConfig sharded_cfg;
  sharded_cfg.sweep_workers = 3;
  HmDetector sharded(m, threads, sharded_cfg);
  // Two sweeps each: the second exercises shard reuse (clear between
  // epochs) and accumulation on top of a non-empty matrix.
  serial.sweep();
  serial.sweep();
  sharded.sweep();
  sharded.sweep();
  ASSERT_GT(serial.matrix().total(), 0u);
  for (ThreadId a = 0; a < threads; ++a) {
    for (ThreadId b = 0; b < threads; ++b) {
      ASSERT_EQ(sharded.matrix().at(a, b), serial.matrix().at(a, b))
          << "cell " << a << "," << b;
    }
  }
  EXPECT_EQ(sharded.matrix().max(), serial.matrix().max());
}

TEST(HmDetector, PublishesIndexMetrics) {
  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kPhases;
  Machine m(config_for_cores(8));
  prime_ring(m, 8);
  HmDetector hm(m, 8);
  hm.set_observability(&ctx);
  hm.sweep();
  const obs::Labels labels = {{"mechanism", "HM"}};
  EXPECT_EQ(ctx.metrics.counter_value("detector.searches", labels), 1u);
  // The ring workload shares pages, so the index holds entries, some pages
  // have >= 2 sharers, and the sweep reports the pair matches it added.
  EXPECT_GT(ctx.metrics.counter_value("detector.index_entries", labels), 0u);
  EXPECT_GT(ctx.metrics.counter_value("detector.index_pages", labels), 0u);
  EXPECT_EQ(ctx.metrics.counter_value("detector.matches", labels),
            hm.matrix().total());
  EXPECT_EQ(ctx.metrics.histogram("detector.index_build_us", labels).count(),
            1u);
}

// ------------------------------------------------------------------ oracle

TEST(OracleDetector, CountsSharingWithinWindow) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/100});
  m.run(streams_of({
            {read_at(5 * kPage, 100)},
            {read_at(5 * kPage)},
        }),
        run_with(&oracle, 2));
  EXPECT_EQ(oracle.matrix().at(0, 1), 1u);
  EXPECT_EQ(oracle.pages_seen(), 1u);
}

TEST(OracleDetector, WindowExpiry) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/3});
  // Thread 1 touches the shared page, then thread 0 performs 5 private
  // accesses before touching it: the page's last touch is > 3 accesses old.
  m.run(streams_of({
            {read_at(kPage, 500), read_at(2 * kPage), read_at(3 * kPage),
             read_at(kPage), read_at(2 * kPage), read_at(9 * kPage)},
            {read_at(9 * kPage)},
        }),
        run_with(&oracle, 2));
  EXPECT_EQ(oracle.matrix().at(0, 1), 0u);
}

TEST(OracleDetector, UnlimitedWindow) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/0});
  std::vector<TraceEvent> filler;
  filler.push_back(read_at(9 * kPage, 500));
  for (int i = 0; i < 50; ++i) filler.push_back(read_at(2 * kPage));
  filler.push_back(read_at(9 * kPage));
  m.run(streams_of({filler, {read_at(9 * kPage)}}), run_with(&oracle, 2));
  EXPECT_GE(oracle.matrix().at(0, 1), 1u);
}

TEST(OracleDetector, IsFreeOfOverhead) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2);
  const MachineStats stats = m.run(
      streams_of({{read_at(0)}, {read_at(0)}}), run_with(&oracle, 2));
  EXPECT_EQ(stats.detection_overhead_cycles, 0u);
}

// ------------------------------------------- synthetic end-to-end patterns

std::vector<std::unique_ptr<ThreadStream>> workload_streams(
    const Workload& w, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (ThreadId t = 0; t < w.num_threads(); ++t) {
    out.push_back(w.stream(t, seed));
  }
  return out;
}

TEST(DetectorsOnSynthetic, PairsPatternDetectedBySm) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 64;  // beyond TLB reach: misses recur
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  SmDetector sm(m, 8, SmDetectorConfig{1, 231});
  m.run(workload_streams(*workload, 3), run_with(&sm, 8));
  // Every even thread communicates with its pair far more than with anyone
  // else.
  for (int t = 0; t < 8; t += 2) {
    const std::uint64_t with_pair = sm.matrix().at(t, t + 1);
    EXPECT_GT(with_pair, 0u) << "pair " << t;
    for (int other = 0; other < 8; ++other) {
      if (other == t || other == t + 1) continue;
      EXPECT_GT(with_pair, sm.matrix().at(t, other))
          << "pair " << t << " vs " << other;
    }
  }
}

TEST(DetectorsOnSynthetic, RingPatternDetectedByHm) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.iterations = 8;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  HmDetector hm(m, 8, HmDetectorConfig{/*interval=*/50'000, /*cost=*/0});
  m.run(workload_streams(*workload, 3), run_with(&hm, 8));
  // Ring: neighbours (mod 8) communicate, including the wrap pair (7, 0).
  std::uint64_t ring_weight = 0, cross_weight = 0;
  for (int t = 0; t < 8; ++t) {
    ring_weight += hm.matrix().at(t, (t + 1) % 8);
    cross_weight += hm.matrix().at(t, (t + 3) % 8);
  }
  EXPECT_GT(ring_weight, 4 * cross_weight);
}

TEST(DetectorsOnSynthetic, PrivatePatternStaysEmpty) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPrivate;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  SmDetector sm(m, 8, SmDetectorConfig{1, 231});
  m.run(workload_streams(*workload, 3), run_with(&sm, 8));
  EXPECT_EQ(sm.matrix().total(), 0u);
}

TEST(DetectorsOnSynthetic, OracleSeesAllToAll) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kAllToAll;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  OracleDetector oracle(8);
  m.run(workload_streams(*workload, 3), run_with(&oracle, 8));
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(oracle.matrix().at(a, b), 0u) << a << "," << b;
    }
  }
}


TEST(OracleDetector, LineGranularityDistinguishesFalseSharing) {
  // Two threads write the same page but strictly disjoint cache lines:
  // page-level oracle reports communication, line-level reports none.
  Machine m(MachineConfig::tiny());
  OracleDetector page_oracle(2, OracleDetectorConfig{100, 12});
  m.run(streams_of({
            {read_at(0, 500)},     // line 0 of page 0
            {read_at(64)},         // line 1 of page 0
        }),
        run_with(&page_oracle, 2));
  EXPECT_EQ(page_oracle.matrix().at(0, 1), 1u);

  Machine m2(MachineConfig::tiny());
  OracleDetector line_oracle(2, OracleDetectorConfig{100, 6});
  m2.run(streams_of({
             {read_at(0, 500)},
             {read_at(64)},
         }),
         run_with(&line_oracle, 2));
  EXPECT_EQ(line_oracle.matrix().at(0, 1), 0u);
}

TEST(OracleDetector, LineGranularitySeesTrueSharing) {
  Machine m(MachineConfig::tiny());
  OracleDetector line_oracle(2, OracleDetectorConfig{100, 6});
  m.run(streams_of({
            {read_at(8, 500)},  // same line as below (offsets 8 and 16)
            {read_at(16)},
        }),
        run_with(&line_oracle, 2));
  EXPECT_EQ(line_oracle.matrix().at(0, 1), 1u);
}

TEST(DetectorsOnSynthetic, FalseSharePatternHasDisjointLines) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kFalseShare;
  spec.shared_pages = 8;
  spec.shared_accesses = 1024;
  spec.private_pages = 8;
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  OracleDetector line_oracle(8, OracleDetectorConfig{0, 6});
  m.run(workload_streams(*workload, 3), run_with(&line_oracle, 8));
  EXPECT_EQ(line_oracle.matrix().total(), 0u);

  Machine m2((MachineConfig()));
  OracleDetector page_oracle(8, OracleDetectorConfig{0, 12});
  m2.run(workload_streams(*workload, 3), run_with(&page_oracle, 8));
  EXPECT_GT(page_oracle.matrix().total(), 0u);
}

}  // namespace
}  // namespace tlbmap

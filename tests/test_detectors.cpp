// Tests for the three communication detectors: software-managed TLB
// (sampled miss search), hardware-managed TLB (periodic all-pairs sweep)
// and the full-trace oracle.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "detect/hm_detector.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/sm_detector.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

TraceEvent read_at(VirtAddr addr, std::uint32_t gap = 0) {
  return TraceEvent::make_access(addr, AccessType::kRead, gap);
}

Machine::RunConfig run_with(MachineObserver* obs, int n) {
  Machine::RunConfig cfg;
  for (int t = 0; t < n; ++t) cfg.thread_to_core.push_back(t);
  cfg.observer = obs;
  return cfg;
}

constexpr VirtAddr kPage = 4096;

// ---------------------------------------------------------------------- SM

TEST(SmDetector, DetectsSharedPageOnMiss) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{/*sample_threshold=*/1, 231});
  // Thread 0 burns time on a private page first; thread 1 touches page 5
  // meanwhile (enters its TLB); thread 0 then misses on page 5 and the trap
  // handler finds the match.
  m.run(streams_of({
            {read_at(1 * kPage, 1000), read_at(5 * kPage)},  // thread 0
            {read_at(5 * kPage)},                            // thread 1
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().at(0, 1), 1u);
}

TEST(SmDetector, NoMatchOnPrivatePages) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  m.run(streams_of({
            {read_at(1 * kPage), read_at(2 * kPage)},
            {read_at(7 * kPage), read_at(8 * kPage)},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().total(), 0u);
}

TEST(SmDetector, SamplingThresholdCountsSearches) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{/*sample_threshold=*/3, 231});
  // 7 distinct pages -> 7 misses on thread 0 -> searches on miss 3 and 6.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 7; ++i) {
    events.push_back(read_at(static_cast<VirtAddr>(i) * kPage));
  }
  const MachineStats stats =
      m.run(streams_of({events, {}}), run_with(&sm, 2));
  EXPECT_EQ(stats.tlb_misses, 7u);
  EXPECT_EQ(sm.misses_seen(), 7u);
  EXPECT_EQ(sm.searches(), 2u);
}

TEST(SmDetector, HitsDoNotTrigger) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  m.run(streams_of({
            {read_at(0), read_at(0), read_at(0)},  // 1 miss + 2 hits
            {},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.misses_seen(), 1u);
  EXPECT_EQ(sm.searches(), 1u);
}

TEST(SmDetector, OverheadChargedPerSearch) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2, SmDetectorConfig{1, /*search_cost=*/500});
  const MachineStats stats = m.run(
      streams_of({{read_at(0), read_at(kPage)}, {}}), run_with(&sm, 2));
  EXPECT_EQ(sm.searches(), 2u);
  EXPECT_EQ(stats.detection_overhead_cycles, 1000u);
}

TEST(SmDetector, EvictedEntryNoLongerMatches) {
  MachineConfig cfg = MachineConfig::tiny();  // TLB: 8 entries, 2-way
  Machine m(cfg);
  SmDetector sm(m, 2, SmDetectorConfig{1, 231});
  // Thread 1 touches page 0, then floods its TLB set 0 with pages 4, 8
  // (2-way set: page 0 is evicted). Thread 0 then misses on page 0: no
  // match — the sharing is too old, exactly the paper's recency argument.
  m.run(streams_of({
            {read_at(16 * kPage, 2000), read_at(0)},
            {read_at(0), read_at(4 * kPage), read_at(8 * kPage)},
        }),
        run_with(&sm, 2));
  EXPECT_EQ(sm.matrix().at(0, 1), 0u);
}

TEST(SmDetector, NameAndReset) {
  Machine m(MachineConfig::tiny());
  SmDetector sm(m, 2);
  EXPECT_EQ(sm.name(), "SM");
  EXPECT_EQ(sm.config().sample_threshold, 100u);  // paper default
  EXPECT_EQ(sm.config().search_cost, 231u);       // paper-measured cost
}

// ---------------------------------------------------------------------- HM

TEST(HmDetector, SweepFindsMatchingEntries) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{1'000'000, 84'297});
  // Prime both TLBs through a run without sweeps, then sweep manually.
  m.run(streams_of({
            {read_at(3 * kPage), read_at(10 * kPage)},
            {read_at(3 * kPage, 50), read_at(21 * kPage, 0)},
        }),
        run_with(&hm, 2));
  EXPECT_EQ(hm.matrix().total(), 0u);  // interval never elapsed
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(0, 1), 1u);  // page 3 in both TLBs
}

TEST(HmDetector, SweepCountsAllSharedPages) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2);
  m.run(streams_of({
            {read_at(kPage), read_at(2 * kPage), read_at(3 * kPage)},
            {read_at(kPage, 50), read_at(2 * kPage, 0)},
        }),
        run_with(&hm, 2));
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(0, 1), 2u);
}

TEST(HmDetector, IntervalGatesSweeps) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{/*interval=*/500, /*cost=*/10});
  // Long stream with compute gaps: global time passes many intervals.
  std::vector<TraceEvent> events;
  for (int i = 0; i < 40; ++i) {
    events.push_back(read_at(3 * kPage, 100));
  }
  const MachineStats stats =
      m.run(streams_of({events, {read_at(3 * kPage)}}), run_with(&hm, 2));
  EXPECT_GT(hm.searches(), 3u);
  EXPECT_EQ(stats.detection_overhead_cycles, hm.searches() * 10);
  EXPECT_GT(hm.matrix().at(0, 1), 0u);  // page 3 resident in both
}

TEST(HmDetector, AccessHookOnlyCountsMisses) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2, HmDetectorConfig{Cycles{1} << 60, 0});
  m.run(streams_of({{read_at(0), read_at(0), read_at(kPage)}, {}}),
        run_with(&hm, 2));
  EXPECT_EQ(hm.misses_seen(), 2u);
  EXPECT_EQ(hm.searches(), 0u);
}

TEST(HmDetector, SweepIsSymmetricOverPairs) {
  MachineConfig cfg;  // Harpertown: 8 cores
  Machine m(cfg);
  HmDetector hm(m, 8);
  // Fill TLBs directly: cores 2 and 5 share pages 40..44.
  for (PageNum p = 40; p < 45; ++p) {
    m.hierarchy().tlb(2).insert(p);
    m.hierarchy().tlb(5).insert(p);
  }
  // Run a trivial workload so thread placement is registered.
  std::vector<std::vector<TraceEvent>> events(8);
  Machine::RunConfig run = run_with(&hm, 8);
  run.flush_first = false;  // keep the primed TLB contents
  m.run(streams_of(std::move(events)), run);
  hm.sweep();
  EXPECT_EQ(hm.matrix().at(2, 5), 5u);
  EXPECT_EQ(hm.matrix().at(5, 2), 5u);
  EXPECT_EQ(hm.matrix().total(), 5u);  // no other pair shares anything
}

TEST(HmDetector, Name) {
  Machine m(MachineConfig::tiny());
  HmDetector hm(m, 2);
  EXPECT_EQ(hm.name(), "HM");
  EXPECT_EQ(hm.config().interval, 10'000'000u);  // paper default
}

// ------------------------------------------------------------------ oracle

TEST(OracleDetector, CountsSharingWithinWindow) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/100});
  m.run(streams_of({
            {read_at(5 * kPage, 100)},
            {read_at(5 * kPage)},
        }),
        run_with(&oracle, 2));
  EXPECT_EQ(oracle.matrix().at(0, 1), 1u);
  EXPECT_EQ(oracle.pages_seen(), 1u);
}

TEST(OracleDetector, WindowExpiry) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/3});
  // Thread 1 touches the shared page, then thread 0 performs 5 private
  // accesses before touching it: the page's last touch is > 3 accesses old.
  m.run(streams_of({
            {read_at(kPage, 500), read_at(2 * kPage), read_at(3 * kPage),
             read_at(kPage), read_at(2 * kPage), read_at(9 * kPage)},
            {read_at(9 * kPage)},
        }),
        run_with(&oracle, 2));
  EXPECT_EQ(oracle.matrix().at(0, 1), 0u);
}

TEST(OracleDetector, UnlimitedWindow) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2, OracleDetectorConfig{/*window=*/0});
  std::vector<TraceEvent> filler;
  filler.push_back(read_at(9 * kPage, 500));
  for (int i = 0; i < 50; ++i) filler.push_back(read_at(2 * kPage));
  filler.push_back(read_at(9 * kPage));
  m.run(streams_of({filler, {read_at(9 * kPage)}}), run_with(&oracle, 2));
  EXPECT_GE(oracle.matrix().at(0, 1), 1u);
}

TEST(OracleDetector, IsFreeOfOverhead) {
  Machine m(MachineConfig::tiny());
  OracleDetector oracle(2);
  const MachineStats stats = m.run(
      streams_of({{read_at(0)}, {read_at(0)}}), run_with(&oracle, 2));
  EXPECT_EQ(stats.detection_overhead_cycles, 0u);
}

// ------------------------------------------- synthetic end-to-end patterns

std::vector<std::unique_ptr<ThreadStream>> workload_streams(
    const Workload& w, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (ThreadId t = 0; t < w.num_threads(); ++t) {
    out.push_back(w.stream(t, seed));
  }
  return out;
}

TEST(DetectorsOnSynthetic, PairsPatternDetectedBySm) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 64;  // beyond TLB reach: misses recur
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  SmDetector sm(m, 8, SmDetectorConfig{1, 231});
  m.run(workload_streams(*workload, 3), run_with(&sm, 8));
  // Every even thread communicates with its pair far more than with anyone
  // else.
  for (int t = 0; t < 8; t += 2) {
    const std::uint64_t with_pair = sm.matrix().at(t, t + 1);
    EXPECT_GT(with_pair, 0u) << "pair " << t;
    for (int other = 0; other < 8; ++other) {
      if (other == t || other == t + 1) continue;
      EXPECT_GT(with_pair, sm.matrix().at(t, other))
          << "pair " << t << " vs " << other;
    }
  }
}

TEST(DetectorsOnSynthetic, RingPatternDetectedByHm) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.iterations = 8;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  HmDetector hm(m, 8, HmDetectorConfig{/*interval=*/50'000, /*cost=*/0});
  m.run(workload_streams(*workload, 3), run_with(&hm, 8));
  // Ring: neighbours (mod 8) communicate, including the wrap pair (7, 0).
  std::uint64_t ring_weight = 0, cross_weight = 0;
  for (int t = 0; t < 8; ++t) {
    ring_weight += hm.matrix().at(t, (t + 1) % 8);
    cross_weight += hm.matrix().at(t, (t + 3) % 8);
  }
  EXPECT_GT(ring_weight, 4 * cross_weight);
}

TEST(DetectorsOnSynthetic, PrivatePatternStaysEmpty) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPrivate;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  SmDetector sm(m, 8, SmDetectorConfig{1, 231});
  m.run(workload_streams(*workload, 3), run_with(&sm, 8));
  EXPECT_EQ(sm.matrix().total(), 0u);
}

TEST(DetectorsOnSynthetic, OracleSeesAllToAll) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kAllToAll;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  OracleDetector oracle(8);
  m.run(workload_streams(*workload, 3), run_with(&oracle, 8));
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(oracle.matrix().at(a, b), 0u) << a << "," << b;
    }
  }
}


TEST(OracleDetector, LineGranularityDistinguishesFalseSharing) {
  // Two threads write the same page but strictly disjoint cache lines:
  // page-level oracle reports communication, line-level reports none.
  Machine m(MachineConfig::tiny());
  OracleDetector page_oracle(2, OracleDetectorConfig{100, 12});
  m.run(streams_of({
            {read_at(0, 500)},     // line 0 of page 0
            {read_at(64)},         // line 1 of page 0
        }),
        run_with(&page_oracle, 2));
  EXPECT_EQ(page_oracle.matrix().at(0, 1), 1u);

  Machine m2(MachineConfig::tiny());
  OracleDetector line_oracle(2, OracleDetectorConfig{100, 6});
  m2.run(streams_of({
             {read_at(0, 500)},
             {read_at(64)},
         }),
         run_with(&line_oracle, 2));
  EXPECT_EQ(line_oracle.matrix().at(0, 1), 0u);
}

TEST(OracleDetector, LineGranularitySeesTrueSharing) {
  Machine m(MachineConfig::tiny());
  OracleDetector line_oracle(2, OracleDetectorConfig{100, 6});
  m.run(streams_of({
            {read_at(8, 500)},  // same line as below (offsets 8 and 16)
            {read_at(16)},
        }),
        run_with(&line_oracle, 2));
  EXPECT_EQ(line_oracle.matrix().at(0, 1), 1u);
}

TEST(DetectorsOnSynthetic, FalseSharePatternHasDisjointLines) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kFalseShare;
  spec.shared_pages = 8;
  spec.shared_accesses = 1024;
  spec.private_pages = 8;
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  Machine m((MachineConfig()));
  OracleDetector line_oracle(8, OracleDetectorConfig{0, 6});
  m.run(workload_streams(*workload, 3), run_with(&line_oracle, 8));
  EXPECT_EQ(line_oracle.matrix().total(), 0u);

  Machine m2((MachineConfig()));
  OracleDetector page_oracle(8, OracleDetectorConfig{0, 12});
  m2.run(workload_streams(*workload, 3), run_with(&page_oracle, 8));
  EXPECT_GT(page_oracle.matrix().total(), 0u);
}

}  // namespace
}  // namespace tlbmap

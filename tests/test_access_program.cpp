// Tests for the declarative access-program interpreter.
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/access_program.hpp"

namespace tlbmap {
namespace {

std::vector<TraceEvent> drain(ProgramStream& stream, std::size_t cap = 1u << 20) {
  std::vector<TraceEvent> events;
  for (std::size_t i = 0; i < cap; ++i) {
    TraceEvent ev = stream.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    events.push_back(ev);
  }
  return events;
}

Walk basic_walk(std::uint64_t count, Walk::Mix mix = Walk::Mix::kRead) {
  Walk w;
  w.base = 0x1000;
  w.length = 4096;
  w.elem_size = 8;
  w.mix = mix;
  w.count = count;
  return w;
}

TEST(AccessProgram, SequentialWalkVisitsInOrder) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(4)}, 1, false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  ASSERT_EQ(events.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(events[i].access.addr, 0x1000 + i * 8);
    EXPECT_EQ(events[i].access.type, AccessType::kRead);
  }
}

TEST(AccessProgram, EndIsSticky) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(1)}, 1, false});
  ProgramStream s(prog, 1);
  drain(s);
  EXPECT_EQ(s.next().kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(s.next().kind, TraceEvent::Kind::kEnd);
}

TEST(AccessProgram, StridedWalk) {
  AccessProgram prog;
  Walk w = basic_walk(4);
  w.stride = 8;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[1].access.addr, 0x1000 + 64);
  EXPECT_EQ(events[3].access.addr, 0x1000 + 192);
}

TEST(AccessProgram, StrideWrapsAroundRegion) {
  AccessProgram prog;
  Walk w = basic_walk(3);
  w.stride = 300;  // 512 elements in region; wraps on the second step
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[1].access.addr, 0x1000 + 300 * 8);
  EXPECT_EQ(events[2].access.addr, 0x1000 + ((600 % 512) * 8));
}

TEST(AccessProgram, NegativeStrideWraps) {
  AccessProgram prog;
  Walk w = basic_walk(2);
  w.stride = -1;
  w.start_elem = 0;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].access.addr, 0x1000u);
  EXPECT_EQ(events[1].access.addr, 0x1000 + 511 * 8);  // wrapped to the end
}

TEST(AccessProgram, ReadWriteEmitsPairs) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(2, Walk::Mix::kReadWrite)}, 1,
                              false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].access.type, AccessType::kRead);
  EXPECT_EQ(events[1].access.type, AccessType::kWrite);
  EXPECT_EQ(events[0].access.addr, events[1].access.addr);
  EXPECT_EQ(events[2].access.type, AccessType::kRead);
  EXPECT_EQ(events[3].access.type, AccessType::kWrite);
}

TEST(AccessProgram, WriteMix) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(3, Walk::Mix::kWrite)}, 1, false});
  ProgramStream s(prog, 1);
  for (const TraceEvent& ev : drain(s)) {
    EXPECT_EQ(ev.access.type, AccessType::kWrite);
  }
}

TEST(AccessProgram, RandomWalkStaysInRegion) {
  AccessProgram prog;
  Walk w = basic_walk(500);
  w.pattern = Walk::Pattern::kRandom;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 99);
  for (const TraceEvent& ev : drain(s)) {
    EXPECT_GE(ev.access.addr, 0x1000u);
    EXPECT_LT(ev.access.addr, 0x1000u + 4096u);
    EXPECT_EQ(ev.access.addr % 8, 0u);
  }
}

TEST(AccessProgram, RandomWalkSeedDeterminism) {
  AccessProgram prog;
  Walk w = basic_walk(100);
  w.pattern = Walk::Pattern::kRandom;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s1(prog, 7), s2(prog, 7), s3(prog, 8);
  const auto e1 = drain(s1), e2 = drain(s2), e3 = drain(s3);
  ASSERT_EQ(e1.size(), e2.size());
  bool any_diff_same_seed = false, any_diff_other_seed = false;
  for (std::size_t i = 0; i < e1.size(); ++i) {
    any_diff_same_seed |= e1[i].access.addr != e2[i].access.addr;
    any_diff_other_seed |= e1[i].access.addr != e3[i].access.addr;
  }
  EXPECT_FALSE(any_diff_same_seed);
  EXPECT_TRUE(any_diff_other_seed);
}

TEST(AccessProgram, BarrierAfterPhase) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(2)}, 1, true});
  prog.phases.push_back(Phase{{basic_walk(1)}, 1, true});
  ProgramStream s(prog, 1);
  std::vector<TraceEvent::Kind> kinds;
  for (;;) {
    const TraceEvent ev = s.next();
    kinds.push_back(ev.kind);
    if (ev.kind == TraceEvent::Kind::kEnd) break;
  }
  using K = TraceEvent::Kind;
  EXPECT_EQ(kinds, (std::vector<K>{K::kAccess, K::kAccess, K::kBarrier,
                                   K::kAccess, K::kBarrier, K::kEnd}));
}

TEST(AccessProgram, PhaseRepeatEmitsOneBarrier) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(1)}, 3, true});
  ProgramStream s(prog, 1);
  int accesses = 0, barriers = 0;
  for (;;) {
    const TraceEvent ev = s.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) ++accesses;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(accesses, 3);
  EXPECT_EQ(barriers, 1);  // after all repeats, not after each
}

TEST(AccessProgram, IterationsRepeatWholeProgram) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(2)}, 1, true});
  prog.iterations = 3;
  ProgramStream s(prog, 1);
  int accesses = 0, barriers = 0;
  for (;;) {
    const TraceEvent ev = s.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) ++accesses;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(accesses, 6);
  EXPECT_EQ(barriers, 3);
}

TEST(AccessProgram, TotalsMatchStream) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(5, Walk::Mix::kReadWrite),
                               basic_walk(3)},
                              2, true});
  prog.phases.push_back(Phase{{basic_walk(4, Walk::Mix::kWrite)}, 1, false});
  prog.iterations = 2;
  ProgramStream s(prog, 1);
  std::uint64_t accesses = 0, barriers = 0;
  for (;;) {
    const TraceEvent ev = s.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) ++accesses;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(accesses, prog.total_accesses());
  EXPECT_EQ(barriers, prog.total_barriers());
}

TEST(AccessProgram, EmptyProgramEndsImmediately) {
  AccessProgram prog;
  ProgramStream s(prog, 1);
  EXPECT_EQ(s.next().kind, TraceEvent::Kind::kEnd);
}

TEST(AccessProgram, EmptyPhaseStillEmitsBarrier) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{}, 1, true});
  ProgramStream s(prog, 1);
  EXPECT_EQ(s.next().kind, TraceEvent::Kind::kBarrier);
  EXPECT_EQ(s.next().kind, TraceEvent::Kind::kEnd);
}

TEST(AccessProgram, GapJitterBoundedAndSeeded) {
  AccessProgram prog;
  Walk w = basic_walk(200);
  w.compute_gap = 5;
  w.gap_jitter = 3;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 11);
  std::set<std::uint32_t> gaps;
  for (const TraceEvent& ev : drain(s)) {
    EXPECT_GE(ev.access.compute_gap, 5u);
    EXPECT_LE(ev.access.compute_gap, 8u);
    gaps.insert(ev.access.compute_gap);
  }
  EXPECT_GT(gaps.size(), 1u);  // jitter actually varies
}

TEST(AccessProgram, ZeroCountWalkSkipped) {
  AccessProgram prog;
  prog.phases.push_back(Phase{{basic_walk(0), basic_walk(2)}, 1, false});
  ProgramStream s(prog, 1);
  EXPECT_EQ(drain(s).size(), 2u);
}

TEST(AccessProgram, StartElemOffsetsWalk) {
  AccessProgram prog;
  Walk w = basic_walk(2);
  w.start_elem = 10;
  prog.phases.push_back(Phase{{w}, 1, false});
  ProgramStream s(prog, 1);
  const auto events = drain(s);
  EXPECT_EQ(events[0].access.addr, 0x1000 + 10 * 8);
  EXPECT_EQ(events[1].access.addr, 0x1000 + 11 * 8);
}

}  // namespace
}  // namespace tlbmap

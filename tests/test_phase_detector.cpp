// Tests for phase-change detection (matrix drift + miss-rate deltas).
#include <gtest/gtest.h>

#include "detect/phase_detector.hpp"

namespace tlbmap {
namespace {

CommMatrix pairs_matrix(int n, std::uint64_t weight, int shift = 0) {
  CommMatrix m(n);
  for (int t = 0; t < n; t += 2) {
    const int a = (t + shift) % n;
    const int b = (t + 1 + shift) % n;
    m.add(a, b, weight);
  }
  return m;
}

/// Feeds every thread `accesses` window accesses with `misses` TLB misses.
void feed_window(PhaseDetector& d, std::uint64_t accesses,
                 std::uint64_t misses) {
  for (ThreadId t = 0; t < d.num_threads(); ++t) {
    for (std::uint64_t i = 0; i < accesses; ++i) {
      d.on_access(t, i < misses);
    }
  }
}

TEST(PhaseDetector, ValidateRejectsBadThresholds) {
  PhaseDetectorConfig bad;
  bad.drift_threshold = 1.5;
  EXPECT_THROW(PhaseDetector(4, bad), std::invalid_argument);
  bad.drift_threshold = -0.1;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  PhaseDetectorConfig negative_delta;
  negative_delta.miss_rate_delta = -1.0;
  EXPECT_THROW(negative_delta.validate(), std::invalid_argument);
  EXPECT_THROW(PhaseDetector(0), std::invalid_argument);
}

TEST(PhaseDetector, FirstShapedMatrixArmsWithoutAnEpoch) {
  PhaseDetector d(4);
  // Degenerate matrices carry no shape: the detector stays unarmed.
  EXPECT_FALSE(d.observe(CommMatrix(4)));
  EXPECT_EQ(d.epoch(), 0u);
  EXPECT_FALSE(d.state().has_reference);
  // The first shaped matrix anchors the reference, still no epoch.
  EXPECT_FALSE(d.observe(pairs_matrix(4, 100)));
  EXPECT_EQ(d.epoch(), 0u);
  EXPECT_TRUE(d.state().has_reference);
}

TEST(PhaseDetector, StableShapeKeepsThePhase) {
  PhaseDetector d(4);
  d.observe(pairs_matrix(4, 100));
  // Same shape at any scale: cosine similarity 1, no drift.
  EXPECT_FALSE(d.observe(pairs_matrix(4, 100)));
  EXPECT_FALSE(d.observe(pairs_matrix(4, 7000)));
  EXPECT_EQ(d.epoch(), 0u);
}

TEST(PhaseDetector, MatrixDriftStartsANewPhaseAndReanchors) {
  PhaseDetector d(4);
  d.observe(pairs_matrix(4, 100, /*shift=*/0));
  // Shifted pairing is orthogonal to the reference: drift fires.
  EXPECT_TRUE(d.observe(pairs_matrix(4, 100, /*shift=*/1)));
  EXPECT_EQ(d.epoch(), 1u);
  // The reference re-anchored to the new shape: repeating it is stable.
  EXPECT_FALSE(d.observe(pairs_matrix(4, 100, /*shift=*/1)));
  EXPECT_EQ(d.epoch(), 1u);
}

TEST(PhaseDetector, MissRateDeltaStartsANewPhase) {
  PhaseDetectorConfig cfg;
  cfg.drift_threshold = 0.0;  // isolate the miss-rate signal
  cfg.miss_rate_delta = 0.75;
  cfg.min_window_accesses = 256;
  PhaseDetector d(4, cfg);
  const CommMatrix m = pairs_matrix(4, 100);

  feed_window(d, 1000, 100);  // 10 % miss rate anchors the reference
  EXPECT_FALSE(d.observe(m));
  feed_window(d, 1000, 120);  // 12 %: within 75 % relative delta
  EXPECT_FALSE(d.observe(m));
  feed_window(d, 1000, 400);  // 40 %: way past the threshold
  EXPECT_TRUE(d.observe(m));
  EXPECT_EQ(d.epoch(), 1u);
}

TEST(PhaseDetector, ThinWindowsAreNotTrusted) {
  PhaseDetectorConfig cfg;
  cfg.drift_threshold = 0.0;
  cfg.min_window_accesses = 256;
  PhaseDetector d(4, cfg);
  const CommMatrix m = pairs_matrix(4, 100);

  feed_window(d, 1000, 100);
  EXPECT_FALSE(d.observe(m));
  // A huge relative swing on 10 accesses is sampling noise, not a phase.
  feed_window(d, 10, 9);
  EXPECT_FALSE(d.observe(m));
  EXPECT_EQ(d.epoch(), 0u);
}

TEST(PhaseDetector, ObserveRejectsWrongMatrixSize) {
  PhaseDetector d(4);
  EXPECT_THROW(d.observe(CommMatrix(5)), std::invalid_argument);
}

TEST(PhaseDetector, EpochsAreDeterministic) {
  // Same observation sequence, same epochs — the property OnlineMapper's
  // checkpoint/resume bit-identity rests on.
  const auto drive = [](PhaseDetector& d) {
    feed_window(d, 500, 50);
    d.observe(pairs_matrix(4, 100, 0));
    feed_window(d, 500, 400);
    d.observe(pairs_matrix(4, 100, 1));
    feed_window(d, 500, 60);
    d.observe(pairs_matrix(4, 90, 1));
  };
  PhaseDetector a(4), b(4);
  drive(a);
  drive(b);
  EXPECT_EQ(a.epoch(), b.epoch());
  EXPECT_TRUE(a.state() == b.state());
}

TEST(PhaseDetector, StateRoundTripsAndRestoreChecksShape) {
  PhaseDetector d(4);
  feed_window(d, 300, 30);
  d.observe(pairs_matrix(4, 100));
  feed_window(d, 100, 5);  // leave a half-accumulated window in flight

  PhaseDetector copy(4);
  copy.restore(d.state());
  EXPECT_TRUE(copy.state() == d.state());
  // Both continue identically from the snapshot.
  feed_window(d, 500, 450);
  feed_window(copy, 500, 450);
  EXPECT_EQ(d.observe(pairs_matrix(4, 100, 1)),
            copy.observe(pairs_matrix(4, 100, 1)));
  EXPECT_TRUE(copy.state() == d.state());

  PhaseDetector wrong(5);
  EXPECT_THROW(wrong.restore(d.state()), std::invalid_argument);
}

}  // namespace
}  // namespace tlbmap

// Tests for the structured error taxonomy (DESIGN.md Secs. 11-12): every
// ErrorCode renders to a distinct machine-readable name, Expected<T>
// carries exactly one of value/error, and each failure path — bad mapping,
// watchdog, malformed trace, missing file, corrupt checkpoint, interrupted
// run, failed suite worker — surfaces the code the taxonomy promises.
#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/expected.hpp"
#include "core/experiment.hpp"
#include "core/shutdown.hpp"
#include "sim/machine.hpp"
#include "sim/trace_file.hpp"

namespace tlbmap {
namespace {

/// Canned stream fed from a vector of events.
class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

std::vector<TraceEvent> accesses(int n) {
  std::vector<TraceEvent> events;
  for (int i = 0; i < n; ++i) {
    events.push_back(
        TraceEvent::make_access(4096u * (i + 1), AccessType::kRead, 0));
  }
  return events;
}

Machine::RunConfig run_on(std::vector<CoreId> cores) {
  Machine::RunConfig cfg;
  cfg.thread_to_core = std::move(cores);
  return cfg;
}

// ---------------------------------------------------------------------------
// Taxonomy strings.

TEST(ErrorCode, EveryCodeHasADistinctName) {
  const ErrorCode all[] = {
      ErrorCode::kInvalidArgument,    ErrorCode::kInvalidMapping,
      ErrorCode::kMalformedTrace,     ErrorCode::kTruncatedTrace,
      ErrorCode::kIoError,            ErrorCode::kWatchdogTimeout,
      ErrorCode::kDegenerateMatrix,   ErrorCode::kMappingFailure,
      ErrorCode::kWorkerFailure,      ErrorCode::kInterrupted,
      ErrorCode::kCorruptCheckpoint,  ErrorCode::kCheckpointMismatch,
      ErrorCode::kCorruptTrace,       ErrorCode::kAdmissionRejected,
      ErrorCode::kBackpressure,       ErrorCode::kSessionQuarantined,
      ErrorCode::kSaturatedMatrix,
  };
  std::set<std::string> names;
  for (const ErrorCode code : all) {
    const std::string name = to_string(code);
    EXPECT_NE(name, "unknown") << "unnamed code";
    EXPECT_FALSE(name.empty());
    names.insert(name);
  }
  EXPECT_EQ(names.size(), std::size(all)) << "two codes share a name";
}

TEST(ErrorCode, ErrorToStringCarriesCodeAndMessage) {
  const Error err{ErrorCode::kIoError, "disk on fire"};
  EXPECT_EQ(err.to_string(), "[io_error] disk on fire");
}

TEST(ErrorCode, ExpectedHoldsExactlyValueOrError) {
  const Expected<int> ok(7);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(*ok, 7);

  const Expected<int> bad(Error{ErrorCode::kWatchdogTimeout, "late"});
  ASSERT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().code, ErrorCode::kWatchdogTimeout);
  EXPECT_EQ(bad.error().message, "late");

  const Expected<void> fine;
  EXPECT_TRUE(fine.has_value());
  const Expected<void> broken(Error{ErrorCode::kIoError, "no"});
  EXPECT_FALSE(broken.has_value());
  EXPECT_EQ(broken.error().code, ErrorCode::kIoError);
}

// ---------------------------------------------------------------------------
// Machine::try_run failure paths.

TEST(ExpectedPaths, MappingSizeMismatchIsInvalidMapping) {
  Machine machine(MachineConfig::tiny());
  const auto r = machine.try_run(streams_of({{}, {}}), run_on({0}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidMapping);
}

TEST(ExpectedPaths, CoreOutOfRangeIsInvalidMapping) {
  Machine machine(MachineConfig::tiny());  // 2 cores
  const auto r = machine.try_run(streams_of({{}, {}}), run_on({0, 99}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidMapping);
}

TEST(ExpectedPaths, DuplicateCoreIsInvalidMapping) {
  Machine machine(MachineConfig::tiny());
  const auto r = machine.try_run(streams_of({{}, {}}), run_on({0, 0}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInvalidMapping);
}

TEST(ExpectedPaths, WatchdogBudgetIsWatchdogTimeout) {
  MachineConfig config = MachineConfig::tiny();
  config.watchdog_max_events = 8;
  Machine machine(config);
  const auto r =
      machine.try_run(streams_of({accesses(100), accesses(100)}), run_on({0, 1}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kWatchdogTimeout);

  // The throwing wrapper maps the same failure to std::runtime_error.
  Machine again(config);
  EXPECT_THROW(
      again.run(streams_of({accesses(100), accesses(100)}), run_on({0, 1})),
      std::runtime_error);
}

TEST(ExpectedPaths, ShutdownRequestIsInterrupted) {
  reset_shutdown();
  Machine machine(MachineConfig::tiny());
  request_shutdown();
  const auto r = machine.try_run(streams_of({accesses(4)}), run_on({0}));
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kInterrupted);

  // Machine::run maps kInterrupted to the dedicated exception type, so the
  // suite pool can tell "stop asked" from "task failed".
  Machine again(MachineConfig::tiny());
  EXPECT_THROW(again.run(streams_of({accesses(4)}), run_on({0})),
               InterruptedError);
  reset_shutdown();
}

// ---------------------------------------------------------------------------
// Reader-side taxonomy: traces, recordings, checkpoints.

TEST(ExpectedPaths, ValidateTraceCodes) {
  const auto empty = validate_trace({});
  ASSERT_FALSE(empty.has_value());
  EXPECT_EQ(empty.error().code, ErrorCode::kTruncatedTrace);

  const auto bad_magic = validate_trace({'X', 'L', 'B', 'T', 1, 0x01});
  ASSERT_FALSE(bad_magic.has_value());
  EXPECT_EQ(bad_magic.error().code, ErrorCode::kMalformedTrace);
}

TEST(ExpectedPaths, MissingRecordingDirIsIoError) {
  const auto r = try_load_recording("/nonexistent/tlbmap/recording");
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kIoError);
}

TEST(ExpectedPaths, GarbageCheckpointIsCorrupt) {
  const auto unsealed = unseal_checkpoint("garbage", 0);
  ASSERT_FALSE(unsealed.has_value());
  EXPECT_EQ(unsealed.error().code, ErrorCode::kCorruptCheckpoint);

  const auto parsed = parse_checkpoint("TLBKgarbage-but-longer-than-28b", 0);
  ASSERT_FALSE(parsed.has_value());
  EXPECT_EQ(parsed.error().code, ErrorCode::kCorruptCheckpoint);
}

// ---------------------------------------------------------------------------
// Suite-level degradation.

TEST(ExpectedPaths, SuiteWorkerFailuresAreStructuredAndDegrade) {
  reset_shutdown();
  SuiteConfig config;
  config.apps = {"EP"};
  config.repetitions = 1;
  config.use_cache = false;
  config.workload.iter_scale = 0.2;
  config.detect_iter_scale = 1.0;
  config.task_retries = 0;
  // A watchdog budget no real run fits in: every task fails structurally.
  config.machine.watchdog_max_events = 16;

  const SuiteResult result = run_suite(config);
  EXPECT_TRUE(result.degraded());
  ASSERT_FALSE(result.failures.empty());
  for (const Error& err : result.failures) {
    EXPECT_EQ(err.code, ErrorCode::kWorkerFailure);
    EXPECT_FALSE(err.message.empty());
  }
}

}  // namespace
}  // namespace tlbmap

// Tests for the perf-regression harness: google-benchmark JSON parsing,
// min-of-K folding, noise-aware thresholds, and the benchdiff CLI's exit
// codes (the contract CI relies on).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/benchdiff.hpp"

namespace tlbmap {
namespace {

/// Builds a minimal google-benchmark JSON document from (name, run_type,
/// cpu_time, real_time, unit) tuples.
struct Entry {
  std::string name;
  std::string run_type = "iteration";
  double cpu_time = 0.0;
  double real_time = 0.0;
  std::string unit = "ns";
};

std::string bench_json(const std::vector<Entry>& entries) {
  std::ostringstream out;
  out << "{\"context\":{\"host_name\":\"ci\"},\"benchmarks\":[";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << e.name << "\",\"run_type\":\"" << e.run_type
        << "\",\"iterations\":100,\"real_time\":" << e.real_time
        << ",\"cpu_time\":" << e.cpu_time << ",\"time_unit\":\"" << e.unit
        << "\"}";
  }
  out << "]}";
  return out.str();
}

TEST(BenchDiff, ParsesWellFormedFile) {
  const auto records = parse_benchmark_json(bench_json(
      {{"BM_Sim/8", "iteration", 100.0, 110.0, "ns"},
       {"BM_Sim/8_mean", "aggregate", 101.0, 111.0, "ns"}}));
  ASSERT_TRUE(records.has_value()) << records.error().to_string();
  ASSERT_EQ(records.value().size(), 2u);
  EXPECT_EQ(records.value()[0].name, "BM_Sim/8");
  EXPECT_EQ(records.value()[0].run_type, "iteration");
  EXPECT_DOUBLE_EQ(records.value()[0].cpu_time, 100.0);
  EXPECT_EQ(records.value()[1].run_type, "aggregate");
}

TEST(BenchDiff, ParserRejectsGarbage) {
  EXPECT_FALSE(parse_benchmark_json("").has_value());
  EXPECT_FALSE(parse_benchmark_json("not json").has_value());
  EXPECT_FALSE(parse_benchmark_json("{\"benchmarks\":42}").has_value());
  EXPECT_FALSE(parse_benchmark_json("[1,2,3]").has_value());
  // Truncated file must fail loudly, not diff as "no benchmarks".
  const std::string good = bench_json({{"BM_A", "iteration", 1.0, 1.0}});
  EXPECT_FALSE(parse_benchmark_json(good.substr(0, good.size() - 4)).has_value());
  // An entry without a name is a schema violation.
  EXPECT_FALSE(
      parse_benchmark_json("{\"benchmarks\":[{\"cpu_time\":1}]}").has_value());
}

TEST(BenchDiff, TimeUnitConversion) {
  const auto records = parse_benchmark_json(
      bench_json({{"BM_Us", "iteration", 2.0, 3.0, "us"},
                  {"BM_Ms", "iteration", 2.0, 3.0, "ms"},
                  {"BM_S", "iteration", 2.0, 3.0, "s"}}));
  ASSERT_TRUE(records.has_value());
  EXPECT_DOUBLE_EQ(records.value()[0].time_ns(true), 2000.0);
  EXPECT_DOUBLE_EQ(records.value()[0].time_ns(false), 3000.0);
  EXPECT_DOUBLE_EQ(records.value()[1].time_ns(true), 2e6);
  EXPECT_DOUBLE_EQ(records.value()[2].time_ns(true), 2e9);
}

TEST(BenchDiff, MinOfKFoldsIterationsAndIgnoresAggregates) {
  const auto base = parse_benchmark_json(bench_json(
      {{"BM_Sim", "iteration", 105.0, 105.0},
       {"BM_Sim", "iteration", 100.0, 100.0},
       {"BM_Sim", "iteration", 130.0, 130.0},
       {"BM_Sim_mean", "aggregate", 111.7, 111.7}}));
  const auto cur = parse_benchmark_json(
      bench_json({{"BM_Sim", "iteration", 102.0, 102.0},
                  {"BM_Sim", "iteration", 140.0, 140.0}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  const BenchDiffReport report =
      compare_benchmarks(base.value(), cur.value(), {});
  ASSERT_EQ(report.rows.size(), 1u);  // the aggregate is its own name
  EXPECT_EQ(report.rows[0].name, "BM_Sim");
  EXPECT_DOUBLE_EQ(report.rows[0].base_min_ns, 100.0);
  EXPECT_DOUBLE_EQ(report.rows[0].cur_min_ns, 102.0);
  EXPECT_EQ(report.rows[0].base_samples, 3);
  EXPECT_EQ(report.rows[0].cur_samples, 2);
  // +2% over a 10% threshold: clean; the dropped aggregate doesn't count
  // as a missing benchmark.
  EXPECT_FALSE(report.rows[0].regressed);
  EXPECT_TRUE(report.missing.empty());
  EXPECT_FALSE(report.has_regression);
}

TEST(BenchDiff, MissingBenchmarkFailsUnlessAllowed) {
  const auto base = parse_benchmark_json(
      bench_json({{"BM_Kept", "iteration", 1e4, 1e4},
                  {"BM_Gone", "iteration", 1e4, 1e4}}));
  const auto cur =
      parse_benchmark_json(bench_json({{"BM_Kept", "iteration", 1e4, 1e4}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  const BenchDiffReport report =
      compare_benchmarks(base.value(), cur.value(), {});
  ASSERT_EQ(report.missing.size(), 1u);
  EXPECT_EQ(report.missing[0], "BM_Gone");
  // A silently deleted benchmark is how regressions hide: fail by default...
  EXPECT_TRUE(report.has_regression);
  BenchDiffConfig tolerant;
  tolerant.allow_missing = true;
  EXPECT_FALSE(compare_benchmarks(base.value(), cur.value(), tolerant)
                   .has_regression);  // ...unless allowed
}

TEST(BenchDiff, IdenticalInputsAreClean) {
  const auto records = parse_benchmark_json(
      bench_json({{"BM_A", "iteration", 1000.0, 1000.0},
                  {"BM_B", "iteration", 2e6, 2e6}}));
  ASSERT_TRUE(records.has_value());
  const BenchDiffReport report =
      compare_benchmarks(records.value(), records.value(), {});
  EXPECT_FALSE(report.has_regression);
  for (const BenchComparison& row : report.rows) {
    EXPECT_FALSE(row.regressed);
    EXPECT_DOUBLE_EQ(row.delta(), 0.0);
  }
  EXPECT_NE(report.render().find("verdict: clean"), std::string::npos);
}

TEST(BenchDiff, TwentyPercentSlowdownRegresses) {
  const auto base = parse_benchmark_json(
      bench_json({{"BM_Sim", "iteration", 10000.0, 10000.0}}));
  const auto cur = parse_benchmark_json(
      bench_json({{"BM_Sim", "iteration", 12000.0, 12000.0}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  const BenchDiffReport report =
      compare_benchmarks(base.value(), cur.value(), {});
  ASSERT_EQ(report.rows.size(), 1u);
  EXPECT_TRUE(report.rows[0].regressed);
  EXPECT_TRUE(report.has_regression);
  EXPECT_NEAR(report.rows[0].delta(), 0.20, 1e-9);
  EXPECT_NE(report.render().find("REGRESSION"), std::string::npos);
}

TEST(BenchDiff, AbsoluteFloorShieldsNanoScaleJitter) {
  // +50% relative but only +3 ns absolute: under the 50 ns floor => clean.
  const auto base =
      parse_benchmark_json(bench_json({{"BM_Tiny", "iteration", 6.0, 6.0}}));
  const auto cur =
      parse_benchmark_json(bench_json({{"BM_Tiny", "iteration", 9.0, 9.0}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  EXPECT_FALSE(
      compare_benchmarks(base.value(), cur.value(), {}).has_regression);
  // Dropping the floor exposes it.
  BenchDiffConfig strict;
  strict.abs_floor_ns = 0.0;
  EXPECT_TRUE(
      compare_benchmarks(base.value(), cur.value(), strict).has_regression);
}

TEST(BenchDiff, ThresholdBoundaryIsExclusive) {
  // Exactly +10% with a 0.10 threshold must NOT regress (strict >).
  const auto base = parse_benchmark_json(
      bench_json({{"BM_Edge", "iteration", 10000.0, 10000.0}}));
  const auto cur = parse_benchmark_json(
      bench_json({{"BM_Edge", "iteration", 11000.0, 11000.0}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  EXPECT_FALSE(
      compare_benchmarks(base.value(), cur.value(), {}).has_regression);
}

TEST(BenchDiff, RealTimeFlagSwitchesField) {
  // cpu_time regressed, real_time did not: default (cpu) fails, real passes.
  const auto base = parse_benchmark_json(
      bench_json({{"BM_Mix", "iteration", 10000.0, 10000.0}}));
  const auto cur = parse_benchmark_json(
      bench_json({{"BM_Mix", "iteration", 13000.0, 10001.0}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  EXPECT_TRUE(
      compare_benchmarks(base.value(), cur.value(), {}).has_regression);
  BenchDiffConfig real;
  real.use_cpu_time = false;
  EXPECT_FALSE(
      compare_benchmarks(base.value(), cur.value(), real).has_regression);
}

TEST(BenchDiff, AddedBenchmarksAreInformational) {
  const auto base =
      parse_benchmark_json(bench_json({{"BM_Old", "iteration", 1e4, 1e4}}));
  const auto cur =
      parse_benchmark_json(bench_json({{"BM_Old", "iteration", 1e4, 1e4},
                                       {"BM_New", "iteration", 1e4, 1e4}}));
  ASSERT_TRUE(base.has_value() && cur.has_value());
  const BenchDiffReport report =
      compare_benchmarks(base.value(), cur.value(), {});
  ASSERT_EQ(report.added.size(), 1u);
  EXPECT_EQ(report.added[0], "BM_New");
  EXPECT_FALSE(report.has_regression);
}

/// Writes `text` to a temp file and returns its path.
std::string write_temp(const std::string& tag, const std::string& text) {
  const std::string path =
      testing::TempDir() + "benchdiff_" + tag + ".json";
  std::ofstream out(path);
  out << text;
  return path;
}

TEST(BenchDiffCli, ExitCodesMatchContract) {
  const std::string base = write_temp(
      "base", bench_json({{"BM_Sim", "iteration", 10000.0, 10000.0}}));
  const std::string slow = write_temp(
      "slow", bench_json({{"BM_Sim", "iteration", 12000.0, 12000.0}}));
  const std::string bad = write_temp("bad", "{broken");

  std::ostringstream out;
  std::ostringstream err;
  const char* clean_argv[] = {"tlbmap_benchdiff", base.c_str(), base.c_str()};
  EXPECT_EQ(run_benchdiff(3, clean_argv, out, err), 0);
  EXPECT_NE(out.str().find("verdict: clean"), std::string::npos);

  const char* slow_argv[] = {"tlbmap_benchdiff", base.c_str(), slow.c_str()};
  EXPECT_EQ(run_benchdiff(3, slow_argv, out, err), 1);

  // A generous threshold lets the same slowdown through.
  const char* loose_argv[] = {"tlbmap_benchdiff", base.c_str(), slow.c_str(),
                              "--threshold", "3.0"};
  EXPECT_EQ(run_benchdiff(5, loose_argv, out, err), 0);

  const char* bad_argv[] = {"tlbmap_benchdiff", base.c_str(), bad.c_str()};
  EXPECT_EQ(run_benchdiff(3, bad_argv, out, err), 2);

  const char* missing_argv[] = {"tlbmap_benchdiff", base.c_str(),
                                "/nonexistent/x.json"};
  EXPECT_EQ(run_benchdiff(3, missing_argv, out, err), 2);

  const char* usage_argv[] = {"tlbmap_benchdiff", base.c_str()};
  EXPECT_EQ(run_benchdiff(2, usage_argv, out, err), 2);

  std::remove(base.c_str());
  std::remove(slow.c_str());
  std::remove(bad.c_str());
}

}  // namespace
}  // namespace tlbmap

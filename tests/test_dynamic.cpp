// Tests for in-run thread migration and the online mapper.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.hpp"
#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

TraceEvent read_at(VirtAddr addr) {
  return TraceEvent::make_access(addr, AccessType::kRead, 0);
}

/// Swaps the two threads at every barrier.
class SwapPolicy final : public MigrationPolicy {
 public:
  std::vector<CoreId> on_barrier(int, Cycles) override {
    swapped_ = !swapped_;
    ++calls_;
    return swapped_ ? std::vector<CoreId>{1, 0} : std::vector<CoreId>{0, 1};
  }
  int calls() const { return calls_; }

 private:
  bool swapped_ = false;
  int calls_ = 0;
};

TEST(Migration, PolicyConsultedAtEachBarrier) {
  Machine m(MachineConfig::tiny());
  SwapPolicy policy;
  Machine::RunConfig run;
  run.thread_to_core = {0, 1};
  run.migration = &policy;
  m.run(streams_of({
            {read_at(0), TraceEvent::make_barrier(), read_at(64),
             TraceEvent::make_barrier()},
            {read_at(4096), TraceEvent::make_barrier(), read_at(8192),
             TraceEvent::make_barrier()},
        }),
        run);
  EXPECT_EQ(policy.calls(), 2);
  // Two swaps: the placement is back to identity.
  EXPECT_EQ(m.thread_on(0), 0);
  EXPECT_EQ(m.thread_on(1), 1);
}

TEST(Migration, MigrationCostCharged) {
  Machine m(MachineConfig::tiny());
  SwapPolicy policy;
  auto make = [] {
    return streams_of({
        {read_at(0), TraceEvent::make_barrier(), read_at(0)},
        {read_at(4096), TraceEvent::make_barrier(), read_at(4096)},
    });
  };
  Machine::RunConfig stay;
  stay.thread_to_core = {0, 1};
  const MachineStats base = m.run(make(), stay);

  Machine::RunConfig move = stay;
  move.migration = &policy;
  move.migration_cost = 50'000;
  const MachineStats migrated = m.run(make(), move);
  // Both threads moved once: the post-barrier accesses also miss cold
  // TLB/L1 on the new core, so the delta exceeds the flat cost.
  EXPECT_GE(migrated.execution_cycles, base.execution_cycles + 50'000);
}

TEST(Migration, InvalidPolicyMappingThrows) {
  Machine m(MachineConfig::tiny());
  class BadPolicy final : public MigrationPolicy {
    std::vector<CoreId> on_barrier(int, Cycles) override { return {0, 0}; }
  } bad;
  Machine::RunConfig run;
  run.thread_to_core = {0, 1};
  run.migration = &bad;
  EXPECT_THROW(m.run(streams_of({
                         {TraceEvent::make_barrier()},
                         {TraceEvent::make_barrier()},
                     }),
                     run),
               std::invalid_argument);
}

TEST(Migration, EmptyReturnKeepsPlacement) {
  Machine m(MachineConfig::tiny());
  class KeepPolicy final : public MigrationPolicy {
    std::vector<CoreId> on_barrier(int, Cycles) override { return {}; }
  } keep;
  Machine::RunConfig run;
  run.thread_to_core = {1, 0};
  run.migration = &keep;
  m.run(streams_of({
            {read_at(0), TraceEvent::make_barrier(), read_at(0)},
            {read_at(4096), TraceEvent::make_barrier(), read_at(4096)},
        }),
        run);
  EXPECT_EQ(m.thread_on(1), 0);
  EXPECT_EQ(m.thread_on(0), 1);
}

// ------------------------------------------------------------ OnlineMapper

SyntheticSpec phased_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPhaseShift;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.shared_accesses = 4096;
  spec.iterations = 12;
  return spec;
}

TEST(OnlineMapper, MigratesAndImproves) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(phased_spec());

  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 2;
  cfg.detector.sample_threshold = 3;
  // This run is only ~12 barriers long; the default cooldown's damping
  // would eat a sizable slice of it, so react at full speed here (the
  // damped default path is covered by the Canary/Rollback tests below).
  cfg.migration_cooldown = 0;

  // Start from an adversarial placement: partners split across sockets.
  const Mapping bad_start = {0, 4, 1, 5, 2, 6, 3, 7};
  const auto dynamic = pipe.evaluate_dynamic(*workload, bad_start, cfg, 3);
  const MachineStats still = pipe.evaluate(*workload, bad_start, 3);

  EXPECT_GT(dynamic.migrations, 0);
  EXPECT_GT(dynamic.remap_decisions, 0);
  EXPECT_LT(dynamic.stats.execution_cycles, still.execution_cycles);
  EXPECT_LT(dynamic.stats.invalidations, still.invalidations);
  EXPECT_TRUE(is_valid_mapping(dynamic.final_mapping, 8));
}

TEST(OnlineMapper, NoMigrationBelowMatrixThreshold) {
  Pipeline pipe(MachineConfig::harpertown());
  SyntheticSpec spec = phased_spec();
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  OnlineMapperConfig cfg;
  cfg.min_matrix_total = 1u << 30;  // unreachable
  const auto result =
      pipe.evaluate_dynamic(*workload, identity_mapping(8), cfg, 3);
  EXPECT_EQ(result.migrations, 0);
  EXPECT_EQ(result.final_mapping, identity_mapping(8));
}

TEST(OnlineMapper, StablePatternConvergesToFewMigrations) {
  // A static pairs pattern: after the first good mapping, further remap
  // decisions should keep the placement (migrations << decisions).
  Pipeline pipe(MachineConfig::harpertown());
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.iterations = 12;
  const auto workload = make_synthetic(spec);
  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 2;
  cfg.detector.sample_threshold = 3;
  const auto result =
      pipe.evaluate_dynamic(*workload, identity_mapping(8), cfg, 3);
  EXPECT_GT(result.remap_decisions, 2);
  EXPECT_LE(result.migrations, result.remap_decisions / 2 + 1);
}

TEST(OnlineMapper, RejectsInvalidInitialMapping) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(phased_spec());
  EXPECT_THROW(pipe.evaluate_dynamic(*workload, Mapping{0, 0, 1, 2, 3, 4, 5, 6},
                                     OnlineMapperConfig{}, 1),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Canary transactions, rollback and checkpointed decision state (PR 10).
//
// These drive OnlineMapper directly: the detected matrix is seeded through
// restore() and barriers carry fabricated cycle/access counters, so every
// cost rate the canary compares is chosen exactly.

OnlineMapperConfig canary_config() {
  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 1;
  cfg.min_matrix_total = 1;
  cfg.improvement_threshold = 0.0;
  cfg.migration_cooldown = 0;
  cfg.canary_barriers = 3;
  cfg.regression_threshold = 0.25;
  // Keep the phase detector quiet: these tests exercise the canary path,
  // and a phase epoch would abort the open window (that path has its own
  // tests in test_phase_detector).
  cfg.phase.drift_threshold = 0.0;
  cfg.phase.miss_rate_delta = 0.0;
  return cfg;
}

/// Seeds the mapper's detected matrix via its own restore path: pairs
/// (0,1) and (2,3) share heavily, nothing else communicates.
void seed_pairs_matrix(OnlineMapper& mapper) {
  OnlineMapperState s = mapper.state();
  s.detector.matrix = CommMatrix(4);
  s.detector.matrix.add(0, 1, 1000);
  s.detector.matrix.add(2, 3, 1000);
  mapper.restore(s);
}

MachineStats stats_of(std::uint64_t accesses) {
  MachineStats s;
  s.accesses = accesses;
  return s;
}

/// Partners split across L2 domains on Harpertown — the matcher will move.
const Mapping kSplitStart = {0, 2, 4, 6};

TEST(OnlineMapper, DefaultCooldownIsMeasuredNonZero) {
  // PR 10 satellite: one aged decision window must re-confirm a pattern
  // before the next migration; 0 (the historical behaviour) stays legal
  // and reachable via --migration-cooldown.
  EXPECT_EQ(OnlineMapperConfig{}.migration_cooldown, 1);
  OnlineMapperConfig zero;
  zero.migration_cooldown = 0;
  EXPECT_NO_THROW(zero.validate());
}

TEST(OnlineMapper, ConfigValidationRejectsBadKnobs) {
  Machine machine(MachineConfig::harpertown());
  const auto reject = [&](auto mutate) {
    OnlineMapperConfig cfg;
    mutate(cfg);
    EXPECT_THROW(OnlineMapper(machine, 4, kSplitStart, cfg),
                 std::invalid_argument);
  };
  reject([](OnlineMapperConfig& c) { c.decay = 0.0; });
  reject([](OnlineMapperConfig& c) { c.decay = 1.5; });
  reject([](OnlineMapperConfig& c) { c.improvement_threshold = 1.0; });
  reject([](OnlineMapperConfig& c) { c.migration_cooldown = -1; });
  reject([](OnlineMapperConfig& c) { c.canary_barriers = -1; });
  reject([](OnlineMapperConfig& c) { c.regression_threshold = -0.5; });
  reject([](OnlineMapperConfig& c) { c.remap_every_barriers = -2; });
}

TEST(OnlineMapper, CanaryRollbackRestoresPreMovePlacement) {
  Machine machine(MachineConfig::harpertown());
  OnlineMapper mapper(machine, 4, kSplitStart, canary_config());
  seed_pairs_matrix(mapper);

  // Barrier 0: baseline rate 1.0 cycles/access, migration opens a canary.
  const auto moved = mapper.on_barrier(0, 1000, stats_of(1000));
  ASSERT_FALSE(moved.empty());
  EXPECT_NE(moved, kSplitStart);
  EXPECT_EQ(mapper.migrations(), 1);
  EXPECT_GT(mapper.state().canary_left, 0);

  // The canary window runs at 4x the baseline rate: cycles race ahead of
  // accesses. The window closes on the third tick and must roll back.
  EXPECT_TRUE(mapper.on_barrier(1, 3000, stats_of(1500)).empty());
  EXPECT_TRUE(mapper.on_barrier(2, 5000, stats_of(2000)).empty());
  const auto rolled = mapper.on_barrier(3, 7000, stats_of(2500));
  EXPECT_EQ(rolled, kSplitStart);
  EXPECT_EQ(mapper.current_mapping(), kSplitStart);
  EXPECT_EQ(mapper.rollbacks(), 1);
  EXPECT_EQ(mapper.canary_commits(), 0);
  EXPECT_EQ(mapper.state().canary_left, 0);
}

TEST(OnlineMapper, CanaryCommitKeepsMigration) {
  Machine machine(MachineConfig::harpertown());
  OnlineMapper mapper(machine, 4, kSplitStart, canary_config());
  seed_pairs_matrix(mapper);

  const auto moved = mapper.on_barrier(0, 1000, stats_of(1000));
  ASSERT_FALSE(moved.empty());

  // Post-move rate equals the baseline: the migration survives its window.
  EXPECT_TRUE(mapper.on_barrier(1, 2000, stats_of(2000)).empty());
  EXPECT_TRUE(mapper.on_barrier(2, 3000, stats_of(3000)).empty());
  EXPECT_TRUE(mapper.on_barrier(3, 4000, stats_of(4000)).empty());
  EXPECT_EQ(mapper.current_mapping(), moved);
  EXPECT_EQ(mapper.canary_commits(), 1);
  EXPECT_EQ(mapper.rollbacks(), 0);
}

TEST(OnlineMapper, RollbackDisabledMeasuresButNeverReverts) {
  Machine machine(MachineConfig::harpertown());
  OnlineMapperConfig cfg = canary_config();
  cfg.rollback = false;
  OnlineMapper mapper(machine, 4, kSplitStart, cfg);
  seed_pairs_matrix(mapper);

  const auto moved = mapper.on_barrier(0, 1000, stats_of(1000));
  ASSERT_FALSE(moved.empty());
  // Same regressed window as the rollback test; the verdict is recorded
  // (telemetry) but the placement must stand.
  EXPECT_TRUE(mapper.on_barrier(1, 3000, stats_of(1500)).empty());
  EXPECT_TRUE(mapper.on_barrier(2, 5000, stats_of(2000)).empty());
  EXPECT_TRUE(mapper.on_barrier(3, 7000, stats_of(2500)).empty());
  EXPECT_EQ(mapper.current_mapping(), moved);
  EXPECT_EQ(mapper.rollbacks(), 0);
}

TEST(OnlineMapper, BackoffDampsRemigrationAfterRollback) {
  Machine machine(MachineConfig::harpertown());
  OnlineMapper mapper(machine, 4, kSplitStart, canary_config());
  seed_pairs_matrix(mapper);

  ASSERT_FALSE(mapper.on_barrier(0, 1000, stats_of(1000)).empty());
  mapper.on_barrier(1, 3000, stats_of(1500));
  mapper.on_barrier(2, 5000, stats_of(2000));
  ASSERT_EQ(mapper.on_barrier(3, 7000, stats_of(2500)), kSplitStart);
  ASSERT_EQ(mapper.rollbacks(), 1);

  // Re-seed the matrix (decay has aged it) so the matcher would migrate
  // again immediately — the first post-rollback decision must instead be
  // suppressed by the exponential damping.
  seed_pairs_matrix(mapper);
  EXPECT_TRUE(mapper.on_barrier(4, 8000, stats_of(3500)).empty());
  EXPECT_GE(mapper.backoff_skips(), 1);
  EXPECT_EQ(mapper.migrations(), 1);
}

TEST(OnlineMapper, CheckpointMidCanaryReplaysBitIdentically) {
  // Acceptance (PR 10): checkpoint/resume while a canary transaction is in
  // flight reproduces the decision sequence — including the rollback —
  // bit-for-bit.
  Machine machine(MachineConfig::harpertown());
  OnlineMapper original(machine, 4, kSplitStart, canary_config());
  seed_pairs_matrix(original);

  ASSERT_FALSE(original.on_barrier(0, 1000, stats_of(1000)).empty());
  original.on_barrier(1, 3000, stats_of(1500));
  const OnlineMapperState snapshot = original.state();
  ASSERT_GT(snapshot.canary_left, 0);  // mid-window

  // Seal through the on-disk codec, not just a struct copy.
  const auto parsed = parse_mapper_state(serialize_mapper_state(snapshot));
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(*parsed == snapshot);
  OnlineMapper resumed(machine, 4, kSplitStart, canary_config());
  resumed.restore(*parsed);

  // Replay an identical tail into both mappers; every returned placement
  // and every piece of decision state must match exactly.
  const std::uint64_t cycles[] = {5000, 7000, 9000, 11000, 13000};
  const std::uint64_t accesses[] = {2000, 2500, 3500, 4500, 5500};
  bool rolled_back = false;
  for (int i = 0; i < 5; ++i) {
    const auto a = original.on_barrier(2 + i, cycles[i], stats_of(accesses[i]));
    const auto b = resumed.on_barrier(2 + i, cycles[i], stats_of(accesses[i]));
    EXPECT_EQ(a, b) << "diverged at barrier " << 2 + i;
    EXPECT_TRUE(original.state() == resumed.state())
        << "state diverged at barrier " << 2 + i;
    rolled_back = rolled_back || !a.empty();
  }
  EXPECT_TRUE(rolled_back);  // the replayed window did regress
  EXPECT_EQ(original.rollbacks(), resumed.rollbacks());
  EXPECT_EQ(original.rollbacks(), 1);
}

// ---------------------------------------------------------------------------
// The adversarial phase-flip differential (PR 10 acceptance).

TEST(ChurnDifferential, CanarySurvivesAdversarialPhaseFlip) {
  ChurnScenarioConfig cfg;
  // Long shift-0 phase, a 2-barrier shift-1 bait, then the shift-0 tail
  // that punishes whoever chased the bait.
  cfg.shifts = {0, 0, 0, 0, 0, 0, 1, 1, 0, 0, 0, 0, 0, 0};
  const ChurnScenarioResult r = run_churn_scenario(cfg);

  // The bait must actually bait: the rollback-disabled arm migrates and is
  // stuck with the flipped placement at the end.
  EXPECT_GE(r.no_rollback.run.migrations, 1);
  EXPECT_EQ(r.no_rollback.run.rollbacks, 0);
  EXPECT_EQ(r.never_remap.run.migrations, 0);

  // Self-correction: the canary arm measures the regression, rolls back,
  // and ends no worse than never remapping — and strictly better than the
  // arm that cannot undo its mistake.
  EXPECT_GE(r.canary.run.rollbacks, 1);
  EXPECT_LE(r.canary.final_cost, r.never_remap.final_cost);
  EXPECT_LT(r.canary.final_cost, r.no_rollback.final_cost);
}

}  // namespace
}  // namespace tlbmap

// Tests for in-run thread migration and the online mapper.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}
  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

TraceEvent read_at(VirtAddr addr) {
  return TraceEvent::make_access(addr, AccessType::kRead, 0);
}

/// Swaps the two threads at every barrier.
class SwapPolicy final : public MigrationPolicy {
 public:
  std::vector<CoreId> on_barrier(int, Cycles) override {
    swapped_ = !swapped_;
    ++calls_;
    return swapped_ ? std::vector<CoreId>{1, 0} : std::vector<CoreId>{0, 1};
  }
  int calls() const { return calls_; }

 private:
  bool swapped_ = false;
  int calls_ = 0;
};

TEST(Migration, PolicyConsultedAtEachBarrier) {
  Machine m(MachineConfig::tiny());
  SwapPolicy policy;
  Machine::RunConfig run;
  run.thread_to_core = {0, 1};
  run.migration = &policy;
  m.run(streams_of({
            {read_at(0), TraceEvent::make_barrier(), read_at(64),
             TraceEvent::make_barrier()},
            {read_at(4096), TraceEvent::make_barrier(), read_at(8192),
             TraceEvent::make_barrier()},
        }),
        run);
  EXPECT_EQ(policy.calls(), 2);
  // Two swaps: the placement is back to identity.
  EXPECT_EQ(m.thread_on(0), 0);
  EXPECT_EQ(m.thread_on(1), 1);
}

TEST(Migration, MigrationCostCharged) {
  Machine m(MachineConfig::tiny());
  SwapPolicy policy;
  auto make = [] {
    return streams_of({
        {read_at(0), TraceEvent::make_barrier(), read_at(0)},
        {read_at(4096), TraceEvent::make_barrier(), read_at(4096)},
    });
  };
  Machine::RunConfig stay;
  stay.thread_to_core = {0, 1};
  const MachineStats base = m.run(make(), stay);

  Machine::RunConfig move = stay;
  move.migration = &policy;
  move.migration_cost = 50'000;
  const MachineStats migrated = m.run(make(), move);
  // Both threads moved once: the post-barrier accesses also miss cold
  // TLB/L1 on the new core, so the delta exceeds the flat cost.
  EXPECT_GE(migrated.execution_cycles, base.execution_cycles + 50'000);
}

TEST(Migration, InvalidPolicyMappingThrows) {
  Machine m(MachineConfig::tiny());
  class BadPolicy final : public MigrationPolicy {
    std::vector<CoreId> on_barrier(int, Cycles) override { return {0, 0}; }
  } bad;
  Machine::RunConfig run;
  run.thread_to_core = {0, 1};
  run.migration = &bad;
  EXPECT_THROW(m.run(streams_of({
                         {TraceEvent::make_barrier()},
                         {TraceEvent::make_barrier()},
                     }),
                     run),
               std::invalid_argument);
}

TEST(Migration, EmptyReturnKeepsPlacement) {
  Machine m(MachineConfig::tiny());
  class KeepPolicy final : public MigrationPolicy {
    std::vector<CoreId> on_barrier(int, Cycles) override { return {}; }
  } keep;
  Machine::RunConfig run;
  run.thread_to_core = {1, 0};
  run.migration = &keep;
  m.run(streams_of({
            {read_at(0), TraceEvent::make_barrier(), read_at(0)},
            {read_at(4096), TraceEvent::make_barrier(), read_at(4096)},
        }),
        run);
  EXPECT_EQ(m.thread_on(1), 0);
  EXPECT_EQ(m.thread_on(0), 1);
}

// ------------------------------------------------------------ OnlineMapper

SyntheticSpec phased_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPhaseShift;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.shared_accesses = 4096;
  spec.iterations = 12;
  return spec;
}

TEST(OnlineMapper, MigratesAndImproves) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(phased_spec());

  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 2;
  cfg.detector.sample_threshold = 3;

  // Start from an adversarial placement: partners split across sockets.
  const Mapping bad_start = {0, 4, 1, 5, 2, 6, 3, 7};
  const auto dynamic = pipe.evaluate_dynamic(*workload, bad_start, cfg, 3);
  const MachineStats still = pipe.evaluate(*workload, bad_start, 3);

  EXPECT_GT(dynamic.migrations, 0);
  EXPECT_GT(dynamic.remap_decisions, 0);
  EXPECT_LT(dynamic.stats.execution_cycles, still.execution_cycles);
  EXPECT_LT(dynamic.stats.invalidations, still.invalidations);
  EXPECT_TRUE(is_valid_mapping(dynamic.final_mapping, 8));
}

TEST(OnlineMapper, NoMigrationBelowMatrixThreshold) {
  Pipeline pipe(MachineConfig::harpertown());
  SyntheticSpec spec = phased_spec();
  spec.iterations = 2;
  const auto workload = make_synthetic(spec);
  OnlineMapperConfig cfg;
  cfg.min_matrix_total = 1u << 30;  // unreachable
  const auto result =
      pipe.evaluate_dynamic(*workload, identity_mapping(8), cfg, 3);
  EXPECT_EQ(result.migrations, 0);
  EXPECT_EQ(result.final_mapping, identity_mapping(8));
}

TEST(OnlineMapper, StablePatternConvergesToFewMigrations) {
  // A static pairs pattern: after the first good mapping, further remap
  // decisions should keep the placement (migrations << decisions).
  Pipeline pipe(MachineConfig::harpertown());
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 64;
  spec.shared_pages = 8;
  spec.iterations = 12;
  const auto workload = make_synthetic(spec);
  OnlineMapperConfig cfg;
  cfg.remap_every_barriers = 2;
  cfg.detector.sample_threshold = 3;
  const auto result =
      pipe.evaluate_dynamic(*workload, identity_mapping(8), cfg, 3);
  EXPECT_GT(result.remap_decisions, 2);
  EXPECT_LE(result.migrations, result.remap_decisions / 2 + 1);
}

TEST(OnlineMapper, RejectsInvalidInitialMapping) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(phased_spec());
  EXPECT_THROW(pipe.evaluate_dynamic(*workload, Mapping{0, 0, 1, 2, 3, 4, 5, 6},
                                     OnlineMapperConfig{}, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace tlbmap

// Tests for the plain-text table and formatting helpers.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace tlbmap {
namespace {

TEST(Report, TableAlignsColumns) {
  TextTable t({"a", "long-header"});
  t.add_row({"xx", "y"});
  const std::string s = t.str();
  // Three lines: header, separator, row.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 3);
  EXPECT_NE(s.find("----"), std::string::npos);
  // The second column starts at the same offset in header and data rows.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  for (std::size_t nl = s.find('\n'); nl != std::string::npos;
       nl = s.find('\n', pos)) {
    lines.push_back(s.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].find("long-header"), lines[2].find('y'));
}

TEST(Report, TableHandlesEmptyCells) {
  TextTable t({"h1", "h2", "h3"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.str());
}

TEST(Report, FmtDouble) {
  EXPECT_EQ(fmt_double(1.23456, 3), "1.235");
  EXPECT_EQ(fmt_double(1.0, 1), "1.0");
  EXPECT_EQ(fmt_double(-0.5, 2), "-0.50");
}

TEST(Report, FmtPercent) {
  EXPECT_EQ(fmt_percent(0.153), "15.3%");
  EXPECT_EQ(fmt_percent(0.0012, 2), "0.12%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
}

TEST(Report, FmtCountGroupsThousands) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(12345678), "12,345,678");
  EXPECT_EQ(fmt_count(-1234), "-1,234");
}

TEST(Report, BarWidthProportional) {
  EXPECT_EQ(bar(0.0, 10), "          ");
  EXPECT_EQ(bar(2.0, 10), "##########");
  const std::string half = bar(1.0, 10);
  EXPECT_EQ(half, "#####     ");
  // Out-of-range input is clamped rather than overflowing.
  EXPECT_EQ(bar(99.0, 4), "####");
  EXPECT_EQ(bar(-1.0, 4).size(), 4u);
}


TEST(Report, CsvBasic) {
  CsvTable t({"app", "value"});
  t.add_row({"BT", "1.5"});
  EXPECT_EQ(t.str(), "app,value\nBT,1.5\n");
}

TEST(Report, CsvEscapesSpecials) {
  CsvTable t({"a"});
  t.add_row({"x,y"});
  t.add_row({"say \"hi\""});
  t.add_row({"two\nlines"});
  const std::string s = t.str();
  EXPECT_NE(s.find("\"x,y\""), std::string::npos);
  EXPECT_NE(s.find("\"say \"\"hi\"\"\""), std::string::npos);
  EXPECT_NE(s.find("\"two\nlines\""), std::string::npos);
}

}  // namespace
}  // namespace tlbmap

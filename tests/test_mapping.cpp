// Tests for the Mapping type, baseline generators and the cost metric.
#include <set>

#include <gtest/gtest.h>

#include "mapping/mapping.hpp"

namespace tlbmap {
namespace {

const Topology& harpertown() {
  static const Topology t{MachineConfig::harpertown()};
  return t;
}

TEST(Mapping, IdentityIsValid) {
  const Mapping m = identity_mapping(8);
  EXPECT_TRUE(is_valid_mapping(m, 8));
  EXPECT_EQ(m[3], 3);
}

TEST(Mapping, ValidityRejectsDuplicates) {
  EXPECT_FALSE(is_valid_mapping({0, 0}, 8));
}

TEST(Mapping, ValidityRejectsOutOfRange) {
  EXPECT_FALSE(is_valid_mapping({0, 8}, 8));
  EXPECT_FALSE(is_valid_mapping({-1, 1}, 8));
}

TEST(Mapping, ValidityAcceptsPartialUse) {
  EXPECT_TRUE(is_valid_mapping({5, 2}, 8));  // 2 threads on 8 cores
}

TEST(Mapping, RandomIsValidPermutation) {
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    const Mapping m = random_mapping(8, 8, seed);
    EXPECT_TRUE(is_valid_mapping(m, 8)) << "seed " << seed;
  }
}

TEST(Mapping, RandomFewerThreadsThanCores) {
  const Mapping m = random_mapping(3, 8, 7);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(is_valid_mapping(m, 8));
}

TEST(Mapping, RandomVariesWithSeed) {
  std::set<Mapping> seen;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    seen.insert(random_mapping(8, 8, seed));
  }
  EXPECT_GT(seen.size(), 10u);
}

TEST(Mapping, RandomDeterministicPerSeed) {
  EXPECT_EQ(random_mapping(8, 8, 3), random_mapping(8, 8, 3));
}

TEST(Mapping, RoundRobinSpreadsAcrossSockets) {
  const Mapping m = round_robin_mapping(harpertown(), 4);
  EXPECT_TRUE(is_valid_mapping(m, 8));
  // Threads alternate sockets: 0 and 2 on socket 0, 1 and 3 on socket 1.
  EXPECT_EQ(harpertown().socket_of(m[0]), 0);
  EXPECT_EQ(harpertown().socket_of(m[1]), 1);
  EXPECT_EQ(harpertown().socket_of(m[2]), 0);
  EXPECT_EQ(harpertown().socket_of(m[3]), 1);
}

TEST(Mapping, RoundRobinFullMachine) {
  const Mapping m = round_robin_mapping(harpertown(), 8);
  EXPECT_TRUE(is_valid_mapping(m, 8));
}

TEST(Mapping, CostCountsWeightedDistance) {
  CommMatrix comm(2);
  comm.add(0, 1, 10);
  // Same L2 (distance 1) vs cross-socket (distance 3).
  EXPECT_DOUBLE_EQ(mapping_cost(comm, {0, 1}, harpertown()), 10.0);
  EXPECT_DOUBLE_EQ(mapping_cost(comm, {0, 4}, harpertown()), 30.0);
}

TEST(Mapping, CostZeroForNoCommunication) {
  CommMatrix comm(4);
  EXPECT_DOUBLE_EQ(mapping_cost(comm, {0, 2, 4, 6}, harpertown()), 0.0);
}

TEST(Mapping, ToStringFormat) {
  EXPECT_EQ(to_string(Mapping{2, 0}), "t0->c2 t1->c0");
}

}  // namespace
}  // namespace tlbmap

// End-to-end tests of the detect -> map -> evaluate pipeline.
#include <algorithm>
#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "npb/synthetic.hpp"

namespace tlbmap {
namespace {

SyntheticSpec pairs_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 64;  // beyond TLB reach so misses recur
  spec.shared_pages = 4;
  spec.iterations = 6;
  return spec;
}

TEST(Pipeline, DetectSmOnPairs) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  EXPECT_EQ(det.mechanism, "SM");
  EXPECT_GT(det.searches, 0u);
  EXPECT_GT(det.stats.tlb_misses, 0u);
  // The top 4 pairs must be the true partners.
  const auto top = det.matrix.pairs_by_weight();
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(top[static_cast<std::size_t>(i)].first / 2,
              top[static_cast<std::size_t>(i)].second / 2)
        << "rank " << i;
  }
}

TEST(Pipeline, DetectHmOnPairs) {
  Pipeline pipe(MachineConfig::harpertown());
  // HM only sees sharing if a sweep lands while the shared pages are still
  // TLB-resident (the paper's Sec. VI-A explanation of the IS/MG artifacts),
  // so sweep densely and give the workload more iterations to sample.
  pipe.hm_config().interval = 20'000;
  pipe.hm_config().search_cost = 0;
  SyntheticSpec spec = pairs_spec();
  spec.iterations = 12;
  const auto workload = make_synthetic(spec);
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kHardwareManaged);
  EXPECT_EQ(det.mechanism, "HM");
  EXPECT_GT(det.searches, 10u);
  EXPECT_GT(det.matrix.at(0, 1), det.matrix.at(0, 2));
}

TEST(Pipeline, DetectOracleOnPairs) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kOracle);
  EXPECT_EQ(det.mechanism, "oracle");
  EXPECT_GT(det.matrix.at(2, 3), 0u);
  EXPECT_EQ(det.matrix.at(0, 2), 0u);
  EXPECT_EQ(det.stats.detection_overhead_cycles, 0u);
}

TEST(Pipeline, MapPlacesPartnersOnSharedL2) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  const Mapping mapping = pipe.map(det.matrix);
  EXPECT_TRUE(is_valid_mapping(mapping, 8));
  const Topology& topo = pipe.topology();
  for (int t = 0; t < 8; t += 2) {
    EXPECT_TRUE(topo.share_l2(mapping[static_cast<std::size_t>(t)],
                              mapping[static_cast<std::size_t>(t + 1)]))
        << "pair " << t;
  }
}

TEST(Pipeline, TunedMappingBeatsWorstCase) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  const Mapping tuned = pipe.map(det.matrix);

  // Adversarial mapping: every partner pair split across sockets.
  const Mapping split = {0, 4, 1, 5, 2, 6, 3, 7};
  const MachineStats good = pipe.evaluate(*workload, tuned, 3);
  const MachineStats bad = pipe.evaluate(*workload, split, 3);
  EXPECT_LT(good.execution_cycles, bad.execution_cycles);
  EXPECT_LT(good.invalidations, bad.invalidations);
  EXPECT_LT(good.snoop_transactions, bad.snoop_transactions);
}

TEST(Pipeline, EvaluateRejectsBadMapping) {
  Pipeline pipe(MachineConfig::harpertown());
  const auto workload = make_synthetic(pairs_spec());
  EXPECT_THROW(pipe.evaluate(*workload, Mapping{0, 0, 1, 2, 3, 4, 5, 6}, 1),
               std::invalid_argument);
}

TEST(Pipeline, DetectRejectsTooManyThreads) {
  Pipeline pipe(MachineConfig::tiny());  // 2 cores
  const auto workload = make_synthetic(pairs_spec());  // 8 threads
  EXPECT_THROW(
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged),
      std::invalid_argument);
}

TEST(Pipeline, DetectionDeterministicPerSeed) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  const auto workload = make_synthetic(pairs_spec());
  const auto d1 =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 5);
  const auto d2 =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 5);
  EXPECT_NEAR(CommMatrix::cosine_similarity(d1.matrix, d2.matrix), 1.0,
              1e-12);
  EXPECT_EQ(d1.stats.execution_cycles, d2.stats.execution_cycles);
}

TEST(Pipeline, SmOverheadAccountedInStats) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  pipe.sm_config().search_cost = 1000;
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  // Overhead is reported on the critical path (max per-thread), so it is
  // bounded by the total charge and positive.
  EXPECT_GT(det.stats.detection_overhead_cycles, 0u);
  EXPECT_LE(det.stats.detection_overhead_cycles, det.searches * 1000);
  EXPECT_GT(det.stats.overhead_fraction(), 0.0);
  EXPECT_LT(det.stats.overhead_fraction(), 1.0);
}

TEST(PipelineObs, PhasesLevelRecordsSpansMetricsAndSnapshot) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kPhases;
  pipe.set_observability(&ctx);
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  const Mapping mapping = pipe.map(det.matrix);
  pipe.evaluate(*workload, mapping, 1);

  // Spans: one per phase plus the machine runs.
  std::vector<std::string> names;
  for (const auto& ev : ctx.tracer.snapshot()) names.push_back(ev.name);
  EXPECT_NE(std::find(names.begin(), names.end(), "pipeline.detect"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pipeline.map"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "pipeline.evaluate"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "machine.run"),
            names.end());

  // Metrics: detector searches and the machine counters, labeled.
  EXPECT_EQ(ctx.metrics.counter_value("detector.searches",
                                      {{"mechanism", "SM"}}),
            det.searches);
  EXPECT_EQ(ctx.metrics.counter_value(
                "sim.accesses", {{"phase", "detect"}, {"mechanism", "SM"}}),
            det.stats.accesses);
  EXPECT_EQ(ctx.metrics
                .histogram("pipeline.phase_wall_us", {{"phase", "detect"}})
                .count(),
            1u);

  // At least one end-of-detection communication-matrix snapshot.
  const auto snaps = ctx.metrics.matrix_snapshots();
  ASSERT_FALSE(snaps.empty());
  EXPECT_EQ(snaps[0].name, "comm_matrix.SM");
  EXPECT_EQ(snaps[0].rows.size(),
            static_cast<std::size_t>(det.matrix.size()));
}

TEST(PipelineObs, OffLevelRecordsNothing) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kOff;
  pipe.set_observability(&ctx);
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
  pipe.map(det.matrix);
  EXPECT_EQ(ctx.tracer.recorded(), 0u);
  EXPECT_TRUE(ctx.metrics.matrix_snapshots().empty());
  EXPECT_EQ(ctx.metrics.counter_value("detector.searches",
                                      {{"mechanism", "SM"}}),
            0u);
}

TEST(PipelineObs, ObservabilityDoesNotPerturbSimulation) {
  const auto workload = make_synthetic(pairs_spec());
  Pipeline plain(MachineConfig::harpertown());
  plain.sm_config().sample_threshold = 1;
  const auto base =
      plain.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 5);

  Pipeline observed(MachineConfig::harpertown());
  observed.sm_config().sample_threshold = 1;
  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kFull;
  observed.set_observability(&ctx);
  const auto traced =
      observed.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 5);

  EXPECT_EQ(base.stats.execution_cycles, traced.stats.execution_cycles);
  EXPECT_EQ(base.searches, traced.searches);
  EXPECT_NEAR(CommMatrix::cosine_similarity(base.matrix, traced.matrix), 1.0,
              1e-12);
  // kFull additionally emitted per-search instants.
  EXPECT_GT(ctx.tracer.recorded(), 0u);
}

TEST(PipelineObs, IntervalSeriesMonotonicWithFinalSampleEqualTotals) {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 1;
  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kPhases;
  pipe.set_observability(&ctx);
  pipe.set_metrics_interval_events(2000);
  const auto workload = make_synthetic(pairs_spec());
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);

  const auto samples = ctx.metrics.series().samples();
  ASSERT_GE(samples.size(), 2u);
  auto gauge_at = [](const obs::SeriesSample& s, const std::string& key) {
    for (const auto& [k, v] : s.gauges) {
      if (k == key) return v;
    }
    ADD_FAILURE() << "gauge " << key << " missing from sample " << s.index;
    return 0.0;
  };
  bool saw_interval = false;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].index, i);  // dense, monotonic sample index
    if (samples[i].reason == "interval") saw_interval = true;
    if (i == 0) continue;
    // The stream is monotonic: simulated-event stamps and every progress
    // gauge only move forward.
    EXPECT_GE(samples[i].sim_events, samples[i - 1].sim_events);
    EXPECT_GE(gauge_at(samples[i], "machine.events_issued"),
              gauge_at(samples[i - 1], "machine.events_issued"));
    EXPECT_GE(gauge_at(samples[i], "machine.accesses"),
              gauge_at(samples[i - 1], "machine.accesses"));
    EXPECT_GE(gauge_at(samples[i], "machine.sim_cycles"),
              gauge_at(samples[i - 1], "machine.sim_cycles"));
  }
  EXPECT_TRUE(saw_interval);

  // The pipeline's phase-boundary sample closes the stream, and its values
  // equal the end-of-run totals the caller sees in DetectionResult.
  const obs::SeriesSample& last = samples.back();
  EXPECT_EQ(last.reason, "phase:detect");
  EXPECT_DOUBLE_EQ(gauge_at(last, "machine.accesses"),
                   static_cast<double>(det.stats.accesses));
  EXPECT_DOUBLE_EQ(gauge_at(last, "machine.sim_cycles"),
                   static_cast<double>(det.stats.execution_cycles));
  bool found_counter = false;
  for (const auto& [key, value] : last.counters) {
    if (key == "sim.accesses{mechanism=SM,phase=detect}") {
      EXPECT_EQ(value, det.stats.accesses);
      found_counter = true;
    }
  }
  EXPECT_TRUE(found_counter);
}

TEST(PipelineObs, SeriesExportByteIdenticalAcrossRuns) {
  // Same seed + same interval => byte-identical series export. Wall-clock
  // self-measurement metrics exist in both registries but are excluded from
  // the sampled stream, so run-to-run timing noise cannot leak in.
  const auto workload = make_synthetic(pairs_spec());
  auto run_once = [&workload] {
    Pipeline pipe(MachineConfig::harpertown());
    pipe.sm_config().sample_threshold = 1;
    obs::ObsContext ctx;
    ctx.level = obs::ObsLevel::kPhases;
    pipe.set_observability(&ctx);
    pipe.set_metrics_interval_events(1000);
    const DetectionResult det =
        pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 7);
    const Mapping mapping = pipe.map(det.matrix);
    pipe.evaluate(*workload, mapping, 1);
    std::ostringstream out;
    ctx.metrics.series().export_jsonl(out);
    return out.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace tlbmap

// Tests for the per-core memory hierarchy facade: TLB translation path,
// write-through L1 semantics, inclusive L1/L2 shootdowns, latency shape.
#include <gtest/gtest.h>

#include "sim/hierarchy.hpp"

namespace tlbmap {
namespace {

constexpr VirtAddr kPage = 4096;

class HierarchyTest : public ::testing::Test {
 protected:
  HierarchyTest() : hier_(MachineConfig::harpertown()) {}

  MemoryHierarchy hier_;
  MachineStats stats_;
};

TEST_F(HierarchyTest, ColdAccessMissesEverywhere) {
  const auto info = hier_.access(0, 0, AccessType::kRead, stats_);
  EXPECT_TRUE(info.tlb_miss);
  EXPECT_EQ(info.page, 0u);
  EXPECT_EQ(stats_.tlb_misses, 1u);
  EXPECT_EQ(stats_.l1_misses, 1u);
  EXPECT_EQ(stats_.l2_misses, 1u);
  EXPECT_EQ(stats_.memory_fetches, 1u);
}

TEST_F(HierarchyTest, SecondReadHitsL1) {
  hier_.access(0, 0, AccessType::kRead, stats_);
  stats_ = {};
  const auto info = hier_.access(0, 8, AccessType::kRead, stats_);  // same line
  EXPECT_FALSE(info.tlb_miss);
  EXPECT_EQ(stats_.l1_hits, 1u);
  EXPECT_EQ(stats_.l2_accesses, 0u);
  EXPECT_EQ(info.latency, hier_.config().l1.latency);
}

TEST_F(HierarchyTest, TlbMissPenaltyCharged) {
  const auto cold = hier_.access(0, 0, AccessType::kRead, stats_);
  const auto warm_new_line =
      hier_.access(0, 64, AccessType::kRead, stats_);  // same page, new line
  EXPECT_EQ(cold.latency - warm_new_line.latency,
            hier_.config().tlb.miss_penalty);
}

TEST_F(HierarchyTest, PageComputedFromVirtualAddress) {
  const auto info = hier_.access(0, 5 * kPage + 123, AccessType::kRead,
                                 stats_);
  EXPECT_EQ(info.page, 5u);
}

TEST_F(HierarchyTest, DistinctVirtualPagesGetDistinctFrames) {
  hier_.access(0, 0, AccessType::kRead, stats_);
  hier_.access(0, kPage, AccessType::kRead, stats_);
  EXPECT_EQ(hier_.page_table().mapped_pages(), 2u);
  EXPECT_EQ(stats_.l2_misses, 2u);  // no frame aliasing
}

TEST_F(HierarchyTest, WriteThroughReachesL2) {
  hier_.access(0, 0, AccessType::kWrite, stats_);
  stats_ = {};
  hier_.access(0, 0, AccessType::kWrite, stats_);
  // Every write reaches the L2 even when the L1 holds the line.
  EXPECT_EQ(stats_.l2_accesses, 1u);
  EXPECT_EQ(stats_.l2_hits, 1u);
}

TEST_F(HierarchyTest, WriteDoesNotAllocateL1) {
  hier_.access(0, 0, AccessType::kWrite, stats_);
  EXPECT_EQ(hier_.l1(0).valid_lines(), 0u);  // no-write-allocate
  stats_ = {};
  hier_.access(0, 0, AccessType::kRead, stats_);
  EXPECT_EQ(stats_.l1_misses, 1u);  // read still misses L1, hits L2
  EXPECT_EQ(stats_.l2_hits, 1u);
}

TEST_F(HierarchyTest, SiblingL1ShotDownOnLocalWrite) {
  // Cores 0 and 1 share an L2. Core 1 caches a line in its L1; core 0's
  // write must invalidate that copy even though no bus transaction occurs.
  hier_.access(1, 0, AccessType::kRead, stats_);
  ASSERT_EQ(hier_.l1(1).valid_lines(), 1u);
  hier_.access(0, 0, AccessType::kWrite, stats_);
  EXPECT_EQ(hier_.l1(1).valid_lines(), 0u);
}

TEST_F(HierarchyTest, RemoteL1ShotDownViaInclusiveDrop) {
  // Core 2 (different L2) caches the line; core 0's write invalidates the
  // remote L2 line, which must propagate to core 2's L1.
  hier_.access(2, 0, AccessType::kRead, stats_);
  ASSERT_EQ(hier_.l1(2).valid_lines(), 1u);
  stats_ = {};
  hier_.access(0, 0, AccessType::kWrite, stats_);
  EXPECT_EQ(stats_.invalidations, 1u);
  EXPECT_EQ(hier_.l1(2).valid_lines(), 0u);
}

TEST_F(HierarchyTest, SharedL2CommunicationIsLocal) {
  hier_.access(0, 0, AccessType::kWrite, stats_);
  stats_ = {};
  hier_.access(1, 0, AccessType::kRead, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(stats_.l2_hits, 1u);
}

TEST_F(HierarchyTest, CrossSocketCommunicationCostsMore) {
  hier_.access(0, 0, AccessType::kWrite, stats_);
  hier_.access(0, kPage, AccessType::kWrite, stats_);
  const auto same_socket =
      hier_.access(2, 0, AccessType::kRead, stats_);
  const auto cross_socket =
      hier_.access(4, kPage, AccessType::kRead, stats_);
  EXPECT_LT(same_socket.latency, cross_socket.latency);
}

TEST_F(HierarchyTest, FlushCachesKeepsPageTable) {
  hier_.access(0, 0, AccessType::kRead, stats_);
  hier_.flush_caches();
  EXPECT_EQ(hier_.l1(0).valid_lines(), 0u);
  EXPECT_EQ(hier_.tlb(0).valid_entries(), 0u);
  EXPECT_EQ(hier_.page_table().mapped_pages(), 1u);
  stats_ = {};
  const auto info = hier_.access(0, 0, AccessType::kRead, stats_);
  EXPECT_TRUE(info.tlb_miss);  // cold again
}

TEST_F(HierarchyTest, ReadWriteCountsSplit) {
  hier_.access(0, 0, AccessType::kRead, stats_);
  hier_.access(0, 0, AccessType::kWrite, stats_);
  hier_.access(0, 0, AccessType::kWrite, stats_);
  EXPECT_EQ(stats_.reads, 1u);
  EXPECT_EQ(stats_.writes, 2u);
  EXPECT_EQ(stats_.accesses, 3u);
}

TEST(HierarchyConfig, RejectsInvalidMachine) {
  MachineConfig bad = MachineConfig::harpertown();
  bad.page_size = 1000;  // not a power of two
  EXPECT_THROW(MemoryHierarchy{bad}, std::invalid_argument);
  MachineConfig bad2 = MachineConfig::harpertown();
  bad2.l1.ways = 3;  // 512 lines % 3 != 0
  EXPECT_THROW(MemoryHierarchy{bad2}, std::invalid_argument);
}

TEST(HierarchyConfig, TinyAndHarpertownValid) {
  EXPECT_NO_THROW(MemoryHierarchy{MachineConfig::tiny()});
  EXPECT_NO_THROW(MemoryHierarchy{MachineConfig::harpertown()});
  MachineConfig h = MachineConfig::harpertown();
  EXPECT_EQ(h.num_cores(), 8);
  EXPECT_EQ(h.num_l2(), 4);
  EXPECT_EQ(h.page_shift(), 12);
}

}  // namespace
}  // namespace tlbmap

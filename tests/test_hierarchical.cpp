// Tests for the hierarchical (pair-of-pairs) mapper built on the matching
// algorithms — the paper's Sec. V-A procedure — and for the recursive
// multisection mapper plus the strategy dispatcher that chooses between
// them at manycore scale.
#include <chrono>
#include <random>

#include <gtest/gtest.h>

#include "mapping/hierarchical.hpp"
#include "mapping/multisection.hpp"
#include "mapping/strategy.hpp"

namespace tlbmap {
namespace {

const Topology& harpertown() {
  static const Topology t{MachineConfig::harpertown()};
  return t;
}

/// Band matrix: strong neighbour communication like BT/SP.
CommMatrix band_matrix(int n, std::uint64_t strong = 100,
                       std::uint64_t weak = 1) {
  CommMatrix m(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      m.add(a, b, b == a + 1 ? strong : weak);
    }
  }
  return m;
}

TEST(Hierarchical, ProducesValidMapping) {
  HierarchicalMapper mapper(harpertown());
  const Mapping m = mapper.map(band_matrix(8));
  EXPECT_TRUE(is_valid_mapping(m, 8));
  EXPECT_EQ(m.size(), 8u);
}

TEST(Hierarchical, StrongPairsShareL2) {
  HierarchicalMapper mapper(harpertown());
  // Pairs (0,1)(2,3)(4,5)(6,7) with overwhelming weight.
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 1000);
  const Mapping m = mapper.map(comm);
  for (int t = 0; t < 8; t += 2) {
    EXPECT_TRUE(harpertown().share_l2(m[static_cast<std::size_t>(t)],
                                      m[static_cast<std::size_t>(t + 1)]))
        << "pair " << t;
  }
}

TEST(Hierarchical, SecondLevelGroupsShareSocket) {
  HierarchicalMapper mapper(harpertown());
  // Pairs (0,1)(2,3)(4,5)(6,7); quads {0,1,2,3} and {4,5,6,7} strongly
  // coupled at the second level.
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 1000);
  comm.add(0, 2, 100);
  comm.add(1, 3, 100);
  comm.add(4, 6, 100);
  comm.add(5, 7, 100);
  const Mapping m = mapper.map(comm);
  for (const auto& [a, b] : {std::pair{0, 2}, {1, 3}, {4, 6}, {5, 7}}) {
    EXPECT_TRUE(harpertown().share_socket(m[static_cast<std::size_t>(a)],
                                          m[static_cast<std::size_t>(b)]))
        << a << "," << b;
  }
}

TEST(Hierarchical, BandMatrixBeatsBadPlacements) {
  HierarchicalMapper mapper(harpertown());
  const CommMatrix comm = band_matrix(8);
  const Mapping tuned = mapper.map(comm);
  const double tuned_cost = mapping_cost(comm, tuned, harpertown());
  // The tuned cost must beat the worst observed random placements and be
  // no worse than identity (which is near-optimal for a band).
  double worst_random = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    worst_random = std::max(
        worst_random,
        mapping_cost(comm, random_mapping(8, 8, seed), harpertown()));
  }
  EXPECT_LT(tuned_cost, worst_random);
  EXPECT_LE(tuned_cost,
            mapping_cost(comm, identity_mapping(8), harpertown()) + 1e-9);
}

TEST(Hierarchical, HomogeneousMatrixStillValid) {
  HierarchicalMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) comm.add(a, b, 7);
  }
  EXPECT_TRUE(is_valid_mapping(mapper.map(comm), 8));
}

TEST(Hierarchical, AllZeroMatrixStillValid) {
  HierarchicalMapper mapper(harpertown());
  EXPECT_TRUE(is_valid_mapping(mapper.map(CommMatrix(8)), 8));
}

TEST(Hierarchical, FewerThreadsThanCores) {
  HierarchicalMapper mapper(harpertown());
  CommMatrix comm(4);
  comm.add(0, 1, 100);
  comm.add(2, 3, 100);
  const Mapping m = mapper.map(comm);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(is_valid_mapping(m, 8));
  EXPECT_TRUE(harpertown().share_l2(m[0], m[1]));
  EXPECT_TRUE(harpertown().share_l2(m[2], m[3]));
}

TEST(Hierarchical, SingleThreadPair) {
  const Topology tiny{MachineConfig::tiny()};
  HierarchicalMapper mapper(tiny);
  CommMatrix comm(2);
  comm.add(0, 1, 5);
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, 2));
}

TEST(Hierarchical, OddThreadCountsMapValidly) {
  // Odd thread counts exercise the virtual-padding path and the
  // odd-tolerant matching entry points (DESIGN.md Sec. 11): no assert,
  // no throw, a valid placement out.
  HierarchicalMapper mapper(harpertown());
  HierarchicalMapper greedy(
      harpertown(),
      HierarchicalMapperConfig{HierarchicalMapperConfig::Matcher::kGreedy});
  for (int n : {1, 3, 5, 7}) {
    CommMatrix comm(n);
    for (int a = 0; a < n; ++a) {
      for (int b = a + 1; b < n; ++b) comm.add(a, b, (a + b) % 5 + 1);
    }
    const Mapping m = mapper.map(comm);
    EXPECT_EQ(m.size(), static_cast<std::size_t>(n));
    EXPECT_TRUE(is_valid_mapping(m, 8)) << "blossom n=" << n;
    EXPECT_TRUE(is_valid_mapping(greedy.map(comm), 8)) << "greedy n=" << n;
  }
  // Odd and all-zero at once: the fully degenerate input.
  EXPECT_TRUE(is_valid_mapping(mapper.map(CommMatrix(5)), 8));
}

TEST(Hierarchical, RejectsMoreThreadsThanCores) {
  HierarchicalMapper mapper(harpertown());
  EXPECT_THROW(mapper.map(CommMatrix(9)), std::invalid_argument);
}

TEST(Hierarchical, MergeLevelsExposeStructure) {
  HierarchicalMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 1000);
  const auto levels = mapper.merge_levels(comm);
  // 8 -> 4 groups -> 2 groups: two merge passes down to socket count.
  ASSERT_EQ(levels.size(), 2u);
  ASSERT_EQ(levels[0].size(), 4u);
  for (const auto& group : levels[0]) {
    ASSERT_EQ(group.size(), 2u);
    EXPECT_EQ(group[0] / 2, group[1] / 2);  // (0,1)(2,3)... merged first
  }
  EXPECT_EQ(levels[1].size(), 2u);
  EXPECT_EQ(levels[1][0].size(), 4u);
}

TEST(Hierarchical, GreedyMatcherOptionWorks) {
  HierarchicalMapper mapper(
      harpertown(),
      HierarchicalMapperConfig{HierarchicalMapperConfig::Matcher::kGreedy});
  const Mapping m = mapper.map(band_matrix(8));
  EXPECT_TRUE(is_valid_mapping(m, 8));
}

TEST(Hierarchical, GreedyNeverBeatsBlossomOnCost) {
  HierarchicalMapper blossom(harpertown());
  HierarchicalMapper greedy(
      harpertown(),
      HierarchicalMapperConfig{HierarchicalMapperConfig::Matcher::kGreedy});
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    CommMatrix comm(8);
    std::mt19937_64 rng(seed);
    for (int a = 0; a < 8; ++a) {
      for (int b = a + 1; b < 8; ++b) comm.add(a, b, rng() % 100);
    }
    // Blossom maximises communication kept at the lowest hierarchy levels;
    // in the cost metric (lower = better) it should not lose by much. We
    // assert only the sane direction on total first-level weight.
    const auto b_levels = blossom.merge_levels(comm);
    const auto g_levels = greedy.merge_levels(comm);
    auto level_weight = [&](const std::vector<std::vector<ThreadId>>& gs) {
      std::uint64_t w = 0;
      for (const auto& g : gs) w += comm.at(g[0], g[1]);
      return w;
    };
    EXPECT_GE(level_weight(b_levels[0]), level_weight(g_levels[0]))
        << "seed " << seed;
  }
}

TEST(Hierarchical, RejectsNonPowerOfTwoArity) {
  MachineConfig c;
  c.num_sockets = 1;
  c.cores_per_socket = 6;
  c.cores_per_l2 = 3;
  const Topology t(c);
  EXPECT_THROW(HierarchicalMapper{t}, std::invalid_argument);
}

// ------------------------------------------------------------ Multisection

/// Block-diagonal communities sized to the machine's socket capacity, with
/// sub-communities sized to an L2 — the clustered traffic both mappers are
/// built to exploit.
CommMatrix clustered_matrix(int n, int socket_span, int l2_span) {
  CommMatrix m(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      std::uint64_t w = 1;
      if (a / socket_span == b / socket_span) w = 20;
      if (a / l2_span == b / l2_span) w = 400;
      m.add(a, b, w);
    }
  }
  return m;
}

TEST(Multisection, ProducesValidMapping) {
  MultisectionMapper mapper(harpertown());
  const Mapping m = mapper.map(band_matrix(8));
  EXPECT_TRUE(is_valid_mapping(m, 8));
  EXPECT_EQ(m.size(), 8u);
}

TEST(Multisection, StrongPairsShareL2) {
  MultisectionMapper mapper(harpertown());
  CommMatrix comm(8);
  for (int t = 0; t < 8; t += 2) comm.add(t, t + 1, 1000);
  const Mapping m = mapper.map(comm);
  for (int t = 0; t < 8; t += 2) {
    EXPECT_TRUE(harpertown().share_l2(m[static_cast<std::size_t>(t)],
                                      m[static_cast<std::size_t>(t + 1)]))
        << "pair " << t;
  }
}

TEST(Multisection, HandlesNonPowerOfTwoArity) {
  // The topology Edmonds rejects outright: 6 cores, 3 per L2.
  MachineConfig c;
  c.num_sockets = 1;
  c.cores_per_socket = 6;
  c.cores_per_l2 = 3;
  const Topology t(c);
  MultisectionMapper mapper(t);
  CommMatrix comm(6);
  comm.add(0, 1, 500);
  comm.add(0, 2, 500);
  comm.add(1, 2, 500);
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, 6));
  EXPECT_TRUE(t.share_l2(m[0], m[1]));
  EXPECT_TRUE(t.share_l2(m[0], m[2]));
}

TEST(Multisection, FewerThreadsThanCoresAndDegenerateInputs) {
  MultisectionMapper mapper(harpertown());
  CommMatrix comm(4);
  comm.add(0, 1, 100);
  comm.add(2, 3, 100);
  const Mapping m = mapper.map(comm);
  EXPECT_EQ(m.size(), 4u);
  EXPECT_TRUE(is_valid_mapping(m, 8));
  EXPECT_TRUE(harpertown().share_l2(m[0], m[1]));
  EXPECT_TRUE(harpertown().share_l2(m[2], m[3]));
  EXPECT_TRUE(is_valid_mapping(mapper.map(CommMatrix(8)), 8));
  EXPECT_TRUE(is_valid_mapping(mapper.map(CommMatrix(5)), 8));
  EXPECT_THROW(mapper.map(CommMatrix(9)), std::invalid_argument);
}

TEST(Multisection, PlacesGroupsOnMeshAwareSockets) {
  // On the mesh-priced manycore preset, heavy cross-community traffic
  // should land the two communities on nearby sockets; validity and a win
  // over random placement are the hard assertions.
  const Topology t{MachineConfig::manycore()};
  const int n = 64;
  MultisectionMapper mapper(t);
  const CommMatrix comm = clustered_matrix(n, 32, 8);
  const Mapping m = mapper.map(comm);
  EXPECT_TRUE(is_valid_mapping(m, t.num_cores()));
  const double tuned = mapping_cost(comm, m, t);
  double best_random = 1e300;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    best_random = std::min(
        best_random,
        mapping_cost(comm, random_mapping(n, t.num_cores(), seed), t));
  }
  EXPECT_LT(tuned, best_random);
}

// The manycore contract from the issue: at N >= 128, multisection must be
// no more than 5% worse than the Edmonds hierarchy on mapping cost while
// finishing faster in wall-clock.
TEST(Multisection, WithinFivePercentOfEdmondsAndFasterAt128) {
  MachineConfig c;
  c.num_sockets = 16;
  c.cores_per_socket = 8;
  c.cores_per_l2 = 2;
  const Topology t(c);  // 128 cores, pow-2 arities so Edmonds can run
  const int n = 128;
  const CommMatrix comm = clustered_matrix(n, /*socket_span=*/8,
                                           /*l2_span=*/2);

  using Clock = std::chrono::steady_clock;
  const auto e0 = Clock::now();
  const Mapping edmonds = HierarchicalMapper(t).map(comm);
  const auto e1 = Clock::now();
  const Mapping multi = MultisectionMapper(t).map(comm);
  const auto e2 = Clock::now();

  ASSERT_TRUE(is_valid_mapping(edmonds, 128));
  ASSERT_TRUE(is_valid_mapping(multi, 128));
  const double edmonds_cost = mapping_cost(comm, edmonds, t);
  const double multi_cost = mapping_cost(comm, multi, t);
  EXPECT_LE(multi_cost, edmonds_cost * 1.05)
      << "multisection " << multi_cost << " vs edmonds " << edmonds_cost;
  const auto edmonds_us =
      std::chrono::duration_cast<std::chrono::microseconds>(e1 - e0).count();
  const auto multi_us =
      std::chrono::duration_cast<std::chrono::microseconds>(e2 - e1).count();
  EXPECT_LT(multi_us, edmonds_us)
      << "multisection " << multi_us << "us vs edmonds " << edmonds_us
      << "us";
}

// ----------------------------------------------------- Strategy dispatch

TEST(MappingStrategyTest, ParseAndPrintRoundTrip) {
  for (const char* name : {"auto", "edmonds", "greedy", "multisection"}) {
    const auto s = parse_mapping_strategy(name);
    ASSERT_TRUE(s.has_value()) << name;
    EXPECT_STREQ(to_string(*s), name);
  }
  EXPECT_FALSE(parse_mapping_strategy("blossom").has_value());
  EXPECT_FALSE(parse_mapping_strategy("").has_value());
}

TEST(MappingStrategyTest, AutoPrefersEdmondsSmallMultisectionLarge) {
  MappingConfig config;  // kAuto, threshold 128
  EXPECT_EQ(resolve_strategy(config, CommMatrix(8), harpertown()),
            MappingStrategy::kEdmonds);
  MachineConfig c;
  c.num_sockets = 16;
  c.cores_per_socket = 8;
  c.cores_per_l2 = 2;
  const Topology big(c);
  EXPECT_EQ(resolve_strategy(config, CommMatrix(128), big),
            MappingStrategy::kMultisection);
  config.auto_threshold = 8;
  EXPECT_EQ(resolve_strategy(config, CommMatrix(8), harpertown()),
            MappingStrategy::kMultisection);
}

TEST(MappingStrategyTest, AutoFallsBackToMultisectionOffPowerOfTwo) {
  MachineConfig c;
  c.num_sockets = 1;
  c.cores_per_socket = 6;
  c.cores_per_l2 = 3;
  const Topology t(c);
  EXPECT_EQ(resolve_strategy(MappingConfig{}, CommMatrix(6), t),
            MappingStrategy::kMultisection);
  // And map_threads must therefore succeed where Edmonds would throw.
  CommMatrix comm(6);
  comm.add(0, 1, 10);
  EXPECT_TRUE(is_valid_mapping(map_threads(comm, t), 6));
}

TEST(MappingStrategyTest, ExplicitStrategiesPassThrough) {
  MappingConfig config;
  config.strategy = MappingStrategy::kMultisection;
  EXPECT_EQ(resolve_strategy(config, CommMatrix(8), harpertown()),
            MappingStrategy::kMultisection);
  config.strategy = MappingStrategy::kEdmonds;
  EXPECT_EQ(resolve_strategy(config, CommMatrix(200), harpertown()),
            MappingStrategy::kEdmonds);
  for (const MappingStrategy s :
       {MappingStrategy::kEdmonds, MappingStrategy::kGreedy,
        MappingStrategy::kMultisection}) {
    config.strategy = s;
    EXPECT_TRUE(is_valid_mapping(
        map_threads(band_matrix(8), harpertown(), config), 8))
        << to_string(s);
  }
}

}  // namespace
}  // namespace tlbmap

// Unit tests for the MESI coherence domain: state transitions, snoop and
// invalidation counting, writebacks, inclusive line drops, and the
// intra/inter-socket traffic split.
#include <vector>

#include <gtest/gtest.h>

#include "sim/coherence.hpp"

namespace tlbmap {
namespace {

// 4 single-core L2s: L2s {0,1} on socket 0, {2,3} on socket 1.
MachineConfig four_l2_config() {
  MachineConfig c;
  c.num_sockets = 2;
  c.cores_per_socket = 2;
  c.cores_per_l2 = 1;
  c.l1 = CacheConfig{512, 64, 2, 2};
  c.l2 = CacheConfig{4096, 64, 4, 8};
  return c;
}

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : config_(four_l2_config()),
        topology_(config_),
        interconnect_(topology_, config_.interconnect),
        domain_(config_, topology_, interconnect_) {}

  MesiState state_in(L2Id l2, LineAddr line) {
    const CacheLine* cl = domain_.l2(l2).peek(line);
    return cl == nullptr ? MesiState::kInvalid : cl->state;
  }

  MachineConfig config_;
  Topology topology_;
  Interconnect interconnect_;
  CoherenceDomain domain_;
  MachineStats stats_;
};

TEST_F(CoherenceTest, ColdReadFetchesExclusive) {
  const Cycles lat = domain_.read(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kExclusive);
  EXPECT_EQ(stats_.l2_misses, 1u);
  EXPECT_EQ(stats_.memory_fetches, 1u);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(lat, config_.l2.latency + config_.interconnect.memory_latency);
}

TEST_F(CoherenceTest, ReadHitIsCheap) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  const Cycles lat = domain_.read(0, 10, stats_);
  EXPECT_EQ(stats_.l2_hits, 1u);
  EXPECT_EQ(stats_.l2_misses, 0u);
  EXPECT_EQ(lat, config_.l2.latency);
}

TEST_F(CoherenceTest, RemoteReadOfExclusiveIsSnoopToShared) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  domain_.read(1, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.memory_fetches, 0u);
  EXPECT_EQ(state_in(0, 10), MesiState::kShared);
  EXPECT_EQ(state_in(1, 10), MesiState::kShared);
}

TEST_F(CoherenceTest, RemoteReadOfModifiedWritesBack) {
  domain_.write(0, 10, stats_);
  ASSERT_EQ(state_in(0, 10), MesiState::kModified);
  stats_ = {};
  domain_.read(1, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 10), MesiState::kShared);
  EXPECT_EQ(state_in(1, 10), MesiState::kShared);
}

TEST_F(CoherenceTest, WriteMissFetchesModified) {
  domain_.write(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kModified);
  EXPECT_EQ(stats_.memory_fetches, 1u);
  EXPECT_EQ(stats_.invalidations, 0u);
}

TEST_F(CoherenceTest, WriteHitExclusiveSilentUpgrade) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  const Cycles lat = domain_.write(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kModified);
  EXPECT_EQ(stats_.invalidations, 0u);
  EXPECT_EQ(stats_.intra_socket_messages + stats_.inter_socket_messages, 0u);
  EXPECT_EQ(lat, 1u);
}

TEST_F(CoherenceTest, WriteToSharedInvalidatesAllRemoteCopies) {
  domain_.read(0, 10, stats_);
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  stats_ = {};
  domain_.write(1, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 2u);  // copies in L2 0 and 2
  EXPECT_EQ(state_in(0, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(2, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(1, 10), MesiState::kModified);
}

TEST_F(CoherenceTest, WriteMissToRemoteModifiedInvalidatesAndTransfers) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  domain_.write(2, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 1u);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(2, 10), MesiState::kModified);
}

TEST_F(CoherenceTest, RepeatWritesByOwnerAreSilent) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  for (int i = 0; i < 5; ++i) domain_.write(0, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 0u);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(stats_.l2_hits, 5u);
}

TEST_F(CoherenceTest, IntraSocketTransferCheaperThanInter) {
  domain_.write(0, 10, stats_);
  MachineStats intra;
  const Cycles lat_intra = domain_.read(1, 10, intra);  // same socket
  domain_.write(0, 11, stats_);
  MachineStats inter;
  const Cycles lat_inter = domain_.read(2, 11, inter);  // cross socket
  EXPECT_LT(lat_intra, lat_inter);
}

TEST_F(CoherenceTest, NearestHolderPreferred) {
  // Line shared by L2 3 (remote socket) and L2 1 (same socket as reader 0):
  // the transfer must come from L2 1 and be intra-socket priced.
  domain_.read(3, 10, stats_);
  domain_.read(1, 10, stats_);
  stats_ = {};
  domain_.read(0, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  // 3 probe messages always go out; the data transfer adds one more
  // intra-socket message (from L2 1).
  EXPECT_EQ(stats_.intra_socket_messages, 2u);  // probe to 1 + transfer
  EXPECT_EQ(stats_.inter_socket_messages, 2u);  // probes to 2 and 3
}

TEST_F(CoherenceTest, ProbeTrafficSplitBySocket) {
  stats_ = {};
  domain_.read(0, 99, stats_);  // cold miss: 3 probes, memory fetch
  EXPECT_EQ(stats_.intra_socket_messages, 1u);  // probe to L2 1
  EXPECT_EQ(stats_.inter_socket_messages, 2u);  // probes to L2 2, 3
}

TEST_F(CoherenceTest, EvictionOfModifiedWritesBack) {
  // L2: 4096 B, 64 B lines, 4 ways -> 16 sets; same set = addr % 16.
  domain_.write(0, 0, stats_);
  stats_ = {};
  for (LineAddr a = 16; a <= 64; a += 16) domain_.read(0, a, stats_);
  // Set 0 now had 5 lines inserted; the modified line 0 was LRU.
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 0), MesiState::kInvalid);
}

TEST_F(CoherenceTest, LineDropCallbackFiresOnInvalidationAndEviction) {
  std::vector<std::pair<L2Id, LineAddr>> drops;
  domain_.set_line_drop_callback(
      [&](L2Id l2, LineAddr line) { drops.emplace_back(l2, line); });
  domain_.read(0, 10, stats_);
  domain_.write(1, 10, stats_);  // invalidates L2 0's copy
  ASSERT_FALSE(drops.empty());
  EXPECT_EQ(drops.back(), (std::pair<L2Id, LineAddr>{0, 10}));

  drops.clear();
  for (LineAddr a = 10 + 16; a <= 10 + 5 * 16; a += 16) {
    domain_.write(1, a, stats_);  // overflow set, evicting line 10
  }
  bool saw_eviction = false;
  for (const auto& [l2, line] : drops) {
    if (l2 == 1 && line == 10) saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction);
}

TEST_F(CoherenceTest, FlushDropsEverything) {
  domain_.write(0, 1, stats_);
  domain_.read(1, 2, stats_);
  domain_.flush();
  EXPECT_EQ(state_in(0, 1), MesiState::kInvalid);
  EXPECT_EQ(state_in(1, 2), MesiState::kInvalid);
}

TEST_F(CoherenceTest, CounterConsistency) {
  // Random-ish workload; structural invariants must hold.
  std::uint64_t ops = 0;
  for (LineAddr a = 0; a < 200; ++a) {
    domain_.read(static_cast<L2Id>(a % 4), a % 37, stats_);
    domain_.write(static_cast<L2Id>((a + 1) % 4), a % 37, stats_);
    ops += 2;
  }
  EXPECT_EQ(stats_.l2_accesses, ops);
  EXPECT_EQ(stats_.l2_hits + stats_.l2_misses, ops);
  EXPECT_LE(stats_.memory_fetches, stats_.l2_misses);
  EXPECT_LE(stats_.snoop_transactions, stats_.l2_misses);
}

TEST_F(CoherenceTest, SharedReadersOnSameLineEachSnoopOnce) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  domain_.read(3, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 3u);
  stats_ = {};
  // Re-reads hit locally: no more transfers.
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(stats_.l2_hits, 2u);
}

TEST_F(CoherenceTest, UpgradeLatencyIsWorstAcknowledgement) {
  domain_.read(0, 10, stats_);
  domain_.read(2, 10, stats_);  // cross-socket sharer
  stats_ = {};
  const Cycles lat = domain_.write(0, 10, stats_);
  EXPECT_EQ(lat, 1 + config_.interconnect.invalidate_inter_socket);
}

// ------------------------------------------------ line-occupancy directory

TEST_F(CoherenceTest, DirectoryTracksHoldersIncrementally) {
  ASSERT_TRUE(domain_.directory_enabled());
  EXPECT_EQ(domain_.directory_lines(), 0u);

  domain_.read(0, 10, stats_);
  EXPECT_EQ(domain_.directory_lines(), 1u);
  domain_.read(1, 10, stats_);  // second holder, same line
  EXPECT_EQ(domain_.directory_lines(), 1u);
  domain_.read(2, 20, stats_);
  EXPECT_EQ(domain_.directory_lines(), 2u);
  EXPECT_TRUE(domain_.directory_consistent());

  // An RFO by L2 3 strips lines 10's other holders; the mask must follow.
  domain_.write(3, 10, stats_);
  EXPECT_TRUE(domain_.directory_consistent());

  domain_.flush();
  EXPECT_EQ(domain_.directory_lines(), 0u);
  EXPECT_TRUE(domain_.directory_consistent());
}

TEST_F(CoherenceTest, DirectoryConsistentThroughEvictionPressure) {
  // Hammer one L2's sets past capacity so inserts evict constantly, then
  // pull lines across sockets; the masks must track every movement.
  for (LineAddr a = 0; a < 400; ++a) {
    domain_.read(static_cast<L2Id>(a % 4), a % 61, stats_);
    domain_.write(static_cast<L2Id>((a + 2) % 4), a % 61, stats_);
    if (a % 37 == 0) {
      ASSERT_TRUE(domain_.directory_consistent()) << "at op " << a;
    }
  }
  EXPECT_TRUE(domain_.directory_consistent());
  EXPECT_GT(domain_.directory_stats().probes, 0u);
  EXPECT_GT(domain_.directory_stats().holder_visits, 0u);
}

TEST_F(CoherenceTest, BroadcastConfigDisablesDirectory) {
  MachineConfig broadcast = four_l2_config();
  broadcast.coherence_broadcast = true;
  Topology topology(broadcast);
  Interconnect interconnect(topology, broadcast.interconnect);
  CoherenceDomain domain(broadcast, topology, interconnect);
  EXPECT_FALSE(domain.directory_enabled());

  domain.read(0, 10, stats_);
  domain.read(1, 10, stats_);
  EXPECT_EQ(domain.directory_lines(), 0u);
  EXPECT_EQ(domain.directory_stats().probes, 0u);
  EXPECT_TRUE(domain.directory_consistent());
}

// Write miss with several sharers: the nearest holder sources the data (one
// snoop transaction), every holder is invalidated, and — since the probe
// names a live holder — the data never comes from memory. This pins the
// intended RFO accounting for both probe resolutions.
TEST_F(CoherenceTest, MultiHolderRfoAccountingMatchesBroadcast) {
  for (const bool use_broadcast : {false, true}) {
    MachineConfig cfg = four_l2_config();
    cfg.coherence_broadcast = use_broadcast;
    Topology topology(cfg);
    Interconnect interconnect(topology, cfg.interconnect);
    CoherenceDomain domain(cfg, topology, interconnect);
    MachineStats stats;

    domain.read(0, 10, stats);
    domain.read(1, 10, stats);
    domain.read(2, 10, stats);  // three sharers across both sockets
    stats = {};
    const Cycles lat = domain.write(3, 10, stats);

    EXPECT_EQ(stats.invalidations, 3u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.snoop_transactions, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.memory_fetches, 0u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.writebacks, 0u) << "broadcast=" << use_broadcast;
    // Source is L2 2 (same socket as 3): transfer is intra-socket, but the
    // stall is bounded by the slowest cross-socket invalidation.
    EXPECT_EQ(lat, 1 + cfg.interconnect.invalidate_inter_socket)
        << "broadcast=" << use_broadcast;
    const CacheLine* line = domain.l2(3).peek(10);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, MesiState::kModified);
    for (L2Id other : {0, 1, 2}) {
      EXPECT_EQ(domain.l2(other).peek(10), nullptr)
          << "L2 " << other << " broadcast=" << use_broadcast;
    }
  }
}

// A dirty sharer hit by an RFO must write back before dying, under both
// probe resolutions.
TEST_F(CoherenceTest, RfoOverModifiedLineWritesBack) {
  for (const bool use_broadcast : {false, true}) {
    MachineConfig cfg = four_l2_config();
    cfg.coherence_broadcast = use_broadcast;
    Topology topology(cfg);
    Interconnect interconnect(topology, cfg.interconnect);
    CoherenceDomain domain(cfg, topology, interconnect);
    MachineStats stats;

    domain.write(0, 10, stats);  // Modified in L2 0
    stats = {};
    domain.write(2, 10, stats);  // cross-socket RFO
    EXPECT_EQ(stats.writebacks, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.invalidations, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.snoop_transactions, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.memory_fetches, 0u) << "broadcast=" << use_broadcast;
  }
}

// Probe accounting parity: the directory must bill the same broadcast
// messages as the walked probe even when no one holds the line.
TEST_F(CoherenceTest, DirectoryBillsFullProbeBroadcast) {
  stats_ = {};
  domain_.read(0, 99, stats_);  // cold miss, no holders anywhere
  // 1 intra-socket peer (L2 1) + 2 cross-socket peers (L2s 2, 3).
  EXPECT_EQ(stats_.intra_socket_messages, 1u);
  EXPECT_EQ(stats_.inter_socket_messages, 2u);
  EXPECT_EQ(domain_.directory_stats().probes, 1u);
  EXPECT_EQ(domain_.directory_stats().holder_hits, 0u);
}

}  // namespace
}  // namespace tlbmap

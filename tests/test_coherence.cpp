// Unit tests for the MESI coherence domain: state transitions, snoop and
// invalidation counting, writebacks, inclusive line drops, and the
// intra/inter-socket traffic split.
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "sim/coherence.hpp"

namespace tlbmap {
namespace {

// 4 single-core L2s: L2s {0,1} on socket 0, {2,3} on socket 1.
MachineConfig four_l2_config() {
  MachineConfig c;
  c.num_sockets = 2;
  c.cores_per_socket = 2;
  c.cores_per_l2 = 1;
  c.l1 = CacheConfig{512, 64, 2, 2};
  c.l2 = CacheConfig{4096, 64, 4, 8};
  return c;
}

class CoherenceTest : public ::testing::Test {
 protected:
  CoherenceTest()
      : config_(four_l2_config()),
        topology_(config_),
        interconnect_(topology_, config_.interconnect),
        domain_(config_, topology_, interconnect_) {}

  MesiState state_in(L2Id l2, LineAddr line) {
    const CacheLine* cl = domain_.l2(l2).peek(line);
    return cl == nullptr ? MesiState::kInvalid : cl->state;
  }

  MachineConfig config_;
  Topology topology_;
  Interconnect interconnect_;
  CoherenceDomain domain_;
  MachineStats stats_;
};

TEST_F(CoherenceTest, ColdReadFetchesExclusive) {
  const Cycles lat = domain_.read(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kExclusive);
  EXPECT_EQ(stats_.l2_misses, 1u);
  EXPECT_EQ(stats_.memory_fetches, 1u);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(lat, config_.l2.latency + config_.interconnect.memory_latency);
}

TEST_F(CoherenceTest, ReadHitIsCheap) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  const Cycles lat = domain_.read(0, 10, stats_);
  EXPECT_EQ(stats_.l2_hits, 1u);
  EXPECT_EQ(stats_.l2_misses, 0u);
  EXPECT_EQ(lat, config_.l2.latency);
}

TEST_F(CoherenceTest, RemoteReadOfExclusiveIsSnoopToShared) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  domain_.read(1, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.memory_fetches, 0u);
  EXPECT_EQ(state_in(0, 10), MesiState::kShared);
  EXPECT_EQ(state_in(1, 10), MesiState::kShared);
}

TEST_F(CoherenceTest, RemoteReadOfModifiedWritesBack) {
  domain_.write(0, 10, stats_);
  ASSERT_EQ(state_in(0, 10), MesiState::kModified);
  stats_ = {};
  domain_.read(1, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 10), MesiState::kShared);
  EXPECT_EQ(state_in(1, 10), MesiState::kShared);
}

TEST_F(CoherenceTest, WriteMissFetchesModified) {
  domain_.write(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kModified);
  EXPECT_EQ(stats_.memory_fetches, 1u);
  EXPECT_EQ(stats_.invalidations, 0u);
}

TEST_F(CoherenceTest, WriteHitExclusiveSilentUpgrade) {
  domain_.read(0, 10, stats_);
  stats_ = {};
  const Cycles lat = domain_.write(0, 10, stats_);
  EXPECT_EQ(state_in(0, 10), MesiState::kModified);
  EXPECT_EQ(stats_.invalidations, 0u);
  EXPECT_EQ(stats_.intra_socket_messages + stats_.inter_socket_messages, 0u);
  EXPECT_EQ(lat, 1u);
}

TEST_F(CoherenceTest, WriteToSharedInvalidatesAllRemoteCopies) {
  domain_.read(0, 10, stats_);
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  stats_ = {};
  domain_.write(1, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 2u);  // copies in L2 0 and 2
  EXPECT_EQ(state_in(0, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(2, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(1, 10), MesiState::kModified);
}

TEST_F(CoherenceTest, WriteMissToRemoteModifiedInvalidatesAndTransfers) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  domain_.write(2, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 1u);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 10), MesiState::kInvalid);
  EXPECT_EQ(state_in(2, 10), MesiState::kModified);
}

TEST_F(CoherenceTest, RepeatWritesByOwnerAreSilent) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  for (int i = 0; i < 5; ++i) domain_.write(0, 10, stats_);
  EXPECT_EQ(stats_.invalidations, 0u);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(stats_.l2_hits, 5u);
}

TEST_F(CoherenceTest, IntraSocketTransferCheaperThanInter) {
  domain_.write(0, 10, stats_);
  MachineStats intra;
  const Cycles lat_intra = domain_.read(1, 10, intra);  // same socket
  domain_.write(0, 11, stats_);
  MachineStats inter;
  const Cycles lat_inter = domain_.read(2, 11, inter);  // cross socket
  EXPECT_LT(lat_intra, lat_inter);
}

TEST_F(CoherenceTest, NearestHolderPreferred) {
  // Line shared by L2 3 (remote socket) and L2 1 (same socket as reader 0):
  // the transfer must come from L2 1 and be intra-socket priced.
  domain_.read(3, 10, stats_);
  domain_.read(1, 10, stats_);
  stats_ = {};
  domain_.read(0, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 1u);
  // 3 probe messages always go out; the data transfer adds one more
  // intra-socket message (from L2 1).
  EXPECT_EQ(stats_.intra_socket_messages, 2u);  // probe to 1 + transfer
  EXPECT_EQ(stats_.inter_socket_messages, 2u);  // probes to 2 and 3
}

TEST_F(CoherenceTest, ProbeTrafficSplitBySocket) {
  stats_ = {};
  domain_.read(0, 99, stats_);  // cold miss: 3 probes, memory fetch
  EXPECT_EQ(stats_.intra_socket_messages, 1u);  // probe to L2 1
  EXPECT_EQ(stats_.inter_socket_messages, 2u);  // probes to L2 2, 3
}

TEST_F(CoherenceTest, EvictionOfModifiedWritesBack) {
  // L2: 4096 B, 64 B lines, 4 ways -> 16 sets; same set = addr % 16.
  domain_.write(0, 0, stats_);
  stats_ = {};
  for (LineAddr a = 16; a <= 64; a += 16) domain_.read(0, a, stats_);
  // Set 0 now had 5 lines inserted; the modified line 0 was LRU.
  EXPECT_EQ(stats_.writebacks, 1u);
  EXPECT_EQ(state_in(0, 0), MesiState::kInvalid);
}

TEST_F(CoherenceTest, LineDropCallbackFiresOnInvalidationAndEviction) {
  std::vector<std::pair<L2Id, LineAddr>> drops;
  domain_.set_line_drop_callback(
      [&](L2Id l2, LineAddr line) { drops.emplace_back(l2, line); });
  domain_.read(0, 10, stats_);
  domain_.write(1, 10, stats_);  // invalidates L2 0's copy
  ASSERT_FALSE(drops.empty());
  EXPECT_EQ(drops.back(), (std::pair<L2Id, LineAddr>{0, 10}));

  drops.clear();
  for (LineAddr a = 10 + 16; a <= 10 + 5 * 16; a += 16) {
    domain_.write(1, a, stats_);  // overflow set, evicting line 10
  }
  bool saw_eviction = false;
  for (const auto& [l2, line] : drops) {
    if (l2 == 1 && line == 10) saw_eviction = true;
  }
  EXPECT_TRUE(saw_eviction);
}

TEST_F(CoherenceTest, FlushDropsEverything) {
  domain_.write(0, 1, stats_);
  domain_.read(1, 2, stats_);
  domain_.flush();
  EXPECT_EQ(state_in(0, 1), MesiState::kInvalid);
  EXPECT_EQ(state_in(1, 2), MesiState::kInvalid);
}

TEST_F(CoherenceTest, CounterConsistency) {
  // Random-ish workload; structural invariants must hold.
  std::uint64_t ops = 0;
  for (LineAddr a = 0; a < 200; ++a) {
    domain_.read(static_cast<L2Id>(a % 4), a % 37, stats_);
    domain_.write(static_cast<L2Id>((a + 1) % 4), a % 37, stats_);
    ops += 2;
  }
  EXPECT_EQ(stats_.l2_accesses, ops);
  EXPECT_EQ(stats_.l2_hits + stats_.l2_misses, ops);
  EXPECT_LE(stats_.memory_fetches, stats_.l2_misses);
  EXPECT_LE(stats_.snoop_transactions, stats_.l2_misses);
}

TEST_F(CoherenceTest, SharedReadersOnSameLineEachSnoopOnce) {
  domain_.write(0, 10, stats_);
  stats_ = {};
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  domain_.read(3, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 3u);
  stats_ = {};
  // Re-reads hit locally: no more transfers.
  domain_.read(1, 10, stats_);
  domain_.read(2, 10, stats_);
  EXPECT_EQ(stats_.snoop_transactions, 0u);
  EXPECT_EQ(stats_.l2_hits, 2u);
}

TEST_F(CoherenceTest, UpgradeLatencyIsWorstAcknowledgement) {
  domain_.read(0, 10, stats_);
  domain_.read(2, 10, stats_);  // cross-socket sharer
  stats_ = {};
  const Cycles lat = domain_.write(0, 10, stats_);
  EXPECT_EQ(lat, 1 + config_.interconnect.invalidate_inter_socket);
}

// ------------------------------------------------ line-occupancy directory

TEST_F(CoherenceTest, DirectoryTracksHoldersIncrementally) {
  ASSERT_TRUE(domain_.directory_enabled());
  EXPECT_EQ(domain_.directory_lines(), 0u);

  domain_.read(0, 10, stats_);
  EXPECT_EQ(domain_.directory_lines(), 1u);
  domain_.read(1, 10, stats_);  // second holder, same line
  EXPECT_EQ(domain_.directory_lines(), 1u);
  domain_.read(2, 20, stats_);
  EXPECT_EQ(domain_.directory_lines(), 2u);
  EXPECT_TRUE(domain_.directory_consistent());

  // An RFO by L2 3 strips lines 10's other holders; the mask must follow.
  domain_.write(3, 10, stats_);
  EXPECT_TRUE(domain_.directory_consistent());

  domain_.flush();
  EXPECT_EQ(domain_.directory_lines(), 0u);
  EXPECT_TRUE(domain_.directory_consistent());
}

TEST_F(CoherenceTest, DirectoryConsistentThroughEvictionPressure) {
  // Hammer one L2's sets past capacity so inserts evict constantly, then
  // pull lines across sockets; the masks must track every movement.
  for (LineAddr a = 0; a < 400; ++a) {
    domain_.read(static_cast<L2Id>(a % 4), a % 61, stats_);
    domain_.write(static_cast<L2Id>((a + 2) % 4), a % 61, stats_);
    if (a % 37 == 0) {
      ASSERT_TRUE(domain_.directory_consistent()) << "at op " << a;
    }
  }
  EXPECT_TRUE(domain_.directory_consistent());
  EXPECT_GT(domain_.directory_stats().probes, 0u);
  EXPECT_GT(domain_.directory_stats().holder_visits, 0u);
}

TEST_F(CoherenceTest, BroadcastConfigDisablesDirectory) {
  MachineConfig broadcast = four_l2_config();
  broadcast.coherence_broadcast = true;
  Topology topology(broadcast);
  Interconnect interconnect(topology, broadcast.interconnect);
  CoherenceDomain domain(broadcast, topology, interconnect);
  EXPECT_FALSE(domain.directory_enabled());

  domain.read(0, 10, stats_);
  domain.read(1, 10, stats_);
  EXPECT_EQ(domain.directory_lines(), 0u);
  EXPECT_EQ(domain.directory_stats().probes, 0u);
  EXPECT_TRUE(domain.directory_consistent());
}

// Write miss with several sharers: the nearest holder sources the data (one
// snoop transaction), every holder is invalidated, and — since the probe
// names a live holder — the data never comes from memory. This pins the
// intended RFO accounting for both probe resolutions.
TEST_F(CoherenceTest, MultiHolderRfoAccountingMatchesBroadcast) {
  for (const bool use_broadcast : {false, true}) {
    MachineConfig cfg = four_l2_config();
    cfg.coherence_broadcast = use_broadcast;
    Topology topology(cfg);
    Interconnect interconnect(topology, cfg.interconnect);
    CoherenceDomain domain(cfg, topology, interconnect);
    MachineStats stats;

    domain.read(0, 10, stats);
    domain.read(1, 10, stats);
    domain.read(2, 10, stats);  // three sharers across both sockets
    stats = {};
    const Cycles lat = domain.write(3, 10, stats);

    EXPECT_EQ(stats.invalidations, 3u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.snoop_transactions, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.memory_fetches, 0u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.writebacks, 0u) << "broadcast=" << use_broadcast;
    // Source is L2 2 (same socket as 3): transfer is intra-socket, but the
    // stall is bounded by the slowest cross-socket invalidation.
    EXPECT_EQ(lat, 1 + cfg.interconnect.invalidate_inter_socket)
        << "broadcast=" << use_broadcast;
    const CacheLine* line = domain.l2(3).peek(10);
    ASSERT_NE(line, nullptr);
    EXPECT_EQ(line->state, MesiState::kModified);
    for (L2Id other : {0, 1, 2}) {
      EXPECT_EQ(domain.l2(other).peek(10), nullptr)
          << "L2 " << other << " broadcast=" << use_broadcast;
    }
  }
}

// A dirty sharer hit by an RFO must write back before dying, under both
// probe resolutions.
TEST_F(CoherenceTest, RfoOverModifiedLineWritesBack) {
  for (const bool use_broadcast : {false, true}) {
    MachineConfig cfg = four_l2_config();
    cfg.coherence_broadcast = use_broadcast;
    Topology topology(cfg);
    Interconnect interconnect(topology, cfg.interconnect);
    CoherenceDomain domain(cfg, topology, interconnect);
    MachineStats stats;

    domain.write(0, 10, stats);  // Modified in L2 0
    stats = {};
    domain.write(2, 10, stats);  // cross-socket RFO
    EXPECT_EQ(stats.writebacks, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.invalidations, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.snoop_transactions, 1u) << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.memory_fetches, 0u) << "broadcast=" << use_broadcast;
  }
}

// Probe accounting parity: the directory must bill the same broadcast
// messages as the walked probe even when no one holds the line.
TEST_F(CoherenceTest, DirectoryBillsFullProbeBroadcast) {
  stats_ = {};
  domain_.read(0, 99, stats_);  // cold miss, no holders anywhere
  // 1 intra-socket peer (L2 1) + 2 cross-socket peers (L2s 2, 3).
  EXPECT_EQ(stats_.intra_socket_messages, 1u);
  EXPECT_EQ(stats_.inter_socket_messages, 2u);
  EXPECT_EQ(domain_.directory_stats().probes, 1u);
  EXPECT_EQ(domain_.directory_stats().holder_hits, 0u);
}

// ---------------------------------------------------------------- HolderSet

TEST(HolderSetTest, StaysInlineUpTo64Bits) {
  HolderSet s;
  for (const int b : {0, 5, 63}) s.set(b);
  EXPECT_TRUE(s.is_inline());
  EXPECT_EQ(s.num_words(), 1u);
  EXPECT_EQ(s.count(), 3);
  EXPECT_TRUE(s.test(63));
  EXPECT_FALSE(s.test(7));
  EXPECT_EQ(s.first(), 0);
}

TEST(HolderSetTest, GrowsOnHighBitsAndKeepsLowOnes) {
  HolderSet s;
  s.set(3);
  s.set(200);  // word 3
  EXPECT_FALSE(s.is_inline());
  EXPECT_EQ(s.num_words(), 4u);
  EXPECT_TRUE(s.test(3));
  EXPECT_TRUE(s.test(200));
  EXPECT_FALSE(s.test(64));
  EXPECT_EQ(s.count(), 2);
  s.reset(3);
  EXPECT_EQ(s.first(), 200);
  s.reset(200);
  EXPECT_TRUE(s.none());
}

TEST(HolderSetTest, ForEachVisitsAscendingAcrossWords) {
  HolderSet s;
  for (const int b : {191, 3, 64, 67}) s.set(b);
  std::vector<int> seen;
  s.for_each([&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<int>{3, 64, 67, 191}));
  seen.clear();
  s.for_each_excluding(67, [&](int b) { seen.push_back(b); });
  EXPECT_EQ(seen, (std::vector<int>{3, 64, 191}));
}

TEST(HolderSetTest, FirstExcludingScansPastExcludedWord) {
  HolderSet s;
  s.set(70);
  s.set(130);
  EXPECT_EQ(s.first_excluding(70), 130);
  EXPECT_EQ(s.first_excluding(0), 70);
  HolderSet lone;
  lone.set(5);
  EXPECT_EQ(lone.first_excluding(5), -1);
}

TEST(HolderSetTest, FirstAndExcludingIsTheSocketTieBreak) {
  HolderSet holders;
  holders.set(10);
  holders.set(100);
  holders.set(130);
  HolderSet socket(192);  // mask for bits 96..191, say
  for (int b = 96; b < 192; ++b) socket.set(b);
  // Lowest holder on "my socket" wins over the lower global bit 10.
  EXPECT_EQ(holders.first_and_excluding(socket, 130), 100);
  EXPECT_EQ(holders.first_and_excluding(socket, 100), 130);
  // Empty intersection: mask confined to a word the set never grew.
  HolderSet small;
  small.set(2);
  EXPECT_EQ(small.first_and_excluding(socket, -1), -1);
}

TEST(HolderSetTest, EqualityIgnoresCapacity) {
  HolderSet a;  // inline
  a.set(9);
  HolderSet b(256);  // heap, zero-extended
  b.set(9);
  EXPECT_TRUE(a == b);
  b.set(200);
  EXPECT_FALSE(a == b);
  b.reset(200);
  EXPECT_TRUE(a == b);
}

TEST(HolderSetTest, CopyAndMovePreserveBits) {
  HolderSet s;
  s.set(1);
  s.set(150);
  HolderSet copy = s;
  EXPECT_TRUE(copy == s);
  copy.set(2);
  EXPECT_FALSE(copy == s);  // deep copy, not aliased
  HolderSet moved = std::move(s);
  EXPECT_TRUE(moved.test(150));
  EXPECT_TRUE(moved.test(1));
}

TEST(HolderSetTest, CheckedL2IdRejectsOutOfRangeBits) {
  EXPECT_EQ(checked_l2id(63, 64), 63);
  EXPECT_THROW(checked_l2id(64, 64), std::logic_error);
  EXPECT_THROW(checked_l2id(1000, 256), std::logic_error);
}

// --------------------------------------- beyond 64 L2s (multi-word holders)

// 128 single-core L2s across 16 sockets: holder ids reach word 1, which the
// old single-word directory could not represent (it silently fell back to
// the broadcast walk above 64 L2s).
MachineConfig l2_128_config() {
  MachineConfig c;
  c.num_sockets = 16;
  c.cores_per_socket = 8;
  c.cores_per_l2 = 1;
  c.l1 = CacheConfig{512, 64, 2, 2};
  c.l2 = CacheConfig{4096, 64, 4, 8};
  return c;
}

TEST(ManycoreCoherenceTest, DirectoryStaysEnabledPast64L2s) {
  const MachineConfig cfg = l2_128_config();
  Topology topology(cfg);
  ASSERT_EQ(topology.num_l2(), 128);
  Interconnect interconnect(topology, cfg.interconnect);
  CoherenceDomain domain(cfg, topology, interconnect);
  EXPECT_TRUE(domain.directory_enabled());
}

TEST(ManycoreCoherenceTest, HoldersAboveBit64TrackAndInvalidate) {
  const MachineConfig cfg = l2_128_config();
  Topology topology(cfg);
  Interconnect interconnect(topology, cfg.interconnect);
  CoherenceDomain domain(cfg, topology, interconnect);
  MachineStats stats;

  domain.read(70, 10, stats);   // all three holders live in word 1
  domain.read(100, 10, stats);
  domain.read(127, 10, stats);
  EXPECT_TRUE(domain.directory_consistent());
  stats = {};
  domain.write(5, 10, stats);   // writer in word 0, victims in word 1
  EXPECT_EQ(stats.invalidations, 3u);
  EXPECT_EQ(stats.snoop_transactions, 1u);
  EXPECT_EQ(stats.memory_fetches, 0u);
  for (const L2Id other : {70, 100, 127}) {
    EXPECT_EQ(domain.l2(other).peek(10), nullptr) << "L2 " << other;
  }
  EXPECT_TRUE(domain.directory_consistent());
}

TEST(ManycoreCoherenceTest, NearestHolderTieBreakMatchesBroadcastAt128) {
  // Reader 65 (socket 8, L2s 64..71): holder 68 shares its socket and must
  // beat the globally lower-indexed holder 3.
  for (const bool use_broadcast : {false, true}) {
    MachineConfig cfg = l2_128_config();
    cfg.coherence_broadcast = use_broadcast;
    Topology topology(cfg);
    Interconnect interconnect(topology, cfg.interconnect);
    CoherenceDomain domain(cfg, topology, interconnect);
    MachineStats stats;
    domain.read(3, 10, stats);
    domain.read(68, 10, stats);
    stats = {};
    domain.read(65, 10, stats);
    EXPECT_EQ(stats.snoop_transactions, 1u) << "broadcast=" << use_broadcast;
    // Probes: 7 intra-socket peers + 120 cross-socket peers, plus one
    // intra-socket transfer from the nearest holder (68).
    EXPECT_EQ(stats.intra_socket_messages, 8u)
        << "broadcast=" << use_broadcast;
    EXPECT_EQ(stats.inter_socket_messages, 120u)
        << "broadcast=" << use_broadcast;
  }
}

// Differential: a deterministic sharing-heavy op mix over all 128 L2s must
// produce bit-identical MachineStats and cache contents under the
// multi-word directory and the reference broadcast walk.
TEST(ManycoreCoherenceTest, DirectoryMatchesBroadcastBitForBitAt128L2s) {
  MachineConfig dir_cfg = l2_128_config();
  MachineConfig bc_cfg = l2_128_config();
  bc_cfg.coherence_broadcast = true;

  Topology dir_topo(dir_cfg), bc_topo(bc_cfg);
  Interconnect dir_ic(dir_topo, dir_cfg.interconnect);
  Interconnect bc_ic(bc_topo, bc_cfg.interconnect);
  CoherenceDomain dir(dir_cfg, dir_topo, dir_ic);
  CoherenceDomain bc(bc_cfg, bc_topo, bc_ic);
  ASSERT_TRUE(dir.directory_enabled());
  ASSERT_FALSE(bc.directory_enabled());

  MachineStats dir_stats, bc_stats;
  std::uint64_t x = 0x243f6a8885a308d3ull;  // deterministic LCG stream
  for (int op = 0; op < 4000; ++op) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const L2Id me = static_cast<L2Id>((x >> 33) % 128);
    const LineAddr line = (x >> 17) % 97;  // small pool -> heavy sharing
    const bool is_write = ((x >> 13) & 3) == 0;
    Cycles dl, bl;
    if (is_write) {
      dl = dir.write(me, line, dir_stats);
      bl = bc.write(me, line, bc_stats);
    } else {
      dl = dir.read(me, line, dir_stats);
      bl = bc.read(me, line, bc_stats);
    }
    ASSERT_EQ(dl, bl) << "latency diverged at op " << op;
    if (op % 500 == 0) {
      ASSERT_EQ(dir_stats, bc_stats) << "stats diverged at op " << op;
      ASSERT_TRUE(dir.directory_consistent()) << "at op " << op;
    }
  }
  EXPECT_EQ(dir_stats, bc_stats);
  EXPECT_TRUE(dir.directory_consistent());
  // Cache contents identical, line by line, on every L2.
  for (L2Id id = 0; id < 128; ++id) {
    for (LineAddr line = 0; line < 97; ++line) {
      const CacheLine* a = dir.l2(id).peek(line);
      const CacheLine* b = bc.l2(id).peek(line);
      ASSERT_EQ(a == nullptr, b == nullptr) << "L2 " << id << " line " << line;
      if (a != nullptr) {
        ASSERT_EQ(a->state, b->state) << "L2 " << id << " line " << line;
      }
    }
  }
  EXPECT_GT(dir.directory_stats().holder_hits, 0u);
}

}  // namespace
}  // namespace tlbmap

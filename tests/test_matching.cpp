// Tests for the Edmonds blossom maximum-weight perfect matching, its exact
// DP oracle, and the greedy baseline.
#include <algorithm>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "mapping/exact_matching.hpp"
#include "mapping/greedy.hpp"
#include "mapping/matching.hpp"

namespace tlbmap {
namespace {

WeightMatrix random_matrix(int n, std::uint64_t seed, std::int64_t max_w) {
  std::mt19937_64 rng(seed);
  WeightMatrix w(static_cast<std::size_t>(n),
                 std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  std::uniform_int_distribution<std::int64_t> dist(0, max_w);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      w[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          w[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] =
              dist(rng);
    }
  }
  return w;
}

void expect_perfect(const MatchingResult& r, int n) {
  ASSERT_EQ(r.mate.size(), static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    ASSERT_GE(r.mate[static_cast<std::size_t>(v)], 0) << "vertex " << v;
    ASSERT_LT(r.mate[static_cast<std::size_t>(v)], n);
    ASSERT_NE(r.mate[static_cast<std::size_t>(v)], v);
    EXPECT_EQ(r.mate[static_cast<std::size_t>(
                  r.mate[static_cast<std::size_t>(v)])],
              v)
        << "mate not involutive at " << v;
  }
}

std::int64_t weight_of(const MatchingResult& r, const WeightMatrix& w) {
  std::int64_t total = 0;
  for (int v = 0; v < static_cast<int>(r.mate.size()); ++v) {
    if (r.mate[static_cast<std::size_t>(v)] > v) {
      total += w[static_cast<std::size_t>(v)]
                [static_cast<std::size_t>(r.mate[static_cast<std::size_t>(v)])];
    }
  }
  return total;
}

TEST(Matching, TwoVertices) {
  const WeightMatrix w = {{0, 7}, {7, 0}};
  const MatchingResult r = max_weight_perfect_matching(w);
  expect_perfect(r, 2);
  EXPECT_EQ(r.weight, 7);
  EXPECT_EQ(r.mate[0], 1);
}

TEST(Matching, FourVerticesPrefersHeavyPairs) {
  // Pairing (0,1)+(2,3) = 10+10 beats (0,2)+(1,3) = 1+1 etc.
  WeightMatrix w(4, std::vector<std::int64_t>(4, 1));
  for (int i = 0; i < 4; ++i) w[i][i] = 0;
  w[0][1] = w[1][0] = 10;
  w[2][3] = w[3][2] = 10;
  const MatchingResult r = max_weight_perfect_matching(w);
  expect_perfect(r, 4);
  EXPECT_EQ(r.weight, 20);
  EXPECT_EQ(r.mate[0], 1);
  EXPECT_EQ(r.mate[2], 3);
}

TEST(Matching, GreedyTrapAvoided) {
  // Greedy grabs (0,1) with weight 10 and is then forced into (2,3)=0 for a
  // total of 10; optimum is (0,2)+(1,3) = 9+9 = 18.
  WeightMatrix w(4, std::vector<std::int64_t>(4, 0));
  w[0][1] = w[1][0] = 10;
  w[0][2] = w[2][0] = 9;
  w[1][3] = w[3][1] = 9;
  const MatchingResult exact = max_weight_perfect_matching(w);
  const MatchingResult greedy = greedy_perfect_matching(w);
  EXPECT_EQ(exact.weight, 18);
  EXPECT_EQ(greedy.weight, 10);
}

TEST(Matching, AllZeroWeightsStillPerfect) {
  WeightMatrix w(8, std::vector<std::int64_t>(8, 0));
  const MatchingResult r = max_weight_perfect_matching(w);
  expect_perfect(r, 8);
  EXPECT_EQ(r.weight, 0);
}

TEST(Matching, RejectsOddSize) {
  WeightMatrix w(3, std::vector<std::int64_t>(3, 1));
  for (int i = 0; i < 3; ++i) w[i][i] = 0;
  EXPECT_THROW(max_weight_perfect_matching(w), std::invalid_argument);
}

TEST(OddMatching, LeavesCheapestVertexUnmatched) {
  // 0-1 communicate heavily; 2 is nearly silent. The odd-tolerant matcher
  // must pair 0-1 and leave 2 unmatched (mate -1).
  WeightMatrix w(3, std::vector<std::int64_t>(3, 0));
  w[0][1] = w[1][0] = 100;
  w[0][2] = w[2][0] = 1;
  w[1][2] = w[2][1] = 1;
  const MatchingResult r = max_weight_matching(w);
  ASSERT_EQ(r.mate.size(), 3u);
  EXPECT_EQ(r.mate[0], 1);
  EXPECT_EQ(r.mate[1], 0);
  EXPECT_EQ(r.mate[2], -1);
  EXPECT_EQ(r.weight, 100);

  const MatchingResult g = greedy_matching(w);
  EXPECT_EQ(g.mate[0], 1);
  EXPECT_EQ(g.mate[2], -1);
}

TEST(OddMatching, SingleVertexAndEvenDelegation) {
  const MatchingResult one = max_weight_matching({{0}});
  ASSERT_EQ(one.mate.size(), 1u);
  EXPECT_EQ(one.mate[0], -1);
  EXPECT_EQ(one.weight, 0);
  EXPECT_THROW(max_weight_matching({}), std::invalid_argument);
  EXPECT_THROW(greedy_matching({}), std::invalid_argument);

  // Even sizes delegate: identical result to the strict entry point.
  const WeightMatrix w = random_matrix(8, 3, 1000);
  const MatchingResult strict = max_weight_perfect_matching(w);
  const MatchingResult relaxed = max_weight_matching(w);
  EXPECT_EQ(strict.mate, relaxed.mate);
  EXPECT_EQ(strict.weight, relaxed.weight);
}

TEST(OddMatching, AllZeroOddMatrixNeverDies) {
  for (int n : {3, 5, 7, 9}) {
    WeightMatrix w(static_cast<std::size_t>(n),
                   std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
    const MatchingResult r = max_weight_matching(w);
    int unmatched = 0;
    for (int v = 0; v < n; ++v) {
      if (r.mate[static_cast<std::size_t>(v)] < 0) {
        ++unmatched;
      } else {
        EXPECT_EQ(r.mate[static_cast<std::size_t>(
                      r.mate[static_cast<std::size_t>(v)])],
                  v);
      }
    }
    EXPECT_EQ(unmatched, 1) << "n=" << n;
    EXPECT_EQ(r.weight, 0);
  }
}

TEST(Matching, RejectsAsymmetric) {
  WeightMatrix w(2, std::vector<std::int64_t>(2, 0));
  w[0][1] = 3;
  w[1][0] = 4;
  EXPECT_THROW(max_weight_perfect_matching(w), std::invalid_argument);
}

TEST(Matching, RejectsNegative) {
  WeightMatrix w(2, std::vector<std::int64_t>(2, 0));
  w[0][1] = w[1][0] = -1;
  EXPECT_THROW(max_weight_perfect_matching(w), std::invalid_argument);
}

TEST(Matching, LargeWeightsDoNotOverflow) {
  WeightMatrix w(8, std::vector<std::int64_t>(8, 0));
  for (int i = 0; i < 8; ++i) {
    for (int j = i + 1; j < 8; ++j) {
      w[i][j] = w[j][i] = (std::int64_t{1} << 42) + i + j;
    }
  }
  const MatchingResult r = max_weight_perfect_matching(w);
  expect_perfect(r, 8);
}

TEST(ExactMatching, MatchesKnownOptimum) {
  WeightMatrix w(4, std::vector<std::int64_t>(4, 0));
  w[0][1] = w[1][0] = 10;
  w[0][2] = w[2][0] = 9;
  w[1][3] = w[3][1] = 9;
  const MatchingResult r = exact_perfect_matching(w);
  EXPECT_EQ(r.weight, 18);
}

TEST(ExactMatching, RejectsTooLarge) {
  const int n = static_cast<int>(kExactMatchingMaxVertices) + 2;
  WeightMatrix w(static_cast<std::size_t>(n),
                 std::vector<std::int64_t>(static_cast<std::size_t>(n), 0));
  EXPECT_THROW(exact_perfect_matching(w), std::invalid_argument);
}

struct FuzzParam {
  int n;
  std::int64_t max_w;
};

class MatchingFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MatchingFuzz, BlossomEqualsExactDp) {
  const auto [n, max_w] = GetParam();
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    const WeightMatrix w = random_matrix(n, seed * 7919 + n, max_w);
    const MatchingResult blossom = max_weight_perfect_matching(w);
    const MatchingResult exact = exact_perfect_matching(w);
    expect_perfect(blossom, n);
    EXPECT_EQ(weight_of(blossom, w), blossom.weight);
    EXPECT_EQ(blossom.weight, exact.weight)
        << "n=" << n << " max_w=" << max_w << " seed=" << seed;
  }
}

TEST_P(MatchingFuzz, GreedyNeverBeatsBlossom) {
  const auto [n, max_w] = GetParam();
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    const WeightMatrix w = random_matrix(n, seed, max_w);
    EXPECT_LE(greedy_perfect_matching(w).weight,
              max_weight_perfect_matching(w).weight);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, MatchingFuzz,
    ::testing::Values(FuzzParam{2, 100}, FuzzParam{4, 100}, FuzzParam{6, 100},
                      FuzzParam{8, 100}, FuzzParam{10, 100},
                      FuzzParam{12, 100}, FuzzParam{14, 100},
                      FuzzParam{16, 50},
                      // Heavy ties: tiny weight range forces blossoms.
                      FuzzParam{8, 2}, FuzzParam{10, 1}, FuzzParam{12, 3},
                      // Large weights: exercises the offset arithmetic.
                      FuzzParam{8, 1'000'000'000}),
    [](const ::testing::TestParamInfo<FuzzParam>& info) {
      return "n" + std::to_string(info.param.n) + "_w" +
             std::to_string(info.param.max_w);
    });

TEST(Matching, PairsHelper) {
  WeightMatrix w(4, std::vector<std::int64_t>(4, 0));
  w[0][3] = w[3][0] = 5;
  w[1][2] = w[2][1] = 5;
  const auto pairs = max_weight_perfect_matching(w).pairs();
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<int, int>{0, 3}));
  EXPECT_EQ(pairs[1], (std::pair<int, int>{1, 2}));
}

}  // namespace
}  // namespace tlbmap

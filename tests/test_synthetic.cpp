// Tests for the synthetic workloads with exactly known sharing structure.
#include <set>

#include <gtest/gtest.h>

#include "npb/synthetic.hpp"

namespace tlbmap {
namespace {

constexpr int kPageShift = 12;

std::set<PageNum> pages_touched(const Workload& w, ThreadId t) {
  std::set<PageNum> pages;
  const auto stream = w.stream(t, 1);
  for (;;) {
    const TraceEvent ev = stream->next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) {
      pages.insert(ev.access.addr >> kPageShift);
    }
  }
  return pages;
}

std::size_t overlap(const std::set<PageNum>& a, const std::set<PageNum>& b) {
  std::size_t n = 0;
  for (const PageNum p : a) n += b.contains(p) ? 1 : 0;
  return n;
}

SyntheticSpec small_spec(SyntheticSpec::Pattern pattern) {
  SyntheticSpec spec;
  spec.pattern = pattern;
  spec.num_threads = 8;
  spec.shared_pages = 2;
  spec.private_pages = 8;
  spec.shared_accesses = 512;
  spec.private_accesses = 512;
  spec.iterations = 2;
  return spec;
}

TEST(Synthetic, PrivateHasNoSharing) {
  const auto w = make_synthetic(small_spec(SyntheticSpec::Pattern::kPrivate));
  std::vector<std::set<PageNum>> pages;
  for (int t = 0; t < 8; ++t) pages.push_back(pages_touched(*w, t));
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_EQ(overlap(pages[a], pages[b]), 0u) << a << "," << b;
    }
  }
}

TEST(Synthetic, PairsShareOnlyWithPartner) {
  const auto w = make_synthetic(small_spec(SyntheticSpec::Pattern::kPairs));
  std::vector<std::set<PageNum>> pages;
  for (int t = 0; t < 8; ++t) pages.push_back(pages_touched(*w, t));
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      const bool partners = (a / 2 == b / 2);
      if (partners) {
        EXPECT_GT(overlap(pages[a], pages[b]), 0u) << a << "," << b;
      } else {
        EXPECT_EQ(overlap(pages[a], pages[b]), 0u) << a << "," << b;
      }
    }
  }
}

TEST(Synthetic, RingSharesWithBothNeighboursIncludingWrap) {
  const auto w = make_synthetic(small_spec(SyntheticSpec::Pattern::kRing));
  std::vector<std::set<PageNum>> pages;
  for (int t = 0; t < 8; ++t) pages.push_back(pages_touched(*w, t));
  for (int t = 0; t < 8; ++t) {
    EXPECT_GT(overlap(pages[t], pages[(t + 1) % 8]), 0u) << t;
    EXPECT_EQ(overlap(pages[t], pages[(t + 2) % 8]), 0u) << t;
  }
}

TEST(Synthetic, AllToAllSharesGlobally) {
  const auto w =
      make_synthetic(small_spec(SyntheticSpec::Pattern::kAllToAll));
  std::vector<std::set<PageNum>> pages;
  for (int t = 0; t < 8; ++t) pages.push_back(pages_touched(*w, t));
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(overlap(pages[a], pages[b]), 0u) << a << "," << b;
    }
  }
}

TEST(Synthetic, PhaseShiftChangesPartners) {
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kPhaseShift);
  spec.iterations = 4;
  const auto w = make_synthetic(spec);
  // Thread 0's stream touches the (0,1) edge pages in the first half and
  // the (7,0) edge pages in the second half: overall it shares with both
  // 1 and 7 but not with 3.
  std::vector<std::set<PageNum>> pages;
  for (int t = 0; t < 8; ++t) pages.push_back(pages_touched(*w, t));
  EXPECT_GT(overlap(pages[0], pages[1]), 0u);
  EXPECT_GT(overlap(pages[0], pages[7]), 0u);
  EXPECT_EQ(overlap(pages[0], pages[3]), 0u);
  EXPECT_GT(overlap(pages[1], pages[2]), 0u);  // shifted pairing
}

TEST(Synthetic, BarriersPresent) {
  const auto w = make_synthetic(small_spec(SyntheticSpec::Pattern::kPairs));
  const auto stream = w->stream(0, 1);
  int barriers = 0;
  for (;;) {
    const TraceEvent ev = stream->next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(barriers, 2);  // one per iteration
}

TEST(Synthetic, RejectsTooFewThreads) {
  SyntheticSpec spec;
  spec.num_threads = 1;
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
}

TEST(Synthetic, NameReflectsPattern) {
  EXPECT_EQ(make_synthetic(small_spec(SyntheticSpec::Pattern::kRing))
                ->description(),
            "synthetic ring");
  EXPECT_EQ(make_synthetic(small_spec(SyntheticSpec::Pattern::kPairs))
                ->name(),
            "synthetic");
}

// ---------------------------------------------------------------------------
// Phase-churn workloads (PR 10): schedule-driven pair shifts.

TEST(Synthetic, ScheduledFollowsItsShiftSchedule) {
  // A one-entry schedule is just kPairs at that shift: shift 1 pairs
  // (1,2)(3,4)...(n-1,0), so thread 0 no longer shares with thread 1.
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kScheduled);
  spec.churn_phase_iters = 1;
  spec.shift_schedule = {1};
  const auto w = make_synthetic(spec);
  EXPECT_GT(overlap(pages_touched(*w, 1), pages_touched(*w, 2)), 0u);
  EXPECT_EQ(overlap(pages_touched(*w, 0), pages_touched(*w, 1)), 0u);
}

TEST(Synthetic, ScheduledMultiPhaseVisitsEveryPartnerSet) {
  // Schedule {0, 1}: across the whole stream thread 1 shares with both its
  // shift-0 partner (thread 0) and its shift-1 partner (thread 2).
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kScheduled);
  spec.churn_phase_iters = 1;
  spec.shift_schedule = {0, 1};
  const auto w = make_synthetic(spec);
  EXPECT_GT(overlap(pages_touched(*w, 0), pages_touched(*w, 1)), 0u);
  EXPECT_GT(overlap(pages_touched(*w, 1), pages_touched(*w, 2)), 0u);

  // One barrier-terminated iteration per schedule entry per phase iter.
  const auto stream = w->stream(0, 1);
  int barriers = 0;
  for (;;) {
    const TraceEvent ev = stream->next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(barriers, 2);
}

TEST(Synthetic, ScheduledRejectsEmptySchedule) {
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kScheduled);
  spec.shift_schedule.clear();
  EXPECT_THROW(make_synthetic(spec), std::invalid_argument);
}

TEST(Synthetic, ChurnScheduleIsSeededAndBounded) {
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kPhaseChurn);
  spec.churn_phases = 16;
  spec.churn_seed = 7;
  const auto schedule = churn_schedule(spec);
  EXPECT_EQ(schedule.size(), 16u);
  for (const int shift : schedule) {
    EXPECT_GE(shift, 0);
    EXPECT_LT(shift, spec.num_threads);
  }
  // Deterministic per seed, different across seeds.
  EXPECT_EQ(schedule, churn_schedule(spec));
  SyntheticSpec other = spec;
  other.churn_seed = 8;
  EXPECT_NE(schedule, churn_schedule(other));
}

TEST(Synthetic, PhaseChurnRunsItsSeededSchedule) {
  SyntheticSpec spec = small_spec(SyntheticSpec::Pattern::kPhaseChurn);
  spec.churn_phases = 3;
  spec.churn_phase_iters = 2;
  const auto w = make_synthetic(spec);
  const auto stream = w->stream(0, 1);
  int barriers = 0;
  for (;;) {
    const TraceEvent ev = stream->next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kBarrier) ++barriers;
  }
  EXPECT_EQ(barriers, 6);  // churn_phases * churn_phase_iters
}

}  // namespace
}  // namespace tlbmap

// Tests for the NUMA memory model: page homing policies, local vs remote
// latency, and the paper's prediction that mapping matters more on NUMA.
#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "npb/synthetic.hpp"
#include "sim/hierarchy.hpp"

namespace tlbmap {
namespace {

constexpr VirtAddr kPage = 4096;

MachineConfig numa_harpertown() { return MachineConfig::numa_harpertown(); }

TEST(Numa, FirstTouchHomesOnToucherSocket) {
  MemoryHierarchy hier(numa_harpertown());
  MachineStats stats;
  hier.access(0, 0, AccessType::kRead, stats);          // core 0: socket 0
  hier.access(5, kPage, AccessType::kRead, stats);      // core 5: socket 1
  EXPECT_EQ(hier.page_table().home_of(0), 0);
  EXPECT_EQ(hier.page_table().home_of(1), 1);
}

TEST(Numa, FirstTouchStable) {
  MemoryHierarchy hier(numa_harpertown());
  MachineStats stats;
  hier.access(0, 0, AccessType::kRead, stats);
  hier.access(7, 0, AccessType::kRead, stats);  // later remote touch
  EXPECT_EQ(hier.page_table().home_of(0), 0);   // home unchanged
}

TEST(Numa, InterleavePolicyStripesPages) {
  MachineConfig c = numa_harpertown();
  c.numa_policy = NumaPolicy::kInterleave;
  MemoryHierarchy hier(c);
  MachineStats stats;
  for (PageNum p = 0; p < 4; ++p) {
    hier.access(0, p * kPage, AccessType::kRead, stats);
  }
  EXPECT_EQ(hier.page_table().home_of(0), 0);
  EXPECT_EQ(hier.page_table().home_of(1), 1);
  EXPECT_EQ(hier.page_table().home_of(2), 0);
  EXPECT_EQ(hier.page_table().home_of(3), 1);
}

TEST(Numa, RemoteFetchSlowerThanLocal) {
  MemoryHierarchy hier(numa_harpertown());
  MachineStats stats;
  // Core 7 (socket 1) homes page 0 there; core 0 must then pull page 1
  // locally and page 0 remotely — with no cached copy in between.
  hier.access(7, 0, AccessType::kRead, stats);
  hier.flush_caches();  // drop the cached line; home survives in page table
  const auto local = hier.access(0, kPage, AccessType::kRead, stats);
  const auto remote = hier.access(0, 2 * 64, AccessType::kRead, stats);
  // remote accesses a different line of page 0 so it misses cache again.
  EXPECT_GT(remote.latency, local.latency);
  EXPECT_EQ(stats.memory_fetches_remote, 1u);
  EXPECT_GE(stats.memory_fetches_local, 1u);
}

TEST(Numa, UmaCountsEverythingLocal) {
  MemoryHierarchy hier(MachineConfig::harpertown());
  MachineStats stats;
  hier.access(7, 0, AccessType::kRead, stats);
  hier.access(0, kPage, AccessType::kRead, stats);
  EXPECT_EQ(stats.memory_fetches_remote, 0u);
  EXPECT_EQ(stats.memory_fetches, stats.memory_fetches_local);
}

TEST(Numa, FetchSplitSumsToTotal) {
  MachineConfig c = numa_harpertown();
  c.numa_policy = NumaPolicy::kInterleave;
  MemoryHierarchy hier(c);
  MachineStats stats;
  for (int i = 0; i < 200; ++i) {
    hier.access(static_cast<CoreId>(i % 8),
                static_cast<VirtAddr>(i) * 64 * 7, AccessType::kRead, stats);
  }
  EXPECT_EQ(stats.memory_fetches_local + stats.memory_fetches_remote,
            stats.memory_fetches);
  EXPECT_GT(stats.memory_fetches_remote, 0u);
}

TEST(Numa, MappingGainsLargerThanUma) {
  // The paper's closing claim: "Expected performance improvements in NUMA
  // architectures are higher." Compare good vs bad placement of a pairs
  // workload on the same machine with NUMA off and on.
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 96;  // big enough to keep DRAM traffic flowing
  spec.shared_pages = 8;
  spec.iterations = 4;

  const Mapping good = {0, 1, 2, 3, 4, 5, 6, 7};
  const Mapping bad = {0, 4, 1, 5, 2, 6, 3, 7};  // partners split

  auto gain_on = [&](bool numa) {
    const MachineConfig c =
        numa ? MachineConfig::numa_harpertown() : MachineConfig::harpertown();
    Pipeline pipe(c);
    const auto workload = make_synthetic(spec);
    const double good_t = static_cast<double>(
        pipe.evaluate(*workload, good, 3).execution_cycles);
    const double bad_t = static_cast<double>(
        pipe.evaluate(*workload, bad, 3).execution_cycles);
    return bad_t / good_t;
  };
  const double uma_gain = gain_on(false);
  const double numa_gain = gain_on(true);
  EXPECT_GT(uma_gain, 1.0);
  EXPECT_GT(numa_gain, uma_gain);
}

TEST(Numa, FirstTouchBeatsInterleaveForPinnedThreads) {
  // Threads that stay put and work on private data are best served by
  // first-touch homing; interleave sends half their DRAM traffic remote.
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPrivate;
  spec.private_pages = 512;  // DRAM-heavy: exceeds L2 per-pair share
  spec.iterations = 2;
  auto run_with = [&](NumaPolicy policy) {
    MachineConfig c = MachineConfig::numa_harpertown();
    c.numa_policy = policy;
    Pipeline pipe(c);
    const auto workload = make_synthetic(spec);
    return pipe.evaluate(*workload, identity_mapping(8), 3);
  };
  const MachineStats first_touch = run_with(NumaPolicy::kFirstTouch);
  const MachineStats interleave = run_with(NumaPolicy::kInterleave);
  EXPECT_EQ(first_touch.memory_fetches_remote, 0u);
  EXPECT_GT(interleave.memory_fetches_remote, 0u);
  EXPECT_LT(first_touch.execution_cycles, interleave.execution_cycles);
}

}  // namespace
}  // namespace tlbmap

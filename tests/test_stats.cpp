// Tests for statistics helpers: summaries, rates, accumulation.
#include <cstring>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace tlbmap {
namespace {

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryOfSingle) {
  const std::vector<double> v = {42.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryMeanAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic data set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, RelStddev) {
  const std::vector<double> v = {9.0, 11.0};
  const Summary s = summarize(v);
  EXPECT_NEAR(s.rel_stddev(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(Stats, RelStddevZeroMeanSafe) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_EQ(summarize(v).rel_stddev(), 0.0);
}

TEST(Stats, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(static_cast<Cycles>(kClockHz)), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(0), 0.0);
}

TEST(Stats, PerSecond) {
  EXPECT_DOUBLE_EQ(per_second(100, static_cast<Cycles>(kClockHz)), 100.0);
  EXPECT_EQ(per_second(100, 0), 0.0);
}

TEST(Stats, MachineStatsAccumulate) {
  MachineStats a, b;
  a.accesses = 10;
  a.invalidations = 3;
  a.execution_cycles = 100;
  b.accesses = 5;
  b.invalidations = 4;
  b.execution_cycles = 50;
  a += b;
  EXPECT_EQ(a.accesses, 15u);
  EXPECT_EQ(a.invalidations, 7u);
  EXPECT_EQ(a.execution_cycles, 150u);
}

// MachineStats must stay a plain bag of uint64 counters for the pattern
// trick below (and the cache serializer) to work.
static_assert(std::is_trivially_copyable_v<MachineStats>);
static_assert(sizeof(MachineStats) % sizeof(std::uint64_t) == 0);

// Regression guard for operator+=: fill every byte of two structs with
// 0x01 (so every counter holds 0x0101...01) and add them; each summed field
// must then hold exactly twice the pattern. A counter added to the struct
// but forgotten in operator+= keeps the original pattern and fails here —
// without this file ever naming the new field.
TEST(Stats, AccumulateSumsEveryField) {
  // static_cast<void*> silences -Wclass-memaccess: the struct is trivially
  // copyable (asserted above), which is all the pattern trick needs.
  MachineStats a, b;
  std::memset(static_cast<void*>(&a), 0x01, sizeof(a));
  std::memset(static_cast<void*>(&b), 0x01, sizeof(b));
  a += b;
  MachineStats expected;
  std::memset(static_cast<void*>(&expected), 0x02, sizeof(expected));
  EXPECT_EQ(std::memcmp(&a, &expected, sizeof(a)), 0)
      << "a MachineStats field is not summed by operator+=";
  MachineStats pattern;
  std::memset(static_cast<void*>(&pattern), 0x01, sizeof(pattern));
  EXPECT_EQ(std::memcmp(&b, &pattern, sizeof(b)), 0)
      << "operator+= must not modify its argument";
}

TEST(Stats, PublishStatsMirrorsCountersIntoRegistry) {
  MachineStats s;
  s.accesses = 12;
  s.tlb_misses = 3;
  s.invalidations = 7;
  obs::MetricsRegistry registry;
  const obs::Labels labels = {{"phase", "evaluate"}};
  publish_stats(registry, s, labels);
  EXPECT_EQ(registry.counter_value("sim.accesses", labels), 12u);
  EXPECT_EQ(registry.counter_value("sim.tlb_misses", labels), 3u);
  EXPECT_EQ(registry.counter_value("sim.invalidations", labels), 7u);
  // Counters accumulate across runs with the same labels.
  publish_stats(registry, s, labels);
  EXPECT_EQ(registry.counter_value("sim.accesses", labels), 24u);
}

TEST(Stats, TlbMissRate) {
  MachineStats s;
  EXPECT_EQ(s.tlb_miss_rate(), 0.0);
  s.accesses = 1000;
  s.tlb_misses = 5;
  EXPECT_DOUBLE_EQ(s.tlb_miss_rate(), 0.005);
}

TEST(Stats, OverheadFraction) {
  MachineStats s;
  EXPECT_EQ(s.overhead_fraction(), 0.0);
  s.execution_cycles = 200;
  s.detection_overhead_cycles = 10;
  EXPECT_DOUBLE_EQ(s.overhead_fraction(), 0.05);
}

}  // namespace
}  // namespace tlbmap

// Tests for statistics helpers: summaries, rates, accumulation.
#include <vector>

#include <gtest/gtest.h>

#include "sim/stats.hpp"

namespace tlbmap {
namespace {

TEST(Stats, SummaryOfEmpty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryOfSingle) {
  const std::vector<double> v = {42.0};
  const Summary s = summarize(v);
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 42.0);
  EXPECT_EQ(s.stddev, 0.0);
}

TEST(Stats, SummaryMeanAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  const Summary s = summarize(v);
  EXPECT_DOUBLE_EQ(s.mean, 5.0);
  // Sample stddev of this classic data set: sqrt(32/7).
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Stats, RelStddev) {
  const std::vector<double> v = {9.0, 11.0};
  const Summary s = summarize(v);
  EXPECT_NEAR(s.rel_stddev(), std::sqrt(2.0) / 10.0, 1e-12);
}

TEST(Stats, RelStddevZeroMeanSafe) {
  const std::vector<double> v = {0.0, 0.0};
  EXPECT_EQ(summarize(v).rel_stddev(), 0.0);
}

TEST(Stats, CyclesToSeconds) {
  EXPECT_DOUBLE_EQ(cycles_to_seconds(static_cast<Cycles>(kClockHz)), 1.0);
  EXPECT_DOUBLE_EQ(cycles_to_seconds(0), 0.0);
}

TEST(Stats, PerSecond) {
  EXPECT_DOUBLE_EQ(per_second(100, static_cast<Cycles>(kClockHz)), 100.0);
  EXPECT_EQ(per_second(100, 0), 0.0);
}

TEST(Stats, MachineStatsAccumulate) {
  MachineStats a, b;
  a.accesses = 10;
  a.invalidations = 3;
  a.execution_cycles = 100;
  b.accesses = 5;
  b.invalidations = 4;
  b.execution_cycles = 50;
  a += b;
  EXPECT_EQ(a.accesses, 15u);
  EXPECT_EQ(a.invalidations, 7u);
  EXPECT_EQ(a.execution_cycles, 150u);
}

TEST(Stats, TlbMissRate) {
  MachineStats s;
  EXPECT_EQ(s.tlb_miss_rate(), 0.0);
  s.accesses = 1000;
  s.tlb_misses = 5;
  EXPECT_DOUBLE_EQ(s.tlb_miss_rate(), 0.005);
}

TEST(Stats, OverheadFraction) {
  MachineStats s;
  EXPECT_EQ(s.overhead_fraction(), 0.0);
  s.execution_cycles = 200;
  s.detection_overhead_cycles = 10;
  EXPECT_DOUBLE_EQ(s.overhead_fraction(), 0.05);
}

}  // namespace
}  // namespace tlbmap

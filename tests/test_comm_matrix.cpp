// Tests for the communication matrix and its accuracy metrics.
#include <limits>

#include <gtest/gtest.h>

#include "detect/comm_matrix.hpp"

namespace tlbmap {
namespace {

TEST(CommMatrix, StartsZero) {
  CommMatrix m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.max(), 0u);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_EQ(m.at(a, b), 0u);
  }
}

TEST(CommMatrix, AddIsSymmetric) {
  CommMatrix m(4);
  m.add(1, 3, 5);
  EXPECT_EQ(m.at(1, 3), 5u);
  EXPECT_EQ(m.at(3, 1), 5u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrix, SelfCommunicationIgnored) {
  CommMatrix m(4);
  m.add(2, 2, 100);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.at(2, 2), 0u);
}

TEST(CommMatrix, AddAccumulates) {
  CommMatrix m(4);
  m.add(0, 1);
  m.add(1, 0, 2);
  EXPECT_EQ(m.at(0, 1), 3u);
}

TEST(CommMatrix, BoundsChecked) {
  CommMatrix m(4);
  EXPECT_THROW(m.add(0, 4), std::out_of_range);
  EXPECT_THROW(m.add(-1, 2), std::out_of_range);
  EXPECT_THROW(m.at(4, 0), std::out_of_range);
  EXPECT_THROW(CommMatrix(0), std::invalid_argument);
}

TEST(CommMatrix, MaxAndNormalized) {
  CommMatrix m(3);
  m.add(0, 1, 10);
  m.add(1, 2, 4);
  EXPECT_EQ(m.max(), 10u);
  EXPECT_DOUBLE_EQ(m.normalized(1, 2), 0.4);
  EXPECT_DOUBLE_EQ(m.normalized(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.normalized(0, 2), 0.0);
}

TEST(CommMatrix, NormalizedAllZeroSafe) {
  CommMatrix m(3);
  EXPECT_EQ(m.normalized(0, 1), 0.0);
}

TEST(CommMatrix, PlusEquals) {
  CommMatrix a(3), b(3);
  a.add(0, 1, 2);
  b.add(0, 1, 3);
  b.add(1, 2, 7);
  a += b;
  EXPECT_EQ(a.at(0, 1), 5u);
  EXPECT_EQ(a.at(1, 2), 7u);
  CommMatrix wrong(4);
  EXPECT_THROW(a += wrong, std::invalid_argument);
}

TEST(CommMatrix, Decay) {
  CommMatrix m(3);
  m.add(0, 1, 100);
  m.decay(0.5);
  EXPECT_EQ(m.at(0, 1), 50u);
  m.decay(0.0);
  EXPECT_EQ(m.at(0, 1), 0u);
}

TEST(CommMatrix, DecayRoundsToNearest) {
  CommMatrix m(3);
  m.add(0, 1, 3);
  m.add(1, 2, 1);
  m.decay(0.6);
  // 3 * 0.6 = 1.8 rounds to 2 and 1 * 0.6 = 0.6 rounds to 1 — truncation
  // would bias both down and erase the small-but-real edge in one epoch.
  EXPECT_EQ(m.at(0, 1), 2u);
  EXPECT_EQ(m.at(1, 2), 1u);
  EXPECT_EQ(m.max(), 2u);
}

TEST(CommMatrix, DecayTiesRoundTowardZero) {
  // At the default ageing factor 0.5, odd cells land exactly on .5: ties
  // go toward zero so every nonzero cell strictly shrinks (rounding ties
  // up would keep a weight-1 edge alive forever).
  CommMatrix m(3);
  m.add(0, 1, 5);
  m.add(1, 2, 1);
  m.decay(0.5);
  EXPECT_EQ(m.at(0, 1), 2u);
  EXPECT_EQ(m.at(1, 2), 0u);
}

TEST(CommMatrix, CounterSaturatesAtMax) {
  // A wrap at 2^64 would invert the hottest edge into the coldest; the
  // counters saturate instead (DESIGN.md Sec. 11).
  CommMatrix m(3);
  m.add(0, 1, CommMatrix::kCounterMax - 5);
  m.add(0, 1, 100);  // would wrap without saturation
  EXPECT_EQ(m.at(0, 1), CommMatrix::kCounterMax);
  m.add(0, 1, 1);  // already saturated: stays pinned
  EXPECT_EQ(m.at(0, 1), CommMatrix::kCounterMax);
  EXPECT_EQ(m.max(), CommMatrix::kCounterMax);

  // operator+= saturates too.
  CommMatrix a(3), b(3);
  a.add(0, 1, CommMatrix::kCounterMax - 1);
  b.add(0, 1, 7);
  a += b;
  EXPECT_EQ(a.at(0, 1), CommMatrix::kCounterMax);

  // Decay of a saturated cell stays in range (no double->u64 overflow UB).
  m.decay(1.0);
  EXPECT_EQ(m.at(0, 1), CommMatrix::kCounterMax);
  m.decay(0.5);
  EXPECT_LT(m.at(0, 1), CommMatrix::kCounterMax);
}

TEST(CommMatrix, ShardedAddSaturates) {
  std::vector<CommMatrixShard> shards(1, CommMatrixShard(3));
  shards[0].add(0, 1, CommMatrix::kCounterMax - 1);
  shards[0].add(0, 1, 50);
  CommMatrix m(3);
  m.merge(shards);
  EXPECT_EQ(m.at(0, 1), CommMatrix::kCounterMax);
  // Merging a saturated shard into a nonzero matrix saturates again.
  std::vector<CommMatrixShard> more(1, CommMatrixShard(3));
  more[0].add(0, 1, 3);
  m.merge(more);
  EXPECT_EQ(m.at(0, 1), CommMatrix::kCounterMax);
}

TEST(CommMatrix, DecayRejectsNonFiniteFactor) {
  CommMatrix m(3);
  m.add(0, 1, 100);
  m.decay(std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(m.at(0, 1), 0u);  // NaN treated as 0: reset, never poisoned
  m.add(0, 1, 100);
  m.decay(-2.0);
  EXPECT_EQ(m.at(0, 1), 0u);
}

TEST(CommMatrixHealth, ClassifiesDegenerateShapes) {
  CommMatrix empty(4);
  EXPECT_TRUE(empty.health().empty);
  EXPECT_TRUE(empty.health().degenerate());
  EXPECT_STREQ(empty.health().describe(), "empty");

  CommMatrix uniform(4);
  for (int a = 0; a < 4; ++a) {
    for (int b = a + 1; b < 4; ++b) uniform.add(a, b, 9);
  }
  EXPECT_TRUE(uniform.health().uniform);
  EXPECT_TRUE(uniform.health().degenerate());
  EXPECT_STREQ(uniform.health().describe(), "uniform");

  CommMatrix ok(4);
  ok.add(0, 1, 10);
  ok.add(2, 3, 4);
  EXPECT_FALSE(ok.health().degenerate());
  EXPECT_STREQ(ok.health().describe(), "ok");

  CommMatrix saturated(3);
  saturated.add(0, 1, CommMatrix::kCounterMax);
  saturated.add(1, 2, 5);
  EXPECT_TRUE(saturated.health().saturated);
  EXPECT_FALSE(saturated.health().degenerate());  // still mappable signal
  EXPECT_STREQ(saturated.health().describe(), "saturated");

  // A 1x1 matrix has no pairs at all: empty, never uniform.
  CommMatrix one(1);
  EXPECT_TRUE(one.health().empty);
  EXPECT_FALSE(one.health().uniform);
}

TEST(CommMatrix, MaxTracksAllMutations) {
  CommMatrix m(3);
  m.add(0, 1, 10);
  m.add(1, 2, 4);
  EXPECT_EQ(m.max(), 10u);
  m.decay(0.25);  // 10 -> 2 (2.5 ties toward zero), 4 -> 1
  EXPECT_EQ(m.max(), 2u);
  CommMatrix other(3);
  other.add(1, 2, 20);
  m += other;
  EXPECT_EQ(m.max(), 21u);
  std::vector<CommMatrixShard> shards;
  shards.emplace_back(3);
  shards.back().add(0, 2, 50);
  m.merge(shards);
  EXPECT_EQ(m.max(), 50u);
  EXPECT_DOUBLE_EQ(m.normalized(0, 2), 1.0);
}

// ------------------------------------------------------------------ shards

TEST(CommMatrixShard, AddAtAndClear) {
  CommMatrixShard s(4);
  s.add(1, 3, 5);
  s.add(3, 1, 2);  // either order hits the same cell
  s.add(2, 2, 9);  // self-communication ignored
  EXPECT_EQ(s.at(1, 3), 7u);
  EXPECT_EQ(s.at(3, 1), 7u);
  EXPECT_EQ(s.at(2, 2), 0u);
  EXPECT_EQ(s.total(), 7u);
  s.clear();
  EXPECT_EQ(s.total(), 0u);
}

TEST(CommMatrixShard, BoundsChecked) {
  CommMatrixShard s(4);
  EXPECT_THROW(s.add(0, 4), std::out_of_range);
  EXPECT_THROW(s.at(-1, 2), std::out_of_range);
  EXPECT_THROW(CommMatrixShard(0), std::invalid_argument);
}

TEST(CommMatrix, MergeFoldsShardsSymmetrically) {
  CommMatrix m(4);
  m.add(0, 1, 1);
  std::vector<CommMatrixShard> shards;
  shards.emplace_back(4);
  shards.emplace_back(4);
  shards[0].add(0, 1, 2);
  shards[0].add(2, 3, 4);
  shards[1].add(1, 0, 3);
  m.merge(shards);
  EXPECT_EQ(m.at(0, 1), 6u);
  EXPECT_EQ(m.at(1, 0), 6u);
  EXPECT_EQ(m.at(2, 3), 4u);
  EXPECT_EQ(m.total(), 10u);
  std::vector<CommMatrixShard> wrong;
  wrong.emplace_back(5);
  EXPECT_THROW(m.merge(wrong), std::invalid_argument);
}

TEST(CommMatrix, MergeIsIndependentOfShardDistribution) {
  // The same adds dealt across 1, 2 or 5 shards in different orders must
  // produce the identical matrix — this is what lets a sharded producer
  // claim bit-identity with a serial one.
  struct Add {
    ThreadId a, b;
    std::uint64_t amount;
  };
  const std::vector<Add> adds = {{0, 1, 3}, {2, 5, 7}, {1, 0, 2}, {4, 5, 1},
                                 {3, 2, 9}, {0, 5, 4}, {1, 2, 6}, {5, 2, 8}};
  auto merged_with = [&](int num_shards, bool reverse) {
    CommMatrix m(6);
    std::vector<CommMatrixShard> shards;
    for (int s = 0; s < num_shards; ++s) shards.emplace_back(6);
    for (std::size_t i = 0; i < adds.size(); ++i) {
      const Add& add = reverse ? adds[adds.size() - 1 - i] : adds[i];
      shards[i % static_cast<std::size_t>(num_shards)].add(add.a, add.b,
                                                           add.amount);
    }
    m.merge(shards);
    return m;
  };
  const CommMatrix reference = merged_with(1, false);
  for (const int num_shards : {2, 5}) {
    for (const bool reverse : {false, true}) {
      const CommMatrix other = merged_with(num_shards, reverse);
      for (ThreadId a = 0; a < 6; ++a) {
        for (ThreadId b = 0; b < 6; ++b) {
          ASSERT_EQ(other.at(a, b), reference.at(a, b))
              << num_shards << " shards, reverse=" << reverse << ", cell "
              << a << "," << b;
        }
      }
      EXPECT_EQ(other.max(), reference.max());
    }
  }
}

TEST(CommMatrix, PairsByWeightOrdered) {
  CommMatrix m(4);
  m.add(0, 1, 1);
  m.add(2, 3, 9);
  m.add(0, 3, 5);
  const auto pairs = m.pairs_by_weight();
  ASSERT_EQ(pairs.size(), 6u);  // all pairs of 4 threads
  EXPECT_EQ(pairs[0], (std::pair<ThreadId, ThreadId>{2, 3}));
  EXPECT_EQ(pairs[1], (std::pair<ThreadId, ThreadId>{0, 3}));
  EXPECT_EQ(pairs[2], (std::pair<ThreadId, ThreadId>{0, 1}));
}

TEST(CommMatrix, HeatmapShapeAndShading) {
  CommMatrix m(3);
  m.add(0, 1, 100);
  m.add(1, 2, 1);
  const std::string art = m.heatmap();
  // 1 header + 3 rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  // The strongest pair renders with the darkest glyph.
  EXPECT_NE(art.find('@'), std::string::npos);
  // Diagonal stays blank: row for thread 0 has a blank at column 0.
  EXPECT_EQ(art.find('!'), std::string::npos);
}

TEST(CommMatrix, CosineIdenticalIsOne) {
  CommMatrix a(4);
  a.add(0, 1, 3);
  a.add(2, 3, 4);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(CommMatrix, CosineScaleInvariant) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 3);
  a.add(2, 3, 4);
  b.add(0, 1, 30);
  b.add(2, 3, 40);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CommMatrix, CosineOrthogonalIsZero) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 5);
  b.add(2, 3, 5);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, b), 0.0, 1e-12);
}

TEST(CommMatrix, CosineEmptySafe) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 5);
  EXPECT_EQ(CommMatrix::cosine_similarity(a, b), 0.0);
  EXPECT_EQ(CommMatrix::cosine_similarity(b, b), 0.0);
}

TEST(CommMatrix, RankCorrelationPerfect) {
  CommMatrix a(4), b(4);
  int w = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      a.add(i, j, static_cast<std::uint64_t>(w));
      b.add(i, j, static_cast<std::uint64_t>(w * 10));
      ++w;
    }
  }
  EXPECT_NEAR(CommMatrix::rank_correlation(a, b), 1.0, 1e-12);
}

TEST(CommMatrix, RankCorrelationInverted) {
  CommMatrix a(4), b(4);
  int w = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      a.add(i, j, static_cast<std::uint64_t>(w));
      b.add(i, j, static_cast<std::uint64_t>(100 - w));
      ++w;
    }
  }
  EXPECT_NEAR(CommMatrix::rank_correlation(a, b), -1.0, 1e-12);
}

TEST(CommMatrix, SizeMismatchThrows) {
  CommMatrix a(4), b(6);
  EXPECT_THROW(CommMatrix::cosine_similarity(a, b), std::invalid_argument);
  EXPECT_THROW(CommMatrix::rank_correlation(a, b), std::invalid_argument);
}

// Manycore accumulator audit (N >= 256): per-cell counters saturate, but
// total() sums ~N^2/2 of them — at 256 threads, 32640 near-max cells would
// wrap a naive u64 sum ~16k times and could land anywhere, including on a
// tiny value that misreports a white-hot matrix as idle. total() must
// saturate instead, in both the merged matrix and the per-thread shards.
TEST(CommMatrix, TotalSaturatesAtManycoreScale) {
  const int n = 256;
  CommMatrix m(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      m.add(a, b, CommMatrix::kCounterMax - 3);
    }
  }
  EXPECT_EQ(m.total(), CommMatrix::kCounterMax);
  EXPECT_EQ(m.max(), CommMatrix::kCounterMax - 3);

  CommMatrixShard shard(n);
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      shard.add(a, b, CommMatrix::kCounterMax - 3);
    }
  }
  EXPECT_EQ(shard.total(), CommMatrix::kCounterMax);
}

// Below the saturation point the sum stays exact — saturation is a ceiling,
// not a rescale.
TEST(CommMatrix, TotalExactWhenFarFromMax) {
  const int n = 256;
  CommMatrix m(n);
  std::uint64_t expected = 0;
  for (int a = 0; a < n; ++a) {
    for (int b = a + 1; b < n; ++b) {
      const std::uint64_t w = static_cast<std::uint64_t>(a + b + 1);
      m.add(a, b, w);
      expected += w;
    }
  }
  EXPECT_EQ(m.total(), expected);
}

}  // namespace
}  // namespace tlbmap

// Tests for the communication matrix and its accuracy metrics.
#include <gtest/gtest.h>

#include "detect/comm_matrix.hpp"

namespace tlbmap {
namespace {

TEST(CommMatrix, StartsZero) {
  CommMatrix m(4);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.max(), 0u);
  for (int a = 0; a < 4; ++a) {
    for (int b = 0; b < 4; ++b) EXPECT_EQ(m.at(a, b), 0u);
  }
}

TEST(CommMatrix, AddIsSymmetric) {
  CommMatrix m(4);
  m.add(1, 3, 5);
  EXPECT_EQ(m.at(1, 3), 5u);
  EXPECT_EQ(m.at(3, 1), 5u);
  EXPECT_EQ(m.total(), 5u);
}

TEST(CommMatrix, SelfCommunicationIgnored) {
  CommMatrix m(4);
  m.add(2, 2, 100);
  EXPECT_EQ(m.total(), 0u);
  EXPECT_EQ(m.at(2, 2), 0u);
}

TEST(CommMatrix, AddAccumulates) {
  CommMatrix m(4);
  m.add(0, 1);
  m.add(1, 0, 2);
  EXPECT_EQ(m.at(0, 1), 3u);
}

TEST(CommMatrix, BoundsChecked) {
  CommMatrix m(4);
  EXPECT_THROW(m.add(0, 4), std::out_of_range);
  EXPECT_THROW(m.add(-1, 2), std::out_of_range);
  EXPECT_THROW(m.at(4, 0), std::out_of_range);
  EXPECT_THROW(CommMatrix(0), std::invalid_argument);
}

TEST(CommMatrix, MaxAndNormalized) {
  CommMatrix m(3);
  m.add(0, 1, 10);
  m.add(1, 2, 4);
  EXPECT_EQ(m.max(), 10u);
  EXPECT_DOUBLE_EQ(m.normalized(1, 2), 0.4);
  EXPECT_DOUBLE_EQ(m.normalized(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.normalized(0, 2), 0.0);
}

TEST(CommMatrix, NormalizedAllZeroSafe) {
  CommMatrix m(3);
  EXPECT_EQ(m.normalized(0, 1), 0.0);
}

TEST(CommMatrix, PlusEquals) {
  CommMatrix a(3), b(3);
  a.add(0, 1, 2);
  b.add(0, 1, 3);
  b.add(1, 2, 7);
  a += b;
  EXPECT_EQ(a.at(0, 1), 5u);
  EXPECT_EQ(a.at(1, 2), 7u);
  CommMatrix wrong(4);
  EXPECT_THROW(a += wrong, std::invalid_argument);
}

TEST(CommMatrix, Decay) {
  CommMatrix m(3);
  m.add(0, 1, 100);
  m.decay(0.5);
  EXPECT_EQ(m.at(0, 1), 50u);
  m.decay(0.0);
  EXPECT_EQ(m.at(0, 1), 0u);
}

TEST(CommMatrix, PairsByWeightOrdered) {
  CommMatrix m(4);
  m.add(0, 1, 1);
  m.add(2, 3, 9);
  m.add(0, 3, 5);
  const auto pairs = m.pairs_by_weight();
  ASSERT_EQ(pairs.size(), 6u);  // all pairs of 4 threads
  EXPECT_EQ(pairs[0], (std::pair<ThreadId, ThreadId>{2, 3}));
  EXPECT_EQ(pairs[1], (std::pair<ThreadId, ThreadId>{0, 3}));
  EXPECT_EQ(pairs[2], (std::pair<ThreadId, ThreadId>{0, 1}));
}

TEST(CommMatrix, HeatmapShapeAndShading) {
  CommMatrix m(3);
  m.add(0, 1, 100);
  m.add(1, 2, 1);
  const std::string art = m.heatmap();
  // 1 header + 3 rows.
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
  // The strongest pair renders with the darkest glyph.
  EXPECT_NE(art.find('@'), std::string::npos);
  // Diagonal stays blank: row for thread 0 has a blank at column 0.
  EXPECT_EQ(art.find('!'), std::string::npos);
}

TEST(CommMatrix, CosineIdenticalIsOne) {
  CommMatrix a(4);
  a.add(0, 1, 3);
  a.add(2, 3, 4);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, a), 1.0, 1e-12);
}

TEST(CommMatrix, CosineScaleInvariant) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 3);
  a.add(2, 3, 4);
  b.add(0, 1, 30);
  b.add(2, 3, 40);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, b), 1.0, 1e-12);
}

TEST(CommMatrix, CosineOrthogonalIsZero) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 5);
  b.add(2, 3, 5);
  EXPECT_NEAR(CommMatrix::cosine_similarity(a, b), 0.0, 1e-12);
}

TEST(CommMatrix, CosineEmptySafe) {
  CommMatrix a(4), b(4);
  a.add(0, 1, 5);
  EXPECT_EQ(CommMatrix::cosine_similarity(a, b), 0.0);
  EXPECT_EQ(CommMatrix::cosine_similarity(b, b), 0.0);
}

TEST(CommMatrix, RankCorrelationPerfect) {
  CommMatrix a(4), b(4);
  int w = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      a.add(i, j, static_cast<std::uint64_t>(w));
      b.add(i, j, static_cast<std::uint64_t>(w * 10));
      ++w;
    }
  }
  EXPECT_NEAR(CommMatrix::rank_correlation(a, b), 1.0, 1e-12);
}

TEST(CommMatrix, RankCorrelationInverted) {
  CommMatrix a(4), b(4);
  int w = 1;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      a.add(i, j, static_cast<std::uint64_t>(w));
      b.add(i, j, static_cast<std::uint64_t>(100 - w));
      ++w;
    }
  }
  EXPECT_NEAR(CommMatrix::rank_correlation(a, b), -1.0, 1e-12);
}

TEST(CommMatrix, SizeMismatchThrows) {
  CommMatrix a(4), b(6);
  EXPECT_THROW(CommMatrix::cosine_similarity(a, b), std::invalid_argument);
  EXPECT_THROW(CommMatrix::rank_correlation(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace tlbmap

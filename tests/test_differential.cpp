// Differential and stress tests: the cache and TLB models are compared
// against brute-force reference implementations on long random operation
// sequences, and randomly generated access programs are checked against
// their declared totals and bounds.
#include <list>
#include <map>
#include <optional>
#include <random>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "sim/access_program.hpp"
#include "sim/cache.hpp"
#include "sim/machine.hpp"
#include "sim/tlb.hpp"

namespace tlbmap {
namespace {

// ----------------------------------------------------------------- caches

/// Brute-force set-associative LRU cache: per-set std::list in MRU order.
class ReferenceCache {
 public:
  ReferenceCache(std::size_t sets, std::size_t ways)
      : sets_(sets), ways_(ways), lru_(sets) {}

  bool find(LineAddr addr) {  // refreshes LRU like Cache::find
    auto& set = lru_[addr % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == addr) {
        set.splice(set.begin(), set, it);
        return true;
      }
    }
    return false;
  }

  std::optional<LineAddr> insert(LineAddr addr, MesiState state) {
    auto& set = lru_[addr % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == addr) {
        it->second = state;
        set.splice(set.begin(), set, it);
        return std::nullopt;
      }
    }
    std::optional<LineAddr> victim;
    if (set.size() == ways_) {
      victim = set.back().first;
      set.pop_back();
    }
    set.emplace_front(addr, state);
    return victim;
  }

  bool invalidate(LineAddr addr) {
    auto& set = lru_[addr % sets_];
    for (auto it = set.begin(); it != set.end(); ++it) {
      if (it->first == addr) {
        set.erase(it);
        return true;
      }
    }
    return false;
  }

 private:
  std::size_t sets_, ways_;
  std::vector<std::list<std::pair<LineAddr, MesiState>>> lru_;
};

struct CacheFuzzParam {
  std::size_t size_bytes;
  std::size_t ways;
  std::uint64_t seed;
};

class CacheDifferential : public ::testing::TestWithParam<CacheFuzzParam> {};

TEST_P(CacheDifferential, MatchesReferenceOnRandomOps) {
  const auto [size, ways, seed] = GetParam();
  const CacheConfig config{size, 64, ways, 1};
  Cache cache(config);
  ReferenceCache ref(cache.num_sets(), cache.ways());
  std::mt19937_64 rng(seed);
  const LineAddr addr_space = cache.num_sets() * cache.ways() * 3;

  for (int op = 0; op < 20'000; ++op) {
    const LineAddr addr = rng() % addr_space;
    switch (rng() % 3) {
      case 0: {  // lookup
        const bool got = cache.find(addr) != nullptr;
        const bool want = ref.find(addr);
        ASSERT_EQ(got, want) << "find mismatch at op " << op;
        break;
      }
      case 1: {  // insert
        const MesiState state =
            (rng() % 2) != 0u ? MesiState::kModified : MesiState::kShared;
        const auto got = cache.insert(addr, state);
        const auto want = ref.insert(addr, state);
        ASSERT_EQ(got.has_value(), want.has_value()) << "op " << op;
        if (got.has_value()) {
          ASSERT_EQ(got->addr, *want) << "victim mismatch at op " << op;
        }
        break;
      }
      case 2: {  // invalidate
        const bool got = cache.invalidate(addr).has_value();
        const bool want = ref.invalidate(addr);
        ASSERT_EQ(got, want) << "invalidate mismatch at op " << op;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(CacheFuzzParam{512, 1, 1}, CacheFuzzParam{512, 2, 2},
                      CacheFuzzParam{512, 8, 3}, CacheFuzzParam{4096, 4, 4},
                      CacheFuzzParam{2048, 16, 5},
                      CacheFuzzParam{1024, 2, 6}),
    [](const ::testing::TestParamInfo<CacheFuzzParam>& info) {
      return "b" + std::to_string(info.param.size_bytes) + "_w" +
             std::to_string(info.param.ways) + "_s" +
             std::to_string(info.param.seed);
    });

// ------------------------------------------------------------------- TLBs

struct TlbFuzzParam {
  std::size_t entries;
  std::size_t ways;
  std::uint64_t seed;
};

class TlbDifferential : public ::testing::TestWithParam<TlbFuzzParam> {};

TEST_P(TlbDifferential, MatchesReferenceOnRandomOps) {
  const auto [entries, ways, seed] = GetParam();
  Tlb tlb(TlbConfig{entries, ways});
  ReferenceCache ref(tlb.num_sets(), tlb.ways());
  std::mt19937_64 rng(seed);
  const PageNum page_space = entries * 3;

  for (int op = 0; op < 20'000; ++op) {
    const PageNum page = rng() % page_space;
    switch (rng() % 4) {
      case 0:
        ASSERT_EQ(tlb.lookup(page), ref.find(page)) << "op " << op;
        break;
      case 1: {
        tlb.insert(page);
        ref.insert(page, MesiState::kShared);
        break;
      }
      case 2: {
        // contains must not disturb LRU: emulate by probing both and then
        // verifying a subsequent capacity probe agrees (done implicitly by
        // later ops; here just compare membership).
        bool want = false;
        // ReferenceCache::find refreshes; use a throwaway copy probe via
        // insert-less scan: reuse invalidate+insert would disturb, so scan
        // by lookup on a clone is not possible — instead compare against
        // tlb.contains twice (idempotence) and against lookup afterwards.
        const bool got1 = tlb.contains(page);
        const bool got2 = tlb.contains(page);
        ASSERT_EQ(got1, got2) << "contains not idempotent at op " << op;
        want = ref.find(page);  // refreshes reference LRU...
        if (got1) tlb.lookup(page);  // ...so mirror the refresh in the TLB
        ASSERT_EQ(got1, want) << "contains mismatch at op " << op;
        break;
      }
      case 3:
        ASSERT_EQ(tlb.invalidate(page), ref.invalidate(page)) << "op " << op;
        break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbDifferential,
    ::testing::Values(TlbFuzzParam{8, 2, 10}, TlbFuzzParam{64, 4, 11},
                      TlbFuzzParam{64, 64, 12}, TlbFuzzParam{256, 8, 13},
                      TlbFuzzParam{16, 1, 14}),
    [](const ::testing::TestParamInfo<TlbFuzzParam>& info) {
      return "e" + std::to_string(info.param.entries) + "_w" +
             std::to_string(info.param.ways) + "_s" +
             std::to_string(info.param.seed);
    });

// -------------------------------------------------- access-program fuzzing

AccessProgram random_program(std::mt19937_64& rng) {
  AccessProgram prog;
  const int phases = 1 + static_cast<int>(rng() % 4);
  for (int p = 0; p < phases; ++p) {
    Phase phase;
    phase.repeat = 1 + static_cast<std::uint32_t>(rng() % 3);
    phase.barrier_after = (rng() % 2) != 0u;
    const int walks = static_cast<int>(rng() % 4);  // may be empty
    for (int w = 0; w < walks; ++w) {
      Walk walk;
      walk.base = (rng() % 64) * 4096;
      walk.length = (1 + rng() % 32) * 4096;
      walk.elem_size = 8;
      walk.pattern = (rng() % 2) != 0u ? Walk::Pattern::kRandom
                                       : Walk::Pattern::kSequential;
      walk.mix = static_cast<Walk::Mix>(rng() % 3);
      walk.count = rng() % 500;
      walk.start_elem = rng() % walk.num_elems();
      walk.stride = static_cast<std::int64_t>(rng() % 37) - 18;
      if (walk.stride == 0) walk.stride = 1;
      walk.compute_gap = static_cast<std::uint32_t>(rng() % 5);
      walk.gap_jitter = static_cast<std::uint32_t>(rng() % 3);
      phase.walks.push_back(walk);
    }
    prog.phases.push_back(std::move(phase));
  }
  prog.iterations = 1 + static_cast<std::uint32_t>(rng() % 3);
  return prog;
}

TEST(ProgramFuzz, StreamsMatchDeclaredTotalsAndBounds) {
  std::mt19937_64 rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const AccessProgram prog = random_program(rng);
    ProgramStream stream(prog, trial);
    std::uint64_t accesses = 0, barriers = 0;
    for (std::uint64_t guard = 0; guard < (1u << 22); ++guard) {
      const TraceEvent ev = stream.next();
      if (ev.kind == TraceEvent::Kind::kEnd) break;
      if (ev.kind == TraceEvent::Kind::kBarrier) {
        ++barriers;
        continue;
      }
      ++accesses;
      // Every address stays within the walk regions' overall span.
      ASSERT_GE(ev.access.addr, 0u);
      ASSERT_LT(ev.access.addr, (64 + 32) * 4096u);
      ASSERT_EQ(ev.access.addr % 8, 0u);
    }
    EXPECT_EQ(accesses, prog.total_accesses()) << "trial " << trial;
    EXPECT_EQ(barriers, prog.total_barriers()) << "trial " << trial;
  }
}

TEST(ProgramFuzz, MachineDigestsRandomProgramsDeterministically) {
  std::mt19937_64 rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const AccessProgram a = random_program(rng);
    const AccessProgram b = random_program(rng);
    auto run_once = [&] {
      Machine m(MachineConfig::tiny());
      std::vector<std::unique_ptr<ThreadStream>> streams;
      streams.push_back(std::make_unique<ProgramStream>(a, 1));
      streams.push_back(std::make_unique<ProgramStream>(b, 2));
      Machine::RunConfig cfg;
      cfg.thread_to_core = {0, 1};
      return m.run(std::move(streams), cfg);
    };
    const MachineStats s1 = run_once();
    const MachineStats s2 = run_once();
    ASSERT_EQ(s1.execution_cycles, s2.execution_cycles) << trial;
    ASSERT_EQ(s1.accesses, s2.accesses) << trial;
    ASSERT_EQ(s1.invalidations, s2.invalidations) << trial;
    ASSERT_EQ(s1.l2_misses, s2.l2_misses) << trial;
    ASSERT_EQ(s1.accesses, a.total_accesses() + b.total_accesses()) << trial;
  }
}

}  // namespace
}  // namespace tlbmap

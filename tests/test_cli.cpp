// Tests for the CLI argument parser and a smoke pass over the commands.
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "core/cli.hpp"

namespace tlbmap {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv = {"tlbmap_cli"};
  argv.insert(argv.end(), args.begin(), args.end());
  return parse_cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, MissingCommand) {
  const CliOptions opt = parse({});
  EXPECT_FALSE(opt.ok());
}

TEST(Cli, Help) {
  EXPECT_TRUE(parse({"--help"}).help);
  EXPECT_TRUE(parse({"help"}).help);
  EXPECT_FALSE(cli_usage().empty());
}

TEST(Cli, UnknownCommand) {
  const CliOptions opt = parse({"frobnicate"});
  EXPECT_FALSE(opt.ok());
  EXPECT_NE(opt.error.find("frobnicate"), std::string::npos);
}

TEST(Cli, DefaultsApplied) {
  const CliOptions opt = parse({"detect"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt.command, "detect");
  EXPECT_EQ(opt.app, "SP");
  EXPECT_EQ(opt.mechanism, "sm");
  EXPECT_EQ(opt.threads, 8);
  EXPECT_FALSE(opt.numa);
}

TEST(Cli, AllOptionsParsed) {
  const CliOptions opt =
      parse({"evaluate", "--app", "BT", "--mechanism", "hm", "--threads",
             "4", "--size-scale", "0.5", "--iter-scale", "2.0", "--reps",
             "7", "--seed", "42", "--numa", "--mapping", "3,2,1,0"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.app, "BT");
  EXPECT_EQ(opt.mechanism, "hm");
  EXPECT_EQ(opt.threads, 4);
  EXPECT_DOUBLE_EQ(opt.size_scale, 0.5);
  EXPECT_DOUBLE_EQ(opt.iter_scale, 2.0);
  EXPECT_EQ(opt.reps, 7);
  EXPECT_EQ(opt.seed, 42u);
  EXPECT_TRUE(opt.numa);
  EXPECT_EQ(opt.mapping, (Mapping{3, 2, 1, 0}));
}

TEST(Cli, AppsList) {
  const CliOptions opt = parse({"suite", "--apps", "BT,SP,UA"});
  ASSERT_TRUE(opt.ok());
  EXPECT_EQ(opt.apps, (std::vector<std::string>{"BT", "SP", "UA"}));
}

TEST(Cli, BadMappingRejected) {
  EXPECT_FALSE(parse({"evaluate", "--mapping", "1,x,3"}).ok());
  EXPECT_FALSE(parse({"evaluate", "--mapping", ""}).ok());
}

TEST(Cli, BadMechanismRejected) {
  EXPECT_FALSE(parse({"detect", "--mechanism", "magic"}).ok());
}

TEST(Cli, MissingValueRejected) {
  EXPECT_FALSE(parse({"detect", "--app"}).ok());
  EXPECT_FALSE(parse({"detect", "--threads"}).ok());
}

TEST(Cli, NonNumericValueRejected) {
  EXPECT_FALSE(parse({"detect", "--threads", "many"}).ok());
  EXPECT_FALSE(parse({"detect", "--size-scale", "big"}).ok());
}

TEST(Cli, RecordNeedsDir) {
  EXPECT_FALSE(parse({"record", "--app", "EP"}).ok());
  EXPECT_TRUE(parse({"record", "--app", "EP", "--out", "/tmp/x"}).ok());
  EXPECT_FALSE(parse({"replay"}).ok());
}

TEST(Cli, UnknownOptionRejected) {
  EXPECT_FALSE(parse({"detect", "--frobnicate"}).ok());
}

TEST(Cli, ObsFlagsParsed) {
  const CliOptions opt = parse({"detect", "--obs-level", "full",
                                "--trace-out", "/tmp/t.json",
                                "--metrics-out", "/tmp/m.jsonl"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.obs_level, "full");
  EXPECT_EQ(opt.trace_out, "/tmp/t.json");
  EXPECT_EQ(opt.metrics_out, "/tmp/m.jsonl");
}

TEST(Cli, ObsLevelDefaultsOffAndValidates) {
  EXPECT_EQ(parse({"detect"}).obs_level, "off");
  EXPECT_FALSE(parse({"detect", "--obs-level", "loud"}).ok());
}

TEST(Cli, ObsOutputImpliesPhases) {
  EXPECT_EQ(parse({"detect", "--trace-out", "/tmp/t.json"}).obs_level,
            "phases");
  EXPECT_EQ(parse({"detect", "--metrics-out", "/tmp/m.jsonl"}).obs_level,
            "phases");
  // An explicit level is never downgraded.
  EXPECT_EQ(parse({"detect", "--obs-level", "full", "--trace-out",
                   "/tmp/t.json"})
                .obs_level,
            "full");
}

TEST(Cli, FaultFlagsParsed) {
  const CliOptions opt = parse(
      {"detect", "--fault-seed", "9", "--fault-drop-rate", "0.25",
       "--fault-corrupt-rate", "0.1", "--fault-detect-fail-rate", "0.05",
       "--fault-sweep-skip-rate", "0.2", "--fault-sweep-fail-rate", "0.3",
       "--fault-sweep-delay", "1000", "--fault-matrix-flip-rate", "0.15",
       "--fault-matrix-zero-rate", "0.05", "--watchdog-events", "500000"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.fault.seed, 9u);
  EXPECT_DOUBLE_EQ(opt.fault.drop_sample_rate, 0.25);
  EXPECT_DOUBLE_EQ(opt.fault.corrupt_sample_rate, 0.1);
  EXPECT_DOUBLE_EQ(opt.fault.detect_fail_rate, 0.05);
  EXPECT_DOUBLE_EQ(opt.fault.sweep_skip_rate, 0.2);
  EXPECT_DOUBLE_EQ(opt.fault.sweep_fail_rate, 0.3);
  EXPECT_EQ(opt.fault.sweep_delay_max, 1000u);
  EXPECT_DOUBLE_EQ(opt.fault.matrix_flip_rate, 0.15);
  EXPECT_DOUBLE_EQ(opt.fault.matrix_zero_rate, 0.05);
  EXPECT_EQ(opt.watchdog_events, 500000u);
  EXPECT_TRUE(opt.fault.enabled());
  EXPECT_FALSE(parse({"detect"}).fault.enabled());
}

TEST(Cli, FaultFlagsValidated) {
  // Out-of-range rates are structured usage errors, not aborts.
  EXPECT_FALSE(parse({"detect", "--fault-drop-rate", "1.5"}).ok());
  EXPECT_FALSE(parse({"detect", "--fault-matrix-zero-rate", "-0.1"}).ok());
  EXPECT_FALSE(parse({"detect", "--fault-drop-rate", "nan"}).ok());
  // record conflicts with fault/watchdog flags: a corrupted recording
  // poisons every later replay, so the combination is refused outright.
  EXPECT_FALSE(parse({"record", "--app", "EP", "--out", "/tmp/x",
                      "--fault-drop-rate", "0.1"})
                   .ok());
  EXPECT_FALSE(parse({"record", "--app", "EP", "--out", "/tmp/x",
                      "--watchdog-events", "10"})
                   .ok());
}

TEST(Cli, OnlineMapperFlagsParsed) {
  const CliOptions opt = parse(
      {"dynamic", "--remap-every-barriers", "2", "--improvement-threshold",
       "0.05", "--migration-cooldown", "0", "--matrix-decay", "0.75",
       "--min-matrix-total", "1", "--canary-barriers", "4",
       "--regression-threshold", "0.5", "--no-rollback"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.online.remap_every_barriers, 2);
  EXPECT_DOUBLE_EQ(opt.online.improvement_threshold, 0.05);
  EXPECT_EQ(opt.online.migration_cooldown, 0);
  EXPECT_DOUBLE_EQ(opt.online.decay, 0.75);
  EXPECT_EQ(opt.online.min_matrix_total, 1u);
  EXPECT_EQ(opt.online.canary_barriers, 4);
  EXPECT_DOUBLE_EQ(opt.online.regression_threshold, 0.5);
  EXPECT_FALSE(opt.online.rollback);
}

TEST(Cli, OnlineMapperDefaultsMatchTheLibrary) {
  // CliOptions embeds OnlineMapperConfig, so the CLI's defaults are the
  // library's by construction — including the measured non-zero cooldown.
  const CliOptions opt = parse({"dynamic"});
  ASSERT_TRUE(opt.ok());
  const OnlineMapperConfig lib;
  EXPECT_EQ(opt.online.remap_every_barriers, lib.remap_every_barriers);
  EXPECT_DOUBLE_EQ(opt.online.improvement_threshold,
                   lib.improvement_threshold);
  EXPECT_EQ(opt.online.migration_cooldown, lib.migration_cooldown);
  EXPECT_EQ(opt.online.migration_cooldown, 1);
  EXPECT_DOUBLE_EQ(opt.online.decay, lib.decay);
  EXPECT_EQ(opt.online.canary_barriers, lib.canary_barriers);
  EXPECT_TRUE(opt.online.rollback);
}

TEST(Cli, OnlineMapperFlagsValidated) {
  // Out-of-range knobs surface the library's own validation message as a
  // structured usage error.
  const CliOptions bad = parse({"dynamic", "--matrix-decay", "1.5"});
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("OnlineMapperConfig"), std::string::npos);
  EXPECT_FALSE(parse({"dynamic", "--matrix-decay", "0"}).ok());
  EXPECT_FALSE(parse({"dynamic", "--improvement-threshold", "1.0"}).ok());
  EXPECT_FALSE(parse({"dynamic", "--migration-cooldown", "-1"}).ok());
  EXPECT_FALSE(parse({"dynamic", "--canary-barriers", "-2"}).ok());
  EXPECT_FALSE(parse({"dynamic", "--regression-threshold", "-0.1"}).ok());
  EXPECT_FALSE(parse({"dynamic", "--remap-every-barriers", "-4"}).ok());
  // Garbage values are caught by the strict numeric parser.
  EXPECT_FALSE(parse({"dynamic", "--canary-barriers", "two"}).ok());
}

TEST(Cli, OnlineMapperFlagsOnlyApplyToDynamic) {
  EXPECT_FALSE(parse({"evaluate", "--canary-barriers", "2"}).ok());
  EXPECT_FALSE(parse({"suite", "--remap-every-barriers", "2"}).ok());
  EXPECT_FALSE(parse({"detect", "--no-rollback"}).ok());
  const CliOptions wrong = parse({"serve", "--migration-cooldown", "0"});
  EXPECT_FALSE(wrong.ok());
  EXPECT_NE(wrong.error.find("dynamic"), std::string::npos);
}

TEST(Cli, CheckpointFlagsParsed) {
  const CliOptions opt =
      parse({"suite", "--checkpoint-dir", "/tmp/ckpt",
             "--checkpoint-every-events", "250000", "--resume"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.checkpoint_dir, "/tmp/ckpt");
  EXPECT_EQ(opt.checkpoint_every_events, 250000u);
  EXPECT_TRUE(opt.resume);

  const CliOptions defaults = parse({"suite"});
  ASSERT_TRUE(defaults.ok());
  EXPECT_TRUE(defaults.checkpoint_dir.empty());
  EXPECT_EQ(defaults.checkpoint_every_events, 0u);
  EXPECT_FALSE(defaults.resume);
}

TEST(Cli, CheckpointFlagsValidated) {
  // The crash-safety flags only make sense for the suite command...
  EXPECT_FALSE(parse({"detect", "--checkpoint-dir", "/tmp/ckpt"}).ok());
  EXPECT_FALSE(parse({"evaluate", "--resume"}).ok());
  // ...and resume/cadence without a checkpoint directory is a usage error.
  EXPECT_FALSE(parse({"suite", "--resume"}).ok());
  EXPECT_FALSE(parse({"suite", "--checkpoint-every-events", "1000"}).ok());
  // The cadence value is numeric-validated like every other count.
  EXPECT_FALSE(parse({"suite", "--checkpoint-dir", "/tmp/ckpt",
                      "--checkpoint-every-events", "soon"})
                   .ok());
}

TEST(Cli, ServeFlagsParsed) {
  const CliOptions opt = parse(
      {"serve", "--tenants", "6", "--corrupt-tenant", "2", "--serve-ticks",
       "200", "--chunk-bytes", "256", "--max-sessions", "12",
       "--queue-bytes", "32768", "--session-budget", "1048576",
       "--total-budget", "8388608", "--deadline-events", "1024",
       "--drift-threshold", "0.8", "--window-pages", "32", "--sweep-every",
       "512", "--serve-out", "/tmp/report.json"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.command, "serve");
  EXPECT_EQ(opt.tenants, 6);
  EXPECT_EQ(opt.corrupt_tenant, 2);
  EXPECT_EQ(opt.serve_ticks, 200u);
  EXPECT_EQ(opt.chunk_bytes, 256u);
  EXPECT_EQ(opt.max_sessions, 12);
  EXPECT_EQ(opt.queue_bytes, 32768u);
  EXPECT_EQ(opt.session_budget_bytes, 1048576u);
  EXPECT_EQ(opt.total_budget_bytes, 8388608u);
  EXPECT_EQ(opt.deadline_events, 1024u);
  EXPECT_DOUBLE_EQ(opt.drift_threshold, 0.8);
  EXPECT_EQ(opt.window_pages, 32);
  EXPECT_EQ(opt.sweep_every, 512u);
  EXPECT_EQ(opt.serve_out, "/tmp/report.json");

  const CliOptions defaults = parse({"serve"});
  ASSERT_TRUE(defaults.ok()) << defaults.error;
  EXPECT_EQ(defaults.tenants, 4);
  EXPECT_EQ(defaults.corrupt_tenant, -1);  // -1 = no fault injection
  EXPECT_EQ(defaults.serve_ticks, 0u);     // 0 = run until drained
  EXPECT_TRUE(defaults.serve_out.empty());
}

TEST(Cli, ServeFlagsValidated) {
  EXPECT_FALSE(parse({"serve", "--tenants", "0"}).ok());
  EXPECT_FALSE(parse({"serve", "--chunk-bytes", "0"}).ok());
  EXPECT_FALSE(parse({"serve", "--max-sessions", "0"}).ok());
  EXPECT_FALSE(parse({"serve", "--drift-threshold", "1.5"}).ok());
  EXPECT_FALSE(parse({"serve", "--drift-threshold", "-0.1"}).ok());
  // The injected fault must name one of the tenants that exist.
  EXPECT_FALSE(
      parse({"serve", "--tenants", "3", "--corrupt-tenant", "3"}).ok());
  EXPECT_TRUE(
      parse({"serve", "--tenants", "3", "--corrupt-tenant", "2"}).ok());
  // Serve flags belong to serve.
  EXPECT_FALSE(parse({"detect", "--tenants", "4"}).ok());
}

TEST(Cli, ServeAcceptsCheckpointFlags) {
  // The crash-safety flags apply to the two long-running commands: the
  // suite and the serve daemon.
  const CliOptions opt =
      parse({"serve", "--checkpoint-dir", "/tmp/svc", "--resume"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.checkpoint_dir, "/tmp/svc");
  EXPECT_TRUE(opt.resume);
  EXPECT_FALSE(parse({"serve", "--resume"}).ok());  // needs the dir
}

TEST(Cli, TopologyAndStrategyFlagsParsed) {
  const CliOptions opt =
      parse({"detect", "--sockets", "32", "--cores-per-socket", "8",
             "--cores-per-l2", "1", "--mesh-cols", "8",
             "--mapping-strategy", "multisection", "--threads", "64"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.sockets, 32);
  EXPECT_EQ(opt.cores_per_socket, 8);
  EXPECT_EQ(opt.cores_per_l2, 1);
  EXPECT_EQ(opt.mesh_cols, 8);
  EXPECT_EQ(opt.mapping_strategy, "multisection");

  const CliOptions defaults = parse({"detect"});
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.sockets, 0);  // 0 = keep the preset's topology
  EXPECT_EQ(defaults.mesh_cols, 0);
  EXPECT_EQ(defaults.mapping_strategy, "auto");
}

TEST(Cli, TopologyAndStrategyFlagsValidated) {
  EXPECT_FALSE(parse({"detect", "--sockets", "-2"}).ok());
  EXPECT_FALSE(parse({"detect", "--mesh-cols", "-1"}).ok());
  EXPECT_FALSE(parse({"detect", "--cores-per-socket", "abc"}).ok());
  const CliOptions bad = parse({"detect", "--mapping-strategy", "blossom"});
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.error.find("blossom"), std::string::npos);
  for (const char* name : {"auto", "edmonds", "greedy", "multisection"}) {
    EXPECT_TRUE(parse({"detect", "--mapping-strategy", name}).ok()) << name;
  }
}

TEST(Cli, ParallelAndScanFlagsParsed) {
  const CliOptions opt = parse({"evaluate", "--machine-workers", "4",
                                "--epoch-events", "512", "--scalar-scan"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(opt.machine_workers, 4);
  EXPECT_EQ(opt.epoch_events, 512u);
  EXPECT_TRUE(opt.scalar_scan);
  const CliOptions defaults = parse({"evaluate"});
  EXPECT_EQ(defaults.machine_workers, 0);
  EXPECT_EQ(defaults.epoch_events, 2048u);
  EXPECT_FALSE(defaults.scalar_scan);
}

TEST(Cli, ParallelFlagsValidated) {
  EXPECT_FALSE(parse({"evaluate", "--machine-workers", "-1"}).ok());
  EXPECT_FALSE(parse({"evaluate", "--machine-workers", "2x"}).ok());
  EXPECT_FALSE(parse({"evaluate", "--epoch-events", "0"}).ok());
  EXPECT_FALSE(parse({"evaluate", "--epoch-events", "-4"}).ok());
}

TEST(CliRun, InconsistentTopologyOverrideFailsStructurally) {
  // Geometry that MachineConfig::validate rejects (3 cores per socket with
  // 2 per L2) must come back as exit code 1, not an uncaught throw.
  CliOptions opt = parse({"detect", "--app", "IS", "--cores-per-socket", "3",
                          "--cores-per-l2", "2", "--threads", "2"});
  ASSERT_TRUE(opt.ok()) << opt.error;
  EXPECT_EQ(run_cli(opt), 1);
}

TEST(CliFuzz, GarbageNeverAbortsAlwaysStructured) {
  // Property-style sweep: every parse either succeeds or fails with a
  // non-empty error message — never throws, never aborts, never UB.
  const std::vector<std::vector<const char*>> cases = {
      {"detect", "--threads", "-3"},
      {"detect", "--threads", "99999999999999999999"},
      {"detect", "--threads", "8abc"},
      {"detect", "--threads", ""},
      {"detect", "--seed", "-1"},
      {"detect", "--seed", "+4"},
      {"detect", "--seed", "0x10"},
      {"detect", "--size-scale", "1e"},
      {"detect", "--size-scale", "inf garbage"},
      {"detect", "--iter-scale", "--reps"},
      {"detect", "--fault-seed", "-9"},
      {"detect", "--fault-drop-rate", "0.5extra"},
      {"detect", "--fault-sweep-delay", "1.5"},
      {"detect", "--fault-sweep-delay", "-1"},
      {"detect", "--watchdog-events", "ten"},
      {"suite", "--apps", ",,,"},
      {"evaluate", "--mapping", "0,1,2,"},
      {"evaluate", "--mapping", "-1,0"},
      {"evaluate", "--mapping", "999999999999999999999,0"},
      {"replay", "--in", ""},
      {"detect", "--obs-level"},
      {"detect", "\xff\xfe"},
      {"--fault-drop-rate", "0.1"},  // flag before any command
  };
  for (const auto& argv_tail : cases) {
    std::vector<const char*> argv = {"tlbmap_cli"};
    argv.insert(argv.end(), argv_tail.begin(), argv_tail.end());
    CliOptions opt;
    ASSERT_NO_THROW(
        opt = parse_cli(static_cast<int>(argv.size()), argv.data()))
        << "argv[1]=" << argv_tail[0];
    if (!opt.ok()) {
      EXPECT_FALSE(opt.error.empty()) << "argv[1]=" << argv_tail[0];
    }
  }
}

TEST(CliFuzz, NumericBoundsAreStrict) {
  // Full-token parsing: trailing junk and embedded signs are rejected
  // (stoull would silently wrap "-1" to 2^64-1).
  EXPECT_FALSE(parse({"detect", "--seed", "1 2"}).ok());
  EXPECT_FALSE(parse({"detect", "--fault-seed", "+1"}).ok());
  EXPECT_FALSE(parse({"detect", "--watchdog-events", "-5"}).ok());
  EXPECT_FALSE(parse({"detect", "--reps", "2.5"}).ok());
  // Plain values still parse.
  EXPECT_TRUE(parse({"detect", "--seed", "18446744073709551615"}).ok());
  EXPECT_TRUE(parse({"detect", "--reps", "3"}).ok());
}

TEST(CliRun, UsageErrorExitCode) {
  EXPECT_EQ(run_cli(parse({"nonsense"})), 2);
  EXPECT_EQ(run_cli(parse({"--help"})), 0);
}

TEST(CliRun, DetectMapEvaluateSmoke) {
  // Small scales keep this fast; stdout goes to the test log.
  CliOptions detect = parse({"detect", "--app", "EP", "--iter-scale", "0.2"});
  EXPECT_EQ(run_cli(detect), 0);
  CliOptions map = parse({"map", "--app", "EP", "--iter-scale", "0.2"});
  EXPECT_EQ(run_cli(map), 0);
  CliOptions eval = parse({"evaluate", "--app", "EP", "--iter-scale", "0.2",
                           "--reps", "1", "--mapping", "0,1,2,3,4,5,6,7"});
  EXPECT_EQ(run_cli(eval), 0);
}

TEST(CliRun, EvaluateRunsShardedAndScalarPaths) {
  // Epoch engine on the evaluate command; worker count is invisible in the
  // printed stats (asserted bit-exactly by test_parallel_machine — this is
  // the end-to-end flag plumbing check).
  CliOptions sharded =
      parse({"evaluate", "--app", "EP", "--iter-scale", "0.2", "--reps", "1",
             "--mapping", "0,1,2,3,4,5,6,7", "--machine-workers", "2",
             "--epoch-events", "256"});
  ASSERT_TRUE(sharded.ok()) << sharded.error;
  EXPECT_EQ(run_cli(sharded), 0);
  CliOptions scalar =
      parse({"evaluate", "--app", "EP", "--iter-scale", "0.2", "--reps", "1",
             "--mapping", "0,1,2,3,4,5,6,7", "--scalar-scan"});
  ASSERT_TRUE(scalar.ok()) << scalar.error;
  EXPECT_EQ(run_cli(scalar), 0);
  // run_cli sets the process-wide scan mode from its options each call;
  // re-run without the flag so later tests see the default SIMD path.
  CliOptions simd = parse({"evaluate", "--app", "EP", "--iter-scale", "0.2",
                           "--reps", "1", "--mapping", "0,1,2,3,4,5,6,7"});
  EXPECT_EQ(run_cli(simd), 0);
}

TEST(CliRun, EvaluateRejectsBadMappingAtRuntime) {
  CliOptions eval = parse({"evaluate", "--app", "EP", "--iter-scale", "0.2",
                           "--reps", "1", "--mapping", "0,0,1,2,3,4,5,6"});
  EXPECT_EQ(run_cli(eval), 1);
}

TEST(CliRun, ObsArtifactsWritten) {
  const std::string trace_path = "/tmp/tlbmap_cli_test_trace.json";
  const std::string metrics_path = "/tmp/tlbmap_cli_test_metrics.jsonl";
  CliOptions opt = parse({"evaluate", "--app", "EP", "--iter-scale", "0.2",
                          "--reps", "1", "--trace-out", trace_path.c_str(),
                          "--metrics-out", metrics_path.c_str()});
  ASSERT_TRUE(opt.ok()) << opt.error;
  ASSERT_EQ(run_cli(opt), 0);

  std::ifstream trace(trace_path);
  ASSERT_TRUE(trace.good());
  std::stringstream trace_buf;
  trace_buf << trace.rdbuf();
  // Chrome-trace shape with the pipeline's phase spans inside.
  EXPECT_EQ(trace_buf.str().rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(trace_buf.str().find("pipeline.detect"), std::string::npos);
  EXPECT_NE(trace_buf.str().find("pipeline.evaluate"), std::string::npos);

  std::ifstream metrics(metrics_path);
  ASSERT_TRUE(metrics.good());
  std::stringstream metrics_buf;
  metrics_buf << metrics.rdbuf();
  EXPECT_NE(metrics_buf.str().find("detector.searches"), std::string::npos);
  EXPECT_NE(metrics_buf.str().find("pipeline.phase_wall_us"),
            std::string::npos);
  EXPECT_NE(metrics_buf.str().find("\"type\":\"matrix\""),
            std::string::npos);
}

TEST(CliRun, RecordReplayRoundTrip) {
  const std::string dir = "/tmp/tlbmap_cli_test_recording";
  CliOptions record = parse({"record", "--app", "EP", "--iter-scale", "0.2",
                             "--out", dir.c_str()});
  ASSERT_EQ(run_cli(record), 0);
  CliOptions replay = parse({"replay", "--in", dir.c_str()});
  EXPECT_EQ(run_cli(replay), 0);
  CliOptions missing = parse({"replay", "--in", "/tmp/tlbmap_nonexistent"});
  EXPECT_EQ(run_cli(missing), 1);
}

}  // namespace
}  // namespace tlbmap

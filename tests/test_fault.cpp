// Differential tests for the fault-injection harness and the
// graceful-degradation layer (DESIGN.md Sec. 11).
//
// The contract under test, in order of importance:
//   1. Faults OFF is bit-identical to a build without the subsystem: a
//      zero-rate plan takes zero extra PRNG draws and changes no counter.
//   2. Faults ON is deterministic per seed: same plan, same results.
//   3. No fault configuration makes the pipeline throw or die — it
//      degrades (worse mapping, degraded-decision fallbacks) instead.
//   4. Degraded quality is bounded: at paper-level fault rates the
//      detected mapping is never worse than the OS-scheduler baseline.
#include <limits>

#include <gtest/gtest.h>

#include "core/dynamic.hpp"
#include "core/pipeline.hpp"
#include "mapping/mapping.hpp"
#include "npb/synthetic.hpp"
#include "sim/machine.hpp"

namespace tlbmap {
namespace {

SyntheticSpec pairs_spec() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.num_threads = 8;
  spec.iterations = 2;
  return spec;
}

/// The pipeline's default detector knobs are paper-scale (1-in-100
/// sampling, 10M-cycle sweeps) — far too coarse for these synthetic traces
/// of a few hundred thousand cycles. Scale them down so detection has
/// signal to degrade in the first place.
void scale_detectors(Pipeline& pipe) {
  pipe.sm_config() =
      SmDetectorConfig{/*sample_threshold=*/10, /*search_cost=*/231};
  pipe.hm_config() =
      HmDetectorConfig{/*interval=*/50'000, /*search_cost=*/3'372};
}

/// Paper-level noise: detection is already approximate (1-in-100 sampling),
/// so a few-percent fault rate on top models a flaky TLB readout.
FaultPlan paper_level_plan(std::uint64_t seed = 7) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_sample_rate = 0.05;
  plan.corrupt_sample_rate = 0.02;
  plan.detect_fail_rate = 0.02;
  return plan;
}

FaultPlan aggressive_plan(std::uint64_t seed = 99) {
  FaultPlan plan;
  plan.seed = seed;
  plan.drop_sample_rate = 0.5;
  plan.corrupt_sample_rate = 0.5;
  plan.detect_fail_rate = 0.5;
  plan.sweep_skip_rate = 0.4;
  plan.sweep_fail_rate = 0.4;
  plan.sweep_delay_max = 100'000;
  plan.matrix_flip_rate = 0.5;
  plan.matrix_zero_rate = 0.5;
  return plan;
}

TEST(FaultPlan, ValidateRejectsBadRates) {
  FaultPlan plan;
  plan.drop_sample_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = FaultPlan{};
  plan.matrix_zero_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  plan = FaultPlan{};
  plan.sweep_fail_rate = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(plan.validate(), std::invalid_argument);
  EXPECT_NO_THROW(aggressive_plan().validate());
  EXPECT_FALSE(FaultPlan{}.enabled());
  EXPECT_TRUE(paper_level_plan().enabled());
}

TEST(FaultInjector, DeterministicPerSeedAndSalt) {
  const FaultPlan plan = aggressive_plan(123);
  FaultInjector a(plan, FaultInjector::kSmSalt);
  FaultInjector b(plan, FaultInjector::kSmSalt);
  FaultInjector other_salt(plan, FaultInjector::kHmSalt);
  int agree = 0, diverge = 0;
  for (int i = 0; i < 256; ++i) {
    const bool da = a.drop_sample();
    const bool db = b.drop_sample();
    EXPECT_EQ(da, db) << "draw " << i;
    if (da == other_salt.drop_sample()) {
      ++agree;
    } else {
      ++diverge;
    }
  }
  EXPECT_EQ(a.counters().dropped_samples, b.counters().dropped_samples);
  EXPECT_GT(a.counters().dropped_samples, 0u);
  // Distinct salts give independent streams: they must not track each other.
  EXPECT_GT(diverge, 0);
  EXPECT_GT(agree, 0);
}

TEST(FaultDifferential, ZeroRatePlanIsBitIdentical) {
  // A plan with a seed but all-zero rates must be byte-for-byte the same
  // run as no plan at all — the injector is never even constructed.
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig plain = MachineConfig();
  MachineConfig zeroed = MachineConfig();
  zeroed.fault.seed = 0xDEADBEEF;  // seed alone must not enable anything

  for (const auto mechanism : {Pipeline::Mechanism::kSoftwareManaged,
                               Pipeline::Mechanism::kHardwareManaged}) {
    Pipeline a(plain), b(zeroed);
    scale_detectors(a);
    scale_detectors(b);
    const DetectionResult da = a.detect(*workload, mechanism, /*seed=*/3);
    const DetectionResult db = b.detect(*workload, mechanism, /*seed=*/3);
    EXPECT_TRUE(da.stats == db.stats);
    EXPECT_EQ(da.searches, db.searches);
    EXPECT_EQ(da.matrix.rows(), db.matrix.rows());
    const Mapping ma = a.map(da.matrix);
    const Mapping mb = b.map(db.matrix);
    EXPECT_EQ(ma, mb);
    EXPECT_TRUE(a.evaluate(*workload, ma, 3) == b.evaluate(*workload, mb, 3));
  }
}

TEST(FaultDifferential, FaultsOnIsDeterministicPerSeed) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault = aggressive_plan(11);

  for (const auto mechanism : {Pipeline::Mechanism::kSoftwareManaged,
                               Pipeline::Mechanism::kHardwareManaged}) {
    Pipeline a(faulty), b(faulty);
    scale_detectors(a);
    scale_detectors(b);
    const DetectionResult da = a.detect(*workload, mechanism, 3);
    const DetectionResult db = b.detect(*workload, mechanism, 3);
    EXPECT_TRUE(da.stats == db.stats);
    EXPECT_EQ(da.matrix.rows(), db.matrix.rows());
    EXPECT_EQ(a.map(da.matrix), b.map(db.matrix));
  }

  // A different seed must (with overwhelming probability at these rates)
  // detect a different matrix.
  MachineConfig reseeded = faulty;
  reseeded.fault.seed = 12;
  Pipeline a(faulty), c(reseeded);
  scale_detectors(a);
  scale_detectors(c);
  const auto ra = a.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 3);
  const auto rc = c.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 3);
  EXPECT_NE(ra.matrix.rows(), rc.matrix.rows());
}

TEST(FaultDifferential, AggressiveFaultsNeverThrow) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault = aggressive_plan();
  for (const auto mechanism : {Pipeline::Mechanism::kSoftwareManaged,
                               Pipeline::Mechanism::kHardwareManaged}) {
    Pipeline pipe(faulty);
    scale_detectors(pipe);
    DetectionResult det;
    ASSERT_NO_THROW(det = pipe.detect(*workload, mechanism, 5));
    Mapping mapping;
    ASSERT_NO_THROW(mapping = pipe.map(det.matrix));
    EXPECT_TRUE(is_valid_mapping(mapping, pipe.topology().num_cores()));
    ASSERT_NO_THROW(pipe.evaluate(*workload, mapping, 5));
  }
}

TEST(FaultDifferential, DetectedMappingNeverWorseThanOsBaseline) {
  // At paper-level fault rates the degraded SM mapping must still beat (or
  // tie) the fault-free OS-scheduler baseline: random placement re-rolled
  // per repetition, exactly like the suite's OS arm.
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault = paper_level_plan();
  Pipeline pipe(faulty);
  scale_detectors(pipe);
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged, 3);
  const Mapping mapping = pipe.map(det.matrix);
  ASSERT_TRUE(is_valid_mapping(mapping, pipe.topology().num_cores()));
  const MachineStats sm = pipe.evaluate(*workload, mapping, 3);

  Pipeline clean((MachineConfig()));
  double os_mean_cycles = 0;
  const int reps = 4;
  for (int r = 0; r < reps; ++r) {
    const Mapping os = random_mapping(workload->num_threads(),
                                      clean.topology().num_cores(),
                                      static_cast<std::uint64_t>(100 + r));
    os_mean_cycles += static_cast<double>(
        clean.evaluate(*workload, os, 3).execution_cycles);
  }
  os_mean_cycles /= reps;
  EXPECT_LE(static_cast<double>(sm.execution_cycles), os_mean_cycles * 1.02)
      << "faulty-detected mapping lost to the OS baseline";
}

TEST(FaultDifferential, HmSweepFaultsStillDetectSignal) {
  // Sweep skip/fail/delay lose epochs but the surviving sweeps must still
  // find the dominant pairs at moderate rates.
  SyntheticSpec spec = pairs_spec();
  spec.iterations = 4;
  const auto workload = make_synthetic(spec);
  MachineConfig faulty = MachineConfig();
  faulty.fault.seed = 21;
  faulty.fault.sweep_skip_rate = 0.25;
  faulty.fault.sweep_fail_rate = 0.25;
  faulty.fault.sweep_delay_max = 50'000;
  Pipeline pipe(faulty);
  // The whole trace runs ~400k cycles: sweep every 25k so there are enough
  // epochs that a 25% skip/fail rate cannot plausibly lose all of them.
  pipe.hm_config() = HmDetectorConfig{/*interval=*/25'000,
                                      /*search_cost=*/3'372};
  const DetectionResult det =
      pipe.detect(*workload, Pipeline::Mechanism::kHardwareManaged, 3);
  EXPECT_GT(det.matrix.total(), 0u) << "all sweeps lost at a 25% rate";
  EXPECT_TRUE(is_valid_mapping(pipe.map(det.matrix),
                               pipe.topology().num_cores()));
}

TEST(Watchdog, OffAndHugeBudgetAreBitIdentical) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig off = MachineConfig();
  MachineConfig huge = MachineConfig();
  huge.watchdog_max_events = ~std::uint64_t{0};
  Pipeline a(off), b(huge);
  const Mapping id = identity_mapping(workload->num_threads());
  EXPECT_TRUE(a.evaluate(*workload, id, 3) == b.evaluate(*workload, id, 3));
}

TEST(Watchdog, TinyBudgetIsAStructuredError) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig cfg = MachineConfig();
  cfg.watchdog_max_events = 100;  // far below the workload's event count
  Machine machine(cfg);
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload->num_threads(); ++t) {
    streams.push_back(workload->stream(t, 3));
  }
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  const Expected<MachineStats> result =
      machine.try_run(std::move(streams), run);
  ASSERT_FALSE(result.has_value());
  EXPECT_EQ(result.error().code, ErrorCode::kWatchdogTimeout);
  EXPECT_NE(result.error().message.find("watchdog"), std::string::npos);
}

TEST(Watchdog, RunWrapperThrowsRuntimeError) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig cfg = MachineConfig();
  cfg.watchdog_max_events = 100;
  Machine machine(cfg);
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload->num_threads(); ++t) {
    streams.push_back(workload->stream(t, 3));
  }
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  EXPECT_THROW(machine.run(std::move(streams), run), std::runtime_error);
}

TEST(OnlineDegradation, ZeroedMatrixFallsBackNotThrows) {
  // matrix_zero_rate 1.0 makes every online decision degenerate: the
  // mapper must fall back to the previous placement every time, count the
  // degraded decisions, and never migrate on noise.
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault.seed = 5;
  faulty.fault.matrix_zero_rate = 1.0;
  Pipeline pipe(faulty);
  OnlineMapperConfig online;
  online.remap_every_barriers = 1;
  online.min_matrix_total = 1;
  const Mapping initial = identity_mapping(workload->num_threads());
  Pipeline::DynamicRunResult result;
  ASSERT_NO_THROW(result = pipe.evaluate_dynamic(*workload, initial, online, 3));
  EXPECT_GT(result.degraded_decisions, 0);
  EXPECT_EQ(result.migrations, 0);
  EXPECT_EQ(result.final_mapping, initial);
}

TEST(OnlineDegradation, CooldownCurbssMigrationsUnderFlipNoise) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault.seed = 17;
  faulty.fault.matrix_flip_rate = 0.35;

  auto run_with_cooldown = [&](int cooldown) {
    Pipeline pipe(faulty);
    OnlineMapperConfig online;
    online.remap_every_barriers = 1;
    online.min_matrix_total = 1;
    online.improvement_threshold = 0.0;  // let the noise through
    online.migration_cooldown = cooldown;
    return pipe.evaluate_dynamic(
        *workload, identity_mapping(workload->num_threads()), online, 3);
  };
  const auto loose = run_with_cooldown(0);
  const auto damped = run_with_cooldown(1'000'000);
  EXPECT_LE(damped.migrations, loose.migrations);
  EXPECT_LE(damped.migrations, 1) << "cooldown must block repeat migrations";
}

TEST(FaultCountersTally, DetectorReportsInjections) {
  const auto workload = make_synthetic(pairs_spec());
  MachineConfig faulty = MachineConfig();
  faulty.fault = aggressive_plan(31);
  Machine machine(faulty);
  SmDetector detector(machine, workload->num_threads(),
                      SmDetectorConfig{/*sample_threshold=*/10,
                                       /*search_cost=*/231});
  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload->num_threads());
  run.observer = &detector;
  std::vector<std::unique_ptr<ThreadStream>> streams;
  for (ThreadId t = 0; t < workload->num_threads(); ++t) {
    streams.push_back(workload->stream(t, 3));
  }
  machine.run(std::move(streams), run);
  const FaultCounters* counters = detector.fault_counters();
  ASSERT_NE(counters, nullptr);
  EXPECT_GT(counters->total(), 0u);
  EXPECT_GT(counters->dropped_samples, 0u);

  // Faultless detector exposes no counters at all.
  Machine clean((MachineConfig()));
  SmDetector quiet(clean, workload->num_threads(),
                   SmDetectorConfig{10, 231});
  EXPECT_EQ(quiet.fault_counters(), nullptr);
}

}  // namespace
}  // namespace tlbmap

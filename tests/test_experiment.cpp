// Tests for the experiment harness: metric extraction, summaries,
// serialization round-trips and cache keys.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "obs/obs.hpp"

namespace tlbmap {
namespace {

TEST(Experiment, MetricValues) {
  MachineStats s;
  s.execution_cycles = static_cast<Cycles>(kClockHz);  // exactly 1 second
  s.invalidations = 10;
  s.snoop_transactions = 20;
  s.l2_misses = 30;
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kTimeSeconds), 1.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kInvalidations), 10.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kSnoops), 20.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kL2Misses), 30.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kInvalidationsPerSec), 10.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kSnoopsPerSec), 20.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kL2MissesPerSec), 30.0);
}

MappingRuns runs_with_cycles(std::initializer_list<Cycles> cycles) {
  MappingRuns r;
  r.label = "X";
  for (const Cycles c : cycles) {
    MachineStats s;
    s.execution_cycles = c;
    r.runs.push_back(s);
  }
  return r;
}

TEST(Experiment, SummarizeRuns) {
  const MappingRuns r = runs_with_cycles({100, 200, 300});
  const Summary s = summarize_runs(r, Metric::kTimeSeconds);
  EXPECT_EQ(s.n, 3u);
  EXPECT_NEAR(s.mean, cycles_to_seconds(200), 1e-15);
}

TEST(Experiment, NormalizedAgainstOs) {
  AppExperiment app;
  app.os_runs = runs_with_cycles({200, 200});
  app.sm_runs = runs_with_cycles({100, 100});
  EXPECT_DOUBLE_EQ(app.normalized(app.sm_runs, Metric::kTimeSeconds), 0.5);
}

TEST(Experiment, NormalizedZeroBaselineSafe) {
  AppExperiment app;
  app.os_runs = runs_with_cycles({0});
  app.sm_runs = runs_with_cycles({100});
  EXPECT_DOUBLE_EQ(app.normalized(app.sm_runs, Metric::kTimeSeconds), 1.0);
}

SuiteResult tiny_result() {
  SuiteResult result;
  AppExperiment app;
  app.app = "BT";
  app.sm_detection.mechanism = "SM";
  app.sm_detection.searches = 42;
  app.sm_detection.matrix = CommMatrix(4);
  app.sm_detection.matrix.add(0, 1, 7);
  app.sm_detection.stats.accesses = 1000;
  app.sm_detection.stats.tlb_misses = 10;
  app.hm_detection = app.sm_detection;
  app.hm_detection.mechanism = "HM";
  app.oracle_detection = app.sm_detection;
  app.oracle_detection.mechanism = "oracle";
  app.sm_mapping = {0, 1, 2, 3};
  app.hm_mapping = {3, 2, 1, 0};
  app.os_runs = runs_with_cycles({10, 20});
  app.os_runs.label = "OS";
  app.sm_runs = runs_with_cycles({5});
  app.sm_runs.label = "SM";
  app.hm_runs = runs_with_cycles({6});
  app.hm_runs.label = "HM";
  result.apps.push_back(app);
  return result;
}

TEST(Experiment, SerializationRoundTrip) {
  const SuiteResult original = tiny_result();
  const std::string text = serialize_suite(original);
  const auto restored = deserialize_suite(text, SuiteConfig{});
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->apps.size(), 1u);
  const AppExperiment& app = restored->apps[0];
  EXPECT_EQ(app.app, "BT");
  EXPECT_EQ(app.sm_detection.searches, 42u);
  EXPECT_EQ(app.sm_detection.matrix.at(0, 1), 7u);
  EXPECT_EQ(app.sm_detection.stats.accesses, 1000u);
  EXPECT_EQ(app.hm_mapping, (Mapping{3, 2, 1, 0}));
  EXPECT_EQ(app.os_runs.runs.size(), 2u);
  EXPECT_EQ(app.os_runs.label, "OS");
  EXPECT_EQ(app.sm_runs.runs[0].execution_cycles, 5u);
}

TEST(Experiment, DeserializeRejectsGarbage) {
  EXPECT_FALSE(deserialize_suite("not a suite", SuiteConfig{}).has_value());
  EXPECT_FALSE(deserialize_suite("", SuiteConfig{}).has_value());
  EXPECT_FALSE(
      deserialize_suite("tlbmap-suite 0\n1\n", SuiteConfig{}).has_value());
}

TEST(Experiment, DeserializeRejectsTruncated) {
  std::string text = serialize_suite(tiny_result());
  text.resize(text.size() / 2);
  EXPECT_FALSE(deserialize_suite(text, SuiteConfig{}).has_value());
}

TEST(Experiment, CacheKeyStableAndSensitive) {
  const SuiteConfig a;
  SuiteConfig b;
  EXPECT_EQ(suite_cache_key(a), suite_cache_key(b));
  b.repetitions += 1;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(b));
  SuiteConfig c;
  c.sm.sample_threshold = 55;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(c));
  SuiteConfig d;
  d.apps = {"BT"};
  EXPECT_NE(suite_cache_key(a), suite_cache_key(d));
  SuiteConfig e;
  e.machine.tlb.entries = 128;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(e));
}

TEST(Experiment, RunSuiteSingleAppSmoke) {
  // A minimal end-to-end suite run: one app, tiny repetitions, no cache.
  SuiteConfig config;
  config.apps = {"EP"};
  config.repetitions = 1;
  config.use_cache = false;
  config.workload.iter_scale = 0.2;
  config.detect_iter_scale = 1.0;
  const SuiteResult result = run_suite(config);
  ASSERT_EQ(result.apps.size(), 1u);
  const AppExperiment& app = result.apps[0];
  EXPECT_EQ(app.app, "EP");
  EXPECT_EQ(app.os_runs.runs.size(), 1u);
  EXPECT_TRUE(is_valid_mapping(app.sm_mapping, 8));
  EXPECT_TRUE(is_valid_mapping(app.hm_mapping, 8));
  EXPECT_GT(app.sm_detection.stats.accesses, 0u);
}

TEST(Experiment, RunSuiteWritesManifestAndSeries) {
  const std::string manifest_path =
      testing::TempDir() + "tlbmap_suite_manifest.json";
  std::remove(manifest_path.c_str());

  SuiteConfig config;
  config.apps = {"EP"};
  config.repetitions = 1;
  config.use_cache = false;
  config.workload.iter_scale = 0.2;
  config.detect_iter_scale = 1.0;
  config.parallel_workers = 1;  // deterministic interval-sample ordering
  config.metrics_interval_events = 50'000;
  config.manifest_out = manifest_path;

  obs::ObsContext ctx;
  ctx.level = obs::ObsLevel::kPhases;
  const SuiteResult result = run_suite(config, nullptr, &ctx);
  ASSERT_EQ(result.apps.size(), 1u);

  // The manifest landed (atomically: no .tmp sibling left behind) and holds
  // the schema fields CI and humans key on.
  ASSERT_TRUE(std::filesystem::exists(manifest_path));
  std::ifstream in(manifest_path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string manifest = buf.str();
  EXPECT_NE(manifest.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(manifest.find("\"command\": \"suite\""), std::string::npos);
  EXPECT_NE(manifest.find("\"config_hash\""), std::string::npos);
  EXPECT_NE(manifest.find("\"wall_seconds\""), std::string::npos);
  EXPECT_NE(manifest.find("\"max_rss_kb\""), std::string::npos);
  EXPECT_NE(manifest.find("\"phases\""), std::string::npos);
  EXPECT_NE(manifest.find("\"collapsed_sim_cycles\""), std::string::npos);
  EXPECT_NE(manifest.find("suite;detect;EP;SM"), std::string::npos);
  EXPECT_NE(manifest.find("\"cache_hit\": \"false\""), std::string::npos);
  bool tmp_left = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(testing::TempDir())) {
    const std::string name = entry.path().filename().string();
    if (name.find("tlbmap_suite_manifest") != std::string::npos &&
        name != "tlbmap_suite_manifest.json") {
      tmp_left = true;
    }
  }
  EXPECT_FALSE(tmp_left);

  // Interval telemetry flowed through the suite: interval samples from the
  // machines plus the three suite phase-boundary samples, in order.
  const auto samples = ctx.metrics.series().samples();
  ASSERT_FALSE(samples.empty());
  std::vector<std::string> suite_phases;
  for (const auto& s : samples) {
    if (s.reason.rfind("phase:suite.", 0) == 0) {
      suite_phases.push_back(s.reason);
    }
  }
  ASSERT_EQ(suite_phases.size(), 3u);
  EXPECT_EQ(suite_phases[0], "phase:suite.detect");
  EXPECT_EQ(suite_phases[1], "phase:suite.map");
  EXPECT_EQ(suite_phases[2], "phase:suite.evaluate");

  std::remove(manifest_path.c_str());
}

}  // namespace
}  // namespace tlbmap

// Tests for the experiment harness: metric extraction, summaries,
// serialization round-trips and cache keys.
#include <gtest/gtest.h>

#include "core/experiment.hpp"

namespace tlbmap {
namespace {

TEST(Experiment, MetricValues) {
  MachineStats s;
  s.execution_cycles = static_cast<Cycles>(kClockHz);  // exactly 1 second
  s.invalidations = 10;
  s.snoop_transactions = 20;
  s.l2_misses = 30;
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kTimeSeconds), 1.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kInvalidations), 10.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kSnoops), 20.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kL2Misses), 30.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kInvalidationsPerSec), 10.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kSnoopsPerSec), 20.0);
  EXPECT_DOUBLE_EQ(metric_value(s, Metric::kL2MissesPerSec), 30.0);
}

MappingRuns runs_with_cycles(std::initializer_list<Cycles> cycles) {
  MappingRuns r;
  r.label = "X";
  for (const Cycles c : cycles) {
    MachineStats s;
    s.execution_cycles = c;
    r.runs.push_back(s);
  }
  return r;
}

TEST(Experiment, SummarizeRuns) {
  const MappingRuns r = runs_with_cycles({100, 200, 300});
  const Summary s = summarize_runs(r, Metric::kTimeSeconds);
  EXPECT_EQ(s.n, 3u);
  EXPECT_NEAR(s.mean, cycles_to_seconds(200), 1e-15);
}

TEST(Experiment, NormalizedAgainstOs) {
  AppExperiment app;
  app.os_runs = runs_with_cycles({200, 200});
  app.sm_runs = runs_with_cycles({100, 100});
  EXPECT_DOUBLE_EQ(app.normalized(app.sm_runs, Metric::kTimeSeconds), 0.5);
}

TEST(Experiment, NormalizedZeroBaselineSafe) {
  AppExperiment app;
  app.os_runs = runs_with_cycles({0});
  app.sm_runs = runs_with_cycles({100});
  EXPECT_DOUBLE_EQ(app.normalized(app.sm_runs, Metric::kTimeSeconds), 1.0);
}

SuiteResult tiny_result() {
  SuiteResult result;
  AppExperiment app;
  app.app = "BT";
  app.sm_detection.mechanism = "SM";
  app.sm_detection.searches = 42;
  app.sm_detection.matrix = CommMatrix(4);
  app.sm_detection.matrix.add(0, 1, 7);
  app.sm_detection.stats.accesses = 1000;
  app.sm_detection.stats.tlb_misses = 10;
  app.hm_detection = app.sm_detection;
  app.hm_detection.mechanism = "HM";
  app.oracle_detection = app.sm_detection;
  app.oracle_detection.mechanism = "oracle";
  app.sm_mapping = {0, 1, 2, 3};
  app.hm_mapping = {3, 2, 1, 0};
  app.os_runs = runs_with_cycles({10, 20});
  app.os_runs.label = "OS";
  app.sm_runs = runs_with_cycles({5});
  app.sm_runs.label = "SM";
  app.hm_runs = runs_with_cycles({6});
  app.hm_runs.label = "HM";
  result.apps.push_back(app);
  return result;
}

TEST(Experiment, SerializationRoundTrip) {
  const SuiteResult original = tiny_result();
  const std::string text = serialize_suite(original);
  const auto restored = deserialize_suite(text, SuiteConfig{});
  ASSERT_TRUE(restored.has_value());
  ASSERT_EQ(restored->apps.size(), 1u);
  const AppExperiment& app = restored->apps[0];
  EXPECT_EQ(app.app, "BT");
  EXPECT_EQ(app.sm_detection.searches, 42u);
  EXPECT_EQ(app.sm_detection.matrix.at(0, 1), 7u);
  EXPECT_EQ(app.sm_detection.stats.accesses, 1000u);
  EXPECT_EQ(app.hm_mapping, (Mapping{3, 2, 1, 0}));
  EXPECT_EQ(app.os_runs.runs.size(), 2u);
  EXPECT_EQ(app.os_runs.label, "OS");
  EXPECT_EQ(app.sm_runs.runs[0].execution_cycles, 5u);
}

TEST(Experiment, DeserializeRejectsGarbage) {
  EXPECT_FALSE(deserialize_suite("not a suite", SuiteConfig{}).has_value());
  EXPECT_FALSE(deserialize_suite("", SuiteConfig{}).has_value());
  EXPECT_FALSE(
      deserialize_suite("tlbmap-suite 0\n1\n", SuiteConfig{}).has_value());
}

TEST(Experiment, DeserializeRejectsTruncated) {
  std::string text = serialize_suite(tiny_result());
  text.resize(text.size() / 2);
  EXPECT_FALSE(deserialize_suite(text, SuiteConfig{}).has_value());
}

TEST(Experiment, CacheKeyStableAndSensitive) {
  const SuiteConfig a;
  SuiteConfig b;
  EXPECT_EQ(suite_cache_key(a), suite_cache_key(b));
  b.repetitions += 1;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(b));
  SuiteConfig c;
  c.sm.sample_threshold = 55;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(c));
  SuiteConfig d;
  d.apps = {"BT"};
  EXPECT_NE(suite_cache_key(a), suite_cache_key(d));
  SuiteConfig e;
  e.machine.tlb.entries = 128;
  EXPECT_NE(suite_cache_key(a), suite_cache_key(e));
}

TEST(Experiment, RunSuiteSingleAppSmoke) {
  // A minimal end-to-end suite run: one app, tiny repetitions, no cache.
  SuiteConfig config;
  config.apps = {"EP"};
  config.repetitions = 1;
  config.use_cache = false;
  config.workload.iter_scale = 0.2;
  config.detect_iter_scale = 1.0;
  const SuiteResult result = run_suite(config);
  ASSERT_EQ(result.apps.size(), 1u);
  const AppExperiment& app = result.apps[0];
  EXPECT_EQ(app.app, "EP");
  EXPECT_EQ(app.os_runs.runs.size(), 1u);
  EXPECT_TRUE(is_valid_mapping(app.sm_mapping, 8));
  EXPECT_TRUE(is_valid_mapping(app.hm_mapping, 8));
  EXPECT_GT(app.sm_detection.stats.accesses, 0u);
}

}  // namespace
}  // namespace tlbmap

// Structural tests for the NPB-like workload generators: each kernel's
// page-sharing pattern must match its documented communication signature.
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "npb/workload.hpp"

namespace tlbmap {
namespace {

constexpr int kPageShift = 12;

/// Drains thread t's stream and returns the set of pages it touches.
std::set<PageNum> pages_touched(const Workload& w, ThreadId t,
                                std::uint64_t seed = 1) {
  std::set<PageNum> pages;
  const auto stream = w.stream(t, seed);
  for (;;) {
    const TraceEvent ev = stream->next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) {
      pages.insert(ev.access.addr >> kPageShift);
    }
  }
  return pages;
}

std::size_t overlap(const std::set<PageNum>& a, const std::set<PageNum>& b) {
  std::size_t n = 0;
  for (const PageNum p : a) n += b.contains(p) ? 1 : 0;
  return n;
}

WorkloadParams fast_params() {
  WorkloadParams p;
  p.size_scale = 0.25;   // keep the structure, shrink the drain time
  p.iter_scale = 0.2;
  return p;
}

std::vector<std::set<PageNum>> all_pages(const Workload& w) {
  std::vector<std::set<PageNum>> out;
  for (ThreadId t = 0; t < w.num_threads(); ++t) {
    out.push_back(pages_touched(w, t));
  }
  return out;
}

TEST(WorkloadRegistry, AllNinePresent) {
  EXPECT_EQ(npb_workload_names().size(), 9u);
  for (const std::string& name : npb_workload_names()) {
    const auto w = make_npb_workload(name);
    EXPECT_EQ(w->name(), name);
    EXPECT_EQ(w->num_threads(), 8);
    EXPECT_FALSE(w->description().empty());
  }
}

TEST(WorkloadRegistry, CaseInsensitive) {
  EXPECT_EQ(make_npb_workload("bt")->name(), "BT");
  EXPECT_EQ(make_npb_workload("Sp")->name(), "SP");
}

TEST(WorkloadRegistry, UnknownThrows) {
  EXPECT_THROW(make_npb_workload("DC"), std::invalid_argument);
  EXPECT_THROW(make_npb_workload(""), std::invalid_argument);
}

TEST(Workloads, AccessCountsMatchStreams) {
  for (const std::string& name : npb_workload_names()) {
    const auto w = make_npb_workload(name, fast_params());
    const auto stream = w->stream(0, 1);
    std::uint64_t accesses = 0;
    for (;;) {
      const TraceEvent ev = stream->next();
      if (ev.kind == TraceEvent::Kind::kEnd) break;
      if (ev.kind == TraceEvent::Kind::kAccess) ++accesses;
    }
    EXPECT_EQ(accesses, w->accesses_of(0)) << name;
    EXPECT_GT(accesses, 0u) << name;
  }
}

TEST(Workloads, StreamsDeterministicPerSeed) {
  for (const char* name : {"BT", "IS", "UA"}) {
    const auto w = make_npb_workload(name, fast_params());
    EXPECT_EQ(pages_touched(*w, 2, 5), pages_touched(*w, 2, 5)) << name;
  }
}

TEST(Workloads, DisjointAddressSpacesAcrossApps) {
  // Every workload allocates from its own arena at the same base; no check
  // across apps is meaningful, but within one app threads' *private* slabs
  // must be disjoint (verified per app below). Here: every thread touches
  // at least one page.
  for (const std::string& name : npb_workload_names()) {
    const auto w = make_npb_workload(name, fast_params());
    for (ThreadId t = 0; t < 8; ++t) {
      EXPECT_FALSE(pages_touched(*w, t).empty()) << name << " t" << t;
    }
  }
}

TEST(WorkloadBT, NeighbourHaloSharingOnly) {
  const auto w = make_npb_workload("BT", fast_params());
  const auto pages = all_pages(*w);
  for (int t = 0; t < 7; ++t) {
    EXPECT_GT(overlap(pages[t], pages[t + 1]), 0u) << "t" << t;
  }
  for (int t = 0; t < 8; ++t) {
    for (int o = t + 2; o < 8; ++o) {
      EXPECT_EQ(overlap(pages[t], pages[o]), 0u) << t << "," << o;
    }
  }
}

TEST(WorkloadSP, NeighbourHaloWiderThanBT) {
  const auto bt = make_npb_workload("BT", fast_params());
  const auto sp = make_npb_workload("SP", fast_params());
  const auto bt_pages = all_pages(*bt);
  const auto sp_pages = all_pages(*sp);
  // SP's halo planes are wider: the per-neighbour overlap (relative to the
  // slab size) is larger.
  const double bt_frac = static_cast<double>(overlap(bt_pages[3], bt_pages[4])) /
                         static_cast<double>(bt_pages[3].size());
  const double sp_frac = static_cast<double>(overlap(sp_pages[3], sp_pages[4])) /
                         static_cast<double>(sp_pages[3].size());
  EXPECT_GT(sp_frac, bt_frac);
}

TEST(WorkloadLU, PeriodicWrapAndPipeline) {
  const auto w = make_npb_workload("LU", fast_params());
  const auto pages = all_pages(*w);
  // Distant threads 0 and 7 share the periodic boundary...
  EXPECT_GT(overlap(pages[0], pages[7]), 0u);
  // ...and every pair shares at least the pipeline page.
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(overlap(pages[a], pages[b]), 0u) << a << "," << b;
    }
  }
}

TEST(WorkloadEP, OnlyReductionShared) {
  const auto w = make_npb_workload("EP", fast_params());
  const auto pages = all_pages(*w);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_LE(overlap(pages[a], pages[b]), 1u) << a << "," << b;
    }
  }
}

TEST(WorkloadFT, AllToAllTranspose) {
  const auto w = make_npb_workload("FT", fast_params());
  const auto pages = all_pages(*w);
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(overlap(pages[a], pages[b]), 0u) << a << "," << b;
    }
  }
}

TEST(WorkloadIS, CountExchangeIsGlobal) {
  const auto w = make_npb_workload("IS", fast_params());
  const auto pages = all_pages(*w);
  // Count pages: every thread reads all others' count pages.
  for (int a = 0; a < 8; ++a) {
    for (int b = a + 1; b < 8; ++b) {
      EXPECT_GT(overlap(pages[a], pages[b]), 0u) << a << "," << b;
    }
  }
  // Neighbour overlap is bigger than distant overlap (rank spill).
  EXPECT_GT(overlap(pages[3], pages[4]), overlap(pages[3], pages[6]));
}

TEST(WorkloadMG, MultiLevelNeighbourSharing) {
  const auto w = make_npb_workload("MG", WorkloadParams{8, 1.0, 0.2, 1});
  const auto pages = all_pages(*w);
  for (int t = 0; t < 7; ++t) {
    EXPECT_GT(overlap(pages[t], pages[t + 1]), 0u) << "t" << t;
  }
  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(overlap(pages[t], pages[t + 2]), 0u) << "t" << t;
  }
}

TEST(WorkloadCG, BandPlusReduction) {
  const auto w = make_npb_workload("CG", fast_params());
  const auto pages = all_pages(*w);
  // Neighbours share band pages + the reduction page; distant threads share
  // only the reduction page.
  EXPECT_GT(overlap(pages[2], pages[3]), 1u);
  EXPECT_EQ(overlap(pages[0], pages[5]), 1u);
}

TEST(WorkloadUA, HaloPlusRareGlobal) {
  const auto w = make_npb_workload("UA", fast_params());
  const auto pages = all_pages(*w);
  // Neighbours overlap on the halo pages. (The rare global reads can touch
  // any page, so no disjointness claim is possible for distant pairs.)
  EXPECT_GT(overlap(pages[3], pages[4]), 0u);
  // Thread 3 reads thread 4's leading halo: the first page of slab 4 is
  // deterministic (arena base 1<<32, slabs in thread order).
  const auto* pw = dynamic_cast<const ProgramWorkload*>(w.get());
  ASSERT_NE(pw, nullptr);
  bool reads_into_neighbour = false;
  for (const Phase& phase : pw->program(3).phases) {
    for (const Walk& walk : phase.walks) {
      // A walk whose region lies beyond thread 3's slab end reads the
      // neighbour's boundary.
      if (walk.mix == Walk::Mix::kRead && walk.length < 16 * kPageBytes &&
          pages[4].contains(walk.base >> kPageShift)) {
        reads_into_neighbour = true;
      }
    }
  }
  EXPECT_TRUE(reads_into_neighbour);
}

TEST(Workloads, SizeScaleGrowsFootprint) {
  WorkloadParams small = fast_params();
  WorkloadParams large = fast_params();
  large.size_scale = 0.5;
  const auto ws = make_npb_workload("BT", small);
  const auto wl = make_npb_workload("BT", large);
  EXPECT_GT(pages_touched(*wl, 0).size(), pages_touched(*ws, 0).size());
}

TEST(Workloads, IterScaleGrowsAccesses) {
  WorkloadParams once = fast_params();
  WorkloadParams twice = fast_params();
  twice.iter_scale = once.iter_scale * 2.0 + 0.2;
  const auto w1 = make_npb_workload("SP", once);
  const auto w2 = make_npb_workload("SP", twice);
  EXPECT_GT(w2->accesses_of(0), w1->accesses_of(0));
}

TEST(Workloads, ProgramStructureExposed) {
  const auto w = make_npb_workload("BT", fast_params());
  const auto* pw = dynamic_cast<const ProgramWorkload*>(w.get());
  ASSERT_NE(pw, nullptr);
  const AccessProgram prog = pw->program(0);
  EXPECT_GT(prog.phases.size(), 1u);
  EXPECT_GT(prog.iterations, 0u);
  EXPECT_GT(prog.total_barriers(), 0u);
}

TEST(WorkloadsRegion, SlabSplitsEvenly) {
  Arena arena;
  const Region r = arena.alloc_pages(16);
  const Region s0 = r.slab(0, 4);
  const Region s3 = r.slab(3, 4);
  EXPECT_EQ(s0.pages(), 4u);
  EXPECT_EQ(s3.pages(), 4u);
  EXPECT_EQ(s0.base, r.base);
  EXPECT_EQ(s3.base + s3.bytes, r.base + r.bytes);
}

TEST(WorkloadsRegion, SlabLastAbsorbsRemainder) {
  Arena arena;
  const Region r = arena.alloc_pages(10);
  EXPECT_EQ(r.slab(0, 3).pages(), 3u);
  EXPECT_EQ(r.slab(2, 3).pages(), 4u);
}

TEST(WorkloadsRegion, SlabRejectsTooManyThreads) {
  Arena arena;
  const Region r = arena.alloc_pages(2);
  EXPECT_THROW(r.slab(0, 3), std::invalid_argument);
}

TEST(WorkloadsRegion, FirstLastPagesClamped) {
  Arena arena;
  const Region r = arena.alloc_pages(3);
  EXPECT_EQ(r.first_pages(10).pages(), 3u);
  EXPECT_EQ(r.last_pages(1).base, r.base + 2 * kPageBytes);
}

TEST(WorkloadsRegion, ArenaRegionsDisjoint) {
  Arena arena;
  const Region a = arena.alloc_pages(4);
  const Region b = arena.alloc_pages(4);
  EXPECT_GE(b.base, a.base + a.bytes);
  EXPECT_THROW(arena.alloc_pages(0), std::invalid_argument);
}

TEST(WorkloadsRegion, SliceElems) {
  Arena arena;
  const Region r = arena.alloc_pages(1);
  const Region s = r.slice_elems(10, 5);
  EXPECT_EQ(s.base, r.base + 80);
  EXPECT_EQ(s.elems(), 5u);
  EXPECT_THROW(r.slice_elems(510, 5), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Scenario names (PR 10): multiprogrammed and phase-churn workloads ride
// the same factory as the nine kernels.

TEST(WorkloadRegistry, MultiprogramCoSchedulesApps) {
  WorkloadParams p = fast_params();
  p.num_threads = 4;
  const auto w = make_npb_workload("MP:SP+CG", p);
  // App-major thread ids: each app contributes its own num_threads.
  EXPECT_EQ(w->num_threads(), 8);
  // Per-app virtual address spaces are displaced: no cross-app sharing.
  EXPECT_EQ(overlap(pages_touched(*w, 0), pages_touched(*w, 4)), 0u);
  // Intra-app sharing survives the combination.
  const auto sp = make_npb_workload("SP", p);
  EXPECT_EQ(overlap(pages_touched(*w, 0), pages_touched(*w, 1)),
            overlap(pages_touched(*sp, 0), pages_touched(*sp, 1)));
}

TEST(WorkloadRegistry, MultiprogramSpecValidated) {
  EXPECT_THROW(make_npb_workload("MP:SP"), std::invalid_argument);
  EXPECT_THROW(make_npb_workload("MP:"), std::invalid_argument);
  EXPECT_THROW(make_npb_workload("MP:SP+"), std::invalid_argument);
  EXPECT_THROW(make_npb_workload("MP:SP+DC"), std::invalid_argument);
}

TEST(WorkloadRegistry, ChurnIsASeededPhaseFlipper) {
  WorkloadParams p = fast_params();
  const auto w = make_npb_workload("CHURN", p);
  EXPECT_EQ(w->num_threads(), p.num_threads);
  for (ThreadId t = 0; t < w->num_threads(); ++t) {
    EXPECT_FALSE(pages_touched(*w, t).empty()) << "t" << t;
  }
  // Same factory call, same streams (the schedule is seeded, not random).
  EXPECT_EQ(pages_touched(*w, 0), pages_touched(*make_npb_workload("CHURN", p), 0));
}

}  // namespace
}  // namespace tlbmap

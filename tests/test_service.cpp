// Tests for the mapping service (DESIGN.md Sec. 16): the StreamDetector and
// DecisionCache building blocks, the session lifecycle (admission ->
// backpressure -> quarantine / shedding), checkpoint/resume determinism,
// and the fault-isolation differential — one corrupted tenant must leave
// every surviving tenant's mapping decision *and* its evaluated
// MachineStats bit-identical to a run where the fault never happened.
#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/pipeline.hpp"
#include "detect/stream_detector.hpp"
#include "mapping/decision_cache.hpp"
#include "npb/workload.hpp"
#include "sim/trace_file.hpp"
#include "svc/service.hpp"

namespace tlbmap {
namespace {

using svc::MappingService;
using svc::QuarantineReport;
using svc::ServiceConfig;
using svc::Session;
using svc::SessionId;
using svc::SessionStatus;

// ---------------------------------------------------------------------------
// StreamDetector.

TEST(StreamDetector, ValidateRejectsBadShapes) {
  StreamDetectorConfig bad;
  bad.window_pages = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.sweep_every = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
  bad = {};
  bad.sweep_shards = 0;
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

// A fixed synthetic stream: threads 0/1 share pages 0..7, threads 2/3
// share pages 100..107, nothing crosses the pairs.
void feed_paired_pattern(StreamDetector& detector, int rounds) {
  for (int r = 0; r < rounds; ++r) {
    for (PageNum p = 0; p < 8; ++p) {
      detector.feed(0, p);
      detector.feed(1, p);
      detector.feed(2, 100 + p);
      detector.feed(3, 100 + p);
    }
  }
}

TEST(StreamDetector, SweepFindsSharedWindows) {
  StreamDetectorConfig config;
  config.window_pages = 16;
  config.sweep_every = 64;
  StreamDetector detector(4, config);
  feed_paired_pattern(detector, 8);
  detector.sweep();
  EXPECT_GT(detector.matrix().at(0, 1), 0u);
  EXPECT_GT(detector.matrix().at(2, 3), 0u);
  EXPECT_EQ(detector.matrix().at(0, 2), 0u);
  EXPECT_EQ(detector.matrix().at(1, 3), 0u);
  EXPECT_GT(detector.sweeps(), 0u);
  EXPECT_EQ(detector.events(), 8u * 8u * 4u);
}

TEST(StreamDetector, ShardCountNeverChangesTheMatrix) {
  CommMatrix reference{1};
  for (int shards : {1, 2, 4, 7}) {
    StreamDetectorConfig config;
    config.window_pages = 16;
    config.sweep_every = 64;
    config.sweep_shards = shards;
    StreamDetector detector(4, config);
    feed_paired_pattern(detector, 8);
    detector.sweep();
    if (shards == 1) {
      reference = detector.matrix();
    } else {
      EXPECT_EQ(detector.matrix(), reference) << "shards=" << shards;
    }
  }
}

TEST(StreamDetector, StateRestoreResumesBitIdentically) {
  StreamDetectorConfig config;
  config.window_pages = 8;
  config.sweep_every = 48;
  StreamDetector full(4, config);
  StreamDetector half(4, config);
  feed_paired_pattern(full, 3);
  feed_paired_pattern(half, 3);

  // Snapshot mid-stream, restore into a fresh detector, continue both.
  StreamDetector resumed(4, config);
  resumed.restore(half.state());
  feed_paired_pattern(full, 3);
  feed_paired_pattern(resumed, 3);
  full.sweep();
  resumed.sweep();
  EXPECT_EQ(full.state(), resumed.state());
  EXPECT_EQ(full.matrix(), resumed.matrix());
}

TEST(StreamDetector, RestoreRejectsShapeMismatch) {
  StreamDetector four(4);
  StreamDetector two(2);
  EXPECT_THROW(two.restore(four.state()), std::invalid_argument);
  EXPECT_THROW(four.feed(4, 0), std::invalid_argument);
  EXPECT_THROW(four.feed(-1, 0), std::invalid_argument);
  EXPECT_GT(four.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// DecisionCache.

CommMatrix paired_matrix(std::uint64_t strong, std::uint64_t weak) {
  CommMatrix m(4);
  m.add(0, 1, strong);
  m.add(2, 3, strong);
  m.add(0, 2, weak);
  m.add(1, 3, weak);
  return m;
}

TEST(DecisionCache, CachesUntilDrift) {
  Topology topology{MachineConfig::harpertown()};
  MappingConfig mapping_config;
  DecisionCacheConfig config;
  config.drift_threshold = 0.90;
  DecisionCache cache(config);
  EXPECT_FALSE(cache.has_decision());

  const CommMatrix m = paired_matrix(1000, 10);
  const auto first = cache.decide(m, topology, mapping_config);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  EXPECT_EQ(first->epoch, 1u);
  EXPECT_FALSE(first->degraded);
  EXPECT_EQ(cache.rematches(), 1u);

  // Identical matrix: served from the cache, no re-match.
  const auto again = cache.decide(m, topology, mapping_config);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->epoch, 1u);
  EXPECT_EQ(again->mapping, first->mapping);
  EXPECT_EQ(cache.rematches(), 1u);

  // Scaling every entry keeps the shape (cosine similarity 1): no drift.
  const auto scaled = cache.decide(paired_matrix(2000, 20), topology,
                                   mapping_config);
  ASSERT_TRUE(scaled.has_value());
  EXPECT_EQ(scaled->epoch, 1u);

  // Inverting the sharing structure drifts past any sane threshold.
  CommMatrix flipped(4);
  flipped.add(0, 2, 1000);
  flipped.add(1, 3, 1000);
  const auto refreshed = cache.decide(flipped, topology, mapping_config);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_EQ(refreshed->epoch, 2u);
  EXPECT_EQ(cache.rematches(), 2u);
}

TEST(DecisionCache, DegenerateInputDegradesButNeverOverwrites) {
  Topology topology{MachineConfig::harpertown()};
  MappingConfig mapping_config;
  DecisionCache cache;

  // Nothing cached yet: a degenerate matrix is a structured failure.
  const CommMatrix empty(4);
  const auto miss = cache.decide(empty, topology, mapping_config);
  ASSERT_FALSE(miss.has_value());
  EXPECT_EQ(miss.error().code, ErrorCode::kDegenerateMatrix);

  const auto good = cache.decide(paired_matrix(500, 5), topology,
                                 mapping_config);
  ASSERT_TRUE(good.has_value());

  // Degenerate input after a good decision: stale placement, flagged.
  const auto degraded = cache.decide(empty, topology, mapping_config);
  ASSERT_TRUE(degraded.has_value());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->epoch, good->epoch);
  EXPECT_EQ(degraded->mapping, good->mapping);
  EXPECT_EQ(cache.degraded_serves(), 1u);
}

TEST(DecisionCache, DegradedThenRecoveredResumesCleanService) {
  // The full outage arc (PR 10 satellite): good signal -> degenerate
  // stretch served degraded from the stale cache -> signal returns and the
  // very next read is clean again, re-matching only if the shape moved.
  Topology topology{MachineConfig::harpertown()};
  MappingConfig mapping_config;
  DecisionCache cache;

  const auto good = cache.decide(paired_matrix(500, 5), topology,
                                 mapping_config);
  ASSERT_TRUE(good.has_value());
  const std::uint64_t epoch = good->epoch;

  // Degraded stretch: every read serves the stale placement, flagged.
  const CommMatrix empty(4);
  for (int i = 0; i < 3; ++i) {
    const auto degraded = cache.decide(empty, topology, mapping_config);
    ASSERT_TRUE(degraded.has_value());
    EXPECT_TRUE(degraded->degraded);
    EXPECT_EQ(degraded->epoch, epoch);
    EXPECT_EQ(degraded->mapping, good->mapping);
  }
  EXPECT_EQ(cache.degraded_serves(), 3u);
  EXPECT_EQ(cache.rematches(), 1u);

  // Recovery with the same shape: clean serve, no re-match, epoch holds.
  const auto recovered = cache.decide(paired_matrix(500, 5), topology,
                                      mapping_config);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_FALSE(recovered->degraded);
  EXPECT_EQ(recovered->epoch, epoch);
  EXPECT_EQ(cache.rematches(), 1u);

  // Recovery into a *different* shape: the first clean read re-matches.
  CommMatrix flipped(4);
  flipped.add(0, 2, 800);
  flipped.add(1, 3, 800);
  const auto refreshed = cache.decide(flipped, topology, mapping_config);
  ASSERT_TRUE(refreshed.has_value());
  EXPECT_FALSE(refreshed->degraded);
  EXPECT_EQ(refreshed->epoch, epoch + 1);
  EXPECT_EQ(cache.rematches(), 2u);
  // The degraded tally is history, not live state: it never resets.
  EXPECT_EQ(cache.degraded_serves(), 3u);
}

TEST(DecisionCache, SaturatedMatrixIsStructural) {
  Topology topology{MachineConfig::harpertown()};
  MappingConfig mapping_config;
  DecisionCache cache;
  CommMatrix pinned(4);
  pinned.add(0, 1, CommMatrix::kCounterMax);
  pinned.add(2, 3, 7);
  const auto r = cache.decide(pinned, topology, mapping_config);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kSaturatedMatrix);
}

TEST(DecisionCache, StateRoundTrips) {
  Topology topology{MachineConfig::harpertown()};
  MappingConfig mapping_config;
  DecisionCache cache;
  ASSERT_TRUE(cache.decide(paired_matrix(100, 1), topology, mapping_config)
                  .has_value());
  DecisionCache copy;
  copy.restore(cache.state());
  EXPECT_EQ(copy.state(), cache.state());
  EXPECT_EQ(copy.epoch(), cache.epoch());
  const auto served = copy.decide(paired_matrix(100, 1), topology,
                                  mapping_config);
  ASSERT_TRUE(served.has_value());
  EXPECT_EQ(served->epoch, cache.epoch());
  EXPECT_GT(cache.memory_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Service lifecycle. Tenants stream small recorded NPB workloads.

constexpr int kThreads = 4;

ServiceConfig small_service_config() {
  ServiceConfig config;
  config.detector.window_pages = 32;
  config.detector.sweep_every = 512;
  return config;
}

std::vector<std::vector<std::uint8_t>> record_tenant(std::uint64_t seed) {
  WorkloadParams params;
  params.num_threads = kThreads;
  params.size_scale = 0.1;
  params.iter_scale = 0.1;
  return record_workload(*make_npb_workload("CG", params), seed);
}

/// Deterministically corrupts one buffer mid-stream: 0x04 is not a valid
/// record header (access bit clear, nonzero), so decoding must trip
/// kMalformedTrace at a stable byte offset.
void corrupt_buffer(std::vector<std::uint8_t>& bytes) {
  const std::size_t at = bytes.size() / 2;
  for (std::size_t i = 0; i < 8 && at + i < bytes.size(); ++i) {
    bytes[at + i] = 0x04;
  }
}

/// Feeds every tenant's buffers chunk by chunk, one chunk per thread per
/// tick, pumping between rounds — the serve driver's loop in miniature.
/// Backpressured chunks retry next tick; dead sessions are skipped.
void drain_all(MappingService& service, const std::vector<SessionId>& ids,
               const std::vector<std::vector<std::vector<std::uint8_t>>>& data,
               std::size_t chunk = 512) {
  std::vector<std::vector<std::size_t>> cursor(ids.size());
  for (std::size_t k = 0; k < ids.size(); ++k) {
    cursor[k].assign(data[k].size(), 0);
  }
  for (int guard = 0; guard < 200000; ++guard) {
    bool all_done = true;
    for (std::size_t k = 0; k < ids.size(); ++k) {
      const Session* session = service.find(ids[k]);
      if (session == nullptr || session->status() == SessionStatus::kQuarantined ||
          session->status() == SessionStatus::kShed) {
        continue;
      }
      for (ThreadId t = 0; t < static_cast<ThreadId>(data[k].size()); ++t) {
        const std::vector<std::uint8_t>& buffer = data[k][t];
        std::size_t& pos = cursor[k][t];
        if (pos >= buffer.size()) continue;
        all_done = false;
        const std::size_t n = std::min(chunk, buffer.size() - pos);
        const auto r = service.ingest(ids[k], t, buffer.data() + pos, n);
        if (r.has_value()) {
          pos += n;
        } else if (r.error().code != ErrorCode::kBackpressure) {
          break;  // quarantined mid-loop; stop feeding this tenant
        }
      }
      if (session->status() == SessionStatus::kActive) all_done = false;
    }
    service.pump();
    if (all_done) {
      bool settled = true;
      for (const SessionId id : ids) {
        const Session* session = service.find(id);
        if (session != nullptr && session->status() == SessionStatus::kActive) {
          settled = false;
        }
      }
      if (settled) return;
    }
  }
  FAIL() << "drain_all did not settle";
}

TEST(MappingService, AdmissionControlRejectsBeforeDegrading) {
  ServiceConfig config = small_service_config();
  config.max_sessions = 2;
  MappingService service(config);

  const auto a = service.open_session("a", kThreads);
  const auto b = service.open_session("b", kThreads);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_NE(*a, *b);

  // Third tenant: refused at the cap, existing sessions untouched.
  const auto c = service.open_session("c", kThreads);
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.error().code, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(service.sessions_rejected(), 1u);
  EXPECT_EQ(service.live_sessions(), 2u);
  EXPECT_EQ(service.find(*a)->status(), SessionStatus::kActive);

  // Bad thread counts are usage errors, not admission pressure.
  EXPECT_EQ(service.open_session("d", 0).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.open_session("d", 10000).error().code,
            ErrorCode::kInvalidArgument);

  // Closing frees the slot.
  ASSERT_TRUE(service.close_session(*a).has_value());
  EXPECT_TRUE(service.open_session("c", kThreads).has_value());
  EXPECT_FALSE(service.close_session(9999).has_value());
}

TEST(MappingService, MemoryBudgetsRefuseUnfittableSessions) {
  // Measure one session's fixed footprint (detector + cache, empty queues)
  // so the budgets below can be sized right at the edge.
  MappingService probe(small_service_config());
  ASSERT_TRUE(probe.open_session("probe", kThreads).has_value());
  const std::size_t fixed = probe.memory_bytes();
  ASSERT_GT(fixed, 0u);

  // Per-session budget that cannot hold the fixed state plus a full queue:
  // refused before the service holds any state for the tenant.
  ServiceConfig tight = small_service_config();
  tight.session.queue_bytes = 1024;
  tight.session.budget_bytes = std::max<std::size_t>(fixed, 1024);
  tight.total_budget_bytes = tight.session.budget_bytes;
  MappingService service(tight);
  const auto r = service.open_session("a", kThreads);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.error().code, ErrorCode::kAdmissionRejected);
  EXPECT_EQ(service.total_sessions(), 0u);
  EXPECT_EQ(service.memory_bytes(), 0u);

  // Fleet budget that fits exactly one session's worst case: the second
  // tenant is refused while the first keeps running untouched.
  ServiceConfig fleet = small_service_config();
  fleet.session.queue_bytes = 1024;
  fleet.session.budget_bytes = fixed + 2048;
  fleet.total_budget_bytes = fleet.session.budget_bytes;
  MappingService pair(fleet);
  const auto first = pair.open_session("a", kThreads);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  const auto second = pair.open_session("b", kThreads);
  ASSERT_FALSE(second.has_value());
  EXPECT_EQ(second.error().code, ErrorCode::kAdmissionRejected);
  EXPECT_NE(second.error().message.find("reject-new"), std::string::npos);
  EXPECT_EQ(pair.find(*first)->status(), SessionStatus::kActive);
  EXPECT_EQ(pair.live_sessions(), 1u);
}

TEST(MappingService, BackpressureIsAllOrNothing) {
  ServiceConfig config = small_service_config();
  config.session.queue_bytes = 256;
  MappingService service(config);
  const SessionId id = *service.open_session("a", kThreads);
  const auto buffers = record_tenant(/*seed=*/11);

  // Fill the queue to the brim...
  ASSERT_TRUE(service.ingest(id, 0, buffers[0].data(), 256).has_value());
  const std::size_t queued = service.find(id)->queued_bytes();
  EXPECT_EQ(queued, 256u);

  // ...then one more byte must be refused whole, taking nothing.
  const auto refused = service.ingest(id, 1, buffers[1].data(), 64);
  ASSERT_FALSE(refused.has_value());
  EXPECT_EQ(refused.error().code, ErrorCode::kBackpressure);
  EXPECT_EQ(service.find(id)->queued_bytes(), queued);
  EXPECT_EQ(service.backpressure_signals(), 1u);

  // A pump drains the queue; the refused chunk then fits.
  service.pump();
  EXPECT_LT(service.find(id)->queued_bytes(), queued);
  EXPECT_TRUE(service.ingest(id, 1, buffers[1].data(), 64).has_value());

  // Unknown thread: a usage error, and no quarantine.
  EXPECT_EQ(service.ingest(id, kThreads, buffers[0].data(), 8).error().code,
            ErrorCode::kInvalidArgument);
  EXPECT_EQ(service.find(id)->status(), SessionStatus::kActive);
}

TEST(MappingService, DeadlineBoundsPerPumpWork) {
  ServiceConfig config = small_service_config();
  config.session.deadline_events = 64;
  config.session.queue_bytes = 64 * 1024;
  MappingService service(config);
  const SessionId id = *service.open_session("a", kThreads);
  const auto buffers = record_tenant(/*seed=*/12);
  for (ThreadId t = 0; t < kThreads; ++t) {
    const std::size_t n = std::min<std::size_t>(buffers[t].size(), 8 * 1024);
    ASSERT_TRUE(service.ingest(id, t, buffers[t].data(), n).has_value());
  }
  const std::uint64_t events = service.pump();
  EXPECT_GT(events, 0u);
  EXPECT_LE(events, 64u);
  EXPECT_EQ(service.find(id)->events_processed(), events);
}

TEST(MappingService, CorruptStreamQuarantinesWithStructuredReason) {
  MappingService service(small_service_config());
  const SessionId id = *service.open_session("acme", kThreads);
  auto buffers = record_tenant(/*seed=*/13);
  corrupt_buffer(buffers[2]);
  drain_all(service, {id}, {buffers});

  const Session* session = service.find(id);
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->status(), SessionStatus::kQuarantined);
  const svc::QuarantineReason& reason = session->quarantine_reason();
  EXPECT_EQ(reason.code, ErrorCode::kMalformedTrace);
  EXPECT_EQ(reason.thread, 2);
  EXPECT_NE(reason.message.find("at byte"), std::string::npos);
  EXPECT_EQ(service.sessions_quarantined(), 1u);

  // Quarantine drops the queues (memory back to the fleet) and fences the
  // session off from every verb.
  EXPECT_EQ(session->queued_bytes(), 0u);
  EXPECT_EQ(service.ingest(id, 0, buffers[0].data(), 8).error().code,
            ErrorCode::kSessionQuarantined);
  EXPECT_EQ(service.decision(id).error().code,
            ErrorCode::kSessionQuarantined);

  const std::vector<QuarantineReport> reports = service.quarantine_reports();
  ASSERT_EQ(reports.size(), 1u);
  EXPECT_EQ(reports[0].id, id);
  EXPECT_EQ(reports[0].tenant, "acme");
  EXPECT_EQ(reports[0].reason, reason);
}

TEST(MappingService, TrailingBytesAfterEndMarkerAreCorruption) {
  MappingService service(small_service_config());
  const SessionId id = *service.open_session("a", kThreads);
  const auto buffers = record_tenant(/*seed=*/14);
  drain_all(service, {id}, {buffers});
  ASSERT_EQ(service.find(id)->status(), SessionStatus::kComplete);

  // The stream ended; more bytes on any thread is stream corruption.
  const std::uint8_t extra[4] = {0x00, 0x00, 0x00, 0x00};
  const auto r = service.ingest(id, 0, extra, sizeof extra);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(service.find(id)->status(), SessionStatus::kQuarantined);
  EXPECT_EQ(service.find(id)->quarantine_reason().code,
            ErrorCode::kCorruptTrace);
  EXPECT_NE(service.find(id)->quarantine_reason().message.find(
                "trailing bytes"),
            std::string::npos);
}

TEST(MappingService, CompletedSessionServesCachedDecisions) {
  MappingService service(small_service_config());
  const SessionId id = *service.open_session("a", kThreads);
  drain_all(service, {id}, {record_tenant(/*seed=*/15)});
  ASSERT_EQ(service.find(id)->status(), SessionStatus::kComplete);

  const auto first = service.decision(id);
  ASSERT_TRUE(first.has_value()) << first.error().message;
  EXPECT_EQ(static_cast<int>(first->mapping.size()), kThreads);
  EXPECT_GE(first->epoch, 1u);

  // Nothing new arrived: the second read must be the cached placement.
  const auto second = service.decision(id);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
}

TEST(MappingService, TightenedBudgetShedsNewestFirst) {
  ServiceConfig config = small_service_config();
  MappingService service(config);
  const SessionId a = *service.open_session("old", kThreads);
  const SessionId b = *service.open_session("mid", kThreads);
  const SessionId c = *service.open_session("new", kThreads);
  ASSERT_LT(a, b);
  ASSERT_LT(b, c);

  // One live session's fixed state sits well above zero; squeeze until only
  // the oldest fits. Shedding must walk newest-admitted-first.
  const std::size_t per_session = service.memory_bytes() / 3;
  service.set_total_budget_bytes(per_session + per_session / 2);
  EXPECT_EQ(service.find(a)->status(), SessionStatus::kActive);
  EXPECT_EQ(service.find(b)->status(), SessionStatus::kShed);
  EXPECT_EQ(service.find(c)->status(), SessionStatus::kShed);
  EXPECT_EQ(service.sessions_shed(), 2u);
  EXPECT_LE(service.memory_bytes(), per_session + per_session / 2);

  // Shed sessions surface in the structured report alongside quarantines.
  const auto reports = service.quarantine_reports();
  ASSERT_EQ(reports.size(), 2u);
  EXPECT_EQ(reports[0].status, SessionStatus::kShed);
  EXPECT_EQ(reports[0].id, b);
  EXPECT_EQ(reports[1].id, c);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume.

TEST(MappingService, CheckpointResumeIsBitIdentical) {
  const auto buffers = record_tenant(/*seed=*/21);

  // Reference: one service, fed start to finish.
  MappingService reference(small_service_config());
  const SessionId ref_id = *reference.open_session("t", kThreads);
  drain_all(reference, {ref_id}, {buffers});
  const auto ref_decision = reference.decision(ref_id);
  ASSERT_TRUE(ref_decision.has_value()) << ref_decision.error().message;

  // Interrupted: feed a prefix, seal, restore into a fresh service, feed
  // the rest. Mapping, epoch, event counts and detector state must match.
  MappingService first(small_service_config());
  const SessionId id = *first.open_session("t", kThreads);
  std::vector<std::size_t> cursor(kThreads, 0);
  for (int round = 0; round < 20; ++round) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      if (cursor[t] >= buffers[t].size()) continue;
      const std::size_t n =
          std::min<std::size_t>(512, buffers[t].size() - cursor[t]);
      if (first.ingest(id, t, buffers[t].data() + cursor[t], n).has_value()) {
        cursor[t] += n;
      }
    }
    first.pump();
  }
  const std::string sealed = first.serialize("feeder-extra");

  MappingService resumed(small_service_config());
  const auto extra = resumed.restore(sealed);
  ASSERT_TRUE(extra.has_value()) << extra.error().message;
  EXPECT_EQ(*extra, "feeder-extra");
  EXPECT_EQ(resumed.tick(), first.tick());
  ASSERT_NE(resumed.find(id), nullptr);
  EXPECT_EQ(resumed.find(id)->state(), first.find(id)->state());

  // Continue feeding the resumed service from the recorded cursors.
  std::vector<std::vector<std::size_t>> rest_cursor{cursor};
  std::vector<std::vector<std::vector<std::uint8_t>>> rest_data{buffers};
  for (int guard = 0; guard < 200000; ++guard) {
    bool done = true;
    for (ThreadId t = 0; t < kThreads; ++t) {
      std::size_t& pos = rest_cursor[0][t];
      if (pos >= buffers[t].size()) continue;
      done = false;
      const std::size_t n =
          std::min<std::size_t>(512, buffers[t].size() - pos);
      if (resumed.ingest(id, t, buffers[t].data() + pos, n).has_value()) {
        pos += n;
      }
    }
    resumed.pump();
    if (done && resumed.find(id)->status() != SessionStatus::kActive) break;
  }
  ASSERT_EQ(resumed.find(id)->status(), SessionStatus::kComplete);

  const auto decision = resumed.decision(id);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->mapping, ref_decision->mapping);
  EXPECT_EQ(decision->epoch, ref_decision->epoch);
  EXPECT_EQ(resumed.find(id)->events_processed(),
            reference.find(ref_id)->events_processed());
  EXPECT_EQ(resumed.find(id)->detector().matrix(),
            reference.find(ref_id)->detector().matrix());
}

TEST(MappingService, RestoreRejectsDamageAndConfigSkew) {
  MappingService service(small_service_config());
  const SessionId id = *service.open_session("t", kThreads);
  const auto buffers = record_tenant(/*seed=*/22);
  ASSERT_TRUE(service.ingest(id, 0, buffers[0].data(), 512).has_value());
  service.pump();
  std::string sealed = service.serialize();

  // Flipped payload byte: the envelope must catch it.
  std::string damaged = sealed;
  damaged[damaged.size() / 2] ^= 0x40;
  MappingService fresh(small_service_config());
  const auto corrupt = fresh.restore(damaged);
  ASSERT_FALSE(corrupt.has_value());
  EXPECT_EQ(corrupt.error().code, ErrorCode::kCorruptCheckpoint);

  // A differently shaped service must refuse the snapshot outright.
  ServiceConfig other = small_service_config();
  other.detector.sweep_every = 1024;
  MappingService skewed(other);
  const auto mismatch = skewed.restore(sealed);
  ASSERT_FALSE(mismatch.has_value());
  EXPECT_EQ(mismatch.error().code, ErrorCode::kCheckpointMismatch);
}

TEST(MappingService, SaveLoadRoundTripsThroughFiles) {
  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "tlbmap_service_test.ckpt";
  MappingService service(small_service_config());
  const SessionId id = *service.open_session("t", kThreads);
  const auto buffers = record_tenant(/*seed=*/23);
  ASSERT_TRUE(service.ingest(id, 0, buffers[0].data(), 256).has_value());
  service.pump();
  ASSERT_TRUE(service.save(path, "blob").has_value());

  MappingService loaded(small_service_config());
  const auto extra = loaded.load(path);
  ASSERT_TRUE(extra.has_value()) << extra.error().message;
  EXPECT_EQ(*extra, "blob");
  EXPECT_EQ(loaded.find(id)->state(), service.find(id)->state());
  std::filesystem::remove(path);

  EXPECT_FALSE(
      loaded.load(path.parent_path() / "does_not_exist.ckpt").has_value());
}

// ---------------------------------------------------------------------------
// The fault-isolation differential (the Sec. 16 acceptance criterion): with
// one tenant's stream corrupted, exactly that session is quarantined, and
// every surviving tenant's mapping decision AND its evaluated MachineStats
// are bit-identical to a run where the faulty neighbour streamed cleanly.

TEST(MappingService, FaultIsolationDifferential) {
  std::vector<std::vector<std::vector<std::uint8_t>>> clean;
  for (std::uint64_t k = 0; k < 3; ++k) {
    clean.push_back(record_tenant(/*seed=*/31 + k));
  }
  std::vector<std::vector<std::vector<std::uint8_t>>> faulty = clean;
  corrupt_buffer(faulty[1][0]);

  const auto run = [](const std::vector<std::vector<std::vector<std::uint8_t>>>&
                          data) {
    auto service = std::make_unique<MappingService>(small_service_config());
    std::vector<SessionId> ids;
    for (std::size_t k = 0; k < data.size(); ++k) {
      ids.push_back(*service->open_session("tenant-" + std::to_string(k),
                                           kThreads));
    }
    drain_all(*service, ids, data);
    return std::make_pair(std::move(service), ids);
  };

  auto [with_fault, fault_ids] = run(faulty);
  auto [without_fault, clean_ids] = run(clean);

  // Exactly the corrupted tenant is quarantined; nobody else.
  EXPECT_EQ(with_fault->find(fault_ids[0])->status(), SessionStatus::kComplete);
  EXPECT_EQ(with_fault->find(fault_ids[1])->status(),
            SessionStatus::kQuarantined);
  EXPECT_EQ(with_fault->find(fault_ids[2])->status(), SessionStatus::kComplete);
  EXPECT_EQ(with_fault->sessions_quarantined(), 1u);
  EXPECT_EQ(without_fault->sessions_quarantined(), 0u);

  Pipeline pipeline{MachineConfig::harpertown()};
  for (const std::size_t k : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE("tenant " + std::to_string(k));
    const Session* survivor = with_fault->find(fault_ids[k]);
    const Session* baseline = without_fault->find(clean_ids[k]);

    // The survivor decoded exactly the same stream either way.
    EXPECT_EQ(survivor->events_processed(), baseline->events_processed());
    EXPECT_EQ(survivor->barriers_seen(), baseline->barriers_seen());
    EXPECT_EQ(survivor->detector().matrix(), baseline->detector().matrix());

    const auto a = with_fault->decision(fault_ids[k]);
    const auto b = without_fault->decision(clean_ids[k]);
    ASSERT_TRUE(a.has_value()) << a.error().message;
    ASSERT_TRUE(b.has_value()) << b.error().message;
    EXPECT_EQ(a->mapping, b->mapping);
    EXPECT_EQ(a->epoch, b->epoch);
    EXPECT_EQ(a->degraded, b->degraded);

    // And the decisions evaluate to bit-identical machine statistics.
    RecordedWorkload workload_a{clean[k]};
    RecordedWorkload workload_b{clean[k]};
    const MachineStats stats_a =
        pipeline.evaluate(workload_a, a->mapping, /*seed=*/1);
    const MachineStats stats_b =
        pipeline.evaluate(workload_b, b->mapping, /*seed=*/1);
    EXPECT_EQ(stats_a, stats_b);
  }
}

}  // namespace
}  // namespace tlbmap

// Tests for the event-driven machine: clocks, barriers, observer hooks,
// mapping validation and determinism.
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace tlbmap {
namespace {

/// Canned stream fed from a vector of events.
class VectorStream final : public ThreadStream {
 public:
  explicit VectorStream(std::vector<TraceEvent> events)
      : events_(std::move(events)) {}

  TraceEvent next() override {
    if (pos_ >= events_.size()) return TraceEvent::make_end();
    return events_[pos_++];
  }

 private:
  std::vector<TraceEvent> events_;
  std::size_t pos_ = 0;
};

std::vector<std::unique_ptr<ThreadStream>> streams_of(
    std::vector<std::vector<TraceEvent>> events) {
  std::vector<std::unique_ptr<ThreadStream>> out;
  for (auto& e : events) {
    out.push_back(std::make_unique<VectorStream>(std::move(e)));
  }
  return out;
}

TraceEvent read_at(VirtAddr addr, std::uint32_t gap = 0) {
  return TraceEvent::make_access(addr, AccessType::kRead, gap);
}
TraceEvent write_at(VirtAddr addr, std::uint32_t gap = 0) {
  return TraceEvent::make_access(addr, AccessType::kWrite, gap);
}

Machine::RunConfig identity_run(int n) {
  Machine::RunConfig cfg;
  for (int t = 0; t < n; ++t) cfg.thread_to_core.push_back(t);
  return cfg;
}

TEST(Machine, EmptyRunFinishesAtZero) {
  Machine m(MachineConfig::tiny());
  const MachineStats stats =
      m.run(streams_of({{}, {}}), identity_run(2));
  EXPECT_EQ(stats.execution_cycles, 0u);
  EXPECT_EQ(stats.accesses, 0u);
}

TEST(Machine, SingleAccessCounted) {
  Machine m(MachineConfig::tiny());
  const MachineStats stats =
      m.run(streams_of({{read_at(64)}}), identity_run(1));
  EXPECT_EQ(stats.accesses, 1u);
  EXPECT_EQ(stats.reads, 1u);
  EXPECT_EQ(stats.tlb_misses, 1u);  // cold TLB
  EXPECT_GT(stats.execution_cycles, 0u);
}

TEST(Machine, ComputeGapAddsCycles) {
  Machine m(MachineConfig::tiny());
  const MachineStats without =
      m.run(streams_of({{read_at(64, 0)}}), identity_run(1));
  const MachineStats with_gap =
      m.run(streams_of({{read_at(64, 100)}}), identity_run(1));
  EXPECT_EQ(with_gap.execution_cycles, without.execution_cycles + 100);
}

TEST(Machine, ExecutionTimeIsMaxThreadClock) {
  Machine m(MachineConfig::tiny());
  // Thread 1 has far more work; the run must end at its clock.
  std::vector<TraceEvent> heavy;
  for (int i = 0; i < 50; ++i) heavy.push_back(read_at(64, 10));
  const MachineStats both = m.run(
      streams_of({{read_at(0)}, heavy}), identity_run(2));
  const MachineStats solo_heavy = m.run(
      streams_of({heavy, {}}), identity_run(2));
  EXPECT_EQ(both.execution_cycles, solo_heavy.execution_cycles);
}

TEST(Machine, BarrierSynchronisesClocks) {
  MachineConfig cfg = MachineConfig::tiny();
  Machine m(cfg);
  Machine::RunConfig run = identity_run(2);
  run.barrier_latency = 1000;
  // Thread 0: quick access, barrier, quick access.
  // Thread 1: slow access (big gap), barrier, quick access.
  const MachineStats stats = m.run(
      streams_of({
          {read_at(0, 0), TraceEvent::make_barrier(), read_at(64, 0)},
          {read_at(4096, 5000), TraceEvent::make_barrier(),
           read_at(8192, 0)},
      }),
      run);
  // Finish >= slow thread's pre-barrier time + barrier + its last access.
  EXPECT_GT(stats.execution_cycles, 5000u + 1000u);
}

TEST(Machine, BarrierWithFinishedThreadReleases) {
  Machine m(MachineConfig::tiny());
  // Thread 0 ends immediately; thread 1 hits a barrier afterwards — the
  // barrier must release (only live threads are counted) and the run ends.
  const MachineStats stats = m.run(
      streams_of({
          {},
          {read_at(0), TraceEvent::make_barrier(), read_at(64)},
      }),
      identity_run(2));
  EXPECT_EQ(stats.accesses, 2u);
}

TEST(Machine, ConsecutiveBarriersWork) {
  Machine m(MachineConfig::tiny());
  const MachineStats stats = m.run(
      streams_of({
          {TraceEvent::make_barrier(), TraceEvent::make_barrier(),
           read_at(0)},
          {TraceEvent::make_barrier(), TraceEvent::make_barrier(),
           read_at(64)},
      }),
      identity_run(2));
  EXPECT_EQ(stats.accesses, 2u);
}

TEST(Machine, RejectsMappingSizeMismatch) {
  Machine m(MachineConfig::tiny());
  Machine::RunConfig run;
  run.thread_to_core = {0};  // 1 core for 2 threads
  EXPECT_THROW(m.run(streams_of({{}, {}}), run), std::invalid_argument);
}

TEST(Machine, RejectsDuplicateCores) {
  Machine m(MachineConfig::tiny());
  Machine::RunConfig run;
  run.thread_to_core = {0, 0};
  EXPECT_THROW(m.run(streams_of({{}, {}}), run), std::invalid_argument);
}

TEST(Machine, RejectsOutOfRangeCore) {
  Machine m(MachineConfig::tiny());
  Machine::RunConfig run;
  run.thread_to_core = {0, 9};
  EXPECT_THROW(m.run(streams_of({{}, {}}), run), std::invalid_argument);
}

TEST(Machine, ThreadOnReflectsMapping) {
  Machine m(MachineConfig::tiny());
  Machine::RunConfig run;
  run.thread_to_core = {1, 0};  // swapped

  class PlacementCheck final : public MachineObserver {
   public:
    explicit PlacementCheck(Machine& m) : machine_(&m) {}
    Cycles on_access(ThreadId thread, CoreId core, VirtAddr, PageNum,
                     AccessType, bool, Cycles) override {
      EXPECT_EQ(machine_->thread_on(core), thread);
      ++calls;
      return 0;
    }
    Cycles on_tick(Cycles) override { return 0; }
    int calls = 0;

   private:
    Machine* machine_;
  } check(m);

  run.observer = &check;
  m.run(streams_of({{read_at(0)}, {read_at(4096)}}), run);
  EXPECT_EQ(check.calls, 2);
  EXPECT_EQ(m.thread_on(1), 0);
  EXPECT_EQ(m.thread_on(0), 1);
}

TEST(Machine, ObserverLocalOverheadChargedToThread) {
  Machine m(MachineConfig::tiny());

  class Charger final : public MachineObserver {
   public:
    Cycles on_access(ThreadId, CoreId, VirtAddr, PageNum, AccessType, bool,
                     Cycles) override {
      return 500;
    }
    Cycles on_tick(Cycles) override { return 0; }
  } charger;

  Machine::RunConfig with = identity_run(1);
  with.observer = &charger;
  const MachineStats charged =
      m.run(streams_of({{read_at(0), read_at(0)}}), with);
  const MachineStats plain =
      m.run(streams_of({{read_at(0), read_at(0)}}), identity_run(1));
  EXPECT_EQ(charged.execution_cycles, plain.execution_cycles + 2 * 500);
  EXPECT_EQ(charged.detection_overhead_cycles, 1000u);
}

TEST(Machine, ObserverGlobalStallChargedToAll) {
  Machine m(MachineConfig::tiny());

  class GlobalStall final : public MachineObserver {
   public:
    Cycles on_access(ThreadId, CoreId, VirtAddr, PageNum, AccessType, bool,
                     Cycles) override {
      return 0;
    }
    Cycles on_tick(Cycles) override {
      if (fired_) return 0;
      fired_ = true;
      return 10'000;
    }

   private:
    bool fired_ = false;
  } stall;

  Machine::RunConfig with = identity_run(2);
  with.observer = &stall;
  const MachineStats charged = m.run(
      streams_of({{read_at(0)}, {read_at(4096)}}), with);
  const MachineStats plain = m.run(
      streams_of({{read_at(0)}, {read_at(4096)}}), identity_run(2));
  EXPECT_EQ(charged.execution_cycles, plain.execution_cycles + 10'000);
  EXPECT_EQ(charged.detection_overhead_cycles, 10'000u);
}

TEST(Machine, BarrierWaitAbsorbsGlobalStallOverhead) {
  Machine m(MachineConfig::tiny());

  // Fires a global stall on two specific ticks: #5, while thread 0 waits at
  // the barrier and thread 1 runs, and #9, while thread 0 runs alone after
  // thread 1 finished.
  class TimedStall final : public MachineObserver {
   public:
    Cycles on_access(ThreadId, CoreId, VirtAddr, PageNum, AccessType, bool,
                     Cycles) override {
      return 0;
    }
    Cycles on_tick(Cycles) override {
      ++ticks;
      return (ticks == 5 || ticks == 9) ? 10'000 : 0;
    }
    int ticks = 0;
  } stall;

  // Thread 0: one access, barrier, five accesses (ticks 1, 7-11).
  // Thread 1: five slow accesses, barrier (ticks 2-6) — its clock dominates
  // the release, so thread 0 waits through tick 5's stall.
  std::vector<TraceEvent> a, b;
  a.push_back(read_at(0));
  a.push_back(TraceEvent::make_barrier());
  for (int i = 0; i < 5; ++i) a.push_back(read_at(0));
  for (int i = 0; i < 5; ++i) b.push_back(read_at(4096, 1000));
  b.push_back(TraceEvent::make_barrier());

  Machine::RunConfig run = identity_run(2);
  run.observer = &stall;
  const MachineStats stats = m.run(streams_of({a, b}), run);
  ASSERT_EQ(stall.ticks, 11);
  // Tick 5's stall folds into thread 0's barrier wait (the release
  // overwrites its clock), so it may only count against thread 1; tick 9's
  // stall hits thread 0 alone. Each thread carries exactly one stall —
  // charging the barrier-parked thread too would report 20'000 here, more
  // than the sweeps' actual critical-path impact.
  EXPECT_EQ(stats.detection_overhead_cycles, 10'000u);
}

TEST(Machine, TlbMissFlagReachesObserver) {
  Machine m(MachineConfig::tiny());

  class MissLog final : public MachineObserver {
   public:
    Cycles on_access(ThreadId, CoreId, VirtAddr, PageNum page, AccessType,
                     bool tlb_miss, Cycles) override {
      log.emplace_back(page, tlb_miss);
      return 0;
    }
    Cycles on_tick(Cycles) override { return 0; }
    std::vector<std::pair<PageNum, bool>> log;
  } miss_log;

  Machine::RunConfig run = identity_run(1);
  run.observer = &miss_log;
  m.run(streams_of({{read_at(0), read_at(8), read_at(4096)}}), run);
  ASSERT_EQ(miss_log.log.size(), 3u);
  EXPECT_TRUE(miss_log.log[0].second);   // cold miss page 0
  EXPECT_FALSE(miss_log.log[1].second);  // same page hit
  EXPECT_TRUE(miss_log.log[2].second);   // page 1 miss
  EXPECT_EQ(miss_log.log[2].first, 1u);
}

TEST(Machine, SharedL2MakesCommunicationLocal) {
  // tiny(): 2 cores sharing one L2 — a line written by core 0 and read by
  // core 1 must hit in the shared L2 with no snoop traffic.
  Machine m(MachineConfig::tiny());
  const MachineStats stats = m.run(
      streams_of({{write_at(64)}, {read_at(64, 50)}}),  // gap orders thread 1 after 0
      identity_run(2));
  EXPECT_EQ(stats.snoop_transactions, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
  EXPECT_EQ(stats.l2_misses, 1u);  // only the initial write miss
}

TEST(Machine, DeterministicAcrossRuns) {
  auto build = [] {
    std::vector<TraceEvent> a, b;
    for (int i = 0; i < 100; ++i) {
      a.push_back(write_at(static_cast<VirtAddr>(i) * 64, i % 3));
      b.push_back(read_at(static_cast<VirtAddr>(i) * 64, (i + 1) % 3));
    }
    return streams_of({a, b});
  };
  Machine m1(MachineConfig::tiny());
  Machine m2(MachineConfig::tiny());
  const MachineStats s1 = m1.run(build(), identity_run(2));
  const MachineStats s2 = m2.run(build(), identity_run(2));
  EXPECT_EQ(s1.execution_cycles, s2.execution_cycles);
  EXPECT_EQ(s1.invalidations, s2.invalidations);
  EXPECT_EQ(s1.snoop_transactions, s2.snoop_transactions);
  EXPECT_EQ(s1.l2_misses, s2.l2_misses);
}

TEST(Machine, CountersConsistent) {
  Machine m(MachineConfig::tiny());
  std::vector<TraceEvent> a, b;
  for (int i = 0; i < 500; ++i) {
    a.push_back(write_at(static_cast<VirtAddr>(i % 40) * 64));
    b.push_back(read_at(static_cast<VirtAddr>(i % 40) * 64));
  }
  const MachineStats s = m.run(streams_of({a, b}), identity_run(2));
  EXPECT_EQ(s.accesses, 1000u);
  EXPECT_EQ(s.reads + s.writes, s.accesses);
  EXPECT_EQ(s.tlb_hits + s.tlb_misses, s.accesses);
  EXPECT_EQ(s.l1_hits + s.l1_misses, s.accesses);
  EXPECT_EQ(s.l2_hits + s.l2_misses, s.l2_accesses);
  EXPECT_LE(s.l2_misses, s.l2_accesses);
}

}  // namespace
}  // namespace tlbmap

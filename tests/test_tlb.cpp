// Unit tests for the TLB model, including the set-restricted probe and
// set-iteration APIs the detectors depend on.
#include <set>

#include <gtest/gtest.h>

#include "sim/tlb.hpp"

namespace tlbmap {
namespace {

TlbConfig small_config() {
  return TlbConfig{/*entries=*/8, /*ways=*/2, TlbManagement::kHardware,
                   /*miss_penalty=*/30};
}

TEST(Tlb, StartsEmpty) {
  Tlb t(small_config());
  EXPECT_EQ(t.valid_entries(), 0u);
  EXPECT_FALSE(t.lookup(3));
  EXPECT_FALSE(t.contains(3));
}

TEST(Tlb, Geometry) {
  Tlb t(small_config());
  EXPECT_EQ(t.num_sets(), 4u);
  EXPECT_EQ(t.ways(), 2u);
  EXPECT_EQ(t.capacity(), 8u);
}

TEST(Tlb, InsertThenHit) {
  Tlb t(small_config());
  t.insert(5);
  EXPECT_TRUE(t.lookup(5));
  EXPECT_TRUE(t.contains(5));
  EXPECT_EQ(t.valid_entries(), 1u);
}

TEST(Tlb, LruEvictionWithinSet) {
  Tlb t(small_config());
  // Pages 0, 4, 8 all map to set 0 (page % 4).
  t.insert(0);
  t.insert(4);
  t.insert(8);  // evicts 0
  EXPECT_FALSE(t.contains(0));
  EXPECT_TRUE(t.contains(4));
  EXPECT_TRUE(t.contains(8));
}

TEST(Tlb, LookupRefreshesLru) {
  Tlb t(small_config());
  t.insert(0);
  t.insert(4);
  EXPECT_TRUE(t.lookup(0));  // 0 becomes MRU
  t.insert(8);               // evicts 4
  EXPECT_TRUE(t.contains(0));
  EXPECT_FALSE(t.contains(4));
}

TEST(Tlb, ContainsDoesNotRefreshLru) {
  Tlb t(small_config());
  t.insert(0);
  t.insert(4);
  EXPECT_TRUE(t.contains(0));  // must NOT touch LRU (detector probe)
  t.insert(8);                 // evicts 0, the true LRU
  EXPECT_FALSE(t.contains(0));
  EXPECT_TRUE(t.contains(4));
}

TEST(Tlb, InsertExistingRefreshesInsteadOfDuplicating) {
  Tlb t(small_config());
  t.insert(0);
  t.insert(0);
  EXPECT_EQ(t.valid_entries(), 1u);
  t.insert(4);
  t.insert(0);  // refresh
  t.insert(8);  // evicts 4
  EXPECT_TRUE(t.contains(0));
  EXPECT_FALSE(t.contains(4));
}

TEST(Tlb, InvalidateEntry) {
  Tlb t(small_config());
  t.insert(6);
  EXPECT_TRUE(t.invalidate(6));
  EXPECT_FALSE(t.contains(6));
  EXPECT_FALSE(t.invalidate(6));
}

TEST(Tlb, FlushClearsAll) {
  Tlb t(small_config());
  for (PageNum p = 0; p < 8; ++p) t.insert(p);
  t.flush();
  EXPECT_EQ(t.valid_entries(), 0u);
}

TEST(Tlb, SetEntriesExposesWays) {
  Tlb t(small_config());
  t.insert(1);  // set 1
  t.insert(5);  // set 1
  const auto set1 = t.set_entries(1);
  ASSERT_EQ(set1.size(), 2u);
  std::set<PageNum> pages;
  for (const TlbEntry& e : set1) {
    if (e.valid) pages.insert(e.page);
  }
  EXPECT_EQ(pages, (std::set<PageNum>{1, 5}));
  // Other sets stay empty.
  for (const TlbEntry& e : t.set_entries(0)) EXPECT_FALSE(e.valid);
}

TEST(Tlb, SetIndexMatchesModulo) {
  Tlb t(small_config());
  EXPECT_EQ(t.set_index(0), 0u);
  EXPECT_EQ(t.set_index(7), 3u);
  EXPECT_EQ(t.set_index(9), 1u);
}

TEST(Tlb, ForEachEntryVisitsValidOnly) {
  Tlb t(small_config());
  t.insert(1);
  t.insert(2);
  t.invalidate(1);
  std::set<PageNum> seen;
  t.for_each_entry([&](const TlbEntry& e) { seen.insert(e.page); });
  EXPECT_EQ(seen, (std::set<PageNum>{2}));
}

TEST(Tlb, RejectsBadGeometry) {
  EXPECT_THROW(Tlb(TlbConfig{0, 2}), std::invalid_argument);
  EXPECT_THROW(Tlb(TlbConfig{8, 0}), std::invalid_argument);
  EXPECT_THROW(Tlb(TlbConfig{8, 3}), std::invalid_argument);
}

// The property central to the paper's false-communication argument: an
// entry not re-touched survives at most `ways` subsequent distinct inserts
// into its set ("the relatively short life of the TLB entries").
struct TlbGeometry {
  std::size_t entries;
  std::size_t ways;
};

class TlbLifetime : public ::testing::TestWithParam<TlbGeometry> {};

TEST_P(TlbLifetime, StaleEntryEvictedAfterWaysInserts) {
  const auto [entries, ways] = GetParam();
  Tlb t(TlbConfig{entries, ways});
  const std::size_t sets = entries / ways;
  t.insert(0);  // set 0, never touched again
  // ways-1 more inserts into set 0: still resident.
  for (std::size_t k = 1; k < ways; ++k) t.insert(k * sets);
  EXPECT_TRUE(t.contains(0));
  // One more distinct page in set 0 evicts it.
  t.insert(ways * sets);
  EXPECT_FALSE(t.contains(0));
}

TEST_P(TlbLifetime, CapacityFillNoEviction) {
  const auto [entries, ways] = GetParam();
  Tlb t(TlbConfig{entries, ways});
  for (PageNum p = 0; p < entries; ++p) t.insert(p);
  EXPECT_EQ(t.valid_entries(), entries);
  for (PageNum p = 0; p < entries; ++p) {
    EXPECT_TRUE(t.contains(p)) << "page " << p;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, TlbLifetime,
    ::testing::Values(TlbGeometry{8, 2}, TlbGeometry{16, 4},
                      TlbGeometry{64, 4},   // the paper's TLB
                      TlbGeometry{64, 1},   // direct-mapped
                      TlbGeometry{64, 64},  // fully associative
                      TlbGeometry{256, 8}, TlbGeometry{1024, 4}),
    [](const ::testing::TestParamInfo<TlbGeometry>& info) {
      return "e" + std::to_string(info.param.entries) + "_w" +
             std::to_string(info.param.ways);
    });

}  // namespace
}  // namespace tlbmap

// Tests for binary trace capture and replay.
#include <filesystem>
#include <random>

#include <gtest/gtest.h>

#include "npb/synthetic.hpp"
#include "npb/workload.hpp"
#include "sim/machine.hpp"
#include "sim/trace_file.hpp"

namespace tlbmap {
namespace {

std::vector<TraceEvent> drain(ThreadStream& stream) {
  std::vector<TraceEvent> events;
  for (;;) {
    const TraceEvent ev = stream.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    events.push_back(ev);
  }
  return events;
}

TEST(TraceFile, EmptyStreamRoundTrip) {
  TraceWriter writer;
  TraceReader reader(writer.finish());
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kEnd);
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kEnd);  // sticky
}

TEST(TraceFile, SimpleRoundTrip) {
  TraceWriter writer;
  writer.write(TraceEvent::make_access(4096, AccessType::kRead, 0));
  writer.write(TraceEvent::make_access(4104, AccessType::kWrite, 7));
  writer.write(TraceEvent::make_barrier());
  writer.write(TraceEvent::make_access(64, AccessType::kRead, 0));
  TraceReader reader(writer.finish());

  TraceEvent ev = reader.next();
  EXPECT_EQ(ev.kind, TraceEvent::Kind::kAccess);
  EXPECT_EQ(ev.access.addr, 4096u);
  EXPECT_EQ(ev.access.type, AccessType::kRead);
  EXPECT_EQ(ev.access.compute_gap, 0u);

  ev = reader.next();
  EXPECT_EQ(ev.access.addr, 4104u);
  EXPECT_EQ(ev.access.type, AccessType::kWrite);
  EXPECT_EQ(ev.access.compute_gap, 7u);

  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kBarrier);
  EXPECT_EQ(reader.next().access.addr, 64u);
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kEnd);
}

TEST(TraceFile, RejectsGarbage) {
  EXPECT_THROW(TraceReader({1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(TraceReader({'T', 'L', 'B', 'T', 99}),
               std::invalid_argument);
}

TEST(TraceFile, ErrorsCarryOffsetAndRecordIndex) {
  // Truncated header: buffer shorter than magic + version.
  try {
    TraceReader({1, 2, 3});
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTruncatedTrace);
    EXPECT_EQ(e.byte_offset(), 3u);
    EXPECT_NE(std::string(e.what()).find("at byte 3"), std::string::npos);
  }
  // Unsupported version: offset pins the version byte.
  try {
    TraceReader({'T', 'L', 'B', 'T', 99});
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedTrace);
    EXPECT_EQ(e.byte_offset(), 4u);
    EXPECT_NE(std::string(e.what()).find("version 99"), std::string::npos);
  }
}

TEST(TraceFile, BadRecordHeaderNamesByteAndRecord) {
  // Valid header, one barrier, then a byte that is neither a record kind
  // nor an access header (bit 1 clear, nonzero).
  TraceReader reader({'T', 'L', 'B', 'T', 1, 0x00, 0x41});
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kBarrier);
  try {
    reader.next();
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedTrace);
    EXPECT_EQ(e.byte_offset(), 6u);   // the offending byte
    EXPECT_EQ(e.record_index(), 1u);  // second record (0-based)
    EXPECT_NE(std::string(e.what()).find("record 1"), std::string::npos);
  }
}

TEST(TraceFile, TruncatedVarintIsStructured) {
  // Access record whose varint address never terminates (all
  // continuation bits set, then EOF).
  TraceReader reader({'T', 'L', 'B', 'T', 1, 0x02, 0x80, 0x80});
  try {
    reader.next();
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kTruncatedTrace);
    EXPECT_EQ(e.to_error().code, ErrorCode::kTruncatedTrace);
  }
}

TEST(TraceFile, OverlongVarintIsMalformed) {
  // 11 continuation bytes push the shift past 63 bits.
  std::vector<std::uint8_t> bytes = {'T', 'L', 'B', 'T', 1, 0x02};
  for (int i = 0; i < 11; ++i) bytes.push_back(0x80);
  bytes.push_back(0x01);
  TraceReader reader(bytes);
  try {
    reader.next();
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kMalformedTrace);
  }
}

TEST(TraceFile, ValidateTraceAcceptsWriterOutput) {
  TraceWriter writer;
  writer.write(TraceEvent::make_access(4096, AccessType::kRead, 0));
  writer.write(TraceEvent::make_access(4104, AccessType::kWrite, 7));
  writer.write(TraceEvent::make_barrier());
  const auto bytes = writer.finish();
  const Expected<TraceStats> stats = validate_trace(bytes);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->accesses, 2u);
  EXPECT_EQ(stats->barriers, 1u);
  EXPECT_EQ(stats->records, 4u);  // incl. the end marker
  EXPECT_TRUE(stats->explicit_end);
  EXPECT_EQ(stats->bytes, bytes.size());
}

TEST(TraceFile, ValidateTraceFlagsCorruptFixtures) {
  struct Fixture {
    const char* label;
    std::vector<std::uint8_t> bytes;
    ErrorCode expected;
  };
  const std::vector<Fixture> fixtures = {
      {"empty", {}, ErrorCode::kTruncatedTrace},
      {"short header", {'T', 'L'}, ErrorCode::kTruncatedTrace},
      {"bad magic", {'X', 'L', 'B', 'T', 1, 0x01}, ErrorCode::kMalformedTrace},
      {"bad version", {'T', 'L', 'B', 'T', 7, 0x01},
       ErrorCode::kMalformedTrace},
      {"bad record header", {'T', 'L', 'B', 'T', 1, 0x41, 0x01},
       ErrorCode::kMalformedTrace},
      {"truncated varint", {'T', 'L', 'B', 'T', 1, 0x02, 0x80},
       ErrorCode::kTruncatedTrace},
      {"missing end marker", {'T', 'L', 'B', 'T', 1, 0x00},
       ErrorCode::kTruncatedTrace},
      {"trailing bytes", {'T', 'L', 'B', 'T', 1, 0x01, 0x00},
       ErrorCode::kMalformedTrace},
  };
  for (const Fixture& f : fixtures) {
    const Expected<TraceStats> result = validate_trace(f.bytes);
    ASSERT_FALSE(result.has_value()) << f.label;
    EXPECT_EQ(result.error().code, f.expected) << f.label;
    EXPECT_NE(result.error().message.find("at byte"), std::string::npos)
        << f.label << ": " << result.error().message;
  }
}

TEST(TraceFile, TryLoadRecordingRejectsCorruptFile) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPrivate;
  spec.private_pages = 4;
  spec.iterations = 1;
  const auto live = make_synthetic(spec);
  const auto buffers = record_workload(*live, 1);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tlbmap_test_corrupt_rec";
  std::filesystem::remove_all(dir);
  save_recording(buffers, dir);
  ASSERT_TRUE(try_load_recording(dir).has_value());

  // Truncate thread_0's file mid-stream: structured error, names the file.
  std::filesystem::resize_file(dir / "thread_0.tlbt", 6);
  const auto result = try_load_recording(dir);
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("thread_0.tlbt"), std::string::npos);
  EXPECT_THROW(load_recording(dir), std::runtime_error);
  std::filesystem::remove_all(dir);

  const auto missing = try_load_recording(dir);
  ASSERT_FALSE(missing.has_value());
  EXPECT_EQ(missing.error().code, ErrorCode::kIoError);
}

TEST(TraceFile, RandomEventsRoundTripExactly) {
  std::mt19937_64 rng(5);
  TraceWriter writer;
  std::vector<TraceEvent> original;
  for (int i = 0; i < 5000; ++i) {
    if (rng() % 20 == 0) {
      original.push_back(TraceEvent::make_barrier());
    } else {
      original.push_back(TraceEvent::make_access(
          (rng() % (1u << 24)) * 8,
          (rng() % 2) != 0u ? AccessType::kWrite : AccessType::kRead,
          static_cast<std::uint32_t>(rng() % 100)));
    }
    writer.write(original.back());
  }
  TraceReader reader(writer.finish());
  const std::vector<TraceEvent> replayed = drain(reader);
  ASSERT_EQ(replayed.size(), original.size());
  for (std::size_t i = 0; i < original.size(); ++i) {
    ASSERT_EQ(replayed[i].kind, original[i].kind) << i;
    if (original[i].kind == TraceEvent::Kind::kAccess) {
      ASSERT_EQ(replayed[i].access.addr, original[i].access.addr) << i;
      ASSERT_EQ(replayed[i].access.type, original[i].access.type) << i;
      ASSERT_EQ(replayed[i].access.compute_gap,
                original[i].access.compute_gap)
          << i;
    }
  }
}

TEST(TraceFile, SequentialTracesCompressWell) {
  // A sequential sweep delta-encodes to ~2 bytes per access.
  TraceWriter writer;
  const int n = 10'000;
  for (int i = 0; i < n; ++i) {
    writer.write(TraceEvent::make_access(
        (VirtAddr{1} << 32) + static_cast<VirtAddr>(i) * 8,
        AccessType::kRead, 0));
  }
  const auto bytes = writer.finish();
  EXPECT_LT(bytes.size(), static_cast<std::size_t>(n) * 3);
}

TEST(TraceFile, RecordedWorkloadReplaysIdentically) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 8;
  spec.iterations = 2;
  const auto live = make_synthetic(spec);
  const auto buffers = record_workload(*live, /*seed=*/9);
  RecordedWorkload recorded(buffers);
  ASSERT_EQ(recorded.num_threads(), live->num_threads());

  for (ThreadId t = 0; t < live->num_threads(); ++t) {
    const auto a = drain(*live->stream(t, 9));
    const auto b = drain(*recorded.stream(t, /*seed ignored*/ 12345));
    ASSERT_EQ(a.size(), b.size()) << "thread " << t;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i].kind, b[i].kind);
      if (a[i].kind == TraceEvent::Kind::kAccess) {
        ASSERT_EQ(a[i].access.addr, b[i].access.addr);
        ASSERT_EQ(a[i].access.type, b[i].access.type);
        ASSERT_EQ(a[i].access.compute_gap, b[i].access.compute_gap);
      }
    }
    EXPECT_EQ(recorded.accesses_of(t), live->accesses_of(t));
  }
}

TEST(TraceFile, RecordedRunMatchesLiveRun) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kRing;
  spec.private_pages = 16;
  spec.iterations = 2;
  const auto live = make_synthetic(spec);
  RecordedWorkload recorded(record_workload(*live, 4));

  auto run = [](const Workload& w, std::uint64_t seed) {
    Machine m((MachineConfig()));
    std::vector<std::unique_ptr<ThreadStream>> streams;
    for (ThreadId t = 0; t < w.num_threads(); ++t) {
      streams.push_back(w.stream(t, seed));
    }
    Machine::RunConfig cfg;
    for (int t = 0; t < w.num_threads(); ++t) cfg.thread_to_core.push_back(t);
    return m.run(std::move(streams), cfg);
  };
  const MachineStats a = run(*live, 4);
  const MachineStats b = run(recorded, 4);
  EXPECT_EQ(a.execution_cycles, b.execution_cycles);
  EXPECT_EQ(a.invalidations, b.invalidations);
  EXPECT_EQ(a.l2_misses, b.l2_misses);
  EXPECT_EQ(a.accesses, b.accesses);
}

TEST(TraceFile, SaveLoadRoundTrip) {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPrivate;
  spec.private_pages = 4;
  spec.iterations = 1;
  const auto live = make_synthetic(spec);
  const auto buffers = record_workload(*live, 1);

  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "tlbmap_test_recording";
  std::filesystem::remove_all(dir);
  save_recording(buffers, dir);
  const auto loaded = load_recording(dir);
  ASSERT_EQ(loaded.size(), buffers.size());
  for (std::size_t t = 0; t < buffers.size(); ++t) {
    EXPECT_EQ(loaded[t], buffers[t]) << "thread " << t;
  }
  std::filesystem::remove_all(dir);
  EXPECT_THROW(load_recording(dir), std::runtime_error);
}

TEST(TraceFile, WriterEndIsIdempotent) {
  TraceWriter writer;
  writer.write(TraceEvent::make_access(8, AccessType::kRead, 0));
  writer.write(TraceEvent::make_end());
  const auto bytes = writer.finish();  // no double end marker
  TraceReader reader(bytes);
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kAccess);
  EXPECT_EQ(reader.next().kind, TraceEvent::Kind::kEnd);
}

TEST(TraceFile, CompressionBeatsNaiveEncodingOnNpb) {
  // The headline contrast with trace-file related work: one SP thread's
  // trace (hundreds of thousands of accesses) serialises to ~2-3 bytes per
  // access instead of the 16 a raw record would take.
  WorkloadParams params;
  params.iter_scale = 0.25;
  const auto sp = make_npb_workload("SP", params);
  TraceWriter writer;
  const auto stream = sp->stream(0, 1);
  std::uint64_t accesses = 0;
  for (;;) {
    const TraceEvent ev = stream->next();
    writer.write(ev);
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) ++accesses;
  }
  const auto bytes = writer.finish();
  EXPECT_LT(bytes.size(), accesses * 4);
  EXPECT_GT(accesses, 10'000u);
}

// ---------------------------------------------------------------------------
// TraceStreamDecoder: the incremental, non-throwing decoder behind the
// mapping service's ingest path (DESIGN.md Sec. 16).

std::vector<std::uint8_t> small_recorded_buffer() {
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.private_pages = 8;
  spec.iterations = 2;
  return record_workload(*make_synthetic(spec), /*seed=*/3)[0];
}

/// Drains every currently decodable record; returns false on kNeedMore,
/// true on kEnd, FAILs the test on a structured error.
bool drain_decoder(TraceStreamDecoder& decoder,
                   std::vector<TraceEvent>* out) {
  for (;;) {
    TraceEvent event;
    const auto status = decoder.next(&event);
    if (!status.has_value()) {
      ADD_FAILURE() << status.error().message;
      return true;
    }
    if (*status == TraceStreamDecoder::Status::kNeedMore) return false;
    if (*status == TraceStreamDecoder::Status::kEnd) return true;
    out->push_back(event);
  }
}

TEST(TraceStreamDecoder, ByteAtATimeMatchesWholeBufferReplay) {
  const auto bytes = small_recorded_buffer();
  TraceReader reader(bytes);
  const std::vector<TraceEvent> expected = drain(reader);

  TraceStreamDecoder decoder;
  std::vector<TraceEvent> streamed;
  bool ended = false;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    decoder.feed(&bytes[i], 1);  // worst-case fragmentation
    ended = drain_decoder(decoder, &streamed);
  }
  EXPECT_TRUE(ended);
  EXPECT_TRUE(decoder.finished());
  EXPECT_EQ(decoder.buffered_bytes(), 0u);
  EXPECT_EQ(decoder.offset(), bytes.size());
  ASSERT_EQ(streamed.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(streamed[i].kind, expected[i].kind) << i;
    if (expected[i].kind == TraceEvent::Kind::kAccess) {
      ASSERT_EQ(streamed[i].access.addr, expected[i].access.addr) << i;
      ASSERT_EQ(streamed[i].access.type, expected[i].access.type) << i;
      ASSERT_EQ(streamed[i].access.compute_gap,
                expected[i].access.compute_gap)
          << i;
    }
  }
}

TEST(TraceStreamDecoder, NeedMoreMidRecordThenResumes) {
  // Header + one access whose varint splits across feeds.
  const std::vector<std::uint8_t> bytes = {'T', 'L', 'B', 'T', 1,
                                           0x02, 0x80, 0x20, 0x01};
  TraceStreamDecoder decoder;
  TraceEvent event;
  decoder.feed(bytes.data(), 7);  // ends inside the address varint
  auto status = decoder.next(&event);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, TraceStreamDecoder::Status::kNeedMore);
  EXPECT_EQ(decoder.buffered_bytes(), 2u);  // undecoded record tail

  decoder.feed(bytes.data() + 7, 2);
  status = decoder.next(&event);
  ASSERT_TRUE(status.has_value());
  ASSERT_EQ(*status, TraceStreamDecoder::Status::kEvent);
  EXPECT_EQ(event.kind, TraceEvent::Kind::kAccess);
  EXPECT_EQ(event.access.addr, 0x1000u);  // varint 0x80 0x20 = 4096

  status = decoder.next(&event);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(*status, TraceStreamDecoder::Status::kEnd);
  // kEnd is terminal and idempotent.
  EXPECT_EQ(*decoder.next(&event), TraceStreamDecoder::Status::kEnd);
}

TEST(TraceStreamDecoder, CorruptCorpusYieldsStructuredStickyErrors) {
  struct Fixture {
    const char* label;
    std::vector<std::uint8_t> bytes;
    ErrorCode expected;
  };
  std::vector<std::uint8_t> overlong = {'T', 'L', 'B', 'T', 1, 0x02};
  for (int i = 0; i < 11; ++i) overlong.push_back(0x80);
  overlong.push_back(0x01);
  // Access with the gap flag whose gap varint decodes above 32 bits: the
  // writer never emits one, so it is corruption, not just bad framing.
  const std::vector<std::uint8_t> wide_gap = {'T', 'L', 'B', 'T', 1,
                                              0x0a, 0x05, 0x80, 0x80, 0x80,
                                              0x80, 0x20};
  const std::vector<Fixture> fixtures = {
      {"bad magic", {'X', 'L', 'B', 'T', 1}, ErrorCode::kMalformedTrace},
      {"bad version", {'T', 'L', 'B', 'T', 9}, ErrorCode::kMalformedTrace},
      {"bad record header", {'T', 'L', 'B', 'T', 1, 0x00, 0x41},
       ErrorCode::kMalformedTrace},
      {"overlong varint", overlong, ErrorCode::kMalformedTrace},
      {"oversize gap", wide_gap, ErrorCode::kCorruptTrace},
  };
  for (const Fixture& f : fixtures) {
    TraceStreamDecoder decoder;
    decoder.feed(f.bytes);
    TraceEvent event;
    Expected<TraceStreamDecoder::Status> status = decoder.next(&event);
    while (status.has_value() &&
           *status == TraceStreamDecoder::Status::kEvent) {
      status = decoder.next(&event);
    }
    ASSERT_FALSE(status.has_value()) << f.label;
    EXPECT_EQ(status.error().code, f.expected) << f.label;
    EXPECT_NE(status.error().message.find("at byte"), std::string::npos)
        << f.label << ": " << status.error().message;
    // Sticky: the decoder stays failed, even across more feed() calls.
    const auto again = decoder.next(&event);
    ASSERT_FALSE(again.has_value()) << f.label;
    EXPECT_EQ(again.error().code, f.expected) << f.label;
    decoder.feed({0x00});
    EXPECT_FALSE(decoder.next(&event).has_value()) << f.label;
  }
}

TEST(TraceStreamDecoder, StateRestoreResumesMidStream) {
  const auto bytes = small_recorded_buffer();
  const std::size_t split = bytes.size() / 3;

  // Reference: one decoder over the whole stream.
  TraceStreamDecoder reference;
  reference.feed(bytes);
  std::vector<TraceEvent> expected;
  ASSERT_TRUE(drain_decoder(reference, &expected));

  // Interrupted: decode a prefix, snapshot, restore into a fresh decoder
  // (simulating a service checkpoint), feed the remainder.
  TraceStreamDecoder first;
  first.feed(bytes.data(), split);
  std::vector<TraceEvent> events;
  EXPECT_FALSE(drain_decoder(first, &events));
  const TraceStreamDecoder::State snapshot = first.state();
  EXPECT_EQ(snapshot.consumed + snapshot.pending.size(), split);

  TraceStreamDecoder resumed;
  resumed.restore(snapshot);
  EXPECT_EQ(resumed.state(), snapshot);
  resumed.feed(bytes.data() + split, bytes.size() - split);
  ASSERT_TRUE(drain_decoder(resumed, &events));
  EXPECT_TRUE(resumed.finished());
  EXPECT_EQ(resumed.offset(), bytes.size());
  EXPECT_EQ(resumed.records(), reference.records());
  ASSERT_EQ(events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(events[i].kind, expected[i].kind) << i;
    if (expected[i].kind == TraceEvent::Kind::kAccess) {
      ASSERT_EQ(events[i].access.addr, expected[i].access.addr) << i;
    }
  }
}

}  // namespace
}  // namespace tlbmap

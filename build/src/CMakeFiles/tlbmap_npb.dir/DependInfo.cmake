
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/npb/bt.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/bt.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/bt.cpp.o.d"
  "/root/repo/src/npb/cg.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/cg.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/cg.cpp.o.d"
  "/root/repo/src/npb/ep.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/ep.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/ep.cpp.o.d"
  "/root/repo/src/npb/ft.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/ft.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/ft.cpp.o.d"
  "/root/repo/src/npb/is.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/is.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/is.cpp.o.d"
  "/root/repo/src/npb/lu.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/lu.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/lu.cpp.o.d"
  "/root/repo/src/npb/mg.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/mg.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/mg.cpp.o.d"
  "/root/repo/src/npb/sp.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/sp.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/sp.cpp.o.d"
  "/root/repo/src/npb/synthetic.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/synthetic.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/synthetic.cpp.o.d"
  "/root/repo/src/npb/ua.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/ua.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/ua.cpp.o.d"
  "/root/repo/src/npb/workload.cpp" "src/CMakeFiles/tlbmap_npb.dir/npb/workload.cpp.o" "gcc" "src/CMakeFiles/tlbmap_npb.dir/npb/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlbmap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libtlbmap_npb.a"
)

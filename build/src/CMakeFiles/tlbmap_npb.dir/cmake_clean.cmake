file(REMOVE_RECURSE
  "CMakeFiles/tlbmap_npb.dir/npb/bt.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/bt.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/cg.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/cg.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/ep.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/ep.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/ft.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/ft.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/is.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/is.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/lu.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/lu.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/mg.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/mg.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/sp.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/sp.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/synthetic.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/synthetic.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/ua.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/ua.cpp.o.d"
  "CMakeFiles/tlbmap_npb.dir/npb/workload.cpp.o"
  "CMakeFiles/tlbmap_npb.dir/npb/workload.cpp.o.d"
  "libtlbmap_npb.a"
  "libtlbmap_npb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbmap_npb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tlbmap_npb.
# This may be replaced when dependencies are built.

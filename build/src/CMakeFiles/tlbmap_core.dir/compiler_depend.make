# Empty compiler generated dependencies file for tlbmap_core.
# This may be replaced when dependencies are built.

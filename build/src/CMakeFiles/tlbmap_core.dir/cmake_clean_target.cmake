file(REMOVE_RECURSE
  "libtlbmap_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tlbmap_core.dir/core/cli.cpp.o"
  "CMakeFiles/tlbmap_core.dir/core/cli.cpp.o.d"
  "CMakeFiles/tlbmap_core.dir/core/dynamic.cpp.o"
  "CMakeFiles/tlbmap_core.dir/core/dynamic.cpp.o.d"
  "CMakeFiles/tlbmap_core.dir/core/experiment.cpp.o"
  "CMakeFiles/tlbmap_core.dir/core/experiment.cpp.o.d"
  "CMakeFiles/tlbmap_core.dir/core/pipeline.cpp.o"
  "CMakeFiles/tlbmap_core.dir/core/pipeline.cpp.o.d"
  "CMakeFiles/tlbmap_core.dir/core/report.cpp.o"
  "CMakeFiles/tlbmap_core.dir/core/report.cpp.o.d"
  "libtlbmap_core.a"
  "libtlbmap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbmap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/cli.cpp" "src/CMakeFiles/tlbmap_core.dir/core/cli.cpp.o" "gcc" "src/CMakeFiles/tlbmap_core.dir/core/cli.cpp.o.d"
  "/root/repo/src/core/dynamic.cpp" "src/CMakeFiles/tlbmap_core.dir/core/dynamic.cpp.o" "gcc" "src/CMakeFiles/tlbmap_core.dir/core/dynamic.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/tlbmap_core.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/tlbmap_core.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/CMakeFiles/tlbmap_core.dir/core/pipeline.cpp.o" "gcc" "src/CMakeFiles/tlbmap_core.dir/core/pipeline.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/tlbmap_core.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/tlbmap_core.dir/core/report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlbmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_npb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapping/bipartition.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/bipartition.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/bipartition.cpp.o.d"
  "/root/repo/src/mapping/exact_matching.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/exact_matching.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/exact_matching.cpp.o.d"
  "/root/repo/src/mapping/greedy.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/greedy.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/greedy.cpp.o.d"
  "/root/repo/src/mapping/hierarchical.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/hierarchical.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/hierarchical.cpp.o.d"
  "/root/repo/src/mapping/mapping.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/mapping.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/mapping.cpp.o.d"
  "/root/repo/src/mapping/matching.cpp" "src/CMakeFiles/tlbmap_mapping.dir/mapping/matching.cpp.o" "gcc" "src/CMakeFiles/tlbmap_mapping.dir/mapping/matching.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlbmap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_detect.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

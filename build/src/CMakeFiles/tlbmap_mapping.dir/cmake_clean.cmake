file(REMOVE_RECURSE
  "CMakeFiles/tlbmap_mapping.dir/mapping/bipartition.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/bipartition.cpp.o.d"
  "CMakeFiles/tlbmap_mapping.dir/mapping/exact_matching.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/exact_matching.cpp.o.d"
  "CMakeFiles/tlbmap_mapping.dir/mapping/greedy.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/greedy.cpp.o.d"
  "CMakeFiles/tlbmap_mapping.dir/mapping/hierarchical.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/hierarchical.cpp.o.d"
  "CMakeFiles/tlbmap_mapping.dir/mapping/mapping.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/mapping.cpp.o.d"
  "CMakeFiles/tlbmap_mapping.dir/mapping/matching.cpp.o"
  "CMakeFiles/tlbmap_mapping.dir/mapping/matching.cpp.o.d"
  "libtlbmap_mapping.a"
  "libtlbmap_mapping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbmap_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tlbmap_mapping.
# This may be replaced when dependencies are built.

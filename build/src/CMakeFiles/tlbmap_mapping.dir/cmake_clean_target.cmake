file(REMOVE_RECURSE
  "libtlbmap_mapping.a"
)

file(REMOVE_RECURSE
  "libtlbmap_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/tlbmap_sim.dir/sim/access_program.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/access_program.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/cache.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/cache.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/coherence.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/coherence.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/hierarchy.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/hierarchy.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/interconnect.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/interconnect.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/machine.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/machine.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/page_table.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/page_table.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/stats.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/stats.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/tlb.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/tlb.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/topology.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/topology.cpp.o.d"
  "CMakeFiles/tlbmap_sim.dir/sim/trace_file.cpp.o"
  "CMakeFiles/tlbmap_sim.dir/sim/trace_file.cpp.o.d"
  "libtlbmap_sim.a"
  "libtlbmap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbmap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for tlbmap_sim.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/access_program.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/access_program.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/access_program.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/cache.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/cache.cpp.o.d"
  "/root/repo/src/sim/coherence.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/coherence.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/coherence.cpp.o.d"
  "/root/repo/src/sim/hierarchy.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/hierarchy.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/hierarchy.cpp.o.d"
  "/root/repo/src/sim/interconnect.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/interconnect.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/interconnect.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/machine.cpp.o.d"
  "/root/repo/src/sim/page_table.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/page_table.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/page_table.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/stats.cpp.o.d"
  "/root/repo/src/sim/tlb.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/tlb.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/tlb.cpp.o.d"
  "/root/repo/src/sim/topology.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/topology.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/topology.cpp.o.d"
  "/root/repo/src/sim/trace_file.cpp" "src/CMakeFiles/tlbmap_sim.dir/sim/trace_file.cpp.o" "gcc" "src/CMakeFiles/tlbmap_sim.dir/sim/trace_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/tlbmap_detect.dir/detect/comm_matrix.cpp.o"
  "CMakeFiles/tlbmap_detect.dir/detect/comm_matrix.cpp.o.d"
  "CMakeFiles/tlbmap_detect.dir/detect/hm_detector.cpp.o"
  "CMakeFiles/tlbmap_detect.dir/detect/hm_detector.cpp.o.d"
  "CMakeFiles/tlbmap_detect.dir/detect/oracle_detector.cpp.o"
  "CMakeFiles/tlbmap_detect.dir/detect/oracle_detector.cpp.o.d"
  "CMakeFiles/tlbmap_detect.dir/detect/sm_detector.cpp.o"
  "CMakeFiles/tlbmap_detect.dir/detect/sm_detector.cpp.o.d"
  "libtlbmap_detect.a"
  "libtlbmap_detect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tlbmap_detect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

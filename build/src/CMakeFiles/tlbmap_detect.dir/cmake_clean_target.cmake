file(REMOVE_RECURSE
  "libtlbmap_detect.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/detect/comm_matrix.cpp" "src/CMakeFiles/tlbmap_detect.dir/detect/comm_matrix.cpp.o" "gcc" "src/CMakeFiles/tlbmap_detect.dir/detect/comm_matrix.cpp.o.d"
  "/root/repo/src/detect/hm_detector.cpp" "src/CMakeFiles/tlbmap_detect.dir/detect/hm_detector.cpp.o" "gcc" "src/CMakeFiles/tlbmap_detect.dir/detect/hm_detector.cpp.o.d"
  "/root/repo/src/detect/oracle_detector.cpp" "src/CMakeFiles/tlbmap_detect.dir/detect/oracle_detector.cpp.o" "gcc" "src/CMakeFiles/tlbmap_detect.dir/detect/oracle_detector.cpp.o.d"
  "/root/repo/src/detect/sm_detector.cpp" "src/CMakeFiles/tlbmap_detect.dir/detect/sm_detector.cpp.o" "gcc" "src/CMakeFiles/tlbmap_detect.dir/detect/sm_detector.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlbmap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for tlbmap_detect.
# This may be replaced when dependencies are built.

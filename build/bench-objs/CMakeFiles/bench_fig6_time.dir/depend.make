# Empty dependencies file for bench_fig6_time.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig4_patterns_sm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig4_patterns_sm"
  "../bench/bench_fig4_patterns_sm.pdb"
  "CMakeFiles/bench_fig4_patterns_sm.dir/bench_fig4_patterns_sm.cpp.o"
  "CMakeFiles/bench_fig4_patterns_sm.dir/bench_fig4_patterns_sm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_patterns_sm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_tlb.
# This may be replaced when dependencies are built.

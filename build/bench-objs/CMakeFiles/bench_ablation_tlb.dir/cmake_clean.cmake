file(REMOVE_RECURSE
  "../bench/bench_ablation_tlb"
  "../bench/bench_ablation_tlb.pdb"
  "CMakeFiles/bench_ablation_tlb.dir/bench_ablation_tlb.cpp.o"
  "CMakeFiles/bench_ablation_tlb.dir/bench_ablation_tlb.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_tlb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig8_snoops"
  "../bench/bench_fig8_snoops.pdb"
  "CMakeFiles/bench_fig8_snoops.dir/bench_fig8_snoops.cpp.o"
  "CMakeFiles/bench_fig8_snoops.dir/bench_fig8_snoops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_snoops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

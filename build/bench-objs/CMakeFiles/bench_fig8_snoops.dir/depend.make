# Empty dependencies file for bench_fig8_snoops.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_numa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_numa"
  "../bench/bench_numa.pdb"
  "CMakeFiles/bench_numa.dir/bench_numa.cpp.o"
  "CMakeFiles/bench_numa.dir/bench_numa.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

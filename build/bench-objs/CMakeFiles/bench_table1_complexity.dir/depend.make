# Empty dependencies file for bench_table1_complexity.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table1_complexity"
  "../bench/bench_table1_complexity.pdb"
  "CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cpp.o"
  "CMakeFiles/bench_table1_complexity.dir/bench_table1_complexity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

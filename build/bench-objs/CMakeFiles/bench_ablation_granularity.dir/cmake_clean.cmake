file(REMOVE_RECURSE
  "../bench/bench_ablation_granularity"
  "../bench/bench_ablation_granularity.pdb"
  "CMakeFiles/bench_ablation_granularity.dir/bench_ablation_granularity.cpp.o"
  "CMakeFiles/bench_ablation_granularity.dir/bench_ablation_granularity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_granularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_ablation_sampling"
  "../bench/bench_ablation_sampling.pdb"
  "CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cpp.o"
  "CMakeFiles/bench_ablation_sampling.dir/bench_ablation_sampling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_table5_stddev"
  "../bench/bench_table5_stddev.pdb"
  "CMakeFiles/bench_table5_stddev.dir/bench_table5_stddev.cpp.o"
  "CMakeFiles/bench_table5_stddev.dir/bench_table5_stddev.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_stddev.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_patterns_hm.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig5_patterns_hm"
  "../bench/bench_fig5_patterns_hm.pdb"
  "CMakeFiles/bench_fig5_patterns_hm.dir/bench_fig5_patterns_hm.cpp.o"
  "CMakeFiles/bench_fig5_patterns_hm.dir/bench_fig5_patterns_hm.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_patterns_hm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

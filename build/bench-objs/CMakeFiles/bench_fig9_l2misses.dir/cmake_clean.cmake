file(REMOVE_RECURSE
  "../bench/bench_fig9_l2misses"
  "../bench/bench_fig9_l2misses.pdb"
  "CMakeFiles/bench_fig9_l2misses.dir/bench_fig9_l2misses.cpp.o"
  "CMakeFiles/bench_fig9_l2misses.dir/bench_fig9_l2misses.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_l2misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

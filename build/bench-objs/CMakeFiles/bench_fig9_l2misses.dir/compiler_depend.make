# Empty compiler generated dependencies file for bench_fig9_l2misses.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_perf_simulator.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_perf_simulator"
  "../bench/bench_perf_simulator.pdb"
  "CMakeFiles/bench_perf_simulator.dir/bench_perf_simulator.cpp.o"
  "CMakeFiles/bench_perf_simulator.dir/bench_perf_simulator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perf_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

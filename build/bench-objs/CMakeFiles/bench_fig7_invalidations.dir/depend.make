# Empty dependencies file for bench_fig7_invalidations.
# This may be replaced when dependencies are built.

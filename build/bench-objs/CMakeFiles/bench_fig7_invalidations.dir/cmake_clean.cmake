file(REMOVE_RECURSE
  "../bench/bench_fig7_invalidations"
  "../bench/bench_fig7_invalidations.pdb"
  "CMakeFiles/bench_fig7_invalidations.dir/bench_fig7_invalidations.cpp.o"
  "CMakeFiles/bench_fig7_invalidations.dir/bench_fig7_invalidations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_invalidations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

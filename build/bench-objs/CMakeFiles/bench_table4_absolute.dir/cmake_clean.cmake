file(REMOVE_RECURSE
  "../bench/bench_table4_absolute"
  "../bench/bench_table4_absolute.pdb"
  "CMakeFiles/bench_table4_absolute.dir/bench_table4_absolute.cpp.o"
  "CMakeFiles/bench_table4_absolute.dir/bench_table4_absolute.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_absolute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_tlb.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_page_table.dir/test_page_table.cpp.o"
  "CMakeFiles/test_page_table.dir/test_page_table.cpp.o.d"
  "test_page_table"
  "test_page_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_page_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

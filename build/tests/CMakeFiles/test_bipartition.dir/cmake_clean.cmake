file(REMOVE_RECURSE
  "CMakeFiles/test_bipartition.dir/test_bipartition.cpp.o"
  "CMakeFiles/test_bipartition.dir/test_bipartition.cpp.o.d"
  "test_bipartition"
  "test_bipartition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bipartition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

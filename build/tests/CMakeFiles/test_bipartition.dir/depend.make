# Empty dependencies file for test_bipartition.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for test_comm_matrix.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_comm_matrix.dir/test_comm_matrix.cpp.o"
  "CMakeFiles/test_comm_matrix.dir/test_comm_matrix.cpp.o.d"
  "test_comm_matrix"
  "test_comm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_comm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_numa.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_numa.dir/test_numa.cpp.o"
  "CMakeFiles/test_numa.dir/test_numa.cpp.o.d"
  "test_numa"
  "test_numa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_numa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for test_coherence.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_access_program.dir/test_access_program.cpp.o"
  "CMakeFiles/test_access_program.dir/test_access_program.cpp.o.d"
  "test_access_program"
  "test_access_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_access_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for test_access_program.
# This may be replaced when dependencies are built.

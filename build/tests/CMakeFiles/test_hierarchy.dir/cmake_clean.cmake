file(REMOVE_RECURSE
  "CMakeFiles/test_hierarchy.dir/test_hierarchy.cpp.o"
  "CMakeFiles/test_hierarchy.dir/test_hierarchy.cpp.o.d"
  "test_hierarchy"
  "test_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_differential.dir/test_differential.cpp.o"
  "CMakeFiles/test_differential.dir/test_differential.cpp.o.d"
  "test_differential"
  "test_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/test_dynamic.dir/test_dynamic.cpp.o"
  "CMakeFiles/test_dynamic.dir/test_dynamic.cpp.o.d"
  "test_dynamic"
  "test_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

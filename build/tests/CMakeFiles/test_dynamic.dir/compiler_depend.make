# Empty compiler generated dependencies file for test_dynamic.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_synthetic.cpp" "tests/CMakeFiles/test_synthetic.dir/test_synthetic.cpp.o" "gcc" "tests/CMakeFiles/test_synthetic.dir/test_synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/tlbmap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_mapping.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_detect.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_npb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/tlbmap_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

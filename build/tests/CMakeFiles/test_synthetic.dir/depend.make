# Empty dependencies file for test_synthetic.
# This may be replaced when dependencies are built.

# Empty dependencies file for test_detectors.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/test_detectors.dir/test_detectors.cpp.o"
  "CMakeFiles/test_detectors.dir/test_detectors.cpp.o.d"
  "test_detectors"
  "test_detectors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_detectors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/example_dynamic_migration.dir/dynamic_migration.cpp.o"
  "CMakeFiles/example_dynamic_migration.dir/dynamic_migration.cpp.o.d"
  "dynamic_migration"
  "dynamic_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_dynamic_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_dynamic_migration.
# This may be replaced when dependencies are built.

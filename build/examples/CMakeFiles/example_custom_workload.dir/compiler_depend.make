# Empty compiler generated dependencies file for example_custom_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_tlbmap_cli.dir/tlbmap_cli.cpp.o"
  "CMakeFiles/example_tlbmap_cli.dir/tlbmap_cli.cpp.o.d"
  "tlbmap_cli"
  "tlbmap_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_tlbmap_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for example_tlbmap_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/example_npb_explorer.dir/npb_explorer.cpp.o"
  "CMakeFiles/example_npb_explorer.dir/npb_explorer.cpp.o.d"
  "npb_explorer"
  "npb_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_npb_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for example_npb_explorer.
# This may be replaced when dependencies are built.

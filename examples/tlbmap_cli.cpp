// Command-line tool over the whole library: detect, map, evaluate, run
// dynamically, record and replay traces. See core/cli.hpp for the grammar
// or run `tlbmap_cli --help`.
#include "core/cli.hpp"

int main(int argc, char** argv) {
  return tlbmap::run_cli(tlbmap::parse_cli(argc, argv));
}

// Perf-regression gate: diff two google-benchmark JSON files with
// noise-aware thresholds. CI runs this against bench/baseline/ after every
// bench-smoke job; see core/benchdiff.hpp for the comparison rules.
//
//   tlbmap_benchdiff bench/baseline/BENCH_simulator.json current.json
//   echo $?   # 0 clean, 1 regression, 2 usage/parse error
#include <iostream>

#include "core/benchdiff.hpp"

int main(int argc, char** argv) {
  return tlbmap::run_benchdiff(argc, argv, std::cout, std::cerr);
}

// NPB explorer: inspect what each mechanism sees for a given benchmark.
//
// Prints the SM, HM and ground-truth (oracle) communication matrices side
// by side with quantitative accuracy scores, plus the TLB statistics of
// the detection run — an interactive version of the paper's Figures 4/5.
//
// Usage: npb_explorer [workload ...]   (default: all nine)
#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;

  std::vector<std::string> apps;
  for (int i = 1; i < argc; ++i) apps.emplace_back(argv[i]);
  if (apps.empty()) apps = npb_workload_names();

  Pipeline pipe(MachineConfig::harpertown());
  // Detector knobs scaled to these short traces (see SuiteConfig for the
  // rationale); use the suite defaults so the explorer matches the benches.
  const SuiteConfig defaults;
  pipe.sm_config() = defaults.sm;
  pipe.hm_config() = defaults.hm;

  WorkloadParams params;
  params.iter_scale = defaults.detect_iter_scale;
  for (const std::string& app : apps) {
    const auto workload = make_npb_workload(app, params);
    std::printf("==== %s — %s\n", workload->name().c_str(),
                workload->description().c_str());

    const auto sm = pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
    const auto hm = pipe.detect(*workload, Pipeline::Mechanism::kHardwareManaged);
    const auto oracle = pipe.detect(*workload, Pipeline::Mechanism::kOracle);

    std::printf(
        "accesses %llu | TLB miss rate %s | SM searches %llu | HM sweeps %llu\n",
        static_cast<unsigned long long>(sm.stats.accesses),
        fmt_percent(sm.stats.tlb_miss_rate(), 3).c_str(),
        static_cast<unsigned long long>(sm.searches),
        static_cast<unsigned long long>(hm.searches));
    std::printf("accuracy vs oracle (cosine / rank): SM %s / %s   HM %s / %s\n",
                fmt_double(CommMatrix::cosine_similarity(sm.matrix,
                                                         oracle.matrix)).c_str(),
                fmt_double(CommMatrix::rank_correlation(sm.matrix,
                                                        oracle.matrix)).c_str(),
                fmt_double(CommMatrix::cosine_similarity(hm.matrix,
                                                         oracle.matrix)).c_str(),
                fmt_double(CommMatrix::rank_correlation(hm.matrix,
                                                        oracle.matrix)).c_str());
    std::printf("SM detected:\n%s", sm.matrix.heatmap().c_str());
    std::printf("HM detected:\n%s", hm.matrix.heatmap().c_str());
    std::printf("oracle (ground truth):\n%s\n", oracle.matrix.heatmap().c_str());
  }
  return 0;
}

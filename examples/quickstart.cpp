// Quickstart: the whole pipeline on one benchmark, end to end.
//
//   1. Build the paper's evaluation machine (2x Harpertown, Fig. 3).
//   2. Run the SP workload with the software-managed TLB detector attached
//      and print the detected communication matrix (cf. paper Fig. 4).
//   3. Feed the matrix to the hierarchical Edmonds matcher and print the
//      resulting pairs (cf. paper Fig. 2) and thread->core mapping.
//   4. Re-run SP under the detected mapping and under a random "OS"
//      placement, and compare the paper's four metrics.
//
// Usage: quickstart [workload]   (default SP; any of BT CG EP FT IS LU MG SP UA)
#include <cstdio>
#include <string>

#include "core/experiment.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"

int main(int argc, char** argv) {
  using namespace tlbmap;

  const std::string app = argc > 1 ? argv[1] : "SP";
  const MachineConfig machine = MachineConfig::harpertown();
  Pipeline pipe(machine);
  // Detector knobs scaled to these short traces (see SuiteConfig); the
  // detection pass observes a longer trace, as the paper detects over the
  // benchmark's whole execution.
  const SuiteConfig defaults;
  pipe.sm_config() = defaults.sm;
  WorkloadParams detect_params;
  detect_params.iter_scale = defaults.detect_iter_scale;
  const auto detect_workload = make_npb_workload(app, detect_params);
  const auto workload = make_npb_workload(app);

  std::printf("== tlbmap quickstart: %s (%s)\n", workload->name().c_str(),
              workload->description().c_str());
  std::printf("machine: %d sockets x %d cores, L2 shared by %d cores\n\n",
              machine.num_sockets, machine.cores_per_socket,
              machine.cores_per_l2);

  // --- Detect.
  const DetectionResult det =
      pipe.detect(*detect_workload, Pipeline::Mechanism::kSoftwareManaged);
  std::printf("SM detection: %llu TLB misses, %llu searches, overhead %s\n",
              static_cast<unsigned long long>(det.stats.tlb_misses),
              static_cast<unsigned long long>(det.searches),
              fmt_percent(det.stats.overhead_fraction(), 2).c_str());
  std::printf("communication matrix (darker = more):\n%s\n",
              det.matrix.heatmap().c_str());

  // --- Map.
  const Mapping mapping = pipe.map(det.matrix);
  std::printf("matched pairs by communication:\n");
  for (const auto& [a, b] : det.matrix.pairs_by_weight()) {
    if (det.matrix.at(a, b) == 0) break;
    std::printf("  t%d -- t%d : %llu\n", a, b,
                static_cast<unsigned long long>(det.matrix.at(a, b)));
  }
  std::printf("mapping: %s\n\n", to_string(mapping).c_str());

  // --- Evaluate against the unaware scheduler.
  const MachineStats tuned = pipe.evaluate(*workload, mapping, /*seed=*/7);
  const Mapping os = random_mapping(workload->num_threads(),
                                    machine.num_cores(), /*seed=*/99);
  const MachineStats base = pipe.evaluate(*workload, os, /*seed=*/7);

  TextTable table({"metric", "OS (random)", "SM mapping", "normalized"});
  const auto row = [&](const char* label, double b, double t) {
    table.add_row({label, fmt_count(b), fmt_count(t),
                   fmt_double(b == 0.0 ? 1.0 : t / b, 3)});
  };
  row("execution cycles", static_cast<double>(base.execution_cycles),
      static_cast<double>(tuned.execution_cycles));
  row("invalidations", static_cast<double>(base.invalidations),
      static_cast<double>(tuned.invalidations));
  row("snoop transactions", static_cast<double>(base.snoop_transactions),
      static_cast<double>(tuned.snoop_transactions));
  row("L2 misses", static_cast<double>(base.l2_misses),
      static_cast<double>(tuned.l2_misses));
  std::printf("%s", table.str().c_str());
  return 0;
}

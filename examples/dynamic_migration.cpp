// Dynamic migration — the paper's future work (Sec. VII), implemented.
//
// Applications change their communication pattern over time; a mapping
// derived from an old phase can be useless — or harmful — in the next one.
// This example builds a workload whose thread pairing *shifts* halfway
// through the run:
//
//   phase A: pairs (0,1) (2,3) (4,5) (6,7)
//   phase B: pairs (1,2) (3,4) (5,6) (7,0)
//
// Part 1 shows the matrices a detector sees for each phase and blended.
// Part 2 runs true in-run migration: the OnlineMapper attaches the SM
// detector to the run, re-matches every few barriers, ages the matrix, and
// migrates threads at barrier boundaries — against static policies that
// keep one placement for the whole run.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "npb/synthetic.hpp"

namespace {

using namespace tlbmap;

SyntheticSpec base_spec() {
  SyntheticSpec spec;
  spec.private_pages = 64;
  spec.shared_pages = 16;
  spec.shared_accesses = 2048;
  spec.iterations = 6;
  return spec;
}

std::unique_ptr<Workload> phase(int shift) {
  SyntheticSpec spec = base_spec();
  spec.pattern = SyntheticSpec::Pattern::kPairs;
  spec.pair_shift = shift;
  return make_synthetic(spec);
}

std::unique_ptr<Workload> whole_run() {
  SyntheticSpec spec = base_spec();
  spec.pattern = SyntheticSpec::Pattern::kPhaseShift;
  spec.iterations = 48;  // 24 iterations in each pairing
  return make_synthetic(spec);
}

}  // namespace

int main() {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 3;  // dense sampling: phases are short

  std::printf("== dynamic migration on a phase-shifting workload\n\n");

  // --- Part 1: what detection sees per phase vs blended.
  const auto det_a = pipe.detect(*phase(0), Pipeline::Mechanism::kSoftwareManaged);
  const auto det_b = pipe.detect(*phase(1), Pipeline::Mechanism::kSoftwareManaged);
  const auto det_mix =
      pipe.detect(*whole_run(), Pipeline::Mechanism::kSoftwareManaged);
  std::printf("phase-A matrix — pairs (0,1)(2,3)(4,5)(6,7):\n%s\n",
              det_a.matrix.heatmap().c_str());
  std::printf("phase-B matrix — pairs (1,2)(3,4)(5,6)(7,0):\n%s\n",
              det_b.matrix.heatmap().c_str());
  std::printf("whole-run matrix — both pairings blended:\n%s\n",
              det_mix.matrix.heatmap().c_str());

  // --- Part 2: same total work under four policies. The deployment story:
  // the scheduler does not know the application, so everything starts from
  // an unaware (random) placement; static-A/static-mix additionally get the
  // benefit of an offline detection pass, the online mapper detects and
  // migrates while running (and pays its own detection overhead).
  const Mapping os_start = random_mapping(8, 8, /*seed=*/99);
  const Mapping map_a = pipe.map(det_a.matrix);
  const Mapping map_mix = pipe.map(det_mix.matrix);

  const MachineStats unaware = pipe.evaluate(*whole_run(), os_start, 7);
  const MachineStats static_a = pipe.evaluate(*whole_run(), map_a, 7);
  const MachineStats static_mix = pipe.evaluate(*whole_run(), map_mix, 7);

  OnlineMapperConfig online;
  online.remap_every_barriers = 4;
  online.min_matrix_total = 24;
  online.detector.sample_threshold = 3;
  const auto dynamic = pipe.evaluate_dynamic(*whole_run(), os_start, online, 7);

  TextTable table({"policy", "cycles", "invalidations", "snoops",
                   "migrations", "time vs unaware"});
  const auto row = [&](const char* label, const MachineStats& s,
                       int migrations) {
    table.add_row({label, fmt_count(static_cast<double>(s.execution_cycles)),
                   fmt_count(static_cast<double>(s.invalidations)),
                   fmt_count(static_cast<double>(s.snoop_transactions)),
                   std::to_string(migrations),
                   fmt_double(static_cast<double>(s.execution_cycles) /
                              static_cast<double>(unaware.execution_cycles))});
  };
  row("unaware (random, static)", unaware, 0);
  row("offline map of phase A", static_a, 0);
  row("offline map of whole run", static_mix, 0);
  row("online detect + migrate", dynamic.stats, dynamic.migrations);
  std::printf("%s", table.str().c_str());
  std::printf(
      "\nThe phase-A mapping is stale during phase B; the blended whole-run\n"
      "mapping compromises both phases. The online mapper starts unaware,\n"
      "detects while running (its matrix ages at each remap decision, like\n"
      "TLB entries age out) and migrates at barriers.\n"
      "final placement: %s\n",
      to_string(dynamic.final_mapping).c_str());
  return 0;
}

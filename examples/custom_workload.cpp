// Custom workload integration: bring your own application model.
//
// The library's detectors and mappers work on any Workload — this example
// defines a 8-stage software pipeline (each thread produces a buffer that
// the next stage consumes, stage 0 also reads a config block shared with
// the final stage) *without* using the NPB generators, runs both TLB
// mechanisms on it, and maps it onto the Harpertown machine.
//
// The expected matrix is a chain 0-1-2-...-7 plus a weak (0,7) link; the
// hierarchical matcher should fold the chain pairwise onto shared L2s.
#include <cstdio>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "npb/workload.hpp"

namespace {

using namespace tlbmap;

/// An 8-stage pipeline: stage t reads stage t-1's buffer and writes its
/// own; every stage owns scratch memory besides.
class PipelineWorkload final : public ProgramWorkload {
 public:
  PipelineWorkload()
      : ProgramWorkload("pipeline", "8-stage producer/consumer chain",
                        WorkloadParams{8, 1.0, 1.0, 1}) {
    Arena arena;
    const auto n = static_cast<std::uint64_t>(params_.num_threads);
    buffers_ = arena.alloc_pages(kBufferPages * n);
    scratch_ = arena.alloc_pages(kScratchPages * n);
    config_ = arena.alloc_pages(1);
  }

  AccessProgram program(ThreadId t) const override {
    const int n = params_.num_threads;
    Phase stage;
    // Consume the upstream buffer (stage 0 consumes the config block and,
    // weakly, the last stage's committed output — a feedback loop).
    if (t > 0) {
      stage.walks.push_back(
          sweep(buffers_.slab(t - 1, n), Walk::Mix::kRead, 1, 1));
    } else {
      stage.walks.push_back(random_walk(config_, Walk::Mix::kRead, 256, 1, 1));
      stage.walks.push_back(
          random_walk(buffers_.slab(n - 1, n), Walk::Mix::kRead, 512, 1, 1));
    }
    // Work on private scratch, then produce the own buffer.
    stage.walks.push_back(random_walk(scratch_.slab(t, n),
                                      Walk::Mix::kReadWrite, 4096, 2, 1));
    stage.walks.push_back(
        sweep(buffers_.slab(t, n), Walk::Mix::kWrite, 1, 1));
    if (t == n - 1) {
      stage.walks.push_back(
          random_walk(config_, Walk::Mix::kReadWrite, 64, 1, 1));
    }

    AccessProgram prog;
    prog.phases = {stage};
    prog.iterations = 8;
    return prog;
  }

 private:
  static constexpr std::uint64_t kBufferPages = 4;
  static constexpr std::uint64_t kScratchPages = 64;
  Region buffers_, scratch_, config_;
};

}  // namespace

int main() {
  Pipeline pipe(MachineConfig::harpertown());
  pipe.sm_config().sample_threshold = 5;
  pipe.hm_config().interval = 100'000;
  pipe.hm_config().search_cost = 843;

  PipelineWorkload workload;
  std::printf("== custom workload: %s\n\n", workload.description().c_str());

  const auto sm =
      pipe.detect(workload, Pipeline::Mechanism::kSoftwareManaged);
  const auto hm =
      pipe.detect(workload, Pipeline::Mechanism::kHardwareManaged);
  std::printf("SM matrix (chain 0-1-...-7 with a (0,7) feedback link):\n%s\n",
              sm.matrix.heatmap().c_str());
  std::printf("HM matrix:\n%s\n", hm.matrix.heatmap().c_str());

  const Mapping mapping = pipe.map(sm.matrix);
  std::printf("mapping: %s\n\n", to_string(mapping).c_str());

  const MachineStats tuned = pipe.evaluate(workload, mapping, 11);
  const MachineStats worst =
      pipe.evaluate(workload, Mapping{0, 4, 1, 5, 2, 6, 3, 7}, 11);
  TextTable table({"placement", "cycles", "invalidations", "snoops"});
  const auto row = [&](const char* label, const MachineStats& s) {
    table.add_row({label, fmt_count(static_cast<double>(s.execution_cycles)),
                   fmt_count(static_cast<double>(s.invalidations)),
                   fmt_count(static_cast<double>(s.snoop_transactions))});
  };
  row("detected + matched", tuned);
  row("chain split across sockets", worst);
  std::printf("%s", table.str().c_str());
  return 0;
}

// The paper's full evaluation as a reusable harness.
//
// run_suite() reproduces the experimental protocol of Sections V/VI for a
// set of NPB workloads: detect the communication matrix with SM, HM and the
// full-trace oracle; derive SM/HM thread mappings with the hierarchical
// Edmonds matcher; then run `repetitions` performance runs per mapping.
// The OS baseline re-rolls a random placement every repetition (an unaware
// scheduler), which is also what gives it the paper's high variance.
//
// Because several bench binaries consume the same suite (Figures 6-9,
// Tables IV/V), results are cached on disk keyed by a config hash; set
// TLBMAP_NO_CACHE=1 (or use_cache=false) to force recomputation, and
// TLBMAP_CACHE_DIR to relocate the cache (default /tmp/tlbmap_cache).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/expected.hpp"
#include "core/pipeline.hpp"
#include "sim/stats.hpp"

namespace tlbmap {

struct SuiteConfig {
  MachineConfig machine{};  // Harpertown defaults (Table II / Fig. 3)
  WorkloadParams workload{};
  std::vector<std::string> apps = npb_workload_names();
  int repetitions = 8;
  /// Detector knobs, scaled to the short traces: the paper's runs last
  /// billions of cycles with millions of TLB misses, ours millions of cycles
  /// with tens of thousands of misses. Sampling 1-in-10 (instead of the
  /// paper's 1-in-100) and sweeping every 400k cycles (instead of every 10M,
  /// with the sweep cost scaled by the same 25x to preserve the ~0.84 %
  /// overhead ratio) restores a comparable number of detection events.
  /// bench_table3 additionally reports the overheads at the paper's
  /// unscaled parameters, computed from the measured miss counts.
  SmDetectorConfig sm{/*sample_threshold=*/10, /*search_cost=*/231};
  HmDetectorConfig hm{/*interval=*/400'000, /*search_cost=*/3'372};
  OracleDetectorConfig oracle{};
  /// Mapping algorithm for phase 2 (default kAuto: Edmonds matching below
  /// the threshold, recursive multisection at manycore thread counts).
  MappingConfig mapping{};
  /// Detection runs use iter_scale multiplied by this factor: the paper
  /// detects over the application's full execution, and longer detection
  /// traces stand in for that.
  double detect_iter_scale = 4.0;
  std::uint64_t base_seed = 42;
  bool use_cache = true;
  /// Worker threads for the independent simulation runs. The suite executes
  /// as three global phases — detect, map, evaluate — and the detect and
  /// evaluate phases each drain every app's runs through one shared pool of
  /// this size (suite-wide, not per app: a short app's tail overlaps a long
  /// app's head). 0 = one per hardware core. Results are bit-identical
  /// regardless of the worker count — each run simulates its own Machine
  /// and writes its own preassigned slot. (The HM sweep itself can shard
  /// its matrix accumulation further via HmDetectorConfig::sweep_workers.)
  int parallel_workers = 0;
  /// Retries per failed suite task (DESIGN.md Sec. 11). A worker never lets
  /// an exception escape: a task that throws is retried this many times,
  /// then recorded as a structured kWorkerFailure and its result slot left
  /// zeroed. Suites with failed tasks are reported degraded and not cached.
  int task_retries = 1;
  /// Crash safety (DESIGN.md Sec. 12). When non-empty, suite progress is
  /// checkpointed to `<checkpoint_dir>/suite.ckpt` as tasks complete: on
  /// SIGINT/SIGTERM (with shutdown handlers installed) or a crash, a later
  /// run with `resume = true` skips every completed task and — because all
  /// seeds and result slots are preassigned — produces a SuiteResult
  /// bit-identical to an uninterrupted run. The file is removed once the
  /// suite completes. None of these three fields enters the cache key or
  /// the config hash: they change durability, not results.
  std::string checkpoint_dir;
  /// Accumulated simulated accesses of completed tasks between checkpoint
  /// writes. 0 = write after every completed task; larger values trade
  /// write traffic against re-simulated work after a crash. A shutdown
  /// request always forces a final write regardless of this budget.
  std::uint64_t checkpoint_every_events = 0;
  /// Load `<checkpoint_dir>/suite.ckpt` and continue from it. A missing,
  /// corrupt or config-mismatched checkpoint is reported (structured error
  /// in the progress stream, `checkpoint.rejected` metric) and the suite
  /// falls back to a fresh run — resume never aborts and never crashes.
  bool resume = false;
  /// Observability (DESIGN.md Sec. 13). Like the crash-safety knobs, the
  /// two fields below never enter the cache key or config hash: they change
  /// what a run records about itself, not its results.
  ///
  /// Series sampling interval, forwarded to every worker Pipeline
  /// (Pipeline::set_metrics_interval_events); the suite additionally
  /// captures one "phase:suite.<name>" sample after each of its three
  /// global phases. 0 (default) = series stream off. With
  /// parallel_workers > 1 the *ordering* of interval samples from
  /// concurrent runs interleaves nondeterministically; the byte-identical
  /// series guarantee holds for single-worker suites and plain Pipeline
  /// runs.
  std::uint64_t metrics_interval_events = 0;
  /// When non-empty, the suite writes a run manifest — provenance, wall/CPU
  /// cost, peak RSS, per-phase attribution, collapsed flamegraph stacks
  /// (obs/selfprof.hpp) — to this path via atomic_write_file, on every exit
  /// path: clean, cached, degraded and interrupted.
  std::string manifest_out;
};

/// Repeated performance runs under one mapping policy.
struct MappingRuns {
  std::string label;  ///< "OS" / "SM" / "HM"
  std::vector<MachineStats> runs;
};

/// Which scalar a summary extracts from a run. Figures 7-9 normalise raw
/// event counts; Table IV reports the per-second rates.
enum class Metric {
  kTimeSeconds,
  kInvalidations,
  kSnoops,
  kL2Misses,
  kInvalidationsPerSec,
  kSnoopsPerSec,
  kL2MissesPerSec,
};

double metric_value(const MachineStats& stats, Metric metric);
Summary summarize_runs(const MappingRuns& runs, Metric metric);

struct AppExperiment {
  std::string app;
  DetectionResult sm_detection;
  DetectionResult hm_detection;
  DetectionResult oracle_detection;
  Mapping sm_mapping;
  Mapping hm_mapping;
  MappingRuns os_runs, sm_runs, hm_runs;

  /// mean(metric under mapping) / mean(metric under OS) — the normalised
  /// bars of Figures 6-9.
  double normalized(const MappingRuns& runs, Metric metric) const;
};

struct SuiteResult {
  SuiteConfig config;
  std::vector<AppExperiment> apps;
  /// Structured failures of suite tasks that exhausted their retries (empty
  /// on a clean run). Each failed task's result slot holds default values;
  /// degraded results are never written to the cache.
  std::vector<Error> failures;
  /// True when the run stopped early on a shutdown request: incomplete
  /// result slots hold default values, the checkpoint (if enabled) holds
  /// every completed task, and nothing was cached.
  bool interrupted = false;

  bool degraded() const { return !failures.empty(); }
};

/// Runs (or loads from cache) the whole evaluation. `progress`, when given,
/// receives one line per phase. `obs`, when given, receives one span per
/// phase (suite.detect / suite.map / suite.evaluate) plus everything the
/// underlying Pipeline publishes (cached loads record a "suite.cache_load"
/// span and nothing else).
SuiteResult run_suite(const SuiteConfig& config,
                      std::ostream* progress = nullptr,
                      obs::ObsContext* obs = nullptr);

// ---------------------------------------------------------------------------
// Phase-churn differential (DESIGN.md Sec. 17).
//
// A seeded adversarial phase flip: the workload runs a pairwise sharing
// pattern whose partner shift follows `shifts` (one barrier-terminated
// iteration per entry, long stretches expressed by repetition — e.g.
// {0,0,0,0, 1,1, 0,0,0,0} is a long shift-0 phase, a brief shift-1 burst,
// and a shift-0 tail). The burst baits an online mapper into migrating to a
// placement the tail then punishes. The scenario runs the same workload
// under three OnlineMapper arms so tests and benches can compare how each
// one weathers the bait.

struct ChurnScenarioConfig {
  MachineConfig machine{};  // Harpertown defaults
  int num_threads = 8;
  /// Pair-shift schedule; entry i runs one barrier-terminated iteration of
  /// the pairs pattern under that shift.
  std::vector<int> shifts = {0, 0, 0, 0, 1, 1, 0, 0, 0, 0};
  std::uint64_t shared_accesses = 4096;
  std::uint64_t private_accesses = 512;
  /// Base OnlineMapper config shared by all three arms (each arm then
  /// overrides remap_every_barriers / rollback as its identity demands).
  /// Defaults are tuned to the scenario's short traces: dense sampling and
  /// a low matrix floor (the runs are a dozen barriers, not millions of
  /// misses), a 2-barrier decision cadence, and phase detection made
  /// near-insensitive so the brief bait burst is judged by the canary's
  /// realized-cost measurement rather than declared a new phase (the
  /// phase-epoch path has its own tests).
  OnlineMapperConfig online = [] {
    OnlineMapperConfig c;
    c.remap_every_barriers = 2;
    c.min_matrix_total = 1;
    c.detector.sample_threshold = 1;
    c.phase.drift_threshold = 0.05;
    c.phase.miss_rate_delta = 100.0;
    return c;
  }();
  std::uint64_t seed = 3;
  /// Start placement for every arm; empty = identity.
  Mapping initial;
};

/// One arm's outcome: the dynamic run plus the communication cost of its
/// final placement under the ground-truth matrix of the *tail* phase (the
/// pattern the application ends — and would continue — in).
struct ChurnArmResult {
  Pipeline::DynamicRunResult run;
  double final_cost = 0.0;
};

struct ChurnScenarioResult {
  ChurnArmResult never_remap;   ///< remapping disabled (static placement)
  ChurnArmResult no_rollback;   ///< remaps, but canary verdicts are ignored
  ChurnArmResult canary;        ///< full self-correcting configuration
};

/// Ground truth for the pairs pattern under `shift`: unit weight between
/// each partner pair (the matrix the detector would converge to).
CommMatrix pair_truth_matrix(int num_threads, int shift);

/// Runs the three-arm differential described above.
ChurnScenarioResult run_churn_scenario(const ChurnScenarioConfig& config);

/// Cache plumbing (exposed for tests).
std::string suite_cache_key(const SuiteConfig& config);
/// Result-affecting fingerprint of a config (the cache key's hash): two
/// configs share it iff they would produce identical results, so it is what
/// a checkpoint's envelope carries and validates against on resume. The
/// crash-safety knobs (checkpoint_dir / checkpoint_every_events / resume)
/// are deliberately excluded.
std::uint64_t suite_config_hash(const SuiteConfig& config);
std::string serialize_suite(const SuiteResult& result);
std::optional<SuiteResult> deserialize_suite(const std::string& text,
                                             const SuiteConfig& config);

}  // namespace tlbmap

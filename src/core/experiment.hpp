// The paper's full evaluation as a reusable harness.
//
// run_suite() reproduces the experimental protocol of Sections V/VI for a
// set of NPB workloads: detect the communication matrix with SM, HM and the
// full-trace oracle; derive SM/HM thread mappings with the hierarchical
// Edmonds matcher; then run `repetitions` performance runs per mapping.
// The OS baseline re-rolls a random placement every repetition (an unaware
// scheduler), which is also what gives it the paper's high variance.
//
// Because several bench binaries consume the same suite (Figures 6-9,
// Tables IV/V), results are cached on disk keyed by a config hash; set
// TLBMAP_NO_CACHE=1 (or use_cache=false) to force recomputation, and
// TLBMAP_CACHE_DIR to relocate the cache (default /tmp/tlbmap_cache).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/expected.hpp"
#include "core/pipeline.hpp"
#include "sim/stats.hpp"

namespace tlbmap {

struct SuiteConfig {
  MachineConfig machine{};  // Harpertown defaults (Table II / Fig. 3)
  WorkloadParams workload{};
  std::vector<std::string> apps = npb_workload_names();
  int repetitions = 8;
  /// Detector knobs, scaled to the short traces: the paper's runs last
  /// billions of cycles with millions of TLB misses, ours millions of cycles
  /// with tens of thousands of misses. Sampling 1-in-10 (instead of the
  /// paper's 1-in-100) and sweeping every 400k cycles (instead of every 10M,
  /// with the sweep cost scaled by the same 25x to preserve the ~0.84 %
  /// overhead ratio) restores a comparable number of detection events.
  /// bench_table3 additionally reports the overheads at the paper's
  /// unscaled parameters, computed from the measured miss counts.
  SmDetectorConfig sm{/*sample_threshold=*/10, /*search_cost=*/231};
  HmDetectorConfig hm{/*interval=*/400'000, /*search_cost=*/3'372};
  OracleDetectorConfig oracle{};
  /// Mapping algorithm for phase 2 (default kAuto: Edmonds matching below
  /// the threshold, recursive multisection at manycore thread counts).
  MappingConfig mapping{};
  /// Detection runs use iter_scale multiplied by this factor: the paper
  /// detects over the application's full execution, and longer detection
  /// traces stand in for that.
  double detect_iter_scale = 4.0;
  std::uint64_t base_seed = 42;
  bool use_cache = true;
  /// Worker threads for the independent simulation runs. The suite executes
  /// as three global phases — detect, map, evaluate — and the detect and
  /// evaluate phases each drain every app's runs through one shared pool of
  /// this size (suite-wide, not per app: a short app's tail overlaps a long
  /// app's head). 0 = one per hardware core. Results are bit-identical
  /// regardless of the worker count — each run simulates its own Machine
  /// and writes its own preassigned slot. (The HM sweep itself can shard
  /// its matrix accumulation further via HmDetectorConfig::sweep_workers.)
  int parallel_workers = 0;
  /// Retries per failed suite task (DESIGN.md Sec. 11). A worker never lets
  /// an exception escape: a task that throws is retried this many times,
  /// then recorded as a structured kWorkerFailure and its result slot left
  /// zeroed. Suites with failed tasks are reported degraded and not cached.
  int task_retries = 1;
  /// Crash safety (DESIGN.md Sec. 12). When non-empty, suite progress is
  /// checkpointed to `<checkpoint_dir>/suite.ckpt` as tasks complete: on
  /// SIGINT/SIGTERM (with shutdown handlers installed) or a crash, a later
  /// run with `resume = true` skips every completed task and — because all
  /// seeds and result slots are preassigned — produces a SuiteResult
  /// bit-identical to an uninterrupted run. The file is removed once the
  /// suite completes. None of these three fields enters the cache key or
  /// the config hash: they change durability, not results.
  std::string checkpoint_dir;
  /// Accumulated simulated accesses of completed tasks between checkpoint
  /// writes. 0 = write after every completed task; larger values trade
  /// write traffic against re-simulated work after a crash. A shutdown
  /// request always forces a final write regardless of this budget.
  std::uint64_t checkpoint_every_events = 0;
  /// Load `<checkpoint_dir>/suite.ckpt` and continue from it. A missing,
  /// corrupt or config-mismatched checkpoint is reported (structured error
  /// in the progress stream, `checkpoint.rejected` metric) and the suite
  /// falls back to a fresh run — resume never aborts and never crashes.
  bool resume = false;
  /// Observability (DESIGN.md Sec. 13). Like the crash-safety knobs, the
  /// two fields below never enter the cache key or config hash: they change
  /// what a run records about itself, not its results.
  ///
  /// Series sampling interval, forwarded to every worker Pipeline
  /// (Pipeline::set_metrics_interval_events); the suite additionally
  /// captures one "phase:suite.<name>" sample after each of its three
  /// global phases. 0 (default) = series stream off. With
  /// parallel_workers > 1 the *ordering* of interval samples from
  /// concurrent runs interleaves nondeterministically; the byte-identical
  /// series guarantee holds for single-worker suites and plain Pipeline
  /// runs.
  std::uint64_t metrics_interval_events = 0;
  /// When non-empty, the suite writes a run manifest — provenance, wall/CPU
  /// cost, peak RSS, per-phase attribution, collapsed flamegraph stacks
  /// (obs/selfprof.hpp) — to this path via atomic_write_file, on every exit
  /// path: clean, cached, degraded and interrupted.
  std::string manifest_out;
};

/// Repeated performance runs under one mapping policy.
struct MappingRuns {
  std::string label;  ///< "OS" / "SM" / "HM"
  std::vector<MachineStats> runs;
};

/// Which scalar a summary extracts from a run. Figures 7-9 normalise raw
/// event counts; Table IV reports the per-second rates.
enum class Metric {
  kTimeSeconds,
  kInvalidations,
  kSnoops,
  kL2Misses,
  kInvalidationsPerSec,
  kSnoopsPerSec,
  kL2MissesPerSec,
};

double metric_value(const MachineStats& stats, Metric metric);
Summary summarize_runs(const MappingRuns& runs, Metric metric);

struct AppExperiment {
  std::string app;
  DetectionResult sm_detection;
  DetectionResult hm_detection;
  DetectionResult oracle_detection;
  Mapping sm_mapping;
  Mapping hm_mapping;
  MappingRuns os_runs, sm_runs, hm_runs;

  /// mean(metric under mapping) / mean(metric under OS) — the normalised
  /// bars of Figures 6-9.
  double normalized(const MappingRuns& runs, Metric metric) const;
};

struct SuiteResult {
  SuiteConfig config;
  std::vector<AppExperiment> apps;
  /// Structured failures of suite tasks that exhausted their retries (empty
  /// on a clean run). Each failed task's result slot holds default values;
  /// degraded results are never written to the cache.
  std::vector<Error> failures;
  /// True when the run stopped early on a shutdown request: incomplete
  /// result slots hold default values, the checkpoint (if enabled) holds
  /// every completed task, and nothing was cached.
  bool interrupted = false;

  bool degraded() const { return !failures.empty(); }
};

/// Runs (or loads from cache) the whole evaluation. `progress`, when given,
/// receives one line per phase. `obs`, when given, receives one span per
/// phase (suite.detect / suite.map / suite.evaluate) plus everything the
/// underlying Pipeline publishes (cached loads record a "suite.cache_load"
/// span and nothing else).
SuiteResult run_suite(const SuiteConfig& config,
                      std::ostream* progress = nullptr,
                      obs::ObsContext* obs = nullptr);

/// Cache plumbing (exposed for tests).
std::string suite_cache_key(const SuiteConfig& config);
/// Result-affecting fingerprint of a config (the cache key's hash): two
/// configs share it iff they would produce identical results, so it is what
/// a checkpoint's envelope carries and validates against on resume. The
/// crash-safety knobs (checkpoint_dir / checkpoint_every_events / resume)
/// are deliberately excluded.
std::uint64_t suite_config_hash(const SuiteConfig& config);
std::string serialize_suite(const SuiteResult& result);
std::optional<SuiteResult> deserialize_suite(const std::string& text,
                                             const SuiteConfig& config);

}  // namespace tlbmap

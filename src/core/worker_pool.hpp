// A persistent pool of worker threads shared by every fan-out in the
// library: the suite's detect/evaluate phases and the epoch-parallel
// machine's shard loop (DESIGN.md Sec. 15). Threads are spawned once and
// parked on a condition variable between jobs, so repeated fine-grained
// fan-outs (one per simulation epoch) cost a wakeup, not a thread spawn.
//
// Model: one job at a time. `run(count, fn)` executes fn(idx) for every
// idx in [0, count) across the pool's threads plus the calling thread,
// claim-based (an atomic cursor hands out indices), and returns when all
// indices are settled. `run` is NOT reentrant: never call it from inside
// a task running on the same pool.
//
// Work distribution is nondeterministic; callers that need deterministic
// results must make each fn(idx) independent of execution order (the
// suite preassigns result slots; the epoch engine reduces per-shard
// buckets in shard order).
#pragma once

#include <cstddef>
#include <functional>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace tlbmap {

class WorkerPool {
 public:
  /// Total parallelism, calling thread included: `workers` of 1 spawns no
  /// threads and `run` degenerates to a serial loop. Values < 1 clamp to 1.
  explicit WorkerPool(int workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int workers() const { return workers_; }

  /// Runs fn(idx) for each idx in [0, count). Blocks until every index is
  /// settled. When `stop` is provided and turns true, remaining indices
  /// are drained without executing fn (cooperative cancellation: tasks
  /// already running finish themselves). The first exception thrown by a
  /// task is rethrown here after the job settles.
  void run(std::size_t count, const std::function<void(std::size_t)>& fn,
           const std::function<bool()>& stop = {});

 private:
  struct Job;

  void worker_loop();
  void work_on(Job& job);

  const int workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  std::shared_ptr<Job> job_;     // current job; guarded by mutex_
  std::uint64_t generation_ = 0;  // bumped per job; guarded by mutex_
  bool stopping_ = false;         // guarded by mutex_
  std::vector<std::thread> threads_;
};

}  // namespace tlbmap

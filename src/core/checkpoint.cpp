#include "core/checkpoint.hpp"

#include <cstddef>
#include <optional>
#include <sstream>
#include <utility>

#include "core/codec.hpp"
#include "core/io.hpp"

namespace tlbmap {
namespace {

constexpr char kMagic[4] = {'T', 'L', 'B', 'K'};
constexpr std::size_t kHeaderSize = 28;
/// Sanity ceiling on matrix sizes, mapping lengths and container counts:
/// far above any real suite, low enough that a corrupted length field can
/// never drive a multi-gigabyte allocation before the CRC would have
/// caught it (lengths are checked even though the CRC already passed —
/// defence in depth against a colliding corruption).
constexpr std::uint64_t kMaxThreads = 4096;
constexpr std::uint64_t kMaxCount = 1u << 20;

std::string hex(std::uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

}  // namespace

// ---- field encoders (shared by the suite, detector-state and service
// session formats; declared in checkpoint.hpp) ----

void write_stats(BinWriter& w, const MachineStats& s) {
  w.u64(s.accesses);
  w.u64(s.reads);
  w.u64(s.writes);
  w.u64(s.tlb_hits);
  w.u64(s.tlb_misses);
  w.u64(s.l1_hits);
  w.u64(s.l1_misses);
  w.u64(s.l2_accesses);
  w.u64(s.l2_hits);
  w.u64(s.l2_misses);
  w.u64(s.invalidations);
  w.u64(s.snoop_transactions);
  w.u64(s.writebacks);
  w.u64(s.memory_fetches);
  w.u64(s.memory_fetches_local);
  w.u64(s.memory_fetches_remote);
  w.u64(s.intra_socket_messages);
  w.u64(s.inter_socket_messages);
  w.u64(s.execution_cycles);
  w.u64(s.detection_overhead_cycles);
  w.u64(s.detector_searches);
}

MachineStats read_stats(BinReader& r) {
  MachineStats s;
  s.accesses = r.u64();
  s.reads = r.u64();
  s.writes = r.u64();
  s.tlb_hits = r.u64();
  s.tlb_misses = r.u64();
  s.l1_hits = r.u64();
  s.l1_misses = r.u64();
  s.l2_accesses = r.u64();
  s.l2_hits = r.u64();
  s.l2_misses = r.u64();
  s.invalidations = r.u64();
  s.snoop_transactions = r.u64();
  s.writebacks = r.u64();
  s.memory_fetches = r.u64();
  s.memory_fetches_local = r.u64();
  s.memory_fetches_remote = r.u64();
  s.intra_socket_messages = r.u64();
  s.inter_socket_messages = r.u64();
  s.execution_cycles = r.u64();
  s.detection_overhead_cycles = r.u64();
  s.detector_searches = r.u64();
  return s;
}

void write_matrix(BinWriter& w, const CommMatrix& m) {
  const int n = m.size();
  w.u32(static_cast<std::uint32_t>(n));
  for (ThreadId a = 0; a < n; ++a) {
    for (ThreadId b = a + 1; b < n; ++b) w.u64(m.at(a, b));
  }
}

CommMatrix read_matrix(BinReader& r) {
  const std::uint32_t n = r.u32();
  if (!r.ok()) return CommMatrix(1);
  if (n == 0 || n > kMaxThreads) {
    r.fail("comm matrix size " + std::to_string(n) + " out of range");
    return CommMatrix(1);
  }
  CommMatrix m(static_cast<int>(n));
  for (ThreadId a = 0; a < static_cast<int>(n); ++a) {
    for (ThreadId b = a + 1; b < static_cast<int>(n); ++b) {
      const std::uint64_t v = r.u64();
      if (v != 0) m.add(a, b, v);
    }
  }
  return m;
}

void write_mapping(BinWriter& w, const Mapping& m) {
  w.u64(m.size());
  for (const CoreId core : m) w.u32(static_cast<std::uint32_t>(core));
}

Mapping read_mapping(BinReader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok()) return {};
  if (n > kMaxThreads) {
    r.fail("mapping length " + std::to_string(n) + " out of range");
    return {};
  }
  Mapping m;
  m.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    m.push_back(static_cast<CoreId>(r.u32()));
  }
  return m;
}

namespace {

void write_detection(BinWriter& w, const DetectionResult& d) {
  w.str(d.mechanism);
  w.u64(d.searches);
  write_stats(w, d.stats);
  write_matrix(w, d.matrix);
}

DetectionResult read_detection(BinReader& r) {
  DetectionResult d;
  d.mechanism = r.str();
  d.searches = r.u64();
  d.stats = read_stats(r);
  d.matrix = read_matrix(r);
  return d;
}

void write_sm(BinWriter& w, const SmDetectorState& s) {
  write_matrix(w, s.matrix);
  w.u64(s.searches);
  w.u64(s.misses_seen);
  w.u32(s.miss_counter);
}

SmDetectorState read_sm(BinReader& r) {
  SmDetectorState s;
  s.matrix = read_matrix(r);
  s.searches = r.u64();
  s.misses_seen = r.u64();
  s.miss_counter = r.u32();
  return s;
}

void write_u64_vec(BinWriter& w, const std::vector<std::uint64_t>& v) {
  w.u64(v.size());
  for (const std::uint64_t x : v) w.u64(x);
}

std::vector<std::uint64_t> read_u64_vec(BinReader& r) {
  const std::uint64_t n = r.u64();
  if (!r.ok()) return {};
  if (n > kMaxThreads) {
    r.fail("counter vector length " + std::to_string(n) + " out of range");
    return {};
  }
  std::vector<std::uint64_t> v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(r.u64());
  return v;
}

void write_phase(BinWriter& w, const PhaseDetectorState& s) {
  w.u64(s.epoch);
  w.boolean(s.has_reference);
  write_matrix(w, s.reference);
  write_u64_vec(w, s.ref_accesses);
  write_u64_vec(w, s.ref_misses);
  write_u64_vec(w, s.window_accesses);
  write_u64_vec(w, s.window_misses);
}

PhaseDetectorState read_phase(BinReader& r) {
  PhaseDetectorState s;
  s.epoch = r.u64();
  s.has_reference = r.boolean();
  s.reference = read_matrix(r);
  s.ref_accesses = read_u64_vec(r);
  s.ref_misses = read_u64_vec(r);
  s.window_accesses = read_u64_vec(r);
  s.window_misses = read_u64_vec(r);
  return s;
}

/// Runs a payload-level parse: decode via `body`, then require a clean
/// reader with no trailing bytes.
template <typename T, typename Body>
Expected<T> parse_payload(std::string_view payload, Body body) {
  BinReader r(payload);
  T value = body(r);
  if (!r.ok()) return r.error();
  if (!r.at_end()) {
    r.fail(std::to_string(payload.size() - r.pos()) + " trailing bytes");
    return r.error();
  }
  return value;
}

}  // namespace

std::string seal_checkpoint(std::string_view payload,
                            std::uint64_t config_hash) {
  std::string out;
  out.reserve(kHeaderSize + payload.size());
  out.append(kMagic, sizeof(kMagic));
  append_u32(out, kCheckpointVersion);
  append_u64(out, config_hash);
  append_u64(out, payload.size());
  append_u32(out, crc32(payload));
  out.append(payload);
  return out;
}

Expected<std::string> unseal_checkpoint(std::string_view bytes,
                                        std::uint64_t expected_hash) {
  if (bytes.size() < kHeaderSize) {
    return Error{ErrorCode::kCorruptCheckpoint,
                 "checkpoint truncated at byte " +
                     std::to_string(bytes.size()) + ": header needs " +
                     std::to_string(kHeaderSize) + " bytes"};
  }
  if (bytes.compare(0, sizeof(kMagic),
                    std::string_view(kMagic, sizeof(kMagic))) != 0) {
    return Error{ErrorCode::kCorruptCheckpoint,
                 "bad checkpoint magic at byte 0 (want \"TLBK\")"};
  }
  const std::uint32_t version = load_u32(bytes, 4);
  if (version != kCheckpointVersion) {
    return Error{ErrorCode::kCorruptCheckpoint,
                 "unsupported checkpoint version " + std::to_string(version) +
                     " at byte 4 (this build reads version " +
                     std::to_string(kCheckpointVersion) + ")"};
  }
  const std::uint64_t config_hash = load_u64(bytes, 8);
  const std::uint64_t payload_size = load_u64(bytes, 16);
  const std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_size) {
    return Error{ErrorCode::kCorruptCheckpoint,
                 "payload size field at byte 16 promises " +
                     std::to_string(payload_size) + " bytes, file holds " +
                     std::to_string(payload.size())};
  }
  const std::uint32_t stored_crc = load_u32(bytes, 24);
  const std::uint32_t actual_crc = crc32(payload);
  if (stored_crc != actual_crc) {
    return Error{ErrorCode::kCorruptCheckpoint,
                 "payload CRC mismatch at byte 24: stored " +
                     hex(stored_crc) + ", computed " + hex(actual_crc)};
  }
  // Integrity established; only now compare identity, so a corrupt file is
  // always reported as corrupt rather than as a config mismatch.
  if (config_hash != expected_hash) {
    return Error{ErrorCode::kCheckpointMismatch,
                 "checkpoint was written for config " + hex(config_hash) +
                     ", current config is " + hex(expected_hash)};
  }
  return std::string(payload);
}

std::string serialize_checkpoint(const SuiteCheckpoint& ckpt) {
  BinWriter w;
  w.u64(ckpt.detect_tasks);
  w.u64(ckpt.eval_tasks);
  w.u64(ckpt.detect_done.size());
  for (const auto& [idx, detection] : ckpt.detect_done) {
    w.u64(idx);
    write_detection(w, detection);
  }
  w.boolean(ckpt.map_done);
  w.u64(ckpt.sm_mappings.size());
  for (const Mapping& m : ckpt.sm_mappings) write_mapping(w, m);
  w.u64(ckpt.hm_mappings.size());
  for (const Mapping& m : ckpt.hm_mappings) write_mapping(w, m);
  w.u64(ckpt.eval_done.size());
  for (const auto& [idx, stats] : ckpt.eval_done) {
    w.u64(idx);
    write_stats(w, stats);
  }
  return seal_checkpoint(w.take(), ckpt.config_hash);
}

Expected<SuiteCheckpoint> parse_checkpoint(std::string_view bytes,
                                           std::uint64_t expected_hash) {
  Expected<std::string> payload = unseal_checkpoint(bytes, expected_hash);
  if (!payload) return payload.error();
  return parse_payload<SuiteCheckpoint>(
      *payload, [expected_hash](BinReader& r) {
        SuiteCheckpoint ckpt;
        ckpt.config_hash = expected_hash;
        ckpt.detect_tasks = r.u64();
        ckpt.eval_tasks = r.u64();
        const std::uint64_t detect_count = r.u64();
        if (r.ok() && detect_count > kMaxCount) {
          r.fail("detect-task count " + std::to_string(detect_count) +
                 " out of range");
        }
        for (std::uint64_t i = 0; r.ok() && i < detect_count; ++i) {
          const std::uint64_t idx = r.u64();
          ckpt.detect_done.emplace(idx, read_detection(r));
        }
        ckpt.map_done = r.boolean();
        const std::uint64_t sm_count = r.u64();
        if (r.ok() && sm_count > kMaxCount) {
          r.fail("SM mapping count " + std::to_string(sm_count) +
                 " out of range");
        }
        for (std::uint64_t i = 0; r.ok() && i < sm_count; ++i) {
          ckpt.sm_mappings.push_back(read_mapping(r));
        }
        const std::uint64_t hm_count = r.u64();
        if (r.ok() && hm_count > kMaxCount) {
          r.fail("HM mapping count " + std::to_string(hm_count) +
                 " out of range");
        }
        for (std::uint64_t i = 0; r.ok() && i < hm_count; ++i) {
          ckpt.hm_mappings.push_back(read_mapping(r));
        }
        const std::uint64_t eval_count = r.u64();
        if (r.ok() && eval_count > kMaxCount) {
          r.fail("eval-task count " + std::to_string(eval_count) +
                 " out of range");
        }
        for (std::uint64_t i = 0; r.ok() && i < eval_count; ++i) {
          const std::uint64_t idx = r.u64();
          ckpt.eval_done.emplace(idx, read_stats(r));
        }
        return ckpt;
      });
}

Expected<void> save_checkpoint(const std::filesystem::path& path,
                               const SuiteCheckpoint& ckpt) {
  return atomic_write_file(path, serialize_checkpoint(ckpt));
}

Expected<SuiteCheckpoint> load_checkpoint(const std::filesystem::path& path,
                                          std::uint64_t expected_hash) {
  Expected<std::string> bytes = read_file(path);
  if (!bytes) return bytes.error();
  return parse_checkpoint(*bytes, expected_hash);
}

std::string serialize_sm_state(const SmDetectorState& state) {
  BinWriter w;
  write_sm(w, state);
  return w.take();
}

Expected<SmDetectorState> parse_sm_state(std::string_view payload) {
  return parse_payload<SmDetectorState>(
      payload, [](BinReader& r) { return read_sm(r); });
}

std::string serialize_hm_state(const HmDetectorState& state) {
  BinWriter w;
  write_matrix(w, state.matrix);
  w.u64(state.searches);
  w.u64(state.misses_seen);
  w.u64(state.last_sweep);
  w.u64(state.pending_delay);
  w.i32(state.retry_count);
  w.u64(state.retry_at);
  return w.take();
}

Expected<HmDetectorState> parse_hm_state(std::string_view payload) {
  return parse_payload<HmDetectorState>(payload, [](BinReader& r) {
    HmDetectorState s;
    s.matrix = read_matrix(r);
    s.searches = r.u64();
    s.misses_seen = r.u64();
    s.last_sweep = r.u64();
    s.pending_delay = r.u64();
    s.retry_count = r.i32();
    s.retry_at = r.u64();
    return s;
  });
}

std::string serialize_mapper_state(const OnlineMapperState& state) {
  BinWriter w;
  write_sm(w, state.detector);
  write_mapping(w, state.mapping);
  w.i32(state.migrations);
  w.i32(state.remap_decisions);
  w.i32(state.degraded_decisions);
  w.i32(state.cooldown_left);
  // Self-stabilization trail (format version 2, DESIGN.md Sec. 17).
  w.i32(state.rollbacks);
  w.i32(state.canary_commits);
  w.i32(state.backoff_skips);
  w.i32(state.canary_left);
  w.i32(state.backoff_left);
  w.i32(state.phase_rollbacks);
  write_mapping(w, state.canary_prev);
  w.u64(state.canary_cost);
  w.u64(state.canary_accesses);
  w.u64(state.baseline_cost);
  w.u64(state.baseline_accesses);
  w.u64(state.decision_cost);
  w.u64(state.decision_accesses);
  w.u64(state.phase_cost);
  w.u64(state.phase_accesses);
  write_phase(w, state.phase);
  return w.take();
}

Expected<OnlineMapperState> parse_mapper_state(std::string_view payload) {
  return parse_payload<OnlineMapperState>(payload, [](BinReader& r) {
    OnlineMapperState s;
    s.detector = read_sm(r);
    s.mapping = read_mapping(r);
    s.migrations = r.i32();
    s.remap_decisions = r.i32();
    s.degraded_decisions = r.i32();
    s.cooldown_left = r.i32();
    s.rollbacks = r.i32();
    s.canary_commits = r.i32();
    s.backoff_skips = r.i32();
    s.canary_left = r.i32();
    s.backoff_left = r.i32();
    s.phase_rollbacks = r.i32();
    s.canary_prev = read_mapping(r);
    s.canary_cost = r.u64();
    s.canary_accesses = r.u64();
    s.baseline_cost = r.u64();
    s.baseline_accesses = r.u64();
    s.decision_cost = r.u64();
    s.decision_accesses = r.u64();
    s.phase_cost = r.u64();
    s.phase_accesses = r.u64();
    s.phase = read_phase(r);
    return s;
  });
}

Expected<void> save_mapper_checkpoint(const std::filesystem::path& path,
                                      const OnlineMapperState& state,
                                      std::uint64_t tag) {
  return atomic_write_file(path,
                           seal_checkpoint(serialize_mapper_state(state), tag));
}

Expected<OnlineMapperState> load_mapper_checkpoint(
    const std::filesystem::path& path, std::uint64_t tag) {
  Expected<std::string> bytes = read_file(path);
  if (!bytes) return bytes.error();
  Expected<std::string> payload = unseal_checkpoint(*bytes, tag);
  if (!payload) return payload.error();
  return parse_mapper_state(*payload);
}

}  // namespace tlbmap

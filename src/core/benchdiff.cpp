#include "core/benchdiff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>

#include "core/report.hpp"

namespace tlbmap {

namespace {

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON parser. Enough of RFC 8259 for
// google-benchmark output; rejects anything else with a position-tagged
// error instead of guessing.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue* find(const std::string& key) const {
    const auto it = object.find(key);
    return it == object.end() ? nullptr : &it->second;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  Expected<JsonValue> parse() {
    JsonValue v;
    if (!parse_value(v)) return fail();
    skip_ws();
    if (pos_ != text_.size()) {
      error_ = "trailing characters";
      return fail();
    }
    return v;
  }

 private:
  Expected<JsonValue> fail() const {
    std::ostringstream msg;
    msg << "JSON parse error at byte " << pos_ << ": "
        << (error_.empty() ? "malformed input" : error_);
    return Error{ErrorCode::kInvalidArgument, msg.str()};
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    error_ = std::string("expected '") + c + "'";
    return false;
  }

  bool parse_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) {
      error_ = std::string("expected '") + lit + "'";
      return false;
    }
    pos_ += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Benchmark names are ASCII; decode BMP escapes to a single
            // byte when they fit, reject surrogate pairs.
            if (pos_ + 4 > text_.size()) {
              error_ = "truncated \\u escape";
              return false;
            }
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code += static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code += static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code += static_cast<unsigned>(h - 'A' + 10);
              else {
                error_ = "bad \\u escape";
                return false;
              }
            }
            if (code > 0xFF) {
              error_ = "non-ASCII \\u escape unsupported";
              return false;
            }
            out += static_cast<char>(code);
            break;
          }
          default:
            error_ = "bad escape";
            return false;
        }
      } else {
        out += c;
      }
    }
    error_ = "unterminated string";
    return false;
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token = text_.substr(start, pos_ - start);
    try {
      std::size_t used = 0;
      out = std::stod(token, &used);
      if (used != token.size()) throw std::invalid_argument(token);
    } catch (const std::exception&) {
      error_ = "bad number '" + token + "'";
      return false;
    }
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
      return false;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': {
        out.kind = JsonValue::Kind::kObject;
        ++pos_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
          ++pos_;
          return true;
        }
        for (;;) {
          std::string key;
          skip_ws();
          if (!parse_string(key)) return false;
          if (!consume(':')) return false;
          JsonValue child;
          if (!parse_value(child)) return false;
          out.object.emplace(std::move(key), std::move(child));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume('}');
        }
      }
      case '[': {
        out.kind = JsonValue::Kind::kArray;
        ++pos_;
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
          ++pos_;
          return true;
        }
        for (;;) {
          JsonValue child;
          if (!parse_value(child)) return false;
          out.array.push_back(std::move(child));
          skip_ws();
          if (pos_ < text_.size() && text_[pos_] == ',') {
            ++pos_;
            continue;
          }
          return consume(']');
        }
      }
      case '"':
        out.kind = JsonValue::Kind::kString;
        return parse_string(out.str);
      case 't':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = true;
        return parse_literal("true");
      case 'f':
        out.kind = JsonValue::Kind::kBool;
        out.boolean = false;
        return parse_literal("false");
      case 'n':
        out.kind = JsonValue::Kind::kNull;
        return parse_literal("null");
      default:
        out.kind = JsonValue::Kind::kNumber;
        return parse_number(out.number);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  std::string error_;
};

double unit_to_ns(const std::string& unit) {
  if (unit == "ns") return 1.0;
  if (unit == "us") return 1e3;
  if (unit == "ms") return 1e6;
  if (unit == "s") return 1e9;
  return 1.0;  // benchmark defaults to ns when absent
}

/// Per-name min over the preferred run_type ("iteration"; aggregate-only
/// files fall back to aggregates so --benchmark_report_aggregates_only
/// baselines still diff).
std::map<std::string, BenchComparison> fold_minimums(
    const std::vector<BenchRecord>& records, bool use_cpu_time, bool as_base,
    std::map<std::string, BenchComparison> into = {}) {
  auto fold = [&](const BenchRecord& r) {
    BenchComparison& row = into[r.name];
    row.name = r.name;
    const double ns = r.time_ns(use_cpu_time);
    double& min_ns = as_base ? row.base_min_ns : row.cur_min_ns;
    int& samples = as_base ? row.base_samples : row.cur_samples;
    if (samples == 0 || ns < min_ns) min_ns = ns;
    ++samples;
  };
  bool any_iteration = false;
  for (const BenchRecord& r : records) {
    if (r.run_type == "iteration") {
      any_iteration = true;
      fold(r);
    }
  }
  if (!any_iteration) {
    for (const BenchRecord& r : records) fold(r);
  }
  return into;
}

}  // namespace

double BenchRecord::time_ns(bool use_cpu_time) const {
  return (use_cpu_time ? cpu_time : real_time) * unit_to_ns(time_unit);
}

Expected<std::vector<BenchRecord>> parse_benchmark_json(
    const std::string& text) {
  JsonParser parser(text);
  Expected<JsonValue> root = parser.parse();
  if (!root) return root.error();
  if (root->kind != JsonValue::Kind::kObject) {
    return Error{ErrorCode::kInvalidArgument,
                 "benchmark JSON: top level is not an object"};
  }
  const JsonValue* benchmarks = root->find("benchmarks");
  if (benchmarks == nullptr ||
      benchmarks->kind != JsonValue::Kind::kArray) {
    return Error{ErrorCode::kInvalidArgument,
                 "benchmark JSON: missing \"benchmarks\" array"};
  }
  std::vector<BenchRecord> records;
  records.reserve(benchmarks->array.size());
  for (const JsonValue& entry : benchmarks->array) {
    if (entry.kind != JsonValue::Kind::kObject) {
      return Error{ErrorCode::kInvalidArgument,
                   "benchmark JSON: non-object benchmark entry"};
    }
    BenchRecord r;
    const JsonValue* name = entry.find("name");
    if (name == nullptr || name->kind != JsonValue::Kind::kString ||
        name->str.empty()) {
      return Error{ErrorCode::kInvalidArgument,
                   "benchmark JSON: benchmark entry without a name"};
    }
    r.name = name->str;
    if (const JsonValue* v = entry.find("run_type")) r.run_type = v->str;
    if (r.run_type.empty()) r.run_type = "iteration";
    if (const JsonValue* v = entry.find("real_time")) r.real_time = v->number;
    if (const JsonValue* v = entry.find("cpu_time")) r.cpu_time = v->number;
    if (const JsonValue* v = entry.find("time_unit")) r.time_unit = v->str;
    if (const JsonValue* v = entry.find("iterations")) {
      r.iterations = static_cast<std::uint64_t>(v->number);
    }
    records.push_back(std::move(r));
  }
  return records;
}

BenchDiffReport compare_benchmarks(const std::vector<BenchRecord>& baseline,
                                   const std::vector<BenchRecord>& current,
                                   const BenchDiffConfig& config) {
  std::map<std::string, BenchComparison> rows =
      fold_minimums(baseline, config.use_cpu_time, /*as_base=*/true);
  rows = fold_minimums(current, config.use_cpu_time, /*as_base=*/false,
                       std::move(rows));

  BenchDiffReport report;
  for (auto& [name, row] : rows) {
    if (row.base_samples == 0) {
      report.added.push_back(name);
      continue;
    }
    if (row.cur_samples == 0) {
      report.missing.push_back(name);
      continue;
    }
    const double delta_ns = row.cur_min_ns - row.base_min_ns;
    row.regressed = delta_ns > row.base_min_ns * config.rel_threshold &&
                    delta_ns > config.abs_floor_ns;
    row.improved = -delta_ns > row.base_min_ns * config.rel_threshold &&
                   -delta_ns > config.abs_floor_ns;
    report.has_regression = report.has_regression || row.regressed;
    report.rows.push_back(std::move(row));
  }
  if (!config.allow_missing && !report.missing.empty()) {
    report.has_regression = true;
  }
  return report;
}

std::string BenchDiffReport::render() const {
  TextTable table({"benchmark", "base min", "current min", "delta", ""});
  for (const BenchComparison& row : rows) {
    std::ostringstream delta;
    delta << (row.delta() >= 0 ? "+" : "")
          << fmt_double(row.delta() * 100.0, 2) << "%";
    table.add_row({row.name, fmt_double(row.base_min_ns, 1) + " ns",
                   fmt_double(row.cur_min_ns, 1) + " ns", delta.str(),
                   row.regressed ? "REGRESSED"
                                 : (row.improved ? "improved" : "ok")});
  }
  std::ostringstream out;
  out << table.str();
  for (const std::string& name : missing) {
    out << "MISSING: " << name << " (in baseline, not in current run)\n";
  }
  for (const std::string& name : added) {
    out << "new: " << name << " (not in baseline)\n";
  }
  out << (has_regression ? "verdict: REGRESSION\n" : "verdict: clean\n");
  return out.str();
}

namespace {

Expected<std::vector<BenchRecord>> load_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Error{ErrorCode::kIoError, "cannot open " + path};
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  Expected<std::vector<BenchRecord>> parsed =
      parse_benchmark_json(buf.str());
  if (!parsed) {
    return Error{parsed.error().code,
                 path + ": " + parsed.error().message};
  }
  return parsed;
}

}  // namespace

int run_benchdiff(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err) {
  const char* usage =
      "usage: tlbmap_benchdiff BASELINE.json CURRENT.json\n"
      "         [--threshold X]     relative slowdown gate (default 0.10)\n"
      "         [--abs-floor-ns X]  absolute slowdown gate (default 50)\n"
      "         [--real-time]       compare real_time instead of cpu_time\n"
      "         [--allow-missing]   tolerate benchmarks absent from current\n"
      "exit: 0 clean, 1 regression/missing, 2 usage or parse error\n";
  BenchDiffConfig config;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_double = [&](double& slot) {
      if (i + 1 >= argc) return false;
      try {
        std::size_t used = 0;
        const std::string v = argv[++i];
        slot = std::stod(v, &used);
        return used == v.size();
      } catch (const std::exception&) {
        return false;
      }
    };
    if (arg == "--help") {
      out << usage;
      return 0;
    } else if (arg == "--threshold") {
      if (!next_double(config.rel_threshold) || config.rel_threshold < 0) {
        err << "benchdiff: bad --threshold\n" << usage;
        return 2;
      }
    } else if (arg == "--abs-floor-ns") {
      if (!next_double(config.abs_floor_ns) || config.abs_floor_ns < 0) {
        err << "benchdiff: bad --abs-floor-ns\n" << usage;
        return 2;
      }
    } else if (arg == "--real-time") {
      config.use_cpu_time = false;
    } else if (arg == "--allow-missing") {
      config.allow_missing = true;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "benchdiff: unknown option " << arg << "\n" << usage;
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    err << "benchdiff: need exactly two input files\n" << usage;
    return 2;
  }
  Expected<std::vector<BenchRecord>> base = load_bench_file(files[0]);
  if (!base) {
    err << "benchdiff: " << base.error().to_string() << "\n";
    return 2;
  }
  Expected<std::vector<BenchRecord>> cur = load_bench_file(files[1]);
  if (!cur) {
    err << "benchdiff: " << cur.error().to_string() << "\n";
    return 2;
  }
  const BenchDiffReport report = compare_benchmarks(*base, *cur, config);
  out << "baseline: " << files[0] << " (" << base->size() << " records)\n"
      << "current:  " << files[1] << " (" << cur->size() << " records)\n"
      << "gate: min-of-K, +" << fmt_double(config.rel_threshold * 100.0, 1)
      << "% relative AND +" << fmt_double(config.abs_floor_ns, 1)
      << " ns absolute, " << (config.use_cpu_time ? "cpu_time" : "real_time")
      << "\n\n"
      << report.render();
  return report.has_regression ? 1 : 0;
}

}  // namespace tlbmap

#include "core/shutdown.hpp"

#include <csignal>

#include <atomic>

namespace tlbmap {

namespace {

std::atomic<bool> g_shutdown{false};

extern "C" void shutdown_signal_handler(int sig) {
  // Second signal while already shutting down: the user means it — restore
  // the default disposition and re-raise so the process dies immediately.
  if (g_shutdown.exchange(true, std::memory_order_relaxed)) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

bool shutdown_requested() {
  return g_shutdown.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_shutdown.store(true, std::memory_order_relaxed);
}

void reset_shutdown() {
  g_shutdown.store(false, std::memory_order_relaxed);
}

void install_shutdown_handlers() {
  std::signal(SIGINT, shutdown_signal_handler);
  std::signal(SIGTERM, shutdown_signal_handler);
}

}  // namespace tlbmap

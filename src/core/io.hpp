// Crash-safe file primitives shared by every artifact writer (DESIGN.md
// Sec. 12): suite caches, checkpoints, metrics/trace exports and trace
// recordings all funnel through atomic_write_file(), so no reader can ever
// observe a half-written artifact — a crash mid-export leaves either the
// previous complete file or nothing, never a truncated one.
//
// Deliberately dependency-free (only expected.hpp, which is header-only) and
// compiled into its own tiny target (tlbmap_io) so the sim layer can link it
// without a cycle through tlbmap_core.
#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <string_view>

#include "core/expected.hpp"

namespace tlbmap {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of `data`, seeded with the
/// conventional all-ones initial value. crc32("123456789") == 0xCBF43926.
std::uint32_t crc32(std::string_view data);

/// Writes `data` to `path` atomically: the bytes land in a unique sibling
/// temp file first (`<path>.tmp.<pid>.<n>`), are fsync'd, and only then
/// renamed over `path` (rename within one directory is atomic on POSIX).
/// The parent directory is fsync'd afterwards so the rename itself is
/// durable. Any failure — open, short write, fsync, rename — removes the
/// temp file and returns a structured kIoError naming the errno; the
/// previous contents of `path`, if any, are left untouched.
Expected<void> atomic_write_file(const std::filesystem::path& path,
                                 std::string_view data);

/// Reads a whole file into a string, or a structured kIoError. A regular
/// read (no locking): pair it with atomic_write_file on the producer side
/// and the content is always a complete artifact.
Expected<std::string> read_file(const std::filesystem::path& path);

}  // namespace tlbmap

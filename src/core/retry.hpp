// Shared retry policy: capped attempts with jittered exponential backoff,
// deterministic under a fixed seed (DESIGN.md Sec. 16).
//
// Generalised from the HM detector's sweep-retry loop (DESIGN.md Sec. 11)
// when the mapping service needed the same shape for degraded-detection
// retries: attempt k waits base_delay * factor^(k-1), plus a seeded jitter
// drawn uniformly from [0, jitter * delay]. Delays are in caller units —
// simulated cycles at the HM site, service pump ticks in src/svc — the
// policy never touches a clock itself.
//
// Jitter comes from a splitmix64 stream over (seed, attempt), not from a
// stateful PRNG: the delay of attempt k is a pure function of the policy
// and k, so restoring a session from a checkpoint reproduces the exact
// backoff schedule without serialising generator state.
#pragma once

#include <cstdint>
#include <stdexcept>

namespace tlbmap {

struct RetryPolicy {
  /// Attempts after the initial failure before giving up. 0 disables
  /// retrying entirely (the first failure is final).
  int max_attempts = 4;
  /// Delay before the first retry, in caller units (cycles, ticks, ...).
  /// Clamped up to 1 by delay(): a zero wait would retry in the same
  /// scheduling instant and defeat the backoff.
  std::uint64_t base_delay = 1;
  /// Multiplier applied per attempt (2 = classic doubling).
  std::uint64_t factor = 2;
  /// Jitter fraction in [0, 1]: attempt k adds a seeded uniform draw from
  /// [0, jitter * exponential_delay(k)]. 0 (default) = pure exponential,
  /// which keeps pre-existing adopters bit-identical.
  double jitter = 0.0;
  /// Seed of the jitter stream; only read when jitter > 0.
  std::uint64_t seed = 0;

  /// Throws std::invalid_argument on a negative attempt cap, a zero
  /// factor, or a jitter outside [0, 1] (matching the config validate()
  /// style used across the repo).
  void validate() const;

  /// True when `attempt` (1-based) is within the cap.
  bool should_retry(int attempt) const {
    return attempt >= 1 && attempt <= max_attempts;
  }

  /// Backoff before 1-based retry `attempt`: base_delay * factor^(attempt-1)
  /// plus the seeded jitter share. Saturates at the u64 ceiling instead of
  /// wrapping, so an absurd attempt count degrades to "wait forever", not
  /// "retry immediately". Deterministic: same policy, same attempt, same
  /// delay.
  std::uint64_t delay(int attempt) const;
};

}  // namespace tlbmap

// Crash-safe suite checkpoints (DESIGN.md Sec. 12).
//
// A checkpoint is a sealed binary envelope:
//
//   offset  size  field
//   0       4     magic "TLBK"
//   4       4     format version (u32 LE, currently 2)
//   8       8     config hash (u64 LE) — suite_config_hash() of the run
//   16      8     payload size (u64 LE)
//   24      4     CRC-32 of the payload (u32 LE, IEEE polynomial)
//   28      ...   payload
//
// All integers are little-endian fixed-width; the payload encodes the
// suite's completed tasks (detection results, mappings, evaluation stats)
// keyed by their stable task indices. Because run_suite preassigns every
// task's seed and result slot, replaying the remaining tasks after a resume
// is bit-identical to the uninterrupted run — the differential tests in
// test_checkpoint.cpp assert exactly that.
//
// Validation is strict and structured: bad magic, truncation, a CRC
// mismatch or an unknown version yield ErrorCode::kCorruptCheckpoint with
// the byte offset of the problem (mirroring the trace reader's
// TraceFormatError); a valid envelope whose config hash differs from the
// running config yields ErrorCode::kCheckpointMismatch. Neither ever
// throws: callers fall back to a fresh run.
//
// Files are written through atomic_write_file, so a crash mid-write leaves
// either the previous checkpoint or none — never a torn one.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "core/codec.hpp"
#include "core/dynamic.hpp"
#include "core/expected.hpp"
#include "core/pipeline.hpp"
#include "detect/hm_detector.hpp"

namespace tlbmap {

/// Current checkpoint format version (envelope field at offset 4).
/// Version history: 1 = PR 5 seed formats; 2 = PR 10, OnlineMapperState
/// grew the self-stabilization trail (canary transaction, phase detector,
/// rollback damping), so older mapper snapshots no longer parse.
inline constexpr std::uint32_t kCheckpointVersion = 2;

/// Progress snapshot of one run_suite invocation. Task indices are the
/// suite's stable global indices: detect task i covers app i/3 with
/// mechanism i%3 (SM, HM, oracle); eval task i covers app i/(3*reps),
/// policy (i/reps)%3 (OS, SM, HM), repetition i%reps.
struct SuiteCheckpoint {
  /// suite_config_hash() of the config that produced this snapshot.
  std::uint64_t config_hash = 0;
  /// Task-count shape of the run (revalidated against the resuming
  /// config's shape — a second guard behind the hash).
  std::uint64_t detect_tasks = 0;
  std::uint64_t eval_tasks = 0;

  /// Completed detect tasks, keyed by global task index.
  std::map<std::uint64_t, DetectionResult> detect_done;
  /// Map phase completed: sm_mappings/hm_mappings hold one mapping per app.
  bool map_done = false;
  std::vector<Mapping> sm_mappings;
  std::vector<Mapping> hm_mappings;
  /// Completed evaluate tasks, keyed by global task index.
  std::map<std::uint64_t, MachineStats> eval_done;
};

/// Wraps `payload` in the TLBK envelope (magic, version, hash, size, CRC).
std::string seal_checkpoint(std::string_view payload,
                            std::uint64_t config_hash);

/// Validates the envelope and returns the payload. kCorruptCheckpoint on
/// truncation / bad magic / version skew / CRC mismatch (message carries
/// the byte offset); kCheckpointMismatch when the envelope is sound but
/// its config hash differs from `expected_hash`.
Expected<std::string> unseal_checkpoint(std::string_view bytes,
                                        std::uint64_t expected_hash);

/// Full checkpoint file bytes (payload sealed in the envelope).
std::string serialize_checkpoint(const SuiteCheckpoint& ckpt);

/// Inverse of serialize_checkpoint, with the same error taxonomy as
/// unseal_checkpoint plus kCorruptCheckpoint for payload-level damage.
Expected<SuiteCheckpoint> parse_checkpoint(std::string_view bytes,
                                           std::uint64_t expected_hash);

/// serialize + atomic_write_file. kIoError on filesystem failure.
Expected<void> save_checkpoint(const std::filesystem::path& path,
                               const SuiteCheckpoint& ckpt);

/// read_file + parse_checkpoint. kIoError when the file cannot be read.
Expected<SuiteCheckpoint> load_checkpoint(const std::filesystem::path& path,
                                          std::uint64_t expected_hash);

// Shared field codecs over core/codec.hpp, reused by every payload format
// in this file and by the service session snapshots (src/svc/): fixed-width
// little-endian fields, length-prefixed containers, range-checked on read.
void write_stats(BinWriter& w, const MachineStats& s);
MachineStats read_stats(BinReader& r);
void write_matrix(BinWriter& w, const CommMatrix& m);
CommMatrix read_matrix(BinReader& r);
void write_mapping(BinWriter& w, const Mapping& m);
Mapping read_mapping(BinReader& r);

// Mid-run detector / online-mapper snapshots (payload-level encodings;
// wrap in seal_checkpoint or the save/load helpers below for files).
std::string serialize_sm_state(const SmDetectorState& state);
Expected<SmDetectorState> parse_sm_state(std::string_view payload);
std::string serialize_hm_state(const HmDetectorState& state);
Expected<HmDetectorState> parse_hm_state(std::string_view payload);
std::string serialize_mapper_state(const OnlineMapperState& state);
Expected<OnlineMapperState> parse_mapper_state(std::string_view payload);

/// OnlineMapper decision-state file helpers: the envelope's hash field
/// carries `tag` (caller-chosen, e.g. a config hash), so a snapshot from
/// one setup is rejected structurally when loaded into another.
Expected<void> save_mapper_checkpoint(const std::filesystem::path& path,
                                      const OnlineMapperState& state,
                                      std::uint64_t tag);
Expected<OnlineMapperState> load_mapper_checkpoint(
    const std::filesystem::path& path, std::uint64_t tag);

}  // namespace tlbmap

// Plain-text presentation helpers used by the bench binaries: aligned
// tables (paper Tables III-V) and normalised bar rows (Figures 6-9).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace tlbmap {

/// Column-aligned monospace table.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// CSV rendering of a table (same rows as TextTable; RFC-4180 quoting for
/// cells containing commas/quotes). For piping bench output into plotting
/// tools.
class CsvTable {
 public:
  explicit CsvTable(std::vector<std::string> header);
  void add_row(std::vector<std::string> cells);
  std::string str() const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_double(double v, int precision = 3);
/// 0.153 -> "15.3%".
std::string fmt_percent(double fraction, int precision = 1);
/// Engineering notation with thousands separators: 12345678 -> "12,345,678".
std::string fmt_count(double v);
/// Horizontal bar of width proportional to `fraction` (clamped to [0, ~2]).
std::string bar(double fraction, int width = 32);

/// Self-profiling summary of the spans held by a tracer: one row per span
/// name with call count, total and mean wall time. Sorted by total time,
/// descending. Empty tracers yield a table with only the header.
std::string phase_profile(const obs::Tracer& tracer);

}  // namespace tlbmap

// Structured error taxonomy for the detect -> map -> evaluate pipeline.
//
// The resilience layer (DESIGN.md Sec. 11) replaces raw throws on the
// Machine::run and run_suite worker-pool paths with values of
// Expected<T>: either the result or an Error carrying a machine-readable
// code plus a human-readable message. Worker threads never let an
// exception escape — failures are folded into Errors, retried, and
// surfaced as degraded-mode events instead of tearing the process down.
//
// Header-only and dependency-free so any layer (sim, detect, mapping,
// core) can return structured errors without new link edges.
#pragma once

#include <string>
#include <utility>
#include <variant>

namespace tlbmap {

/// Failure taxonomy. Codes classify *what kind* of thing went wrong so
/// callers can pick a degradation strategy (retry, fall back, skip) without
/// parsing message strings.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed an out-of-contract value
  kInvalidMapping,    ///< thread->core mapping not a valid placement
  kMalformedTrace,    ///< trace bytes violate the TLBT format
  kTruncatedTrace,    ///< trace ends mid-record
  kIoError,           ///< filesystem-level failure
  kWatchdogTimeout,   ///< Machine::run exceeded its event budget
  kDegenerateMatrix,  ///< comm matrix carries no mappable signal
  kMappingFailure,    ///< matcher could not produce a placement
  kWorkerFailure,     ///< suite worker task failed after retries
  kInterrupted,       ///< run stopped by the cooperative shutdown flag
  kCorruptCheckpoint,     ///< checkpoint bytes fail magic/version/CRC checks
  kCheckpointMismatch,    ///< checkpoint is valid but for another config
  kCorruptTrace,          ///< trace record decodes to an impossible value
  kAdmissionRejected,     ///< service at capacity: new session refused
  kBackpressure,          ///< session ingest queue full: retry later
  kSessionQuarantined,    ///< session fault-isolated; reason inside
  kSaturatedMatrix,       ///< comm matrix pinned at its counter ceiling
};

inline const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kInvalidMapping: return "invalid_mapping";
    case ErrorCode::kMalformedTrace: return "malformed_trace";
    case ErrorCode::kTruncatedTrace: return "truncated_trace";
    case ErrorCode::kIoError: return "io_error";
    case ErrorCode::kWatchdogTimeout: return "watchdog_timeout";
    case ErrorCode::kDegenerateMatrix: return "degenerate_matrix";
    case ErrorCode::kMappingFailure: return "mapping_failure";
    case ErrorCode::kWorkerFailure: return "worker_failure";
    case ErrorCode::kInterrupted: return "interrupted";
    case ErrorCode::kCorruptCheckpoint: return "corrupt_checkpoint";
    case ErrorCode::kCheckpointMismatch: return "checkpoint_mismatch";
    case ErrorCode::kCorruptTrace: return "corrupt_trace";
    case ErrorCode::kAdmissionRejected: return "admission_rejected";
    case ErrorCode::kBackpressure: return "backpressure";
    case ErrorCode::kSessionQuarantined: return "session_quarantined";
    case ErrorCode::kSaturatedMatrix: return "saturated_matrix";
  }
  return "unknown";
}

struct Error {
  ErrorCode code = ErrorCode::kInvalidArgument;
  std::string message;

  std::string to_string() const {
    return std::string("[") + tlbmap::to_string(code) + "] " + message;
  }
};

/// Minimal expected/either: holds a T or an Error. Deliberately tiny — no
/// monadic combinators, just the checks the pipeline needs.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}        // NOLINT(runtime/explicit)
  Expected(Error error) : v_(std::move(error)) {}    // NOLINT(runtime/explicit)

  bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() { return std::get<T>(v_); }
  const T& value() const { return std::get<T>(v_); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  const Error& error() const { return std::get<Error>(v_); }

 private:
  std::variant<T, Error> v_;
};

/// Expected<void>: success or an Error.
template <>
class [[nodiscard]] Expected<void> {
 public:
  Expected() = default;
  Expected(Error error) : error_(std::move(error)), ok_(false) {}  // NOLINT

  bool has_value() const { return ok_; }
  explicit operator bool() const { return ok_; }
  const Error& error() const { return error_; }

 private:
  Error error_;
  bool ok_ = true;
};

}  // namespace tlbmap

#include "core/cli.hpp"

#include <cstdio>
#include <exception>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <sstream>

#include "core/experiment.hpp"
#include "obs/selfprof.hpp"
#include "core/io.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "core/shutdown.hpp"
#include "npb/workload.hpp"
#include "obs/obs.hpp"
#include "sim/scan.hpp"
#include "sim/trace_file.hpp"
#include "svc/serve.hpp"

namespace tlbmap {

namespace {

Mapping parse_mapping(const std::string& text, std::string& error) {
  Mapping mapping;
  std::stringstream in(text);
  std::string cell;
  while (std::getline(in, cell, ',')) {
    try {
      std::size_t used = 0;
      const int core = std::stoi(cell, &used);
      if (used != cell.size()) throw std::invalid_argument(cell);
      mapping.push_back(core);
    } catch (const std::exception&) {
      error = "bad mapping element: '" + cell + "'";
      return {};
    }
  }
  if (mapping.empty()) error = "empty mapping";
  return mapping;
}

std::vector<std::string> parse_list(const std::string& text) {
  std::vector<std::string> items;
  std::stringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    if (!item.empty()) items.push_back(item);
  }
  return items;
}

}  // namespace

std::string cli_usage() {
  return
      "usage: tlbmap_cli COMMAND [options]\n"
      "\n"
      "commands:\n"
      "  detect    print the detected communication matrix for one app\n"
      "  map       detect, then print the derived thread->core mapping\n"
      "  evaluate  run one app under a given or detected mapping\n"
      "  dynamic   run with online detection and barrier migration\n"
      "  suite     run the full evaluation table across apps\n"
      "  record    capture an app's trace to a directory\n"
      "  replay    run a captured trace\n"
      "  serve     host the mapping service for N synthetic tenants\n"
      "\n"
      "options:\n"
      "  --app NAME           one of BT CG EP FT IS LU MG SP UA (default SP)\n"
      "  --mechanism M        sm | hm | oracle (default sm)\n"
      "  --threads N          thread count (default 8)\n"
      "  --size-scale X       workload array scaling (default 1.0)\n"
      "  --iter-scale X       workload iteration scaling (default 1.0)\n"
      "  --reps N             repetitions for evaluate/suite (default 4)\n"
      "  --seed N             base RNG seed (default 1)\n"
      "  --numa               use the NUMA machine model\n"
      "  --sockets N          override the machine's socket count\n"
      "  --cores-per-socket N override cores per socket\n"
      "  --cores-per-l2 N     override cores sharing one L2\n"
      "  --mesh-cols N        arrange the sockets as an N-column 2D mesh\n"
      "                       (cross-socket cost grows with Manhattan\n"
      "                       hops; default 0 = fully connected)\n"
      "  --mapping-strategy S auto | edmonds | greedy | multisection\n"
      "                       (default auto: Edmonds below 128 threads,\n"
      "                       multisection at manycore scale)\n"
      "  --hm-naive-sweep     use the reference pairwise HM sweep instead\n"
      "                       of the inverted page index (same results;\n"
      "                       for A/B benchmarking)\n"
      "  --coherence-broadcast  resolve coherence probes by walking every\n"
      "                       L2 instead of the line-occupancy directory\n"
      "                       (same results; for A/B benchmarking)\n"
      "  --machine-workers N  shard observer-free runs (evaluate/replay)\n"
      "                       across N worker threads via the epoch engine\n"
      "                       (same statistics for every N; default 0 =\n"
      "                       serial per-event loop)\n"
      "  --epoch-events N     events each shard issues per epoch between\n"
      "                       cross-domain reductions (default 2048; needs\n"
      "                       --machine-workers)\n"
      "  --scalar-scan        use the reference scalar TLB/cache set walks\n"
      "                       instead of the SIMD tag-scan kernels (same\n"
      "                       results; for A/B benchmarking)\n"
      "  --apps A,B,...       suite: restrict the application set\n"
      "  --mapping 0,1,...    evaluate/replay: explicit thread->core list\n"
      "  --out DIR / --in DIR record/replay trace directory\n"
      "\n"
      "online mapper (dynamic only; DESIGN.md Sec. 17):\n"
      "  --remap-every-barriers N\n"
      "                       consider remapping every N barriers\n"
      "                       (default 4; 0 = never remap)\n"
      "  --improvement-threshold X\n"
      "                       migrate only when the candidate placement is\n"
      "                       at least this fraction cheaper (default 0.15)\n"
      "  --migration-cooldown N\n"
      "                       remap decisions to sit out after a migration\n"
      "                       (default 1; 0 = the historical\n"
      "                       always-eligible behaviour)\n"
      "  --matrix-decay X     matrix ageing factor per remap decision,\n"
      "                       in (0, 1] (default 0.5)\n"
      "  --min-matrix-total N sampled matrix mass required before a remap\n"
      "                       decision is trusted (default 32; lower it for\n"
      "                       sparse workloads like CHURN)\n"
      "  --canary-barriers N  measure each migration's realized cost over\n"
      "                       N barriers before judging it (default 2;\n"
      "                       0 = no canary windows, no rollback)\n"
      "  --regression-threshold X\n"
      "                       roll back when the canary window's cycles per\n"
      "                       access exceed the phase baseline by more than\n"
      "                       this fraction (default 0.25)\n"
      "  --no-rollback        measure canary verdicts but never act on a\n"
      "                       regression (the commit-blind control arm)\n"
      "\n"
      "mapping service (serve only; DESIGN.md Sec. 16):\n"
      "  --tenants N          synthetic tenant sessions (default 4)\n"
      "  --corrupt-tenant K   deterministically corrupt tenant K's thread-0\n"
      "                       stream; exactly that session must quarantine\n"
      "                       while the others finish untouched\n"
      "  --serve-ticks N      stop after N service ticks (0 = drain all)\n"
      "  --chunk-bytes N      ingest fragment size per thread per tick\n"
      "  --max-sessions N     admission cap on live sessions\n"
      "  --queue-bytes N      per-session ingest queue bound (backpressure)\n"
      "  --session-budget N   per-session memory budget in bytes\n"
      "  --total-budget N     fleet memory budget (reject-new first, then\n"
      "                       shed newest when tightened at runtime)\n"
      "  --deadline-events N  per-session decode slice per tick\n"
      "  --drift-threshold X  cosine drift below which decisions re-match\n"
      "  --window-pages N     stream-detector LRU window per thread\n"
      "  --sweep-every N      stream-detector sweep cadence in events\n"
      "  --serve-out FILE     structured JSON report (tenants, quarantine\n"
      "                       reasons, counters)\n"
      "\n"
      "crash safety (suite and serve):\n"
      "  --checkpoint-dir DIR checkpoint progress to DIR/suite.ckpt (suite)\n"
      "                       or DIR/service.ckpt (serve) and handle\n"
      "                       SIGINT/SIGTERM cleanly (the run stops at a\n"
      "                       task/tick boundary and exits 130)\n"
      "  --checkpoint-every-events N\n"
      "                       simulated accesses between checkpoint writes\n"
      "                       (suite; default 0 = write after every task)\n"
      "  --resume             continue from the checkpoint; a missing or\n"
      "                       invalid checkpoint falls back to a fresh run\n"
      "\n"
      "fault injection (all rates in [0,1]; defaults 0 = disabled, in which\n"
      "case results are bit-identical to a faultless build):\n"
      "  --fault-seed N             seed of the fault-injection streams\n"
      "  --fault-drop-rate X        drop a sampled SM TLB entry\n"
      "  --fault-corrupt-rate X     corrupt a sampled SM page before search\n"
      "  --fault-detect-fail-rate X SM detection instruction fails (search\n"
      "                             charged, yields nothing)\n"
      "  --fault-sweep-skip-rate X  silently skip a due HM sweep\n"
      "  --fault-sweep-fail-rate X  fail an HM sweep (retried with backoff)\n"
      "  --fault-sweep-delay N      delay each HM sweep by uniform [0,N]\n"
      "                             cycles\n"
      "  --fault-matrix-flip-rate X pairwise-swap comm-matrix cells when the\n"
      "                             matrix is consumed\n"
      "  --fault-matrix-zero-rate X zero comm-matrix cells when consumed\n"
      "  --watchdog-events N        abort a run with a structured error\n"
      "                             after N trace events (0 = off)\n"
      "\n"
      "observability:\n"
      "  --obs-level L        off | phases | full (default off; implied\n"
      "                       phases when an output file is requested)\n"
      "  --trace-out FILE     write a Chrome-trace JSON (open in Perfetto)\n"
      "  --metrics-out FILE   write the metrics registry as JSONL\n"
      "  --metrics-interval-events N\n"
      "                       sample every registered metric into a\n"
      "                       {\"type\":\"series\"} JSONL stream every N\n"
      "                       simulated events and at phase boundaries\n"
      "                       (0 = off; series lands in --metrics-out)\n"
      "  --manifest-out FILE  write a run manifest: config/seed/git\n"
      "                       provenance, wall + CPU time, peak RSS, and\n"
      "                       per-phase flamegraph collapsed stacks\n";
}

CliOptions parse_cli(int argc, const char* const* argv) {
  CliOptions opt;
  if (argc < 2) {
    opt.error = "missing command";
    return opt;
  }
  opt.command = argv[1];
  if (opt.command == "--help" || opt.command == "help") {
    opt.help = true;
    return opt;
  }
  static const std::vector<std::string> kCommands = {
      "detect", "map",    "evaluate", "dynamic",
      "suite",  "record", "replay",   "serve"};
  if (std::find(kCommands.begin(), kCommands.end(), opt.command) ==
      kCommands.end()) {
    opt.error = "unknown command: " + opt.command;
    return opt;
  }

  bool serve_flag_used = false;
  bool dynamic_flag_used = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) {
        opt.error = "missing value for " + arg;
        return nullptr;
      }
      return argv[++i];
    };
    // Strict numeric parsing: the whole token must be consumed, so garbage
    // suffixes ("8x", "0.5junk") are structured usage errors rather than
    // silently truncated values.
    auto to_int = [](const std::string& v) {
      std::size_t used = 0;
      const int value = std::stoi(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return value;
    };
    auto to_double = [](const std::string& v) {
      std::size_t used = 0;
      const double value = std::stod(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return value;
    };
    auto to_u64 = [](const std::string& v) {
      // stoull accepts "-1" by wrapping; reject any sign explicitly.
      if (v.empty() || v[0] == '-' || v[0] == '+') {
        throw std::invalid_argument(v);
      }
      std::size_t used = 0;
      const std::uint64_t value = std::stoull(v, &used);
      if (used != v.size()) throw std::invalid_argument(v);
      return value;
    };
    try {
      if (arg == "--help") {
        opt.help = true;
      } else if (arg == "--numa") {
        opt.numa = true;
      } else if (arg == "--hm-naive-sweep") {
        opt.hm_naive_sweep = true;
      } else if (arg == "--coherence-broadcast") {
        opt.coherence_broadcast = true;
      } else if (arg == "--app") {
        if (const char* v = next_value()) opt.app = v;
      } else if (arg == "--mechanism") {
        if (const char* v = next_value()) opt.mechanism = v;
      } else if (arg == "--threads") {
        if (const char* v = next_value()) opt.threads = to_int(v);
      } else if (arg == "--size-scale") {
        if (const char* v = next_value()) opt.size_scale = to_double(v);
      } else if (arg == "--iter-scale") {
        if (const char* v = next_value()) opt.iter_scale = to_double(v);
      } else if (arg == "--reps") {
        if (const char* v = next_value()) opt.reps = to_int(v);
      } else if (arg == "--seed") {
        if (const char* v = next_value()) opt.seed = to_u64(v);
      } else if (arg == "--sockets") {
        if (const char* v = next_value()) opt.sockets = to_int(v);
      } else if (arg == "--cores-per-socket") {
        if (const char* v = next_value()) opt.cores_per_socket = to_int(v);
      } else if (arg == "--cores-per-l2") {
        if (const char* v = next_value()) opt.cores_per_l2 = to_int(v);
      } else if (arg == "--mesh-cols") {
        if (const char* v = next_value()) opt.mesh_cols = to_int(v);
      } else if (arg == "--mapping-strategy") {
        if (const char* v = next_value()) opt.mapping_strategy = v;
      } else if (arg == "--fault-seed") {
        if (const char* v = next_value()) opt.fault.seed = to_u64(v);
      } else if (arg == "--fault-drop-rate") {
        if (const char* v = next_value()) opt.fault.drop_sample_rate = to_double(v);
      } else if (arg == "--fault-corrupt-rate") {
        if (const char* v = next_value()) opt.fault.corrupt_sample_rate = to_double(v);
      } else if (arg == "--fault-detect-fail-rate") {
        if (const char* v = next_value()) opt.fault.detect_fail_rate = to_double(v);
      } else if (arg == "--fault-sweep-skip-rate") {
        if (const char* v = next_value()) opt.fault.sweep_skip_rate = to_double(v);
      } else if (arg == "--fault-sweep-fail-rate") {
        if (const char* v = next_value()) opt.fault.sweep_fail_rate = to_double(v);
      } else if (arg == "--fault-sweep-delay") {
        if (const char* v = next_value()) opt.fault.sweep_delay_max = to_u64(v);
      } else if (arg == "--fault-matrix-flip-rate") {
        if (const char* v = next_value()) opt.fault.matrix_flip_rate = to_double(v);
      } else if (arg == "--fault-matrix-zero-rate") {
        if (const char* v = next_value()) opt.fault.matrix_zero_rate = to_double(v);
      } else if (arg == "--watchdog-events") {
        if (const char* v = next_value()) opt.watchdog_events = to_u64(v);
      } else if (arg == "--machine-workers") {
        if (const char* v = next_value()) opt.machine_workers = to_int(v);
      } else if (arg == "--epoch-events") {
        if (const char* v = next_value()) opt.epoch_events = to_u64(v);
      } else if (arg == "--scalar-scan") {
        opt.scalar_scan = true;
      } else if (arg == "--checkpoint-dir") {
        if (const char* v = next_value()) opt.checkpoint_dir = v;
      } else if (arg == "--checkpoint-every-events") {
        if (const char* v = next_value()) {
          opt.checkpoint_every_events = to_u64(v);
        }
      } else if (arg == "--resume") {
        opt.resume = true;
      } else if (arg == "--apps") {
        if (const char* v = next_value()) opt.apps = parse_list(v);
      } else if (arg == "--mapping") {
        if (const char* v = next_value()) {
          opt.mapping = parse_mapping(v, opt.error);
        }
      } else if (arg == "--out" || arg == "--in") {
        if (const char* v = next_value()) opt.dir = v;
      } else if (arg == "--remap-every-barriers") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.remap_every_barriers = to_int(v);
        }
      } else if (arg == "--improvement-threshold") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.improvement_threshold = to_double(v);
        }
      } else if (arg == "--migration-cooldown") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.migration_cooldown = to_int(v);
        }
      } else if (arg == "--matrix-decay") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) opt.online.decay = to_double(v);
      } else if (arg == "--min-matrix-total") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.min_matrix_total = to_u64(v);
        }
      } else if (arg == "--canary-barriers") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.canary_barriers = to_int(v);
        }
      } else if (arg == "--regression-threshold") {
        dynamic_flag_used = true;
        if (const char* v = next_value()) {
          opt.online.regression_threshold = to_double(v);
        }
      } else if (arg == "--no-rollback") {
        dynamic_flag_used = true;
        opt.online.rollback = false;
      } else if (arg == "--tenants") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.tenants = to_int(v);
      } else if (arg == "--corrupt-tenant") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.corrupt_tenant = to_int(v);
      } else if (arg == "--serve-ticks") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.serve_ticks = to_u64(v);
      } else if (arg == "--chunk-bytes") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.chunk_bytes = to_u64(v);
      } else if (arg == "--max-sessions") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.max_sessions = to_int(v);
      } else if (arg == "--queue-bytes") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.queue_bytes = to_u64(v);
      } else if (arg == "--session-budget") {
        serve_flag_used = true;
        if (const char* v = next_value()) {
          opt.session_budget_bytes = to_u64(v);
        }
      } else if (arg == "--total-budget") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.total_budget_bytes = to_u64(v);
      } else if (arg == "--deadline-events") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.deadline_events = to_u64(v);
      } else if (arg == "--drift-threshold") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.drift_threshold = to_double(v);
      } else if (arg == "--window-pages") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.window_pages = to_int(v);
      } else if (arg == "--sweep-every") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.sweep_every = to_u64(v);
      } else if (arg == "--serve-out") {
        serve_flag_used = true;
        if (const char* v = next_value()) opt.serve_out = v;
      } else if (arg == "--obs-level") {
        if (const char* v = next_value()) opt.obs_level = v;
      } else if (arg == "--trace-out") {
        if (const char* v = next_value()) opt.trace_out = v;
      } else if (arg == "--metrics-out") {
        if (const char* v = next_value()) opt.metrics_out = v;
      } else if (arg == "--metrics-interval-events") {
        if (const char* v = next_value()) {
          opt.metrics_interval_events = to_u64(v);
        }
      } else if (arg == "--manifest-out") {
        if (const char* v = next_value()) opt.manifest_out = v;
      } else {
        opt.error = "unknown option: " + arg;
      }
    } catch (const std::exception&) {
      opt.error = "bad value for " + arg;
    }
    if (!opt.error.empty()) return opt;
  }

  if (opt.mechanism != "sm" && opt.mechanism != "hm" &&
      opt.mechanism != "oracle") {
    opt.error = "unknown mechanism: " + opt.mechanism;
  }
  if (opt.threads < 1) opt.error = "threads must be positive";
  if (opt.reps < 1) opt.error = "reps must be positive";
  if (opt.machine_workers < 0) {
    opt.error = "machine-workers must be non-negative";
  }
  if (opt.epoch_events == 0) opt.error = "epoch-events must be positive";
  if (opt.sockets < 0 || opt.cores_per_socket < 0 || opt.cores_per_l2 < 0 ||
      opt.mesh_cols < 0) {
    opt.error = "topology overrides must be non-negative";
  }
  if (!parse_mapping_strategy(opt.mapping_strategy)) {
    opt.error = "unknown mapping strategy: " + opt.mapping_strategy;
  }
  if (!obs::parse_obs_level(opt.obs_level)) {
    opt.error = "unknown obs level: " + opt.obs_level;
  } else if (opt.obs_level == "off" &&
             (!opt.trace_out.empty() || !opt.metrics_out.empty() ||
              !opt.manifest_out.empty() || opt.metrics_interval_events > 0)) {
    opt.obs_level = "phases";
  }
  if ((opt.command == "record" || opt.command == "replay") &&
      opt.dir.empty()) {
    opt.error = opt.command + " needs --out/--in DIR";
  }
  if (opt.error.empty() && opt.command != "suite" &&
      opt.command != "serve" &&
      (!opt.checkpoint_dir.empty() || opt.checkpoint_every_events > 0 ||
       opt.resume)) {
    opt.error = "checkpoint/resume flags only apply to suite and serve";
  }
  if (opt.error.empty() && serve_flag_used && opt.command != "serve") {
    opt.error = "mapping-service flags only apply to serve";
  }
  if (opt.error.empty() && dynamic_flag_used && opt.command != "dynamic") {
    opt.error = "online-mapper flags only apply to dynamic";
  }
  if (opt.error.empty() && dynamic_flag_used) {
    // Range checks live in the library config: the CLI reports the struct's
    // own invalid_argument message as a structured usage error.
    try {
      opt.online.validate();
    } catch (const std::exception& e) {
      opt.error = e.what();
    }
  }
  if (opt.error.empty() && opt.command == "serve") {
    if (opt.tenants < 1) opt.error = "tenants must be positive";
    if (opt.chunk_bytes == 0) opt.error = "chunk-bytes must be positive";
    if (opt.max_sessions < 1) opt.error = "max-sessions must be positive";
    if (opt.corrupt_tenant >= opt.tenants) {
      opt.error = "corrupt-tenant index past the tenant fleet";
    }
    if (opt.drift_threshold < 0.0 || opt.drift_threshold > 1.0) {
      opt.error = "drift-threshold must be in [0, 1]";
    }
  }
  if (opt.error.empty() && opt.checkpoint_dir.empty() &&
      (opt.resume || opt.checkpoint_every_events > 0)) {
    opt.error = "--resume/--checkpoint-every-events need --checkpoint-dir";
  }
  if (opt.error.empty()) {
    // Out-of-range fault rates are usage errors, reported through the same
    // structured channel as every other parse failure.
    try {
      opt.fault.validate();
    } catch (const std::exception& e) {
      opt.error = e.what();
    }
  }
  if (opt.error.empty() && opt.command == "record" &&
      (opt.fault.enabled() || opt.watchdog_events > 0)) {
    // Recording runs no simulated machine; silently ignoring the flags
    // would mislead more than rejecting them.
    opt.error = "fault/watchdog flags conflict with the record command";
  }
  return opt;
}

namespace {

MachineConfig machine_for(const CliOptions& opt) {
  MachineConfig machine = opt.numa ? MachineConfig::numa_harpertown()
                                   : MachineConfig::harpertown();
  if (opt.sockets > 0) machine.num_sockets = opt.sockets;
  if (opt.cores_per_socket > 0) machine.cores_per_socket = opt.cores_per_socket;
  if (opt.cores_per_l2 > 0) machine.cores_per_l2 = opt.cores_per_l2;
  machine.socket_mesh_cols = opt.mesh_cols;
  machine.coherence_broadcast = opt.coherence_broadcast;
  machine.fault = opt.fault;
  machine.watchdog_max_events = opt.watchdog_events;
  // Surface inconsistent overrides (indivisible geometry, mesh shape) as a
  // structured CLI error instead of a deep throw from the Topology ctor.
  machine.validate();
  return machine;
}

MappingConfig mapping_for(const CliOptions& opt) {
  MappingConfig mapping;
  mapping.strategy =
      parse_mapping_strategy(opt.mapping_strategy).value_or(
          MappingStrategy::kAuto);
  return mapping;
}

WorkloadParams params_for(const CliOptions& opt) {
  WorkloadParams p;
  p.num_threads = opt.threads;
  p.size_scale = opt.size_scale;
  p.iter_scale = opt.iter_scale;
  return p;
}

Pipeline::Mechanism mechanism_for(const CliOptions& opt) {
  if (opt.mechanism == "hm") return Pipeline::Mechanism::kHardwareManaged;
  if (opt.mechanism == "oracle") return Pipeline::Mechanism::kOracle;
  return Pipeline::Mechanism::kSoftwareManaged;
}

Pipeline make_pipeline(const CliOptions& opt, obs::ObsContext* obs) {
  Pipeline pipe(machine_for(opt));
  const SuiteConfig defaults;  // trace-scaled detector knobs
  pipe.sm_config() = defaults.sm;
  pipe.hm_config() = defaults.hm;
  pipe.hm_config().naive_sweep = opt.hm_naive_sweep;
  pipe.mapping_config() = mapping_for(opt);
  pipe.set_observability(obs);
  pipe.set_metrics_interval_events(opt.metrics_interval_events);
  pipe.set_machine_workers(opt.machine_workers);
  pipe.set_epoch_events(opt.epoch_events);
  return pipe;
}

DetectionResult detect_for(Pipeline& pipe, const CliOptions& opt) {
  const auto workload = make_npb_workload(opt.app, params_for(opt));
  return pipe.detect(*workload, mechanism_for(opt), opt.seed);
}

void print_stats_row(const char* label, const MachineStats& s) {
  std::printf("%-22s cycles %-12llu inv %-10llu snoop %-10llu l2miss %llu\n",
              label, static_cast<unsigned long long>(s.execution_cycles),
              static_cast<unsigned long long>(s.invalidations),
              static_cast<unsigned long long>(s.snoop_transactions),
              static_cast<unsigned long long>(s.l2_misses));
}

int cmd_detect(const CliOptions& opt, obs::ObsContext* obs) {
  Pipeline pipe = make_pipeline(opt, obs);
  const DetectionResult det = detect_for(pipe, opt);
  std::printf("%s on %s: %llu searches, TLB miss rate %s, overhead %s\n",
              det.mechanism.c_str(), opt.app.c_str(),
              static_cast<unsigned long long>(det.searches),
              fmt_percent(det.stats.tlb_miss_rate(), 3).c_str(),
              fmt_percent(det.stats.overhead_fraction(), 3).c_str());
  std::printf("%s", det.matrix.heatmap().c_str());
  return 0;
}

int cmd_map(const CliOptions& opt, obs::ObsContext* obs) {
  Pipeline pipe = make_pipeline(opt, obs);
  const DetectionResult det = detect_for(pipe, opt);
  const Mapping mapping = pipe.map(det.matrix);
  std::printf("%s\n", to_string(mapping).c_str());
  return 0;
}

int cmd_evaluate(const CliOptions& opt, obs::ObsContext* obs) {
  Pipeline pipe = make_pipeline(opt, obs);
  const auto workload = make_npb_workload(opt.app, params_for(opt));
  Mapping mapping = opt.mapping;
  if (mapping.empty()) {
    mapping = pipe.map(detect_for(pipe, opt).matrix);
    std::printf("detected mapping: %s\n", to_string(mapping).c_str());
  }
  MachineStats total;
  for (int rep = 0; rep < opt.reps; ++rep) {
    const MachineStats s = pipe.evaluate(
        *workload, mapping, opt.seed + static_cast<std::uint64_t>(rep));
    std::ostringstream label;
    label << "rep " << rep;
    print_stats_row(label.str().c_str(), s);
    total += s;
  }
  std::printf("mean time: %s s\n",
              fmt_double(cycles_to_seconds(total.execution_cycles) /
                             static_cast<double>(opt.reps),
                         5)
                  .c_str());
  return 0;
}

int cmd_dynamic(const CliOptions& opt, obs::ObsContext* obs) {
  Pipeline pipe = make_pipeline(opt, obs);
  const auto workload = make_npb_workload(opt.app, params_for(opt));
  const Mapping start = random_mapping(
      opt.threads, machine_for(opt).num_cores(), opt.seed + 99);
  const auto result = pipe.evaluate_dynamic(*workload, start, opt.online,
                                            opt.seed);
  print_stats_row("dynamic", result.stats);
  std::printf("migrations %d (decisions %d), final: %s\n", result.migrations,
              result.remap_decisions,
              to_string(result.final_mapping).c_str());
  std::printf(
      "rollbacks %d, canary commits %d, backoff skips %d, phase epochs %llu\n",
      result.rollbacks, result.canary_commits, result.backoff_skips,
      static_cast<unsigned long long>(result.phase_epochs));
  const MachineStats still = pipe.evaluate(*workload, start, opt.seed);
  print_stats_row("static start", still);
  return 0;
}

int cmd_suite(const CliOptions& opt, obs::ObsContext* obs) {
  SuiteConfig config;
  config.machine = machine_for(opt);
  config.workload = params_for(opt);
  config.mapping = mapping_for(opt);
  config.repetitions = opt.reps;
  config.base_seed = opt.seed;
  // Bit-identical to the indexed sweep, so the cache key ignores it.
  config.hm.naive_sweep = opt.hm_naive_sweep;
  if (!opt.apps.empty()) config.apps = opt.apps;
  config.checkpoint_dir = opt.checkpoint_dir;
  config.checkpoint_every_events = opt.checkpoint_every_events;
  config.resume = opt.resume;
  config.metrics_interval_events = opt.metrics_interval_events;
  config.manifest_out = opt.manifest_out;
  if (!opt.checkpoint_dir.empty()) {
    // Clean shutdown (DESIGN.md Sec. 12): the first SIGINT/SIGTERM sets the
    // cooperative flag — workers stop at the next task/event boundary and
    // the suite checkpoints what completed. A second signal kills the
    // process the default way.
    install_shutdown_handlers();
  }
  const SuiteResult result = run_suite(config, &std::cerr, obs);
  if (result.interrupted) {
    std::fprintf(stderr,
                 "suite interrupted; partial results not shown "
                 "(resume with --resume)\n");
    return 130;  // conventional 128 + SIGINT
  }
  TextTable table({"app", "time SM/OS", "time HM/OS", "inv SM/OS",
                   "snoop SM/OS", "L2 SM/OS"});
  for (const AppExperiment& app : result.apps) {
    table.add_row({app.app,
                   fmt_double(app.normalized(app.sm_runs,
                                             Metric::kTimeSeconds)),
                   fmt_double(app.normalized(app.hm_runs,
                                             Metric::kTimeSeconds)),
                   fmt_double(app.normalized(app.sm_runs,
                                             Metric::kInvalidations)),
                   fmt_double(app.normalized(app.sm_runs, Metric::kSnoops)),
                   fmt_double(app.normalized(app.sm_runs,
                                             Metric::kL2Misses))});
  }
  std::printf("%s", table.str().c_str());
  return 0;
}

int cmd_record(const CliOptions& opt) {
  const auto workload = make_npb_workload(opt.app, params_for(opt));
  const auto buffers = record_workload(*workload, opt.seed);
  save_recording(buffers, opt.dir);
  std::size_t bytes = 0;
  std::uint64_t accesses = 0;
  for (const auto& b : buffers) bytes += b.size();
  for (ThreadId t = 0; t < workload->num_threads(); ++t) {
    accesses += workload->accesses_of(t);
  }
  std::printf("recorded %s: %llu accesses, %zu bytes (%.2f B/access) in %s\n",
              opt.app.c_str(), static_cast<unsigned long long>(accesses),
              bytes, static_cast<double>(bytes) / static_cast<double>(accesses),
              opt.dir.c_str());
  return 0;
}

int cmd_replay(const CliOptions& opt, obs::ObsContext* obs) {
  RecordedWorkload workload(load_recording(opt.dir));
  Pipeline pipe = make_pipeline(opt, obs);
  Mapping mapping = opt.mapping;
  if (mapping.empty()) mapping = identity_mapping(workload.num_threads());
  const MachineStats s = pipe.evaluate(workload, mapping, opt.seed);
  print_stats_row("replay", s);
  return 0;
}

int cmd_serve(const CliOptions& opt, obs::ObsContext* obs) {
  svc::ServeOptions serve;
  serve.service.machine = machine_for(opt);
  serve.service.mapping = mapping_for(opt);
  serve.service.max_sessions = opt.max_sessions;
  serve.service.session.queue_bytes = opt.queue_bytes;
  serve.service.session.budget_bytes = opt.session_budget_bytes;
  serve.service.session.deadline_events = opt.deadline_events;
  serve.service.total_budget_bytes = opt.total_budget_bytes;
  serve.service.cache.drift_threshold = opt.drift_threshold;
  serve.service.detector.window_pages = opt.window_pages;
  serve.service.detector.sweep_every = opt.sweep_every;
  serve.tenants = opt.tenants;
  serve.threads = opt.threads;
  serve.app = opt.app;
  serve.size_scale = opt.size_scale;
  serve.iter_scale = opt.iter_scale;
  serve.seed = opt.seed;
  serve.chunk_bytes = opt.chunk_bytes;
  serve.max_ticks = opt.serve_ticks;
  serve.corrupt_tenant = opt.corrupt_tenant;
  serve.report_out = opt.serve_out;
  if (!opt.checkpoint_dir.empty()) {
    serve.checkpoint_path = opt.checkpoint_dir + "/service.ckpt";
    serve.resume = opt.resume;
    // Same clean-shutdown contract as the suite: the first SIGINT/SIGTERM
    // stops the loop at a tick boundary and the service checkpoints.
    install_shutdown_handlers();
  }
  const svc::ServeOutcome result = svc::run_serve(serve, &std::cerr, obs);
  if (!result.error.empty()) {
    std::printf("error: %s\n", result.error.c_str());
    return result.exit_code;
  }
  for (const svc::TenantOutcome& t : result.tenants) {
    std::printf("%-12s session %-4llu %-12s events %-10llu",
                t.tenant.c_str(), static_cast<unsigned long long>(t.session),
                svc::to_string(t.status),
                static_cast<unsigned long long>(t.events));
    if (t.has_decision) {
      std::printf(" epoch %llu%s mapping %s\n",
                  static_cast<unsigned long long>(t.epoch),
                  t.degraded ? " (degraded)" : "",
                  to_string(t.mapping).c_str());
    } else {
      std::printf(" (no decision)\n");
    }
  }
  std::printf("%llu ticks, %llu events, %zu quarantined/shed\n",
              static_cast<unsigned long long>(result.ticks),
              static_cast<unsigned long long>(result.events),
              result.quarantines.size());
  return result.exit_code;
}

}  // namespace

namespace {

/// Writes the requested trace/metrics artifacts and prints the phase
/// profile. Runs after the command even on failure: a partial trace is the
/// tool you debug the failure with. Both artifacts are rendered into
/// memory first — with the stream's badbit checked — and land on disk via
/// atomic_write_file, so a crash or full disk mid-export can never leave a
/// truncated JSON/JSONL file behind.
void finish_observability(const CliOptions& options, obs::ObsContext* obs,
                          const obs::SelfProfiler& profiler, int code) {
  if (obs == nullptr) return;
  auto export_artifact = [](const std::string& path, const char* what,
                            const std::function<void(std::ostream&)>& render)
      -> bool {
    std::ostringstream buffer;
    render(buffer);
    if (!buffer.good()) {
      std::fprintf(stderr, "[obs] %s export stream failed; %s not written\n",
                   what, path.c_str());
      return false;
    }
    const Expected<void> written = atomic_write_file(path, buffer.str());
    if (!written) {
      std::fprintf(stderr, "[obs] cannot write %s to %s: %s\n", what,
                   path.c_str(), written.error().to_string().c_str());
      return false;
    }
    return true;
  };
  if (!options.trace_out.empty()) {
    const bool ok = export_artifact(
        options.trace_out, "trace",
        [&](std::ostream& out) { obs->tracer.export_chrome_trace(out); });
    if (ok) {
      std::fprintf(stderr, "[obs] trace written to %s (%zu events",
                   options.trace_out.c_str(), obs->tracer.size());
      if (obs->tracer.dropped() > 0) {
        std::fprintf(stderr, ", %llu dropped",
                     static_cast<unsigned long long>(obs->tracer.dropped()));
      }
      std::fprintf(stderr, ")\n");
    }
  }
  if (!options.metrics_out.empty()) {
    const bool ok = export_artifact(
        options.metrics_out, "metrics",
        [&](std::ostream& out) { obs->metrics.export_jsonl(out); });
    if (ok) {
      std::fprintf(stderr, "[obs] metrics written to %s\n",
                   options.metrics_out.c_str());
    }
  }
  // Generic run manifest for every command but the suite, which writes a
  // richer one (config hash, per-task sim-cycle stacks) from run_suite.
  if (!options.manifest_out.empty() && options.command != "suite") {
    obs::RunManifest manifest;
    manifest.command = options.command;
    manifest.git_describe = obs::build_git_describe();
    manifest.created_utc = obs::utc_timestamp();
    manifest.seed = options.seed;
    manifest.wall_seconds = profiler.wall_seconds();
    manifest.usage = profiler.snapshot();
    manifest.degraded = code != 0;
    manifest.interrupted = code == 130;
    // Per-phase wall attribution: self time of each completed span name
    // (nested spans count toward the innermost span only, so the phase
    // totals sum to real wall time instead of double-counting parents).
    std::map<std::string, std::uint64_t> phase_us;
    for (const obs::SpanSelf& span : obs::span_self_times(obs->tracer)) {
      phase_us[span.name] += span.self_us;
    }
    manifest.phases.assign(phase_us.begin(), phase_us.end());
    manifest.collapsed_wall = obs::collapsed_stacks(obs->tracer);
    manifest.extra.emplace_back("app", options.app);
    manifest.extra.emplace_back("mechanism", options.mechanism);
    const bool ok = export_artifact(
        options.manifest_out, "manifest",
        [&](std::ostream& out) { out << manifest.to_json(); });
    if (ok) {
      std::fprintf(stderr, "[obs] manifest written to %s\n",
                   options.manifest_out.c_str());
    }
  }
  std::fprintf(stderr, "\n%s", phase_profile(obs->tracer).c_str());
}

}  // namespace

int run_cli(const CliOptions& options) {
  if (options.help) {
    std::printf("%s", cli_usage().c_str());
    return 0;
  }
  if (!options.ok()) {
    std::printf("error: %s\n\n%s", options.error.c_str(),
                cli_usage().c_str());
    return 2;
  }
  // Process-wide A/B switch: every Tlb/Cache lookup and HM sweep from here
  // on uses the scalar reference walks when requested.
  set_simd_scan_enabled(!options.scalar_scan);
  const obs::SelfProfiler profiler;
  obs::ObsContext ctx;
  ctx.level =
      obs::parse_obs_level(options.obs_level).value_or(obs::ObsLevel::kOff);
  obs::ObsContext* obs = ctx.level == obs::ObsLevel::kOff ? nullptr : &ctx;
  int code = 2;  // unreachable fallback: parse_cli validated the command
  try {
    if (options.command == "detect") code = cmd_detect(options, obs);
    else if (options.command == "map") code = cmd_map(options, obs);
    else if (options.command == "evaluate") code = cmd_evaluate(options, obs);
    else if (options.command == "dynamic") code = cmd_dynamic(options, obs);
    else if (options.command == "suite") code = cmd_suite(options, obs);
    else if (options.command == "record") code = cmd_record(options);
    else if (options.command == "replay") code = cmd_replay(options, obs);
    else if (options.command == "serve") code = cmd_serve(options, obs);
  } catch (const std::exception& e) {
    std::printf("error: %s\n", e.what());
    code = 1;
  }
  finish_observability(options, obs, profiler, code);
  return code;
}

}  // namespace tlbmap

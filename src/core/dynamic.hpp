// Online (dynamic) thread mapping — the paper's future work, end to end.
//
// OnlineMapper attaches to a run as both the detector hook and the
// migration policy: the software-managed TLB mechanism accumulates the
// communication matrix while the application executes, and every
// `remap_every_barriers` barriers the hierarchical matcher is re-run on the
// current matrix; if the best placement changed, the threads migrate at
// that barrier. The matrix is aged (multiplicative decay) at each remap so
// old phases stop dominating — the matrix-level analogue of the TLB's own
// entry lifetime.
//
// Since PR 10 the mapper is self-stabilizing (DESIGN.md Sec. 17): a
// PhaseDetector tracks phase epochs from matrix drift and miss-rate
// deltas, every migration opens a canary transaction that prices the
// realized post-move cost against a phase-anchored baseline from the
// machine's live counters, a regression rolls the threads back to the
// recorded pre-move placement, and repeated rollbacks within one phase
// back off exponentially (RetryPolicy) so a noisy phase cannot cause a
// migration storm.
#pragma once

#include <memory>
#include <optional>

#include "core/fault.hpp"
#include "core/retry.hpp"
#include "detect/phase_detector.hpp"
#include "detect/sm_detector.hpp"
#include "mapping/hierarchical.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct OnlineMapperConfig {
  /// Consider remapping after every this many barriers. 0 = never remap
  /// (the never-migrate control of the churn differential).
  int remap_every_barriers = 4;
  /// Matrix ageing factor applied at each remap decision.
  double decay = 0.5;
  /// Skip remapping while the matrix holds fewer total events than this
  /// (avoids thrashing on startup noise).
  std::uint64_t min_matrix_total = 32;
  /// Hysteresis: migrate only when the candidate placement's communication
  /// cost (under the current matrix) is at least this much lower than the
  /// current placement's. 0.15 = candidate must be 15 % better. Guards
  /// against oscillating between near-tie matchings of a noisy matrix.
  double improvement_threshold = 0.15;
  /// After a migration, sit out this many remap decisions before migrating
  /// again. Second oscillation guard, for inputs noisy enough (e.g. under
  /// matrix fault injection) that single-decision hysteresis is beaten by
  /// two alternating "15 % better" illusions. Default 1 (PR 10): one aged
  /// decision window must re-confirm the pattern before the next move —
  /// measured on the phase-churn workloads as the smallest value that
  /// stops alternating-illusion storms without delaying convergence on
  /// stable patterns. 0 restores the historical always-eligible behaviour
  /// (reachable via --migration-cooldown on the CLI).
  int migration_cooldown = 1;
  /// Canary transaction length: after a migration, realized cost is
  /// measured over this many barriers and compared against the
  /// phase-anchored baseline. 0 disables canary windows (and with them
  /// rollback) entirely — the pre-PR-10 commit-blind behaviour.
  int canary_barriers = 2;
  /// Rollback trigger: the canary window's realized cost rate — simulated
  /// cycles per access, which prices the stall/locality impact of a
  /// placement directly (coherence *counts* barely move when only the
  /// distance of the traffic changes) — exceeding
  /// baseline * (1 + regression_threshold) reverts to the recorded
  /// pre-move placement.
  double regression_threshold = 0.25;
  /// When false, canary windows still measure and publish verdicts but a
  /// regression is never acted on (the rollback-disabled arm of the churn
  /// differential; --no-rollback on the CLI).
  bool rollback = true;
  /// Damping of repeated rollbacks within one phase: after the k-th
  /// rollback since the current phase epoch began, migrations are blocked
  /// for delay(k) further remap decisions (capped exponential; jitter off
  /// keeps decisions bit-reproducible). A new phase epoch resets the
  /// counter — a genuine phase change deserves a fresh chance to move.
  RetryPolicy rollback_backoff{/*max_attempts=*/8, /*base_delay=*/1,
                               /*factor=*/2};
  /// Phase-epoch detection over the clean (un-decayed, fault-free) matrix
  /// plus per-thread miss-rate windows.
  PhaseDetectorConfig phase{};
  SmDetectorConfig detector{/*sample_threshold=*/10, /*search_cost=*/231};

  /// Throws std::invalid_argument on out-of-range knobs (decay outside
  /// (0, 1], negative thresholds/counts, bad sub-configs) — the structured
  /// validation surface the CLI reports through.
  void validate() const;
};

/// Serializable decision state of an OnlineMapper (DESIGN.md Sec. 12/17):
/// the embedded SM detector's snapshot, the current placement, the
/// decision/hysteresis cursors, and the whole self-stabilization trail —
/// open canary transaction, phase-anchored baseline, rollback/backoff
/// damping and phase-detector snapshot. Restoring it into a fresh mapper
/// of the same shape reproduces the original's future remap decisions,
/// canary verdicts and rollbacks exactly (faultless plans).
struct OnlineMapperState {
  SmDetectorState detector;
  Mapping mapping;
  std::int32_t migrations = 0;
  std::int32_t remap_decisions = 0;
  std::int32_t degraded_decisions = 0;
  std::int32_t cooldown_left = 0;
  // Self-stabilization trail (PR 10).
  std::int32_t rollbacks = 0;
  std::int32_t canary_commits = 0;
  std::int32_t backoff_skips = 0;
  std::int32_t canary_left = 0;       ///< > 0 = a canary window is open
  std::int32_t backoff_left = 0;      ///< remap decisions still damped
  std::int32_t phase_rollbacks = 0;   ///< rollbacks since the phase began
  Mapping canary_prev;                ///< pre-move placement (empty = none)
  // "cost" below is simulated cycles (barrier-release time): the canary
  // verdict compares cycles-per-access rates, the one counter pair that
  // directly prices a placement's stall/locality impact.
  std::uint64_t canary_cost = 0;      ///< cumulative cycles at canary open
  std::uint64_t canary_accesses = 0;  ///< cumulative accesses at canary open
  std::uint64_t baseline_cost = 0;    ///< phase cycle sum at canary open
  std::uint64_t baseline_accesses = 0;
  std::uint64_t decision_cost = 0;    ///< cumulative cycles at last decision
  std::uint64_t decision_accesses = 0;
  std::uint64_t phase_cost = 0;       ///< cycles accumulated this phase
  std::uint64_t phase_accesses = 0;
  PhaseDetectorState phase;

  bool operator==(const OnlineMapperState&) const = default;
};

class OnlineMapper final : public MachineObserver, public MigrationPolicy {
 public:
  /// `machine` must outlive the mapper; `initial` is the starting placement
  /// (also what Machine::RunConfig::thread_to_core should be set to).
  /// Throws std::invalid_argument when `config` fails validate().
  OnlineMapper(Machine& machine, int num_threads, Mapping initial,
               OnlineMapperConfig config = {});

  // MachineObserver: forward to the embedded SM detector and the phase
  // detector's miss-rate windows.
  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles /*now*/) override { return 0; }

  // MigrationPolicy. The serial event loop calls the stats-carrying form;
  // without stats (legacy callers, epoch engine) the canary machinery sees
  // empty cost windows and stays inert, leaving the pre-PR-10 behaviour.
  std::vector<CoreId> on_barrier(int barrier_index, Cycles now) override;
  std::vector<CoreId> on_barrier(int barrier_index, Cycles now,
                                 const MachineStats& stats) override;

  const CommMatrix& matrix() const { return detector_.matrix(); }
  const Mapping& current_mapping() const { return current_; }
  int migrations() const { return migrations_; }
  int remap_decisions() const { return remap_decisions_; }
  /// Decisions where the matrix was degenerate (empty/uniform) and the
  /// mapper fell back to the previous placement instead of remapping.
  int degraded_decisions() const { return degraded_decisions_; }
  /// Canary windows whose realized cost regressed past the threshold and
  /// were reverted to the recorded pre-move placement.
  int rollbacks() const { return rollbacks_; }
  /// Canary windows whose migration survived its measurement window.
  int canary_commits() const { return canary_commits_; }
  /// Remap decisions skipped under post-rollback exponential damping.
  int backoff_skips() const { return backoff_skips_; }
  /// Phase epochs the phase detector has emitted so far.
  std::uint64_t phase_epochs() const { return phase_.epoch(); }
  /// Injected-fault tally of the mapper's own matrix-noise injector (null
  /// when the plan has no matrix faults).
  const FaultCounters* fault_counters() const {
    return fault_ ? &fault_->counters() : nullptr;
  }

  /// Forwards the context to the embedded detector and records remap
  /// decisions / migrations / canary verdicts as trace instants and
  /// counters.
  void set_observability(obs::ObsContext* obs) {
    obs_ = obs;
    detector_.set_observability(obs);
  }

  /// Copies out the decision state (checkpoint support).
  OnlineMapperState state() const;
  /// Overwrites the decision state from a snapshot. Throws
  /// std::invalid_argument when the snapshot's shape (matrix size, mapping
  /// length, phase windows) does not match this mapper's.
  void restore(const OnlineMapperState& state);

 private:
  /// Evaluates a closing canary window; returns the restored pre-move
  /// placement on rollback, empty otherwise.
  std::vector<CoreId> close_canary(int barrier_index, std::uint64_t cum_cost,
                                   std::uint64_t cum_accesses);

  obs::ObsContext* obs_ = nullptr;
  SmDetector detector_;
  PhaseDetector phase_;
  HierarchicalMapper mapper_;
  const Topology* topology_;
  OnlineMapperConfig config_;
  Mapping current_;
  int migrations_ = 0;
  int remap_decisions_ = 0;
  int degraded_decisions_ = 0;
  int cooldown_left_ = 0;
  int rollbacks_ = 0;
  int canary_commits_ = 0;
  int backoff_skips_ = 0;
  int canary_left_ = 0;
  int backoff_left_ = 0;
  int phase_rollbacks_ = 0;
  Mapping canary_prev_;
  std::uint64_t canary_cost_ = 0;
  std::uint64_t canary_accesses_ = 0;
  std::uint64_t baseline_cost_ = 0;
  std::uint64_t baseline_accesses_ = 0;
  std::uint64_t decision_cost_ = 0;
  std::uint64_t decision_accesses_ = 0;
  std::uint64_t phase_cost_ = 0;
  std::uint64_t phase_accesses_ = 0;
  /// Engaged only when the machine's plan carries matrix faults: the
  /// decision then runs on a noisy copy of the detected matrix.
  std::optional<FaultInjector> fault_;
};

}  // namespace tlbmap

// Online (dynamic) thread mapping — the paper's future work, end to end.
//
// OnlineMapper attaches to a run as both the detector hook and the
// migration policy: the software-managed TLB mechanism accumulates the
// communication matrix while the application executes, and every
// `remap_every_barriers` barriers the hierarchical matcher is re-run on the
// current matrix; if the best placement changed, the threads migrate at
// that barrier. The matrix is aged (multiplicative decay) at each remap so
// old phases stop dominating — the matrix-level analogue of the TLB's own
// entry lifetime.
#pragma once

#include <memory>
#include <optional>

#include "core/fault.hpp"
#include "detect/sm_detector.hpp"
#include "mapping/hierarchical.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct OnlineMapperConfig {
  /// Consider remapping after every this many barriers.
  int remap_every_barriers = 4;
  /// Matrix ageing factor applied at each remap decision.
  double decay = 0.5;
  /// Skip remapping while the matrix holds fewer total events than this
  /// (avoids thrashing on startup noise).
  std::uint64_t min_matrix_total = 32;
  /// Hysteresis: migrate only when the candidate placement's communication
  /// cost (under the current matrix) is at least this much lower than the
  /// current placement's. 0.15 = candidate must be 15 % better. Guards
  /// against oscillating between near-tie matchings of a noisy matrix.
  double improvement_threshold = 0.15;
  /// After a migration, sit out this many remap decisions before migrating
  /// again. Second oscillation guard, for inputs noisy enough (e.g. under
  /// matrix fault injection) that single-decision hysteresis is beaten by
  /// two alternating "15 % better" illusions. 0 (default) disables it —
  /// the historical behaviour.
  int migration_cooldown = 0;
  SmDetectorConfig detector{/*sample_threshold=*/10, /*search_cost=*/231};
};

/// Serializable decision state of an OnlineMapper (DESIGN.md Sec. 12): the
/// embedded SM detector's snapshot plus the current placement and the
/// decision/hysteresis cursors. Restoring it into a fresh mapper of the
/// same shape reproduces the original's future remap decisions exactly
/// (faultless plans).
struct OnlineMapperState {
  SmDetectorState detector;
  Mapping mapping;
  std::int32_t migrations = 0;
  std::int32_t remap_decisions = 0;
  std::int32_t degraded_decisions = 0;
  std::int32_t cooldown_left = 0;

  bool operator==(const OnlineMapperState&) const = default;
};

class OnlineMapper final : public MachineObserver, public MigrationPolicy {
 public:
  /// `machine` must outlive the mapper; `initial` is the starting placement
  /// (also what Machine::RunConfig::thread_to_core should be set to).
  OnlineMapper(Machine& machine, int num_threads, Mapping initial,
               OnlineMapperConfig config = {});

  // MachineObserver: forward to the embedded SM detector.
  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles /*now*/) override { return 0; }

  // MigrationPolicy.
  std::vector<CoreId> on_barrier(int barrier_index, Cycles now) override;

  const CommMatrix& matrix() const { return detector_.matrix(); }
  const Mapping& current_mapping() const { return current_; }
  int migrations() const { return migrations_; }
  int remap_decisions() const { return remap_decisions_; }
  /// Decisions where the matrix was degenerate (empty/uniform) and the
  /// mapper fell back to the previous placement instead of remapping.
  int degraded_decisions() const { return degraded_decisions_; }
  /// Injected-fault tally of the mapper's own matrix-noise injector (null
  /// when the plan has no matrix faults).
  const FaultCounters* fault_counters() const {
    return fault_ ? &fault_->counters() : nullptr;
  }

  /// Forwards the context to the embedded detector and records remap
  /// decisions / migrations as trace instants and counters.
  void set_observability(obs::ObsContext* obs) {
    obs_ = obs;
    detector_.set_observability(obs);
  }

  /// Copies out the decision state (checkpoint support).
  OnlineMapperState state() const;
  /// Overwrites the decision state from a snapshot. Throws
  /// std::invalid_argument when the snapshot's shape (matrix size, mapping
  /// length) does not match this mapper's.
  void restore(const OnlineMapperState& state);

 private:
  obs::ObsContext* obs_ = nullptr;
  SmDetector detector_;
  HierarchicalMapper mapper_;
  const Topology* topology_;
  OnlineMapperConfig config_;
  Mapping current_;
  int migrations_ = 0;
  int remap_decisions_ = 0;
  int degraded_decisions_ = 0;
  int cooldown_left_ = 0;
  /// Engaged only when the machine's plan carries matrix faults: the
  /// decision then runs on a noisy copy of the detected matrix.
  std::optional<FaultInjector> fault_;
};

}  // namespace tlbmap

#include "core/dynamic.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace tlbmap {
namespace {

/// Saturating subtraction: cumulative counters are monotone within a run,
/// but restored anchors driven against a fresh stats block must degrade to
/// an empty window, not wrap.
std::uint64_t sub_sat(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : 0;
}

/// Ceiling on a single backoff sentence, in remap decisions. delay()
/// saturates at the u64 ceiling; an int cursor needs a sane bound.
constexpr std::uint64_t kMaxBackoffDecisions = 1u << 20;

}  // namespace

void OnlineMapperConfig::validate() const {
  if (remap_every_barriers < 0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: remap_every_barriers must be non-negative");
  }
  if (!std::isfinite(decay) || decay <= 0.0 || decay > 1.0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: decay must be in (0, 1]");
  }
  if (!std::isfinite(improvement_threshold) || improvement_threshold < 0.0 ||
      improvement_threshold >= 1.0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: improvement_threshold must be in [0, 1)");
  }
  if (migration_cooldown < 0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: migration_cooldown must be non-negative");
  }
  if (canary_barriers < 0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: canary_barriers must be non-negative");
  }
  if (!std::isfinite(regression_threshold) || regression_threshold < 0.0) {
    throw std::invalid_argument(
        "OnlineMapperConfig: regression_threshold must be non-negative");
  }
  rollback_backoff.validate();
  phase.validate();
}

OnlineMapper::OnlineMapper(Machine& machine, int num_threads,
                           Mapping initial, OnlineMapperConfig config)
    : detector_(machine, num_threads, config.detector),
      phase_(num_threads, config.phase),
      mapper_(machine.topology()),
      topology_(&machine.topology()),
      config_(config),
      current_(std::move(initial)) {
  config_.validate();
  const FaultPlan& plan = machine.config().fault;
  if (plan.matrix_flip_rate > 0.0 || plan.matrix_zero_rate > 0.0) {
    fault_.emplace(plan, FaultInjector::kOnlineSalt);
  }
}

OnlineMapperState OnlineMapper::state() const {
  OnlineMapperState s;
  s.detector = detector_.state();
  s.mapping = current_;
  s.migrations = migrations_;
  s.remap_decisions = remap_decisions_;
  s.degraded_decisions = degraded_decisions_;
  s.cooldown_left = cooldown_left_;
  s.rollbacks = rollbacks_;
  s.canary_commits = canary_commits_;
  s.backoff_skips = backoff_skips_;
  s.canary_left = canary_left_;
  s.backoff_left = backoff_left_;
  s.phase_rollbacks = phase_rollbacks_;
  s.canary_prev = canary_prev_;
  s.canary_cost = canary_cost_;
  s.canary_accesses = canary_accesses_;
  s.baseline_cost = baseline_cost_;
  s.baseline_accesses = baseline_accesses_;
  s.decision_cost = decision_cost_;
  s.decision_accesses = decision_accesses_;
  s.phase_cost = phase_cost_;
  s.phase_accesses = phase_accesses_;
  s.phase = phase_.state();
  return s;
}

void OnlineMapper::restore(const OnlineMapperState& state) {
  if (state.mapping.size() != current_.size()) {
    throw std::invalid_argument(
        "OnlineMapper::restore: snapshot mapping length mismatch");
  }
  if (!state.canary_prev.empty() &&
      state.canary_prev.size() != current_.size()) {
    throw std::invalid_argument(
        "OnlineMapper::restore: snapshot canary placement length mismatch");
  }
  detector_.restore(state.detector);  // throws on matrix-size mismatch
  phase_.restore(state.phase);        // throws on shape mismatch
  current_ = state.mapping;
  migrations_ = state.migrations;
  remap_decisions_ = state.remap_decisions;
  degraded_decisions_ = state.degraded_decisions;
  cooldown_left_ = state.cooldown_left;
  rollbacks_ = state.rollbacks;
  canary_commits_ = state.canary_commits;
  backoff_skips_ = state.backoff_skips;
  canary_left_ = state.canary_left;
  backoff_left_ = state.backoff_left;
  phase_rollbacks_ = state.phase_rollbacks;
  canary_prev_ = state.canary_prev;
  canary_cost_ = state.canary_cost;
  canary_accesses_ = state.canary_accesses;
  baseline_cost_ = state.baseline_cost;
  baseline_accesses_ = state.baseline_accesses;
  decision_cost_ = state.decision_cost;
  decision_accesses_ = state.decision_accesses;
  phase_cost_ = state.phase_cost;
  phase_accesses_ = state.phase_accesses;
}

Cycles OnlineMapper::on_access(ThreadId thread, CoreId core, VirtAddr addr,
                               PageNum page, AccessType type, bool tlb_miss,
                               Cycles now) {
  phase_.on_access(thread, tlb_miss);
  return detector_.on_access(thread, core, addr, page, type, tlb_miss, now);
}

std::vector<CoreId> OnlineMapper::on_barrier(int barrier_index, Cycles now) {
  // Legacy entry without machine counters: cost windows stay empty, so
  // canary transactions never open and decisions reduce to the historical
  // hysteresis + cooldown behaviour.
  return on_barrier(barrier_index, now, MachineStats{});
}

std::vector<CoreId> OnlineMapper::close_canary(int barrier_index,
                                               std::uint64_t cum_cost,
                                               std::uint64_t cum_accesses) {
  const std::uint64_t win_cost = sub_sat(cum_cost, canary_cost_);
  const std::uint64_t win_accesses = sub_sat(cum_accesses, canary_accesses_);
  // Cross-multiplied rate comparison (integer inputs, one deterministic
  // float expression): regressed iff
  //   win_cost / win_accesses > (baseline_cost / baseline_accesses)
  //                             * (1 + regression_threshold).
  bool regressed = false;
  if (win_accesses > 0 && baseline_accesses_ > 0) {
    const double lhs = static_cast<double>(win_cost) *
                       static_cast<double>(baseline_accesses_);
    const double rhs = static_cast<double>(baseline_cost_) *
                       static_cast<double>(win_accesses) *
                       (1.0 + config_.regression_threshold);
    regressed = lhs > rhs;
  }
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index << ",\"canary_cost\":" << win_cost
         << ",\"canary_accesses\":" << win_accesses
         << ",\"baseline_cost\":" << baseline_cost_
         << ",\"baseline_accesses\":" << baseline_accesses_
         << ",\"regressed\":" << (regressed ? "true" : "false");
    tracer->record_instant("online.canary_verdict", "mapper", args.str());
  }
  if (regressed && config_.rollback && !canary_prev_.empty()) {
    current_ = canary_prev_;
    canary_prev_.clear();
    ++rollbacks_;
    ++phase_rollbacks_;
    const int attempt = std::min(phase_rollbacks_, 30);
    backoff_left_ = static_cast<int>(std::min<std::uint64_t>(
        config_.rollback_backoff.delay(attempt), kMaxBackoffDecisions));
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.rollbacks").add();
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kPhases)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"backoff\":" << backoff_left_;
      tracer->record_instant("online.rollback", "mapper", args.str());
    }
    return current_;
  }
  canary_prev_.clear();
  ++canary_commits_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.canary_commits").add();
  }
  return {};
}

std::vector<CoreId> OnlineMapper::on_barrier(int barrier_index, Cycles now,
                                             const MachineStats& stats) {
  // Realized cost = simulated cycles per access. Barrier-release time is
  // the one live metric that directly prices a placement's stall/locality
  // impact: coherence event *counts* barely change when only the distance
  // of the traffic changes, their latency does.
  const std::uint64_t cum_cost = now;
  const std::uint64_t cum_accesses = stats.accesses;

  // An open canary window ticks down on every barrier; when it closes, a
  // realized regression restores the recorded pre-move placement.
  if (canary_left_ > 0) {
    --canary_left_;
    if (canary_left_ == 0) {
      std::vector<CoreId> rolled =
          close_canary(barrier_index, cum_cost, cum_accesses);
      if (!rolled.empty()) {
        // The rollback itself consumed this barrier's decision slot; the
        // next window starts from the restored placement.
        decision_cost_ = cum_cost;
        decision_accesses_ = cum_accesses;
        return rolled;
      }
    }
  }

  if (config_.remap_every_barriers <= 0 ||
      barrier_index % config_.remap_every_barriers != 0) {
    return {};
  }
  if (detector_.matrix().total() < config_.min_matrix_total) return {};
  ++remap_decisions_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.remap_decisions").add();
  }

  // Realized-cost window since the last remap decision feeds the
  // phase-anchored baseline the next canary compares against.
  const std::uint64_t win_cost = sub_sat(cum_cost, decision_cost_);
  const std::uint64_t win_accesses = sub_sat(cum_accesses, decision_accesses_);
  decision_cost_ = cum_cost;
  decision_accesses_ = cum_accesses;
  phase_cost_ += win_cost;
  phase_accesses_ += win_accesses;

  // Phase detection runs on the clean matrix (decay and injected noise
  // model a corrupted read-out, not corrupted history). A new epoch resets
  // the rollback damping and the baseline anchor: a genuine phase change
  // deserves a fresh chance to move, and the old phase's cost rate no
  // longer describes "normal".
  if (phase_.observe(detector_.matrix())) {
    phase_rollbacks_ = 0;
    backoff_left_ = 0;
    // The boundary window mixes the old and new phase, so it is unusable
    // as a baseline: start the new phase's accumulation empty. Migrations
    // then defer until one clean window exists (see below).
    phase_cost_ = 0;
    phase_accesses_ = 0;
    // A canary still open across a phase boundary would be judged against
    // a baseline from the phase that just ended — abort it as inconclusive
    // rather than risk a stale verdict either way.
    if (canary_left_ > 0) {
      canary_left_ = 0;
      canary_prev_.clear();
      if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
        std::ostringstream abort_args;
        abort_args << "\"barrier\":" << barrier_index;
        tracer->record_instant("online.canary_aborted", "mapper",
                               abort_args.str());
      }
    }
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.phase_epochs").add();
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kPhases)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"epoch\":" << phase_.epoch();
      tracer->record_instant("online.phase_epoch", "mapper", args.str());
    }
  }

  // Under matrix fault injection the decision runs on a noisy copy; the
  // detector's accumulated matrix itself stays clean (faults model a
  // corrupted read-out, not corrupted detection history).
  std::optional<CommMatrix> noisy;
  if (fault_) {
    noisy.emplace(detector_.matrix());
    noisy->apply_faults(*fault_);
  }
  const CommMatrix& decision_matrix = noisy ? *noisy : detector_.matrix();

  // Quality gate (DESIGN.md Sec. 11): a degenerate matrix — empty, or
  // uniform across all pairs — carries no placement preference, so a
  // matching computed from it is pure noise. Fall back to the previous
  // placement; the decision still counts and the matrix still ages, so the
  // faultless decision cadence is unchanged.
  const CommMatrix::Health health = decision_matrix.health();
  if (health.degenerate()) {
    ++degraded_decisions_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.degraded_decisions").add();
      metrics->gauge("pipeline.degraded_mode").set(1.0);
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"matrix\":" << obs::json_str(health.describe());
      tracer->record_instant("online.degraded_fallback", "mapper",
                             args.str());
    }
    detector_.decay_matrix(config_.decay);
    return {};
  }

  Mapping next = mapper_.map(decision_matrix);
  const double current_cost =
      mapping_cost(decision_matrix, current_, *topology_);
  const double next_cost = mapping_cost(decision_matrix, next, *topology_);
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index
         << ",\"current_cost\":" << current_cost
         << ",\"candidate_cost\":" << next_cost;
    tracer->record_instant("online.remap_decision", "mapper", args.str());
    obs_->metrics.snapshot_matrix(
        "comm_matrix.online",
        static_cast<std::uint64_t>(remap_decisions_),
        detector_.matrix().rows());
  }
  // Age the matrix so the next decision window reflects fresh behaviour.
  detector_.decay_matrix(config_.decay);
  if (next == current_) return {};
  // Hysteresis: a migration must pay for itself.
  if (next_cost > current_cost * (1.0 - config_.improvement_threshold)) {
    return {};
  }
  // Never stack a migration inside an open canary window: the measurement
  // would attribute the second move's cost to the first. (Only while
  // rollback is live — with rollback off, canaries are pure telemetry and
  // the decision flow is the historical pre-PR-10 one.)
  if (config_.rollback && canary_left_ > 0) return {};
  // Exponential per-phase damping after rollbacks (RetryPolicy schedule).
  // Past the attempt cap the phase has proven migration-hostile: block
  // until the phase detector declares a new epoch.
  const bool phase_exhausted =
      config_.rollback_backoff.max_attempts > 0 &&
      phase_rollbacks_ > config_.rollback_backoff.max_attempts;
  if (backoff_left_ > 0 || phase_exhausted) {
    if (backoff_left_ > 0) --backoff_left_;
    ++backoff_skips_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.backoff_skips").add();
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"backoff_left\":" << backoff_left_;
      tracer->record_instant("online.backoff_skip", "mapper", args.str());
    }
    return {};
  }
  // Cooldown: recently migrated — let the aged matrix re-confirm the
  // pattern before moving again (anti-oscillation under noisy input).
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      tracer->record_instant("online.migration_cooldown", "mapper", "");
    }
    return {};
  }
  // Defer rule: with rollback live and machine counters flowing, a
  // migration may only open against a baseline measured inside the current
  // phase. Right after a phase epoch no such window exists yet — wait one
  // decision; the window that accrues meanwhile is exactly the comparison
  // the canary needs (the new phase under the old placement). Does not
  // consume the cooldown.
  if (config_.rollback && config_.canary_barriers > 0 && cum_accesses > 0 &&
      phase_accesses_ == 0) {
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index;
      tracer->record_instant("online.migration_deferred", "mapper",
                             args.str());
    }
    return {};
  }
  cooldown_left_ = config_.migration_cooldown;
  // Canary transaction: record the pre-move placement and the
  // phase-anchored baseline; the next canary_barriers barriers measure the
  // realized cost of the move. Without a baseline window (no counters at
  // all, e.g. the legacy stats-free entry) the migration commits blind, as
  // before PR 10.
  if (config_.canary_barriers > 0 && phase_accesses_ > 0) {
    canary_prev_ = current_;
    canary_left_ = config_.canary_barriers;
    canary_cost_ = cum_cost;
    canary_accesses_ = cum_accesses;
    baseline_cost_ = phase_cost_;
    baseline_accesses_ = phase_accesses_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.canary_windows").add();
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"window\":" << config_.canary_barriers;
      tracer->record_instant("online.canary_open", "mapper", args.str());
    }
  }
  current_ = std::move(next);
  ++migrations_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.migrations").add();
  }
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kPhases)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index;
    tracer->record_instant("online.migrate", "mapper", args.str());
  }
  return current_;
}

}  // namespace tlbmap

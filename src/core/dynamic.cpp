#include "core/dynamic.hpp"

#include <sstream>

namespace tlbmap {

OnlineMapper::OnlineMapper(Machine& machine, int num_threads,
                           Mapping initial, OnlineMapperConfig config)
    : detector_(machine, num_threads, config.detector),
      mapper_(machine.topology()),
      topology_(&machine.topology()),
      config_(config),
      current_(std::move(initial)) {}

Cycles OnlineMapper::on_access(ThreadId thread, CoreId core, VirtAddr addr,
                               PageNum page, AccessType type, bool tlb_miss,
                               Cycles now) {
  return detector_.on_access(thread, core, addr, page, type, tlb_miss, now);
}

std::vector<CoreId> OnlineMapper::on_barrier(int barrier_index,
                                             Cycles /*now*/) {
  if (config_.remap_every_barriers <= 0 ||
      barrier_index % config_.remap_every_barriers != 0) {
    return {};
  }
  if (detector_.matrix().total() < config_.min_matrix_total) return {};
  ++remap_decisions_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.remap_decisions").add();
  }
  Mapping next = mapper_.map(detector_.matrix());
  const double current_cost =
      mapping_cost(detector_.matrix(), current_, *topology_);
  const double next_cost = mapping_cost(detector_.matrix(), next, *topology_);
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index
         << ",\"current_cost\":" << current_cost
         << ",\"candidate_cost\":" << next_cost;
    tracer->record_instant("online.remap_decision", "mapper", args.str());
    obs_->metrics.snapshot_matrix(
        "comm_matrix.online",
        static_cast<std::uint64_t>(remap_decisions_),
        detector_.matrix().rows());
  }
  // Age the matrix so the next decision window reflects fresh behaviour.
  detector_.decay_matrix(config_.decay);
  if (next == current_) return {};
  // Hysteresis: a migration must pay for itself.
  if (next_cost > current_cost * (1.0 - config_.improvement_threshold)) {
    return {};
  }
  current_ = std::move(next);
  ++migrations_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.migrations").add();
  }
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kPhases)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index;
    tracer->record_instant("online.migrate", "mapper", args.str());
  }
  return current_;
}

}  // namespace tlbmap

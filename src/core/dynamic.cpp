#include "core/dynamic.hpp"

#include <optional>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace tlbmap {

OnlineMapper::OnlineMapper(Machine& machine, int num_threads,
                           Mapping initial, OnlineMapperConfig config)
    : detector_(machine, num_threads, config.detector),
      mapper_(machine.topology()),
      topology_(&machine.topology()),
      config_(config),
      current_(std::move(initial)) {
  const FaultPlan& plan = machine.config().fault;
  if (plan.matrix_flip_rate > 0.0 || plan.matrix_zero_rate > 0.0) {
    fault_.emplace(plan, FaultInjector::kOnlineSalt);
  }
}

OnlineMapperState OnlineMapper::state() const {
  OnlineMapperState s;
  s.detector = detector_.state();
  s.mapping = current_;
  s.migrations = migrations_;
  s.remap_decisions = remap_decisions_;
  s.degraded_decisions = degraded_decisions_;
  s.cooldown_left = cooldown_left_;
  return s;
}

void OnlineMapper::restore(const OnlineMapperState& state) {
  if (state.mapping.size() != current_.size()) {
    throw std::invalid_argument(
        "OnlineMapper::restore: snapshot mapping length mismatch");
  }
  detector_.restore(state.detector);  // throws on matrix-size mismatch
  current_ = state.mapping;
  migrations_ = state.migrations;
  remap_decisions_ = state.remap_decisions;
  degraded_decisions_ = state.degraded_decisions;
  cooldown_left_ = state.cooldown_left;
}

Cycles OnlineMapper::on_access(ThreadId thread, CoreId core, VirtAddr addr,
                               PageNum page, AccessType type, bool tlb_miss,
                               Cycles now) {
  return detector_.on_access(thread, core, addr, page, type, tlb_miss, now);
}

std::vector<CoreId> OnlineMapper::on_barrier(int barrier_index,
                                             Cycles /*now*/) {
  if (config_.remap_every_barriers <= 0 ||
      barrier_index % config_.remap_every_barriers != 0) {
    return {};
  }
  if (detector_.matrix().total() < config_.min_matrix_total) return {};
  ++remap_decisions_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.remap_decisions").add();
  }
  // Under matrix fault injection the decision runs on a noisy copy; the
  // detector's accumulated matrix itself stays clean (faults model a
  // corrupted read-out, not corrupted detection history).
  std::optional<CommMatrix> noisy;
  if (fault_) {
    noisy.emplace(detector_.matrix());
    noisy->apply_faults(*fault_);
  }
  const CommMatrix& decision_matrix = noisy ? *noisy : detector_.matrix();

  // Quality gate (DESIGN.md Sec. 11): a degenerate matrix — empty, or
  // uniform across all pairs — carries no placement preference, so a
  // matching computed from it is pure noise. Fall back to the previous
  // placement; the decision still counts and the matrix still ages, so the
  // faultless decision cadence is unchanged.
  const CommMatrix::Health health = decision_matrix.health();
  if (health.degenerate()) {
    ++degraded_decisions_;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      metrics->counter("online.degraded_decisions").add();
      metrics->gauge("pipeline.degraded_mode").set(1.0);
    }
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_index
           << ",\"matrix\":" << obs::json_str(health.describe());
      tracer->record_instant("online.degraded_fallback", "mapper",
                             args.str());
    }
    detector_.decay_matrix(config_.decay);
    return {};
  }

  Mapping next = mapper_.map(decision_matrix);
  const double current_cost =
      mapping_cost(decision_matrix, current_, *topology_);
  const double next_cost = mapping_cost(decision_matrix, next, *topology_);
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index
         << ",\"current_cost\":" << current_cost
         << ",\"candidate_cost\":" << next_cost;
    tracer->record_instant("online.remap_decision", "mapper", args.str());
    obs_->metrics.snapshot_matrix(
        "comm_matrix.online",
        static_cast<std::uint64_t>(remap_decisions_),
        detector_.matrix().rows());
  }
  // Age the matrix so the next decision window reflects fresh behaviour.
  detector_.decay_matrix(config_.decay);
  if (next == current_) return {};
  // Hysteresis: a migration must pay for itself.
  if (next_cost > current_cost * (1.0 - config_.improvement_threshold)) {
    return {};
  }
  // Cooldown: recently migrated — let the aged matrix re-confirm the
  // pattern before moving again (anti-oscillation under noisy input).
  if (cooldown_left_ > 0) {
    --cooldown_left_;
    if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kFull)) {
      tracer->record_instant("online.migration_cooldown", "mapper", "");
    }
    return {};
  }
  cooldown_left_ = config_.migration_cooldown;
  current_ = std::move(next);
  ++migrations_;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    metrics->counter("online.migrations").add();
  }
  if (obs::Tracer* tracer = obs::tracer_at(obs_, obs::ObsLevel::kPhases)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_index;
    tracer->record_instant("online.migrate", "mapper", args.str());
  }
  return current_;
}

}  // namespace tlbmap

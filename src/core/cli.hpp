// Command-line front end for the library, factored as a parse/run pair so
// the argument handling is unit-testable. The binary lives in
// examples/tlbmap_cli.cpp.
//
// Commands:
//   detect   --app SP [--mechanism sm|hm|oracle] [--threads N] [--numa]
//   map      --app SP [--mechanism ...]           print detected mapping
//   evaluate --app SP --mapping 0,1,2,...         run under a placement
//   dynamic  --app SP [--reps ...]                online detect + migrate
//   suite    [--apps BT,SP,...] [--reps N]        figure-6 style table
//   record   --app SP --out DIR                   capture a trace
//   replay   --in DIR [--mapping ...]             run a captured trace
//   serve    [--tenants N] [--corrupt-tenant K]   mapping-service daemon
// Common: --size-scale X --iter-scale X --seed N --threads N --numa
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/dynamic.hpp"
#include "core/fault.hpp"
#include "mapping/mapping.hpp"

namespace tlbmap {

struct CliOptions {
  std::string command;
  std::string app = "SP";
  std::string mechanism = "sm";
  int threads = 8;
  double size_scale = 1.0;
  double iter_scale = 1.0;
  int reps = 4;
  std::uint64_t seed = 1;
  bool numa = false;
  // Topology overrides (0 = keep the selected preset's value). Together
  // with --mesh-cols these describe manycore machines well past the
  // paper's 2x4 Harpertown — e.g. --sockets 32 --cores-per-socket 8
  // --cores-per-l2 1 --mesh-cols 8 is a 256-core mesh machine.
  int sockets = 0;           ///< --sockets
  int cores_per_socket = 0;  ///< --cores-per-socket
  int cores_per_l2 = 0;      ///< --cores-per-l2
  /// --mesh-cols: socket-mesh columns (0 = fully connected sockets).
  int mesh_cols = 0;
  /// --mapping-strategy: auto | edmonds | greedy | multisection.
  std::string mapping_strategy = "auto";
  /// Run the HM detector's sweep with the reference O(P^2) pairwise walk
  /// instead of the inverted page index. Both produce bit-identical
  /// matrices; the naive path exists for A/B benchmarking and as a
  /// cross-check of the fast path.
  bool hm_naive_sweep = false;
  /// Resolve coherence probes with the reference walked broadcast instead
  /// of the line-occupancy directory. Same contract as --hm-naive-sweep:
  /// bit-identical statistics, kept for A/B benchmarking and as a
  /// cross-check of the fast path.
  bool coherence_broadcast = false;
  /// Seeded fault-injection plan assembled from the --fault-* flags
  /// (DESIGN.md Sec. 11). Default-disabled: without any --fault-* flag the
  /// pipeline is bit-identical to a faultless build.
  FaultPlan fault{};
  /// --watchdog-events: abort a run with a structured error after this many
  /// issued trace events (0 = off).
  std::uint64_t watchdog_events = 0;
  /// --machine-workers: shard observer-free runs (evaluate/replay) across
  /// this many worker threads via the epoch engine (DESIGN.md Sec. 15).
  /// Statistics are identical for every worker count; 0 (default) keeps the
  /// serial per-event loop. Detection and dynamic runs carry an observer
  /// and always run serially.
  int machine_workers = 0;
  /// --epoch-events: events each shard issues per epoch between
  /// cross-domain reductions. Only meaningful with --machine-workers.
  std::uint64_t epoch_events = 2048;
  /// --scalar-scan: run TLB/cache set lookups and the HM sweep with the
  /// reference scalar walks instead of the SIMD tag-scan kernels. Same
  /// contract as --hm-naive-sweep: bit-identical results, kept for A/B
  /// benchmarking and as a cross-check of the fast path.
  bool scalar_scan = false;
  std::vector<std::string> apps;  ///< suite only; empty = all nine
  Mapping mapping;                ///< evaluate/replay; empty = detect+map
  std::string dir;                ///< record --out / replay --in
  /// Online-mapper knobs (dynamic only; DESIGN.md Sec. 17), populated by
  /// --remap-every-barriers / --improvement-threshold / --migration-cooldown
  /// / --matrix-decay / --canary-barriers / --regression-threshold /
  /// --no-rollback. Embedding the config struct keeps the CLI defaults
  /// identical to the library defaults by construction; out-of-range values
  /// surface through OnlineMapperConfig::validate() as structured parse
  /// errors.
  OnlineMapperConfig online{};
  // Mapping-service daemon (serve only; DESIGN.md Sec. 16). Tenant streams
  // are synthetic NPB recordings; --corrupt-tenant injects deterministic
  // stream corruption into one of them, which must quarantine exactly that
  // session while every other tenant's outcome stays bit-identical.
  int tenants = 4;                ///< --tenants: synthetic tenant fleet size
  int corrupt_tenant = -1;        ///< --corrupt-tenant: index or -1 = none
  std::uint64_t serve_ticks = 0;  ///< --serve-ticks: tick cap (0 = drain)
  std::uint64_t chunk_bytes = 512;  ///< --chunk-bytes: feed fragment size
  int max_sessions = 64;          ///< --max-sessions: admission cap
  std::uint64_t queue_bytes = 64 * 1024;  ///< --queue-bytes: per session
  std::uint64_t session_budget_bytes = 8 * 1024 * 1024;  ///< --session-budget
  std::uint64_t total_budget_bytes = 64 * 1024 * 1024;   ///< --total-budget
  std::uint64_t deadline_events = 8192;   ///< --deadline-events: pump slice
  double drift_threshold = 0.90;  ///< --drift-threshold: re-match trigger
  int window_pages = 64;          ///< --window-pages: stream detector LRU
  std::uint64_t sweep_every = 4096;  ///< --sweep-every: stream sweep cadence
  std::string serve_out;          ///< --serve-out: JSON report path
  // Crash safety (suite only, DESIGN.md Sec. 12). With --checkpoint-dir
  // set, SIGINT/SIGTERM handlers are installed, progress is checkpointed
  // as tasks complete, and an interrupted suite exits with code 130;
  // --resume continues from the saved snapshot.
  std::string checkpoint_dir;            ///< empty = checkpointing off
  std::uint64_t checkpoint_every_events = 0;  ///< 0 = every completed task
  bool resume = false;
  // Observability (see src/obs/): "off" records nothing. Passing
  // --trace-out/--metrics-out/--manifest-out or a nonzero
  // --metrics-interval-events with the default level upgrades it to
  // "phases" so the artifacts are never silently empty.
  std::string obs_level = "off";  ///< off | phases | full
  std::string trace_out;          ///< Chrome-trace JSON path; empty = none
  std::string metrics_out;        ///< metrics JSONL path; empty = none
  /// --metrics-interval-events: simulated events between "interval"
  /// time-series samples (DESIGN.md Sec. 13); phase boundaries sample too.
  /// 0 (default) = series stream off.
  std::uint64_t metrics_interval_events = 0;
  /// --manifest-out: run-manifest JSON path (provenance + self-profile);
  /// empty = none. The suite writes it from run_suite, other commands from
  /// the generic epilogue.
  std::string manifest_out;
  bool help = false;
  std::string error;  ///< non-empty means parsing failed; message inside

  bool ok() const { return error.empty(); }
};

/// Parses argv (argv[0] ignored). Never throws; failures land in `error`.
CliOptions parse_cli(int argc, const char* const* argv);

std::string cli_usage();

/// Executes a parsed command, printing results to stdout. Returns the
/// process exit code (0 success, 2 usage error, 1 runtime failure, 130
/// when a checkpointed suite was interrupted by SIGINT/SIGTERM).
int run_cli(const CliOptions& options);

}  // namespace tlbmap

// Little-endian binary payload codec shared by every sealed-envelope
// consumer (DESIGN.md Secs. 12 and 16).
//
// Extracted from checkpoint.cpp when the mapping service grew its own
// session-state payloads: the suite checkpoint, the detector/mapper state
// snapshots and the service session codecs all write the same fixed-width
// little-endian fields and want the same sticky-error decode discipline,
// so the writer/reader pair lives here once.
//
// BinReader's error handling is deliberately "sticky": the first failure
// records a structured Error carrying the byte offset where the damage was
// noticed, and every later getter returns a zero value without advancing.
// Decode code therefore reads a whole record linearly and checks ok() once
// at the end instead of threading a status through every field.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/expected.hpp"

namespace tlbmap {

void append_u32(std::string& out, std::uint32_t v);
void append_u64(std::string& out, std::uint64_t v);
std::uint32_t load_u32(std::string_view bytes, std::size_t at);
std::uint64_t load_u64(std::string_view bytes, std::size_t at);

/// Little-endian payload writer.
class BinWriter {
 public:
  void u32(std::uint32_t v) { append_u32(out_, v); }
  void u64(std::uint64_t v) { append_u64(out_, v); }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void boolean(bool v) { out_.push_back(v ? '\1' : '\0'); }
  void str(std::string_view s) {
    u64(s.size());
    out_.append(s);
  }
  std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Little-endian payload reader with a sticky structured error. `code` and
/// `context` shape the recorded Error: the checkpoint layer reports
/// kCorruptCheckpoint/"checkpoint payload", the service layer
/// kCorruptCheckpoint/"session payload".
class BinReader {
 public:
  explicit BinReader(std::string_view data,
                     ErrorCode code = ErrorCode::kCorruptCheckpoint,
                     std::string context = "checkpoint payload")
      : data_(data), code_(code), context_(std::move(context)) {}

  std::uint32_t u32() {
    if (!need(4, "u32")) return 0;
    const std::uint32_t v = load_u32(data_, pos_);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8, "u64")) return 0;
    const std::uint64_t v = load_u64(data_, pos_);
    pos_ += 8;
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  bool boolean() {
    if (!need(1, "bool")) return false;
    const unsigned char c = static_cast<unsigned char>(data_[pos_]);
    if (c > 1) {
      fail("bool field holds " + std::to_string(static_cast<int>(c)));
      return false;
    }
    ++pos_;
    return c == 1;
  }
  std::string str() {
    const std::uint64_t len = u64();
    if (!ok()) return {};
    if (len > data_.size() - pos_) {
      fail("string length " + std::to_string(len) + " exceeds remaining " +
           std::to_string(data_.size() - pos_) + " bytes");
      return {};
    }
    std::string s(data_.substr(pos_, static_cast<std::size_t>(len)));
    pos_ += static_cast<std::size_t>(len);
    return s;
  }

  bool ok() const { return !err_.has_value(); }
  bool at_end() const { return pos_ == data_.size(); }
  std::size_t pos() const { return pos_; }
  const Error& error() const { return *err_; }

  /// Records the first failure; the offset in the message is where the
  /// decode stood when the damage was noticed.
  void fail(const std::string& what) {
    if (!err_) {
      err_ = Error{code_, context_ + ": " + what + " at byte " +
                             std::to_string(pos_)};
    }
  }

 private:
  bool need(std::size_t n, const char* what) {
    if (err_) return false;
    if (data_.size() - pos_ < n) {
      fail(std::string("truncated reading ") + what);
      return false;
    }
    return true;
  }

  std::string_view data_;
  std::size_t pos_ = 0;
  ErrorCode code_;
  std::string context_;
  std::optional<Error> err_;
};

}  // namespace tlbmap

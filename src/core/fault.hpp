// Seeded, deterministic fault injection for the detect -> map -> evaluate
// pipeline (DESIGN.md Sec. 11).
//
// The paper's whole premise is that TLB-based detection is *approximate*:
// 1-in-100 sampled SM misses and periodic HM sweeps see a noisy, partial
// view of the true sharing pattern. The FaultPlan makes that noise an
// explicit, reproducible input instead of an accident of scale: it can drop
// or corrupt sampled TLB entries, make the detection instruction fail,
// delay or skip whole HM sweeps (with the detector retrying under backoff),
// and flip or zero communication-matrix cells. Every decision comes from a
// splitmix64 stream seeded by `plan.seed` xor a per-consumer salt, so runs
// are bit-reproducible per seed and two consumers never share a stream.
//
// A default-constructed plan is disabled: consumers skip injector
// construction entirely, so the faults-off pipeline is bit-identical to a
// build without this subsystem (asserted by tests/test_fault.cpp).
//
// This header depends only on sim/types.hpp; it is compiled into its own
// tiny target (tlbmap_fault) so both the sim and detect layers can link it
// without cycles.
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/types.hpp"

namespace tlbmap {

/// What to break, how often, and under which seed. Rates are probabilities
/// in [0, 1] evaluated independently per opportunity.
struct FaultPlan {
  /// Base seed of every injector stream derived from this plan.
  std::uint64_t seed = 0;

  // --- software-managed detector (per sampled TLB miss) ---
  /// Sampled miss is dropped before the search runs (entry lost).
  double drop_sample_rate = 0.0;
  /// Sampled page is corrupted before the search (wrong entry searched).
  double corrupt_sample_rate = 0.0;
  /// The detection instruction itself fails: the search is charged but
  /// yields nothing.
  double detect_fail_rate = 0.0;

  // --- hardware-managed detector (per due sweep) ---
  /// Sweep is silently skipped (one detection epoch lost).
  double sweep_skip_rate = 0.0;
  /// Sweep fails; the detector retries with exponential backoff.
  double sweep_fail_rate = 0.0;
  /// Each sweep is delayed by a uniform draw from [0, sweep_delay_max].
  Cycles sweep_delay_max = 0;

  // --- communication matrix (applied when a detected matrix is consumed) ---
  /// Fraction of upper-triangle cells whose values are swapped pairwise
  /// (inverts hot edges into cold ones and vice versa).
  double matrix_flip_rate = 0.0;
  /// Fraction of upper-triangle cells zeroed.
  double matrix_zero_rate = 0.0;

  /// True when any fault can actually fire. Disabled plans cost nothing:
  /// consumers skip injector construction entirely.
  bool enabled() const {
    return drop_sample_rate > 0.0 || corrupt_sample_rate > 0.0 ||
           detect_fail_rate > 0.0 || sweep_skip_rate > 0.0 ||
           sweep_fail_rate > 0.0 || sweep_delay_max > 0 ||
           matrix_flip_rate > 0.0 || matrix_zero_rate > 0.0;
  }

  /// Throws std::invalid_argument when a rate is outside [0, 1] or not
  /// finite (matching the validate() style of the sim configs).
  void validate() const;
};

/// Tally of every fault actually injected; published to the metrics
/// registry as fault.injected_* counters by the consuming phase.
struct FaultCounters {
  std::uint64_t dropped_samples = 0;
  std::uint64_t corrupted_samples = 0;
  std::uint64_t failed_searches = 0;
  std::uint64_t skipped_sweeps = 0;
  std::uint64_t failed_sweeps = 0;
  std::uint64_t delayed_sweeps = 0;
  std::uint64_t flipped_cells = 0;
  std::uint64_t zeroed_cells = 0;

  std::uint64_t total() const {
    return dropped_samples + corrupted_samples + failed_searches +
           skipped_sweeps + failed_sweeps + delayed_sweeps + flipped_cells +
           zeroed_cells;
  }
};

/// One consumer's deterministic fault stream. Distinct consumers (SM
/// detector, HM detector, online mapper, pipeline matrix stage) construct
/// their own injector with a distinct salt so their decisions are
/// independent of each other and of evaluation order.
class FaultInjector {
 public:
  // Well-known consumer salts (any distinct constants work; fixed here so
  // runs are reproducible across binaries).
  static constexpr std::uint64_t kSmSalt = 0x5343'414e'534d'0001ull;
  static constexpr std::uint64_t kHmSalt = 0x5343'414e'484d'0002ull;
  static constexpr std::uint64_t kMatrixSalt = 0x5343'414e'4d58'0003ull;
  static constexpr std::uint64_t kOnlineSalt = 0x5343'414e'4f4e'0004ull;

  FaultInjector(const FaultPlan& plan, std::uint64_t salt);

  const FaultPlan& plan() const { return plan_; }
  const FaultCounters& counters() const { return counters_; }

  // Per-opportunity decisions; each consumes one PRNG draw and bumps the
  // matching counter when it fires.
  bool drop_sample();
  bool corrupt_sample();
  bool fail_search();
  bool skip_sweep();
  bool fail_sweep();
  /// Per-matrix-cell decisions (consumed by CommMatrix::apply_faults).
  bool flip_cell();
  bool zero_cell();

  /// Uniform draw from [0, plan.sweep_delay_max]; 0 when delays are off.
  Cycles draw_sweep_delay();

  /// Deterministic perturbation of a sampled page (corrupt_sample fired):
  /// flips low-order bits so the search looks up a nearby-but-wrong page.
  PageNum perturb_page(PageNum page);

  /// Uniform index draw in [0, n) for matrix-cell selection.
  std::size_t draw_index(std::size_t n);

 private:
  /// splitmix64 step; uniform in [0, 2^64).
  std::uint64_t next_u64();
  /// True with probability `rate` (one draw, even for rate 0 — callers gate
  /// on the plan before constructing an injector, not per call).
  bool chance(double rate);

  FaultPlan plan_;
  std::uint64_t state_;
  FaultCounters counters_;
};

}  // namespace tlbmap

#include "core/report.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <iterator>
#include <memory>
#include <sstream>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/selfprof.hpp"

namespace tlbmap {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::str() const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << row[i];
      if (i + 1 < row.size()) {
        out << std::string(widths[i] - row[i].size() + 2, ' ');
      }
    }
    out << '\n';
    if (r == 0) {
      std::size_t total = 0;
      for (const std::size_t w : widths) total += w + 2;
      out << std::string(total > 2 ? total - 2 : total, '-') << '\n';
    }
  }
  return out.str();
}

CsvTable::CsvTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void CsvTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}
}  // namespace

std::string CsvTable::str() const {
  std::ostringstream out;
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  }
  return out.str();
}

std::string fmt_double(double v, int precision) {
  std::ostringstream out;
  out.setf(std::ios::fixed);
  out.precision(precision);
  out << v;
  return out.str();
}

std::string fmt_percent(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

std::string fmt_count(double v) {
  const bool negative = v < 0;
  std::ostringstream raw;
  raw.setf(std::ios::fixed);
  raw.precision(0);
  raw << std::abs(v);
  const std::string digits = raw.str();
  std::string grouped;
  int since_sep = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (since_sep == 3) {
      grouped.push_back(',');
      since_sep = 0;
    }
    grouped.push_back(*it);
    ++since_sep;
  }
  if (negative) grouped.push_back('-');
  std::reverse(grouped.begin(), grouped.end());
  return grouped;
}

std::string phase_profile(const obs::Tracer& tracer) {
  // Wall time is attributed by *self* time (span duration minus nested
  // spans on the same thread), so a phase enclosing sub-phases does not
  // count its children's time twice and the totals column sums to real
  // elapsed wall time. The per-name distribution uses an obs::Histogram for
  // the same log2-bucket p50/p95/p99 approximation the JSONL export
  // reports, so the terminal profile and the exported metrics agree.
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_us = 0;
    obs::Histogram self_us;
  };
  std::vector<std::pair<std::string, std::unique_ptr<Agg>>> entries;
  for (const obs::SpanSelf& span : obs::span_self_times(tracer)) {
    auto it =
        std::find_if(entries.begin(), entries.end(),
                     [&](const auto& e) { return e.first == span.name; });
    if (it == entries.end()) {
      entries.push_back({span.name, std::make_unique<Agg>()});
      it = std::prev(entries.end());
    }
    ++it->second->count;
    it->second->total_us += span.self_us;
    it->second->self_us.observe(static_cast<double>(span.self_us));
  }
  std::sort(entries.begin(), entries.end(), [](const auto& a, const auto& b) {
    return a.second->total_us > b.second->total_us;
  });
  TextTable table(
      {"span", "count", "self ms", "mean ms", "p50 ms", "p95 ms", "p99 ms"});
  for (const auto& [name, agg] : entries) {
    const double total_ms = static_cast<double>(agg->total_us) / 1000.0;
    table.add_row({name, fmt_count(static_cast<double>(agg->count)),
                   fmt_double(total_ms),
                   fmt_double(total_ms / static_cast<double>(agg->count)),
                   fmt_double(agg->self_us.quantile(0.50) / 1000.0),
                   fmt_double(agg->self_us.quantile(0.95) / 1000.0),
                   fmt_double(agg->self_us.quantile(0.99) / 1000.0)});
  }
  return table.str();
}

std::string bar(double fraction, int width) {
  const double clamped = std::clamp(fraction, 0.0, 2.0);
  const int filled =
      static_cast<int>(std::lround(clamped / 2.0 * static_cast<double>(width)));
  std::string out(static_cast<std::size_t>(filled), '#');
  out.resize(static_cast<std::size_t>(width), ' ');
  return out;
}

}  // namespace tlbmap

#include "core/worker_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace tlbmap {

struct WorkerPool::Job {
  std::size_t count = 0;
  const std::function<void(std::size_t)>* fn = nullptr;
  const std::function<bool()>* stop = nullptr;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> settled{0};
  std::once_flag error_once;
  std::exception_ptr error;
};

WorkerPool::WorkerPool(int workers) : workers_(std::max(1, workers)) {
  threads_.reserve(static_cast<std::size_t>(workers_ - 1));
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::work_on(Job& job) {
  for (;;) {
    const std::size_t idx = job.next.fetch_add(1, std::memory_order_relaxed);
    if (idx >= job.count) return;
    // Cooperative cancellation: once `stop` turns true the remaining
    // indices are claimed and settled without running, so the caller's
    // completion wait still terminates promptly.
    if (job.stop == nullptr || !(*job.stop)()) {
      try {
        (*job.fn)(idx);
      } catch (...) {
        std::call_once(job.error_once,
                       [&] { job.error = std::current_exception(); });
      }
    }
    if (job.settled.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.count) {
      std::lock_guard<std::mutex> lock(mutex_);
      done_.notify_all();
    }
  }
}

void WorkerPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [&] { return stopping_ || generation_ != seen; });
    if (stopping_) return;
    seen = generation_;
    // Keep a reference of our own: a slow thread may still be draining
    // this job after the caller has already published the next one.
    std::shared_ptr<Job> job = job_;
    lock.unlock();
    if (job != nullptr) work_on(*job);
    lock.lock();
  }
}

void WorkerPool::run(std::size_t count,
                     const std::function<void(std::size_t)>& fn,
                     const std::function<bool()>& stop) {
  if (count == 0) return;
  const std::function<bool()>* stop_ptr = stop ? &stop : nullptr;
  if (workers_ == 1 || count == 1) {
    for (std::size_t idx = 0; idx < count; ++idx) {
      if (stop_ptr != nullptr && (*stop_ptr)()) break;
      fn(idx);
    }
    return;
  }
  auto job = std::make_shared<Job>();
  job->count = count;
  job->fn = &fn;
  job->stop = stop_ptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = job;
    ++generation_;
  }
  wake_.notify_all();
  work_on(*job);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [&] {
      return job->settled.load(std::memory_order_acquire) == job->count;
    });
    if (job_ == job) job_ = nullptr;
  }
  if (job->error) std::rethrow_exception(job->error);
}

}  // namespace tlbmap

#include "core/retry.hpp"

#include <cmath>
#include <limits>

namespace tlbmap {

namespace {

/// splitmix64 finaliser (same public-domain constants as core/fault.cpp):
/// one stateless mixing step, uniform over [0, 2^64).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// a * b saturating at the u64 ceiling.
std::uint64_t sat_mul(std::uint64_t a, std::uint64_t b) {
  if (a == 0 || b == 0) return 0;
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  if (a > kMax / b) return kMax;
  return a * b;
}

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  return a > kMax - b ? kMax : a + b;
}

}  // namespace

void RetryPolicy::validate() const {
  if (max_attempts < 0) {
    throw std::invalid_argument("RetryPolicy: max_attempts must be >= 0");
  }
  if (factor == 0) {
    throw std::invalid_argument("RetryPolicy: factor must be positive");
  }
  if (!std::isfinite(jitter) || jitter < 0.0 || jitter > 1.0) {
    throw std::invalid_argument("RetryPolicy: jitter must be in [0, 1]");
  }
}

std::uint64_t RetryPolicy::delay(int attempt) const {
  if (attempt < 1) attempt = 1;
  std::uint64_t d = base_delay > 0 ? base_delay : 1;
  for (int k = 1; k < attempt; ++k) d = sat_mul(d, factor);
  if (jitter > 0.0) {
    // Pure function of (seed, attempt): the draw is scaled into
    // [0, jitter * d] by mapping the 64-bit mix onto [0, 1].
    const double unit =
        static_cast<double>(mix64(seed ^ (0x5245'5452'5900ull +
                                          static_cast<std::uint64_t>(attempt)))
                            >> 11) *
        (1.0 / 9007199254740992.0);  // 2^-53
    d = sat_add(d, static_cast<std::uint64_t>(jitter * unit *
                                              static_cast<double>(d)));
  }
  return d;
}

}  // namespace tlbmap

#include "core/fault.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace tlbmap {

namespace {

void check_rate(double rate, const char* name) {
  if (!std::isfinite(rate) || rate < 0.0 || rate > 1.0) {
    throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                " must be in [0, 1]");
  }
}

}  // namespace

void FaultPlan::validate() const {
  check_rate(drop_sample_rate, "drop_sample_rate");
  check_rate(corrupt_sample_rate, "corrupt_sample_rate");
  check_rate(detect_fail_rate, "detect_fail_rate");
  check_rate(sweep_skip_rate, "sweep_skip_rate");
  check_rate(sweep_fail_rate, "sweep_fail_rate");
  check_rate(matrix_flip_rate, "matrix_flip_rate");
  check_rate(matrix_zero_rate, "matrix_zero_rate");
}

FaultInjector::FaultInjector(const FaultPlan& plan, std::uint64_t salt)
    : plan_(plan), state_(plan.seed ^ salt) {}

std::uint64_t FaultInjector::next_u64() {
  // splitmix64 (public-domain constants): statistically solid, two
  // multiplies per draw, and — unlike std::mt19937 — identical on every
  // platform, which the per-seed determinism contract depends on.
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool FaultInjector::chance(double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) {
    (void)next_u64();  // keep the stream in lockstep across rate changes
    return true;
  }
  // 53-bit mantissa draw; exact enough for fault rates.
  const double u =
      static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  return u < rate;
}

bool FaultInjector::drop_sample() {
  const bool fired = chance(plan_.drop_sample_rate);
  if (fired) ++counters_.dropped_samples;
  return fired;
}

bool FaultInjector::corrupt_sample() {
  const bool fired = chance(plan_.corrupt_sample_rate);
  if (fired) ++counters_.corrupted_samples;
  return fired;
}

bool FaultInjector::fail_search() {
  const bool fired = chance(plan_.detect_fail_rate);
  if (fired) ++counters_.failed_searches;
  return fired;
}

bool FaultInjector::skip_sweep() {
  const bool fired = chance(plan_.sweep_skip_rate);
  if (fired) ++counters_.skipped_sweeps;
  return fired;
}

bool FaultInjector::fail_sweep() {
  const bool fired = chance(plan_.sweep_fail_rate);
  if (fired) ++counters_.failed_sweeps;
  return fired;
}

bool FaultInjector::flip_cell() {
  const bool fired = chance(plan_.matrix_flip_rate);
  if (fired) ++counters_.flipped_cells;
  return fired;
}

bool FaultInjector::zero_cell() {
  const bool fired = chance(plan_.matrix_zero_rate);
  if (fired) ++counters_.zeroed_cells;
  return fired;
}

Cycles FaultInjector::draw_sweep_delay() {
  if (plan_.sweep_delay_max == 0) return 0;
  const Cycles delay = next_u64() % (plan_.sweep_delay_max + 1);
  if (delay > 0) ++counters_.delayed_sweeps;
  return delay;
}

PageNum FaultInjector::perturb_page(PageNum page) {
  // Flip 1-4 low bits: the corrupted search lands on a wrong page that is
  // plausibly nearby (a real bit-flip in the mirrored TLB entry).
  const std::uint64_t flips = (next_u64() & 0xF) | 0x1;
  return page ^ static_cast<PageNum>(flips);
}

std::size_t FaultInjector::draw_index(std::size_t n) {
  if (n == 0) return 0;
  return static_cast<std::size_t>(next_u64() % n);
}

}  // namespace tlbmap

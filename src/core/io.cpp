#include "core/io.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tlbmap {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

Error io_error(const std::string& what, const std::filesystem::path& path,
               int err) {
  std::ostringstream msg;
  msg << what << " " << path.string() << ": " << std::strerror(err);
  return Error{ErrorCode::kIoError, msg.str()};
}

/// write(2) the whole buffer, resuming across EINTR and short writes.
bool write_all(int fd, const char* data, std::size_t size) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

/// Best-effort fsync of a directory so a just-renamed entry is durable.
/// Failures are ignored: some filesystems refuse directory fsync, and the
/// rename itself already succeeded.
void sync_directory(const std::filesystem::path& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

std::uint32_t crc32(std::string_view data) {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<std::uint8_t>(ch)) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Expected<void> atomic_write_file(const std::filesystem::path& path,
                                 std::string_view data) {
  // Unique per process *and* per call: concurrent writers to the same
  // target never share a temp file, so the loser of the rename race still
  // installed a complete artifact.
  static std::atomic<std::uint64_t> counter{0};
  std::ostringstream suffix;
  suffix << ".tmp." << ::getpid() << "."
         << counter.fetch_add(1, std::memory_order_relaxed);
  std::filesystem::path tmp = path;
  tmp += suffix.str();

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) return io_error("atomic_write_file: cannot open", tmp, errno);
  auto fail = [&](const char* what) {
    const int err = errno;
    ::close(fd);
    ::unlink(tmp.c_str());
    return io_error(what, tmp, err);
  };
  if (!write_all(fd, data.data(), data.size())) {
    return fail("atomic_write_file: write failed for");
  }
  // The data must be on disk *before* the rename publishes it; otherwise a
  // crash could leave the final name pointing at unflushed garbage.
  if (::fsync(fd) != 0) return fail("atomic_write_file: fsync failed for");
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return io_error("atomic_write_file: close failed for", tmp, err);
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    ::unlink(tmp.c_str());
    return io_error("atomic_write_file: rename failed for", path, err);
  }
  sync_directory(path.has_parent_path() ? path.parent_path()
                                        : std::filesystem::path("."));
  return {};
}

Expected<std::string> read_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return io_error("read_file: cannot open", path, errno);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (in.bad()) return io_error("read_file: read failed for", path, errno);
  return buf.str();
}

}  // namespace tlbmap

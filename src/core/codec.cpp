#include "core/codec.hpp"

namespace tlbmap {

void append_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xffu));
  }
}

std::uint32_t load_u32(std::string_view bytes, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

std::uint64_t load_u64(std::string_view bytes, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[at + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  return v;
}

}  // namespace tlbmap

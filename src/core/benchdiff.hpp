// Perf-regression tracking: compare two google-benchmark JSON outputs and
// decide, with noise-aware thresholds, whether the current run regressed
// against a baseline.
//
// The input schema is the one `--benchmark_out_format=json` writes:
//
//   {"context": {...},
//    "benchmarks": [{"name": "BM_Foo/8", "run_type": "iteration",
//                    "iterations": 100, "real_time": 123.4,
//                    "cpu_time": 120.1, "time_unit": "ns"}, ...]}
//
// Repetitions emit several "iteration" entries per name; aggregates
// ("_mean"/"_median"/...) carry run_type "aggregate". The comparison takes
// the MIN over a name's iteration entries — the min is the least noisy
// location statistic for benchmark latencies (one-sided noise: a run can
// only be slowed down by interference, never sped up) — and flags a
// regression only when the current min exceeds the baseline min by BOTH a
// relative threshold and an absolute floor, so sub-noise jitter on
// nanosecond-scale benchmarks never fails a build.
//
// The JSON parser below is deliberately minimal (objects, arrays, strings,
// numbers, bools, null — no \uXXXX surrogate pairs) and dependency-free;
// it exists so the benchdiff CLI needs nothing the simulator does not.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/expected.hpp"

namespace tlbmap {

/// One entry of a google-benchmark JSON "benchmarks" array.
struct BenchRecord {
  std::string name;
  std::string run_type;  ///< "iteration" or "aggregate"
  double real_time = 0.0;
  double cpu_time = 0.0;
  std::string time_unit = "ns";  ///< ns | us | ms | s
  std::uint64_t iterations = 0;

  /// The chosen time field converted to nanoseconds.
  double time_ns(bool use_cpu_time) const;
};

/// Parses a google-benchmark JSON file's "benchmarks" array. Structured
/// error (kMalformedTrace-style taxonomy reused: kInvalidArgument) on any
/// syntax or schema violation — a truncated bench file must fail loudly,
/// not diff as "no benchmarks, no regressions".
Expected<std::vector<BenchRecord>> parse_benchmark_json(
    const std::string& text);

struct BenchDiffConfig {
  /// Relative slowdown that counts as a regression: current min must exceed
  /// baseline min by more than this fraction...
  double rel_threshold = 0.10;
  /// ...AND by more than this many nanoseconds (guards ns-scale benchmarks
  /// whose relative jitter is huge while the absolute cost is irrelevant).
  double abs_floor_ns = 50.0;
  /// Compare cpu_time (default — steadier under CI load) or real_time.
  bool use_cpu_time = true;
  /// A baseline benchmark missing from the current run is a failure by
  /// default (a silently deleted benchmark is how regressions hide);
  /// set to tolerate intentional removals.
  bool allow_missing = false;
};

/// One compared benchmark name.
struct BenchComparison {
  std::string name;
  double base_min_ns = 0.0;
  double cur_min_ns = 0.0;
  int base_samples = 0;  ///< iteration entries folded into base_min_ns
  int cur_samples = 0;
  /// cur/base - 1 (positive = slower).
  double delta() const {
    return base_min_ns > 0.0 ? cur_min_ns / base_min_ns - 1.0 : 0.0;
  }
  bool regressed = false;
  bool improved = false;  ///< symmetric threshold, for reporting only
};

struct BenchDiffReport {
  std::vector<BenchComparison> rows;
  /// Baseline names absent from the current run.
  std::vector<std::string> missing;
  /// Current names absent from the baseline (informational only).
  std::vector<std::string> added;
  bool has_regression = false;

  /// Human-readable table + verdict line.
  std::string render() const;
};

/// Groups each side's records by name (min over "iteration" entries;
/// aggregate-only files fall back to the min over aggregates) and compares.
BenchDiffReport compare_benchmarks(const std::vector<BenchRecord>& baseline,
                                   const std::vector<BenchRecord>& current,
                                   const BenchDiffConfig& config);

/// Full CLI: `tlbmap_benchdiff BASE.json CURRENT.json [flags]`. Returns the
/// process exit code — 0 clean, 1 regression (or missing benchmark unless
/// --allow-missing), 2 usage/parse error. Writing the report to `out`
/// instead of stdout keeps it unit-testable.
int run_benchdiff(int argc, const char* const* argv, std::ostream& out,
                  std::ostream& err);

}  // namespace tlbmap

#include "core/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "core/checkpoint.hpp"
#include "core/io.hpp"
#include "core/shutdown.hpp"
#include "core/worker_pool.hpp"
#include "npb/synthetic.hpp"
#include "obs/selfprof.hpp"

namespace tlbmap {

namespace {

/// Bump when workload definitions or counter semantics change, so stale
/// cache entries are never reused across library revisions.
constexpr int kSchemaVersion = 12;

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

void write_stats(std::ostream& out, const MachineStats& s) {
  out << s.accesses << ' ' << s.reads << ' ' << s.writes << ' ' << s.tlb_hits
      << ' ' << s.tlb_misses << ' ' << s.l1_hits << ' ' << s.l1_misses << ' '
      << s.l2_accesses << ' ' << s.l2_hits << ' ' << s.l2_misses << ' '
      << s.invalidations << ' ' << s.snoop_transactions << ' '
      << s.writebacks << ' ' << s.memory_fetches << ' '
      << s.memory_fetches_local << ' ' << s.memory_fetches_remote << ' '
      << s.intra_socket_messages << ' ' << s.inter_socket_messages << ' '
      << s.execution_cycles << ' ' << s.detection_overhead_cycles << ' '
      << s.detector_searches << '\n';
}

bool read_stats(std::istream& in, MachineStats& s) {
  in >> s.accesses >> s.reads >> s.writes >> s.tlb_hits >> s.tlb_misses >>
      s.l1_hits >> s.l1_misses >> s.l2_accesses >> s.l2_hits >> s.l2_misses >>
      s.invalidations >> s.snoop_transactions >> s.writebacks >>
      s.memory_fetches >> s.memory_fetches_local >> s.memory_fetches_remote >>
      s.intra_socket_messages >>
      s.inter_socket_messages >> s.execution_cycles >>
      s.detection_overhead_cycles >> s.detector_searches;
  return static_cast<bool>(in);
}

void write_matrix(std::ostream& out, const CommMatrix& m) {
  out << m.size() << '\n';
  for (ThreadId a = 0; a < m.size(); ++a) {
    for (ThreadId b = 0; b < m.size(); ++b) {
      out << m.at(a, b) << (b + 1 == m.size() ? '\n' : ' ');
    }
  }
}

bool read_matrix(std::istream& in, CommMatrix& m) {
  int n = 0;
  in >> n;
  if (!in || n <= 0 || n > 4096) return false;
  m = CommMatrix(n);
  for (ThreadId a = 0; a < n; ++a) {
    for (ThreadId b = 0; b < n; ++b) {
      std::uint64_t v = 0;
      in >> v;
      if (!in) return false;
      if (a < b) m.add(a, b, v);
    }
  }
  return true;
}

void write_detection(std::ostream& out, const DetectionResult& d) {
  out << d.mechanism << ' ' << d.searches << '\n';
  write_stats(out, d.stats);
  write_matrix(out, d.matrix);
}

bool read_detection(std::istream& in, DetectionResult& d) {
  in >> d.mechanism >> d.searches;
  if (!in) return false;
  return read_stats(in, d.stats) && read_matrix(in, d.matrix);
}

void write_mapping(std::ostream& out, const Mapping& m) {
  out << m.size();
  for (const CoreId c : m) out << ' ' << c;
  out << '\n';
}

bool read_mapping(std::istream& in, Mapping& m) {
  std::size_t n = 0;
  in >> n;
  if (!in || n > 4096) return false;
  m.resize(n);
  for (CoreId& c : m) in >> c;
  return static_cast<bool>(in);
}

void write_runs(std::ostream& out, const MappingRuns& r) {
  out << r.label << ' ' << r.runs.size() << '\n';
  for (const MachineStats& s : r.runs) write_stats(out, s);
}

bool read_runs(std::istream& in, MappingRuns& r) {
  std::size_t n = 0;
  in >> r.label >> n;
  if (!in || n > 100000) return false;
  r.runs.resize(n);
  for (MachineStats& s : r.runs) {
    if (!read_stats(in, s)) return false;
  }
  return true;
}

std::filesystem::path cache_dir() {
  if (const char* dir = std::getenv("TLBMAP_CACHE_DIR")) {
    return dir;
  }
  return std::filesystem::temp_directory_path() / "tlbmap_cache";
}

bool cache_disabled() {
  const char* v = std::getenv("TLBMAP_NO_CACHE");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Everything that affects suite results, in one canonical string. Hashed
/// for both the cache file name and the checkpoint config fingerprint.
/// The crash-safety knobs (checkpoint_dir / checkpoint_every_events /
/// resume) are deliberately absent: they change durability, not results.
std::string suite_key_string(const SuiteConfig& c) {
  std::ostringstream key;
  key << "v" << kSchemaVersion << '|' << c.machine.num_sockets << ','
      << c.machine.cores_per_socket << ',' << c.machine.cores_per_l2 << ','
      << c.machine.page_size << ',' << c.machine.l1.size_bytes << ','
      << c.machine.l1.ways << ',' << c.machine.l2.size_bytes << ','
      << c.machine.l2.ways << ',' << c.machine.tlb.entries << ','
      << c.machine.tlb.ways << ',' << c.machine.tlb.miss_penalty << ','
      << c.machine.interconnect.snoop_intra_socket << ','
      << c.machine.interconnect.snoop_inter_socket << ','
      << c.machine.interconnect.invalidate_intra_socket << ','
      << c.machine.interconnect.invalidate_inter_socket << ','
      << c.machine.interconnect.memory_latency << ','
      << c.machine.interconnect.memory_remote_extra << ','
      << c.machine.interconnect.snoop_hop_extra << ','
      << c.machine.interconnect.invalidate_hop_extra << ','
      << c.machine.socket_mesh_cols << ','
      << (c.machine.numa ? 1 : 0) << ','
      << static_cast<int>(c.machine.numa_policy) << '|'
      << static_cast<int>(c.mapping.strategy) << ','
      << c.mapping.auto_threshold << '|'
      // Fault plan + watchdog: a faulty suite must never collide with a
      // faultless one (or with a differently seeded/shaped fault plan).
      << c.machine.fault.seed << ',' << c.machine.fault.drop_sample_rate
      << ',' << c.machine.fault.corrupt_sample_rate << ','
      << c.machine.fault.detect_fail_rate << ','
      << c.machine.fault.sweep_skip_rate << ','
      << c.machine.fault.sweep_fail_rate << ','
      << c.machine.fault.sweep_delay_max << ','
      << c.machine.fault.matrix_flip_rate << ','
      << c.machine.fault.matrix_zero_rate << ','
      << c.machine.watchdog_max_events << '|'
      << c.workload.num_threads << ',' << c.workload.size_scale << ','
      << c.workload.iter_scale << ',' << c.workload.gap_jitter << '|'
      << c.repetitions << '|' << c.sm.sample_threshold << ','
      << c.sm.search_cost << '|' << c.hm.interval << ',' << c.hm.search_cost
      << '|' << c.oracle.window << ',' << c.oracle.granularity_shift << '|' << c.base_seed << '|'
      << c.detect_iter_scale << '|';
  for (const std::string& app : c.apps) key << app << ',';
  return key.str();
}

}  // namespace

double metric_value(const MachineStats& stats, Metric metric) {
  switch (metric) {
    case Metric::kTimeSeconds:
      return cycles_to_seconds(stats.execution_cycles);
    case Metric::kInvalidations:
      return static_cast<double>(stats.invalidations);
    case Metric::kSnoops:
      return static_cast<double>(stats.snoop_transactions);
    case Metric::kL2Misses:
      return static_cast<double>(stats.l2_misses);
    case Metric::kInvalidationsPerSec:
      return per_second(stats.invalidations, stats.execution_cycles);
    case Metric::kSnoopsPerSec:
      return per_second(stats.snoop_transactions, stats.execution_cycles);
    case Metric::kL2MissesPerSec:
      return per_second(stats.l2_misses, stats.execution_cycles);
  }
  return 0.0;
}

Summary summarize_runs(const MappingRuns& runs, Metric metric) {
  std::vector<double> values;
  values.reserve(runs.runs.size());
  for (const MachineStats& s : runs.runs) {
    values.push_back(metric_value(s, metric));
  }
  return summarize(values);
}

double AppExperiment::normalized(const MappingRuns& runs,
                                 Metric metric) const {
  const double base = summarize_runs(os_runs, metric).mean;
  if (base == 0.0) return 1.0;
  return summarize_runs(runs, metric).mean / base;
}

std::string suite_cache_key(const SuiteConfig& c) {
  std::ostringstream name;
  name << "suite_" << std::hex << fnv1a(suite_key_string(c)) << ".txt";
  return name.str();
}

std::uint64_t suite_config_hash(const SuiteConfig& c) {
  return fnv1a(suite_key_string(c));
}

std::string serialize_suite(const SuiteResult& result) {
  std::ostringstream out;
  out << "tlbmap-suite " << kSchemaVersion << '\n';
  out << result.apps.size() << '\n';
  for (const AppExperiment& app : result.apps) {
    out << app.app << '\n';
    write_detection(out, app.sm_detection);
    write_detection(out, app.hm_detection);
    write_detection(out, app.oracle_detection);
    write_mapping(out, app.sm_mapping);
    write_mapping(out, app.hm_mapping);
    write_runs(out, app.os_runs);
    write_runs(out, app.sm_runs);
    write_runs(out, app.hm_runs);
  }
  return out.str();
}

std::optional<SuiteResult> deserialize_suite(const std::string& text,
                                             const SuiteConfig& config) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "tlbmap-suite" || version != kSchemaVersion) {
    return std::nullopt;
  }
  std::size_t count = 0;
  in >> count;
  if (!in || count > 1000) return std::nullopt;
  SuiteResult result;
  result.config = config;
  result.apps.resize(count);
  for (AppExperiment& app : result.apps) {
    in >> app.app;
    if (!read_detection(in, app.sm_detection) ||
        !read_detection(in, app.hm_detection) ||
        !read_detection(in, app.oracle_detection) ||
        !read_mapping(in, app.sm_mapping) ||
        !read_mapping(in, app.hm_mapping) || !read_runs(in, app.os_runs) ||
        !read_runs(in, app.sm_runs) || !read_runs(in, app.hm_runs)) {
      return std::nullopt;
    }
  }
  return result;
}

SuiteResult run_suite(const SuiteConfig& config, std::ostream* progress,
                      obs::ObsContext* obs) {
  // Self-profiling (DESIGN.md Sec. 13): stamp wall + rusage now so every
  // exit path — cached, interrupted, degraded, clean — can account for
  // itself in the run manifest.
  const obs::SelfProfiler profiler;
  std::vector<std::pair<std::string, std::uint64_t>> phase_wall;
  auto write_manifest = [&](const SuiteResult& res, bool cache_hit) {
    if (config.manifest_out.empty()) return;
    obs::RunManifest m;
    m.command = "suite";
    m.git_describe = obs::build_git_describe();
    m.created_utc = obs::utc_timestamp();
    m.seed = config.base_seed;
    m.config_hash = suite_config_hash(config);
    m.config_summary = suite_key_string(config);
    m.wall_seconds = profiler.wall_seconds();
    m.usage = profiler.snapshot();
    m.degraded = res.degraded();
    m.interrupted = res.interrupted;
    m.phases = phase_wall;
    if (obs::Tracer* tracer = obs::tracer_at(obs, obs::ObsLevel::kPhases)) {
      m.collapsed_wall = obs::collapsed_stacks(*tracer);
    }
    // Deterministic twin of the wall-clock stacks: simulated cycles per
    // suite task, straight from the result slots.
    std::map<std::string, std::uint64_t> sim_cycles;
    for (const AppExperiment& app : res.apps) {
      sim_cycles["suite;detect;" + app.app + ";SM"] +=
          app.sm_detection.stats.execution_cycles;
      sim_cycles["suite;detect;" + app.app + ";HM"] +=
          app.hm_detection.stats.execution_cycles;
      sim_cycles["suite;detect;" + app.app + ";oracle"] +=
          app.oracle_detection.stats.execution_cycles;
      for (const MappingRuns* runs :
           {&app.os_runs, &app.sm_runs, &app.hm_runs}) {
        std::uint64_t total = 0;
        for (const MachineStats& s : runs->runs) total += s.execution_cycles;
        sim_cycles["suite;evaluate;" + app.app + ";" + runs->label] += total;
      }
    }
    std::ostringstream collapsed;
    for (const auto& [path, weight] : sim_cycles) {
      collapsed << path << ' ' << weight << '\n';
    }
    m.collapsed_sim_cycles = collapsed.str();
    m.extra.emplace_back("cache_hit", cache_hit ? "true" : "false");
    m.extra.emplace_back("repetitions", std::to_string(config.repetitions));
    std::ostringstream apps;
    for (std::size_t i = 0; i < config.apps.size(); ++i) {
      if (i != 0) apps << ',';
      apps << config.apps[i];
    }
    m.extra.emplace_back("apps", apps.str());
    const Expected<void> written =
        atomic_write_file(config.manifest_out, m.to_json());
    if (progress != nullptr) {
      if (written) {
        *progress << "[suite] manifest written to " << config.manifest_out
                  << "\n";
      } else {
        *progress << "[suite] manifest write failed: "
                  << written.error().to_string() << "\n";
      }
    }
  };
  // Suite-level phase-boundary series samples (the pipelines inside the
  // workers take their own; these mark the three global fan-outs).
  auto sample_suite_phase = [&](const char* name, std::uint64_t sim_events) {
    if (config.metrics_interval_events == 0) return;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
      metrics->sample_series(sim_events, std::string("phase:") + name);
    }
  };

  const bool caching = config.use_cache && !cache_disabled();
  const std::filesystem::path cache_file =
      cache_dir() / suite_cache_key(config);
  if (caching && std::filesystem::exists(cache_file)) {
    obs::TraceSpan span(obs::tracer_at(obs, obs::ObsLevel::kPhases),
                       "suite.cache_load", "suite");
    std::ifstream in(cache_file);
    std::stringstream buf;
    buf << in.rdbuf();
    if (auto cached = deserialize_suite(buf.str(), config)) {
      if (progress != nullptr) {
        *progress << "[suite] loaded cached results from " << cache_file
                  << "\n";
      }
      phase_wall.emplace_back("suite.cache_load", span.elapsed_us());
      write_manifest(*cached, true);
      return *cached;
    }
  }

  SuiteResult result;
  result.config = config;
  const int cores = config.machine.num_cores();
  const int worker_budget =
      config.parallel_workers > 0
          ? config.parallel_workers
          : std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
  // One persistent pool for the whole suite: both fan-out phases (detect,
  // evaluate) and, when intra-run sharding is enabled, the epoch-parallel
  // machine inside each evaluation run all draw from these same threads
  // instead of spawning fresh ones per phase or per run.
  WorkerPool pool(worker_budget);

  // Crash safety (DESIGN.md Sec. 12). Tasks are the checkpoint granularity:
  // each is independent with a preassigned seed and result slot, so a
  // resumed suite replays exactly the missing tasks and lands on a
  // bit-identical SuiteResult. The in-memory SuiteCheckpoint mirrors every
  // completed task; `ckpt_mutex` guards it (workers commit concurrently)
  // and saves go through atomic_write_file, so the on-disk file is always
  // a complete, CRC-sealed snapshot.
  const bool checkpointing = !config.checkpoint_dir.empty();
  const std::filesystem::path ckpt_file =
      std::filesystem::path(config.checkpoint_dir) / "suite.ckpt";
  const std::uint64_t config_hash = suite_config_hash(config);
  const std::uint64_t expected_detect_tasks = config.apps.size() * 3;
  const std::uint64_t expected_eval_tasks =
      config.apps.size() * 3 *
      static_cast<std::uint64_t>(std::max(0, config.repetitions));
  SuiteCheckpoint ckpt;
  ckpt.config_hash = config_hash;
  ckpt.detect_tasks = expected_detect_tasks;
  ckpt.eval_tasks = expected_eval_tasks;
  std::mutex ckpt_mutex;
  std::uint64_t events_since_save = 0;  // guarded by ckpt_mutex

  auto save_ckpt_locked = [&] {  // call with ckpt_mutex held
    const Expected<void> saved = save_checkpoint(ckpt_file, ckpt);
    if (!saved) {
      if (progress != nullptr) {
        *progress << "[suite] checkpoint write failed: "
                  << saved.error().to_string() << "\n";
      }
      return;
    }
    events_since_save = 0;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
      metrics->counter("checkpoint.writes").add(1);
    }
  };
  // Commit one completed task's simulated-access count and save when the
  // write budget is spent (0 = every task) or a shutdown is pending.
  auto commit_progress_locked = [&](std::uint64_t task_events) {
    events_since_save += task_events;
    if (config.checkpoint_every_events == 0 ||
        events_since_save >= config.checkpoint_every_events ||
        shutdown_requested()) {
      save_ckpt_locked();
    }
  };

  if (checkpointing) {
    std::error_code ec;
    std::filesystem::create_directories(config.checkpoint_dir, ec);
    if (config.resume) {
      auto reject = [&](const Error& err) {
        if (progress != nullptr) {
          *progress << "[suite] checkpoint rejected: " << err.to_string()
                    << "; starting fresh\n";
        }
        if (obs::MetricsRegistry* metrics =
                obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
          metrics->counter("checkpoint.rejected").add(1);
        }
      };
      if (!std::filesystem::exists(ckpt_file)) {
        if (progress != nullptr) {
          *progress << "[suite] no checkpoint at " << ckpt_file
                    << "; starting fresh\n";
        }
      } else {
        Expected<SuiteCheckpoint> loaded =
            load_checkpoint(ckpt_file, config_hash);
        if (!loaded) {
          reject(loaded.error());
        } else {
          // Shape re-validation behind the hash (defence in depth): a
          // snapshot whose task structure disagrees with this config can
          // only be a colliding corruption — treat it as a mismatch.
          bool shape_ok = loaded->detect_tasks == expected_detect_tasks &&
                          loaded->eval_tasks == expected_eval_tasks;
          for (const auto& [idx, unused] : loaded->detect_done) {
            shape_ok = shape_ok && idx < expected_detect_tasks;
          }
          for (const auto& [idx, unused] : loaded->eval_done) {
            shape_ok = shape_ok && idx < expected_eval_tasks;
          }
          if (loaded->map_done) {
            shape_ok = shape_ok &&
                       loaded->sm_mappings.size() == config.apps.size() &&
                       loaded->hm_mappings.size() == config.apps.size();
          }
          if (!shape_ok) {
            reject(Error{ErrorCode::kCheckpointMismatch,
                         "checkpoint task shape does not match this config"});
          } else {
            ckpt = std::move(*loaded);
            if (progress != nullptr) {
              *progress << "[suite] resuming from " << ckpt_file << ": "
                        << ckpt.detect_done.size() << "/"
                        << expected_detect_tasks << " detect, "
                        << ckpt.eval_done.size() << "/" << expected_eval_tasks
                        << " eval tasks done\n";
            }
          }
        }
      }
    }
  }

  // The suite runs as three global phases — detect, map, evaluate — instead
  // of app-by-app: every simulation run in a phase is independent (its own
  // Machine, its own preassigned result slot), so one shared worker pool
  // drains all apps' runs at once and the tail of a short app overlaps the
  // head of a long one. Task order, seeds and slots are fixed up front, so
  // results are bit-identical for any worker count.
  //
  // Resilience (DESIGN.md Sec. 11): no exception escapes a worker. A task
  // that throws is retried up to config.task_retries times, then folded
  // into a structured kWorkerFailure with its result slot left at its
  // default; the caller collects the failures per phase.
  auto run_tasks = [&](const char* phase, std::size_t count,
                       const std::function<void(std::size_t)>& body) {
    const int retries = std::max(0, config.task_retries);
    std::vector<std::string> errors(count);
    auto guarded = [&](std::size_t idx) {
      for (int attempt = 0;; ++attempt) {
        try {
          body(idx);
          errors[idx].clear();
          return;
        } catch (const InterruptedError&) {
          // A shutdown request is not a failure: the task simply did not
          // run. No retry, no kWorkerFailure, no degraded mode — on resume
          // the checkpoint replays it.
          errors[idx].clear();
          return;
        } catch (const std::exception& e) {
          errors[idx] = e.what();
        } catch (...) {
          errors[idx] = "unknown exception";
        }
        if (attempt >= retries) return;
        if (obs::Tracer* tracer = obs::tracer_at(obs, obs::ObsLevel::kFull)) {
          std::ostringstream args;
          args << "\"phase\":\"" << phase << "\",\"task\":" << idx
               << ",\"attempt\":" << (attempt + 1);
          tracer->record_instant("suite.task_retry", "suite", args.str());
        }
        if (obs::MetricsRegistry* metrics =
                obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
          metrics->counter("suite.task_retries").add(1);
        }
      }
    };
    // Per-task wall time (retries included): wall-clock tagged so the
    // series stream stays deterministic. Histogram::observe is thread-safe.
    obs::Histogram* task_wall = nullptr;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
      task_wall =
          &metrics->wallclock_histogram("suite.task_wall_us", {{"phase", phase}});
    }
    auto timed = [&](std::size_t idx) {
      if (task_wall == nullptr) {
        guarded(idx);
        return;
      }
      const auto t0 = std::chrono::steady_clock::now();
      guarded(idx);
      task_wall->observe(static_cast<double>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    };
    const int workers =
        std::max(1, std::min<int>(worker_budget, static_cast<int>(count)));
    if (workers == 1) {
      for (std::size_t idx = 0; idx < count; ++idx) {
        if (shutdown_requested()) break;
        timed(idx);
      }
    } else {
      // The shared pool claims indices from an atomic cursor and stops
      // claiming new tasks once a shutdown is pending; tasks already in
      // flight stop themselves at the Machine's next poll.
      pool.run(count, timed, [] { return shutdown_requested(); });
    }
    for (std::size_t idx = 0; idx < count; ++idx) {
      if (errors[idx].empty()) continue;
      std::ostringstream msg;
      msg << phase << " task " << idx << " failed after " << (retries + 1)
          << " attempt(s): " << errors[idx];
      result.failures.push_back(Error{ErrorCode::kWorkerFailure, msg.str()});
      if (progress != nullptr) {
        *progress << "[suite] DEGRADED: " << msg.str() << "\n";
      }
    }
  };

  // Interrupted epilogue: persist what completed, flag the result, and
  // leave the checkpoint file in place for --resume. Never caches.
  auto finalize_interrupted = [&] {
    result.interrupted = true;
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
      metrics->counter("suite.interrupted").add(1);
    }
    if (checkpointing) {
      std::lock_guard<std::mutex> lock(ckpt_mutex);
      save_ckpt_locked();
      if (progress != nullptr) {
        *progress << "[suite] interrupted; progress saved to " << ckpt_file
                  << " (rerun with --resume to continue)\n";
      }
    } else if (progress != nullptr) {
      *progress << "[suite] interrupted; no checkpoint dir configured, "
                   "partial progress was discarded\n";
    }
    write_manifest(result, false);
  };

  const std::size_t num_apps = config.apps.size();
  result.apps.resize(num_apps);
  std::vector<std::unique_ptr<Workload>> eval_workloads(num_apps);
  std::vector<std::unique_ptr<Workload>> detect_workloads(num_apps);
  for (std::size_t i = 0; i < num_apps; ++i) {
    eval_workloads[i] = make_npb_workload(config.apps[i], config.workload);
    // Detection observes a longer trace (the paper detects over the whole
    // execution of the real benchmark).
    WorkloadParams detect_params = config.workload;
    detect_params.iter_scale *= config.detect_iter_scale;
    detect_workloads[i] = make_npb_workload(config.apps[i], detect_params);
    result.apps[i].app = eval_workloads[i]->name();
  }

  // Phase 1: all detection runs (3 mechanisms per app) in one pool. Each
  // accumulates its own CommMatrix (the HM sweep can additionally shard its
  // accumulation via hm.sweep_workers).
  {
    obs::TraceSpan span(obs::tracer_at(obs, obs::ObsLevel::kPhases),
                        "suite.detect", "suite");
    if (progress != nullptr) {
      *progress << "[suite] detect: " << num_apps << " apps x 3 mechanisms\n";
    }
    struct DetectTask {
      DetectionResult* slot;
      std::size_t app;
      Pipeline::Mechanism mechanism;
    };
    std::vector<DetectTask> tasks;
    tasks.reserve(num_apps * 3);
    for (std::size_t i = 0; i < num_apps; ++i) {
      tasks.push_back({&result.apps[i].sm_detection, i,
                       Pipeline::Mechanism::kSoftwareManaged});
      tasks.push_back({&result.apps[i].hm_detection, i,
                       Pipeline::Mechanism::kHardwareManaged});
      tasks.push_back(
          {&result.apps[i].oracle_detection, i, Pipeline::Mechanism::kOracle});
    }
    run_tasks("detect", tasks.size(), [&](std::size_t idx) {
      const DetectTask& task = tasks[idx];
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        const auto done = ckpt.detect_done.find(idx);
        if (done != ckpt.detect_done.end()) {
          *task.slot = done->second;
          if (obs::MetricsRegistry* metrics =
                  obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
            metrics->counter("checkpoint.resumed_tasks").add(1);
          }
          return;
        }
      }
      Pipeline detect_pipe(config.machine);
      detect_pipe.sm_config() = config.sm;
      detect_pipe.hm_config() = config.hm;
      detect_pipe.oracle_config() = config.oracle;
      detect_pipe.set_observability(obs);
      detect_pipe.set_metrics_interval_events(config.metrics_interval_events);
      *task.slot = detect_pipe.detect(*detect_workloads[task.app],
                                      task.mechanism, config.base_seed);
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        ckpt.detect_done.emplace(idx, *task.slot);
        commit_progress_locked(task.slot->stats.accesses);
      }
    });
    phase_wall.emplace_back("suite.detect", span.elapsed_us());
  }
  std::uint64_t suite_sim_events = 0;
  for (const AppExperiment& app : result.apps) {
    suite_sim_events += app.sm_detection.stats.accesses +
                        app.hm_detection.stats.accesses +
                        app.oracle_detection.stats.accesses;
  }
  sample_suite_phase("suite.detect", suite_sim_events);
  if (shutdown_requested()) {
    finalize_interrupted();
    return result;
  }

  // Phase 2: mapping is a cheap serial step between the two fan-outs. A
  // mapping that cannot be derived (matcher failure on a corrupted matrix)
  // degrades to round-robin rather than aborting the suite.
  {
    obs::TraceSpan span(obs::tracer_at(obs, obs::ObsLevel::kPhases),
                        "suite.map", "suite");
    Pipeline map_pipe(config.machine);
    map_pipe.mapping_config() = config.mapping;
    map_pipe.set_observability(obs);
    map_pipe.set_metrics_interval_events(config.metrics_interval_events);
    auto map_or_fallback = [&](const AppExperiment& app,
                               const DetectionResult& detection) -> Mapping {
      try {
        return map_pipe.map(detection.matrix);
      } catch (const std::exception& e) {
        std::ostringstream msg;
        msg << "map task for " << app.app << " (" << detection.mechanism
            << ") failed: " << e.what() << "; using round-robin fallback";
        result.failures.push_back(
            Error{ErrorCode::kMappingFailure, msg.str()});
        if (progress != nullptr) {
          *progress << "[suite] DEGRADED: " << msg.str() << "\n";
        }
        return round_robin_mapping(map_pipe.topology(),
                                   detection.matrix.size());
      }
    };
    if (checkpointing && ckpt.map_done) {
      // Mapping is deterministic given the detections, so replaying it
      // would land on the same placements; restoring keeps the checkpoint
      // the single source of truth (and skips any fallback re-reporting).
      for (std::size_t i = 0; i < num_apps; ++i) {
        result.apps[i].sm_mapping = ckpt.sm_mappings[i];
        result.apps[i].hm_mapping = ckpt.hm_mappings[i];
      }
    } else {
      for (AppExperiment& app : result.apps) {
        app.sm_mapping = map_or_fallback(app, app.sm_detection);
        app.hm_mapping = map_or_fallback(app, app.hm_detection);
      }
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        ckpt.map_done = true;
        for (const AppExperiment& app : result.apps) {
          ckpt.sm_mappings.push_back(app.sm_mapping);
          ckpt.hm_mappings.push_back(app.hm_mapping);
        }
        save_ckpt_locked();
      }
    }
    phase_wall.emplace_back("suite.map", span.elapsed_us());
  }
  sample_suite_phase("suite.map", suite_sim_events);
  if (shutdown_requested()) {
    finalize_interrupted();
    return result;
  }

  // Phase 3: all evaluation runs (3 mappings x repetitions per app) in one
  // pool.
  {
    obs::TraceSpan span(obs::tracer_at(obs, obs::ObsLevel::kPhases),
                        "suite.evaluate", "suite");
    if (progress != nullptr) {
      *progress << "[suite] evaluate: " << num_apps << " apps x 3 mappings x "
                << config.repetitions << " repetitions\n";
    }
    const int reps = config.repetitions;
    struct EvalTask {
      MachineStats* slot;
      std::size_t app;
      Mapping mapping;
      std::uint64_t run_seed;
    };
    std::vector<EvalTask> tasks;
    tasks.reserve(num_apps * static_cast<std::size_t>(reps) * 3);
    for (std::size_t i = 0; i < num_apps; ++i) {
      AppExperiment& app = result.apps[i];
      app.os_runs.label = "OS";
      app.sm_runs.label = "SM";
      app.hm_runs.label = "HM";
      app.os_runs.runs.resize(static_cast<std::size_t>(reps));
      app.sm_runs.runs.resize(static_cast<std::size_t>(reps));
      app.hm_runs.runs.resize(static_cast<std::size_t>(reps));
      for (int rep = 0; rep < reps; ++rep) {
        const std::uint64_t run_seed =
            config.base_seed + 1000 + static_cast<std::uint64_t>(rep);
        // The OS baseline lands on fresh random cores every run.
        const Mapping os_mapping = random_mapping(
            eval_workloads[i]->num_threads(), cores,
            config.base_seed * 7919 + i * 131 +
                static_cast<std::uint64_t>(rep));
        tasks.push_back({&app.os_runs.runs[static_cast<std::size_t>(rep)], i,
                         os_mapping, run_seed});
        tasks.push_back({&app.sm_runs.runs[static_cast<std::size_t>(rep)], i,
                         app.sm_mapping, run_seed});
        tasks.push_back({&app.hm_runs.runs[static_cast<std::size_t>(rep)], i,
                         app.hm_mapping, run_seed});
      }
    }
    run_tasks("evaluate", tasks.size(), [&](std::size_t idx) {
      const EvalTask& task = tasks[idx];
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        const auto done = ckpt.eval_done.find(idx);
        if (done != ckpt.eval_done.end()) {
          *task.slot = done->second;
          if (obs::MetricsRegistry* metrics =
                  obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
            metrics->counter("checkpoint.resumed_tasks").add(1);
          }
          return;
        }
      }
      Pipeline worker_pipe(config.machine);
      // The tracer and registry are thread-safe; evaluation spans from
      // parallel workers interleave in the ring like any other events.
      worker_pipe.set_observability(obs);
      worker_pipe.set_metrics_interval_events(config.metrics_interval_events);
      *task.slot = worker_pipe.evaluate(*eval_workloads[task.app],
                                        task.mapping, task.run_seed);
      if (checkpointing) {
        std::lock_guard<std::mutex> lock(ckpt_mutex);
        ckpt.eval_done.emplace(idx, *task.slot);
        commit_progress_locked(task.slot->accesses);
      }
    });
    phase_wall.emplace_back("suite.evaluate", span.elapsed_us());
  }
  for (const AppExperiment& app : result.apps) {
    for (const MappingRuns* runs :
         {&app.os_runs, &app.sm_runs, &app.hm_runs}) {
      for (const MachineStats& s : runs->runs) suite_sim_events += s.accesses;
    }
  }
  sample_suite_phase("suite.evaluate", suite_sim_events);
  if (shutdown_requested()) {
    finalize_interrupted();
    return result;
  }

  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs, obs::ObsLevel::kPhases)) {
    metrics->counter("suite.worker_failures")
        .add(static_cast<std::uint64_t>(result.failures.size()));
    metrics->gauge("pipeline.degraded_mode")
        .set(result.degraded() ? 1.0 : 0.0);
  }
  if (result.degraded()) {
    // Degraded results (zeroed slots, fallback mappings) must never poison
    // the cache: the next run should recompute, not inherit the damage.
    // The checkpoint stays: it holds only the tasks that *did* complete,
    // so a --resume rerun replays just the failed ones.
    if (progress != nullptr) {
      *progress << "[suite] " << result.failures.size()
                << " task(s) failed; result is degraded and will not be"
                   " cached\n";
    }
    write_manifest(result, false);
    return result;
  }
  // Clean completion: the checkpoint has served its purpose — retire it so
  // a later run in the same directory starts from scratch.
  if (checkpointing) {
    std::error_code ec;
    std::filesystem::remove(ckpt_file, ec);
  }
  if (caching) {
    std::error_code ec;
    std::filesystem::create_directories(cache_dir(), ec);
    if (!ec) {
      // atomic_write_file: a crash (or a concurrent reader) mid-cache-write
      // must never leave a torn cache entry for the next suite to trip on.
      const Expected<void> written =
          atomic_write_file(cache_file, serialize_suite(result));
      if (written) {
        if (progress != nullptr) {
          *progress << "[suite] cached results at " << cache_file << "\n";
        }
      } else if (progress != nullptr) {
        *progress << "[suite] cache write failed: "
                  << written.error().to_string() << "\n";
      }
    }
  }
  write_manifest(result, false);
  return result;
}

CommMatrix pair_truth_matrix(int num_threads, int shift) {
  CommMatrix m(num_threads);
  const int n = num_threads;
  for (int t = 0; t < n; ++t) {
    // Under shift s, partner pairs are (s, s+1), (s+2, s+3), ... mod n;
    // add each pair's unit edge once (from its even-rank member).
    const int r = ((t - shift) % n + n) % n;
    if (r % 2 == 0 && t != (t + 1) % n) {
      m.add(static_cast<ThreadId>(t), static_cast<ThreadId>((t + 1) % n), 1);
    }
  }
  return m;
}

ChurnScenarioResult run_churn_scenario(const ChurnScenarioConfig& config) {
  if (config.shifts.empty()) {
    throw std::invalid_argument("churn scenario: shifts must be non-empty");
  }
  SyntheticSpec spec;
  spec.pattern = SyntheticSpec::Pattern::kScheduled;
  spec.num_threads = config.num_threads;
  spec.shift_schedule = config.shifts;
  spec.churn_phase_iters = 1;
  spec.shared_accesses = config.shared_accesses;
  spec.private_accesses = config.private_accesses;
  const auto workload = make_synthetic(spec);

  Pipeline pipe(config.machine);
  const Mapping initial = config.initial.empty()
                              ? identity_mapping(config.num_threads)
                              : config.initial;
  const CommMatrix tail =
      pair_truth_matrix(config.num_threads, config.shifts.back());

  auto run_arm = [&](const OnlineMapperConfig& arm) {
    ChurnArmResult r;
    r.run = pipe.evaluate_dynamic(*workload, initial, arm, config.seed);
    r.final_cost = mapping_cost(tail, r.run.final_mapping, pipe.topology());
    return r;
  };

  ChurnScenarioResult result;
  OnlineMapperConfig never = config.online;
  never.remap_every_barriers = 0;  // 0 = remapping disabled
  result.never_remap = run_arm(never);
  OnlineMapperConfig noroll = config.online;
  noroll.rollback = false;
  result.no_rollback = run_arm(noroll);
  result.canary = run_arm(config.online);
  return result;
}

}  // namespace tlbmap

// Cooperative, signal-safe shutdown for long experiments (DESIGN.md
// Sec. 12): SIGINT/SIGTERM set a process-wide flag; the Machine event loop
// and the run_suite worker pool poll it and unwind with a structured
// kInterrupted instead of dying mid-artifact. The suite then commits a
// final checkpoint, so `--resume` continues from the last completed task.
//
// The flag is a lock-free atomic written from the handler (the only
// async-signal-safe operation performed there). A second signal while the
// flag is already set restores the default disposition and re-raises, so a
// wedged shutdown can still be killed with a second Ctrl-C.
#pragma once

#include <stdexcept>

namespace tlbmap {

/// True once a shutdown has been requested (by a signal or by
/// request_shutdown()). Poll sites use relaxed loads — cheap enough for an
/// event loop.
bool shutdown_requested();

/// Sets the flag programmatically — what the signal handlers call, exposed
/// so tests and embedders can trigger a clean shutdown without a signal.
void request_shutdown();

/// Clears the flag (tests; or an embedder that handled one interruption and
/// wants to run again).
void reset_shutdown();

/// Installs SIGINT and SIGTERM handlers that call request_shutdown().
/// Idempotent. Only front ends opt in (the library never hijacks signal
/// dispositions behind an embedder's back).
void install_shutdown_handlers();

/// Thrown by the historical throwing API (Machine::run) when a run is
/// interrupted by the shutdown flag; distinct from std::runtime_error so
/// the suite worker pool can tell "stop asked" from "task failed" — an
/// interrupted task is simply incomplete, never degraded.
class InterruptedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace tlbmap

// The library's top-level API: detect -> map -> evaluate.
//
//   Pipeline pipe(MachineConfig::harpertown());
//   auto workload = make_npb_workload("SP");
//   auto det = pipe.detect(*workload, Pipeline::Mechanism::kSoftwareManaged);
//   Mapping mapping = pipe.map(det.matrix);
//   MachineStats run = pipe.evaluate(*workload, mapping, /*seed=*/0);
//
// Detection executes the workload on the simulated machine with the
// detector attached (threads pinned in identity order, as in the paper's
// Simics phase); evaluation re-runs it under a candidate mapping and
// reports the coherence/timing counters of Figures 6-9.
#pragma once

#include <cstdint>
#include <memory>

#include "core/dynamic.hpp"
#include "detect/comm_matrix.hpp"
#include "detect/hm_detector.hpp"
#include "detect/oracle_detector.hpp"
#include "detect/sm_detector.hpp"
#include "mapping/hierarchical.hpp"
#include "mapping/mapping.hpp"
#include "mapping/strategy.hpp"
#include "npb/workload.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct DetectionResult {
  CommMatrix matrix;
  MachineStats stats;            ///< counters of the detection run
  std::uint64_t searches = 0;    ///< detector search invocations
  std::string mechanism;         ///< "SM" / "HM" / "oracle"

  DetectionResult() : matrix(1) {}
};

class Pipeline {
 public:
  enum class Mechanism {
    kSoftwareManaged,  ///< paper Sec. IV-A
    kHardwareManaged,  ///< paper Sec. IV-B
    kOracle,           ///< full-trace ground truth (related work)
  };

  explicit Pipeline(const MachineConfig& config);

  /// Runs `workload` once with the selected detector attached and returns
  /// the detected communication matrix plus run statistics.
  DetectionResult detect(const Workload& workload, Mechanism mechanism,
                         std::uint64_t seed = 1);

  // Detector knobs (defaults are the paper's parameters).
  SmDetectorConfig& sm_config() { return sm_config_; }
  HmDetectorConfig& hm_config() { return hm_config_; }
  OracleDetectorConfig& oracle_config() { return oracle_config_; }

  /// Mapping algorithm selection (default kAuto: Edmonds at small thread
  /// counts, recursive multisection at manycore scale or on topologies the
  /// matching mapper cannot tile).
  MappingConfig& mapping_config() { return mapping_config_; }
  const MappingConfig& mapping_config() const { return mapping_config_; }

  /// Thread-to-core mapping from a communication matrix, via the strategy
  /// mapping_config() selects.
  Mapping map(const CommMatrix& matrix) const;

  /// Runs `workload` under `mapping` with no detector and returns counters.
  MachineStats evaluate(const Workload& workload, const Mapping& mapping,
                        std::uint64_t seed);

  /// Result of a dynamically mapped run (detection + migration online).
  struct DynamicRunResult {
    MachineStats stats;
    int migrations = 0;          ///< placements actually changed
    int remap_decisions = 0;     ///< matcher invocations
    int degraded_decisions = 0;  ///< decisions fallen back on degenerate input
    int rollbacks = 0;           ///< canary windows reverted (DESIGN.md Sec. 17)
    int canary_commits = 0;      ///< canary windows that kept their migration
    int backoff_skips = 0;       ///< remap decisions suppressed by backoff
    std::uint64_t phase_epochs = 0;  ///< phase-change epochs detected
    Mapping final_mapping;
  };

  /// Runs `workload` with the OnlineMapper attached: the SM mechanism
  /// detects while the application runs, and threads migrate at barriers
  /// whenever the matcher finds a better placement (paper Sec. VII future
  /// work). Starts from `initial` (e.g. identity or a random placement).
  DynamicRunResult evaluate_dynamic(const Workload& workload,
                                    const Mapping& initial,
                                    const OnlineMapperConfig& config,
                                    std::uint64_t seed);

  const MachineConfig& config() const { return config_; }
  const Topology& topology() const { return topology_; }

  /// Attaches an observability context (null detaches, the default). Every
  /// phase then records a span ("pipeline.detect" / "pipeline.map" /
  /// "pipeline.evaluate" / "pipeline.dynamic"), publishes phase wall-clock
  /// and simulated-throughput metrics, and snapshots the detected
  /// communication matrix. The context must outlive the pipeline's calls.
  void set_observability(obs::ObsContext* obs) { obs_ = obs; }
  obs::ObsContext* observability() const { return obs_; }

  /// Intra-run parallelism (DESIGN.md Sec. 15): worker threads for the
  /// sharded epoch engine, forwarded to Machine::RunConfig by evaluate().
  /// Detection and dynamic runs carry an observer and always use the
  /// serial per-event loop, whatever this is set to. 0 (default) = serial.
  void set_machine_workers(int workers) { machine_workers_ = workers; }
  int machine_workers() const { return machine_workers_; }

  /// Epoch budget for the sharded engine (events each shard may issue per
  /// epoch before the cross-domain reduction). Only meaningful when
  /// machine_workers() > 0.
  void set_epoch_events(std::uint64_t n) { epoch_events_ = n; }
  std::uint64_t epoch_events() const { return epoch_events_; }

  /// Epoch-bucketed telemetry (DESIGN.md Sec. 13): forwarded to
  /// Machine::RunConfig as the interval between "interval" series samples,
  /// and when nonzero every phase boundary also captures a "phase:<name>"
  /// sample *after* the phase's counters publish — so the final sample of a
  /// run always equals its end-of-run totals. 0 (default) disables the
  /// series stream entirely; exports are unchanged.
  void set_metrics_interval_events(std::uint64_t n) {
    metrics_interval_events_ = n;
  }
  std::uint64_t metrics_interval_events() const {
    return metrics_interval_events_;
  }

 private:
  /// Phase bookkeeping shared by detect/map/evaluate/evaluate_dynamic:
  /// duration histogram + events/sec gauge keyed by phase name (wall-clock
  /// tagged), plus the phase-boundary series sample when enabled.
  void record_phase(const char* phase, std::uint64_t wall_us,
                    std::uint64_t sim_events) const;

  MachineConfig config_;
  Topology topology_;
  SmDetectorConfig sm_config_{};
  HmDetectorConfig hm_config_{};
  OracleDetectorConfig oracle_config_{};
  MappingConfig mapping_config_{};
  obs::ObsContext* obs_ = nullptr;
  std::uint64_t metrics_interval_events_ = 0;
  int machine_workers_ = 0;
  std::uint64_t epoch_events_ = 2048;
};

}  // namespace tlbmap

#include "core/pipeline.hpp"

#include <stdexcept>

namespace tlbmap {

Pipeline::Pipeline(const MachineConfig& config)
    : config_(config), topology_(config) {
  config_.validate();
}

namespace {

std::vector<std::unique_ptr<ThreadStream>> make_streams(
    const Workload& workload, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> streams;
  streams.reserve(static_cast<std::size_t>(workload.num_threads()));
  for (ThreadId t = 0; t < workload.num_threads(); ++t) {
    streams.push_back(workload.stream(t, seed));
  }
  return streams;
}

}  // namespace

DetectionResult Pipeline::detect(const Workload& workload,
                                 Mechanism mechanism, std::uint64_t seed) {
  if (workload.num_threads() > topology_.num_cores()) {
    throw std::invalid_argument("Pipeline::detect: more threads than cores");
  }
  Machine machine(config_);
  std::unique_ptr<Detector> detector;
  switch (mechanism) {
    case Mechanism::kSoftwareManaged:
      detector = std::make_unique<SmDetector>(
          machine, workload.num_threads(), sm_config_);
      break;
    case Mechanism::kHardwareManaged:
      detector = std::make_unique<HmDetector>(
          machine, workload.num_threads(), hm_config_);
      break;
    case Mechanism::kOracle:
      detector = std::make_unique<OracleDetector>(workload.num_threads(),
                                                  oracle_config_);
      break;
  }

  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload.num_threads());
  run.observer = detector.get();

  DetectionResult result;
  result.stats = machine.run(make_streams(workload, seed), run);
  result.matrix = detector->matrix();
  result.searches = detector->searches();
  result.mechanism = detector->name();
  return result;
}

Mapping Pipeline::map(const CommMatrix& matrix) const {
  HierarchicalMapper mapper(topology_);
  return mapper.map(matrix);
}

MachineStats Pipeline::evaluate(const Workload& workload,
                                const Mapping& mapping, std::uint64_t seed) {
  if (!is_valid_mapping(mapping, topology_.num_cores())) {
    throw std::invalid_argument("Pipeline::evaluate: invalid mapping");
  }
  Machine machine(config_);
  Machine::RunConfig run;
  run.thread_to_core = mapping;
  return machine.run(make_streams(workload, seed), run);
}

Pipeline::DynamicRunResult Pipeline::evaluate_dynamic(
    const Workload& workload, const Mapping& initial,
    const OnlineMapperConfig& config, std::uint64_t seed) {
  if (!is_valid_mapping(initial, topology_.num_cores())) {
    throw std::invalid_argument("Pipeline::evaluate_dynamic: invalid mapping");
  }
  Machine machine(config_);
  OnlineMapper online(machine, workload.num_threads(), initial, config);
  Machine::RunConfig run;
  run.thread_to_core = initial;
  run.observer = &online;
  run.migration = &online;
  DynamicRunResult result;
  result.stats = machine.run(make_streams(workload, seed), run);
  result.migrations = online.migrations();
  result.remap_decisions = online.remap_decisions();
  result.final_mapping = online.current_mapping();
  return result;
}

}  // namespace tlbmap

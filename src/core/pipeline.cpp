#include "core/pipeline.hpp"

#include <sstream>
#include <stdexcept>

namespace tlbmap {

Pipeline::Pipeline(const MachineConfig& config)
    : config_(config), topology_(config) {
  config_.validate();
}

namespace {

std::vector<std::unique_ptr<ThreadStream>> make_streams(
    const Workload& workload, std::uint64_t seed) {
  std::vector<std::unique_ptr<ThreadStream>> streams;
  streams.reserve(static_cast<std::size_t>(workload.num_threads()));
  for (ThreadId t = 0; t < workload.num_threads(); ++t) {
    streams.push_back(workload.stream(t, seed));
  }
  return streams;
}

/// Mirrors an injected-fault tally into the metrics registry. Published
/// only when faults actually ran, so faultless runs carry no fault series.
void publish_fault_counters(obs::MetricsRegistry* metrics,
                            const FaultCounters& counters) {
  if (metrics == nullptr) return;
  metrics->counter("fault.injected_dropped_samples")
      .add(counters.dropped_samples);
  metrics->counter("fault.injected_corrupted_samples")
      .add(counters.corrupted_samples);
  metrics->counter("fault.injected_failed_searches")
      .add(counters.failed_searches);
  metrics->counter("fault.injected_skipped_sweeps")
      .add(counters.skipped_sweeps);
  metrics->counter("fault.injected_failed_sweeps")
      .add(counters.failed_sweeps);
  metrics->counter("fault.injected_delayed_sweeps")
      .add(counters.delayed_sweeps);
  metrics->counter("fault.injected_flipped_cells")
      .add(counters.flipped_cells);
  metrics->counter("fault.injected_zeroed_cells").add(counters.zeroed_cells);
  metrics->gauge("pipeline.degraded_mode")
      .set(counters.total() > 0 ? 1.0 : 0.0);
}

}  // namespace

void Pipeline::record_phase(const char* phase, std::uint64_t wall_us,
                            std::uint64_t sim_events) const {
  obs::MetricsRegistry* metrics =
      obs::metrics_at(obs_, obs::ObsLevel::kPhases);
  if (metrics == nullptr) return;
  const obs::Labels labels = {{"phase", phase}};
  // Self-measurement values are wall-clock tagged so the series stream
  // below stays deterministic for a fixed seed.
  metrics->wallclock_histogram("pipeline.phase_wall_us", labels)
      .observe(static_cast<double>(wall_us));
  if (wall_us > 0 && sim_events > 0) {
    metrics->wallclock_gauge("pipeline.sim_events_per_sec", labels)
        .set(static_cast<double>(sim_events) * 1e6 /
             static_cast<double>(wall_us));
  }
  // Phase-boundary sample: taken after publish_stats, so the last sample of
  // a run reflects its final totals (asserted by tests/test_obs.cpp).
  if (metrics_interval_events_ != 0) {
    metrics->sample_series(sim_events, std::string("phase:") + phase);
  }
}

DetectionResult Pipeline::detect(const Workload& workload,
                                 Mechanism mechanism, std::uint64_t seed) {
  if (workload.num_threads() > topology_.num_cores()) {
    throw std::invalid_argument("Pipeline::detect: more threads than cores");
  }
  Machine machine(config_);
  std::unique_ptr<Detector> detector;
  switch (mechanism) {
    case Mechanism::kSoftwareManaged:
      detector = std::make_unique<SmDetector>(
          machine, workload.num_threads(), sm_config_);
      break;
    case Mechanism::kHardwareManaged:
      detector = std::make_unique<HmDetector>(
          machine, workload.num_threads(), hm_config_);
      break;
    case Mechanism::kOracle:
      detector = std::make_unique<OracleDetector>(workload.num_threads(),
                                                  oracle_config_);
      break;
  }
  detector->set_observability(obs_);

  Machine::RunConfig run;
  run.thread_to_core = identity_mapping(workload.num_threads());
  run.observer = detector.get();
  run.obs = obs_;
  run.metrics_interval_events = metrics_interval_events_;

  DetectionResult result;
  {
    obs::TraceSpan span(obs::tracer_at(obs_, obs::ObsLevel::kPhases),
                        "pipeline.detect", "phase");
    result.stats = machine.run(make_streams(workload, seed), run);
    result.matrix = detector->matrix();
    result.searches = detector->searches();
    result.mechanism = detector->name();
    if (config_.fault.enabled()) {
      FaultCounters injected;
      if (const FaultCounters* c = detector->fault_counters()) injected = *c;
      if (config_.fault.matrix_flip_rate > 0.0 ||
          config_.fault.matrix_zero_rate > 0.0) {
        // Corrupt the *consumed* matrix, not the detector's history: models
        // a faulty read-out of the kernel's accumulated counters.
        FaultInjector matrix_fault(config_.fault, FaultInjector::kMatrixSalt);
        result.matrix.apply_faults(matrix_fault);
        injected.flipped_cells += matrix_fault.counters().flipped_cells;
        injected.zeroed_cells += matrix_fault.counters().zeroed_cells;
      }
      publish_fault_counters(obs::metrics_at(obs_, obs::ObsLevel::kPhases),
                             injected);
    }
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
      std::ostringstream args;
      args << "\"app\":\"" << obs::json_escape(workload.name())
           << "\",\"mechanism\":\"" << result.mechanism
           << "\",\"searches\":" << result.searches;
      span.set_args(args.str());
      publish_stats(*metrics, result.stats,
                    {{"phase", "detect"}, {"mechanism", result.mechanism}});
      // End-of-detection heatmap snapshot, tagged with the search count so
      // kFull's periodic snapshots and this final one share an epoch axis.
      metrics->snapshot_matrix("comm_matrix." + result.mechanism,
                               result.searches, result.matrix.rows());
    }
    record_phase("detect", span.elapsed_us(), result.stats.accesses);
  }
  return result;
}

Mapping Pipeline::map(const CommMatrix& matrix) const {
  obs::TraceSpan span(obs::tracer_at(obs_, obs::ObsLevel::kPhases),
                      "pipeline.map", "phase");
  const MappingStrategy resolved =
      resolve_strategy(mapping_config_, matrix, topology_);
  Mapping mapping = map_threads(matrix, topology_, mapping_config_);
  if (obs_ != nullptr && obs_->phases()) {
    obs_->metrics
        .counter("pipeline.map_calls", {{"strategy", to_string(resolved)}})
        .add();
  }
  record_phase("map", span.elapsed_us(), 0);
  return mapping;
}

MachineStats Pipeline::evaluate(const Workload& workload,
                                const Mapping& mapping, std::uint64_t seed) {
  if (!is_valid_mapping(mapping, topology_.num_cores())) {
    throw std::invalid_argument("Pipeline::evaluate: invalid mapping");
  }
  Machine machine(config_);
  Machine::RunConfig run;
  run.thread_to_core = mapping;
  run.obs = obs_;
  run.metrics_interval_events = metrics_interval_events_;
  run.machine_workers = machine_workers_;
  run.epoch_events = epoch_events_;
  obs::TraceSpan span(obs::tracer_at(obs_, obs::ObsLevel::kPhases),
                      "pipeline.evaluate", "phase");
  const MachineStats stats = machine.run(make_streams(workload, seed), run);
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    std::ostringstream args;
    args << "\"app\":\"" << obs::json_escape(workload.name())
         << "\",\"sim_cycles\":" << stats.execution_cycles;
    span.set_args(args.str());
    publish_stats(*metrics, stats, {{"phase", "evaluate"}});
  }
  record_phase("evaluate", span.elapsed_us(), stats.accesses);
  return stats;
}

Pipeline::DynamicRunResult Pipeline::evaluate_dynamic(
    const Workload& workload, const Mapping& initial,
    const OnlineMapperConfig& config, std::uint64_t seed) {
  if (!is_valid_mapping(initial, topology_.num_cores())) {
    throw std::invalid_argument("Pipeline::evaluate_dynamic: invalid mapping");
  }
  Machine machine(config_);
  OnlineMapper online(machine, workload.num_threads(), initial, config);
  online.set_observability(obs_);
  Machine::RunConfig run;
  run.thread_to_core = initial;
  run.observer = &online;
  run.migration = &online;
  run.obs = obs_;
  run.metrics_interval_events = metrics_interval_events_;
  DynamicRunResult result;
  obs::TraceSpan span(obs::tracer_at(obs_, obs::ObsLevel::kPhases),
                      "pipeline.dynamic", "phase");
  result.stats = machine.run(make_streams(workload, seed), run);
  result.migrations = online.migrations();
  result.remap_decisions = online.remap_decisions();
  result.degraded_decisions = online.degraded_decisions();
  result.rollbacks = online.rollbacks();
  result.canary_commits = online.canary_commits();
  result.backoff_skips = online.backoff_skips();
  result.phase_epochs = online.phase_epochs();
  result.final_mapping = online.current_mapping();
  if (const FaultCounters* injected = online.fault_counters()) {
    publish_fault_counters(obs::metrics_at(obs_, obs::ObsLevel::kPhases),
                           *injected);
  }
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(obs_, obs::ObsLevel::kPhases)) {
    std::ostringstream args;
    args << "\"app\":\"" << obs::json_escape(workload.name())
         << "\",\"migrations\":" << result.migrations
         << ",\"remap_decisions\":" << result.remap_decisions;
    span.set_args(args.str());
    publish_stats(*metrics, result.stats, {{"phase", "dynamic"}});
    metrics->snapshot_matrix("comm_matrix.online",
                             static_cast<std::uint64_t>(result.remap_decisions),
                             online.matrix().rows());
  }
  record_phase("dynamic", span.elapsed_us(), result.stats.accesses);
  return result;
}

}  // namespace tlbmap

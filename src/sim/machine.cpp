#include "sim/machine.hpp"

#include <algorithm>
#include <string>
#include <functional>
#include <optional>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/shutdown.hpp"

namespace tlbmap {

Machine::Machine(const MachineConfig& config)
    : hierarchy_(config),
      thread_on_core_(static_cast<std::size_t>(config.num_cores()),
                      kNoThread) {}

namespace {

struct ThreadState {
  ThreadStream* stream = nullptr;
  Cycles clock = 0;
  bool at_barrier = false;
  bool done = false;

  bool runnable() const { return !done && !at_barrier; }
};

}  // namespace

MachineStats Machine::run(std::vector<std::unique_ptr<ThreadStream>> streams,
                          const RunConfig& config) {
  Expected<MachineStats> result = try_run(std::move(streams), config);
  if (!result) {
    const Error& err = result.error();
    if (err.code == ErrorCode::kInvalidArgument ||
        err.code == ErrorCode::kInvalidMapping) {
      throw std::invalid_argument(err.message);
    }
    // Distinct type so suite workers can tell "user asked us to stop" from
    // a genuine failure: an interrupted task is neither retried nor
    // recorded as degraded.
    if (err.code == ErrorCode::kInterrupted) {
      throw InterruptedError(err.message);
    }
    throw std::runtime_error(err.to_string());
  }
  return *result;
}

Expected<MachineStats> Machine::try_run(
    std::vector<std::unique_ptr<ThreadStream>> streams,
    const RunConfig& config) {
  const int num_threads = static_cast<int>(streams.size());
  if (config.thread_to_core.size() != streams.size()) {
    return Error{ErrorCode::kInvalidMapping,
                 "Machine::run: mapping size != thread count"};
  }
  std::fill(thread_on_core_.begin(), thread_on_core_.end(), kNoThread);
  for (ThreadId t = 0; t < num_threads; ++t) {
    const CoreId core = config.thread_to_core[static_cast<std::size_t>(t)];
    if (core < 0 || core >= topology().num_cores()) {
      return Error{ErrorCode::kInvalidMapping,
                   "Machine::run: core id out of range"};
    }
    if (thread_on_core_[static_cast<std::size_t>(core)] != kNoThread) {
      return Error{ErrorCode::kInvalidMapping,
                   "Machine::run: two threads on one core"};
    }
    thread_on_core_[static_cast<std::size_t>(core)] = t;
  }
  if (config.flush_first) hierarchy_.flush_caches();

  // Intra-run parallelism: hand the validated placement to the
  // epoch-parallel engine (parallel_machine.cpp). machine_workers == 0
  // keeps the serial reference loop below.
  if (config.machine_workers > 0) {
    return try_run_epoch(streams, config);
  }

  obs::TraceSpan run_span(obs::tracer_at(config.obs, obs::ObsLevel::kPhases),
                          "machine.run", "sim");

  MachineStats stats;
  const CoherenceDomain::DirectoryStats dir_before =
      hierarchy_.coherence().directory_stats();
  std::vector<ThreadState> threads(streams.size());
  // Per-thread detector cycles; the reported overhead is the critical-path
  // amount (max across threads), so overhead_fraction() stays a meaningful
  // share of execution time.
  std::vector<Cycles> overhead(streams.size(), 0);
  for (std::size_t t = 0; t < streams.size(); ++t) {
    threads[t].stream = streams[t].get();
  }
  int live = num_threads;
  // Working copy: a MigrationPolicy may replace it at barrier releases.
  std::vector<CoreId> placement = config.thread_to_core;
  int barrier_count = 0;

  // Lazy min-heap over (clock, thread id) for the scheduler, used at or
  // above the threshold. Entries go stale when a clock moves or a thread
  // blocks; they are validated against live state on pop, so duplicates are
  // harmless — the invariant is only that every runnable thread has at
  // least one entry carrying its current clock. Ordering by the (clock, id)
  // pair reproduces the linear scan's lowest-id tie-break.
  const bool use_heap = num_threads >= config.scheduler_heap_threshold;
  using HeapEntry = std::pair<Cycles, int>;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      ready;
  auto push_ready = [&](int t) {
    const ThreadState& ts = threads[static_cast<std::size_t>(t)];
    if (ts.runnable()) ready.emplace(ts.clock, t);
  };
  auto push_all_ready = [&] {
    if (!use_heap) return;
    for (int t = 0; t < num_threads; ++t) push_ready(t);
  };

  // Set when a non-recoverable failure happens inside a nested helper; the
  // event loop checks it after every step and unwinds with the error.
  std::optional<Error> fatal;

  auto apply_migration = [&](const std::vector<CoreId>& next) {
    if (next.empty()) return;
    // Validate before mutating thread_on_core_ so a rejected migration
    // leaves the current placement untouched (graceful mode keeps running).
    bool valid = next.size() == placement.size();
    if (valid) {
      std::vector<bool> used(static_cast<std::size_t>(topology().num_cores()),
                             false);
      for (const CoreId core : next) {
        if (core < 0 || core >= topology().num_cores() ||
            used[static_cast<std::size_t>(core)]) {
          valid = false;
          break;
        }
        used[static_cast<std::size_t>(core)] = true;
      }
    }
    if (!valid) {
      if (config.strict_migrations) {
        fatal = Error{ErrorCode::kInvalidMapping,
                      next.size() == placement.size()
                          ? "MigrationPolicy: invalid mapping"
                          : "MigrationPolicy: wrong mapping size"};
        return;
      }
      // Graceful degradation: reject the migration, keep the current
      // placement, record the event, and continue the run.
      if (obs::Tracer* tracer =
              obs::tracer_at(config.obs, obs::ObsLevel::kFull)) {
        tracer->record_instant("machine.migration_rejected", "sim", "");
      }
      if (obs::MetricsRegistry* metrics =
              obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
        metrics->counter("machine.rejected_migrations").add(1);
      }
      return;
    }
    std::fill(thread_on_core_.begin(), thread_on_core_.end(), kNoThread);
    int moved = 0;
    for (ThreadId t = 0; t < num_threads; ++t) {
      const CoreId core = next[static_cast<std::size_t>(t)];
      thread_on_core_[static_cast<std::size_t>(core)] = t;
      if (core != placement[static_cast<std::size_t>(t)] &&
          !threads[static_cast<std::size_t>(t)].done) {
        threads[static_cast<std::size_t>(t)].clock += config.migration_cost;
        ++moved;
      }
    }
    placement = next;
    if (moved > 0) {
      if (obs::Tracer* tracer =
              obs::tracer_at(config.obs, obs::ObsLevel::kFull)) {
        std::ostringstream args;
        args << "\"threads_moved\":" << moved;
        tracer->record_instant("machine.migrate", "sim", args.str());
      }
      if (obs::MetricsRegistry* metrics =
              obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
        metrics->counter("machine.thread_migrations")
            .add(static_cast<std::uint64_t>(moved));
      }
    }
  };

  auto release_barrier_if_ready = [&] {
    int waiting = 0;
    Cycles latest = 0;
    for (const ThreadState& ts : threads) {
      if (ts.done) continue;
      if (!ts.at_barrier) return;
      ++waiting;
      latest = std::max(latest, ts.clock);
    }
    if (waiting == 0) return;
    for (ThreadState& ts : threads) {
      if (ts.done) continue;
      ts.at_barrier = false;
      ts.clock = latest + config.barrier_latency;
    }
    ++barrier_count;
    if (obs::Tracer* tracer =
            obs::tracer_at(config.obs, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"barrier\":" << barrier_count << ",\"sim_cycles\":" << latest;
      tracer->record_instant("machine.barrier", "sim", args.str());
    }
    if (config.migration != nullptr) {
      apply_migration(config.migration->on_barrier(
          barrier_count, latest + config.barrier_latency, stats));
    }
    // Every released thread has a fresh clock; reseed the scheduler heap.
    push_all_ready();
  };

  // Watchdog: a finite, well-formed trace always reaches kEnd, but recorded
  // traces can be truncated/corrupted into loops and generators can
  // misbehave; the event budget turns a hang into a structured error.
  const std::uint64_t watchdog_budget = hierarchy_.config().watchdog_max_events;
  std::uint64_t events_issued = 0;
  // Countdown to the next shutdown poll. Deliberately not derived from
  // events_issued: a modulo test on the event counter silently skips the
  // first window whenever a resumed or re-entered loop starts at a
  // non-aligned count, leaving SIGTERM unseen for up to a full window.
  // Starting the countdown at 1 makes the very first iteration poll.
  std::uint32_t shutdown_poll_countdown = 1;

  // Interval telemetry (RunConfig::metrics_interval_events): resolve the
  // progress gauges once; only deterministic values feed the series stream.
  obs::MetricsRegistry* interval_metrics =
      config.metrics_interval_events != 0
          ? obs::metrics_at(config.obs, obs::ObsLevel::kPhases)
          : nullptr;
  obs::Gauge* events_gauge = nullptr;
  obs::Gauge* accesses_gauge = nullptr;
  obs::Gauge* sim_cycles_gauge = nullptr;
  if (interval_metrics != nullptr) {
    events_gauge = &interval_metrics->gauge("machine.events_issued");
    accesses_gauge = &interval_metrics->gauge("machine.accesses");
    sim_cycles_gauge = &interval_metrics->gauge("machine.sim_cycles");
  }
  auto publish_progress = [&](Cycles sim_now) {
    events_gauge->set(static_cast<double>(events_issued));
    accesses_gauge->set(static_cast<double>(stats.accesses));
    sim_cycles_gauge->set(static_cast<double>(sim_now));
  };

  push_all_ready();
  while (live > 0) {
    if (fatal) return *std::move(fatal);
    // Cooperative shutdown (DESIGN.md Sec. 12): poll the process-wide flag
    // every 4096 events — often enough that SIGINT lands within
    // microseconds of simulated work, cheap enough to vanish from the hot
    // path. The run stops between events, so the caller's checkpoint sees
    // only completed work.
    if (--shutdown_poll_countdown == 0) {
      shutdown_poll_countdown = 4096;
      if (shutdown_requested()) {
        return Error{ErrorCode::kInterrupted,
                     "Machine::run: stopped by shutdown request after " +
                         std::to_string(events_issued) + " events"};
      }
    }
    if (watchdog_budget != 0 && events_issued >= watchdog_budget) {
      std::ostringstream msg;
      msg << "Machine::run: watchdog tripped after " << events_issued
          << " events (budget " << watchdog_budget << ")";
      if (obs::MetricsRegistry* metrics =
              obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
        metrics->counter("machine.watchdog_trips").add(1);
      }
      return Error{ErrorCode::kWatchdogTimeout, msg.str()};
    }
    // Pick the runnable thread with the smallest clock (lowest id on ties).
    int next = -1;
    if (use_heap) {
      while (!ready.empty()) {
        const auto [clk, t] = ready.top();
        const ThreadState& ts = threads[static_cast<std::size_t>(t)];
        if (!ts.runnable() || ts.clock != clk) {
          ready.pop();  // stale: clock moved or thread blocked since push
          continue;
        }
        ready.pop();
        next = t;
        break;
      }
    } else {
      // Thread counts this small (paper: 8) scan faster than heap churn.
      for (int t = 0; t < num_threads; ++t) {
        const ThreadState& ts = threads[static_cast<std::size_t>(t)];
        if (!ts.runnable()) continue;
        if (next == -1 ||
            ts.clock < threads[static_cast<std::size_t>(next)].clock) {
          next = t;
        }
      }
    }
    if (next == -1) {
      // Everyone alive is at a barrier (can happen when the last runnable
      // thread finished); release and continue.
      release_barrier_if_ready();
      continue;
    }

    ThreadState& ts = threads[static_cast<std::size_t>(next)];
    const TraceEvent ev = ts.stream->next();
    ++events_issued;
    switch (ev.kind) {
      case TraceEvent::Kind::kAccess: {
        const CoreId core = placement[static_cast<std::size_t>(next)];
        ts.clock += ev.access.compute_gap;
        const auto info =
            hierarchy_.access(core, ev.access.addr, ev.access.type, stats);
        ts.clock += info.latency;
        if (config.observer != nullptr) {
          const Cycles local = config.observer->on_access(
              next, core, ev.access.addr, info.page, ev.access.type,
              info.tlb_miss, ts.clock);
          ts.clock += local;
          overhead[static_cast<std::size_t>(next)] += local;

          const Cycles global = config.observer->on_tick(ts.clock);
          if (global > 0) {
            // A kernel-wide sweep stalls every thread equally. A thread
            // parked at a barrier still advances its clock (so the release
            // time folds the stall into `latest` when that thread is the
            // laggard), but the stall is not charged to its overhead[]: the
            // wait absorbs it, and the release overwrite would erase the
            // clock charge anyway — counting it would let
            // detection_overhead_cycles exceed the sweep's actual
            // critical-path impact.
            for (std::size_t o = 0; o < threads.size(); ++o) {
              if (threads[o].done) continue;
              threads[o].clock += global;
              if (!threads[o].at_barrier) overhead[o] += global;
            }
            if (use_heap) {
              // Every runnable clock just moved; reseed (next is reseeded
              // after the switch like any other issuing thread).
              for (int t = 0; t < num_threads; ++t) {
                if (t != next) push_ready(t);
              }
            }
          }
        }
        break;
      }
      case TraceEvent::Kind::kBarrier:
        ts.at_barrier = true;
        release_barrier_if_ready();
        break;
      case TraceEvent::Kind::kEnd:
        ts.done = true;
        --live;
        release_barrier_if_ready();
        break;
    }
    if (use_heap) push_ready(next);
    if (interval_metrics != nullptr &&
        events_issued % config.metrics_interval_events == 0) {
      publish_progress(ts.clock);
      interval_metrics->sample_series(events_issued, "interval");
    }
  }
  if (fatal) return *std::move(fatal);

  Cycles finish = 0;
  for (const ThreadState& ts : threads) {
    finish = std::max(finish, ts.clock);
  }
  stats.execution_cycles = finish;
  for (const Cycles o : overhead) {
    stats.detection_overhead_cycles =
        std::max(stats.detection_overhead_cycles, o);
  }
  if (interval_metrics != nullptr) {
    // Leave the progress gauges at the end-of-run totals so the pipeline's
    // phase-boundary sample equals the final state of the run.
    publish_progress(finish);
  }
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
    // Simulator self-throughput: simulated accesses per wall-clock second.
    // Wall-clock tagged: excluded from the deterministic series stream.
    const std::uint64_t wall_us = run_span.elapsed_us();
    if (wall_us > 0) {
      metrics->wallclock_gauge("machine.sim_events_per_sec")
          .set(static_cast<double>(stats.accesses) * 1e6 /
               static_cast<double>(wall_us));
    }
    const CoherenceDomain& coherence = hierarchy_.coherence();
    // 1 only in explicit broadcast mode (--coherence-broadcast): the probe
    // traffic is still exact, but the engine pays Theta(num_l2) per miss.
    metrics->gauge("coherence.directory_disabled")
        .set(coherence.directory_enabled() ? 0.0 : 1.0);
    if (coherence.directory_enabled()) {
      const CoherenceDomain::DirectoryStats& dir = coherence.directory_stats();
      metrics->counter("coherence.directory_probes")
          .add(dir.probes - dir_before.probes);
      metrics->counter("coherence.directory_holder_hits")
          .add(dir.holder_hits - dir_before.holder_hits);
      metrics->counter("coherence.directory_holder_visits")
          .add(dir.holder_visits - dir_before.holder_visits);
      metrics->gauge("coherence.directory_lines")
          .set(static_cast<double>(coherence.directory_lines()));
    }
    std::ostringstream args;
    args << "\"accesses\":" << stats.accesses
         << ",\"sim_cycles\":" << stats.execution_cycles
         << ",\"barriers\":" << barrier_count;
    run_span.set_args(args.str());
  }
  return stats;
}

}  // namespace tlbmap

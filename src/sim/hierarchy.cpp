#include "sim/hierarchy.hpp"

namespace tlbmap {

namespace {
int shift_for(std::size_t power_of_two) {
  int s = 0;
  for (std::size_t v = power_of_two; v > 1; v >>= 1) ++s;
  return s;
}
}  // namespace

MemoryHierarchy::MemoryHierarchy(const MachineConfig& config)
    : config_(config),
      topology_(config),
      interconnect_(topology_, config.interconnect),
      page_table_(config.page_shift()),
      coherence_(config, topology_, interconnect_),
      line_shift_(shift_for(config.l1.line_size)) {
  config_.validate();
  tlbs_.reserve(static_cast<std::size_t>(topology_.num_cores()));
  l1s_.reserve(static_cast<std::size_t>(topology_.num_cores()));
  for (int c = 0; c < topology_.num_cores(); ++c) {
    tlbs_.emplace_back(config.tlb);
    l1s_.emplace_back(config.l1);
  }
  memos_.resize(static_cast<std::size_t>(topology_.num_cores()));
  // Keep L1s inclusive: when an L2 loses a line, shoot it down in the L1s of
  // the cores attached to that L2. Cores of an L2 are a contiguous id range.
  coherence_.set_line_drop_callback([this](L2Id l2, LineAddr line) {
    const CoreId first = l2 * topology_.cores_per_l2();
    for (CoreId core = first; core < first + topology_.cores_per_l2();
         ++core) {
      l1s_[static_cast<std::size_t>(core)].invalidate(line);
    }
  });
}

MemoryHierarchy::AccessInfo MemoryHierarchy::access(CoreId core,
                                                    VirtAddr addr,
                                                    AccessType type,
                                                    MachineStats& stats) {
  AccessInfo info;
  ++stats.accesses;
  if (type == AccessType::kRead) {
    ++stats.reads;
  } else {
    ++stats.writes;
  }

  // Address translation. On NUMA machines the first touch also homes the
  // page: on the toucher's socket (first-touch) or striped (interleave).
  info.page = page_table_.page_of(addr);
  TranslationMemo& memo = memos_[static_cast<std::size_t>(core)];
  PhysAddr phys;
  Cycles memory_latency;
  bool remote_home;
  if (fast_path_ && memo.valid && memo.page == info.page) {
    // Same-page streak: the page is this core's MRU TLB entry, so this is a
    // guaranteed hit and the translation is already known.
    ++stats.tlb_hits;
    phys = memo.frame_base | page_table_.page_offset(addr);
    memory_latency = memo.memory_latency;
    remote_home = memo.remote_home;
  } else {
    Tlb& tlb = tlbs_[static_cast<std::size_t>(core)];
    if (tlb.lookup(info.page)) {
      ++stats.tlb_hits;
    } else {
      ++stats.tlb_misses;
      info.tlb_miss = true;
      tlb.insert(info.page);
      info.latency += config_.tlb.miss_penalty;
    }
    const int home =
        config_.numa_policy == NumaPolicy::kInterleave
            ? static_cast<int>(info.page %
                               static_cast<PageNum>(config_.num_sockets))
            : topology_.socket_of(core);
    const PhysAddr frame_base = page_table_.frame_of(info.page, home)
                                << config_.page_shift();
    phys = frame_base | page_table_.page_offset(addr);

    // Memory latency depends on where the page actually lives (recorded at
    // its first touch, which may have homed it elsewhere).
    memory_latency = config_.interconnect.memory_latency;
    remote_home = config_.numa &&
                  page_table_.home_of(info.page) != topology_.socket_of(core);
    if (remote_home) {
      memory_latency += config_.interconnect.memory_remote_extra;
    }
    memo = {info.page, frame_base, memory_latency, remote_home, true};
  }
  const LineAddr line = phys >> line_shift_;

  Cache& l1 = l1s_[static_cast<std::size_t>(core)];
  const L2Id l2 = topology_.l2_of(core);

  const auto count_fetch_locality = [&](std::uint64_t fetches_before) {
    if (stats.memory_fetches > fetches_before) {
      if (remote_home) {
        ++stats.memory_fetches_remote;
      } else {
        ++stats.memory_fetches_local;
      }
    }
  };

  if (type == AccessType::kRead) {
    if (l1.find(line) != nullptr) {
      ++stats.l1_hits;
      info.latency += config_.l1.latency;
      return info;
    }
    ++stats.l1_misses;
    const std::uint64_t fetches_before = stats.memory_fetches;
    info.latency +=
        config_.l1.latency + coherence_.read(l2, line, memory_latency, stats);
    count_fetch_locality(fetches_before);
    l1.insert(line, MesiState::kShared);  // write-through L1: never dirty
    return info;
  }

  // Write-through, no-write-allocate L1: refresh a present copy, then push
  // the store to the L2, which performs the MESI ownership work.
  if (l1.find(line) != nullptr) {
    ++stats.l1_hits;
  } else {
    ++stats.l1_misses;
  }
  // Cores behind the same L2 do not appear on the snoop bus, so their L1
  // copies must be shot down locally or they would keep serving stale hits.
  // The L1s are inclusive in the L2, so when the L2 itself does not hold
  // the line no sibling L1 can either and the shootdown is a no-op.
  if (!fast_path_ || coherence_.l2(l2).peek(line) != nullptr) {
    const CoreId first = l2 * topology_.cores_per_l2();
    for (CoreId sibling = first; sibling < first + topology_.cores_per_l2();
         ++sibling) {
      if (sibling != core) {
        l1s_[static_cast<std::size_t>(sibling)].invalidate(line);
      }
    }
  }
  const std::uint64_t fetches_before = stats.memory_fetches;
  info.latency += coherence_.write(l2, line, memory_latency, stats);
  count_fetch_locality(fetches_before);
  return info;
}

void MemoryHierarchy::flush_caches() {
  for (Tlb& t : tlbs_) t.flush();
  for (Cache& c : l1s_) c.flush();
  coherence_.flush();
  for (TranslationMemo& m : memos_) m.valid = false;
}

}  // namespace tlbmap

// Abstract workload interface: a parallel application as one lazy trace
// stream per thread. Lives in the sim layer so recording/replay and the
// machine can consume workloads without depending on the NPB generators.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// A parallel application: one trace stream per thread.
class Workload {
 public:
  virtual ~Workload() = default;

  virtual std::string name() const = 0;
  virtual std::string description() const = 0;
  virtual int num_threads() const = 0;

  /// Creates thread `t`'s stream. `seed` varies run-to-run randomness
  /// (random access patterns, compute jitter); identical seeds give
  /// identical streams.
  virtual std::unique_ptr<ThreadStream> stream(ThreadId t,
                                               std::uint64_t seed) const = 0;

  /// Memory accesses thread `t` will emit (sizing/tests).
  virtual std::uint64_t accesses_of(ThreadId t) const = 0;
};

}  // namespace tlbmap

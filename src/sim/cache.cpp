#include "sim/cache.hpp"

#include <algorithm>

namespace tlbmap {

Cache::Cache(const CacheConfig& config) : config_(config) {
  // Validate before deriving geometry: num_sets() divides by the fields
  // being checked.
  config_.validate();
  num_sets_ = config_.num_sets();
  ways_ = config_.ways;
  lines_.resize(num_sets_ * ways_);
  tags_.assign(num_sets_ * ways_, kInvalidTag);
}

CacheLine* Cache::find_in_set(std::size_t set, LineAddr addr) {
  CacheLine* base = lines_.data() + set * ways_;
  if (simd_scan_enabled()) {
    const int w = scan_tags(tags_.data() + set * ways_, ways_, addr);
    return w < 0 ? nullptr : &base[w];
  }
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid() && base[w].addr == addr) return &base[w];
  }
  return nullptr;
}

CacheLine* Cache::find(LineAddr addr) {
  CacheLine* line = find_in_set(set_index(addr), addr);
  if (line != nullptr) line->lru_stamp = ++clock_;
  return line;
}

const CacheLine* Cache::peek(LineAddr addr) const {
  return const_cast<Cache*>(this)->find_in_set(set_index(addr), addr);
}

CacheLine* Cache::peek_mutable(LineAddr addr) {
  return find_in_set(set_index(addr), addr);
}

std::optional<Cache::Eviction> Cache::insert(LineAddr addr, MesiState state) {
  const std::size_t set = set_index(addr);
  if (CacheLine* present = find_in_set(set, addr)) {
    present->state = state;
    present->lru_stamp = ++clock_;
    return std::nullopt;
  }
  CacheLine* base = lines_.data() + set * ways_;
  CacheLine* victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!base[w].valid()) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  std::optional<Eviction> evicted;
  if (victim->valid()) {
    evicted = Eviction{victim->addr, victim->state};
  }
  victim->addr = addr;
  victim->state = state;
  victim->lru_stamp = ++clock_;
  tags_[static_cast<std::size_t>(victim - lines_.data())] = addr;
  return evicted;
}

std::optional<MesiState> Cache::invalidate(LineAddr addr) {
  if (CacheLine* line = find_in_set(set_index(addr), addr)) {
    const MesiState old = line->state;
    line->state = MesiState::kInvalid;
    tags_[static_cast<std::size_t>(line - lines_.data())] = kInvalidTag;
    return old;
  }
  return std::nullopt;
}

void Cache::flush() {
  std::fill(lines_.begin(), lines_.end(), CacheLine{});
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  clock_ = 0;
}

std::size_t Cache::valid_lines() const {
  return static_cast<std::size_t>(
      std::count_if(lines_.begin(), lines_.end(),
                    [](const CacheLine& l) { return l.valid(); }));
}

}  // namespace tlbmap

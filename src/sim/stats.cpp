#include "sim/stats.hpp"

namespace tlbmap {

MachineStats& MachineStats::operator+=(const MachineStats& o) {
  accesses += o.accesses;
  reads += o.reads;
  writes += o.writes;
  tlb_hits += o.tlb_hits;
  tlb_misses += o.tlb_misses;
  l1_hits += o.l1_hits;
  l1_misses += o.l1_misses;
  l2_accesses += o.l2_accesses;
  l2_hits += o.l2_hits;
  l2_misses += o.l2_misses;
  invalidations += o.invalidations;
  snoop_transactions += o.snoop_transactions;
  writebacks += o.writebacks;
  memory_fetches += o.memory_fetches;
  memory_fetches_local += o.memory_fetches_local;
  memory_fetches_remote += o.memory_fetches_remote;
  intra_socket_messages += o.intra_socket_messages;
  inter_socket_messages += o.inter_socket_messages;
  execution_cycles += o.execution_cycles;
  detection_overhead_cycles += o.detection_overhead_cycles;
  detector_searches += o.detector_searches;
  return *this;
}

Summary summarize(std::span<const double> values) {
  Summary s;
  s.n = values.size();
  if (s.n == 0) return s;
  double sum = 0.0;
  for (double v : values) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n < 2) return s;
  double sq = 0.0;
  for (double v : values) {
    const double d = v - s.mean;
    sq += d * d;
  }
  s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  return s;
}

double per_second(std::uint64_t counter, Cycles execution_cycles) {
  if (execution_cycles == 0) return 0.0;
  return static_cast<double>(counter) / cycles_to_seconds(execution_cycles);
}

void publish_stats(obs::MetricsRegistry& registry, const MachineStats& s,
                   const obs::Labels& labels) {
  const std::pair<const char*, std::uint64_t> fields[] = {
      {"sim.accesses", s.accesses},
      {"sim.reads", s.reads},
      {"sim.writes", s.writes},
      {"sim.tlb_hits", s.tlb_hits},
      {"sim.tlb_misses", s.tlb_misses},
      {"sim.l1_hits", s.l1_hits},
      {"sim.l1_misses", s.l1_misses},
      {"sim.l2_accesses", s.l2_accesses},
      {"sim.l2_hits", s.l2_hits},
      {"sim.l2_misses", s.l2_misses},
      {"sim.invalidations", s.invalidations},
      {"sim.snoop_transactions", s.snoop_transactions},
      {"sim.writebacks", s.writebacks},
      {"sim.memory_fetches", s.memory_fetches},
      {"sim.memory_fetches_local", s.memory_fetches_local},
      {"sim.memory_fetches_remote", s.memory_fetches_remote},
      {"sim.intra_socket_messages", s.intra_socket_messages},
      {"sim.inter_socket_messages", s.inter_socket_messages},
      {"sim.execution_cycles", s.execution_cycles},
      {"sim.detection_overhead_cycles", s.detection_overhead_cycles},
      {"sim.detector_searches", s.detector_searches},
  };
  for (const auto& [name, value] : fields) {
    registry.counter(name, labels).add(value);
  }
}

}  // namespace tlbmap

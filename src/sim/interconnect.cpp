#include "sim/interconnect.hpp"

// Interconnect is header-only; this translation unit anchors it in the build.

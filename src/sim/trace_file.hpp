// Compact binary trace capture and replay.
//
// The related work the paper criticises stores raw memory traces — "more
// than 100 gigabytes" even compressed (Sec. II). This module exists for the
// cases where a trace *is* wanted (debugging a detector, replaying an exact
// interleaving, archiving a workload): events are delta-encoded with
// variable-length integers, so the structured NPB streams compress to a few
// bytes per access instead of 16.
//
// Format (little-endian, per thread, one file or buffer each):
//   magic "TLBT", u8 version, then a sequence of records:
//     0x00              barrier
//     0x01              end (also implied by EOF)
//     0x02 | type<<1... access: u8 header (bit0..1 kind, bit2 type,
//                        bit3 gap-present, bit4 addr-is-delta),
//                        varint addr-or-zigzag-delta, [varint gap]
// The reader implements ThreadStream, so recorded traces plug directly into
// the Machine; RecordedWorkload bundles one buffer per thread.
#pragma once

#include <cstdint>
#include <filesystem>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/expected.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace tlbmap {

/// Structured parse failure: every malformed or truncated trace error
/// carries the byte offset where decoding stopped and the index of the
/// record being decoded, both embedded in what() and exposed as fields.
/// Derives from std::invalid_argument so callers that catch the historical
/// exception type keep working.
class TraceFormatError : public std::invalid_argument {
 public:
  TraceFormatError(ErrorCode code, const std::string& what,
                   std::size_t byte_offset, std::uint64_t record_index);

  ErrorCode code() const { return code_; }
  /// Byte position in the buffer where decoding failed.
  std::size_t byte_offset() const { return byte_offset_; }
  /// Zero-based index of the record being decoded when decoding failed
  /// (0 while still reading the file header).
  std::uint64_t record_index() const { return record_index_; }
  /// The same information as an Expected-compatible Error.
  Error to_error() const { return Error{code_, what()}; }

 private:
  ErrorCode code_;
  std::size_t byte_offset_;
  std::uint64_t record_index_;
};

/// Summary returned by validate_trace() on a well-formed buffer.
struct TraceStats {
  std::uint64_t records = 0;   ///< total records decoded (incl. end marker)
  std::uint64_t accesses = 0;  ///< access records
  std::uint64_t barriers = 0;  ///< barrier records
  std::size_t bytes = 0;       ///< buffer size
  bool explicit_end = false;   ///< true if a 0x01 end marker was present
};

/// Walks a serialised buffer end to end without replaying it, returning
/// either summary statistics or a structured error (kMalformedTrace /
/// kTruncatedTrace) whose message pins the byte offset and record index.
/// Never throws.
Expected<TraceStats> validate_trace(const std::vector<std::uint8_t>& bytes);

/// Serialises one thread's events into a byte buffer.
class TraceWriter {
 public:
  TraceWriter();

  void write(const TraceEvent& event);

  /// Finishes the stream (writes the end marker) and returns the buffer.
  std::vector<std::uint8_t> finish();

  std::uint64_t events_written() const { return events_; }

 private:
  void put_varint(std::uint64_t value);

  std::vector<std::uint8_t> bytes_;
  VirtAddr last_addr_ = 0;
  std::uint64_t events_ = 0;
  bool finished_ = false;
};

/// Replays a serialised buffer as a ThreadStream.
class TraceReader final : public ThreadStream {
 public:
  /// Throws TraceFormatError (a std::invalid_argument) on a bad header.
  explicit TraceReader(std::vector<std::uint8_t> bytes);

  /// Throws TraceFormatError on a malformed or truncated record; the error
  /// message names the byte offset and record index of the failure.
  TraceEvent next() override;

 private:
  std::uint64_t get_varint();

  std::vector<std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  VirtAddr last_addr_ = 0;
  std::uint64_t records_ = 0;
  bool done_ = false;
};

/// Incremental, non-throwing TLBT decoder for byte streams that arrive in
/// arbitrary chunks — the mapping service's ingest path (DESIGN.md
/// Sec. 16). Unlike TraceReader it never owns a whole buffer: callers
/// feed() fragments as they arrive and drain complete records with next();
/// a record split across chunks simply reports kNeedMore until its bytes
/// land. All errors are structured (never thrown) and carry the absolute
/// byte offset in the stream, using the same taxonomy as validate_trace()
/// plus kCorruptTrace for records that decode to impossible values.
class TraceStreamDecoder {
 public:
  enum class Status {
    kEvent,     ///< one record decoded into *out
    kNeedMore,  ///< buffered bytes end mid-record; feed() more
    kEnd,       ///< explicit end marker reached (terminal)
  };

  /// Serializable decoder position (service session checkpoints): the
  /// undecoded tail plus the cursors that make decoding resumable.
  struct State {
    std::vector<std::uint8_t> pending;  ///< fed but not yet decoded bytes
    std::uint64_t consumed = 0;         ///< absolute offset of pending[0]
    VirtAddr last_addr = 0;
    std::uint64_t records = 0;
    bool header_done = false;
    bool done = false;

    bool operator==(const State&) const = default;
  };

  /// Appends raw stream bytes (any fragment size, including zero).
  void feed(const std::uint8_t* data, std::size_t size);
  void feed(const std::vector<std::uint8_t>& bytes) {
    feed(bytes.data(), bytes.size());
  }

  /// Decodes the next complete record. On kEvent, *out holds it. A
  /// malformed/truncated/corrupt stream returns the structured error and
  /// the decoder stays failed (every later call repeats the error).
  Expected<Status> next(TraceEvent* out);

  /// Bytes fed but not yet consumed by next().
  std::size_t buffered_bytes() const { return buffer_.size() - head_; }
  /// Absolute offset of the next byte next() will look at.
  std::uint64_t offset() const { return consumed_; }
  std::uint64_t records() const { return records_; }
  bool finished() const { return done_; }

  /// Copies out / restores the decoder position (checkpoint support).
  State state() const;
  void restore(const State& state);

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t head_ = 0;           ///< buffer_[head_..] is undecoded
  std::uint64_t consumed_ = 0;     ///< absolute offset of buffer_[head_]
  VirtAddr last_addr_ = 0;
  std::uint64_t records_ = 0;
  bool header_done_ = false;
  bool done_ = false;
  std::optional<Error> failed_;  ///< sticky: set once, repeated forever
};

/// Records every stream of `workload` (at `seed`) into per-thread buffers.
std::vector<std::vector<std::uint8_t>> record_workload(const Workload& workload,
                                                       std::uint64_t seed);

/// A Workload backed by recorded buffers: replays identically every run
/// (seed is ignored — the interleaving decisions were already made).
class RecordedWorkload final : public Workload {
 public:
  explicit RecordedWorkload(std::vector<std::vector<std::uint8_t>> buffers,
                            std::string name = "recorded");

  std::string name() const override { return name_; }
  std::string description() const override { return "recorded trace replay"; }
  int num_threads() const override {
    return static_cast<int>(buffers_.size());
  }
  std::unique_ptr<ThreadStream> stream(ThreadId t,
                                       std::uint64_t seed) const override;
  std::uint64_t accesses_of(ThreadId t) const override;

  /// Total serialised bytes across all threads.
  std::size_t bytes() const;

 private:
  std::vector<std::vector<std::uint8_t>> buffers_;
  std::string name_;
};

/// File round-trip helpers (one file per thread: dir/thread_<t>.tlbt).
void save_recording(const std::vector<std::vector<std::uint8_t>>& buffers,
                    const std::filesystem::path& dir);
std::vector<std::vector<std::uint8_t>> load_recording(
    const std::filesystem::path& dir);

/// Non-throwing load: reads and validates every per-thread file, returning
/// a structured error (kIoError on a missing/empty directory, the
/// validate_trace() taxonomy for a corrupt file — message names the file)
/// instead of throwing. load_recording() stays the throwing wrapper.
Expected<std::vector<std::vector<std::uint8_t>>> try_load_recording(
    const std::filesystem::path& dir);

}  // namespace tlbmap

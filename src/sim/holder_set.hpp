// HolderSet: a small-size-optimised bitset over L2 ids, the value type of
// the coherence directory (LineAddr -> holders).
//
// Machines up to 64 L2 domains — every topology the original Harpertown
// reproduction cared about — keep the whole set in one inline word, so the
// directory's hot paths (probe, upgrade/RFO holder walks) cost exactly what
// the historical `std::uint64_t` mask did: no allocation, no indirection.
// Beyond 64 L2s the set grows to a heap array of words on the first
// `set()` of a high bit, which removes the old silent broadcast fallback at
// >64 L2s without taxing the small machines that never grow.
//
// Bit indices are L2 ids. All queries treat absent words as zero, so sets
// of different capacities compare and combine correctly (the per-socket
// masks are sized to the machine; directory entries grow lazily).
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>

#include "sim/topology.hpp"

namespace tlbmap {

/// Checked narrowing from a bit index to an L2Id. Every conversion of a
/// directory bit position into an L2 id routes through here, so a holder in
/// word 1+ (id >= 64) can never silently truncate or alias an id in word 0
/// — a bug class the single-word mask made impossible by construction and
/// the multi-word set must rule out explicitly. `limit` is the machine's
/// L2 count; out-of-range indices mean directory corruption, reported
/// loudly instead of as a wrong-holder probe result.
inline L2Id checked_l2id(std::size_t bit, std::size_t limit) {
  if (bit >= limit) {
    throw std::logic_error("checked_l2id: holder bit beyond machine L2s");
  }
  return static_cast<L2Id>(bit);
}

class HolderSet {
 public:
  /// Empty set, inline single-word capacity (64 bits). Grows on demand.
  HolderSet() = default;

  /// Empty set pre-sized for `num_bits` bits (avoids growth reallocation
  /// for fixed-shape sets like the per-socket masks).
  explicit HolderSet(int num_bits) {
    if (num_bits > 64) grow(words_needed(num_bits));
  }

  HolderSet(const HolderSet& other) { copy_from(other); }
  HolderSet& operator=(const HolderSet& other) {
    if (this != &other) {
      release();
      copy_from(other);
    }
    return *this;
  }
  HolderSet(HolderSet&& other) noexcept
      : inline_word_(other.inline_word_),
        heap_(other.heap_),
        num_words_(other.num_words_) {
    other.heap_ = nullptr;
    other.num_words_ = 1;
    other.inline_word_ = 0;
  }
  HolderSet& operator=(HolderSet&& other) noexcept {
    if (this != &other) {
      release();
      inline_word_ = other.inline_word_;
      heap_ = other.heap_;
      num_words_ = other.num_words_;
      other.heap_ = nullptr;
      other.num_words_ = 1;
      other.inline_word_ = 0;
    }
    return *this;
  }
  ~HolderSet() { release(); }

  void set(int bit) {
    const std::uint32_t w = word_of(bit);
    if (w >= num_words_) grow(w + 1);
    words()[w] |= mask_of(bit);
  }

  void reset(int bit) {
    const std::uint32_t w = word_of(bit);
    if (w < num_words_) words()[w] &= ~mask_of(bit);
  }

  bool test(int bit) const {
    const std::uint32_t w = word_of(bit);
    return w < num_words_ && (cwords()[w] & mask_of(bit)) != 0;
  }

  bool none() const {
    const std::uint64_t* w = cwords();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      if (w[i] != 0) return false;
    }
    return true;
  }
  bool any() const { return !none(); }

  int count() const {
    int n = 0;
    const std::uint64_t* w = cwords();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      n += std::popcount(w[i]);
    }
    return n;
  }

  void clear() {
    std::uint64_t* w = words();
    std::fill(w, w + num_words_, std::uint64_t{0});
  }

  /// Lowest set bit, or -1 when empty. The multi-word generalisation of
  /// `std::countr_zero(mask)` — preserves the broadcast scan's
  /// lowest-index-first order.
  int first() const { return first_from(cwords(), num_words_); }

  /// Lowest set bit other than `exclude`, or -1. One pass, no temporary.
  int first_excluding(int exclude) const {
    const std::uint64_t* w = cwords();
    const std::uint32_t xw = word_of(exclude);
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      std::uint64_t v = w[i];
      if (i == xw) v &= ~mask_of(exclude);
      if (v != 0) {
        return static_cast<int>(i) * 64 + std::countr_zero(v);
      }
    }
    return -1;
  }

  /// Lowest bit set in both this and `mask`, excluding `exclude`; -1 when
  /// the intersection is empty. This is the directory probe's
  /// "lowest-indexed holder on my socket" tie-break, computed without
  /// materialising the intersection.
  int first_and_excluding(const HolderSet& mask, int exclude) const {
    const std::uint64_t* a = cwords();
    const std::uint64_t* b = mask.cwords();
    const std::uint32_t n = std::min(num_words_, mask.num_words_);
    const std::uint32_t xw = word_of(exclude);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint64_t v = a[i] & b[i];
      if (i == xw) v &= ~mask_of(exclude);
      if (v != 0) {
        return static_cast<int>(i) * 64 + std::countr_zero(v);
      }
    }
    return -1;
  }

  /// Calls `fn(bit)` for every set bit in ascending order — the same order
  /// the reference broadcast walks its peers, which is what keeps the
  /// directory's invalidation loops bit-identical to it.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    const std::uint64_t* w = cwords();
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      for (std::uint64_t v = w[i]; v != 0; v &= v - 1) {
        fn(static_cast<int>(i) * 64 + std::countr_zero(v));
      }
    }
  }

  /// Ascending set bits other than `exclude` — the holder-walk order of the
  /// upgrade/RFO loops.
  template <typename Fn>
  void for_each_excluding(int exclude, Fn&& fn) const {
    const std::uint64_t* w = cwords();
    const std::uint32_t xw = word_of(exclude);
    for (std::uint32_t i = 0; i < num_words_; ++i) {
      std::uint64_t v = w[i];
      if (i == xw) v &= ~mask_of(exclude);
      for (; v != 0; v &= v - 1) {
        fn(static_cast<int>(i) * 64 + std::countr_zero(v));
      }
    }
  }

  /// True when any bit other than `exclude` is set.
  bool any_excluding(int exclude) const {
    return first_excluding(exclude) != -1;
  }

  bool operator==(const HolderSet& other) const {
    const std::uint64_t* a = cwords();
    const std::uint64_t* b = other.cwords();
    const std::uint32_t n = std::max(num_words_, other.num_words_);
    for (std::uint32_t i = 0; i < n; ++i) {
      const std::uint64_t av = i < num_words_ ? a[i] : 0;
      const std::uint64_t bv = i < other.num_words_ ? b[i] : 0;
      if (av != bv) return false;
    }
    return true;
  }

  /// Words currently backing the set (1 = still inline).
  std::uint32_t num_words() const { return num_words_; }
  bool is_inline() const { return heap_ == nullptr; }

 private:
  static std::uint32_t word_of(int bit) {
    return static_cast<std::uint32_t>(bit) / 64u;
  }
  static std::uint64_t mask_of(int bit) {
    return std::uint64_t{1} << (static_cast<unsigned>(bit) % 64u);
  }
  static std::uint32_t words_needed(int num_bits) {
    return (static_cast<std::uint32_t>(num_bits) + 63u) / 64u;
  }
  static int first_from(const std::uint64_t* w, std::uint32_t n) {
    for (std::uint32_t i = 0; i < n; ++i) {
      if (w[i] != 0) {
        return static_cast<int>(i) * 64 + std::countr_zero(w[i]);
      }
    }
    return -1;
  }

  std::uint64_t* words() { return heap_ != nullptr ? heap_ : &inline_word_; }
  const std::uint64_t* cwords() const {
    return heap_ != nullptr ? heap_ : &inline_word_;
  }

  void grow(std::uint32_t new_words) {
    auto* bigger = new std::uint64_t[new_words]{};
    std::memcpy(bigger, cwords(), num_words_ * sizeof(std::uint64_t));
    release();
    heap_ = bigger;
    num_words_ = new_words;
  }

  void copy_from(const HolderSet& other) {
    num_words_ = other.num_words_;
    if (other.heap_ != nullptr) {
      heap_ = new std::uint64_t[num_words_];
      std::memcpy(heap_, other.heap_, num_words_ * sizeof(std::uint64_t));
    } else {
      heap_ = nullptr;
      inline_word_ = other.inline_word_;
    }
  }

  void release() {
    delete[] heap_;
    heap_ = nullptr;
  }

  std::uint64_t inline_word_ = 0;  ///< storage while num_words_ == 1
  std::uint64_t* heap_ = nullptr;  ///< engaged once the set outgrows a word
  std::uint32_t num_words_ = 1;
};

}  // namespace tlbmap

#include "sim/access_program.hpp"

namespace tlbmap {

std::uint64_t AccessProgram::total_accesses() const {
  std::uint64_t per_iter = 0;
  for (const Phase& p : phases) {
    std::uint64_t per_rep = 0;
    for (const Walk& w : p.walks) per_rep += w.accesses();
    per_iter += per_rep * p.repeat;
  }
  return per_iter * iterations;
}

std::uint64_t AccessProgram::total_barriers() const {
  std::uint64_t per_iter = 0;
  for (const Phase& p : phases) {
    if (p.barrier_after) ++per_iter;
  }
  return per_iter * iterations;
}

ProgramStream::ProgramStream(AccessProgram program, std::uint64_t seed)
    : program_(std::move(program)), rng_(seed) {}

bool ProgramStream::position_on_walk() {
  for (;;) {
    if (iter_ >= program_.iterations) {
      finished_ = true;
      return false;
    }
    const auto& phases = program_.phases;
    if (phase_ >= phases.size()) {
      phase_ = 0;
      phase_rep_ = 0;
      ++iter_;
      continue;
    }
    const Phase& phase = phases[phase_];
    if (phase_rep_ >= phase.repeat) {
      if (phase.barrier_after && !barrier_pending_) {
        // Emit exactly one barrier when the phase (all repeats) completes.
        barrier_pending_ = true;
        return false;
      }
      barrier_pending_ = false;
      ++phase_;
      phase_rep_ = 0;
      continue;
    }
    if (walk_ >= phase.walks.size()) {
      walk_ = 0;
      elem_index_ = 0;
      ++phase_rep_;
      continue;
    }
    const Walk& walk = phase.walks[walk_];
    if (elem_index_ >= walk.count || walk.num_elems() == 0) {
      ++walk_;
      elem_index_ = 0;
      continue;
    }
    return true;
  }
}

TraceEvent ProgramStream::next() {
  if (finished_) return TraceEvent::make_end();
  if (write_pending_) {
    write_pending_ = false;
    return TraceEvent::make_access(pending_addr_, AccessType::kWrite, 0);
  }
  if (!position_on_walk()) {
    if (barrier_pending_) return TraceEvent::make_barrier();
    return TraceEvent::make_end();
  }

  const Phase& phase = program_.phases[phase_];
  const Walk& walk = phase.walks[walk_];
  const std::uint64_t n = walk.num_elems();

  std::uint64_t elem;
  if (walk.pattern == Walk::Pattern::kRandom) {
    elem = rng_() % n;
  } else {
    const std::int64_t signed_elem =
        static_cast<std::int64_t>(walk.start_elem) +
        static_cast<std::int64_t>(elem_index_) * walk.stride;
    // Euclidean modulo so negative strides wrap into the region.
    std::int64_t m = signed_elem % static_cast<std::int64_t>(n);
    if (m < 0) m += static_cast<std::int64_t>(n);
    elem = static_cast<std::uint64_t>(m);
  }
  ++elem_index_;

  const VirtAddr addr = walk.base + elem * walk.elem_size;
  std::uint32_t gap = walk.compute_gap;
  if (walk.gap_jitter > 0) {
    gap += static_cast<std::uint32_t>(rng_() % (walk.gap_jitter + 1));
  }
  switch (walk.mix) {
    case Walk::Mix::kRead:
      return TraceEvent::make_access(addr, AccessType::kRead, gap);
    case Walk::Mix::kWrite:
      return TraceEvent::make_access(addr, AccessType::kWrite, gap);
    case Walk::Mix::kReadWrite:
      write_pending_ = true;
      pending_addr_ = addr;
      return TraceEvent::make_access(addr, AccessType::kRead, gap);
  }
  return TraceEvent::make_end();  // unreachable
}

}  // namespace tlbmap

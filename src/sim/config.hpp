// Machine configuration: cache/TLB geometries and latency model.
//
// Defaults reproduce the paper's evaluation platform (Table II / Figure 3):
// two Intel Harpertown-like sockets, four cores each, private 32 KB 4-way L1
// caches, one 6 MB 8-way L2 shared by each pair of cores, MESI across L2s,
// and 64-entry 4-way TLBs per core (UltraSPARC default / Nehalem L1 TLB).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>

#include "core/fault.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// Geometry and access latency of one set-associative cache.
struct CacheConfig {
  std::size_t size_bytes = 0;
  std::size_t line_size = 64;
  std::size_t ways = 4;
  Cycles latency = 1;

  std::size_t num_lines() const { return size_bytes / line_size; }
  std::size_t num_sets() const { return num_lines() / ways; }

  void validate() const {
    if (size_bytes == 0 || line_size == 0 || ways == 0) {
      throw std::invalid_argument("CacheConfig: zero-sized field");
    }
    if (size_bytes % line_size != 0 || num_lines() % ways != 0) {
      throw std::invalid_argument("CacheConfig: geometry not divisible");
    }
    if ((line_size & (line_size - 1)) != 0) {
      throw std::invalid_argument("CacheConfig: line size must be a power of two");
    }
  }
};

/// How the TLB is refilled on a miss — selects the detection mechanism the
/// operating system can attach (paper Sec. IV-A vs IV-B).
enum class TlbManagement : std::uint8_t {
  kSoftware,  ///< miss traps to the OS (SPARC/MIPS style)
  kHardware,  ///< hardware page walker (x86 style)
};

/// Geometry of one per-core TLB.
struct TlbConfig {
  std::size_t entries = 64;
  std::size_t ways = 4;
  TlbManagement management = TlbManagement::kHardware;
  /// Cycles to service a miss: trap + OS refill (software) or page walk
  /// (hardware). Charged to the faulting core.
  Cycles miss_penalty = 30;

  std::size_t num_sets() const { return entries / ways; }

  void validate() const {
    if (entries == 0 || ways == 0 || entries % ways != 0) {
      throw std::invalid_argument("TlbConfig: bad geometry");
    }
  }
};

/// Latencies of coherence actions, split by whether the two caches involved
/// sit on the same socket (intra-chip interconnect) or on different sockets
/// (front-side bus). These are the knobs that make thread placement matter.
struct InterconnectConfig {
  Cycles snoop_intra_socket = 30;  ///< cache-to-cache transfer, same chip
  Cycles snoop_inter_socket = 70;  ///< cache-to-cache transfer, cross chip
  Cycles invalidate_intra_socket = 15;
  Cycles invalidate_inter_socket = 35;
  Cycles memory_latency = 150;     ///< L2 miss serviced from DRAM
  /// Extra cycles when the line's home memory node is a different socket
  /// (only charged on NUMA machines; the paper's Harpertown is UMA).
  Cycles memory_remote_extra = 150;
  /// Per-hop surcharge on cross-socket messages beyond the first hop, for
  /// machines whose sockets form a mesh (MachineConfig::socket_mesh_cols):
  /// a message crossing h socket hops costs inter + (h-1)*hop_extra. Both
  /// default to 0, so fully-connected machines — and mesh machines with
  /// flat link costs — price exactly as before ("Mapping Matters",
  /// arXiv:2005.10413, motivates the non-binary cross-socket model).
  Cycles snoop_hop_extra = 0;
  Cycles invalidate_hop_extra = 0;
};

/// Page placement policy of a NUMA machine's OS.
enum class NumaPolicy : std::uint8_t {
  kFirstTouch,  ///< page homed on the socket of the first core touching it
  kInterleave,  ///< pages striped round-robin across sockets
};

/// Full machine description.
struct MachineConfig {
  int num_sockets = 2;
  int cores_per_socket = 4;
  int cores_per_l2 = 2;

  /// Socket-level interconnect shape. 0 (default) = fully connected: every
  /// pair of sockets is one hop, reproducing the historical binary
  /// intra/inter distance. > 0 = the sockets form a 2D mesh with this many
  /// columns (row-major socket ids); cross-socket distance becomes the
  /// Manhattan hop count, giving the >=3-level cost model its non-binary
  /// far dimension at manycore scale.
  int socket_mesh_cols = 0;

  std::size_t page_size = 4096;

  /// Non-uniform memory: each socket owns a memory node; L2 misses to
  /// remote-homed pages pay memory_remote_extra. The paper's evaluation
  /// machine is UMA (front-side bus); its conclusions predict larger
  /// mapping gains on NUMA — bench_numa tests that claim.
  bool numa = false;
  NumaPolicy numa_policy = NumaPolicy::kFirstTouch;

  /// Resolve coherence probes by walking every other L2's cache set (the
  /// literal snoop broadcast) instead of the line-occupancy directory. Both
  /// paths produce bit-identical statistics — the simulated protocol *is* a
  /// broadcast either way, and the probe/invalidation message counts are
  /// accounted identically; the directory is purely an acceleration
  /// structure (O(holders) instead of Theta(num_l2) per miss). Kept for A/B
  /// benchmarking and differential testing, mirroring --hm-naive-sweep.
  bool coherence_broadcast = false;

  CacheConfig l1{/*size_bytes=*/32 * 1024, /*line_size=*/64, /*ways=*/4,
                 /*latency=*/2};
  CacheConfig l2{/*size_bytes=*/6 * 1024 * 1024, /*line_size=*/64, /*ways=*/8,
                 /*latency=*/8};
  TlbConfig tlb{};
  InterconnectConfig interconnect{};

  /// Seeded fault-injection plan (DESIGN.md Sec. 11). Disabled by default;
  /// the detectors and the pipeline consult it through Machine::config().
  /// With the default (disabled) plan no injector is even constructed, so
  /// the simulated results are bit-identical to a faultless build.
  FaultPlan fault{};

  /// Watchdog for Machine::run: abort the run with a structured
  /// kWatchdogTimeout error once this many trace events have been issued.
  /// 0 disables the watchdog (the default — a finite trace always ends).
  /// Guards against malformed/looping recorded traces and misbehaving
  /// workload generators in long suite runs.
  std::uint64_t watchdog_max_events = 0;

  int num_cores() const { return num_sockets * cores_per_socket; }
  int num_l2() const { return num_cores() / cores_per_l2; }
  int page_shift() const {
    int s = 0;
    for (std::size_t v = page_size; v > 1; v >>= 1) ++s;
    return s;
  }

  void validate() const {
    if (num_sockets <= 0 || cores_per_socket <= 0 || cores_per_l2 <= 0) {
      throw std::invalid_argument("MachineConfig: non-positive topology field");
    }
    if (cores_per_socket % cores_per_l2 != 0) {
      throw std::invalid_argument("MachineConfig: cores_per_socket % cores_per_l2 != 0");
    }
    if (socket_mesh_cols < 0) {
      throw std::invalid_argument("MachineConfig: negative socket_mesh_cols");
    }
    if (socket_mesh_cols > 0 && num_sockets % socket_mesh_cols != 0) {
      throw std::invalid_argument(
          "MachineConfig: num_sockets % socket_mesh_cols != 0");
    }
    if (page_size == 0 || (page_size & (page_size - 1)) != 0) {
      throw std::invalid_argument("MachineConfig: page size must be a power of two");
    }
    l1.validate();
    l2.validate();
    tlb.validate();
    fault.validate();
  }

  /// The paper's evaluation machine (2x Harpertown, Table II).
  static MachineConfig harpertown() { return MachineConfig{}; }

  /// The same topology with a NUMA memory system (one node per socket,
  /// first-touch homing) and a point-to-point inter-socket interconnect:
  /// cross-socket transfers pay an extra hop, so the communication-latency
  /// spread between nearby and distant cores is larger than on the UMA
  /// front-side-bus machine — the paper's Sec. VII argument for why mapping
  /// gains grow on NUMA.
  static MachineConfig numa_harpertown() {
    MachineConfig c;
    c.numa = true;
    c.interconnect.snoop_inter_socket = 140;
    c.interconnect.invalidate_inter_socket = 70;
    return c;
  }

  /// A 256-core manycore machine: 32 sockets on an 8-column mesh, 8 cores
  /// per socket, one core (and one L2) per pair-free tile, with non-flat
  /// per-hop link costs and caches kept small so the >64-L2 directory,
  /// eviction paths and hierarchical-mapping scale tests stay fast.
  static MachineConfig manycore() {
    MachineConfig c;
    c.num_sockets = 32;
    c.cores_per_socket = 8;
    c.cores_per_l2 = 1;
    c.socket_mesh_cols = 8;
    c.numa = true;
    c.interconnect.snoop_inter_socket = 140;
    c.interconnect.invalidate_inter_socket = 70;
    c.interconnect.snoop_hop_extra = 20;
    c.interconnect.invalidate_hop_extra = 10;
    c.l1 = CacheConfig{2048, 64, 2, 2};
    c.l2 = CacheConfig{8192, 64, 4, 8};
    c.tlb = TlbConfig{16, 2, TlbManagement::kHardware, 30};
    return c;
  }

  /// A small machine for fast unit tests: 1 socket, 2 cores sharing one L2,
  /// tiny caches so eviction paths are exercised cheaply.
  static MachineConfig tiny() {
    MachineConfig c;
    c.num_sockets = 1;
    c.cores_per_socket = 2;
    c.cores_per_l2 = 2;
    c.l1 = CacheConfig{1024, 64, 2, 2};
    c.l2 = CacheConfig{4096, 64, 4, 8};
    c.tlb = TlbConfig{8, 2, TlbManagement::kHardware, 30};
    return c;
  }
};

}  // namespace tlbmap

#include "sim/coherence.hpp"

#include <algorithm>
#include <cstdio>

namespace tlbmap {

CoherenceDomain::CoherenceDomain(const MachineConfig& config,
                                 const Topology& topology,
                                 Interconnect& interconnect)
    : l2_latency_(config.l2.latency),
      interconnect_(&interconnect),
      directory_enabled_(!config.coherence_broadcast) {
  l2s_.reserve(static_cast<std::size_t>(topology.num_l2()));
  for (int i = 0; i < topology.num_l2(); ++i) {
    l2s_.emplace_back(config.l2);
  }
  if (directory_enabled_) {
    same_socket_mask_.assign(l2s_.size(), HolderSet(topology.num_l2()));
    for (int a = 0; a < topology.num_l2(); ++a) {
      for (int b = 0; b < topology.num_l2(); ++b) {
        if (topology.socket_of_l2(a) == topology.socket_of_l2(b)) {
          same_socket_mask_[static_cast<std::size_t>(a)].set(b);
        }
      }
    }
    // Worst case one entry per distinct resident line across all L2s.
    directory_.reserve(l2s_.size() * l2s_.front().num_sets() *
                       l2s_.front().ways());
    holder_scratch_.reserve(l2s_.size());
  } else if (topology.num_l2() > 64) {
    // Explicit broadcast mode at a scale where the reference walk is a real
    // engine hazard (Theta(num_l2) cache-set walks per miss). The simulated
    // outcome is still exact; only wall-clock suffers. Machine::run also
    // publishes this as the coherence.directory_disabled gauge.
    std::fprintf(stderr,
                 "tlbmap: warning: coherence directory disabled "
                 "(coherence_broadcast) on %d L2 domains; probe resolution "
                 "is Theta(num_l2) per miss\n",
                 topology.num_l2());
  }
}

void CoherenceDomain::drop(L2Id holder, LineAddr line) {
  if (on_line_drop_) on_line_drop_(holder, line);
}

const std::vector<L2Id>& CoherenceDomain::snapshot_remote_holders(
    L2Id me, LineAddr line) {
  holder_scratch_.clear();
  const auto it = directory_.find(line);
  if (it != directory_.end()) {
    it->second.for_each_excluding(me, [&](int b) {
      holder_scratch_.push_back(checked_l2id(static_cast<std::size_t>(b),
                                             l2s_.size()));
    });
  }
  return holder_scratch_;
}

void CoherenceDomain::directory_clear(L2Id holder, LineAddr line) {
  const auto it = directory_.find(line);
  if (it == directory_.end()) return;
  it->second.reset(holder);
  if (it->second.none()) directory_.erase(it);
}

L2Id CoherenceDomain::probe_broadcast(L2Id me, LineAddr line,
                                      MachineStats& stats) {
  L2Id best = -1;
  for (int other = 0; other < num_l2(); ++other) {
    if (other == me) continue;
    interconnect_->record_probe(me, other, stats);
    if (l2s_[static_cast<std::size_t>(other)].peek(line) == nullptr) continue;
    if (best == -1 || (!interconnect_->same_socket(me, best) &&
                       interconnect_->same_socket(me, other))) {
      best = other;
    }
  }
  return best;
}

L2Id CoherenceDomain::probe(L2Id me, LineAddr line, MachineStats& stats) {
  if (!directory_enabled_) return probe_broadcast(me, line, stats);
  // The address probe still goes out to every peer on the bus — only the
  // simulator-side resolution is a holder-set lookup instead of a set walk.
  interconnect_->record_probe_broadcast(me, stats);
  ++dir_stats_.probes;
  const auto it = directory_.find(line);
  if (it == directory_.end()) return -1;
  // Nearest holder, matching the broadcast scan's tie-break: the
  // lowest-indexed holder on my socket when one exists, else the
  // lowest-indexed holder overall.
  const HolderSet& holders = it->second;
  int pick = holders.first_and_excluding(
      same_socket_mask_[static_cast<std::size_t>(me)], me);
  if (pick == -1) pick = holders.first_excluding(me);
  if (pick == -1) return -1;
  ++dir_stats_.holder_hits;
  return checked_l2id(static_cast<std::size_t>(pick), l2s_.size());
}

void CoherenceDomain::insert_line(L2Id me, LineAddr line, MesiState state,
                                  MachineStats& stats) {
  auto evicted = l2s_[static_cast<std::size_t>(me)].insert(line, state);
  if (directory_enabled_) {
    directory_[line].set(me);
    if (evicted.has_value()) directory_clear(me, evicted->addr);
  }
  if (evicted.has_value()) {
    if (evicted->state == MesiState::kModified) ++stats.writebacks;
    drop(me, evicted->addr);
  }
}

Cycles CoherenceDomain::read(L2Id me, LineAddr line, Cycles memory_latency,
                             MachineStats& stats) {
  ++stats.l2_accesses;
  Cache& mine = l2s_[static_cast<std::size_t>(me)];
  if (mine.find(line) != nullptr) {
    ++stats.l2_hits;
    return l2_latency_;
  }
  ++stats.l2_misses;
  Cycles latency = l2_latency_;
  const L2Id holder = probe(me, line, stats);
  if (holder != -1) {
    // Cache-to-cache transfer: the paper's snoop transaction.
    Cache& theirs = l2s_[static_cast<std::size_t>(holder)];
    CacheLine* held = theirs.peek_mutable(line);
    if (held->state == MesiState::kModified) ++stats.writebacks;
    held->state = MesiState::kShared;
    ++stats.snoop_transactions;
    latency += interconnect_->transfer(holder, me, stats);
    insert_line(me, line, MesiState::kShared, stats);
  } else {
    ++stats.memory_fetches;
    latency += memory_latency;
    insert_line(me, line, MesiState::kExclusive, stats);
  }
  return latency;
}

Cycles CoherenceDomain::write(L2Id me, LineAddr line, Cycles memory_latency,
                              MachineStats& stats) {
  ++stats.l2_accesses;
  Cache& mine = l2s_[static_cast<std::size_t>(me)];
  if (CacheLine* held = mine.find(line)) {
    ++stats.l2_hits;
    switch (held->state) {
      case MesiState::kModified:
        return 1;  // store-buffered; ownership already held
      case MesiState::kExclusive:
        held->state = MesiState::kModified;
        return 1;
      case MesiState::kShared: {
        // Ownership upgrade: invalidate every remote copy. Messages go out
        // in parallel, so the stall is the slowest acknowledgement.
        Cycles worst = 0;
        if (directory_enabled_) {
          for (const L2Id other : snapshot_remote_holders(me, line)) {
            ++dir_stats_.holder_visits;
            l2s_[static_cast<std::size_t>(other)].invalidate(line);
            ++stats.invalidations;
            worst =
                std::max(worst, interconnect_->invalidate(me, other, stats));
            directory_clear(other, line);
            drop(other, line);
          }
        } else {
          for (int other = 0; other < num_l2(); ++other) {
            if (other == me) continue;
            Cache& theirs = l2s_[static_cast<std::size_t>(other)];
            if (theirs.invalidate(line).has_value()) {
              ++stats.invalidations;
              worst = std::max(worst,
                               interconnect_->invalidate(me, other, stats));
              drop(other, line);
            }
          }
        }
        held->state = MesiState::kModified;
        return 1 + worst;
      }
      case MesiState::kInvalid:
        break;  // unreachable: find() only returns valid lines
    }
  }
  // Write miss: read-for-ownership. probe() names the transfer source, so
  // it is always among the holders invalidated below — the data always
  // arrives cache-to-cache when a holder exists, never from memory.
  ++stats.l2_misses;
  Cycles latency = 1;
  const L2Id source = probe(me, line, stats);
  if (source != -1) {
    // Invalidate every holder; data comes from the nearest one.
    Cycles worst = 0;
    if (directory_enabled_) {
      for (const L2Id other : snapshot_remote_holders(me, line)) {
        ++dir_stats_.holder_visits;
        const auto old =
            l2s_[static_cast<std::size_t>(other)].invalidate(line);
        ++stats.invalidations;
        if (old.has_value() && *old == MesiState::kModified) {
          ++stats.writebacks;
        }
        directory_clear(other, line);
        drop(other, line);
        if (other == source) {
          ++stats.snoop_transactions;
          worst = std::max(worst, interconnect_->transfer(other, me, stats));
        } else {
          worst = std::max(worst, interconnect_->invalidate(me, other, stats));
        }
      }
    } else {
      for (int other = 0; other < num_l2(); ++other) {
        if (other == me) continue;
        Cache& theirs = l2s_[static_cast<std::size_t>(other)];
        const auto old = theirs.invalidate(line);
        if (!old.has_value()) continue;
        ++stats.invalidations;
        if (*old == MesiState::kModified) ++stats.writebacks;
        drop(other, line);
        if (other == source) {
          ++stats.snoop_transactions;
          worst = std::max(worst, interconnect_->transfer(other, me, stats));
        } else {
          worst = std::max(worst, interconnect_->invalidate(me, other, stats));
        }
      }
    }
    latency += worst;
  } else {
    ++stats.memory_fetches;
    latency += memory_latency;
  }
  insert_line(me, line, MesiState::kModified, stats);
  return latency;
}

void CoherenceDomain::flush() {
  for (Cache& c : l2s_) c.flush();
  directory_.clear();
}

void CoherenceDomain::rebuild_directory() {
  if (!directory_enabled_) return;
  directory_.clear();
  for (std::size_t id = 0; id < l2s_.size(); ++id) {
    l2s_[id].for_each_line([&](const CacheLine& cl) {
      directory_[cl.addr].set(static_cast<int>(id));
    });
  }
}

bool CoherenceDomain::directory_consistent() const {
  if (!directory_enabled_) return true;
  // Every valid cached line must be tracked with its holder bit set...
  for (std::size_t id = 0; id < l2s_.size(); ++id) {
    bool ok = true;
    l2s_[id].for_each_line([&](const CacheLine& cl) {
      const auto it = directory_.find(cl.addr);
      if (it == directory_.end() || !it->second.test(static_cast<int>(id))) {
        ok = false;
      }
    });
    if (!ok) return false;
  }
  // ...and every directory bit must map back to a resident line.
  for (const auto& [line, holders] : directory_) {
    if (holders.none()) return false;  // empty sets are erased eagerly
    bool ok = true;
    holders.for_each([&](int b) {
      const auto id = static_cast<std::size_t>(b);
      if (id >= l2s_.size() || l2s_[id].peek(line) == nullptr) ok = false;
    });
    if (!ok) return false;
  }
  return true;
}

}  // namespace tlbmap

#include "sim/coherence.hpp"

#include <algorithm>

namespace tlbmap {

CoherenceDomain::CoherenceDomain(const MachineConfig& config,
                                 const Topology& topology,
                                 Interconnect& interconnect)
    : l2_latency_(config.l2.latency), interconnect_(&interconnect) {
  l2s_.reserve(static_cast<std::size_t>(topology.num_l2()));
  for (int i = 0; i < topology.num_l2(); ++i) {
    l2s_.emplace_back(config.l2);
  }
}

void CoherenceDomain::drop(L2Id holder, LineAddr line) {
  if (on_line_drop_) on_line_drop_(holder, line);
}

L2Id CoherenceDomain::probe(L2Id me, LineAddr line, MachineStats& stats) {
  L2Id best = -1;
  for (int other = 0; other < num_l2(); ++other) {
    if (other == me) continue;
    interconnect_->record_probe(me, other, stats);
    if (l2s_[static_cast<std::size_t>(other)].peek(line) == nullptr) continue;
    if (best == -1 || (!interconnect_->same_socket(me, best) &&
                       interconnect_->same_socket(me, other))) {
      best = other;
    }
  }
  return best;
}

void CoherenceDomain::insert_line(L2Id me, LineAddr line, MesiState state,
                                  MachineStats& stats) {
  auto evicted = l2s_[static_cast<std::size_t>(me)].insert(line, state);
  if (evicted.has_value()) {
    if (evicted->state == MesiState::kModified) ++stats.writebacks;
    drop(me, evicted->addr);
  }
}

Cycles CoherenceDomain::read(L2Id me, LineAddr line, Cycles memory_latency,
                             MachineStats& stats) {
  ++stats.l2_accesses;
  Cache& mine = l2s_[static_cast<std::size_t>(me)];
  if (mine.find(line) != nullptr) {
    ++stats.l2_hits;
    return l2_latency_;
  }
  ++stats.l2_misses;
  Cycles latency = l2_latency_;
  const L2Id holder = probe(me, line, stats);
  if (holder != -1) {
    // Cache-to-cache transfer: the paper's snoop transaction.
    Cache& theirs = l2s_[static_cast<std::size_t>(holder)];
    CacheLine* held = theirs.peek_mutable(line);
    if (held->state == MesiState::kModified) ++stats.writebacks;
    held->state = MesiState::kShared;
    ++stats.snoop_transactions;
    latency += interconnect_->transfer(holder, me, stats);
    insert_line(me, line, MesiState::kShared, stats);
  } else {
    ++stats.memory_fetches;
    latency += memory_latency;
    insert_line(me, line, MesiState::kExclusive, stats);
  }
  return latency;
}

Cycles CoherenceDomain::write(L2Id me, LineAddr line, Cycles memory_latency,
                              MachineStats& stats) {
  ++stats.l2_accesses;
  Cache& mine = l2s_[static_cast<std::size_t>(me)];
  if (CacheLine* held = mine.find(line)) {
    ++stats.l2_hits;
    switch (held->state) {
      case MesiState::kModified:
        return 1;  // store-buffered; ownership already held
      case MesiState::kExclusive:
        held->state = MesiState::kModified;
        return 1;
      case MesiState::kShared: {
        // Ownership upgrade: invalidate every remote copy. Messages go out
        // in parallel, so the stall is the slowest acknowledgement.
        Cycles worst = 0;
        for (int other = 0; other < num_l2(); ++other) {
          if (other == me) continue;
          Cache& theirs = l2s_[static_cast<std::size_t>(other)];
          if (theirs.invalidate(line).has_value()) {
            ++stats.invalidations;
            worst = std::max(worst,
                             interconnect_->invalidate(me, other, stats));
            drop(other, line);
          }
        }
        held->state = MesiState::kModified;
        return 1 + worst;
      }
      case MesiState::kInvalid:
        break;  // unreachable: find() only returns valid lines
    }
  }
  // Write miss: read-for-ownership.
  ++stats.l2_misses;
  Cycles latency = 1;
  const L2Id source = probe(me, line, stats);
  if (source != -1) {
    // Invalidate every holder; data comes from the nearest one.
    bool transferred = false;
    Cycles worst = 0;
    for (int other = 0; other < num_l2(); ++other) {
      if (other == me) continue;
      Cache& theirs = l2s_[static_cast<std::size_t>(other)];
      const auto old = theirs.invalidate(line);
      if (!old.has_value()) continue;
      ++stats.invalidations;
      if (*old == MesiState::kModified) ++stats.writebacks;
      drop(other, line);
      if (other == source) {
        ++stats.snoop_transactions;
        worst = std::max(worst, interconnect_->transfer(other, me, stats));
        transferred = true;
      } else {
        worst = std::max(worst, interconnect_->invalidate(me, other, stats));
      }
    }
    (void)transferred;
    latency += worst;
  } else {
    ++stats.memory_fetches;
    latency += memory_latency;
  }
  insert_line(me, line, MesiState::kModified, stats);
  return latency;
}

void CoherenceDomain::flush() {
  for (Cache& c : l2s_) c.flush();
}

}  // namespace tlbmap

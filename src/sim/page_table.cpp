#include "sim/page_table.hpp"

// PageTable is header-only; this translation unit exists so the build graph
// (and future out-of-line growth) has a stable home for it.

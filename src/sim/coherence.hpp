// MESI coherence across the shared L2 caches, over a broadcast snoop bus.
//
// Each L2 cache (one per pair of cores on Harpertown) is a peer on the bus.
// A miss broadcasts an address probe to every other L2; data is sourced
// cache-to-cache from the nearest holder when one exists (a *snoop
// transaction* in the paper's terminology), otherwise from memory. Writes
// acquire ownership MESI-style, invalidating every remote copy (the paper's
// *invalidations* counter). The interconnect prices each message by whether
// it crosses the socket boundary — this is precisely the cost structure a
// good thread mapping exploits.
//
// The simulator resolves the broadcast with a line-occupancy directory: a
// LineAddr -> HolderSet (a small-size-optimised multi-word bitset over L2
// ids) maintained incrementally by every insert/invalidate/eviction, so a
// probe is one hash lookup plus a lowest-set-bit scan over the
// socket-partitioned holder set and the invalidation loops visit only
// actual holders — O(holders) instead of Theta(num_l2) cache-set walks per
// miss. Machines with at most 64 L2s keep the whole set in one inline word
// (the historical representation); larger machines grow per-line heap
// words, so the directory now covers any topology instead of silently
// degrading to the broadcast walk beyond 64 L2s. This changes no simulated
// outcome: probe messages, snoop transactions, invalidations, latencies and
// replacement state are identical bit for bit (the differential test suite
// proves it, up to 256 L2 domains). The literal walked broadcast is kept
// behind MachineConfig::coherence_broadcast for A/B benchmarking only.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/holder_set.hpp"
#include "sim/interconnect.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class CoherenceDomain {
 public:
  /// Called whenever an L2 loses a line (remote invalidation or eviction),
  /// so the private L1s above it can be kept inclusive.
  using LineDropFn = std::function<void(L2Id, LineAddr)>;

  /// Bookkeeping of the directory fast path (not part of MachineStats: the
  /// directory is an engine acceleration, not a simulated event). Published
  /// by Machine::run as coherence.directory_* metrics.
  struct DirectoryStats {
    std::uint64_t probes = 0;         ///< directory lookups on L2 misses
    std::uint64_t holder_hits = 0;    ///< probes that found a remote holder
    std::uint64_t holder_visits = 0;  ///< L2s visited by upgrade/RFO loops
  };

  CoherenceDomain(const MachineConfig& config, const Topology& topology,
                  Interconnect& interconnect);

  /// Demand read reaching an L2 (after an L1 miss).
  /// Returns the extra latency beyond the core's L1 access.
  /// `memory_latency` is the DRAM cost if the line must come from memory
  /// (NUMA machines pass the home-node-dependent value).
  Cycles read(L2Id l2, LineAddr line, Cycles memory_latency,
              MachineStats& stats);
  Cycles read(L2Id l2, LineAddr line, MachineStats& stats) {
    return read(l2, line, interconnect_->memory_latency(), stats);
  }

  /// Demand write reaching an L2 (write-through from the L1). Store buffers
  /// hide the common-case latency; only coherence work (ownership upgrade,
  /// read-for-ownership) is charged.
  Cycles write(L2Id l2, LineAddr line, Cycles memory_latency,
               MachineStats& stats);
  Cycles write(L2Id l2, LineAddr line, MachineStats& stats) {
    return write(l2, line, interconnect_->memory_latency(), stats);
  }

  void set_line_drop_callback(LineDropFn fn) { on_line_drop_ = std::move(fn); }

  Cache& l2(L2Id id) { return l2s_[static_cast<std::size_t>(id)]; }
  const Cache& l2(L2Id id) const { return l2s_[static_cast<std::size_t>(id)]; }
  int num_l2() const { return static_cast<int>(l2s_.size()); }

  /// Drops every line from every L2 (between experiment repetitions).
  void flush();

  bool directory_enabled() const { return directory_enabled_; }
  const DirectoryStats& directory_stats() const { return dir_stats_; }
  /// Lines currently tracked by the directory (0 in broadcast mode).
  std::size_t directory_lines() const { return directory_.size(); }

  /// Ground-truth check: every valid L2 line has its holder bit set and
  /// every directory bit maps to a resident line. Trivially true in
  /// broadcast mode. Test/debug aid; O(total cache capacity).
  bool directory_consistent() const;

  /// Rebuilds the directory from the current cache contents. The
  /// epoch-parallel engine bypasses the live directory (it keeps its own
  /// frozen per-epoch view) and calls this once at end of run so a
  /// subsequent serial run — and directory_consistent() — see a directory
  /// matching the caches it left behind. O(total cache capacity); no-op in
  /// broadcast mode.
  void rebuild_directory();

  /// Folds externally accumulated directory bookkeeping into this domain's
  /// counters (the epoch engine counts probes/visits in per-shard buckets
  /// and deposits the sum here at end of run).
  void add_directory_stats(const DirectoryStats& delta) {
    dir_stats_.probes += delta.probes;
    dir_stats_.holder_hits += delta.holder_hits;
    dir_stats_.holder_visits += delta.holder_visits;
  }

 private:
  /// Index of the holder nearest to `me`, or -1 when no other L2 holds the
  /// line. Also records one probe message per remote L2 (broadcast snoop).
  L2Id probe(L2Id me, LineAddr line, MachineStats& stats);
  L2Id probe_broadcast(L2Id me, LineAddr line, MachineStats& stats);

  /// Inserts into `me`, handling an inclusive eviction (writeback if the
  /// victim was modified; L1 shootdown either way).
  void insert_line(L2Id me, LineAddr line, MesiState state,
                   MachineStats& stats);

  void drop(L2Id holder, LineAddr line);

  /// Snapshots the holders of `line` other than `me`, ascending, into the
  /// reused scratch vector. A snapshot because the upgrade/RFO loops clear
  /// directory bits (possibly erasing the entry) while they walk; ascending
  /// because that is the reference broadcast's visit order, which the
  /// tie-breaks and stats depend on.
  const std::vector<L2Id>& snapshot_remote_holders(L2Id me, LineAddr line);

  void directory_clear(L2Id holder, LineAddr line);

  Cycles l2_latency_;
  Interconnect* interconnect_;
  std::vector<Cache> l2s_;
  LineDropFn on_line_drop_;

  bool directory_enabled_;
  /// Holder set of each socket, indexed by L2 id (same_socket_mask_[me] =
  /// the L2s on me's socket) — the nearest-holder partition.
  std::vector<HolderSet> same_socket_mask_;
  std::unordered_map<LineAddr, HolderSet> directory_;
  std::vector<L2Id> holder_scratch_;  ///< reused by snapshot_remote_holders
  DirectoryStats dir_stats_;
};

}  // namespace tlbmap

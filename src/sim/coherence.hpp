// MESI coherence across the shared L2 caches, over a broadcast snoop bus.
//
// Each L2 cache (one per pair of cores on Harpertown) is a peer on the bus.
// A miss broadcasts an address probe to every other L2; data is sourced
// cache-to-cache from the nearest holder when one exists (a *snoop
// transaction* in the paper's terminology), otherwise from memory. Writes
// acquire ownership MESI-style, invalidating every remote copy (the paper's
// *invalidations* counter). The interconnect prices each message by whether
// it crosses the socket boundary — this is precisely the cost structure a
// good thread mapping exploits.
#pragma once

#include <functional>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/interconnect.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class CoherenceDomain {
 public:
  /// Called whenever an L2 loses a line (remote invalidation or eviction),
  /// so the private L1s above it can be kept inclusive.
  using LineDropFn = std::function<void(L2Id, LineAddr)>;

  CoherenceDomain(const MachineConfig& config, const Topology& topology,
                  Interconnect& interconnect);

  /// Demand read reaching an L2 (after an L1 miss).
  /// Returns the extra latency beyond the core's L1 access.
  /// `memory_latency` is the DRAM cost if the line must come from memory
  /// (NUMA machines pass the home-node-dependent value).
  Cycles read(L2Id l2, LineAddr line, Cycles memory_latency,
              MachineStats& stats);
  Cycles read(L2Id l2, LineAddr line, MachineStats& stats) {
    return read(l2, line, interconnect_->memory_latency(), stats);
  }

  /// Demand write reaching an L2 (write-through from the L1). Store buffers
  /// hide the common-case latency; only coherence work (ownership upgrade,
  /// read-for-ownership) is charged.
  Cycles write(L2Id l2, LineAddr line, Cycles memory_latency,
               MachineStats& stats);
  Cycles write(L2Id l2, LineAddr line, MachineStats& stats) {
    return write(l2, line, interconnect_->memory_latency(), stats);
  }

  void set_line_drop_callback(LineDropFn fn) { on_line_drop_ = std::move(fn); }

  Cache& l2(L2Id id) { return l2s_[static_cast<std::size_t>(id)]; }
  const Cache& l2(L2Id id) const { return l2s_[static_cast<std::size_t>(id)]; }
  int num_l2() const { return static_cast<int>(l2s_.size()); }

  /// Drops every line from every L2 (between experiment repetitions).
  void flush();

 private:
  /// Index of the holder nearest to `me`, or -1 when no other L2 holds the
  /// line. Also records one probe message per remote L2 (broadcast snoop).
  L2Id probe(L2Id me, LineAddr line, MachineStats& stats);

  /// Inserts into `me`, handling an inclusive eviction (writeback if the
  /// victim was modified; L1 shootdown either way).
  void insert_line(L2Id me, LineAddr line, MesiState state,
                   MachineStats& stats);

  void drop(L2Id holder, LineAddr line);

  Cycles l2_latency_;
  Interconnect* interconnect_;
  std::vector<Cache> l2s_;
  LineDropFn on_line_drop_;
};

}  // namespace tlbmap

// Per-core Translation Lookaside Buffer model.
//
// This is the structure the paper's mechanism inspects: a small
// set-associative cache of the most recently translated virtual pages.
// Detection never needs the physical translation, only page-number matches
// across cores, so entries store virtual page numbers. The set-restricted
// search APIs mirror the paper's complexity argument: with a set-associative
// TLB, a detector compares only the ways of one set (Theta(associativity))
// instead of the whole TLB.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/config.hpp"
#include "sim/scan.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// One TLB entry (one way of one set).
struct TlbEntry {
  PageNum page = 0;
  bool valid = false;
  std::uint64_t lru_stamp = 0;
};

/// Set-associative TLB with true-LRU replacement.
class Tlb {
 public:
  explicit Tlb(const TlbConfig& config);

  /// Translation attempt: refreshes LRU on hit. Returns true on hit.
  bool lookup(PageNum page);

  /// Loads a page after a miss, evicting the set's LRU entry if needed.
  void insert(PageNum page);

  /// True if the page is cached; does not disturb LRU order. This is the
  /// probe a detector runs against *other* cores' TLBs (or their in-memory
  /// mirrors), so it must be side-effect free.
  bool contains(PageNum page) const;

  /// Drops one translation (page-table update shootdown).
  bool invalidate(PageNum page);

  /// Drops everything (context switch on architectures without ASIDs).
  void flush();

  std::size_t set_index(PageNum page) const { return page % num_sets_; }
  std::size_t num_sets() const { return num_sets_; }
  std::size_t ways() const { return ways_; }
  std::size_t capacity() const { return num_sets_ * ways_; }
  const TlbConfig& config() const { return config_; }

  /// All ways of one set, valid or not (the HM detector walks sets of two
  /// TLBs in lockstep; the SM detector probes a single set).
  std::span<const TlbEntry> set_entries(std::size_t set) const;

  /// The SoA tag mirror of one set / of the whole TLB: page numbers with
  /// kInvalidTag in invalid ways, set-major, dense. The HM detector's sweep
  /// reads these spans instead of striding through TlbEntry structs; the
  /// values always agree with set_entries() exactly.
  std::span<const std::uint64_t> set_tags(std::size_t set) const {
    return {tags_.data() + set * ways_, ways_};
  }
  std::span<const std::uint64_t> tags() const {
    return {tags_.data(), tags_.size()};
  }

  /// Number of valid entries (test/debug aid).
  std::size_t valid_entries() const;

  /// Visits every valid entry. Templated so the visitor inlines instead of
  /// going through a std::function thunk.
  template <typename Fn>
  void for_each_entry(Fn&& fn) const {
    for (const TlbEntry& e : entries_) {
      if (e.valid) fn(e);
    }
  }

 private:
  TlbEntry* find(PageNum page);

  TlbConfig config_;
  std::size_t num_sets_ = 0;
  std::size_t ways_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<TlbEntry> entries_;  ///< num_sets_ * ways_, set-major
  /// SoA mirror of entries_[i].page (kInvalidTag when invalid), maintained
  /// by insert/invalidate/flush; backs the hot lookup scan and the HM
  /// detector's sweep (scan.hpp).
  std::vector<std::uint64_t> tags_;
};

}  // namespace tlbmap

// Counters collected by a simulation run plus small statistics helpers
// (mean / standard deviation across repetitions, per-second rates).
//
// The counter names follow the paper's measurements: execution time,
// cache-line invalidations, snoop transactions and L2 misses (Figures 6-9,
// Tables IV and V), plus TLB statistics for Table III.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// All counters of one simulation run.
struct MachineStats {
  // Demand stream.
  std::uint64_t accesses = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;

  // TLB.
  std::uint64_t tlb_hits = 0;
  std::uint64_t tlb_misses = 0;

  // Caches.
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_accesses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;

  // Coherence (the paper's headline metrics).
  std::uint64_t invalidations = 0;       ///< remote cache lines invalidated
  std::uint64_t snoop_transactions = 0;  ///< cache-to-cache data transfers
  std::uint64_t writebacks = 0;
  std::uint64_t memory_fetches = 0;
  /// NUMA split of memory_fetches (UMA machines count everything local).
  std::uint64_t memory_fetches_local = 0;
  std::uint64_t memory_fetches_remote = 0;

  // Interconnect traffic, by locality.
  std::uint64_t intra_socket_messages = 0;
  std::uint64_t inter_socket_messages = 0;

  // Time.
  Cycles execution_cycles = 0;          ///< max thread finish time
  Cycles detection_overhead_cycles = 0; ///< detector cycles on the critical path

  // Detector bookkeeping (Table III).
  std::uint64_t detector_searches = 0;  ///< SM sampled searches / HM sweeps

  double tlb_miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(tlb_misses) / static_cast<double>(accesses);
  }
  double overhead_fraction() const {
    return execution_cycles == 0
               ? 0.0
               : static_cast<double>(detection_overhead_cycles) /
                     static_cast<double>(execution_cycles);
  }

  MachineStats& operator+=(const MachineStats& o);

  /// Field-wise equality over every counter. The differential tests lean on
  /// this to prove the engine fast paths (coherence directory, translation
  /// memo, heap scheduler) change no observable result.
  bool operator==(const MachineStats&) const = default;
};

/// Mean and (sample) standard deviation of a sequence.
struct Summary {
  double mean = 0.0;
  double stddev = 0.0;
  std::size_t n = 0;

  /// Standard deviation as a fraction of the mean (the paper's Table V).
  double rel_stddev() const { return mean == 0.0 ? 0.0 : stddev / mean; }
};

Summary summarize(std::span<const double> values);

/// Seconds for a cycle count at the simulated clock (Xeon E5405: 2.33 GHz;
/// converts Table IV counters into per-second rates).
inline constexpr double kClockHz = 2.33e9;

inline double cycles_to_seconds(Cycles c) {
  return static_cast<double>(c) / kClockHz;
}

/// counter / seconds; 0 when the run took no time.
double per_second(std::uint64_t counter, Cycles execution_cycles);

/// Publishes every MachineStats counter into `registry` under the
/// "sim.<field>" namespace with the given labels (typically the pipeline
/// phase and mechanism). Counters accumulate, so repeated runs with the same
/// labels sum up — MachineStats stays the per-run view, the registry the
/// cross-run aggregate.
void publish_stats(obs::MetricsRegistry& registry, const MachineStats& stats,
                   const obs::Labels& labels);

}  // namespace tlbmap

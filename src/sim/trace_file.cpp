#include "sim/trace_file.hpp"

#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

#include "core/io.hpp"

namespace tlbmap {

namespace {

constexpr std::uint8_t kMagic[4] = {'T', 'L', 'B', 'T'};
constexpr std::uint8_t kVersion = 1;

// Record headers.
constexpr std::uint8_t kBarrier = 0x00;
constexpr std::uint8_t kEnd = 0x01;
constexpr std::uint8_t kAccess = 0x02;          // bit 1
constexpr std::uint8_t kFlagWrite = 0x04;       // bit 2
constexpr std::uint8_t kFlagHasGap = 0x08;      // bit 3
constexpr std::uint8_t kFlagAddrDelta = 0x10;   // bit 4

std::uint64_t zigzag_encode(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t zigzag_decode(std::uint64_t v) {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

std::string format_trace_error(const std::string& what,
                               std::size_t byte_offset,
                               std::uint64_t record_index) {
  std::ostringstream msg;
  msg << what << " at byte " << byte_offset << ", record " << record_index;
  return msg.str();
}

}  // namespace

TraceFormatError::TraceFormatError(ErrorCode code, const std::string& what,
                                   std::size_t byte_offset,
                                   std::uint64_t record_index)
    : std::invalid_argument(
          format_trace_error(what, byte_offset, record_index)),
      code_(code),
      byte_offset_(byte_offset),
      record_index_(record_index) {}

TraceWriter::TraceWriter() {
  bytes_.assign(kMagic, kMagic + 4);
  bytes_.push_back(kVersion);
}

void TraceWriter::put_varint(std::uint64_t value) {
  while (value >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(value) | 0x80);
    value >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(value));
}

void TraceWriter::write(const TraceEvent& event) {
  if (finished_) {
    throw std::logic_error("TraceWriter::write after finish");
  }
  switch (event.kind) {
    case TraceEvent::Kind::kBarrier:
      bytes_.push_back(kBarrier);
      break;
    case TraceEvent::Kind::kEnd:
      finish();
      return;
    case TraceEvent::Kind::kAccess: {
      std::uint8_t header = kAccess;
      if (event.access.type == AccessType::kWrite) header |= kFlagWrite;
      if (event.access.compute_gap != 0) header |= kFlagHasGap;
      const std::int64_t delta =
          static_cast<std::int64_t>(event.access.addr) -
          static_cast<std::int64_t>(last_addr_);
      // Delta encoding wins for sequential walks; fall back to absolute
      // when the zigzagged delta would be larger than the address.
      const std::uint64_t zz = zigzag_encode(delta);
      const bool use_delta = zz < event.access.addr;
      if (use_delta) header |= kFlagAddrDelta;
      bytes_.push_back(header);
      put_varint(use_delta ? zz : event.access.addr);
      if (event.access.compute_gap != 0) put_varint(event.access.compute_gap);
      last_addr_ = event.access.addr;
      break;
    }
  }
  ++events_;
}

std::vector<std::uint8_t> TraceWriter::finish() {
  if (!finished_) {
    bytes_.push_back(kEnd);
    finished_ = true;
  }
  return bytes_;
}

TraceReader::TraceReader(std::vector<std::uint8_t> bytes)
    : bytes_(std::move(bytes)) {
  if (bytes_.size() < 5) {
    throw TraceFormatError(ErrorCode::kTruncatedTrace,
                           "TraceReader: bad header (buffer too short)",
                           bytes_.size(), 0);
  }
  if (!std::equal(kMagic, kMagic + 4, bytes_.begin())) {
    throw TraceFormatError(ErrorCode::kMalformedTrace,
                           "TraceReader: bad header (magic mismatch)", 0, 0);
  }
  if (bytes_[4] != kVersion) {
    throw TraceFormatError(
        ErrorCode::kMalformedTrace,
        "TraceReader: bad header (unsupported version " +
            std::to_string(static_cast<int>(bytes_[4])) + ")",
        4, 0);
  }
  pos_ = 5;
}

std::uint64_t TraceReader::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  while (pos_ < bytes_.size()) {
    const std::uint8_t byte = bytes_[pos_++];
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
    if (shift > 63) {
      throw TraceFormatError(ErrorCode::kMalformedTrace,
                             "TraceReader: overlong varint", pos_, records_);
    }
  }
  throw TraceFormatError(ErrorCode::kTruncatedTrace,
                         "TraceReader: truncated varint", pos_, records_);
}

TraceEvent TraceReader::next() {
  if (done_ || pos_ >= bytes_.size()) return TraceEvent::make_end();
  const std::size_t record_start = pos_;
  const std::uint8_t header = bytes_[pos_++];
  ++records_;
  if (header == kBarrier) return TraceEvent::make_barrier();
  if (header == kEnd) {
    done_ = true;
    return TraceEvent::make_end();
  }
  if ((header & kAccess) == 0) {
    throw TraceFormatError(
        ErrorCode::kMalformedTrace,
        "TraceReader: bad record header 0x" + [&] {
          std::ostringstream hex;
          hex << std::hex << static_cast<int>(header);
          return hex.str();
        }(),
        record_start, records_ - 1);
  }
  const std::uint64_t raw = get_varint();
  VirtAddr addr;
  if ((header & kFlagAddrDelta) != 0) {
    addr = static_cast<VirtAddr>(static_cast<std::int64_t>(last_addr_) +
                                 zigzag_decode(raw));
  } else {
    addr = raw;
  }
  last_addr_ = addr;
  std::uint32_t gap = 0;
  if ((header & kFlagHasGap) != 0) {
    const std::uint64_t raw_gap = get_varint();
    // Oversized gap: the writer emits at most 32 bits, so a wider value is
    // stream damage. Truncating it silently (the pre-hardening behaviour)
    // would replay a corrupt trace as a subtly different workload.
    if (raw_gap > 0xffffffffull) {
      throw TraceFormatError(ErrorCode::kCorruptTrace,
                             "TraceReader: compute gap out of range", pos_,
                             records_ - 1);
    }
    gap = static_cast<std::uint32_t>(raw_gap);
  }
  const AccessType type = (header & kFlagWrite) != 0 ? AccessType::kWrite
                                                     : AccessType::kRead;
  return TraceEvent::make_access(addr, type, gap);
}

Expected<TraceStats> validate_trace(const std::vector<std::uint8_t>& bytes) {
  TraceStats stats;
  stats.bytes = bytes.size();
  std::size_t pos = 0;
  std::uint64_t record = 0;
  auto fail = [&](ErrorCode code, const std::string& what,
                  std::size_t offset) {
    return Error{code, format_trace_error(what, offset, record)};
  };
  if (bytes.size() < 5) {
    return fail(ErrorCode::kTruncatedTrace,
                "validate_trace: bad header (buffer too short)",
                bytes.size());
  }
  if (!std::equal(kMagic, kMagic + 4, bytes.begin())) {
    return fail(ErrorCode::kMalformedTrace,
                "validate_trace: bad header (magic mismatch)", 0);
  }
  if (bytes[4] != kVersion) {
    return fail(ErrorCode::kMalformedTrace,
                "validate_trace: bad header (unsupported version " +
                    std::to_string(static_cast<int>(bytes[4])) + ")",
                4);
  }
  pos = 5;
  // read_varint fills *value and returns an empty optional on success, else
  // the structured failure.
  auto read_varint = [&](std::uint64_t* value) -> std::optional<Error> {
    *value = 0;
    int shift = 0;
    while (pos < bytes.size()) {
      const std::uint8_t byte = bytes[pos++];
      *value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return std::nullopt;
      shift += 7;
      if (shift > 63) {
        return fail(ErrorCode::kMalformedTrace,
                    "validate_trace: overlong varint", pos);
      }
    }
    return fail(ErrorCode::kTruncatedTrace, "validate_trace: truncated varint",
                pos);
  };
  while (pos < bytes.size()) {
    const std::size_t record_start = pos;
    const std::uint8_t header = bytes[pos++];
    if (header == kBarrier) {
      ++stats.barriers;
      ++stats.records;
      ++record;
      continue;
    }
    if (header == kEnd) {
      ++stats.records;
      stats.explicit_end = true;
      if (pos != bytes.size()) {
        return fail(ErrorCode::kMalformedTrace,
                    "validate_trace: trailing bytes after end marker", pos);
      }
      return stats;
    }
    if ((header & kAccess) == 0) {
      std::ostringstream hex;
      hex << std::hex << static_cast<int>(header);
      return fail(ErrorCode::kMalformedTrace,
                  "validate_trace: bad record header 0x" + hex.str(),
                  record_start);
    }
    std::uint64_t value = 0;
    if (auto err = read_varint(&value)) return *err;
    if ((header & kFlagHasGap) != 0) {
      const std::size_t gap_at = pos;
      if (auto err = read_varint(&value)) return *err;
      if (value > 0xffffffffull) {
        return fail(ErrorCode::kCorruptTrace,
                    "validate_trace: compute gap out of range", gap_at);
      }
    }
    ++stats.accesses;
    ++stats.records;
    ++record;
  }
  // EOF without an end marker replays fine (the reader synthesises kEnd),
  // but a validator flags it: a writer always emits 0x01, so its absence
  // means the tail of the file was lost.
  return fail(ErrorCode::kTruncatedTrace,
              "validate_trace: missing end marker (file truncated)", pos);
}

void TraceStreamDecoder::feed(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return;
  // Compact once the decoded prefix dominates the buffer, so a long-lived
  // session holds only the undecoded tail (the service's memory accounting
  // charges buffered_bytes(), which this keeps honest).
  if (head_ > 4096 && head_ > buffer_.size() - head_) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(head_));
    head_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + size);
}

Expected<TraceStreamDecoder::Status> TraceStreamDecoder::next(
    TraceEvent* out) {
  if (failed_) return *failed_;
  if (done_) return Status::kEnd;
  auto fail = [&](ErrorCode code, const std::string& what,
                  std::uint64_t offset) -> Error {
    failed_ = Error{code, format_trace_error(what, offset, records_)};
    return *failed_;
  };
  if (!header_done_) {
    if (buffer_.size() - head_ < 5) return Status::kNeedMore;
    if (!std::equal(kMagic, kMagic + 4,
                    buffer_.begin() + static_cast<std::ptrdiff_t>(head_))) {
      return fail(ErrorCode::kMalformedTrace,
                  "TraceStreamDecoder: bad header (magic mismatch)",
                  consumed_);
    }
    if (buffer_[head_ + 4] != kVersion) {
      return fail(
          ErrorCode::kMalformedTrace,
          "TraceStreamDecoder: bad header (unsupported version " +
              std::to_string(static_cast<int>(buffer_[head_ + 4])) + ")",
          consumed_ + 4);
    }
    head_ += 5;
    consumed_ += 5;
    header_done_ = true;
  }
  // Decode against a local cursor; nothing is consumed until the whole
  // record fits, so a fragment boundary inside a record is invisible.
  std::size_t p = head_;
  if (p >= buffer_.size()) return Status::kNeedMore;
  const std::uint64_t record_offset = consumed_;
  const std::uint8_t header = buffer_[p++];
  enum class Varint { kOk, kNeedMore, kOverlong };
  auto get_varint = [&](std::uint64_t* value) {
    *value = 0;
    int shift = 0;
    while (p < buffer_.size()) {
      const std::uint8_t byte = buffer_[p++];
      *value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
      if ((byte & 0x80) == 0) return Varint::kOk;
      shift += 7;
      if (shift > 63) return Varint::kOverlong;
    }
    return Varint::kNeedMore;
  };
  auto varint_offset = [&]() {
    return consumed_ + static_cast<std::uint64_t>(p - head_);
  };
  TraceEvent event;
  if (header == kBarrier) {
    event = TraceEvent::make_barrier();
  } else if (header == kEnd) {
    done_ = true;
    head_ = p;
    ++consumed_;
    ++records_;
    if (out != nullptr) *out = TraceEvent::make_end();
    return Status::kEnd;
  } else if ((header & kAccess) == 0) {
    std::ostringstream hex;
    hex << std::hex << static_cast<int>(header);
    return fail(ErrorCode::kMalformedTrace,
                "TraceStreamDecoder: bad record header 0x" + hex.str(),
                record_offset);
  } else {
    std::uint64_t raw = 0;
    switch (get_varint(&raw)) {
      case Varint::kNeedMore: return Status::kNeedMore;
      case Varint::kOverlong:
        return fail(ErrorCode::kMalformedTrace,
                    "TraceStreamDecoder: overlong varint", varint_offset());
      case Varint::kOk: break;
    }
    VirtAddr addr;
    if ((header & kFlagAddrDelta) != 0) {
      addr = static_cast<VirtAddr>(static_cast<std::int64_t>(last_addr_) +
                                   zigzag_decode(raw));
    } else {
      addr = raw;
    }
    std::uint32_t gap = 0;
    if ((header & kFlagHasGap) != 0) {
      std::uint64_t raw_gap = 0;
      switch (get_varint(&raw_gap)) {
        case Varint::kNeedMore: return Status::kNeedMore;
        case Varint::kOverlong:
          return fail(ErrorCode::kMalformedTrace,
                      "TraceStreamDecoder: overlong varint", varint_offset());
        case Varint::kOk: break;
      }
      if (raw_gap > 0xffffffffull) {
        return fail(ErrorCode::kCorruptTrace,
                    "TraceStreamDecoder: compute gap out of range",
                    varint_offset());
      }
      gap = static_cast<std::uint32_t>(raw_gap);
    }
    // Commit only now: last_addr_ advances with the record, never before.
    last_addr_ = addr;
    event = TraceEvent::make_access(
        addr, (header & kFlagWrite) != 0 ? AccessType::kWrite
                                         : AccessType::kRead,
        gap);
  }
  consumed_ += static_cast<std::uint64_t>(p - head_);
  head_ = p;
  ++records_;
  if (out != nullptr) *out = event;
  return Status::kEvent;
}

TraceStreamDecoder::State TraceStreamDecoder::state() const {
  State s;
  s.pending.assign(buffer_.begin() + static_cast<std::ptrdiff_t>(head_),
                   buffer_.end());
  s.consumed = consumed_;
  s.last_addr = last_addr_;
  s.records = records_;
  s.header_done = header_done_;
  s.done = done_;
  return s;
}

void TraceStreamDecoder::restore(const State& state) {
  buffer_ = state.pending;
  head_ = 0;
  consumed_ = state.consumed;
  last_addr_ = state.last_addr;
  records_ = state.records;
  header_done_ = state.header_done;
  done_ = state.done;
  failed_.reset();
}

std::vector<std::vector<std::uint8_t>> record_workload(
    const Workload& workload, std::uint64_t seed) {
  std::vector<std::vector<std::uint8_t>> buffers;
  buffers.reserve(static_cast<std::size_t>(workload.num_threads()));
  for (ThreadId t = 0; t < workload.num_threads(); ++t) {
    TraceWriter writer;
    const auto stream = workload.stream(t, seed);
    for (;;) {
      const TraceEvent ev = stream->next();
      writer.write(ev);
      if (ev.kind == TraceEvent::Kind::kEnd) break;
    }
    buffers.push_back(writer.finish());
  }
  return buffers;
}

RecordedWorkload::RecordedWorkload(
    std::vector<std::vector<std::uint8_t>> buffers, std::string name)
    : buffers_(std::move(buffers)), name_(std::move(name)) {
  if (buffers_.empty()) {
    throw std::invalid_argument("RecordedWorkload: no threads");
  }
}

std::unique_ptr<ThreadStream> RecordedWorkload::stream(
    ThreadId t, std::uint64_t /*seed*/) const {
  return std::make_unique<TraceReader>(
      buffers_[static_cast<std::size_t>(t)]);
}

std::uint64_t RecordedWorkload::accesses_of(ThreadId t) const {
  TraceReader reader(buffers_[static_cast<std::size_t>(t)]);
  std::uint64_t count = 0;
  for (;;) {
    const TraceEvent ev = reader.next();
    if (ev.kind == TraceEvent::Kind::kEnd) break;
    if (ev.kind == TraceEvent::Kind::kAccess) ++count;
  }
  return count;
}

std::size_t RecordedWorkload::bytes() const {
  std::size_t total = 0;
  for (const auto& b : buffers_) total += b.size();
  return total;
}

void save_recording(const std::vector<std::vector<std::uint8_t>>& buffers,
                    const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  for (std::size_t t = 0; t < buffers.size(); ++t) {
    std::ostringstream name;
    name << "thread_" << t << ".tlbt";
    // atomic_write_file (DESIGN.md Sec. 12): a crash mid-save leaves either
    // a complete per-thread trace or none — never a truncated .tlbt for
    // try_load_recording to reject later.
    const Expected<void> written = atomic_write_file(
        dir / name.str(),
        std::string_view(reinterpret_cast<const char*>(buffers[t].data()),
                         buffers[t].size()));
    if (!written) {
      throw std::runtime_error("save_recording: " + written.error().message);
    }
  }
}

Expected<std::vector<std::vector<std::uint8_t>>> try_load_recording(
    const std::filesystem::path& dir) {
  std::vector<std::vector<std::uint8_t>> buffers;
  for (std::size_t t = 0;; ++t) {
    std::ostringstream name;
    name << "thread_" << t << ".tlbt";
    const std::filesystem::path file = dir / name.str();
    std::error_code ec;
    if (!std::filesystem::exists(file, ec) || ec) break;
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      return Error{ErrorCode::kIoError,
                   "load_recording: cannot open " + file.string()};
    }
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    Expected<TraceStats> checked = validate_trace(bytes);
    if (!checked) {
      return Error{checked.error().code,
                   file.string() + ": " + checked.error().message};
    }
    buffers.push_back(std::move(bytes));
  }
  if (buffers.empty()) {
    return Error{ErrorCode::kIoError,
                 "load_recording: no thread files in " + dir.string()};
  }
  return buffers;
}

std::vector<std::vector<std::uint8_t>> load_recording(
    const std::filesystem::path& dir) {
  Expected<std::vector<std::vector<std::uint8_t>>> loaded =
      try_load_recording(dir);
  if (!loaded) throw std::runtime_error(loaded.error().message);
  return std::move(loaded.value());
}

}  // namespace tlbmap

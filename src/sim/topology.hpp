// Machine topology: which cores share an L2, which share a socket.
//
// Mirrors the paper's Figure 3 machine: a tree with sockets at the top,
// L2 groups below them, and cores at the leaves. The hierarchical mapper
// consumes the per-level arities; the coherence model consumes the
// share_l2 / share_socket predicates to price transactions.
#pragma once

#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// Identifies one L2 cache (shared by `cores_per_l2` cores).
using L2Id = int;
/// Identifies one socket.
using SocketId = int;

class Topology {
 public:
  explicit Topology(const MachineConfig& config);

  int num_cores() const { return num_cores_; }
  int num_l2() const { return num_l2_; }
  int num_sockets() const { return num_sockets_; }
  int cores_per_l2() const { return cores_per_l2_; }
  int cores_per_socket() const { return cores_per_socket_; }
  int l2s_per_socket() const { return cores_per_socket_ / cores_per_l2_; }

  L2Id l2_of(CoreId core) const { return core / cores_per_l2_; }
  SocketId socket_of(CoreId core) const { return core / cores_per_socket_; }
  SocketId socket_of_l2(L2Id l2) const {
    return l2 / (cores_per_socket_ / cores_per_l2_);
  }

  bool share_l2(CoreId a, CoreId b) const { return l2_of(a) == l2_of(b); }
  bool share_socket(CoreId a, CoreId b) const {
    return socket_of(a) == socket_of(b);
  }

  /// Cores attached to one L2, in id order.
  std::vector<CoreId> cores_of_l2(L2Id l2) const;

  /// Socket-interconnect hops between two sockets: 0 for the same socket,
  /// 1 for any distinct pair on a fully-connected machine
  /// (socket_mesh_cols == 0), else the Manhattan distance on the row-major
  /// socket mesh. This is the non-binary far dimension of the cost model.
  int socket_hops(SocketId a, SocketId b) const;

  /// Hop distance between cores: 0 same core, 1 same L2, 2 same socket,
  /// 2 + socket_hops across sockets — which is the historical 3 on
  /// fully-connected machines and grows with mesh distance otherwise.
  /// The mapping cost metric (mapping_cost) and the mappers consume it.
  int distance(CoreId a, CoreId b) const;

  /// Columns of the socket mesh (0 = fully connected).
  int socket_mesh_cols() const { return socket_mesh_cols_; }

  /// Group arities from the leaves up, for the hierarchical mapper.
  /// Harpertown: {2 cores per L2, 2 L2s per socket, 2 sockets}.
  std::vector<int> level_arities() const;

 private:
  int num_cores_;
  int num_l2_;
  int num_sockets_;
  int cores_per_l2_;
  int cores_per_socket_;
  int socket_mesh_cols_;
};

}  // namespace tlbmap

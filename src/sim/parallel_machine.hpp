// Epoch-parallel simulator core (DESIGN.md Sec. 15): the engine behind
// Machine::RunConfig::machine_workers.
//
// The serial reference loop in machine.cpp advances one global event at a
// time, which caps a 256-core coherence-bound run at single-thread speed.
// This engine shards the event loop by L2 domain — every core, private L1,
// TLB and the shared L2 of one domain belong to exactly one shard, and so
// do the threads pinned to those cores. Shards advance concurrently in
// bounded *epochs* (at most RunConfig::epoch_events issued events per shard
// per epoch) against a frozen epoch-start view of all remote caches:
//
//   - Reads and writes hit the shard's own TLBs/L1s/L2 live, exactly as in
//     the serial loop.
//   - Cross-domain coherence (cache-to-cache transfers, downgrades,
//     ownership invalidations) is *priced and counted at issue time* from
//     the frozen view {holder set, modified set} per line, and the remote
//     mutations are queued as per-victim ops.
//   - First touches of unmapped pages yield the thread for the rest of its
//     epoch and queue a page claim instead of allocating (frame numbers
//     feed cache-set indices, so allocation order is simulated semantics).
//
// At the epoch commit the coordinator (a) applies the queued ops, fanned
// out by victim domain — the per-(line, victim) outcome is order-
// independent: invalidation beats downgrade and both are residency-checked
// no-ops when the victim already evicted the line; (b) reconciles the
// frozen view from the touched (domain, line) pairs; (c) grants page
// claims in canonical (clock, thread-id) order; (d) releases barriers and
// runs the MigrationPolicy exactly like the serial loop.
//
// Every shard's epoch work is therefore a pure function of the epoch-start
// global state and its own threads, and the commit is a canonical serial
// reduction — so the result is bit-identical for every worker count, and
// `machine_workers = 1` *is* the deterministic serial reference of this
// semantics. The epoch model is deliberately weaker than the serial loop's
// per-event global interleaving (two domains can each believe they won the
// same line within one epoch); epoch_events bounds that staleness and is
// part of the simulated semantics.
//
// Not supported here: MachineObserver hooks (detection runs use the serial
// loop) and trace streams that share hidden mutable state across threads
// (the NPB/synthetic generators are independent per thread).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/expected.hpp"
#include "obs/obs.hpp"
#include "sim/holder_set.hpp"
#include "sim/machine.hpp"
#include "sim/page_table.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class WorkerPool;

class EpochEngine {
 public:
  /// Entered from Machine::try_run with the placement validated and
  /// applied (thread_on_core_ filled) and flush_first already honoured.
  EpochEngine(Machine& machine, const Machine::RunConfig& config,
              std::vector<std::unique_ptr<ThreadStream>>& streams);

  Expected<MachineStats> run();

 private:
  /// Engine-private copy of MemoryHierarchy's translation memo. The engine
  /// mutates per-core TLBs itself, so it must own the "nothing touched
  /// this TLB since the core's last access" bookkeeping too.
  struct Memo {
    PageNum page = 0;
    PhysAddr frame_base = 0;
    Cycles memory_latency = 0;
    bool remote_home = false;
    bool valid = false;
  };

  struct ThreadCtx {
    ThreadStream* stream = nullptr;
    Cycles clock = 0;
    bool at_barrier = false;
    bool done = false;
    /// Yielded on an unmapped page this epoch; cleared when the commit
    /// grants the claims.
    bool waiting_fault = false;
    /// The yielded access is re-issued (not re-pulled) next epoch.
    bool has_pending = false;
    TraceEvent pending{};
  };

  /// Queued mutation of a remote L2, applied at the commit.
  struct RemoteOp {
    LineAddr line = 0;
    bool invalidate = false;  ///< false = downgrade to Shared
  };

  /// First touch of an unmapped page, granted at the commit in canonical
  /// (clock, tid) order.
  struct PageClaim {
    Cycles clock = 0;
    ThreadId tid = 0;
    PageNum page = 0;
    int home = 0;
  };

  /// Epoch-start view of one line's residency across all L2 domains.
  struct FrozenLine {
    HolderSet holders;
    HolderSet modified;  ///< subset of holders in Modified state
  };

  struct Shard {
    L2Id domain = 0;
    std::vector<ThreadId> threads;  ///< ascending (the scan's tie-break)
    MachineStats stats;
    CoherenceDomain::DirectoryStats dir_stats;
    /// ops_by_victim[v] = this shard's queued mutations of domain v this
    /// epoch. Allocated lazily on first use; only buckets named in
    /// dirty_victims are non-empty between commits.
    std::vector<std::vector<RemoteOp>> ops_by_victim;
    std::vector<L2Id> dirty_victims;
    /// Own-domain lines whose residency or MESI state changed this epoch.
    std::vector<LineAddr> touched;
    std::vector<PageClaim> claims;
    /// Fast (non-deterministic) mode only: shard-local mirror of page
    /// table entries, so epoch execution never reads the global table
    /// outside the allocation lock.
    std::unordered_map<PageNum, PageTable::Entry> page_cache;
    std::uint64_t epoch_events = 0;
    std::uint64_t total_events = 0;
  };

  void run_shard_epoch(Shard& shard);
  /// False when the thread yielded on an unmapped page (claim queued).
  bool execute_access(Shard& shard, ThreadId tid, ThreadCtx& thread,
                      const TraceEvent& ev);
  Cycles domain_read(Shard& shard, LineAddr line, Cycles memory_latency,
                     bool remote_home);
  Cycles domain_write(Shard& shard, LineAddr line, Cycles memory_latency,
                      bool remote_home);
  void local_insert(Shard& shard, LineAddr line, MesiState state);
  void drop_domain_l1s(L2Id domain, LineAddr line);
  void queue_op(Shard& shard, L2Id victim, LineAddr line, bool invalidate);

  const FrozenLine* frozen_line(LineAddr line) const;
  /// Nearest frozen holder, matching the directory probe's tie-break:
  /// lowest-indexed holder on me's socket, else lowest overall; -1 if none.
  L2Id nearest_holder(L2Id me, const FrozenLine& frozen) const;

  void apply_victim_ops(L2Id victim);
  void reconcile(L2Id domain, std::vector<LineAddr>& lines);
  void commit_claims();
  bool release_barrier_if_ready();
  void apply_migration(const std::vector<CoreId>& next);
  void reshard();
  /// Restores shared machine state for whoever runs next (serial or
  /// parallel): live directory rebuilt from cache contents, hierarchy
  /// memos dropped, per-shard directory bookkeeping folded in. Called on
  /// every exit path.
  void finish_state();

  Machine* machine_;
  const Machine::RunConfig* config_;
  MemoryHierarchy* hierarchy_;
  const Topology* topology_;
  Interconnect* interconnect_;
  CoherenceDomain* coherence_;
  PageTable* page_table_;

  int page_shift_ = 0;
  VirtAddr page_offset_mask_ = 0;
  int line_shift_ = 0;
  int num_threads_ = 0;
  int num_domains_ = 0;
  Cycles l1_latency_ = 0;
  Cycles l2_latency_ = 0;
  Cycles miss_penalty_ = 0;
  Cycles base_memory_latency_ = 0;
  Cycles remote_extra_ = 0;
  bool numa_ = false;
  bool interleave_ = false;
  bool directory_enabled_ = false;

  std::vector<ThreadCtx> threads_;
  std::vector<CoreId> placement_;
  std::vector<Memo> memos_;            ///< per core
  std::vector<Shard> shards_;          ///< one per L2 domain
  std::vector<std::size_t> active_shards_;  ///< domains with threads
  std::vector<HolderSet> socket_mask_;      ///< per L2: L2s on its socket
  std::unordered_map<LineAddr, FrozenLine> frozen_;
  std::vector<std::vector<LineAddr>> commit_touched_;  ///< per victim
  std::vector<char> victim_dirty_;          ///< commit scratch
  std::vector<L2Id> victims_scratch_;
  std::vector<PageClaim> claims_scratch_;
  std::mutex page_mutex_;  ///< fast mode first-touch allocation

  int live_ = 0;
  int barrier_count_ = 0;
  CoherenceDomain::DirectoryStats dir_sum_;
  std::uint64_t events_total_ = 0;
  std::uint64_t epochs_ = 0;
  std::uint64_t stall_epochs_ = 0;
  std::optional<Error> fatal_;
};

}  // namespace tlbmap

// Per-core view of the memory system: TLB -> private L1 -> shared L2 (MESI)
// -> memory. Composes the component models and keeps the L1s inclusive with
// respect to their L2 via the coherence domain's line-drop callback.
//
// Only data accesses are modelled: the paper notes (Sec. III-A1) that
// instruction fetches are irrelevant to mapping because instructions are
// effectively read-only after load.
#pragma once

#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/coherence.hpp"
#include "sim/config.hpp"
#include "sim/interconnect.hpp"
#include "sim/page_table.hpp"
#include "sim/stats.hpp"
#include "sim/tlb.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class MemoryHierarchy {
 public:
  explicit MemoryHierarchy(const MachineConfig& config);

  /// What one access did; the machine feeds `tlb_miss`/`page` to detectors.
  struct AccessInfo {
    Cycles latency = 0;
    bool tlb_miss = false;
    PageNum page = 0;
  };

  /// Runs one data access issued by `core` through TLB, L1 and L2/coherence.
  AccessInfo access(CoreId core, VirtAddr addr, AccessType type,
                    MachineStats& stats);

  /// Engine fast paths (same-page translation memo, L2 presence check before
  /// the sibling-L1 shootdown). Outcomes and statistics are bit-identical
  /// either way; the switch exists so the differential tests can prove it.
  void set_fast_path_enabled(bool enabled) { fast_path_ = enabled; }
  bool fast_path_enabled() const { return fast_path_; }

  const MachineConfig& config() const { return config_; }
  const Topology& topology() const { return topology_; }
  Tlb& tlb(CoreId core) { return tlbs_[static_cast<std::size_t>(core)]; }
  const Tlb& tlb(CoreId core) const {
    return tlbs_[static_cast<std::size_t>(core)];
  }
  Cache& l1(CoreId core) { return l1s_[static_cast<std::size_t>(core)]; }
  CoherenceDomain& coherence() { return coherence_; }
  PageTable& page_table() { return page_table_; }
  Interconnect& interconnect() { return interconnect_; }

  /// Clears all caches and TLBs (between repetitions); the page table is
  /// kept, since physical placement would survive on a real machine too.
  void flush_caches();

  /// Drops every core's translation memo without touching caches. The
  /// epoch-parallel engine keeps its own memos and mutates the TLBs
  /// directly, which silently breaks the "nothing touched this core's TLB
  /// since its last access" premise of the memos here — it calls this at
  /// end of run so a subsequent serial run re-derives them.
  void invalidate_memos() {
    for (TranslationMemo& memo : memos_) memo.valid = false;
  }

 private:
  /// Memo of a core's most recent translation. Between two consecutive
  /// accesses by the same core nothing touches that core's TLB, so a
  /// same-page repeat is a guaranteed hit on the MRU entry and the whole
  /// page_of/lookup/frame_of/home_of chain can be skipped. Skipping the MRU
  /// stamp refresh preserves relative LRU order, so future evictions are
  /// unchanged. Reset by flush_caches().
  struct TranslationMemo {
    PageNum page = 0;
    PhysAddr frame_base = 0;  ///< frame_of(page) << page_shift
    Cycles memory_latency = 0;
    bool remote_home = false;
    bool valid = false;
  };

  MachineConfig config_;
  Topology topology_;
  Interconnect interconnect_;
  PageTable page_table_;
  std::vector<Tlb> tlbs_;
  std::vector<Cache> l1s_;
  CoherenceDomain coherence_;
  int line_shift_;
  std::vector<TranslationMemo> memos_;
  bool fast_path_ = true;
};

}  // namespace tlbmap

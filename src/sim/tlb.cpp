#include "sim/tlb.hpp"

#include <algorithm>

namespace tlbmap {

Tlb::Tlb(const TlbConfig& config) : config_(config) {
  // Validate before deriving geometry: num_sets() divides by `ways`.
  config_.validate();
  num_sets_ = config_.num_sets();
  ways_ = config_.ways;
  entries_.resize(num_sets_ * ways_);
  tags_.assign(num_sets_ * ways_, kInvalidTag);
}

TlbEntry* Tlb::find(PageNum page) {
  TlbEntry* base = entries_.data() + set_index(page) * ways_;
  if (simd_scan_enabled()) {
    const int w =
        scan_tags(tags_.data() + set_index(page) * ways_, ways_, page);
    return w < 0 ? nullptr : &base[w];
  }
  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].page == page) return &base[w];
  }
  return nullptr;
}

bool Tlb::lookup(PageNum page) {
  if (TlbEntry* e = find(page)) {
    e->lru_stamp = ++clock_;
    return true;
  }
  return false;
}

void Tlb::insert(PageNum page) {
  if (TlbEntry* e = find(page)) {
    e->lru_stamp = ++clock_;
    return;
  }
  TlbEntry* base = entries_.data() + set_index(page) * ways_;
  TlbEntry* victim = base;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = &base[w];
      break;
    }
    if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
  }
  victim->page = page;
  victim->valid = true;
  victim->lru_stamp = ++clock_;
  tags_[static_cast<std::size_t>(victim - entries_.data())] = page;
}

bool Tlb::contains(PageNum page) const {
  return const_cast<Tlb*>(this)->find(page) != nullptr;
}

bool Tlb::invalidate(PageNum page) {
  if (TlbEntry* e = find(page)) {
    e->valid = false;
    tags_[static_cast<std::size_t>(e - entries_.data())] = kInvalidTag;
    return true;
  }
  return false;
}

void Tlb::flush() {
  std::fill(entries_.begin(), entries_.end(), TlbEntry{});
  std::fill(tags_.begin(), tags_.end(), kInvalidTag);
  clock_ = 0;
}

std::span<const TlbEntry> Tlb::set_entries(std::size_t set) const {
  return {entries_.data() + set * ways_, ways_};
}

std::size_t Tlb::valid_entries() const {
  return static_cast<std::size_t>(
      std::count_if(entries_.begin(), entries_.end(),
                    [](const TlbEntry& e) { return e.valid; }));
}

}  // namespace tlbmap

// Set-associative cache model with true-LRU replacement and MESI line states.
//
// The same structure backs the private L1 caches (which only use the
// valid/invalid distinction) and the shared L2 caches (whose states drive the
// snoop-bus coherence protocol in coherence.cpp). Timing and statistics are
// kept outside, in MemoryHierarchy, so the container stays a pure data
// structure that is easy to test exhaustively.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/config.hpp"
#include "sim/scan.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// MESI coherence state of one cache line.
enum class MesiState : std::uint8_t {
  kInvalid,
  kShared,
  kExclusive,
  kModified,
};

inline const char* to_string(MesiState s) {
  switch (s) {
    case MesiState::kInvalid: return "I";
    case MesiState::kShared: return "S";
    case MesiState::kExclusive: return "E";
    case MesiState::kModified: return "M";
  }
  return "?";
}

/// One way of one set.
struct CacheLine {
  LineAddr addr = 0;
  MesiState state = MesiState::kInvalid;
  std::uint64_t lru_stamp = 0;  ///< larger == more recently used

  bool valid() const { return state != MesiState::kInvalid; }
};

/// Generic set-associative cache keyed by line address.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Line evicted to make room for an insert (absent when a set had a free
  /// or invalid way).
  struct Eviction {
    LineAddr addr = 0;
    MesiState state = MesiState::kInvalid;
  };

  /// Looks a line up and refreshes its LRU stamp. Returns nullptr on miss.
  CacheLine* find(LineAddr addr);

  /// Looks a line up without touching LRU state (used by snoops, which must
  /// not perturb the owner's replacement order).
  const CacheLine* peek(LineAddr addr) const;
  CacheLine* peek_mutable(LineAddr addr);

  /// Inserts a line in the given state, evicting the set's LRU victim when
  /// every way is valid. Inserting an already-present line just updates its
  /// state and LRU stamp.
  std::optional<Eviction> insert(LineAddr addr, MesiState state);

  /// Drops a line. Returns the state it held, or nullopt if absent.
  std::optional<MesiState> invalidate(LineAddr addr);

  /// Empties the whole cache.
  void flush();

  std::size_t set_index(LineAddr addr) const { return addr % num_sets_; }
  std::size_t num_sets() const { return num_sets_; }
  std::size_t ways() const { return ways_; }
  const CacheConfig& config() const { return config_; }

  /// Number of currently valid lines (test/debug aid; O(capacity)).
  std::size_t valid_lines() const;

  /// Visits every valid line. Templated on the visitor so the call inlines
  /// instead of going through a std::function thunk — the directory
  /// consistency check walks entire caches with it.
  template <typename Fn>
  void for_each_line(Fn&& fn) const {
    for (const CacheLine& line : lines_) {
      if (line.valid()) fn(line);
    }
  }

 private:
  CacheLine* find_in_set(std::size_t set, LineAddr addr);

  CacheConfig config_;
  std::size_t num_sets_ = 0;
  std::size_t ways_ = 0;
  std::uint64_t clock_ = 0;
  std::vector<CacheLine> lines_;  ///< num_sets_ * ways_, set-major
  /// SoA mirror of lines_[i].addr (kInvalidTag when invalid), maintained by
  /// insert/invalidate/flush so the hot set scan reads one dense uint64
  /// span instead of striding through 24-byte structs (scan.hpp).
  std::vector<std::uint64_t> tags_;
};

}  // namespace tlbmap

// Fundamental value types shared by every tlbmap module.
//
// The simulator is trace-driven: workloads emit MemAccess records against a
// single shared virtual address space (the shared-memory paradigm the paper
// targets), and the machine model translates, caches and times them.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace tlbmap {

/// Virtual address within the (single, shared) simulated address space.
using VirtAddr = std::uint64_t;
/// Physical address produced by the simulated page table.
using PhysAddr = std::uint64_t;
/// Virtual page number (VirtAddr >> page_shift).
using PageNum = std::uint64_t;
/// Physical frame number.
using FrameNum = std::uint64_t;
/// Cache-line-aligned physical address tag (PhysAddr >> line_shift).
using LineAddr = std::uint64_t;
/// Simulated time, in core clock cycles.
using Cycles = std::uint64_t;

/// Identifies one application thread (0-based, dense).
using ThreadId = int;
/// Identifies one hardware core (0-based, dense).
using CoreId = int;

inline constexpr ThreadId kNoThread = -1;
inline constexpr CoreId kNoCore = -1;

/// Kind of a memory operation carried by a trace record.
enum class AccessType : std::uint8_t {
  kRead,
  kWrite,
};

/// One memory operation emitted by a workload thread.
///
/// `compute_gap` models the instructions executed since the previous memory
/// access of the same thread; the machine charges it as plain cycles, which
/// lets compute-bound workloads (EP) keep their coherence rates low without
/// emitting billions of records.
struct MemAccess {
  VirtAddr addr = 0;
  AccessType type = AccessType::kRead;
  std::uint32_t compute_gap = 0;
};

inline const char* to_string(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

}  // namespace tlbmap

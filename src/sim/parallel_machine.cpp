#include "sim/parallel_machine.hpp"

#include <algorithm>
#include <sstream>
#include <string>
#include <utility>

#include "core/shutdown.hpp"
#include "core/worker_pool.hpp"

namespace tlbmap {

Expected<MachineStats> Machine::try_run_epoch(
    std::vector<std::unique_ptr<ThreadStream>>& streams,
    const RunConfig& config) {
  EpochEngine engine(*this, config, streams);
  return engine.run();
}

EpochEngine::EpochEngine(Machine& machine, const Machine::RunConfig& config,
                         std::vector<std::unique_ptr<ThreadStream>>& streams)
    : machine_(&machine),
      config_(&config),
      hierarchy_(&machine.hierarchy()),
      topology_(&machine.topology()),
      interconnect_(&machine.hierarchy().interconnect()),
      coherence_(&machine.hierarchy().coherence()),
      page_table_(&machine.hierarchy().page_table()) {
  const MachineConfig& mc = hierarchy_->config();
  page_shift_ = mc.page_shift();
  page_offset_mask_ = (VirtAddr{1} << page_shift_) - 1;
  for (std::size_t v = mc.l1.line_size; v > 1; v >>= 1) ++line_shift_;
  num_threads_ = static_cast<int>(streams.size());
  num_domains_ = topology_->num_l2();
  l1_latency_ = mc.l1.latency;
  l2_latency_ = mc.l2.latency;
  miss_penalty_ = mc.tlb.miss_penalty;
  base_memory_latency_ = mc.interconnect.memory_latency;
  remote_extra_ = mc.interconnect.memory_remote_extra;
  numa_ = mc.numa;
  interleave_ = mc.numa_policy == NumaPolicy::kInterleave;
  directory_enabled_ = coherence_->directory_enabled();

  threads_.resize(streams.size());
  for (std::size_t t = 0; t < streams.size(); ++t) {
    threads_[t].stream = streams[t].get();
  }
  live_ = num_threads_;
  placement_ = config.thread_to_core;
  memos_.resize(static_cast<std::size_t>(topology_->num_cores()));
  shards_.resize(static_cast<std::size_t>(num_domains_));
  for (int d = 0; d < num_domains_; ++d) {
    shards_[static_cast<std::size_t>(d)].domain = d;
  }
  commit_touched_.resize(static_cast<std::size_t>(num_domains_));
  victim_dirty_.assign(static_cast<std::size_t>(num_domains_), 0);
  // The frozen-view probe needs the nearest-holder partition in broadcast
  // mode too, so the engine builds its own copy instead of borrowing the
  // directory's.
  socket_mask_.assign(static_cast<std::size_t>(num_domains_),
                      HolderSet(num_domains_));
  for (int a = 0; a < num_domains_; ++a) {
    for (int b = 0; b < num_domains_; ++b) {
      if (topology_->socket_of_l2(a) == topology_->socket_of_l2(b)) {
        socket_mask_[static_cast<std::size_t>(a)].set(b);
      }
    }
  }
  reshard();
  // Epoch-start view from the actual cache contents — non-empty when the
  // run was configured with flush_first off.
  for (int id = 0; id < num_domains_; ++id) {
    coherence_->l2(id).for_each_line([&](const CacheLine& cl) {
      FrozenLine& f = frozen_[cl.addr];
      f.holders.set(id);
      if (cl.state == MesiState::kModified) f.modified.set(id);
    });
  }
}

void EpochEngine::reshard() {
  for (Shard& s : shards_) s.threads.clear();
  for (ThreadId t = 0; t < num_threads_; ++t) {
    const L2Id d =
        topology_->l2_of(placement_[static_cast<std::size_t>(t)]);
    // Ascending thread ids per shard: the epoch scheduler's scan order is
    // the serial loop's lowest-id tie-break.
    shards_[static_cast<std::size_t>(d)].threads.push_back(t);
  }
  active_shards_.clear();
  for (std::size_t d = 0; d < shards_.size(); ++d) {
    if (!shards_[d].threads.empty()) active_shards_.push_back(d);
  }
}

const EpochEngine::FrozenLine* EpochEngine::frozen_line(LineAddr line) const {
  const auto it = frozen_.find(line);
  return it == frozen_.end() ? nullptr : &it->second;
}

L2Id EpochEngine::nearest_holder(L2Id me, const FrozenLine& frozen) const {
  int pick = frozen.holders.first_and_excluding(
      socket_mask_[static_cast<std::size_t>(me)], me);
  if (pick == -1) pick = frozen.holders.first_excluding(me);
  if (pick == -1) return -1;
  return checked_l2id(static_cast<std::size_t>(pick),
                      static_cast<std::size_t>(num_domains_));
}

void EpochEngine::drop_domain_l1s(L2Id domain, LineAddr line) {
  const CoreId first = domain * topology_->cores_per_l2();
  for (CoreId core = first; core < first + topology_->cores_per_l2();
       ++core) {
    hierarchy_->l1(core).invalidate(line);
  }
}

void EpochEngine::queue_op(Shard& s, L2Id victim, LineAddr line,
                           bool invalidate) {
  if (s.ops_by_victim.empty()) {
    s.ops_by_victim.resize(static_cast<std::size_t>(num_domains_));
  }
  std::vector<RemoteOp>& bucket =
      s.ops_by_victim[static_cast<std::size_t>(victim)];
  if (bucket.empty()) s.dirty_victims.push_back(victim);
  bucket.push_back(RemoteOp{line, invalidate});
}

void EpochEngine::local_insert(Shard& s, LineAddr line, MesiState state) {
  const auto evicted = coherence_->l2(s.domain).insert(line, state);
  s.touched.push_back(line);
  if (evicted.has_value()) {
    if (evicted->state == MesiState::kModified) ++s.stats.writebacks;
    drop_domain_l1s(s.domain, evicted->addr);
    s.touched.push_back(evicted->addr);
  }
}

Cycles EpochEngine::domain_read(Shard& s, LineAddr line,
                                Cycles memory_latency, bool remote_home) {
  MachineStats& st = s.stats;
  ++st.l2_accesses;
  if (coherence_->l2(s.domain).find(line) != nullptr) {
    ++st.l2_hits;
    return l2_latency_;
  }
  ++st.l2_misses;
  Cycles latency = l2_latency_;
  interconnect_->record_probe_broadcast(s.domain, st);
  if (directory_enabled_) ++s.dir_stats.probes;
  const FrozenLine* frozen = frozen_line(line);
  const L2Id holder =
      frozen != nullptr ? nearest_holder(s.domain, *frozen) : -1;
  if (holder != -1) {
    if (directory_enabled_) ++s.dir_stats.holder_hits;
    // Costed from the epoch-start view: a modified frozen holder pays the
    // writeback here even if its own epoch already downgraded the line.
    if (frozen->modified.test(holder)) ++st.writebacks;
    ++st.snoop_transactions;
    latency += interconnect_->transfer(holder, s.domain, st);
    queue_op(s, holder, line, /*invalidate=*/false);
    local_insert(s, line, MesiState::kShared);
  } else {
    ++st.memory_fetches;
    if (remote_home) {
      ++st.memory_fetches_remote;
    } else {
      ++st.memory_fetches_local;
    }
    latency += memory_latency;
    local_insert(s, line, MesiState::kExclusive);
  }
  return latency;
}

Cycles EpochEngine::domain_write(Shard& s, LineAddr line,
                                 Cycles memory_latency, bool remote_home) {
  MachineStats& st = s.stats;
  ++st.l2_accesses;
  if (CacheLine* held = coherence_->l2(s.domain).find(line)) {
    ++st.l2_hits;
    switch (held->state) {
      case MesiState::kModified:
        return 1;
      case MesiState::kExclusive:
        held->state = MesiState::kModified;
        s.touched.push_back(line);
        return 1;
      case MesiState::kShared: {
        // Ownership upgrade against the frozen holder set.
        Cycles worst = 0;
        if (const FrozenLine* frozen = frozen_line(line)) {
          frozen->holders.for_each_excluding(s.domain, [&](int b) {
            const L2Id other =
                checked_l2id(static_cast<std::size_t>(b),
                             static_cast<std::size_t>(num_domains_));
            if (directory_enabled_) ++s.dir_stats.holder_visits;
            ++st.invalidations;
            worst = std::max(worst,
                             interconnect_->invalidate(s.domain, other, st));
            queue_op(s, other, line, /*invalidate=*/true);
          });
        }
        held->state = MesiState::kModified;
        s.touched.push_back(line);
        return 1 + worst;
      }
      case MesiState::kInvalid:
        break;  // unreachable: find() only returns valid lines
    }
  }
  // Write miss: read-for-ownership against the frozen holder set; data
  // comes from the nearest frozen holder when one exists.
  ++st.l2_misses;
  Cycles latency = 1;
  interconnect_->record_probe_broadcast(s.domain, st);
  if (directory_enabled_) ++s.dir_stats.probes;
  const FrozenLine* frozen = frozen_line(line);
  const L2Id source =
      frozen != nullptr ? nearest_holder(s.domain, *frozen) : -1;
  if (source != -1) {
    if (directory_enabled_) ++s.dir_stats.holder_hits;
    Cycles worst = 0;
    frozen->holders.for_each_excluding(s.domain, [&](int b) {
      const L2Id other = checked_l2id(static_cast<std::size_t>(b),
                                      static_cast<std::size_t>(num_domains_));
      if (directory_enabled_) ++s.dir_stats.holder_visits;
      ++st.invalidations;
      if (frozen->modified.test(other)) ++st.writebacks;
      queue_op(s, other, line, /*invalidate=*/true);
      if (other == source) {
        ++st.snoop_transactions;
        worst = std::max(worst, interconnect_->transfer(other, s.domain, st));
      } else {
        worst = std::max(worst, interconnect_->invalidate(s.domain, other, st));
      }
    });
    latency += worst;
  } else {
    ++st.memory_fetches;
    if (remote_home) {
      ++st.memory_fetches_remote;
    } else {
      ++st.memory_fetches_local;
    }
    latency += memory_latency;
  }
  local_insert(s, line, MesiState::kModified);
  return latency;
}

bool EpochEngine::execute_access(Shard& s, ThreadId tid, ThreadCtx& t,
                                 const TraceEvent& ev) {
  const CoreId core = placement_[static_cast<std::size_t>(tid)];
  const VirtAddr addr = ev.access.addr;
  const PageNum page = addr >> page_shift_;
  Memo& memo = memos_[static_cast<std::size_t>(core)];
  const bool memo_hit = memo.valid && memo.page == page;
  PageTable::Entry entry{};
  if (!memo_hit) {
    if (config_->deterministic) {
      // Epochs only read the shared page table; a first touch yields the
      // thread and the commit grants all claims in (clock, tid) order, so
      // frame numbers — and the cache-set conflicts they cause — are
      // independent of worker scheduling.
      const PageTable::Entry* found = page_table_->find(page);
      if (found == nullptr) {
        const int home =
            interleave_
                ? static_cast<int>(
                      page % static_cast<PageNum>(topology_->num_sockets()))
                : topology_->socket_of(core);
        s.claims.push_back(PageClaim{t.clock, tid, page, home});
        return false;
      }
      entry = *found;
    } else {
      // Fast mode: allocate on the spot under a lock. The shard-local
      // mirror keeps every later translation of the page off the shared
      // table, whose buckets may be rehashed by other shards' allocations.
      const auto it = s.page_cache.find(page);
      if (it != s.page_cache.end()) {
        entry = it->second;
      } else {
        const int home =
            interleave_
                ? static_cast<int>(
                      page % static_cast<PageNum>(topology_->num_sockets()))
                : topology_->socket_of(core);
        {
          const std::lock_guard<std::mutex> lock(page_mutex_);
          page_table_->frame_of(page, home);
          entry = *page_table_->find(page);
        }
        s.page_cache.emplace(page, entry);
      }
    }
  }

  MachineStats& st = s.stats;
  ++st.accesses;
  const bool is_read = ev.access.type == AccessType::kRead;
  if (is_read) {
    ++st.reads;
  } else {
    ++st.writes;
  }

  Cycles latency = 0;
  PhysAddr phys;
  Cycles memory_latency;
  bool remote_home;
  if (memo_hit) {
    ++st.tlb_hits;
    phys = memo.frame_base | (addr & page_offset_mask_);
    memory_latency = memo.memory_latency;
    remote_home = memo.remote_home;
  } else {
    Tlb& tlb = hierarchy_->tlb(core);
    if (tlb.lookup(page)) {
      ++st.tlb_hits;
    } else {
      ++st.tlb_misses;
      tlb.insert(page);
      latency += miss_penalty_;
    }
    const PhysAddr frame_base = entry.frame << page_shift_;
    phys = frame_base | (addr & page_offset_mask_);
    memory_latency = base_memory_latency_;
    remote_home = numa_ && entry.home_node != topology_->socket_of(core);
    if (remote_home) memory_latency += remote_extra_;
    memo = Memo{page, frame_base, memory_latency, remote_home, true};
  }
  const LineAddr line = phys >> line_shift_;

  Cache& l1 = hierarchy_->l1(core);
  if (is_read) {
    if (l1.find(line) != nullptr) {
      ++st.l1_hits;
      latency += l1_latency_;
    } else {
      ++st.l1_misses;
      latency +=
          l1_latency_ + domain_read(s, line, memory_latency, remote_home);
      l1.insert(line, MesiState::kShared);  // write-through L1: never dirty
    }
  } else {
    if (l1.find(line) != nullptr) {
      ++st.l1_hits;
    } else {
      ++st.l1_misses;
    }
    // Sibling L1 shootdown within the shard's own domain (the inclusive-L1
    // guard of the serial fast path is always on here).
    if (coherence_->l2(s.domain).peek(line) != nullptr) {
      const CoreId first = s.domain * topology_->cores_per_l2();
      for (CoreId sibling = first;
           sibling < first + topology_->cores_per_l2(); ++sibling) {
        if (sibling != core) hierarchy_->l1(sibling).invalidate(line);
      }
    }
    latency += domain_write(s, line, memory_latency, remote_home);
  }
  t.clock += ev.access.compute_gap + latency;
  return true;
}

void EpochEngine::run_shard_epoch(Shard& s) {
  s.epoch_events = 0;
  while (s.epoch_events < config_->epoch_events) {
    // Runnable thread with the smallest clock, lowest id on ties — the
    // serial scheduler restricted to this shard's threads.
    ThreadId pick = kNoThread;
    for (const ThreadId tid : s.threads) {
      const ThreadCtx& t = threads_[static_cast<std::size_t>(tid)];
      if (t.done || t.at_barrier || t.waiting_fault) continue;
      if (pick == kNoThread ||
          t.clock < threads_[static_cast<std::size_t>(pick)].clock) {
        pick = tid;
      }
    }
    if (pick == kNoThread) break;
    ThreadCtx& t = threads_[static_cast<std::size_t>(pick)];
    TraceEvent ev;
    if (t.has_pending) {
      ev = t.pending;
      t.has_pending = false;
    } else {
      ev = t.stream->next();
    }
    switch (ev.kind) {
      case TraceEvent::Kind::kAccess:
        if (!execute_access(s, pick, t, ev)) {
          // Unmapped page: park the event and the thread until the commit
          // grants the claim. The attempt is not an issued event.
          t.pending = ev;
          t.has_pending = true;
          t.waiting_fault = true;
          continue;
        }
        break;
      case TraceEvent::Kind::kBarrier:
        t.at_barrier = true;
        break;
      case TraceEvent::Kind::kEnd:
        t.done = true;
        break;
    }
    ++s.epoch_events;
  }
  s.total_events += s.epoch_events;
}

void EpochEngine::apply_victim_ops(L2Id victim) {
  std::vector<LineAddr>& touched =
      commit_touched_[static_cast<std::size_t>(victim)];
  touched.clear();
  Cache& cache = coherence_->l2(victim);
  // Shard order is fixed, and the per-(line, victim) outcome is order-
  // independent anyway: invalidation beats downgrade, both no-op once the
  // victim no longer holds the line. No stats here — they were counted at
  // issue time from the frozen view.
  for (const std::size_t idx : active_shards_) {
    const Shard& s = shards_[idx];
    if (s.ops_by_victim.empty()) continue;
    for (const RemoteOp& op :
         s.ops_by_victim[static_cast<std::size_t>(victim)]) {
      if (op.invalidate) {
        if (cache.invalidate(op.line).has_value()) {
          drop_domain_l1s(victim, op.line);
          touched.push_back(op.line);
        }
      } else if (CacheLine* held = cache.peek_mutable(op.line)) {
        if (held->state != MesiState::kShared) {
          held->state = MesiState::kShared;
          touched.push_back(op.line);
        }
      }
    }
  }
}

void EpochEngine::reconcile(L2Id domain, std::vector<LineAddr>& lines) {
  const Cache& cache =
      static_cast<const CoherenceDomain*>(coherence_)->l2(domain);
  for (const LineAddr line : lines) {
    const CacheLine* held = cache.peek(line);
    const auto it = frozen_.find(line);
    if (held == nullptr) {
      if (it == frozen_.end()) continue;
      it->second.holders.reset(domain);
      it->second.modified.reset(domain);
      if (it->second.holders.none()) frozen_.erase(it);
    } else if (it != frozen_.end()) {
      it->second.holders.set(domain);
      if (held->state == MesiState::kModified) {
        it->second.modified.set(domain);
      } else {
        it->second.modified.reset(domain);
      }
    } else {
      FrozenLine& f = frozen_[line];
      f.holders.set(domain);
      if (held->state == MesiState::kModified) f.modified.set(domain);
    }
  }
  lines.clear();
}

void EpochEngine::commit_claims() {
  claims_scratch_.clear();
  for (const std::size_t idx : active_shards_) {
    Shard& s = shards_[idx];
    claims_scratch_.insert(claims_scratch_.end(), s.claims.begin(),
                           s.claims.end());
    s.claims.clear();
  }
  if (claims_scratch_.empty()) return;
  // Canonical first-touch order: the thread that would have touched the
  // page first in simulated time homes it (ties cannot happen — a thread
  // yields at most once per epoch).
  std::sort(claims_scratch_.begin(), claims_scratch_.end(),
            [](const PageClaim& a, const PageClaim& b) {
              return a.clock != b.clock ? a.clock < b.clock : a.tid < b.tid;
            });
  for (const PageClaim& claim : claims_scratch_) {
    page_table_->frame_of(claim.page, claim.home);  // losers keep winner's home
  }
  for (ThreadCtx& t : threads_) t.waiting_fault = false;
}

void EpochEngine::apply_migration(const std::vector<CoreId>& next) {
  if (next.empty()) return;
  bool valid = next.size() == placement_.size();
  if (valid) {
    std::vector<bool> used(static_cast<std::size_t>(topology_->num_cores()),
                           false);
    for (const CoreId core : next) {
      if (core < 0 || core >= topology_->num_cores() ||
          used[static_cast<std::size_t>(core)]) {
        valid = false;
        break;
      }
      used[static_cast<std::size_t>(core)] = true;
    }
  }
  if (!valid) {
    if (config_->strict_migrations) {
      fatal_ = Error{ErrorCode::kInvalidMapping,
                     next.size() == placement_.size()
                         ? "MigrationPolicy: invalid mapping"
                         : "MigrationPolicy: wrong mapping size"};
      return;
    }
    if (obs::Tracer* tracer =
            obs::tracer_at(config_->obs, obs::ObsLevel::kFull)) {
      tracer->record_instant("machine.migration_rejected", "sim", "");
    }
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(config_->obs, obs::ObsLevel::kPhases)) {
      metrics->counter("machine.rejected_migrations").add(1);
    }
    return;
  }
  std::fill(machine_->thread_on_core_.begin(), machine_->thread_on_core_.end(),
            kNoThread);
  int moved = 0;
  for (ThreadId t = 0; t < num_threads_; ++t) {
    const CoreId core = next[static_cast<std::size_t>(t)];
    machine_->thread_on_core_[static_cast<std::size_t>(core)] = t;
    if (core != placement_[static_cast<std::size_t>(t)] &&
        !threads_[static_cast<std::size_t>(t)].done) {
      threads_[static_cast<std::size_t>(t)].clock += config_->migration_cost;
      ++moved;
    }
  }
  placement_ = next;
  // Threads may have crossed domains; rebuild shard ownership. A thread's
  // in-flight state (pending access, fault wait) travels with it.
  reshard();
  if (moved > 0) {
    if (obs::Tracer* tracer =
            obs::tracer_at(config_->obs, obs::ObsLevel::kFull)) {
      std::ostringstream args;
      args << "\"threads_moved\":" << moved;
      tracer->record_instant("machine.migrate", "sim", args.str());
    }
    if (obs::MetricsRegistry* metrics =
            obs::metrics_at(config_->obs, obs::ObsLevel::kPhases)) {
      metrics->counter("machine.thread_migrations")
          .add(static_cast<std::uint64_t>(moved));
    }
  }
}

bool EpochEngine::release_barrier_if_ready() {
  int waiting = 0;
  Cycles latest = 0;
  for (const ThreadCtx& t : threads_) {
    if (t.done) continue;
    if (!t.at_barrier) return false;
    ++waiting;
    latest = std::max(latest, t.clock);
  }
  if (waiting == 0) return false;
  for (ThreadCtx& t : threads_) {
    if (t.done) continue;
    t.at_barrier = false;
    t.clock = latest + config_->barrier_latency;
  }
  ++barrier_count_;
  if (obs::Tracer* tracer =
          obs::tracer_at(config_->obs, obs::ObsLevel::kFull)) {
    std::ostringstream args;
    args << "\"barrier\":" << barrier_count_ << ",\"sim_cycles\":" << latest;
    tracer->record_instant("machine.barrier", "sim", args.str());
  }
  if (config_->migration != nullptr) {
    apply_migration(config_->migration->on_barrier(
        barrier_count_, latest + config_->barrier_latency));
  }
  return true;
}

void EpochEngine::finish_state() {
  for (const Shard& s : shards_) {
    dir_sum_.probes += s.dir_stats.probes;
    dir_sum_.holder_hits += s.dir_stats.holder_hits;
    dir_sum_.holder_visits += s.dir_stats.holder_visits;
  }
  coherence_->add_directory_stats(dir_sum_);
  // The live directory was bypassed the whole run; rebuild it from the
  // caches the engine left behind so a subsequent serial run (and
  // directory_consistent()) sees reality.
  coherence_->rebuild_directory();
  hierarchy_->invalidate_memos();
}

Expected<MachineStats> EpochEngine::run() {
  const Machine::RunConfig& config = *config_;
  if (config.observer != nullptr) {
    return Error{ErrorCode::kInvalidArgument,
                 "Machine::run: machine_workers does not support observers; "
                 "detection runs use the serial loop (machine_workers = 0)"};
  }
  if (config.epoch_events == 0) {
    return Error{ErrorCode::kInvalidArgument,
                 "Machine::run: epoch_events must be >= 1"};
  }
  std::unique_ptr<WorkerPool> owned_pool;
  WorkerPool* pool = config.pool;
  if (pool == nullptr) {
    owned_pool = std::make_unique<WorkerPool>(config.machine_workers);
    pool = owned_pool.get();
  }

  obs::TraceSpan run_span(obs::tracer_at(config.obs, obs::ObsLevel::kPhases),
                          "machine.run", "sim");
  const std::uint64_t watchdog_budget =
      hierarchy_->config().watchdog_max_events;

  obs::MetricsRegistry* interval_metrics =
      config.metrics_interval_events != 0
          ? obs::metrics_at(config.obs, obs::ObsLevel::kPhases)
          : nullptr;
  obs::Gauge* events_gauge = nullptr;
  obs::Gauge* accesses_gauge = nullptr;
  obs::Gauge* sim_cycles_gauge = nullptr;
  if (interval_metrics != nullptr) {
    events_gauge = &interval_metrics->gauge("machine.events_issued");
    accesses_gauge = &interval_metrics->gauge("machine.accesses");
    sim_cycles_gauge = &interval_metrics->gauge("machine.sim_cycles");
  }
  std::uint64_t last_bucket = 0;
  const auto total_accesses = [&] {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) total += s.stats.accesses;
    return total;
  };
  const auto max_clock = [&] {
    Cycles finish = 0;
    for (const ThreadCtx& t : threads_) finish = std::max(finish, t.clock);
    return finish;
  };
  const auto publish_progress = [&](Cycles sim_now) {
    events_gauge->set(static_cast<double>(events_total_));
    accesses_gauge->set(static_cast<double>(total_accesses()));
    sim_cycles_gauge->set(static_cast<double>(sim_now));
  };
  obs::Histogram* epoch_hist = nullptr;
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
    epoch_hist = &metrics->histogram("machine.epoch_events");
  }

  const auto epoch_task = [this](std::size_t i) {
    run_shard_epoch(shards_[active_shards_[i]]);
  };
  const auto victim_task = [this](std::size_t i) {
    apply_victim_ops(victims_scratch_[i]);
  };

  while (live_ > 0) {
    // Per-epoch shutdown poll: SIGTERM latency is bounded by one epoch of
    // simulated work, independent of how events happen to align.
    if (shutdown_requested()) {
      finish_state();
      return Error{ErrorCode::kInterrupted,
                   "Machine::run: stopped by shutdown request after " +
                       std::to_string(events_total_) + " events"};
    }
    if (watchdog_budget != 0 && events_total_ >= watchdog_budget) {
      std::ostringstream msg;
      msg << "Machine::run: watchdog tripped after " << events_total_
          << " events (budget " << watchdog_budget << ")";
      if (obs::MetricsRegistry* metrics =
              obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
        metrics->counter("machine.watchdog_trips").add(1);
      }
      finish_state();
      return Error{ErrorCode::kWatchdogTimeout, msg.str()};
    }

    // ---- Parallel phase: every populated shard advances one epoch
    // against the frozen remote view. ----
    pool->run(active_shards_.size(), epoch_task);
    ++epochs_;
    std::uint64_t epoch_events = 0;
    std::size_t epoch_claims = 0;
    for (const std::size_t idx : active_shards_) {
      const Shard& s = shards_[idx];
      epoch_events += s.epoch_events;
      epoch_claims += s.claims.size();
      if (s.epoch_events == 0) {
        for (const ThreadId tid : s.threads) {
          if (!threads_[static_cast<std::size_t>(tid)].done) {
            ++stall_epochs_;
            break;
          }
        }
      }
    }
    events_total_ += epoch_events;

    // ---- Commit A: queued cross-domain ops, fanned out by victim
    // domain (disjoint state per victim, so this phase parallelises). ----
    victims_scratch_.clear();
    for (const std::size_t idx : active_shards_) {
      for (const L2Id v : shards_[idx].dirty_victims) {
        if (victim_dirty_[static_cast<std::size_t>(v)] == 0) {
          victim_dirty_[static_cast<std::size_t>(v)] = 1;
          victims_scratch_.push_back(v);
        }
      }
    }
    pool->run(victims_scratch_.size(), victim_task);

    // ---- Commit B: reconcile the frozen view from every touched
    // (domain, line) pair; drain the epoch's queues. ----
    for (const std::size_t idx : active_shards_) {
      Shard& s = shards_[idx];
      reconcile(s.domain, s.touched);
      for (const L2Id v : s.dirty_victims) {
        s.ops_by_victim[static_cast<std::size_t>(v)].clear();
      }
      s.dirty_victims.clear();
    }
    for (const L2Id v : victims_scratch_) {
      reconcile(v, commit_touched_[static_cast<std::size_t>(v)]);
      victim_dirty_[static_cast<std::size_t>(v)] = 0;
    }

    commit_claims();

    const bool released = release_barrier_if_ready();
    if (fatal_) {
      finish_state();
      return *std::move(fatal_);
    }
    live_ = 0;
    for (const ThreadCtx& t : threads_) {
      if (!t.done) ++live_;
    }
    // A live machine that issued nothing, claimed nothing and released no
    // barrier cannot make progress next epoch either; fail loudly instead
    // of spinning (cannot happen for well-formed streams).
    if (live_ > 0 && epoch_events == 0 && epoch_claims == 0 && !released) {
      finish_state();
      return Error{ErrorCode::kInvalidArgument,
                   "Machine::run: epoch engine made no progress "
                   "(malformed trace stream?)"};
    }
    if (epoch_hist != nullptr) {
      epoch_hist->observe(static_cast<double>(epoch_events));
    }
    if (interval_metrics != nullptr) {
      const std::uint64_t bucket =
          events_total_ / config.metrics_interval_events;
      if (bucket > last_bucket) {
        last_bucket = bucket;
        publish_progress(max_clock());
        interval_metrics->sample_series(events_total_, "interval");
      }
    }
  }

  // Deterministic reduction: per-shard counters summed in domain order.
  MachineStats stats;
  for (const Shard& s : shards_) stats += s.stats;
  const Cycles finish = max_clock();
  stats.execution_cycles = finish;
  stats.detection_overhead_cycles = 0;  // observers rejected above
  finish_state();

  if (interval_metrics != nullptr) {
    publish_progress(finish);
  }
  if (obs::MetricsRegistry* metrics =
          obs::metrics_at(config.obs, obs::ObsLevel::kPhases)) {
    metrics->counter("machine.epochs").add(epochs_);
    metrics->counter("machine.shard_stalls").add(stall_epochs_);
    obs::Histogram& shard_hist = metrics->histogram("machine.shard_events");
    for (const Shard& s : shards_) {
      if (s.total_events != 0) {
        shard_hist.observe(static_cast<double>(s.total_events));
      }
    }
    const std::uint64_t wall_us = run_span.elapsed_us();
    if (wall_us > 0) {
      metrics->wallclock_gauge("machine.sim_events_per_sec")
          .set(static_cast<double>(stats.accesses) * 1e6 /
               static_cast<double>(wall_us));
    }
    metrics->gauge("coherence.directory_disabled")
        .set(directory_enabled_ ? 0.0 : 1.0);
    if (directory_enabled_) {
      metrics->counter("coherence.directory_probes").add(dir_sum_.probes);
      metrics->counter("coherence.directory_holder_hits")
          .add(dir_sum_.holder_hits);
      metrics->counter("coherence.directory_holder_visits")
          .add(dir_sum_.holder_visits);
      metrics->gauge("coherence.directory_lines")
          .set(static_cast<double>(coherence_->directory_lines()));
    }
    std::ostringstream args;
    args << "\"accesses\":" << stats.accesses
         << ",\"sim_cycles\":" << stats.execution_cycles
         << ",\"barriers\":" << barrier_count_ << ",\"epochs\":" << epochs_
         << ",\"machine_workers\":" << config.machine_workers;
    run_span.set_args(args.str());
  }
  return stats;
}

}  // namespace tlbmap

// First-touch page table for the single shared simulated address space.
//
// All workload threads belong to one process (the shared-memory paradigm),
// so one table maps virtual pages to physical frames. Frames are handed out
// sequentially on first touch, which keeps translation deterministic — a
// property several tests and the oracle detector rely on.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "sim/types.hpp"

namespace tlbmap {

class PageTable {
 public:
  /// One mapped page: its frame and the memory node it is homed on.
  struct Entry {
    FrameNum frame;
    int home_node;
  };

  explicit PageTable(int page_shift) : page_shift_(page_shift) {}

  PageNum page_of(VirtAddr addr) const { return addr >> page_shift_; }

  VirtAddr page_offset(VirtAddr addr) const {
    return addr & ((VirtAddr{1} << page_shift_) - 1);
  }

  /// Translates, allocating a fresh frame on first touch (homed on node 0;
  /// NUMA-aware callers should use frame_of with an explicit home).
  PhysAddr translate(VirtAddr addr) {
    return (frame_of(page_of(addr), 0) << page_shift_) | page_offset(addr);
  }

  /// Frame for a page, allocating on first touch and recording the page's
  /// home memory node (ignored if the page is already mapped).
  FrameNum frame_of(PageNum page, int home_node = 0) {
    auto [it, inserted] = frames_.try_emplace(page, Entry{next_frame_, home_node});
    if (inserted) ++next_frame_;
    return it->second.frame;
  }

  /// Home memory node of a mapped page; -1 if never touched.
  int home_of(PageNum page) const {
    const auto it = frames_.find(page);
    return it == frames_.end() ? -1 : it->second.home_node;
  }

  /// True if the page has been touched already (no allocation).
  bool mapped(PageNum page) const { return frames_.contains(page); }

  /// Entry of a mapped page, or nullptr if never touched. Never allocates
  /// and never mutates the table, so concurrent readers are safe as long
  /// as no allocation runs — the epoch-parallel engine's contract: shards
  /// only read during an epoch, first-touch claims commit serially between
  /// epochs.
  const Entry* find(PageNum page) const {
    const auto it = frames_.find(page);
    return it == frames_.end() ? nullptr : &it->second;
  }

  std::size_t mapped_pages() const { return frames_.size(); }
  int page_shift() const { return page_shift_; }

 private:
  int page_shift_;
  FrameNum next_frame_ = 0;
  std::unordered_map<PageNum, Entry> frames_;
};

}  // namespace tlbmap

// Portable SIMD-style scan kernel shared by the TLB, cache and HM-detector
// sweep hot loops.
//
// The associative containers (Tlb, Cache) are stored array-of-structs for
// clarity, which makes their inner scan — "which way of this set holds tag
// X?" — a strided, branchy walk: 24-byte stride, a valid-bit test and an
// early-exit compare per way. This header provides the structure-of-arrays
// alternative: each container mirrors its tags into one dense uint64 array
// (kInvalidTag marks invalid ways), and scan_tags() runs a branch-free
// XOR/compare over four 64-bit lanes per step — exactly the shape compilers
// map onto 256-bit vector compares, with no per-lane branches to mispredict.
// The mirror is maintained on insert/invalidate/flush (cold paths); lookup
// order, LRU decisions and every simulated outcome are bit-identical to the
// reference walk (test_fastpath_differential proves it), so the toggle below
// is a pure engine switch, never semantics.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstddef>

namespace tlbmap {

/// Tag of an invalid way in the SoA mirrors. Real tags cannot collide with
/// it: line addresses are physical >> line_shift with frames allocated
/// sequentially from zero, and page numbers are virtual >> page_shift of
/// user-space addresses — both far below 2^64 - 1.
inline constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

namespace detail {
inline std::atomic<bool> g_simd_scan{true};
}  // namespace detail

/// Runtime toggle for the SoA scan kernels (default on). Scalar mode keeps
/// the historical reference walks for A/B benchmarking and bisection.
inline bool simd_scan_enabled() {
  return detail::g_simd_scan.load(std::memory_order_relaxed);
}
inline void set_simd_scan_enabled(bool enabled) {
  detail::g_simd_scan.store(enabled, std::memory_order_relaxed);
}

/// Index of `needle` in tags[0..n), or -1. Branch-free four-lane blocks:
/// the block test is one OR-reduction of lane compares (vectorizable);
/// lane disambiguation only runs on the rare hit block.
inline int scan_tags(const std::uint64_t* tags, std::size_t n,
                     std::uint64_t needle) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const bool h0 = tags[i] == needle;
    const bool h1 = tags[i + 1] == needle;
    const bool h2 = tags[i + 2] == needle;
    const bool h3 = tags[i + 3] == needle;
    if (h0 | h1 | h2 | h3) {
      if (h0) return static_cast<int>(i);
      if (h1) return static_cast<int>(i + 1);
      if (h2) return static_cast<int>(i + 2);
      return static_cast<int>(i + 3);
    }
  }
  for (; i < n; ++i) {
    if (tags[i] == needle) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace tlbmap

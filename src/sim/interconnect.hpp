// Interconnect cost model: intra-socket links plus the socket-level fabric
// (front-side bus on the paper's machine, optionally a 2D socket mesh on
// manycore configs, where cross-socket cost grows with Manhattan hops).
// The coherence protocol asks it to price and record every snoop probe,
// data transfer and invalidation between two L2 caches; the locality
// split is what makes thread placement matter (paper Sec. III-A2).
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class Interconnect {
 public:
  Interconnect(const Topology& topology, const InterconnectConfig& config)
      : topology_(&topology), config_(config) {}

  bool same_socket(L2Id a, L2Id b) const {
    return topology_->socket_of_l2(a) == topology_->socket_of_l2(b);
  }

  /// Cost of a cache-to-cache transfer from `from` to `to`; records traffic.
  /// Cross-socket messages pay the base inter-socket latency for the first
  /// hop plus snoop_hop_extra per additional mesh hop (zero on the
  /// fully-connected / flat-cost machines, where this reduces to the
  /// historical binary split).
  Cycles transfer(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
    if (same_socket(from, to)) return config_.snoop_intra_socket;
    return config_.snoop_inter_socket +
           static_cast<Cycles>(hops(from, to) - 1) * config_.snoop_hop_extra;
  }

  /// Cost of an invalidation message from `from` to `to`; records traffic.
  Cycles invalidate(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
    if (same_socket(from, to)) return config_.invalidate_intra_socket;
    return config_.invalidate_inter_socket +
           static_cast<Cycles>(hops(from, to) - 1) *
               config_.invalidate_hop_extra;
  }

  /// Address-only snoop probe broadcast; records one message per remote L2.
  void record_probe(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
  }

  /// Bulk equivalent of record_probe(from, to) for every other L2 at once:
  /// the topology is uniform, so the locality split of a full broadcast is
  /// a constant per sender. Used by the directory-accelerated probe, which
  /// must account the same messages as the walked broadcast without
  /// visiting the peers.
  void record_probe_broadcast(L2Id from, MachineStats& stats) {
    (void)from;  // every L2 sees the same split on a uniform topology
    stats.intra_socket_messages +=
        static_cast<std::uint64_t>(topology_->l2s_per_socket() - 1);
    stats.inter_socket_messages += static_cast<std::uint64_t>(
        topology_->num_l2() - topology_->l2s_per_socket());
  }

  Cycles memory_latency() const { return config_.memory_latency; }
  const InterconnectConfig& config() const { return config_; }

 private:
  int hops(L2Id from, L2Id to) const {
    return topology_->socket_hops(topology_->socket_of_l2(from),
                                  topology_->socket_of_l2(to));
  }

  void record(L2Id from, L2Id to, MachineStats& stats) {
    if (same_socket(from, to)) {
      ++stats.intra_socket_messages;
    } else {
      ++stats.inter_socket_messages;
    }
  }

  const Topology* topology_;
  InterconnectConfig config_;
};

}  // namespace tlbmap

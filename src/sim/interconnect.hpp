// Two-level interconnect model: intra-socket links and the inter-socket
// front-side bus. The coherence protocol asks it to price and record every
// snoop probe, data transfer and invalidation between two L2 caches; the
// locality split is what makes thread placement matter (paper Sec. III-A2).
#pragma once

#include <cstdint>

#include "sim/config.hpp"
#include "sim/stats.hpp"
#include "sim/topology.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class Interconnect {
 public:
  Interconnect(const Topology& topology, const InterconnectConfig& config)
      : topology_(&topology), config_(config) {}

  bool same_socket(L2Id a, L2Id b) const {
    return topology_->socket_of_l2(a) == topology_->socket_of_l2(b);
  }

  /// Cost of a cache-to-cache transfer from `from` to `to`; records traffic.
  Cycles transfer(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
    return same_socket(from, to) ? config_.snoop_intra_socket
                                 : config_.snoop_inter_socket;
  }

  /// Cost of an invalidation message from `from` to `to`; records traffic.
  Cycles invalidate(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
    return same_socket(from, to) ? config_.invalidate_intra_socket
                                 : config_.invalidate_inter_socket;
  }

  /// Address-only snoop probe broadcast; records one message per remote L2.
  void record_probe(L2Id from, L2Id to, MachineStats& stats) {
    record(from, to, stats);
  }

  Cycles memory_latency() const { return config_.memory_latency; }
  const InterconnectConfig& config() const { return config_; }

 private:
  void record(L2Id from, L2Id to, MachineStats& stats) {
    if (same_socket(from, to)) {
      ++stats.intra_socket_messages;
    } else {
      ++stats.inter_socket_messages;
    }
  }

  const Topology* topology_;
  InterconnectConfig config_;
};

}  // namespace tlbmap

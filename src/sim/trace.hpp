// Trace event model: workloads are per-thread streams of memory accesses
// punctuated by barriers (the OpenMP-style synchronisation of the NPB).
//
// Streams are pull-based and lazily generated, so multi-million-access runs
// never materialise a trace in memory (unlike the 100+ GB trace files of the
// simulation-based related work the paper criticises).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/types.hpp"

namespace tlbmap {

struct TraceEvent {
  enum class Kind : std::uint8_t {
    kAccess,   ///< one memory operation
    kBarrier,  ///< thread waits until every live thread reaches its barrier
    kEnd,      ///< stream exhausted
  };

  Kind kind = Kind::kEnd;
  MemAccess access{};

  static TraceEvent make_access(VirtAddr addr, AccessType type,
                                std::uint32_t compute_gap = 0) {
    return TraceEvent{Kind::kAccess, MemAccess{addr, type, compute_gap}};
  }
  static TraceEvent make_barrier() { return TraceEvent{Kind::kBarrier, {}}; }
  static TraceEvent make_end() { return TraceEvent{Kind::kEnd, {}}; }
};

/// One thread's access stream. Implementations must keep returning kEnd once
/// exhausted (the machine may poll past the end).
class ThreadStream {
 public:
  virtual ~ThreadStream() = default;
  virtual TraceEvent next() = 0;
};

}  // namespace tlbmap

// The simulated machine: threads pinned to cores, per-thread clocks, barrier
// synchronisation, and hooks for communication detectors.
//
// Execution is event-driven: at each step the runnable thread with the
// smallest clock issues its next trace event, so accesses from different
// threads interleave in simulated-time order (this is what stands in for
// Simics). Detectors observe two signals, matching the paper's two
// mechanisms: per-access TLB-miss notifications (software-managed TLB trap)
// and the advance of global time (the hardware-managed TLB's periodic
// search).
#pragma once

#include <memory>
#include <vector>

#include "core/expected.hpp"
#include "obs/obs.hpp"
#include "sim/hierarchy.hpp"
#include "sim/stats.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class WorkerPool;
class EpochEngine;

/// Decides thread migrations at barrier boundaries (dynamic mapping — the
/// paper's future work). Barriers are the natural migration points: every
/// thread is stopped anyway, so no in-flight accesses are disturbed.
class MigrationPolicy {
 public:
  virtual ~MigrationPolicy() = default;

  /// Called after each barrier release. Return a full new thread->core
  /// mapping to migrate, or an empty vector to keep the current placement.
  virtual std::vector<CoreId> on_barrier(int barrier_index, Cycles now) = 0;

  /// Richer form used by the serial event loop: `stats` is the run's live
  /// cumulative counter block at the barrier, so a policy can price the
  /// realized cost of its own past migrations (the OnlineMapper's canary
  /// windows, DESIGN.md Sec. 17). Default forwards to the two-argument
  /// overload, so existing policies are unaffected. The epoch-parallel
  /// engine calls the two-argument form (its counters are only merged at
  /// the end of the run).
  virtual std::vector<CoreId> on_barrier(int barrier_index, Cycles now,
                                         const MachineStats& /*stats*/) {
    return on_barrier(barrier_index, now);
  }
};

/// Hook interface implemented by the communication detectors.
class MachineObserver {
 public:
  virtual ~MachineObserver() = default;

  /// Called after every access. `tlb_miss` is the software-managed trigger.
  /// The returned cycles are charged to the issuing thread (the cost of the
  /// OS search routine, paper Sec. VI-C). `addr` is the full virtual
  /// address (granularity studies); `page` = addr >> page_shift.
  virtual Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                           PageNum page, AccessType type, bool tlb_miss,
                           Cycles now) = 0;

  /// Called as global simulated time advances (monotonically). The returned
  /// cycles stall *all* threads (the kernel-wide sweep of the
  /// hardware-managed mechanism).
  virtual Cycles on_tick(Cycles now) = 0;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config);

  struct RunConfig {
    /// thread_to_core[t] = core executing thread t. Must be a permutation
    /// into distinct cores; threads never migrate during a run (the paper
    /// evaluates static mappings).
    std::vector<CoreId> thread_to_core;
    /// Fixed cost of one barrier episode (join + fork).
    Cycles barrier_latency = 500;
    MachineObserver* observer = nullptr;
    /// Optional dynamic mapping: consulted at every barrier release.
    MigrationPolicy* migration = nullptr;
    /// Charged to each thread that changes core (context save/restore; the
    /// cold TLB and caches on the new core are modelled naturally).
    Cycles migration_cost = 2000;
    /// Flush caches/TLBs before the run (cold start, default) — repetitions
    /// of an experiment should not leak state into each other.
    bool flush_first = true;
    /// Min-clock thread picker: linear scan below this thread count (the
    /// paper's 8 threads fit in a cache line; scanning beats heap churn),
    /// lazy binary heap at or above it (O(log T) per event instead of
    /// O(T)). Both pickers select the same thread at every step, including
    /// the lowest-id tie-break, so results are identical.
    int scheduler_heap_threshold = 16;
    /// Optional observability sink: the run records a "machine.run" span
    /// (kPhases) and per-barrier/migration instants (kFull). Null = off.
    obs::ObsContext* obs = nullptr;
    /// Epoch-bucketed telemetry: every N issued events (0 = off) the run
    /// refreshes its progress gauges (machine.events_issued,
    /// machine.accesses, machine.sim_cycles) and captures one deterministic
    /// time-series sample tagged "interval" in the registry. Requires `obs`
    /// at kPhases or above.
    std::uint64_t metrics_interval_events = 0;
    /// How to treat an invalid mapping returned by the MigrationPolicy
    /// mid-run. Strict (default) aborts the run with kInvalidMapping —
    /// the historical throwing behaviour, right for tests and for policies
    /// that must be correct. Non-strict *rejects* the migration, keeps the
    /// current placement, counts machine.rejected_migrations and carries
    /// on: the graceful-degradation mode the OnlineMapper runs under.
    bool strict_migrations = true;
    /// Intra-run parallelism (DESIGN.md Sec. 15). 0 (default) runs the
    /// serial reference event loop above. >= 1 selects the epoch-parallel
    /// engine: the event loop is sharded by L2 domain, shards advance in
    /// bounded epochs of `epoch_events` issued events against a frozen
    /// epoch-start view of remote caches, and cross-domain coherence
    /// traffic is queued and applied at the epoch commit in canonical
    /// order. Results are a pure function of the workload and epoch_events
    /// — every worker count (1, 2, 8, ...) produces bit-identical
    /// MachineStats. Observers are not supported in this mode
    /// (kInvalidArgument): detection runs use the serial loop.
    int machine_workers = 0;
    /// Per-shard event budget of one epoch (parallel engine only; must be
    /// >= 1 there). Part of the simulated semantics: smaller epochs
    /// tighten cross-domain staleness and change results; the worker
    /// count never does.
    std::uint64_t epoch_events = 2048;
    /// Deterministic reduction mode (default). When false, first-touch
    /// page claims are granted immediately under a lock instead of at the
    /// epoch commit in canonical (clock, thread-id) order: faster on
    /// fault-heavy phases, but frame assignment — and therefore cache-set
    /// conflict counters — depends on worker scheduling. Safe only when
    /// run-to-run bit-identity does not matter (throughput studies).
    bool deterministic = true;
    /// Optional shared worker pool for the epoch engine (the suite lends
    /// its phase pool). Null = the run spawns a private pool of
    /// machine_workers threads.
    WorkerPool* pool = nullptr;
  };

  /// Runs every stream to completion and returns the collected counters.
  /// streams[t] is thread t's trace.
  ///
  /// Thin wrapper over try_run() preserving the historical throwing API:
  /// configuration errors surface as std::invalid_argument, watchdog trips
  /// as std::runtime_error.
  MachineStats run(std::vector<std::unique_ptr<ThreadStream>> streams,
                   const RunConfig& config);

  /// Non-throwing variant: every failure mode — bad placement, invalid
  /// mid-run migration under strict_migrations, watchdog budget exceeded —
  /// returns a structured Error instead of raising. This is the entry point
  /// the resilient suite worker pool uses; no exception escapes it for any
  /// input that does not itself throw from a user-supplied stream/observer.
  Expected<MachineStats> try_run(
      std::vector<std::unique_ptr<ThreadStream>> streams,
      const RunConfig& config);

  MemoryHierarchy& hierarchy() { return hierarchy_; }
  const MemoryHierarchy& hierarchy() const { return hierarchy_; }
  const Topology& topology() const { return hierarchy_.topology(); }
  /// The configuration this machine was built from; detectors read the
  /// fault-injection plan (config().fault) through this.
  const MachineConfig& config() const { return hierarchy_.config(); }

  /// Thread currently pinned to `core`, or kNoThread. Valid during run()
  /// (detectors query it to turn core-level TLB matches into thread pairs).
  ThreadId thread_on(CoreId core) const {
    return thread_on_core_[static_cast<std::size_t>(core)];
  }

 private:
  friend class EpochEngine;

  /// Epoch-parallel path of try_run (machine_workers >= 1), defined in
  /// parallel_machine.cpp. Entered with placement validated and applied
  /// and flush_first already honoured.
  Expected<MachineStats> try_run_epoch(
      std::vector<std::unique_ptr<ThreadStream>>& streams,
      const RunConfig& config);

  MemoryHierarchy hierarchy_;
  std::vector<ThreadId> thread_on_core_;
};

}  // namespace tlbmap

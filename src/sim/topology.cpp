#include "sim/topology.hpp"

#include <cstdlib>

namespace tlbmap {

Topology::Topology(const MachineConfig& config)
    : num_cores_(config.num_cores()),
      num_l2_(config.num_l2()),
      num_sockets_(config.num_sockets),
      cores_per_l2_(config.cores_per_l2),
      cores_per_socket_(config.cores_per_socket),
      socket_mesh_cols_(config.socket_mesh_cols) {
  config.validate();
}

int Topology::socket_hops(SocketId a, SocketId b) const {
  if (a == b) return 0;
  if (socket_mesh_cols_ == 0) return 1;
  const int ar = a / socket_mesh_cols_;
  const int ac = a % socket_mesh_cols_;
  const int br = b / socket_mesh_cols_;
  const int bc = b % socket_mesh_cols_;
  return std::abs(ar - br) + std::abs(ac - bc);
}

std::vector<CoreId> Topology::cores_of_l2(L2Id l2) const {
  std::vector<CoreId> cores;
  cores.reserve(static_cast<std::size_t>(cores_per_l2_));
  for (int i = 0; i < cores_per_l2_; ++i) {
    cores.push_back(l2 * cores_per_l2_ + i);
  }
  return cores;
}

int Topology::distance(CoreId a, CoreId b) const {
  if (a == b) return 0;
  if (share_l2(a, b)) return 1;
  if (share_socket(a, b)) return 2;
  return 2 + socket_hops(socket_of(a), socket_of(b));
}

std::vector<int> Topology::level_arities() const {
  std::vector<int> arities;
  arities.push_back(cores_per_l2_);
  if (cores_per_socket_ > cores_per_l2_) {
    arities.push_back(cores_per_socket_ / cores_per_l2_);
  }
  if (num_sockets_ > 1) {
    arities.push_back(num_sockets_);
  }
  return arities;
}

}  // namespace tlbmap

// Declarative per-thread access programs.
//
// The NPB-like workload generators describe each thread's memory behaviour
// as a small program — phases of array walks separated by barriers — and
// ProgramStream interprets it lazily into TraceEvents. This keeps the nine
// benchmark kernels compact, testable and deterministic per seed, while
// still producing realistic multi-million-access streams.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace tlbmap {

/// One loop over a byte region.
struct Walk {
  enum class Pattern : std::uint8_t {
    kSequential,  ///< elements start_elem, start_elem+stride, ... (mod size)
    kRandom,      ///< uniform random elements of the region (seeded)
  };
  enum class Mix : std::uint8_t {
    kRead,       ///< each element is read
    kWrite,      ///< each element is written
    kReadWrite,  ///< each element is read then written (read-modify-write)
  };

  VirtAddr base = 0;            ///< byte address of the region
  std::uint64_t length = 0;     ///< region length in bytes
  std::uint32_t elem_size = 8;  ///< bytes per element
  Pattern pattern = Pattern::kSequential;
  Mix mix = Mix::kRead;
  std::uint64_t count = 0;      ///< elements visited
  std::uint64_t start_elem = 0;
  std::int64_t stride = 1;      ///< in elements; sequential pattern only
  std::uint32_t compute_gap = 0;  ///< cycles of compute before each access
  /// Uniform random extra compute per access in [0, gap_jitter]; models
  /// run-to-run timing noise (the paper's standard-deviation experiments).
  std::uint32_t gap_jitter = 0;

  std::uint64_t num_elems() const { return length / elem_size; }
  /// Memory accesses this walk emits (kReadWrite emits two per element).
  std::uint64_t accesses() const {
    return count * (mix == Mix::kReadWrite ? 2 : 1);
  }
};

/// A group of walks executed in order, optionally repeated, with an optional
/// trailing barrier (an OpenMP parallel-for join).
struct Phase {
  std::vector<Walk> walks;
  std::uint32_t repeat = 1;
  bool barrier_after = true;
};

/// The whole per-thread program: all phases, repeated `iterations` times
/// (the benchmark's outer time-step loop).
struct AccessProgram {
  std::vector<Phase> phases;
  std::uint32_t iterations = 1;

  /// Total memory accesses the program will emit (for test assertions and
  /// workload sizing).
  std::uint64_t total_accesses() const;
  /// Total barrier events the program will emit.
  std::uint64_t total_barriers() const;
};

/// Lazy interpreter for one AccessProgram.
class ProgramStream final : public ThreadStream {
 public:
  ProgramStream(AccessProgram program, std::uint64_t seed);

  TraceEvent next() override;

 private:
  /// Advances cursors to the next walk with work, emitting barriers between
  /// phases. Returns false when the program is exhausted.
  bool position_on_walk();

  AccessProgram program_;
  std::mt19937_64 rng_;

  // Cursors.
  std::uint32_t iter_ = 0;
  std::size_t phase_ = 0;
  std::uint32_t phase_rep_ = 0;
  std::size_t walk_ = 0;
  std::uint64_t elem_index_ = 0;   ///< elements emitted in current walk
  bool write_pending_ = false;     ///< second half of a read-modify-write
  VirtAddr pending_addr_ = 0;
  bool barrier_pending_ = false;
  bool finished_ = false;
};

}  // namespace tlbmap

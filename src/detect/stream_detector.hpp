// Incremental sharing detection over a streamed trace (DESIGN.md Sec. 16).
//
// The batch detectors (SM/HM) observe a *simulated machine's* TLBs; the
// mapping service has no machine — only per-thread trace streams arriving
// in fragments. The StreamDetector reconstructs the paper's HM view from
// the stream alone: each thread keeps a small LRU window of recently
// touched pages (its TLB stand-in), and every `sweep_every` fed accesses a
// sweep intersects the windows exactly like HmDetector::sweep_indexed —
// sort-grouped (page, thread) pairs, C(k, 2) pair counts for every page
// resident in >= 2 windows, accumulated through CommMatrixShards and
// folded with CommMatrix::merge so the result is deterministic for any
// shard count.
//
// Everything is bounded by construction: windows are fixed-size, the
// matrix is O(threads^2), and scratch is reused across sweeps — the
// service's per-tenant memory accounting leans on memory_bytes() being an
// honest, deterministic estimate.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "detect/comm_matrix.hpp"
#include "sim/types.hpp"

namespace tlbmap {

struct StreamDetectorConfig {
  /// Pages remembered per thread (the TLB-entry stand-in; paper-scale TLBs
  /// hold 64-512 entries).
  int window_pages = 64;
  /// Fed access events between sweeps (the streaming analogue of the HM
  /// detector's cycle interval).
  std::uint64_t sweep_every = 4096;
  /// CommMatrixShards the sweep accumulates into before the deterministic
  /// merge; >1 exists for parity with the HM sweep's sharding, the result
  /// is bit-identical for any value.
  int sweep_shards = 1;

  /// Throws std::invalid_argument on a non-positive window, cadence or
  /// shard count (matching the config validate() style of the repo).
  void validate() const;
};

/// Serializable snapshot (service session checkpoints): restoring into a
/// fresh detector of the same shape reproduces all future sweeps exactly.
struct StreamDetectorState {
  CommMatrix matrix{1};
  std::uint64_t events = 0;
  std::uint64_t sweeps = 0;
  /// Per-thread windows in LRU order (front = coldest).
  std::vector<std::vector<PageNum>> windows;

  bool operator==(const StreamDetectorState&) const = default;
};

class StreamDetector {
 public:
  StreamDetector(int num_threads, StreamDetectorConfig config = {});

  int num_threads() const { return static_cast<int>(windows_.size()); }
  const StreamDetectorConfig& config() const { return config_; }

  /// Records one access: O(window) LRU update, plus a sweep when the
  /// cadence comes due. Out-of-range threads throw std::invalid_argument
  /// (the service quarantines before this can happen).
  void feed(ThreadId thread, PageNum page);

  /// Runs one sweep immediately (cadence-independent; the service forces
  /// one before each mapping decision so the matrix is current).
  void sweep();

  const CommMatrix& matrix() const { return matrix_; }
  std::uint64_t events() const { return events_; }
  std::uint64_t sweeps() const { return sweeps_; }

  /// Deterministic estimate of resident bytes (matrix + windows + shards +
  /// sweep scratch) for the service's per-tenant budget accounting.
  std::size_t memory_bytes() const;

  /// Copies out / restores matrix, cursors and windows.
  StreamDetectorState state() const;
  /// Throws std::invalid_argument when the snapshot's shape (matrix size,
  /// window count or length) does not fit this detector.
  void restore(const StreamDetectorState& state);

 private:
  StreamDetectorConfig config_;
  CommMatrix matrix_;
  std::uint64_t events_ = 0;
  std::uint64_t sweeps_ = 0;
  std::vector<std::vector<PageNum>> windows_;  ///< LRU order, MRU at back

  // Sweep scratch, reused so steady-state sweeps allocate nothing.
  std::vector<std::pair<PageNum, ThreadId>> page_entries_;
  std::vector<CommMatrixShard> shards_;
};

}  // namespace tlbmap

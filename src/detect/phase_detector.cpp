#include "detect/phase_detector.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tlbmap {
namespace {

/// Absolute floor under the relative miss-rate comparison: rates this close
/// to zero are all "no misses worth speaking of", whatever the ratio.
constexpr double kRateFloor = 0.02;

}  // namespace

void PhaseDetectorConfig::validate() const {
  if (!std::isfinite(drift_threshold) || drift_threshold < 0.0 ||
      drift_threshold > 1.0) {
    throw std::invalid_argument(
        "PhaseDetectorConfig: drift_threshold must be in [0, 1]");
  }
  if (!std::isfinite(miss_rate_delta) || miss_rate_delta < 0.0) {
    throw std::invalid_argument(
        "PhaseDetectorConfig: miss_rate_delta must be non-negative");
  }
}

PhaseDetector::PhaseDetector(int num_threads, PhaseDetectorConfig config)
    : config_(config),
      num_threads_(num_threads),
      reference_(std::max(1, num_threads)),
      ref_accesses_(static_cast<std::size_t>(std::max(1, num_threads)), 0),
      ref_misses_(static_cast<std::size_t>(std::max(1, num_threads)), 0),
      window_accesses_(static_cast<std::size_t>(std::max(1, num_threads)), 0),
      window_misses_(static_cast<std::size_t>(std::max(1, num_threads)), 0) {
  if (num_threads < 1) {
    throw std::invalid_argument("PhaseDetector: need at least 1 thread");
  }
  config_.validate();
}

void PhaseDetector::on_access(ThreadId thread, bool tlb_miss) {
  if (thread < 0 || thread >= num_threads_) return;
  const auto t = static_cast<std::size_t>(thread);
  ++window_accesses_[t];
  if (tlb_miss) ++window_misses_[t];
}

void PhaseDetector::anchor(const CommMatrix& matrix) {
  reference_ = matrix;
  ref_accesses_ = window_accesses_;
  ref_misses_ = window_misses_;
  has_reference_ = true;
}

bool PhaseDetector::observe(const CommMatrix& matrix) {
  if (matrix.size() != num_threads_) {
    throw std::invalid_argument("PhaseDetector::observe: matrix size " +
                                std::to_string(matrix.size()) +
                                " does not match thread count " +
                                std::to_string(num_threads_));
  }
  const bool degenerate = matrix.health().degenerate();
  if (!has_reference_) {
    // Arm on the first matrix with actual shape; until then there is no
    // phase to drift from.
    if (!degenerate) anchor(matrix);
    std::fill(window_accesses_.begin(), window_accesses_.end(), 0);
    std::fill(window_misses_.begin(), window_misses_.end(), 0);
    return false;
  }

  bool changed = false;
  if (!degenerate && config_.drift_threshold > 0.0) {
    const double cos = CommMatrix::cosine_similarity(matrix, reference_);
    if (cos < config_.drift_threshold) changed = true;
  }
  if (!changed && config_.miss_rate_delta > 0.0) {
    for (std::size_t t = 0; t < window_accesses_.size() && !changed; ++t) {
      if (window_accesses_[t] < config_.min_window_accesses ||
          ref_accesses_[t] < config_.min_window_accesses) {
        continue;
      }
      const double rate = static_cast<double>(window_misses_[t]) /
                          static_cast<double>(window_accesses_[t]);
      const double ref_rate = static_cast<double>(ref_misses_[t]) /
                              static_cast<double>(ref_accesses_[t]);
      const double delta = std::abs(rate - ref_rate);
      if (delta > config_.miss_rate_delta * std::max(ref_rate, kRateFloor)) {
        changed = true;
      }
    }
  }

  if (changed) {
    ++epoch_;
    if (degenerate) {
      // The new phase has no shape yet; disarm and re-anchor on the next
      // non-degenerate observation.
      has_reference_ = false;
    } else {
      anchor(matrix);
    }
  }
  std::fill(window_accesses_.begin(), window_accesses_.end(), 0);
  std::fill(window_misses_.begin(), window_misses_.end(), 0);
  return changed;
}

PhaseDetectorState PhaseDetector::state() const {
  PhaseDetectorState s;
  s.epoch = epoch_;
  s.has_reference = has_reference_;
  s.reference = reference_;
  s.ref_accesses = ref_accesses_;
  s.ref_misses = ref_misses_;
  s.window_accesses = window_accesses_;
  s.window_misses = window_misses_;
  return s;
}

void PhaseDetector::restore(const PhaseDetectorState& state) {
  const auto n = static_cast<std::size_t>(num_threads_);
  if (state.reference.size() != num_threads_ ||
      state.ref_accesses.size() != n || state.ref_misses.size() != n ||
      state.window_accesses.size() != n || state.window_misses.size() != n) {
    throw std::invalid_argument(
        "PhaseDetector::restore: snapshot shape mismatch");
  }
  epoch_ = state.epoch;
  has_reference_ = state.has_reference;
  reference_ = state.reference;
  ref_accesses_ = state.ref_accesses;
  ref_misses_ = state.ref_misses;
  window_accesses_ = state.window_accesses;
  window_misses_ = state.window_misses;
}

}  // namespace tlbmap

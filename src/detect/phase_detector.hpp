// Phase-change detection for online remapping (DESIGN.md Sec. 17).
//
// A phase is a stretch of execution whose sharing pattern is stable. The
// detector watches two signals against a reference snapshot taken when the
// current phase began:
//
//   1. matrix drift — cosine similarity between the live communication
//      matrix and the phase-reference matrix (the same drift machinery the
//      service's DecisionCache uses to trigger re-matching);
//   2. per-thread TLB miss-rate deltas — a thread whose miss rate moved by
//      more than `miss_rate_delta` (relative) between the reference window
//      and the current window changed its working set even if the pairwise
//      sharing shape happens to look similar.
//
// Either signal past its threshold starts a new phase: the epoch counter
// bumps and the reference re-anchors to the current matrix/window. Epochs
// are monotone and deterministic — a pure function of the observation
// sequence — so OnlineMapper can seal them into its checkpoint state and
// reproduce them bit-identically on resume.
#pragma once

#include <cstdint>
#include <vector>

#include "detect/comm_matrix.hpp"
#include "sim/types.hpp"

namespace tlbmap {

struct PhaseDetectorConfig {
  /// New phase when cosine similarity between the live matrix and the
  /// phase-reference matrix falls below this. 0 disables the matrix signal
  /// (cosine is never negative for count matrices).
  double drift_threshold = 0.75;
  /// New phase when some thread's window miss rate moved by more than this
  /// fraction of its reference rate (relative delta with a small absolute
  /// floor, so a 0 -> 0.1 % wiggle does not count as a phase).
  double miss_rate_delta = 0.75;
  /// Per-thread access floor before that thread's miss-rate delta is
  /// trusted; windows thinner than this carry too much sampling noise.
  std::uint64_t min_window_accesses = 256;

  /// Throws std::invalid_argument when a threshold is negative, non-finite,
  /// or (for drift) outside [0, 1].
  void validate() const;
};

/// Serializable snapshot: the epoch cursor, the phase-reference matrix and
/// per-thread reference window, plus the in-flight accumulation window.
struct PhaseDetectorState {
  std::uint64_t epoch = 0;
  bool has_reference = false;
  CommMatrix reference{1};
  std::vector<std::uint64_t> ref_accesses;
  std::vector<std::uint64_t> ref_misses;
  std::vector<std::uint64_t> window_accesses;
  std::vector<std::uint64_t> window_misses;

  bool operator==(const PhaseDetectorState&) const = default;
};

class PhaseDetector {
 public:
  explicit PhaseDetector(int num_threads, PhaseDetectorConfig config = {});

  /// Accumulates one access into the current observation window.
  void on_access(ThreadId thread, bool tlb_miss);

  /// Consumes the current window against `matrix` (the live, un-decayed
  /// communication matrix). Returns true when a new phase begins — the
  /// epoch has already bumped and the reference re-anchored. Degenerate
  /// matrices neither arm nor drift the matrix signal (they carry no
  /// shape), but miss-rate deltas still fire once armed.
  bool observe(const CommMatrix& matrix);

  std::uint64_t epoch() const { return epoch_; }
  const PhaseDetectorConfig& config() const { return config_; }
  int num_threads() const { return num_threads_; }

  PhaseDetectorState state() const;
  /// Throws std::invalid_argument when the snapshot's shape (matrix size,
  /// window lengths) does not match this detector's thread count.
  void restore(const PhaseDetectorState& state);

 private:
  void anchor(const CommMatrix& matrix);

  PhaseDetectorConfig config_;
  int num_threads_;
  std::uint64_t epoch_ = 0;
  bool has_reference_ = false;
  CommMatrix reference_;
  std::vector<std::uint64_t> ref_accesses_;
  std::vector<std::uint64_t> ref_misses_;
  std::vector<std::uint64_t> window_accesses_;
  std::vector<std::uint64_t> window_misses_;
};

}  // namespace tlbmap

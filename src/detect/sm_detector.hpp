// Software-managed TLB mechanism (paper Sec. IV-A, Figure 1a).
//
// On a TLB miss the processor traps to the OS; the refill handler — besides
// loading the translation — searches every *other* core's TLB (its in-memory
// mirror) for the missed page and increments the communication matrix per
// match. To bound the overhead only one miss in `sample_threshold` runs the
// search (the paper uses 1-in-100). With set-associative TLBs only the ways
// of the page's set are compared, making each search Theta(P).
#pragma once

#include <cstdint>
#include <optional>

#include "core/fault.hpp"
#include "detect/detector.hpp"
#include "sim/machine.hpp"

namespace tlbmap {

struct SmDetectorConfig {
  /// Run the search on every `sample_threshold`-th TLB miss. 100 = the
  /// paper's 1 % sampling; 1 = monitor every miss.
  std::uint32_t sample_threshold = 100;
  /// Cycles one search costs the faulting core (paper measures 231).
  Cycles search_cost = 231;
};

/// Serializable mid-run snapshot of an SmDetector (DESIGN.md Sec. 12): the
/// accumulated matrix plus the sampling cursor. Restoring it into a fresh
/// detector of the same shape reproduces the original's future decisions
/// exactly (faultless plans; an injector's stream position is not part of
/// the snapshot).
struct SmDetectorState {
  CommMatrix matrix{1};
  std::uint64_t searches = 0;
  std::uint64_t misses_seen = 0;
  std::uint32_t miss_counter = 0;  ///< misses since the last sampled search

  bool operator==(const SmDetectorState&) const = default;
};

class SmDetector final : public Detector {
 public:
  /// `machine` must outlive the detector; the detector reads other cores'
  /// TLBs and the thread placement through it during the run.
  SmDetector(Machine& machine, int num_threads, SmDetectorConfig config = {});

  Cycles on_access(ThreadId thread, CoreId core, VirtAddr addr,
                   PageNum page, AccessType type, bool tlb_miss,
                   Cycles now) override;
  Cycles on_tick(Cycles /*now*/) override { return 0; }

  std::string name() const override { return "SM"; }
  const SmDetectorConfig& config() const { return config_; }
  const FaultCounters* fault_counters() const override {
    return fault_ ? &fault_->counters() : nullptr;
  }

  void set_observability(obs::ObsContext* obs) override;

  /// Copies out the matrix and cursors (checkpoint support).
  SmDetectorState state() const;
  /// Overwrites the matrix and cursors from a snapshot. Throws
  /// std::invalid_argument when the snapshot's matrix size does not match
  /// this detector's thread count.
  void restore(const SmDetectorState& state);

 private:
  Machine* machine_;
  SmDetectorConfig config_;
  std::uint32_t miss_counter_ = 0;
  obs::Counter* match_counter_ = nullptr;  ///< TLB hits found by searches
  /// Engaged only when the machine's FaultPlan is enabled; with it absent
  /// the sampled-search path is the exact pre-fault-injection code.
  std::optional<FaultInjector> fault_;
};

}  // namespace tlbmap

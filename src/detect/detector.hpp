// Common base for the communication-pattern detectors. A detector is a
// MachineObserver that accumulates a CommMatrix while a workload runs and
// accounts for the cycles its own searches cost (paper Sec. VI-C).
#pragma once

#include <cstdint>
#include <string>

#include "detect/comm_matrix.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class Detector : public MachineObserver {
 public:
  explicit Detector(int num_threads) : matrix_(num_threads) {}

  const CommMatrix& matrix() const { return matrix_; }

  /// Number of times the detection routine actually ran (SM: sampled
  /// searches; HM: periodic sweeps).
  std::uint64_t searches() const { return searches_; }

  /// TLB misses observed (Table III's miss statistics are derived from the
  /// machine counters; this tracks what the detector itself saw).
  std::uint64_t misses_seen() const { return misses_seen_; }

  virtual std::string name() const = 0;

  void reset_matrix() { matrix_ = CommMatrix(matrix_.size()); }

  /// Ages the accumulated matrix (dynamic re-detection support).
  void decay_matrix(double factor) { matrix_.decay(factor); }

 protected:
  CommMatrix matrix_;
  std::uint64_t searches_ = 0;
  std::uint64_t misses_seen_ = 0;
};

}  // namespace tlbmap

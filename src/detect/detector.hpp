// Common base for the communication-pattern detectors. A detector is a
// MachineObserver that accumulates a CommMatrix while a workload runs and
// accounts for the cycles its own searches cost (paper Sec. VI-C).
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

#include "core/fault.hpp"
#include "detect/comm_matrix.hpp"
#include "obs/obs.hpp"
#include "sim/machine.hpp"
#include "sim/types.hpp"

namespace tlbmap {

class Detector : public MachineObserver {
 public:
  explicit Detector(int num_threads) : matrix_(num_threads) {}

  const CommMatrix& matrix() const { return matrix_; }

  /// Number of times the detection routine actually ran (SM: sampled
  /// searches; HM: periodic sweeps).
  std::uint64_t searches() const { return searches_; }

  /// TLB misses observed (Table III's miss statistics are derived from the
  /// machine counters; this tracks what the detector itself saw).
  std::uint64_t misses_seen() const { return misses_seen_; }

  virtual std::string name() const = 0;

  /// Tally of injected faults, or null when this detector runs without an
  /// injector (the default). The pipeline publishes these as
  /// fault.injected_* counters after the detect phase.
  virtual const FaultCounters* fault_counters() const { return nullptr; }

  void reset_matrix() { matrix_ = CommMatrix(matrix_.size()); }

  /// Ages the accumulated matrix (dynamic re-detection support).
  void decay_matrix(double factor) { matrix_.decay(factor); }

  /// Attaches an observability context (null detaches). At kPhases the
  /// detector publishes search/miss counters labeled with its mechanism; at
  /// kFull it additionally emits a trace instant per search and a
  /// communication-matrix snapshot every kMatrixSnapshotEvery searches.
  /// Virtual so detectors can resolve additional mechanism-specific sinks
  /// (e.g. the HM sweep's index/match counters) in the same place.
  virtual void set_observability(obs::ObsContext* obs) {
    obs_ = obs;
    search_counter_ = nullptr;
    miss_counter_ = nullptr;
    if (obs != nullptr && obs->phases()) {
      const obs::Labels labels = {{"mechanism", name()}};
      search_counter_ = &obs->metrics.counter("detector.searches", labels);
      miss_counter_ = &obs->metrics.counter("detector.misses_seen", labels);
    }
  }

 protected:
  /// Per-epoch matrix snapshot throttle (kFull level).
  static constexpr std::uint64_t kMatrixSnapshotEvery = 256;

  /// Bumps searches_ and mirrors it into the observability sinks.
  void count_search() {
    ++searches_;
    if (search_counter_ != nullptr) search_counter_->add();
    if (obs_ != nullptr && obs_->full()) {
      std::ostringstream args;
      args << "\"search\":" << searches_;
      obs_->tracer.record_instant(name() + ".search", "detector",
                                  args.str());
      if (searches_ % kMatrixSnapshotEvery == 0) {
        obs_->metrics.snapshot_matrix("comm_matrix." + name(), searches_,
                                      matrix_.rows());
      }
    }
  }

  void count_miss() {
    ++misses_seen_;
    if (miss_counter_ != nullptr) miss_counter_->add();
  }

  CommMatrix matrix_;
  std::uint64_t searches_ = 0;
  std::uint64_t misses_seen_ = 0;
  obs::ObsContext* obs_ = nullptr;

 private:
  obs::Counter* search_counter_ = nullptr;
  obs::Counter* miss_counter_ = nullptr;
};

}  // namespace tlbmap

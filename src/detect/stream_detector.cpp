#include "detect/stream_detector.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace tlbmap {

void StreamDetectorConfig::validate() const {
  if (window_pages < 1) {
    throw std::invalid_argument("StreamDetector: window_pages must be >= 1");
  }
  if (sweep_every == 0) {
    throw std::invalid_argument("StreamDetector: sweep_every must be >= 1");
  }
  if (sweep_shards < 1) {
    throw std::invalid_argument("StreamDetector: sweep_shards must be >= 1");
  }
}

StreamDetector::StreamDetector(int num_threads, StreamDetectorConfig config)
    : config_(config), matrix_(num_threads) {
  config_.validate();
  if (num_threads < 1) {
    throw std::invalid_argument("StreamDetector: num_threads must be >= 1");
  }
  windows_.resize(static_cast<std::size_t>(num_threads));
  for (auto& w : windows_) {
    w.reserve(static_cast<std::size_t>(config_.window_pages));
  }
  shards_.assign(static_cast<std::size_t>(config_.sweep_shards),
                 CommMatrixShard(num_threads));
}

void StreamDetector::feed(ThreadId thread, PageNum page) {
  if (thread < 0 || thread >= num_threads()) {
    throw std::invalid_argument("StreamDetector: thread " +
                                std::to_string(thread) + " out of range");
  }
  std::vector<PageNum>& window = windows_[static_cast<std::size_t>(thread)];
  // LRU refresh: windows are <= a few hundred entries, so a linear scan
  // beats hash-map overhead (mirrors the Tlb's set-walk reasoning).
  const auto it = std::find(window.begin(), window.end(), page);
  if (it != window.end()) {
    window.erase(it);
  } else if (window.size() >= static_cast<std::size_t>(config_.window_pages)) {
    window.erase(window.begin());
  }
  window.push_back(page);
  ++events_;
  if (events_ % config_.sweep_every == 0) sweep();
}

void StreamDetector::sweep() {
  page_entries_.clear();
  for (ThreadId t = 0; t < num_threads(); ++t) {
    for (const PageNum page : windows_[static_cast<std::size_t>(t)]) {
      page_entries_.emplace_back(page, t);
    }
  }
  // Sort-group by page; a window never holds a page twice, so the group
  // size is exactly the sharer count (same argument as the HM sweep's
  // inverted index).
  std::sort(page_entries_.begin(), page_entries_.end());
  for (auto& shard : shards_) shard.clear();
  std::size_t group = 0;
  std::size_t begin = 0;
  while (begin < page_entries_.size()) {
    std::size_t end = begin + 1;
    while (end < page_entries_.size() &&
           page_entries_[end].first == page_entries_[begin].first) {
      ++end;
    }
    if (end - begin >= 2) {
      CommMatrixShard& shard = shards_[group % shards_.size()];
      for (std::size_t i = begin; i < end; ++i) {
        for (std::size_t j = i + 1; j < end; ++j) {
          shard.add(page_entries_[i].second, page_entries_[j].second);
        }
      }
      ++group;
    }
    begin = end;
  }
  matrix_.merge(shards_);
  ++sweeps_;
}

std::size_t StreamDetector::memory_bytes() const {
  const std::size_t n = static_cast<std::size_t>(matrix_.size());
  const std::size_t tri = n * (n - 1) / 2;
  std::size_t bytes = n * n * sizeof(std::uint64_t);  // full matrix cells
  bytes += shards_.size() * tri * sizeof(std::uint64_t);
  for (const auto& w : windows_) bytes += w.capacity() * sizeof(PageNum);
  bytes += page_entries_.capacity() * sizeof(page_entries_[0]);
  return bytes;
}

StreamDetectorState StreamDetector::state() const {
  StreamDetectorState s;
  s.matrix = matrix_;
  s.events = events_;
  s.sweeps = sweeps_;
  s.windows = windows_;
  return s;
}

void StreamDetector::restore(const StreamDetectorState& state) {
  if (state.matrix.size() != matrix_.size()) {
    throw std::invalid_argument(
        "StreamDetector::restore: matrix size mismatch");
  }
  if (state.windows.size() != windows_.size()) {
    throw std::invalid_argument(
        "StreamDetector::restore: window count mismatch");
  }
  for (const auto& w : state.windows) {
    if (w.size() > static_cast<std::size_t>(config_.window_pages)) {
      throw std::invalid_argument(
          "StreamDetector::restore: window exceeds configured size");
    }
  }
  matrix_ = state.matrix;
  events_ = state.events;
  sweeps_ = state.sweeps;
  windows_ = state.windows;
}

}  // namespace tlbmap

#include "detect/sm_detector.hpp"

#include <stdexcept>

namespace tlbmap {

SmDetector::SmDetector(Machine& machine, int num_threads,
                       SmDetectorConfig config)
    : Detector(num_threads), machine_(&machine), config_(config) {
  if (machine.config().fault.enabled()) {
    fault_.emplace(machine.config().fault, FaultInjector::kSmSalt);
  }
}

void SmDetector::set_observability(obs::ObsContext* obs) {
  Detector::set_observability(obs);
  match_counter_ = nullptr;
  if (obs != nullptr && obs->phases()) {
    match_counter_ =
        &obs->metrics.counter("detector.matches", {{"mechanism", name()}});
  }
}

SmDetectorState SmDetector::state() const {
  SmDetectorState s;
  s.matrix = matrix_;
  s.searches = searches_;
  s.misses_seen = misses_seen_;
  s.miss_counter = miss_counter_;
  return s;
}

void SmDetector::restore(const SmDetectorState& state) {
  if (state.matrix.size() != matrix_.size()) {
    throw std::invalid_argument(
        "SmDetector::restore: snapshot thread count mismatch");
  }
  matrix_ = state.matrix;
  searches_ = state.searches;
  misses_seen_ = state.misses_seen;
  miss_counter_ = state.miss_counter;
}

Cycles SmDetector::on_access(ThreadId thread, CoreId core,
                             VirtAddr /*addr*/, PageNum page,
                             AccessType /*type*/, bool tlb_miss,
                             Cycles /*now*/) {
  if (!tlb_miss) return 0;
  count_miss();
  // Figure 1a: below the threshold, just count the miss and return.
  if (++miss_counter_ < config_.sample_threshold) return 0;
  miss_counter_ = 0;
  if (fault_) {
    // Dropped before the search routine even starts: the sampled entry is
    // lost, no search runs and no cycles are charged.
    if (fault_->drop_sample()) return 0;
    // The detection instruction fails: the OS pays for the search but the
    // comparison yields nothing.
    if (fault_->fail_search()) {
      count_search();
      return config_.search_cost;
    }
    // A corrupted mirror entry: the search runs against a nearby-but-wrong
    // page, adding noise (usually zero matches) to the matrix.
    if (fault_->corrupt_sample()) page = fault_->perturb_page(page);
  }
  count_search();
  // Search every other TLB for the missed page. Tlb::contains probes only
  // the page's set, so the whole sweep is Theta(P * associativity).
  const Topology& topo = machine_->topology();
  std::uint64_t matches = 0;
  for (CoreId other = 0; other < topo.num_cores(); ++other) {
    if (other == core) continue;
    const ThreadId other_thread = machine_->thread_on(other);
    if (other_thread == kNoThread) continue;
    if (machine_->hierarchy().tlb(other).contains(page)) {
      matrix_.add(thread, other_thread);
      ++matches;
    }
  }
  if (match_counter_ != nullptr && matches > 0) match_counter_->add(matches);
  return config_.search_cost;
}

}  // namespace tlbmap

// The communication matrix (paper Sec. III-C): pairwise amount of
// communication between threads, built by the detectors and consumed by the
// mapping algorithms. Cell (i, j) counts detected sharing events between
// threads i and j; the matrix is symmetric with a zero diagonal.
//
// Also provides the presentation and accuracy tooling used by the benches:
// ASCII heatmaps (Figures 4/5) and similarity metrics against a ground-truth
// matrix (our quantitative extension of the paper's visual comparison).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace tlbmap {

class CommMatrix {
 public:
  explicit CommMatrix(int num_threads);

  int size() const { return n_; }

  /// Records `amount` units of communication between two distinct threads.
  /// Self-communication is meaningless and ignored.
  void add(ThreadId a, ThreadId b, std::uint64_t amount = 1);

  std::uint64_t at(ThreadId a, ThreadId b) const;

  /// Sum over the upper triangle (each pair counted once).
  std::uint64_t total() const;

  /// Largest cell value.
  std::uint64_t max() const;

  /// Cell scaled to [0, 1] by the matrix maximum.
  double normalized(ThreadId a, ThreadId b) const;

  CommMatrix& operator+=(const CommMatrix& other);

  /// Multiplies every cell by `factor` (ageing for dynamic re-detection).
  void decay(double factor);

  /// All pairs (a < b) ordered by decreasing communication.
  std::vector<std::pair<ThreadId, ThreadId>> pairs_by_weight() const;

  /// Full (symmetric) matrix as rows of counts — the observability layer's
  /// snapshot format for heatmap dumps.
  std::vector<std::vector<std::uint64_t>> rows() const;

  /// ASCII heatmap in the style of the paper's Figures 4 and 5: darker
  /// glyphs mean more communication.
  std::string heatmap() const;

  /// Cosine similarity of the upper triangles, in [0, 1] ([-1,1] in theory,
  /// but counts are non-negative). 1 = identical shape.
  static double cosine_similarity(const CommMatrix& a, const CommMatrix& b);

  /// Spearman rank correlation of the upper triangles, in [-1, 1]. Robust to
  /// the (arbitrary) magnitude differences between detectors.
  static double rank_correlation(const CommMatrix& a, const CommMatrix& b);

 private:
  std::size_t index(ThreadId a, ThreadId b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(b);
  }
  std::vector<double> upper_triangle() const;

  int n_;
  std::vector<std::uint64_t> cells_;
};

}  // namespace tlbmap

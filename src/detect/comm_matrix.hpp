// The communication matrix (paper Sec. III-C): pairwise amount of
// communication between threads, built by the detectors and consumed by the
// mapping algorithms. Cell (i, j) counts detected sharing events between
// threads i and j; the matrix is symmetric with a zero diagonal.
//
// For parallel producers, CommMatrixShard is a lock-free-by-construction
// private accumulator: each worker adds into its own shard and the owner
// folds them back with CommMatrix::merge() at an epoch boundary. Counts are
// unsigned sums, so the merged matrix is identical for any worker count or
// merge order.
//
// Also provides the presentation and accuracy tooling used by the benches:
// ASCII heatmaps (Figures 4/5) and similarity metrics against a ground-truth
// matrix (our quantitative extension of the paper's visual comparison).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace tlbmap {

class FaultInjector;

/// Per-worker accumulator for one CommMatrix: upper triangle only, no
/// derived state, bounds enforced at construction sites rather than per add
/// (the hot path of a parallel sweep). Merge shards back with
/// CommMatrix::merge().
class CommMatrixShard {
 public:
  explicit CommMatrixShard(int num_threads);

  int size() const { return n_; }

  /// Records `amount` units between two distinct threads (either order).
  /// Self-communication is ignored, matching CommMatrix::add.
  void add(ThreadId a, ThreadId b, std::uint64_t amount = 1);

  std::uint64_t at(ThreadId a, ThreadId b) const;

  /// Sum over all pairs.
  std::uint64_t total() const;

  /// Zeroes every cell (shards are reused across epochs).
  void clear();

 private:
  friend class CommMatrix;

  /// Index into the packed upper triangle; requires a < b.
  std::size_t tri(ThreadId a, ThreadId b) const {
    const std::size_t ua = static_cast<std::size_t>(a);
    const std::size_t ub = static_cast<std::size_t>(b);
    const std::size_t un = static_cast<std::size_t>(n_);
    return ua * (2 * un - ua - 1) / 2 + (ub - ua - 1);
  }

  int n_;
  std::vector<std::uint64_t> cells_;  ///< n*(n-1)/2 cells, row-major a<b
};

class CommMatrix {
 public:
  /// Counter ceiling: every mutator saturates here instead of wrapping.
  /// A wrapped counter silently inverts the hottest edge into the coldest —
  /// the worst possible corruption for a mapping input — whereas a pinned
  /// maximum keeps the pair ranked first, which is the right degradation.
  static constexpr std::uint64_t kCounterMax = ~std::uint64_t{0};

  /// Structural invariants of a detected matrix, checked before mapping
  /// consumes it (DESIGN.md Sec. 11). A degenerate matrix carries no
  /// placement signal: mapping from it is noise, so callers fall back.
  struct Health {
    bool empty = false;      ///< total() == 0: nothing was detected
    bool uniform = false;    ///< all pairs equal (>0): no preference either
    bool saturated = false;  ///< some counter pinned at kCounterMax

    /// True when the matrix should not drive a mapping decision.
    bool degenerate() const { return empty || uniform; }
    /// Short label for logs/metrics ("ok", "empty", "uniform", "saturated").
    const char* describe() const;
  };

  explicit CommMatrix(int num_threads);

  int size() const { return n_; }

  /// Records `amount` units of communication between two distinct threads.
  /// Self-communication is meaningless and ignored. Saturates at
  /// kCounterMax (never wraps).
  void add(ThreadId a, ThreadId b, std::uint64_t amount = 1);

  std::uint64_t at(ThreadId a, ThreadId b) const;

  /// Sum over the upper triangle (each pair counted once).
  std::uint64_t total() const;

  /// Largest cell value. O(1): maintained incrementally by every mutator so
  /// normalized()/heatmap() callers looping over all pairs stay Theta(n^2)
  /// instead of Theta(n^4).
  std::uint64_t max() const { return max_; }

  /// Cell scaled to [0, 1] by the matrix maximum.
  double normalized(ThreadId a, ThreadId b) const;

  CommMatrix& operator+=(const CommMatrix& other);

  /// Cell-exact equality (same size, same counts). The checkpoint layer's
  /// round-trip tests lean on this the way the fast-path differentials lean
  /// on MachineStats::operator==.
  bool operator==(const CommMatrix&) const = default;

  /// Folds per-worker shards into this matrix, in shard order. Every shard
  /// must have the same size as the matrix. The result is independent of how
  /// the adds were distributed over shards (unsigned sums commute), so a
  /// sharded producer is bit-identical to a serial one.
  void merge(const std::vector<CommMatrixShard>& shards);

  /// Multiplies every cell by `factor` (ageing for dynamic re-detection),
  /// rounding to nearest so repeated decay does not silently truncate
  /// small-but-real edges to zero. Ties round toward zero, so ageing at
  /// factor 0.5 still strictly shrinks every nonzero cell.
  void decay(double factor);

  /// Evaluates the structural invariants (empty / uniform / saturated).
  /// O(n^2); called once per mapping decision, not per add.
  Health health() const;

  /// Applies the injector's matrix faults to the upper triangle: each cell
  /// is independently swapped with a random other cell (flip) and/or zeroed
  /// per the plan's matrix_flip_rate / matrix_zero_rate. Deterministic per
  /// injector stream; symmetry and the max() cache are restored afterwards.
  void apply_faults(FaultInjector& injector);

  /// All pairs (a < b) ordered by decreasing communication.
  std::vector<std::pair<ThreadId, ThreadId>> pairs_by_weight() const;

  /// Full (symmetric) matrix as rows of counts — the observability layer's
  /// snapshot format for heatmap dumps.
  std::vector<std::vector<std::uint64_t>> rows() const;

  /// ASCII heatmap in the style of the paper's Figures 4 and 5: darker
  /// glyphs mean more communication.
  std::string heatmap() const;

  /// Cosine similarity of the upper triangles, in [0, 1] ([-1,1] in theory,
  /// but counts are non-negative). 1 = identical shape.
  static double cosine_similarity(const CommMatrix& a, const CommMatrix& b);

  /// Spearman rank correlation of the upper triangles, in [-1, 1]. Robust to
  /// the (arbitrary) magnitude differences between detectors.
  static double rank_correlation(const CommMatrix& a, const CommMatrix& b);

 private:
  std::size_t index(ThreadId a, ThreadId b) const {
    return static_cast<std::size_t>(a) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(b);
  }
  std::vector<double> upper_triangle() const;

  int n_;
  std::vector<std::uint64_t> cells_;
  std::uint64_t max_ = 0;  ///< invariant: max over cells_
};

}  // namespace tlbmap

#include "detect/comm_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/fault.hpp"

namespace tlbmap {

namespace {

/// Saturating 64-bit add: pins at CommMatrix::kCounterMax instead of
/// wrapping. Wrapping would turn the hottest pair into the coldest and
/// silently invert the mapping decision.
std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? CommMatrix::kCounterMax : s;
}

}  // namespace

CommMatrixShard::CommMatrixShard(int num_threads) : n_(num_threads) {
  if (num_threads <= 0) {
    throw std::invalid_argument("CommMatrixShard: non-positive thread count");
  }
  const std::size_t un = static_cast<std::size_t>(n_);
  cells_.resize(un * (un - 1) / 2, 0);
}

void CommMatrixShard::add(ThreadId a, ThreadId b, std::uint64_t amount) {
  if (a == b) return;
  if (a < 0 || b < 0 || a >= n_ || b >= n_) {
    throw std::out_of_range("CommMatrixShard::add: thread id out of range");
  }
  if (a > b) std::swap(a, b);
  std::uint64_t& cell = cells_[tri(a, b)];
  cell = sat_add(cell, amount);
}

std::uint64_t CommMatrixShard::at(ThreadId a, ThreadId b) const {
  if (a == b) return 0;
  if (a < 0 || b < 0 || a >= n_ || b >= n_) {
    throw std::out_of_range("CommMatrixShard::at: thread id out of range");
  }
  if (a > b) std::swap(a, b);
  return cells_[tri(a, b)];
}

std::uint64_t CommMatrixShard::total() const {
  // Saturating like every cell mutator: at N >= 256 threads a busy suite
  // holds n*(n-1)/2 > 32k cells, and a plain sum of hot cells can wrap —
  // inverting "enormous total" into "tiny total" for health checks.
  std::uint64_t sum = 0;
  for (const std::uint64_t c : cells_) sum = sat_add(sum, c);
  return sum;
}

void CommMatrixShard::clear() {
  std::fill(cells_.begin(), cells_.end(), 0);
}

CommMatrix::CommMatrix(int num_threads) : n_(num_threads) {
  if (num_threads <= 0) {
    throw std::invalid_argument("CommMatrix: non-positive thread count");
  }
  cells_.resize(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_),
                0);
}

void CommMatrix::add(ThreadId a, ThreadId b, std::uint64_t amount) {
  if (a == b) return;
  if (a < 0 || b < 0 || a >= n_ || b >= n_) {
    throw std::out_of_range("CommMatrix::add: thread id out of range");
  }
  const std::uint64_t next = sat_add(cells_[index(a, b)], amount);
  cells_[index(a, b)] = next;
  cells_[index(b, a)] = next;
  max_ = std::max(max_, next);
}

std::uint64_t CommMatrix::at(ThreadId a, ThreadId b) const {
  if (a < 0 || b < 0 || a >= n_ || b >= n_) {
    throw std::out_of_range("CommMatrix::at: thread id out of range");
  }
  return cells_[index(a, b)];
}

std::uint64_t CommMatrix::total() const {
  // Saturating sum — see CommMatrixShard::total for the large-N rationale.
  std::uint64_t sum = 0;
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b) {
      sum = sat_add(sum, cells_[index(a, b)]);
    }
  }
  return sum;
}

double CommMatrix::normalized(ThreadId a, ThreadId b) const {
  if (max_ == 0) return 0.0;
  return static_cast<double>(at(a, b)) / static_cast<double>(max_);
}

std::vector<std::vector<std::uint64_t>> CommMatrix::rows() const {
  std::vector<std::vector<std::uint64_t>> out(
      static_cast<std::size_t>(n_),
      std::vector<std::uint64_t>(static_cast<std::size_t>(n_), 0));
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = 0; b < n_; ++b) {
      out[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          cells_[index(a, b)];
    }
  }
  return out;
}

CommMatrix& CommMatrix::operator+=(const CommMatrix& other) {
  if (other.n_ != n_) {
    throw std::invalid_argument("CommMatrix::operator+=: size mismatch");
  }
  std::uint64_t m = 0;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] = sat_add(cells_[i], other.cells_[i]);
    m = std::max(m, cells_[i]);
  }
  max_ = m;
  return *this;
}

void CommMatrix::merge(const std::vector<CommMatrixShard>& shards) {
  for (const CommMatrixShard& shard : shards) {
    if (shard.n_ != n_) {
      throw std::invalid_argument("CommMatrix::merge: shard size mismatch");
    }
    std::size_t i = 0;
    for (ThreadId a = 0; a < n_; ++a) {
      for (ThreadId b = a + 1; b < n_; ++b, ++i) {
        const std::uint64_t amount = shard.cells_[i];
        if (amount == 0) continue;
        const std::uint64_t next = sat_add(cells_[index(a, b)], amount);
        cells_[index(a, b)] = next;
        cells_[index(b, a)] = next;
        max_ = std::max(max_, next);
      }
    }
  }
}

void CommMatrix::decay(double factor) {
  // NaN-free invariant: a non-finite or negative factor would poison every
  // cell through the double round-trip; treat it as "forget everything",
  // the conservative ageing for a corrupted parameter.
  if (!std::isfinite(factor) || factor < 0.0) factor = 0.0;
  std::uint64_t m = 0;
  for (std::uint64_t& c : cells_) {
    // Round to nearest, ties toward zero: ceil(x - 0.5). Plain truncation
    // biases every cell down by ~0.5 per epoch and erases small-but-real
    // edges; ties rounding *up* would make odd cells immortal at the
    // default ageing factor 0.5 (1 -> 0.5 -> 1 -> ...).
    const double scaled = std::ceil(static_cast<double>(c) * factor - 0.5);
    // Clamp both ends: casting a double >= 2^64 (saturated cell, factor
    // ~1) or negative (-0.0 from the tie rule) to uint64 is undefined.
    c = scaled >= static_cast<double>(kCounterMax)
            ? kCounterMax
            : static_cast<std::uint64_t>(scaled > 0.0 ? scaled : 0.0);
    m = std::max(m, c);
  }
  max_ = m;
}

const char* CommMatrix::Health::describe() const {
  if (empty) return "empty";
  if (uniform) return "uniform";
  if (saturated) return "saturated";
  return "ok";
}

CommMatrix::Health CommMatrix::health() const {
  Health h;
  std::uint64_t lo = kCounterMax;
  std::uint64_t hi = 0;
  std::size_t pairs = 0;
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b, ++pairs) {
      const std::uint64_t c = cells_[index(a, b)];
      lo = std::min(lo, c);
      hi = std::max(hi, c);
    }
  }
  h.empty = pairs == 0 || hi == 0;
  h.uniform = !h.empty && pairs > 1 && lo == hi;
  h.saturated = hi == kCounterMax;
  return h;
}

void CommMatrix::apply_faults(FaultInjector& injector) {
  const std::size_t un = static_cast<std::size_t>(n_);
  const std::size_t npairs = un * (un - 1) / 2;
  if (npairs == 0) return;
  // Work on the packed upper triangle, then mirror back so symmetry and
  // the cached max() survive arbitrary corruption.
  std::vector<std::uint64_t> tri;
  tri.reserve(npairs);
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b) tri.push_back(cells_[index(a, b)]);
  }
  for (std::size_t i = 0; i < npairs; ++i) {
    if (injector.flip_cell()) {
      std::swap(tri[i], tri[injector.draw_index(npairs)]);
    }
    if (injector.zero_cell()) tri[i] = 0;
  }
  std::size_t i = 0;
  std::uint64_t m = 0;
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b, ++i) {
      cells_[index(a, b)] = tri[i];
      cells_[index(b, a)] = tri[i];
      m = std::max(m, tri[i]);
    }
  }
  max_ = m;
}

std::vector<std::pair<ThreadId, ThreadId>> CommMatrix::pairs_by_weight()
    const {
  std::vector<std::pair<ThreadId, ThreadId>> pairs;
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b) pairs.emplace_back(a, b);
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [this](const auto& p, const auto& q) {
                     return at(p.first, p.second) > at(q.first, q.second);
                   });
  return pairs;
}

std::string CommMatrix::heatmap() const {
  static constexpr const char kShades[] = " .:-=+*#%@";
  static constexpr int kLevels = static_cast<int>(sizeof(kShades)) - 2;
  const std::uint64_t m = max();
  std::ostringstream out;
  out << "    ";
  for (ThreadId b = 0; b < n_; ++b) out << (b % 10) << ' ';
  out << '\n';
  for (ThreadId a = 0; a < n_; ++a) {
    out << (a < 10 ? " " : "") << a << "  ";
    for (ThreadId b = 0; b < n_; ++b) {
      char glyph = ' ';
      if (a != b && m > 0) {
        const double frac =
            static_cast<double>(at(a, b)) / static_cast<double>(m);
        const int level =
            std::min(kLevels, static_cast<int>(std::ceil(frac * kLevels)));
        glyph = kShades[level];
      }
      out << glyph << ' ';
    }
    out << '\n';
  }
  return out.str();
}

std::vector<double> CommMatrix::upper_triangle() const {
  std::vector<double> v;
  v.reserve(static_cast<std::size_t>(n_) * static_cast<std::size_t>(n_ - 1) /
            2);
  for (ThreadId a = 0; a < n_; ++a) {
    for (ThreadId b = a + 1; b < n_; ++b) {
      v.push_back(static_cast<double>(at(a, b)));
    }
  }
  return v;
}

double CommMatrix::cosine_similarity(const CommMatrix& a,
                                     const CommMatrix& b) {
  if (a.n_ != b.n_) {
    throw std::invalid_argument("cosine_similarity: size mismatch");
  }
  const std::vector<double> va = a.upper_triangle();
  const std::vector<double> vb = b.upper_triangle();
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < va.size(); ++i) {
    dot += va[i] * vb[i];
    na += va[i] * va[i];
    nb += vb[i] * vb[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

namespace {
// Average ranks, with ties sharing their mean rank.
std::vector<double> ranks_of(const std::vector<double>& values) {
  std::vector<std::size_t> order(values.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
    return values[i] < values[j];
  });
  std::vector<double> ranks(values.size(), 0.0);
  std::size_t i = 0;
  while (i < order.size()) {
    std::size_t j = i;
    while (j + 1 < order.size() &&
           values[order[j + 1]] == values[order[i]]) {
      ++j;
    }
    const double mean_rank = (static_cast<double>(i) +
                              static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = mean_rank;
    i = j + 1;
  }
  return ranks;
}

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n == 0) return 0.0;
  double mx = 0.0, my = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    mx += x[i];
    my += y[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}
}  // namespace

double CommMatrix::rank_correlation(const CommMatrix& a,
                                    const CommMatrix& b) {
  if (a.n_ != b.n_) {
    throw std::invalid_argument("rank_correlation: size mismatch");
  }
  return pearson(ranks_of(a.upper_triangle()), ranks_of(b.upper_triangle()));
}

}  // namespace tlbmap
